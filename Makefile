GO ?= go

.PHONY: all build test race vet bench bench-smoke bench-baseline

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=NONE .

bench-smoke:
	$(GO) test -bench=E5 -benchtime=1x -run=NONE .

# bench-baseline records the full benchmark suite as JSON for perf
# trajectory tracking across PRs (compare with benchstat or jq).
bench-baseline:
	$(GO) test -bench=. -benchtime=1x -run=NONE -json . > BENCH_baseline.json

GO ?= go

.PHONY: all build test race vet bench bench-smoke bench-baseline sssp-bench

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=NONE .

bench-smoke:
	$(GO) test -bench='E5|E9' -benchtime=1x -run=NONE .

# sssp-bench regenerates the E9 (1+eps)-approximate shortest-path table.
sssp-bench:
	$(GO) run ./cmd/ssspbench

# bench-baseline records the full benchmark suite as JSON for perf
# trajectory tracking across PRs (compare with benchstat or jq).
bench-baseline:
	$(GO) test -bench=. -benchtime=1x -run=NONE -json . > BENCH_baseline.json

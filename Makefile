GO ?= go

.PHONY: all build test race vet lint lint-json bench bench-smoke bench-baseline scale-smoke sssp-bench construct-bench pipeline-bench pipecast-bench churn-bench query-bench

all: vet lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs congestlint (the repository's go/analysis suite: detmap,
# errflow, hotalloc, ledger, purity, seededrand, zeromask) plus a gofmt
# cleanliness check.
lint:
	$(GO) run ./cmd/congestlint ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed:"; echo "$$unformatted"; exit 1; fi

# lint-json emits the same findings as machine-readable JSON (for CI
# annotations and tooling).
lint-json:
	$(GO) run ./cmd/congestlint -json ./...

bench:
	$(GO) test -bench=. -benchmem -run=NONE .

bench-smoke:
	$(GO) test -bench='E5|E9|E13|E14|E15|E18|E19' -benchtime=1x -run=NONE .

# scale-smoke runs the full zero-witness pipeline at 10⁵ nodes (grid +
# wheel, hybrid mode) with a bounded wall-clock — the CI guard that the
# million-node path stays subquadratic. The 10⁶ run itself lives in
# BenchmarkScaleMillionPipeline (make bench-baseline).
scale-smoke:
	$(GO) test -run 'TestScaleSmoke100k' -count=1 -v ./internal/experiments

# sssp-bench regenerates the E9 (1+eps)-approximate shortest-path table.
sssp-bench:
	$(GO) run ./cmd/ssspbench

# construct-bench regenerates the E13 distributed shortcut construction table.
construct-bench:
	$(GO) run ./cmd/constructbench

# pipeline-bench regenerates the E14 zero-witness pipeline table.
pipeline-bench:
	$(GO) run ./cmd/pipelinebench

# pipecast-bench regenerates the E15 pipelined multi-token convergecast table.
pipecast-bench:
	$(GO) run ./cmd/pipecastbench

# churn-bench regenerates the E18 self-healing shortcuts-under-churn table.
churn-bench:
	$(GO) run ./cmd/churnbench

# query-bench regenerates the E19 batched k-source SSSP + distance-oracle
# serving table.
query-bench:
	$(GO) run ./cmd/querybench

# bench-baseline records the full benchmark suite as JSON for perf
# trajectory tracking across PRs (compare with benchstat or jq).
bench-baseline:
	$(GO) test -bench=. -benchtime=1x -run=NONE -json . > BENCH_baseline.json

// Benchmark harness: one benchmark per experiment in DESIGN.md §2. Each
// benchmark regenerates its table (printed to the bench output) and reports
// its headline quantity as a custom metric, so `go test -bench=. -benchmem`
// reproduces every table/figure stand-in of the paper in one run.
package repro_test

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/experiments"
)

const benchSeed = 2018 // PODC year; all experiments are deterministic in it

func reportLastCell(b *testing.B, t *experiments.Table, col, unit string) {
	b.Helper()
	s := t.Cell(len(t.Rows)-1, col)
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		b.ReportMetric(v, unit)
	}
}

func BenchmarkE1PlanarQuality(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E1PlanarQuality([]int{6, 10, 14, 18}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "q_tw", "quality")
}

func BenchmarkE2TreewidthQuality(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E2Treewidth(400, []int{2, 3, 4, 6}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "blocks", "blocks")
}

func BenchmarkE3CliqueSumQuality(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E3CliqueSum([]int{2, 4, 8, 12}, 18, 3, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "quality", "quality")
}

func BenchmarkE4AlmostEmbeddable(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E4AlmostEmbeddable(benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "quality", "quality")
}

func BenchmarkE5MainQuality(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E5Main([]int{2, 4, 8, 16}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "quality", "quality")
}

func BenchmarkE6MST(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E6MST([]int{64, 128, 256}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "r_shortcut", "rounds")
}

// BenchmarkE6MSTLarge runs the MST table one size notch up (rim 512),
// headroom opened by the dense-slice accounting and the barrier-synchronous
// CONGEST engine. Skipped under -short (set GOFLAGS=-short for a quick
// sweep); run `make bench-baseline` for the full suite.
func BenchmarkE6MSTLarge(b *testing.B) {
	if testing.Short() {
		b.Skip("large MST table skipped in -short")
	}
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E6MST([]int{64, 128, 256, 512}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "r_shortcut", "rounds")
}

func BenchmarkE6bMSTExcludedMinor(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E6bMSTExcludedMinor([]int{2, 4, 8}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "r_witness", "rounds")
}

func BenchmarkE6cAggregation(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.AggregationShowcase([]int{16, 32, 64}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "rounds_shortcut", "rounds")
}

// BenchmarkE6cAggregationLarge runs the aggregation showcase one size notch
// up (corridors to 128 columns), headroom opened by the round-driven
// CONGEST scheduler. Skipped under -short, like every Large benchmark.
func BenchmarkE6cAggregationLarge(b *testing.B) {
	if testing.Short() {
		b.Skip("large aggregation showcase skipped in -short")
	}
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.AggregationShowcase([]int{16, 32, 64, 128}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "rounds_shortcut", "rounds")
}

func BenchmarkE7MinCut(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E7MinCut([]int{40, 80, 160}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "ratio", "ratio")
}

func BenchmarkE8LowerBound(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E8LowerBound([]int{4, 8, 12, 16}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "quality", "quality")
}

func BenchmarkE8bLowerBoundMST(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E8bLowerBoundMST([]int{4, 6, 8}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "r_oblivious", "rounds")
}

// BenchmarkE9SSSP regenerates the (1+ε)-approximate shortest-path table:
// naive Bellman–Ford rounds vs the part-wise relaxation pipeline on the
// hop-heavy wheel and K5-minor-free clique-sum-chain families.
func BenchmarkE9SSSP(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E9SSSP([]int{64, 128, 256, 512}, []int{32, 64, 128, 256}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "speedup", "speedup")
}

func BenchmarkE10FoldingAblation(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E10FoldingAblation([]int{8, 16, 32, 64}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "c_folded", "congestion")
}

func BenchmarkE11ApexEffect(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E11ApexEffect([]int{32, 64, 128}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "q_apexAware", "quality")
}

// BenchmarkE13Construct regenerates the distributed in-network shortcut
// construction table: flooding-constructed vs witness-constructed quality
// and rounds on grids, wheels, and K5-minor-free clique-sum chains.
func BenchmarkE13Construct(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E13Construct([]int{6, 10, 14}, []int{32, 64}, []int{2, 4, 8, 16}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "ratio", "ratio")
}

// BenchmarkE14Pipeline regenerates the zero-witness pipeline table: leader
// election, distributed BFS, in-network doubling cap search with block
// priorities — quality and rounds against the witness constructions on
// grids, wheels, and K5-minor-free clique-sum chains.
func BenchmarkE14Pipeline(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E14Pipeline([]int{6, 10, 14}, []int{32, 64}, []int{2, 4, 8, 16}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "ratio", "ratio")
}

// BenchmarkE15Pipecast regenerates the pipelined multi-token tree
// communication table: one O(height+k) streamed convergecast of the k
// per-part block-count tokens versus k sequential convergecasts, plus the
// two-mode cap-search agreement with the bootstrap measured message-level.
func BenchmarkE15Pipecast(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E15Pipecast([]int{6, 10, 14}, []int{32, 64}, []int{2, 4, 8, 16}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "speedup", "speedup")
}

func BenchmarkE12Planarize(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E12Planarize([]int{0, 1, 2, 3}, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "cut_n", "vertices")
}

// BenchmarkE18Churn regenerates the self-healing shortcut table: a Poisson
// edge-churn stream (weight updates, inserts, deletes including tree-edge
// splices) repaired along dirty tree paths only, versus the strawman that
// re-floods the whole construction after every event, with final quality
// checked against a fresh full cap re-search on the churned graph.
func BenchmarkE18Churn(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E18Churn([]int{6, 10, 14}, []int{32, 64}, []int{2, 4}, 40, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "ratio", "ratio")
}

func BenchmarkE19Query(b *testing.B) {
	var t *experiments.Table
	for i := 0; i < b.N; i++ {
		t = experiments.E19Query([]int{10}, []int{64}, []int{8}, 9999, 20000, true, benchSeed)
	}
	b.StopTimer()
	fmt.Println(t)
	reportLastCell(b, t, "qps", "qps")
}

// BenchmarkScaleMillionPipeline runs the full zero-witness pipeline at 10⁶
// nodes and prints each run's per-stage wall-clock/rounds/traffic table —
// the scale record that make bench-baseline persists into
// BENCH_baseline.json. The grid (Θ(√n) diameter) runs analytic: its ~4000
// bootstrap-flood rounds over 10⁶ nodes are priced by the framework's
// charged ledger, since simulating them message-level costs minutes of
// wall-clock for no additional information (every node relays its distance
// ~dist(v) times under improvement gating). The wheel (diameter 2) runs
// hybrid: election and BFS execute message-level on the round-driven
// engine, streaming per-round bytes through the O(1)-state probe. Skipped
// under -short.
func BenchmarkScaleMillionPipeline(b *testing.B) {
	if testing.Short() {
		b.Skip("10⁶-node pipeline skipped in -short")
	}
	for _, run := range []struct {
		family string
		mode   experiments.ScaleMode
	}{
		{"grid", experiments.ScaleAnalytic},
		{"wheel", experiments.ScaleHybrid},
	} {
		b.Run(run.family, func(b *testing.B) {
			var res *experiments.ScaleResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = experiments.ScalePipeline(run.family, 1_000_000, run.mode)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			fmt.Println(res)
			wall, sim, chg := res.Totals()
			b.ReportMetric(float64(wall)/1e6, "wall_ms")
			b.ReportMetric(float64(sim+chg), "rounds")
			b.ReportMetric(float64(res.Quality), "quality")
		})
	}
}

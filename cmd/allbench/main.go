// allbench regenerates every experiment table (E1-E15) in one run — the
// CLI twin of `go test -bench=. -benchtime=1x .` — or, with -table, a
// single table by ID.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 2018, "deterministic seed")
	table := flag.String("table", "", "regenerate one experiment table by ID (e.g. E9, E6c, E15); empty runs all")
	flag.Parse()
	if *table != "" {
		t, ok := experiments.ByID(*table, *seed)
		if !ok {
			fmt.Fprintf(os.Stderr, "allbench: unknown table %q; valid IDs: %s\n",
				*table, strings.Join(experiments.IDs(), ", "))
			os.Exit(2)
		}
		fmt.Println(t)
		return
	}
	for _, t := range experiments.All(*seed) {
		fmt.Println(t)
	}
}

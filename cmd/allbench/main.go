// allbench regenerates every experiment table (E1-E12) in one run — the
// CLI twin of `go test -bench=. -benchtime=1x .`.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 2018, "deterministic seed")
	flag.Parse()
	for _, t := range experiments.All(*seed) {
		fmt.Println(t)
	}
}

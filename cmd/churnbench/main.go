// churnbench regenerates the self-healing shortcut table (experiment E18):
// a maintained flooding construction absorbs a Poisson edge-churn stream —
// weight updates, inserts, deletes including tree-edge deletes spliced via
// replacement edges — through dirty-path repair (shortcut.Repair), with
// threshold-triggered full rebuilds, against the strawman that re-floods
// after every event, on grids, wheels, and K5-minor-free clique-sum
// chains.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 2018, "deterministic seed")
	steps := flag.Int("steps", 40, "churn steps per instance (events ~ Poisson(1.5) per step)")
	big := flag.Bool("big", false, "larger sweep (slower)")
	flag.Parse()

	grids := []int{6, 10, 14}
	wheels := []int{32, 64}
	chains := []int{2, 4}
	if *big {
		grids = []int{6, 10, 14, 18, 24}
		wheels = []int{32, 64, 128}
		chains = []int{2, 4, 8}
	}
	fmt.Println(experiments.E18Churn(grids, wheels, chains, *steps, *seed))
}

// Command congestlint is the repository's static-analysis multichecker:
// seven analyzers that machine-check the invariants every PR leans on —
// byte-deterministic transcripts (detmap, seededrand), exclusive
// two-ledger round accounting (ledger), zero-alloc round kernels
// (hotalloc), no zero values masquerading as successes (zeromask),
// determinism-purity of transcript-affecting code (purity), and
// ErrIncomplete flow (errflow). Each analyzer encodes a bug class that
// previously shipped and was caught by hand; see the package docs under
// internal/analysis/.
//
// hotalloc, purity, and errflow are interprocedural: they walk the
// package call graph (internal/analysis/callgraph) and exchange facts
// (HotFact, AllocsFact, PureFact, ImpureFact, IncompleteSourceFact)
// across package boundaries. In standalone mode the facts flow through
// one in-process store over the deps-first package order; under
// `go vet -vettool=` they are gob-serialized into the vetx files the go
// command passes between compilation units, so both drivers report
// identically.
//
// Standalone usage (the Makefile `lint` target):
//
//	go run ./cmd/congestlint ./...
//	go run ./cmd/congestlint -only detmap,ledger ./internal/congest
//
// It also speaks the go vet driver protocol, so after `go build`:
//
//	go vet -vettool=$(pwd)/congestlint ./...
//
// Findings are suppressed by a `//lint:allow <analyzer> <reason>`
// comment on the flagged line or the line above; the reason is required.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/detmap"
	"repro/internal/analysis/errflow"
	"repro/internal/analysis/hotalloc"
	"repro/internal/analysis/ledger"
	"repro/internal/analysis/purity"
	"repro/internal/analysis/seededrand"
	"repro/internal/analysis/zeromask"
)

var all = []*analysis.Analyzer{
	detmap.Analyzer,
	errflow.Analyzer,
	hotalloc.Analyzer,
	ledger.Analyzer,
	purity.Analyzer,
	seededrand.Analyzer,
	zeromask.Analyzer,
}

func main() {
	vFlag := flag.String("V", "", "print version and exit (go vet driver protocol)")
	flagsFlag := flag.Bool("flags", false, "print flag definitions as JSON and exit (go vet driver protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	flag.Usage = usage
	flag.Parse()

	switch {
	case *vFlag != "":
		// The go command fingerprints vet tools via `tool -V=full` and
		// keys its vetx/diagnostic cache on the output, so the version
		// must change whenever the analyzers do: hash the executable.
		// A constant string here once served stale (fact-free) vetx
		// files from a previous build of the tool.
		fmt.Printf("congestlint version devel-%s buildID=%s\n", runtime.Version(), selfHash())
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	}

	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown analyzer %q (have: detmap, errflow, hotalloc, ledger, purity, seededrand, zeromask)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVetUnit(analyzers, args[0])
		return
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", args...)
	if err != nil {
		fatalf("%v", err)
	}
	diags, err := analysis.Run(analyzers, pkgs)
	if err != nil {
		fatalf("%v", err)
	}
	report(diags, *jsonFlag)
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func report(diags []analysis.Diagnostic, asJSON bool) {
	if asJSON {
		if diags == nil {
			diags = []analysis.Diagnostic{} // a clean sweep is [], not null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(diags); err != nil {
			fatalf("%v", err)
		}
		return
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: congestlint [-only a,b] [-json] [packages]\n\nanalyzers:\n")
	for _, a := range all {
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "congestlint: "+format+"\n", args...)
	os.Exit(2)
}

// selfHash returns the hex SHA-256 of the running executable, the
// content-addressed component of the -V=full fingerprint.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatalf("%v", err)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// vetConfig is the JSON unit description the go command hands to vet
// tools (cmd/go/internal/work's vet config).
type vetConfig struct {
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string // dep import path → vetx facts file
	VetxOnly                  bool              // facts wanted, diagnostics not (dependency unit)
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes a single package unit under `go vet -vettool=`.
// Export data for every dependency arrives via PackageFile, so no go
// list subprocess is needed.
func runVetUnit(analyzers []*analysis.Analyzer, cfgPath string) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing %s: %v", cfgPath, err)
	}
	// The go command drives vet tools over the whole import graph
	// (standard library included) to collect facts. congestlint's
	// invariants are repository policy and its facts only describe
	// repro-module functions, so everything outside the repro module —
	// and the synthesized test variants — just gets an empty vetx file.
	if cfg.ImportPath != "repro" && !strings.HasPrefix(cfg.ImportPath, "repro/") ||
		strings.Contains(cfg.ImportPath, " [") ||
		strings.HasSuffix(cfg.ImportPath, "_test") || strings.HasSuffix(cfg.ImportPath, ".test") {
		writeVetx(cfg, nil)
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue // the standalone sweep covers non-test sources; match it
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			typecheckFailure(cfg, err)
			return
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		writeVetx(cfg, nil)
		return
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		typecheckFailure(cfg, err)
		return
	}
	pkg := &analysis.Package{Path: cfg.ImportPath, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}

	// Rehydrate the facts of every repro-module dependency from the vetx
	// files the go command already produced for them.
	store := analysis.NewFactStore()
	for depPath, vetxFile := range cfg.PackageVetx {
		if depPath != "repro" && !strings.HasPrefix(depPath, "repro/") {
			continue // outside the module: empty by construction
		}
		wire, err := os.ReadFile(vetxFile)
		if err != nil {
			fatalf("reading facts of %s: %v", depPath, err)
		}
		if err := store.DecodePackage(depPath, wire); err != nil {
			fatalf("decoding facts of %s: %v", depPath, err)
		}
	}

	diags, err := analysis.RunFacts(analyzers, []*analysis.Package{pkg}, store)
	if err != nil {
		fatalf("%v", err)
	}
	facts, err := store.EncodePackage(cfg.ImportPath)
	if err != nil {
		fatalf("encoding facts of %s: %v", cfg.ImportPath, err)
	}
	writeVetx(cfg, facts)
	if cfg.VetxOnly {
		return // the go command only wants this unit's facts
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// typecheckFailure honors SucceedOnTypecheckFailure (the go command sets
// it when the package is already known not to compile).
func typecheckFailure(cfg vetConfig, err error) {
	if cfg.SucceedOnTypecheckFailure {
		writeVetx(cfg, nil)
		return
	}
	fatalf("typecheck %s: %v", cfg.ImportPath, err)
}

// writeVetx writes the unit's vetx output — the gob-encoded object facts
// this package exports (nil for packages that export none). The go
// command content-addresses these files, which is why EncodePackage is
// byte-deterministic.
func writeVetx(cfg vetConfig, facts []byte) {
	if cfg.VetxOutput == "" {
		return
	}
	if facts == nil {
		facts = []byte{}
	}
	if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
		fatalf("%v", err)
	}
}

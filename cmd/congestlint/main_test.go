package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestVetMatchesStandalone is the driver-parity regression test: a
// module with an allocation and a wall-clock read hidden one and two
// calls below a RoundFunc kernel must produce the identical diagnostic
// set from the standalone sweep (`congestlint ./...`) and from
// `go vet -vettool=congestlint ./...`. The standalone driver moves facts
// through an in-process store; the vet driver round-trips them through
// gob-encoded vetx files — this test proves the two paths agree.
func TestVetMatchesStandalone(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and shells out to the go command")
	}
	tmp := t.TempDir()

	tool := filepath.Join(tmp, "congestlint")
	build := exec.Command("go", "build", "-o", tool, "repro/cmd/congestlint")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building congestlint: %v\n%s", err, out)
	}

	// A scratch module named repro, so its packages pass the vet driver's
	// module gate. The kernel reaches depth.LeafAlloc / depth.LeafClock
	// one call down and depth.MidAlloc / depth.MidClock two calls down.
	mod := filepath.Join(tmp, "mod")
	writeFile(t, filepath.Join(mod, "go.mod"), "module repro\n\ngo 1.21\n")
	writeFile(t, filepath.Join(mod, "depth", "depth.go"), `// Package depth hides the regressions below the kernel.
package depth

import "time"

func LeafAlloc() []uint64 { return make([]uint64, 8) }

func MidAlloc() []uint64 { return LeafAlloc() }

func LeafClock() int64 { return time.Now().Unix() }

func MidClock() int64 { return LeafClock() }
`)
	writeFile(t, filepath.Join(mod, "kern", "kern.go"), `// Package kern holds the round kernel.
package kern

import "repro/depth"

type Node struct{ ID int }

type Message struct{ Port int }

func kernel(n *Node, msgs []Message) bool {
	_ = depth.LeafAlloc()
	_ = depth.MidAlloc()
	return depth.LeafClock()+depth.MidClock() > 0
}

var _ = kernel
`)

	// The two drivers agree on everything but path rendering: standalone
	// prints absolute paths, vet prints them relative to the module.
	standalone := diagnosticLines(t, mod, runIn(t, mod, tool, "./..."))
	vet := diagnosticLines(t, mod, runIn(t, mod, "go", "vet", "-vettool="+tool, "./..."))

	if len(standalone) == 0 {
		t.Fatal("standalone sweep reported nothing; the parity check is vacuous")
	}
	if strings.Join(standalone, "\n") != strings.Join(vet, "\n") {
		t.Errorf("driver outputs diverge\nstandalone:\n  %s\nvet:\n  %s",
			strings.Join(standalone, "\n  "), strings.Join(vet, "\n  "))
	}

	// The acceptance shape: both transitive analyzers see through one and
	// two levels of calls below the kernel.
	for _, want := range []string{
		"hotalloc: call to depth.LeafAlloc allocates in hot path: make at",
		"hotalloc: call to depth.MidAlloc allocates in hot path: calls LeafAlloc",
		"purity: calls depth.LeafClock (wall-clock read (time.Now)) in determinism-critical code",
		"purity: calls depth.MidClock (calls LeafClock (wall-clock read (time.Now))) in determinism-critical code",
		"seededrand: time.Now reads the wall clock",
	} {
		if !containsSubstring(standalone, want) {
			t.Errorf("standalone sweep missing %q in:\n  %s", want, strings.Join(standalone, "\n  "))
		}
	}
}

// runIn runs cmd in dir and returns combined output; non-zero exit is
// expected (diagnostics fail the run) and not an error here.
func runIn(t *testing.T, dir, cmd string, args ...string) string {
	t.Helper()
	c := exec.Command(cmd, args...)
	c.Dir = dir
	out, err := c.CombinedOutput()
	if err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			t.Fatalf("running %s %v: %v\n%s", cmd, args, err, out)
		}
	}
	return string(out)
}

var diagLine = regexp.MustCompile(`\.go:\d+:\d+: `)

// diagnosticLines extracts and sorts the diagnostic lines (file:line:col
// prefixed) from a driver's output, dropping the go command's package
// headers and exit-status noise and normalizing paths to module-relative
// (standalone prints them absolute, vet relative).
func diagnosticLines(t *testing.T, mod, out string) []string {
	t.Helper()
	var lines []string
	for _, line := range strings.Split(out, "\n") {
		if !diagLine.MatchString(line) {
			continue
		}
		line = strings.TrimSpace(line)
		line = strings.ReplaceAll(line, mod+string(filepath.Separator), "")
		line = strings.TrimPrefix(line, "./")
		line = strings.ReplaceAll(line, " ./", " ")
		lines = append(lines, line)
	}
	sort.Strings(lines)
	return lines
}

func containsSubstring(lines []string, want string) bool {
	for _, l := range lines {
		if strings.Contains(l, want) {
			return true
		}
	}
	return false
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}

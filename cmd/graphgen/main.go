// graphgen generates the reproduction's graph families, validates their
// structural witnesses, and prints summary statistics — a quick way to
// inspect what the experiments run on. With -scale it instead drives the
// full zero-witness pipeline at scale (generate → elect → BFS → decompose
// → cap search → construct → MST) and prints the per-stage table.
//
// Usage:
//
//	graphgen -family grid|torus|apollonian|outerplanar|ktree|cliquesum|almostembed|lowerbound|wheel
//	         [-n N] [-k K] [-seed S]
//	graphgen -scale -family grid|wheel|chain [-n N] [-mode analytic|hybrid|simulate]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

func main() {
	family := flag.String("family", "grid", "graph family to generate")
	n := flag.Int("n", 100, "approximate size parameter")
	k := flag.Int("k", 3, "k parameter (treewidth / clique-sum order / vortex depth)")
	seed := flag.Int64("seed", 1, "deterministic seed")
	scale := flag.Bool("scale", false, "run the zero-witness pipeline at scale instead of describing the graph")
	mode := flag.String("mode", "hybrid", "scale pipeline mode: analytic, hybrid, or simulate")
	flag.Parse()
	if *scale {
		res, err := experiments.ScalePipeline(*family, *n, experiments.ScaleMode(*mode))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(res)
		return
	}
	rng := xrand.New(*seed)

	describe := func(g *graph.Graph, witness string) {
		// The exact all-pairs sweep is Θ(n·m); past experiment sizes only the
		// double-sweep estimate is affordable, so the exact call must be gated,
		// not merely overwritten.
		var d int
		if g.N() <= 4000 {
			d = graph.Diameter(g)
		} else {
			d = graph.DiameterApprox(g)
		}
		fmt.Printf("family=%s n=%d m=%d diameter=%d connected=%v\n",
			*family, g.N(), g.M(), d, graph.IsConnected(g))
		if witness != "" {
			fmt.Printf("witness: %s\n", witness)
		}
	}

	side := 1
	for side*side < *n {
		side++
	}
	switch *family {
	case "grid":
		e := gen.Grid(side, side)
		describe(e.G, fmt.Sprintf("planar embedding, genus=%d (validated)", e.Emb.Genus()))
	case "torus":
		e := gen.Torus(side, side)
		describe(e.G, fmt.Sprintf("toroidal embedding, genus=%d (validated)", e.Emb.Genus()))
	case "apollonian":
		a := gen.NewApollonian(*n, rng)
		d := gen.ApollonianDecomposition(a)
		describe(a.G, fmt.Sprintf("planar embedding genus=%d, tree decomposition width=%d (both validated)",
			a.EnsureEmbedding().Genus(), d.Width()))
	case "outerplanar":
		e := gen.Outerplanar(*n, *n/3, rng)
		describe(e.G, fmt.Sprintf("outerplanar embedding genus=%d, K4-minor-free=%v",
			e.Emb.Genus(), graph.IsSeriesParallelReducible(e.G)))
	case "ktree":
		kt := gen.KTree(*n, *k, rng)
		if err := kt.Decomp.Validate(); err != nil {
			log.Fatal(err)
		}
		describe(kt.G, fmt.Sprintf("tree decomposition width=%d over %d bags (validated)",
			kt.Decomp.Width(), kt.Decomp.NumBags()))
	case "cliquesum":
		bags := *n / 20
		if bags < 2 {
			bags = 2
		}
		pieces := make([]*gen.Piece, bags)
		for i := range pieces {
			pieces[i] = gen.ApollonianPiece(20, rng)
		}
		cs := gen.CliqueSum(pieces, *k, rng)
		if err := cs.CST.Validate(); err != nil {
			log.Fatal(err)
		}
		found, _ := graph.HasCliqueMinorWitness(cs.G, 5, 200, rng)
		describe(cs.G, fmt.Sprintf("%d-clique-sum of %d planar bags (Definition 8 validated); K5 minor found by search: %v",
			*k, bags, found))
	case "almostembed":
		a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
			Base:        gen.Grid(side, side),
			NumVortices: 1,
			VortexDepth: *k,
			VortexNodes: 4,
			NumApices:   1,
			ApexDegree:  0,
		}, rng)
		if err := a.Validate(); err != nil {
			log.Fatal(err)
		}
		describe(a.G, fmt.Sprintf("(1,0,%d,1)-almost-embeddable (Definition 5 validated)", *k))
	case "lowerbound":
		p := 1
		for p*p < *n {
			p++
		}
		lb := gen.LowerBound(p, p)
		describe(lb.G, fmt.Sprintf("[SHK+12] hard instance: %d paths x %d columns", p, p))
	case "wheel":
		e := gen.Wheel(*n)
		describe(e.G, fmt.Sprintf("planar embedding genus=%d; the §2.3.2 apex example", e.Emb.Genus()))
	default:
		log.Fatalf("unknown family %q", *family)
	}
}

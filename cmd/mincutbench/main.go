// mincutbench regenerates the (1+ε)-approximate minimum-cut table
// (experiment E7 of DESIGN.md).
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 2018, "deterministic seed")
	big := flag.Bool("big", false, "larger sweep (slower)")
	flag.Parse()

	sizes := []int{40, 80, 160}
	if *big {
		sizes = []int{40, 80, 160, 320, 640}
	}
	fmt.Println(experiments.E7MinCut(sizes, *seed))
}

// mstbench regenerates the distributed-MST round-complexity tables
// (experiments E6, E6b, E6c, E8b of DESIGN.md).
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 2018, "deterministic seed")
	big := flag.Bool("big", false, "larger sweeps (slower)")
	flag.Parse()

	wheel := []int{64, 128, 256}
	bags := []int{2, 4, 8}
	cols := []int{16, 32, 64}
	lb := []int{4, 6, 8}
	if *big {
		wheel = []int{64, 128, 256, 512}
		bags = []int{2, 4, 8, 16}
		cols = []int{16, 32, 64, 128}
		lb = []int{4, 6, 8, 12}
	}
	fmt.Println(experiments.E6MST(wheel, *seed))
	fmt.Println(experiments.E6bMSTExcludedMinor(bags, *seed))
	fmt.Println(experiments.AggregationShowcase(cols, *seed))
	fmt.Println(experiments.E8bLowerBoundMST(lb, *seed))
}

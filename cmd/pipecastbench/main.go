// pipecastbench regenerates the pipelined multi-token tree communication
// table (experiment E15): streaming k tagged block-count tokens to the
// root in one O(height + k) pipelined convergecast versus k sequential
// single-token convergecasts, plus the two-mode cap-search agreement with
// the bootstrap now measured message-level.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 2018, "deterministic seed")
	big := flag.Bool("big", false, "larger sweep (slower)")
	flag.Parse()

	grids := []int{6, 10, 14}
	wheels := []int{32, 64}
	chains := []int{2, 4, 8, 16}
	if *big {
		grids = []int{6, 10, 14, 18, 24}
		wheels = []int{32, 64, 128, 256}
		chains = []int{2, 4, 8, 16, 32}
	}
	fmt.Println(experiments.E15Pipecast(grids, wheels, chains, *seed))
}

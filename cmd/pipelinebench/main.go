// pipelinebench regenerates the zero-witness pipeline table (experiment
// E14): the network elects a leader, builds its own BFS tree, and runs the
// in-network doubling congestion-cap search with block-count part
// priorities — quality and round costs against the generator-supplied
// witness constructions, on grids, wheels, and K5-minor-free clique-sum
// chains.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 2018, "deterministic seed")
	big := flag.Bool("big", false, "larger sweep (slower)")
	flag.Parse()

	grids := []int{6, 10, 14}
	wheels := []int{32, 64}
	chains := []int{2, 4, 8, 16}
	if *big {
		grids = []int{6, 10, 14, 18, 24}
		wheels = []int{32, 64, 128, 256}
		chains = []int{2, 4, 8, 16, 32}
	}
	fmt.Println(experiments.E14Pipeline(grids, wheels, chains, *seed))
}

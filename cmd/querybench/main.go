// querybench regenerates the query-serving table (experiment E19): batched
// k-source (1+ε)-SSSP — one relaxation schedule pipelining all k sources'
// tokens over the same shortcut — against k sequential runs on grids,
// heavy-spoke wheels, and K5-minor-free clique-sum chains, plus a cached
// distance oracle replaying a Zipf-skewed query trace (queries/sec, cache
// hit rate, amortized rounds per query) on a 10^4-node wheel.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 2018, "deterministic seed")
	queries := flag.Int("queries", 20000, "queries per replayed trace")
	big := flag.Bool("big", false, "larger sweep (slower)")
	flag.Parse()

	grids := []int{10}
	wheels := []int{64}
	chains := []int{8}
	serveRim := 9999
	if *big {
		grids = []int{10, 14}
		wheels = []int{64, 128}
		chains = []int{8, 12}
		serveRim = 19999
	}
	fmt.Println(experiments.E19Query(grids, wheels, chains, serveRim, *queries, true, *seed))
}

// shortcutbench regenerates the shortcut-quality tables (experiments E1-E5,
// E8, E10, E11, E12 of DESIGN.md) from the command line.
//
// Usage:
//
//	shortcutbench [-seed N] [-exp e1,e2,...|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 2018, "deterministic seed")
	exp := flag.String("exp", "all", "comma-separated experiment IDs (e1,e2,e3,e4,e5,e8,e10,e11,e12) or 'all'")
	flag.Parse()

	runners := map[string]func() *experiments.Table{
		"e1":  func() *experiments.Table { return experiments.E1PlanarQuality([]int{6, 10, 14, 18, 24}, *seed) },
		"e2":  func() *experiments.Table { return experiments.E2Treewidth(400, []int{2, 3, 4, 6, 8}, *seed) },
		"e3":  func() *experiments.Table { return experiments.E3CliqueSum([]int{2, 4, 8, 12, 16}, 18, 3, *seed) },
		"e4":  func() *experiments.Table { return experiments.E4AlmostEmbeddable(*seed) },
		"e5":  func() *experiments.Table { return experiments.E5Main([]int{2, 4, 8, 16, 24}, *seed) },
		"e8":  func() *experiments.Table { return experiments.E8LowerBound([]int{4, 8, 12, 16, 20}, *seed) },
		"e10": func() *experiments.Table { return experiments.E10FoldingAblation([]int{8, 16, 32, 64}, *seed) },
		"e11": func() *experiments.Table { return experiments.E11ApexEffect([]int{32, 64, 128, 256}, *seed) },
		"e12": func() *experiments.Table { return experiments.E12Planarize([]int{0, 1, 2, 3}, *seed) },
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e8", "e10", "e11", "e12"}

	want := map[string]bool{}
	if *exp == "all" {
		for _, id := range order {
			want[id] = true
		}
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
				os.Exit(2)
			}
			want[id] = true
		}
	}
	for _, id := range order {
		if want[id] {
			fmt.Println(runners[id]())
		}
	}
}

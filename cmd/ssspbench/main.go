// ssspbench regenerates the distributed (1+ε)-approximate shortest-path
// table (experiment E9 of the evaluation plan): naive Bellman–Ford rounds
// vs the part-wise relaxation pipeline on wheels and K5-minor-free
// clique-sum chains.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 2018, "deterministic seed")
	big := flag.Bool("big", false, "larger sweep (slower)")
	flag.Parse()

	rims := []int{64, 128, 256, 512}
	chains := []int{32, 64, 128, 256}
	if *big {
		rims = []int{64, 128, 256, 512, 1024, 2048}
		chains = []int{32, 64, 128, 256, 512, 1024}
	}
	fmt.Println(experiments.E9SSSP(rims, chains, *seed))
}

// Network backbone resilience: a K5-minor-free wide-area network built as a
// 3-clique-sum of planar regional networks (Wagner's characterization of
// K5-free graphs). We compute the minimum spanning backbone and the
// (1+ε)-approximate minimum cut — the link set whose failure partitions the
// network — through the shortcut framework, and validate the cut against
// the exact Stoer-Wagner reference.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	nw, err := repro.ExcludedMinorNetwork(6, 24, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backbone: n=%d m=%d diameter=%d (K5-minor-free by construction)\n",
		nw.G.N(), nw.G.M(), nw.Diameter())

	res, err := nw.MST()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spanning backbone: weight=%.3f, %d phases, %d simulated rounds\n",
		res.Weight, res.Phases, res.CommRounds)

	cut, err := nw.ApproxMinCut(0.15)
	if err != nil {
		log.Fatal(err)
	}
	exact, _, err := nw.ExactMinCut()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min-cut: approx=%.3f exact=%.3f ratio=%.3f (trees packed: %d)\n",
		cut.Value, exact, cut.Value/exact, cut.Trees)
	fmt.Printf("weakest link set isolates %d nodes\n", len(cut.Side))
	if cut.Value < exact-1e-9 {
		log.Fatal("impossible: cut below minimum")
	}
}

// The Ω̃(√n) contrast (paper §1, [SHK+12]): on general graphs, even with
// diameter O(log n), tree-restricted shortcuts — and hence the framework
// algorithms — cannot beat ~√n. This demo builds the classical hard
// instance (√n paths overlaid with a shallow highway tree), measures the
// best oblivious shortcut quality for the path parts, and contrasts it with
// an excluded-minor network of similar size where quality tracks the
// diameter instead.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

func main() {
	const p, ell = 16, 16 // 16 paths of length 16: n ≈ 287
	lb := gen.LowerBound(p, ell)
	tr, err := graph.BFSTree(lb.G, lb.Root)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := partition.PathsAsParts(lb.G, lb.Paths)
	if err != nil {
		log.Fatal(err)
	}
	_, m := shortcut.ObliviousAuto(lb.G, tr, parts)
	fmt.Printf("lower-bound instance: n=%d diameter=%d\n", lb.G.N(), graph.Diameter(lb.G))
	fmt.Printf("  best oblivious shortcut quality for the %d paths: %d (≈√n·D territory)\n",
		p, m.Quality)

	nw, err := repro.ExcludedMinorNetwork(5, 20, 3)
	if err != nil {
		log.Fatal(err)
	}
	parts2, err := nw.VoronoiParts(p)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := nw.BuildShortcut(parts2)
	if err != nil {
		log.Fatal(err)
	}
	d := nw.Diameter()
	fmt.Printf("excluded-minor network: n=%d diameter=%d\n", nw.G.N(), d)
	fmt.Printf("  witness-based shortcut quality: %d (Õ(d²) = ~%d territory)\n",
		sc.Measurement.Quality, d*d)
	fmt.Println()
	fmt.Println("On minor-free networks quality tracks the diameter; on the")
	fmt.Println("lower-bound family it tracks √n even though the diameter is tiny —")
	fmt.Println("this is exactly the separation the paper exploits.")
}

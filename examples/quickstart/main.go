// Quickstart: build a planar network, construct tree-restricted shortcuts
// for a part family, and run the shortcut-framework distributed MST,
// printing the quantities the paper reasons about (quality, rounds).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// An excluded-minor network whose diameter collapsed to 2: a planar
	// grid of 8x32 nodes plus one apex linked everywhere (§2.3.2). This is
	// the regime the paper targets: parts can be far wider than the
	// diameter, so naive flooding is slow and shortcuts are essential.
	nw, err := repro.ApexNetwork(8, 32, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: n=%d m=%d diameter=%d\n", nw.G.N(), nw.G.M(), nw.Diameter())

	// Parts: Borůvka fragments early in an MST computation.
	parts, err := nw.FragmentParts(1)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := nw.BuildShortcut(parts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shortcut for %d fragments: congestion=%d blocks=%d quality=%d\n",
		parts.NumParts(), sc.Measurement.Congestion, sc.Measurement.MaxBlocks, sc.Measurement.Quality)

	// Distributed MST through the framework (Theorem 1 / Corollary 1).
	res, err := nw.MST()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MST: weight=%.3f phases=%d simulated-rounds=%d charged-construction-rounds=%d\n",
		res.Weight, res.Phases, res.CommRounds, res.ChargedRounds)

	// Compare with the naive baseline (no shortcuts).
	base, err := nw.MSTBaseline()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline (no shortcuts): simulated-rounds=%d (same tree: %v)\n",
		base.CommRounds, len(base.EdgeIDs) == len(res.EdgeIDs))
}

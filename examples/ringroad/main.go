// Ring road with an air-freight hub: the SSSP scenario of experiment E9.
//
// Depots sit on a ring road (cheap hops to their neighbors); one central
// air hub links every depot but air freight is expensive, so the cheapest
// routes hug the ring — shortest paths are hop-heavy even though the
// network diameter is 2. Plain distributed Bellman–Ford needs one round
// per ring hop; the shortcut framework's part-wise relaxation
// (weight-rounded Bellman–Ford over rim-arc parts, Ghaffari–Haeupler
// style) settles in a few phases of Õ(quality) rounds while guaranteeing
// (1+ε)-accurate travel times.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
	"repro/internal/sssp"
	"repro/internal/xrand"
)

func main() {
	const rim = 96 // depots on the ring
	const eps = 0.1
	rng := xrand.New(9)
	g := gen.Wheel(rim + 1).G
	hub := g.N() - 1
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		if e.U == hub || e.V == hub {
			g.SetWeight(id, float64(10*rim)+rng.Float64()) // air freight
		} else {
			g.SetWeight(id, 1+0.25*rng.Float64()) // ring segment
		}
	}
	parts, err := partition.RimArcs(g, 4)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := graph.BFSTree(g, hub)
	if err != nil {
		log.Fatal(err)
	}
	s, m := shortcut.ObliviousAuto(g, tr, parts)
	fmt.Printf("ring road: %d depots + air hub, diameter=%d, shortcut quality=%d\n",
		g.N(), graph.Diameter(g), m.Quality)

	const depot = 0
	// Exact oracle and the naive baseline, fully simulated: every depot
	// floods improved travel times to its road neighbors.
	exact, err := graph.Dijkstra(g, depot)
	if err != nil {
		log.Fatal(err)
	}
	weights := make([]float64, g.M())
	init := make([]float64, g.N())
	for id := range weights {
		weights[id] = g.Edge(id).W
	}
	for v := range init {
		init[v] = math.Inf(1)
	}
	init[depot] = 0
	naive, err := congest.RelaxBellmanFord(g, weights, init)
	if err != nil {
		log.Fatal(err)
	}

	// The (1+ε) pipeline with every phase's part-wise relaxation simulated
	// on the CONGEST engine.
	r, err := sssp.Approx(g, depot, parts, s, sssp.Options{Eps: eps, Simulate: true})
	if err != nil {
		log.Fatal(err)
	}
	// And the analytic-charge fast path used by the large benches.
	ra, err := sssp.Approx(g, depot, parts, s, sssp.Options{Eps: eps})
	if err != nil {
		log.Fatal(err)
	}

	stretch := 1.0
	for v := 0; v < g.N(); v++ {
		if math.Abs(naive.Dist[v]-exact.Dist[v]) > 1e-9 {
			log.Fatalf("naive Bellman-Ford disagrees with Dijkstra at %d", v)
		}
		if r.Dist[v] != ra.Dist[v] {
			log.Fatalf("simulated and analytic pipelines disagree at %d", v)
		}
		if v == depot {
			continue
		}
		if ratio := r.Dist[v] / exact.Dist[v]; ratio > stretch {
			stretch = ratio
		}
	}
	fmt.Printf("naive flooding:        %4d rounds (exact travel times)\n", naive.EffectiveRounds)
	fmt.Printf("part-wise relaxation:  %4d charged rounds over %d phases (analytic mode)\n",
		ra.ChargedRounds, ra.Phases)
	fmt.Printf("simulated pipeline:    %4d rounds, %d messages\n", r.CommRounds, r.Messages)
	fmt.Printf("achieved stretch:      %.4f (guarantee 1+ε = %.2f)\n", stretch, 1+eps)
	if stretch > 1+eps+1e-9 {
		log.Fatal("stretch guarantee violated")
	}
	if ra.ChargedRounds >= naive.EffectiveRounds {
		fmt.Println("note: at this ring size the naive flood is still competitive; grow the ring and it falls behind linearly")
	}
}

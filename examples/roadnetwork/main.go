// Road-network maintenance: a planar road network (random triangulated
// map) must elect a minimum-cost maintenance backbone (MST) in a
// distributed fashion. This exercises Corollary 1 on the motivating planar
// case and compares all three MST engines: shortcut framework, naive
// flooding, and the O(D+√n) pipelined baseline.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/graph"
)

func main() {
	for _, n := range []int{100, 300, 600} {
		nw, err := repro.PlanarNetwork(n, int64(n))
		if err != nil {
			log.Fatal(err)
		}
		d := nw.Diameter()
		withSc, err := nw.MST()
		if err != nil {
			log.Fatal(err)
		}
		naive, err := nw.MSTBaseline()
		if err != nil {
			log.Fatal(err)
		}
		piped, err := nw.MSTPipelined()
		if err != nil {
			log.Fatal(err)
		}
		_, kW := graph.Kruskal(nw.G)
		for _, r := range []*repro.MSTResult{withSc, naive, piped} {
			if diff := r.Weight - kW; diff > 1e-6 || diff < -1e-6 {
				log.Fatalf("wrong MST weight: %v vs %v", r.Weight, kW)
			}
		}
		fmt.Printf("n=%4d D=%3d | shortcut: %4d rounds | naive: %4d rounds | pipelined: %4d rounds | weight %.1f\n",
			n, d, withSc.CommRounds, naive.CommRounds, piped.CommRounds, kW)
	}
	fmt.Println("\nall three engines agree edge-for-edge with sequential Kruskal")
	fmt.Println("on benign low-diameter planar maps naive flooding is competitive —")
	fmt.Println("the shortcut framework's advantage appears when fragments grow much")
	fmt.Println("wider than the diameter (see examples/sensorapex and quickstart)")
}

// Road-network query serving: a planar road network (random triangulated
// map) answers point-to-point travel-distance queries from a distance
// oracle over one constructed shortcut. Cache misses run batched k-source
// (1+ε)-SSSP — one relaxation schedule pipelines every missing source's
// tokens, O(h+k) rounds per phase instead of k·O(h) — and cache hits cost
// zero communication. A Zipf-skewed trace (a few popular depots dominate)
// shows the serving economics: after warm-up nearly every query is a hit.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 600
	nw, err := repro.PlanarNetwork(n, int64(n))
	if err != nil {
		log.Fatal(err)
	}
	parts, err := nw.VoronoiParts(24)
	if err != nil {
		log.Fatal(err)
	}
	const eps = 0.125

	// Batched vs sequential: the same 8 depot sources through one batched
	// run and through 8 independent single-source runs.
	srcs := make([]int, 8)
	for i := range srcs {
		srcs[i] = (i * n) / len(srcs)
	}
	batch, err := nw.ApproxSSSPBatch(srcs, parts, eps)
	if err != nil {
		log.Fatal(err)
	}
	seqRounds := 0
	for _, s := range srcs {
		r, err := nw.ApproxSSSP(s, parts, eps)
		if err != nil {
			log.Fatal(err)
		}
		seqRounds += r.ChargedRounds
	}
	fmt.Printf("k=%d sources over the n=%d planar road map:\n", len(srcs), n)
	fmt.Printf("  batched:    %5d charged rounds (one pipelined schedule)\n", batch.ChargedRounds)
	fmt.Printf("  sequential: %5d charged rounds (%d independent runs)\n", seqRounds, len(srcs))
	fmt.Printf("  speedup:    %.2fx, answers byte-identical per source\n",
		float64(seqRounds)/float64(batch.ChargedRounds))

	// Sanity: oracle answers respect the (1+ε) stretch against Dijkstra
	// and agree bit-for-bit with the batched run.
	oracle, err := nw.NewDistanceOracle(parts, repro.OracleOptions{Eps: eps})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := nw.ExactSSSP(srcs[0])
	if err != nil {
		log.Fatal(err)
	}
	for v := 0; v < n; v++ {
		d, err := oracle.Dist(srcs[0], v)
		if err != nil {
			log.Fatal(err)
		}
		if d < exact.Dist[v]-1e-9 || d > (1+eps)*exact.Dist[v]+1e-9 {
			log.Fatalf("stretch violated at %d: oracle %v, exact %v", v, d, exact.Dist[v])
		}
		if batch.Dist[0][v] != d {
			log.Fatalf("oracle and batch disagree at %d", v)
		}
	}
	fmt.Printf("\noracle answers within (1+%.3g) of exact Dijkstra on all %d targets\n", eps, n)

	// Serve a Zipf-skewed trace twice: cold (cache fills) then warm.
	trace := repro.TraceOptions{Queries: 50000, ZipfS: 1.3, Seed: 7}
	cold, err := repro.ReplayTrace(oracle, trace)
	if err != nil {
		log.Fatal(err)
	}
	warm, err := repro.ReplayTrace(oracle, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nZipf(s=%.1f) trace, %d queries against the oracle:\n", trace.ZipfS, trace.Queries)
	fmt.Printf("  cold: hit rate %5.1f%%, %.3f rounds/query, %.2e queries/sec\n",
		100*cold.HitRate, cold.RoundsPerQuery, cold.QPS)
	fmt.Printf("  warm: hit rate %5.1f%%, %.3f rounds/query, %.2e queries/sec\n",
		100*warm.HitRate, warm.RoundsPerQuery, warm.QPS)
	if warm.Misses != 0 || warm.Rounds.Total() != 0 {
		log.Fatal("warm replay should be all hits at zero rounds")
	}
	if cold.Checksum != warm.Checksum {
		log.Fatal("cold and warm replays disagree")
	}
	st := oracle.Stats()
	fmt.Printf("\ncache holds %d of %d sources after %d queries; repeat queries are\n", st.CachedSources, n, 2*trace.Queries)
	fmt.Println("served locally while each miss pays one batched computation")
	fmt.Println("amortized across its trace window (see experiment E19)")
}

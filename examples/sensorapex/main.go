// Sensor field with a base station: the paper's apex scenario (§2.3.2).
//
// A planar grid of sensors has a single base station (apex) linked to every
// sensor, collapsing the network diameter to 2. Long sensor strips
// (deployment corridors) each need to agree on their minimum battery level —
// exactly the part-wise aggregation subproblem of the shortcut framework.
// Naive in-part flooding needs Θ(strip length) rounds; apex-aware
// tree-restricted shortcuts (Theorem 8) finish in O(quality) rounds.
package main

import (
	"fmt"
	"log"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
	"repro/internal/xrand"
)

func main() {
	const rows, cols = 8, 48
	rng := xrand.New(7)
	a := gen.PlanarWithApex(rows, cols, rng)
	if err := a.Validate(); err != nil {
		log.Fatal(err)
	}
	apex := a.Apices[0]
	tr, err := graph.BFSTree(a.G, apex)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sensor field: %dx%d grid + base station, diameter=%d, tree height=%d\n",
		rows, cols, graph.Diameter(a.G), tr.Height())

	// Corridors: each grid row is one strip of sensors.
	sets := make([][]int, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			sets[r] = append(sets[r], r*cols+c)
		}
	}
	parts, err := partition.New(a.G, sets)
	if err != nil {
		log.Fatal(err)
	}

	// Battery levels (permille), minimum per corridor wanted.
	levels := make([]uint64, a.G.N())
	for v := range levels {
		levels[v] = uint64(300 + (v*7919)%700)
	}

	// Naive: no shortcuts, flood inside each strip.
	empty := shortcut.Empty(a.G, tr, parts)
	rNaive, err := congest.AggregateMin(a.G, parts, empty, levels)
	if err != nil {
		log.Fatal(err)
	}

	// Apex-aware shortcuts (Theorem 8 construction).
	res, err := core.AlmostEmbeddableShortcut(a.G, tr, parts, a)
	if err != nil {
		log.Fatal(err)
	}
	rSmart, err := congest.AggregateMin(a.G, parts, res.S, levels)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("corridor minima: ")
	for i := 0; i < parts.NumParts(); i++ {
		fmt.Printf("%d ", rSmart.Mins[i])
		if rSmart.Mins[i] != rNaive.Mins[i] {
			log.Fatalf("disagreement on corridor %d", i)
		}
	}
	fmt.Println()
	fmt.Printf("naive flooding:      %4d rounds\n", rNaive.EffectiveRounds)
	fmt.Printf("apex-aware shortcut: %4d rounds  (quality=%d, blocks=%d, congestion=%d)\n",
		rSmart.EffectiveRounds, res.M.Quality, res.M.MaxBlocks, res.M.Congestion)
	if rSmart.EffectiveRounds >= rNaive.EffectiveRounds {
		log.Fatal("expected the shortcut-assisted aggregation to win")
	}
}

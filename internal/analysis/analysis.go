// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis core: Analyzer, Pass, and Diagnostic,
// plus a package loader (load.go) built on `go list -export` and the
// standard library's type checker. The container this repository builds in
// has no module proxy access, so vendoring x/tools is not an option; the
// five congestlint analyzers (detmap, ledger, hotalloc, zeromask,
// seededrand) only need this small surface.
//
// The suite exists because every invariant it checks has already shipped a
// bug that was found by hand: map-order nondeterminism in core.AssignCells
// (PR 1), simulated/charged ledger mixing in min-cut and ShortcutBoruvka
// (PR 2/PR 4), and zero-value results masquerading as successes in
// incomplete floods (PR 2/PR 3). congestlint turns each of those
// post-mortems into a machine-checked structural rule.
//
// Suppression: a finding may be silenced with a directive comment
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory — a bare allow does not suppress anything.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. It mirrors the x/tools type of the
// same name so the analyzers port unchanged if the real framework ever
// becomes available.
type Analyzer struct {
	Name string // short lowercase identifier, used in //lint:allow
	Doc  string // one-paragraph description: invariant + historical bug
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	facts *FactStore
	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// StaleAllowName is the pseudo-analyzer name under which unused
// //lint:allow directives are reported (a directive cannot itself be
// suppressed, so the allow inventory stays honest).
const StaleAllowName = "staleallow"

// Run applies each analyzer to each loaded package and returns the
// surviving diagnostics sorted by position, with //lint:allow suppressions
// already applied. Facts exported by earlier (dependency) packages are
// importable by later ones; pkgs must therefore arrive in dependency
// order, which Load and LoadFixture guarantee.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	return RunFacts(analyzers, pkgs, NewFactStore())
}

// RunFacts is Run with an externally owned fact store, so a driver can
// seed it with facts decoded from dependency vetx files (the unitchecker
// mode) and serialize the facts this run exports.
func RunFacts(analyzers []*Analyzer, pkgs []*Package, facts *FactStore) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				facts:     facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !allows.suppresses(d) && !pkg.FactsOnly {
					out = append(out, d)
				}
			}
		}
		if !pkg.FactsOnly {
			out = append(out, staleAllows(allows, analyzers)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	file     string
	line     int // line the directive is written on
	analyzer string
	reason   string
	hits     int // diagnostics this directive suppressed in this run
}

type allowSet struct{ directives []*allowDirective }

// collectAllows parses every //lint:allow directive in the package. The
// directive must name an analyzer and give a non-empty reason.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	var s allowSet
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // analyzer without reason: not a valid suppression
				}
				pos := fset.Position(c.Pos())
				s.directives = append(s.directives, &allowDirective{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return s
}

// suppresses reports whether d is covered by a directive on the same line
// or the line directly above, and records the hit on every covering
// directive so unused directives can be reported as stale.
func (s allowSet) suppresses(d Diagnostic) bool {
	hit := false
	for _, dir := range s.directives {
		if dir.file != d.Pos.Filename || dir.analyzer != d.Analyzer {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			dir.hits++
			hit = true
		}
	}
	return hit
}

// staleAllows reports every directive that names an analyzer that ran in
// this sweep yet suppressed nothing: the code it once excused has been
// fixed (or the analyzer got smarter), and a directive that no longer
// earns its keep is a latent hole in the allow inventory. Directives for
// analyzers outside the run set (a -only subset, or a single-analyzer
// fixture test) are not judged.
func staleAllows(allows allowSet, analyzers []*Analyzer) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var out []Diagnostic
	for _, dir := range allows.directives {
		if dir.hits > 0 || !ran[dir.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: StaleAllowName,
			Pos:      token.Position{Filename: dir.file, Line: dir.line},
			Message:  fmt.Sprintf("stale //lint:allow %s directive: it suppresses no diagnostic on this or the next line; delete it (reason given was: %s)", dir.analyzer, dir.reason),
		})
	}
	return out
}

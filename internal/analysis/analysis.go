// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis core: Analyzer, Pass, and Diagnostic,
// plus a package loader (load.go) built on `go list -export` and the
// standard library's type checker. The container this repository builds in
// has no module proxy access, so vendoring x/tools is not an option; the
// five congestlint analyzers (detmap, ledger, hotalloc, zeromask,
// seededrand) only need this small surface.
//
// The suite exists because every invariant it checks has already shipped a
// bug that was found by hand: map-order nondeterminism in core.AssignCells
// (PR 1), simulated/charged ledger mixing in min-cut and ShortcutBoruvka
// (PR 2/PR 4), and zero-value results masquerading as successes in
// incomplete floods (PR 2/PR 3). congestlint turns each of those
// post-mortems into a machine-checked structural rule.
//
// Suppression: a finding may be silenced with a directive comment
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory — a bare allow does not suppress anything.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check. It mirrors the x/tools type of the
// same name so the analyzers port unchanged if the real framework ever
// becomes available.
type Analyzer struct {
	Name string // short lowercase identifier, used in //lint:allow
	Doc  string // one-paragraph description: invariant + historical bug
	Run  func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run applies each analyzer to each loaded package and returns the
// surviving diagnostics sorted by position, with //lint:allow suppressions
// already applied.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows := collectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !allows.suppresses(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	file     string
	line     int // line the directive is written on
	analyzer string
	reason   string
}

type allowSet struct{ directives []allowDirective }

// collectAllows parses every //lint:allow directive in the package. The
// directive must name an analyzer and give a non-empty reason.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	var s allowSet
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // analyzer without reason: not a valid suppression
				}
				pos := fset.Position(c.Pos())
				s.directives = append(s.directives, allowDirective{
					file:     pos.Filename,
					line:     pos.Line,
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return s
}

// suppresses reports whether d is covered by a directive on the same line
// or the line directly above.
func (s allowSet) suppresses(d Diagnostic) bool {
	for _, dir := range s.directives {
		if dir.file != d.Pos.Filename || dir.analyzer != d.Analyzer {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// Package analysistest runs an analyzer over a testdata fixture package
// and checks its diagnostics against `// want` comment expectations, in
// the style of golang.org/x/tools/go/analysis/analysistest:
//
//	x := rangeOverMap() // want `nondeterministic map iteration`
//
// A want comment holds one or more quoted or backquoted regular
// expressions; each must be matched by exactly one diagnostic reported on
// that line. Diagnostics with no matching want, and wants with no matching
// diagnostic, fail the test. //lint:allow suppression is applied before
// matching, so fixtures can also assert that the directive silences a
// finding (a suppressed line simply carries no want comment).
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package at dir (a directory of .go files, usually
// testdata/src/<name>) together with any sibling fixture packages it
// imports, applies the analyzer to all of them in dependency order (so
// facts exported by a dependency fixture are importable by the target
// fixture), and reports mismatches between diagnostics and // want
// expectations — in every loaded fixture file — as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.LoadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						// Block form for lines whose trailing line comment
						// is already taken (e.g. a //lint:allow directive
						// asserted stale): /* want "..." */
						text, ok = strings.CutPrefix(c.Text, "/* want ")
						if !ok {
							continue
						}
						text = strings.TrimSuffix(strings.TrimSpace(text), "*/")
					}
					pos := pkg.Fset.Position(c.Pos())
					patterns, err := parseWant(text)
					if err != nil {
						t.Fatalf("%s: bad want comment: %v", pos, err)
					}
					for _, p := range patterns {
						re, err := regexp.Compile(p)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, p, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", filepath.Base(w.file), w.line, w.pattern)
		}
	}
}

// parseWant extracts the quoted or backquoted regexp literals from the
// text following "// want ".
func parseWant(text string) ([]string, error) {
	var out []string
	rest := strings.TrimSpace(text)
	for rest != "" {
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", rest)
			}
			out = append(out, rest[1:1+end])
			rest = strings.TrimSpace(rest[2+end:])
		case '"':
			// Re-quote through strconv to honor escapes.
			var lit string
			n := len(rest)
			for i := 1; i < n; i++ {
				if rest[i] == '"' && rest[i-1] != '\\' {
					n = i + 1
					break
				}
			}
			unq, err := strconv.Unquote(rest[:n])
			if err != nil {
				return nil, fmt.Errorf("bad quoted pattern %q: %v", rest[:n], err)
			}
			lit = unq
			out = append(out, lit)
			rest = strings.TrimSpace(rest[n:])
		default:
			return nil, fmt.Errorf("expected quoted regexp at %q", rest)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}

// Package astx holds the small AST/type helpers shared by the congestlint
// analyzers.
package astx

import (
	"go/ast"
	"go/types"
	"strings"
)

// InScope reports whether an analyzer restricted to the given repo package
// prefixes should run on pkgPath. Fixture packages (anything outside the
// repro module) always pass, so analysistest testdata exercises the checks
// without living under the restricted paths.
func InScope(pkgPath string, prefixes []string) bool {
	if !strings.HasPrefix(pkgPath, "repro/") {
		return true
	}
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// RootObj peels index, selector, paren, and star layers off an lvalue-ish
// expression and returns the types.Object of the base identifier, or nil.
// edges[i], s.buf, and (*p).xs all resolve to their base variable.
func RootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// UsesObj reports whether obj appears anywhere inside e.
func UsesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// PkgFunc returns the package path and name of the function called by
// fun, if it is a package-level function of an imported package
// (e.g. sort.Slice → "sort", "Slice"). ok is false for methods, builtins,
// and locals.
func PkgFunc(info *types.Info, fun ast.Expr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.ObjectOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// IsMapType reports whether the static type of e is a map.
func IsMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// NamedTypeName returns the name of e's static type if it is a named
// (defined) type, unwrapping one pointer level: *congest.Stats and
// congest.Stats both yield "Stats".
func NamedTypeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if n, isNamed := t.(*types.Named); isNamed {
		return n.Obj().Name()
	}
	return ""
}

// EnclosingFuncs walks file and calls fn for every function body (FuncDecl
// or FuncLit) with the node providing the body.
func EnclosingFuncs(file *ast.File, fn func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body)
			}
		case *ast.FuncLit:
			fn(d, d.Body)
		}
		return true
	})
}

// Package astx holds the small AST/type helpers shared by the congestlint
// analyzers.
package astx

import (
	"go/ast"
	"go/types"
	"strings"
)

// InScope reports whether an analyzer restricted to the given repo package
// prefixes should run on pkgPath. Fixture packages (anything outside the
// repro module) always pass, so analysistest testdata exercises the checks
// without living under the restricted paths.
func InScope(pkgPath string, prefixes []string) bool {
	if !strings.HasPrefix(pkgPath, "repro/") {
		return true
	}
	for _, p := range prefixes {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// RootObj peels index, selector, paren, and star layers off an lvalue-ish
// expression and returns the types.Object of the base identifier, or nil.
// edges[i], s.buf, and (*p).xs all resolve to their base variable.
func RootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// UsesObj reports whether obj appears anywhere inside e.
func UsesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// PkgFunc returns the package path and name of the function called by
// fun, if it is a package-level function of an imported package
// (e.g. sort.Slice → "sort", "Slice"). ok is false for methods, builtins,
// and locals.
func PkgFunc(info *types.Info, fun ast.Expr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.ObjectOf(sel.Sel).(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// IsMapType reports whether the static type of e is a map.
func IsMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// NamedTypeName returns the name of e's static type if it is a named
// (defined) type, unwrapping one pointer level: *congest.Stats and
// congest.Stats both yield "Stats".
func NamedTypeName(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	if n, isNamed := t.(*types.Named); isNamed {
		return n.Obj().Name()
	}
	return ""
}

// HasDirective reports whether doc contains the given //-directive
// (e.g. "//congest:hotpath", "//congest:pure") as a line prefix.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// IsRoundFuncShape matches the engine's round-kernel signature
// func(*Node, []Message) bool structurally by parameter type names, so
// fixtures with local Node/Message types exercise the shape-triggered
// checks.
func IsRoundFuncShape(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok || namedName(ptr.Elem()) != "Node" {
		return false
	}
	sl, ok := sig.Params().At(1).Type().Underlying().(*types.Slice)
	if !ok || namedName(sl.Elem()) != "Message" {
		return false
	}
	basic, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

func namedName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// FuncLitSig returns the signature of a function literal, or nil.
func FuncLitSig(info *types.Info, lit *ast.FuncLit) *types.Signature {
	tv, ok := info.Types[lit]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// IsMethodValue reports whether sel is a bound-method value — x.M used
// as a value rather than called, which allocates a closure binding x.
// The caller must ensure sel is not the Fun of a call expression.
func IsMethodValue(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	return ok && s.Kind() == types.MethodVal
}

// EnclosingFuncs walks file and calls fn for every function body (FuncDecl
// or FuncLit) with the node providing the body.
func EnclosingFuncs(file *ast.File, fn func(node ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body)
			}
		case *ast.FuncLit:
			fn(d, d.Body)
		}
		return true
	})
}

// Package callgraph builds the package-level static call graph the
// interprocedural congestlint analyzers (hotalloc, purity, errflow) walk.
//
// The graph covers one type-checked package: every declared function and
// method gets a node, and so does every function literal (the engine's
// round kernels are literals returned by setup functions, so literals
// are first-class here). Edges are static calls — direct calls of
// package-level functions, methods resolved on concrete receivers, and
// calls of imported functions. Dynamic dispatch (interface methods,
// calls through function-typed variables) produces no edge; the
// analyzers compensate with facts at the points where function values
// are created or passed.
//
// Calls lexically inside a nested function literal belong to the
// literal's own node, not the enclosing function's: whether an analyzer
// follows the enclosing→literal containment edge is its own choice
// (purity does — a literal built in a pure context is assumed callable
// there; hotalloc's reachability does not, because creating the closure
// is already a reported allocation).
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Node is one function body: a declared function/method (Fn non-nil) or
// a function literal (Lit non-nil).
type Node struct {
	Fn    *types.Func    // declared function or method; nil for literals
	Lit   *ast.FuncLit   // literal; nil for declarations
	Decl  *ast.FuncDecl  // declaration AST; nil for literals
	Body  *ast.BlockStmt // never nil
	Calls []Call         // static calls lexically in Body, outside nested literals
	Lits  []*Node        // directly nested function literals
	Encl  *Node          // enclosing node for literals; nil for declarations
}

// Call is one static call site.
type Call struct {
	Callee *types.Func // resolved static callee; possibly from another package
	Pos    token.Pos
}

// Graph is the call graph of one package.
type Graph struct {
	Nodes []*Node // all nodes, in source order
	ByFn  map[*types.Func]*Node
	ByLit map[*ast.FuncLit]*Node
}

// Build constructs the call graph for the given files of one
// type-checked package.
func Build(info *types.Info, files []*ast.File) *Graph {
	g := &Graph{
		ByFn:  make(map[*types.Func]*Node),
		ByLit: make(map[*ast.FuncLit]*Node),
	}
	for _, file := range files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				n := &Node{Decl: d, Body: d.Body}
				if fn, ok := info.ObjectOf(d.Name).(*types.Func); ok {
					n.Fn = fn
					g.ByFn[fn] = n
				}
				g.Nodes = append(g.Nodes, n)
				g.fill(info, n)
			case *ast.GenDecl:
				// Function literals in package-level var initializers
				// (the engine's combiner tables) get top-level nodes.
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						g.fillTopLits(info, v)
					}
				}
			}
		}
	}
	return g
}

// fillTopLits creates nodes for function literals inside a package-level
// initializer expression.
func (g *Graph) fillTopLits(info *types.Info, expr ast.Expr) {
	ast.Inspect(expr, func(x ast.Node) bool {
		e, ok := x.(*ast.FuncLit)
		if !ok {
			return true
		}
		lit := &Node{Lit: e, Body: e.Body}
		g.ByLit[e] = lit
		g.Nodes = append(g.Nodes, lit)
		g.fill(info, lit)
		return false
	})
}

// fill records n's direct calls and recursively builds nodes for its
// directly nested literals.
func (g *Graph) fill(info *types.Info, n *Node) {
	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			lit := &Node{Lit: e, Body: e.Body, Encl: n}
			n.Lits = append(n.Lits, lit)
			g.ByLit[e] = lit
			g.Nodes = append(g.Nodes, lit)
			g.fill(info, lit)
			return false
		case *ast.CallExpr:
			if callee := StaticCallee(info, e); callee != nil {
				n.Calls = append(n.Calls, Call{Callee: callee, Pos: e.Pos()})
			}
		}
		return true
	})
}

// StaticCallee resolves the *types.Func a call expression statically
// invokes: a package-level function (local or imported) or a method on a
// concrete receiver. It returns nil for builtins, conversions, and calls
// through function-typed values or interfaces.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.ObjectOf(fun)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			obj = sel.Obj()
		} else {
			obj = info.ObjectOf(fun.Sel) // qualified identifier pkg.F
		}
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	// Normalize generic instantiations to the declared origin so callees
	// match the graph's ByFn keys and fact keys.
	return fn.Origin()
}

// Reachable returns the set of nodes reachable from seeds along static
// call edges into this package's declared functions. When followLits is
// true, a node's directly nested literals are treated as reachable from
// it (the conservative assumption that a closure built in a body may run
// there).
func (g *Graph) Reachable(seeds []*Node, followLits bool) map[*Node]bool {
	seen := make(map[*Node]bool)
	var visit func(n *Node)
	visit = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, c := range n.Calls {
			if target, ok := g.ByFn[c.Callee]; ok {
				visit(target)
			}
		}
		if followLits {
			for _, lit := range n.Lits {
				visit(lit)
			}
		}
	}
	for _, s := range seeds {
		visit(s)
	}
	return seen
}

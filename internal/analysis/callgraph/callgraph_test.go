package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/analysis/callgraph"
)

const src = `package p

func a() { b(); c() }

func b() { c() }

func c() {}

func d() { b() }

// e's call of b happens inside a nested literal; the literal gets its
// own node and e itself has no direct call edge.
func e() {
	f := func() { b() }
	f()
}

type T struct{}

func (t *T) M() { c() }

func viaMethod(t *T) { t.M() }
`

func load(t *testing.T) (*types.Info, []*ast.File, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return info, []*ast.File{f}, pkg
}

func node(t *testing.T, g *callgraph.Graph, pkg *types.Package, name string) *callgraph.Node {
	t.Helper()
	for fn, n := range g.ByFn {
		if fn.Name() == name {
			return n
		}
	}
	t.Fatalf("no node for %s", name)
	return nil
}

func TestBuildEdges(t *testing.T) {
	info, files, pkg := load(t)
	g := callgraph.Build(info, files)

	a := node(t, g, pkg, "a")
	if len(a.Calls) != 2 {
		t.Fatalf("a has %d direct calls, want 2", len(a.Calls))
	}

	// e's call of b is inside the literal: e has one direct call (of the
	// function-typed variable f, which resolves to no static callee) and
	// one nested literal node carrying the b edge.
	e := node(t, g, pkg, "e")
	if len(e.Calls) != 0 {
		t.Fatalf("e has %d direct static calls, want 0 (call through variable)", len(e.Calls))
	}
	if len(e.Lits) != 1 || len(e.Lits[0].Calls) != 1 || e.Lits[0].Calls[0].Callee.Name() != "b" {
		t.Fatalf("e's literal should carry exactly the b edge, got %+v", e.Lits)
	}

	// Concrete method dispatch resolves statically.
	vm := node(t, g, pkg, "viaMethod")
	if len(vm.Calls) != 1 || vm.Calls[0].Callee.Name() != "M" {
		t.Fatalf("viaMethod should have a static edge to M, got %+v", vm.Calls)
	}
}

func TestReachable(t *testing.T) {
	info, files, pkg := load(t)
	g := callgraph.Build(info, files)

	names := func(set map[*callgraph.Node]bool) map[string]bool {
		out := make(map[string]bool)
		for n := range set {
			if n.Fn != nil {
				out[n.Fn.Name()] = true
			}
		}
		return out
	}

	// From a: a, b, c — not d, not e.
	got := names(g.Reachable([]*callgraph.Node{node(t, g, pkg, "a")}, false))
	for _, want := range []string{"a", "b", "c"} {
		if !got[want] {
			t.Errorf("reachable from a: missing %s", want)
		}
	}
	if got["d"] || got["e"] {
		t.Errorf("reachable from a unexpectedly contains d or e: %v", got)
	}

	// From e without literals: only e. With literals: e, b, c.
	if got := names(g.Reachable([]*callgraph.Node{node(t, g, pkg, "e")}, false)); got["b"] {
		t.Errorf("without followLits, b should be unreachable from e: %v", got)
	}
	if got := names(g.Reachable([]*callgraph.Node{node(t, g, pkg, "e")}, true)); !got["b"] || !got["c"] {
		t.Errorf("with followLits, b and c should be reachable from e: %v", got)
	}
}

// Package detmap implements the congestlint analyzer that guards the
// engine's byte-determinism against Go's randomized map iteration order.
//
// The invariant: a `range` over a map may only feed order-insensitive
// computation (set/map writes, commutative counters). The moment map
// iteration order can reach a returned slice, a message emission, or a
// Stats field, transcripts stop being byte-identical across runs and
// GOMAXPROCS settings — the exact bug PR 1 fixed by hand in
// core.AssignCells. detmap flags:
//
//   - appends into a slice inside a map-range body with no subsequent
//     sort.*/slices.Sort* call on that slice in the same function;
//   - channel sends and Send/Broadcast/Emit/Write/Print-style calls
//     inside a map-range body;
//   - plain (last-write-wins) assignments to fields of a Stats value
//     inside a map-range body.
//
// The canonical fixes are to collect keys, sort them, and iterate the
// sorted slice, or to sort the accumulated slice before it escapes.
package detmap

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astx"
)

// Scope is the set of repo packages whose map ranges are checked: the
// packages on the deterministic-transcript path.
var Scope = []string{
	"repro/internal/congest",
	"repro/internal/shortcut",
	"repro/internal/partition",
	"repro/internal/core",
	"repro/internal/pipeline",
	"repro/internal/experiments",
}

var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc:  "flags map iteration whose order can reach returned slices, messages, or Stats fields (PR 1's core.AssignCells bug class)",
	Run:  run,
}

// emitNames are method names that emit messages or output; calling one
// per map-iteration step serializes the random order into a transcript.
var emitNames = map[string]bool{
	"Send": true, "Broadcast": true, "Emit": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// sortCalls neutralize an order-dependent accumulation.
var sortCalls = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

func run(pass *analysis.Pass) error {
	if !astx.InScope(pass.Pkg.Path(), Scope) {
		return nil
	}
	for _, file := range pass.Files {
		astx.EnclosingFuncs(file, func(node ast.Node, body *ast.BlockStmt) {
			checkBody(pass, node, body)
		})
	}
	return nil
}

// checkBody examines the map-range loops directly inside one function
// body (nested function literals are visited by their own call).
func checkBody(pass *analysis.Pass, fnNode ast.Node, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false // handled by its own EnclosingFuncs visit
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !astx.IsMapType(pass.TypesInfo, rs.X) {
			return true
		}
		checkMapRange(pass, rs, body)
		return true
	})
}

func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, enclosing *ast.BlockStmt) {
	// appends maps the accumulating object to the first append position.
	appends := make(map[types.Object]token.Pos)
	var appendOrder []types.Object

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(s.Pos(), "channel send inside map iteration: delivery order follows randomized map order")
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok && emitNames[sel.Sel.Name] {
				if _, isPkg := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func); isPkg {
					pass.Reportf(s.Pos(), "%s call inside map iteration: emission order follows randomized map order", sel.Sel.Name)
				}
			}
		case *ast.AssignStmt:
			checkAssign(pass, s, appends, &appendOrder)
		}
		return true
	})

	for _, obj := range appendOrder {
		pos := appends[obj]
		if sortedAfter(pass, enclosing, rs.End(), obj) {
			continue
		}
		pass.Reportf(pos, "slice %q accumulates randomized map-iteration order with no later sort in this function: sort it before it escapes, or iterate sorted keys", obj.Name())
	}
}

// checkAssign records order-sensitive accumulation and Stats writes
// inside a map-range body.
func checkAssign(pass *analysis.Pass, s *ast.AssignStmt, appends map[types.Object]token.Pos, order *[]types.Object) {
	// Plain assignment to a Stats field is last-write-wins under random
	// order. Compound ops (+=, |=) are commutative and pass.
	if s.Tok == token.ASSIGN {
		for _, lhs := range s.Lhs {
			if sel, ok := lhs.(*ast.SelectorExpr); ok && astx.NamedTypeName(pass.TypesInfo, sel.X) == "Stats" {
				pass.Reportf(s.Pos(), "plain assignment to Stats field %q inside map iteration is last-write-wins under randomized order; use a commutative update", sel.Sel.Name)
			}
		}
	}
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, rhs := range s.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); !isIdent || id.Name != "append" {
			continue
		}
		if _, isBuiltin := pass.TypesInfo.ObjectOf(ast.Unparen(call.Fun).(*ast.Ident)).(*types.Builtin); !isBuiltin {
			continue
		}
		obj := astx.RootObj(pass.TypesInfo, s.Lhs[i])
		if obj == nil {
			continue
		}
		if _, seen := appends[obj]; !seen {
			appends[obj] = s.Pos()
			*order = append(*order, obj)
		}
	}
}

// sortedAfter reports whether a sort.*/slices.Sort* call mentioning obj
// appears after pos in the enclosing function body.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		pkg, name, ok := astx.PkgFunc(pass.TypesInfo, call.Fun)
		if !ok || !sortCalls[sortPkgName(pkg)][name] {
			return true
		}
		for _, arg := range call.Args {
			if astx.UsesObj(pass.TypesInfo, arg, obj) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

// sortPkgName maps an import path to its sort-table key ("sort" and
// "slices" are both stdlib, so path == name).
func sortPkgName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

package detmap_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detmap"
)

// TestDetmap checks the analyzer against its fixture package: every
// // want expectation must be reported and nothing else may be; the
// fixture also pins that //lint:allow suppresses with a reason given.
func TestDetmap(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "detmaptest"), detmap.Analyzer)
}

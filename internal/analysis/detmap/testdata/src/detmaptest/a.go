// Package detmaptest is the analysistest fixture for the detmap
// analyzer. AssignCellsBug reproduces the exact shape of the PR 1
// core.AssignCells nondeterminism: cell membership collected by ranging a
// map straight into the returned slices.
package detmaptest

import (
	"fmt"
	"sort"
)

// Stats mirrors the engine's counter struct by name; detmap matches the
// type name, not the package.
type Stats struct {
	Rounds   int
	MsgsSent int
}

// AssignCellsBug is the historical PR 1 bug: the returned cell lists pick
// up randomized map-iteration order.
func AssignCellsBug(cellOf map[int]int, numCells int) [][]int {
	cells := make([][]int, numCells)
	for v, c := range cellOf {
		cells[c] = append(cells[c], v) // want `accumulates randomized map-iteration order`
	}
	return cells
}

// AssignCellsFixed is the shipped fix: identical accumulation, then every
// cell list is sorted before it escapes.
func AssignCellsFixed(cellOf map[int]int, numCells int) [][]int {
	cells := make([][]int, numCells)
	flat := make([]int, 0, len(cellOf))
	for v, c := range cellOf {
		flat = append(flat, v<<8|c)
	}
	sort.Ints(flat)
	for _, vc := range flat {
		cells[vc&0xff] = append(cells[vc&0xff], vc>>8)
	}
	return cells
}

// SortedKeysClean iterates a sorted key slice instead of the map, the
// other canonical fix.
func SortedKeysClean(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// CommutativeClean only performs order-insensitive updates: set writes
// and counters never observe iteration order.
func CommutativeClean(m map[int]int) (int, map[int]bool) {
	total := 0
	seen := make(map[int]bool)
	for k, v := range m {
		total += v
		seen[k] = true
	}
	return total, seen
}

// EmissionBug serializes map order into an output stream.
func EmissionBug(m map[int]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `Println call inside map iteration`
	}
}

// ChannelBug delivers map-ordered values to a consumer.
func ChannelBug(m map[int]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside map iteration`
	}
}

// StatsBug overwrites a Stats field per iteration step: the surviving
// value is whichever key the runtime happened to visit last.
func StatsBug(m map[int]int, s *Stats) {
	for _, v := range m {
		s.Rounds = v // want `plain assignment to Stats field "Rounds"`
		s.MsgsSent += v
	}
}

// AllowedAccumulate shows the suppression directive: order provably
// cannot escape because the caller sorts, and the reason says so.
func AllowedAccumulate(m map[int]int) []int {
	var out []int
	for k := range m {
		//lint:allow detmap the sole caller sorts this slice before use
		out = append(out, k)
	}
	return out
}

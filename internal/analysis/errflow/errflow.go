// Package errflow implements the congestlint analyzer that keeps
// congest.ErrIncomplete flowing.
//
// The resilience contract (PR 6) is that an incomplete phase is a
// first-class outcome: ErrIncomplete (and *IncompleteError values
// wrapping it) must reach the retry/adversary machinery or the caller —
// it may be propagated, wrapped with %w, or routed through
// Retryable/Adversary, but never silently discarded or replaced by a
// zero value. A dropped ErrIncomplete turns a truncated convergecast
// into a wrong answer that still looks byte-identical across runs.
//
// errflow finds the functions that can produce the error and polices
// their call sites:
//
//   - a function is an incomplete source if a return statement mentions
//     the ErrIncomplete sentinel or builds an IncompleteError (matched by
//     name, like the RoundFunc shape rules, so fixtures work), or —
//     conservatively — if it returns an error and calls another source;
//     sources are exported as IncompleteSourceFact, so the rule crosses
//     package boundaries;
//   - at each call of a source, the error result must be consumed:
//     an ExprStmt / go / defer that drops it, a blank identifier in the
//     error position, or an assignment to a variable that is never read
//     afterwards is reported;
//   - inside an `if err != nil` branch guarding a source's error, a
//     `return ..., nil` that does not otherwise consult err masks the
//     error with the zero value and is reported.
//
// Any genuine use counts as handling: returning the error, wrapping it,
// comparing it, or passing it to any function (Retryable(err),
// errors.Is(err, ...), logging). The analyzer deliberately
// over-approximates sources; a call site that discards an error for a
// proven reason takes a //lint:allow errflow with the reason spelled out.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/astx"
	"repro/internal/analysis/callgraph"
)

// IncompleteSourceFact marks a function whose error result may be (or
// wrap) congest.ErrIncomplete.
type IncompleteSourceFact struct{}

func (*IncompleteSourceFact) AFact() {}

func init() {
	analysis.RegisterFact(&IncompleteSourceFact{})
}

var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "congest.ErrIncomplete must be propagated, wrapped, or routed through Retryable/Adversary — never discarded or masked with a zero value",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.Build(pass.TypesInfo, pass.Files)

	// Sources: direct mentions in returns, then a fixpoint over calls.
	source := make(map[*callgraph.Node]bool)
	for _, n := range g.Nodes {
		if returnsIncomplete(pass, n) {
			source[n] = true
		}
	}
	for {
		changed := false
		for _, n := range g.Nodes {
			if source[n] || !hasErrorResult(pass, n) {
				continue
			}
			for _, c := range n.Calls {
				if isSourceCallee(pass, g, c.Callee, source) {
					source[n] = true
					changed = true
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	for _, n := range g.Nodes {
		if n.Fn != nil && source[n] {
			pass.ExportObjectFact(n.Fn, &IncompleteSourceFact{})
		}
	}

	// Police every call site of a source.
	for _, n := range g.Nodes {
		checkCallSites(pass, g, n, source)
	}
	return nil
}

// returnsIncomplete reports whether a return statement in n's body (not
// in nested literals) mentions the ErrIncomplete sentinel or constructs
// an IncompleteError value.
func returnsIncomplete(pass *analysis.Pass, n *callgraph.Node) bool {
	found := false
	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range e.Results {
				if mentionsIncomplete(pass, res) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// mentionsIncomplete reports whether e contains the ErrIncomplete
// sentinel var or an IncompleteError composite literal. Matching is by
// name — the same fixture-friendly convention as the RoundFunc shape.
func mentionsIncomplete(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.Ident:
			if obj, ok := pass.TypesInfo.Uses[v].(*types.Var); ok &&
				obj.Name() == "ErrIncomplete" && obj.Parent() != nil && obj.Pkg() != nil &&
				obj.Parent() == obj.Pkg().Scope() {
				found = true
			}
		case *ast.CompositeLit:
			if astx.NamedTypeName(pass.TypesInfo, v) == "IncompleteError" {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasErrorResult reports whether n's last result is error-typed.
func hasErrorResult(pass *analysis.Pass, n *callgraph.Node) bool {
	var sig *types.Signature
	if n.Fn != nil {
		sig, _ = n.Fn.Type().(*types.Signature)
	} else {
		sig = astx.FuncLitSig(pass.TypesInfo, n.Lit)
	}
	return errorResultIndex(sig) >= 0
}

// errorResultIndex returns the index of sig's trailing error result, or
// -1.
func errorResultIndex(sig *types.Signature) int {
	if sig == nil || sig.Results().Len() == 0 {
		return -1
	}
	last := sig.Results().Len() - 1
	if types.Implements(sig.Results().At(last).Type(), errorIface) {
		return last
	}
	return -1
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isSourceCallee reports whether callee is an incomplete source — a
// local node in the source set, or an imported IncompleteSourceFact.
func isSourceCallee(pass *analysis.Pass, g *callgraph.Graph, callee *types.Func, source map[*callgraph.Node]bool) bool {
	if local, ok := g.ByFn[callee]; ok {
		return source[local]
	}
	var fact IncompleteSourceFact
	return pass.ImportObjectFact(callee, &fact)
}

// checkCallSites classifies every source call lexically in n's body.
func checkCallSites(pass *analysis.Pass, g *callgraph.Graph, n *callgraph.Node, source map[*callgraph.Node]bool) {
	// stack of ancestors for locating the enclosing statement of a call.
	var stack []ast.Node
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if x == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if _, ok := x.(*ast.FuncLit); ok && len(stack) > 0 {
			return false // nested literal: its own node
		}
		stack = append(stack, x)
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := callgraph.StaticCallee(pass.TypesInfo, call)
		if callee == nil || !isSourceCallee(pass, g, callee, source) {
			return true
		}
		checkOneCall(pass, n, call, callee, stack)
		return true
	})
}

// checkOneCall applies the discard/mask rules to one source call given
// the ancestor stack (stack[len-1] == call).
func checkOneCall(pass *analysis.Pass, n *callgraph.Node, call *ast.CallExpr, callee *types.Func, stack []ast.Node) {
	name := calleeName(pass, callee)
	// Walk outward past parens to the first interesting ancestor.
	for i := len(stack) - 2; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.ExprStmt:
			pass.Reportf(call.Pos(), "result of %s may be congest.ErrIncomplete and is dropped: propagate it, wrap it with %%w, or route it through Retryable/Adversary", name)
			return
		case *ast.GoStmt, *ast.DeferStmt:
			pass.Reportf(call.Pos(), "result of %s may be congest.ErrIncomplete and is dropped by go/defer: collect the error and route it through Retryable/Adversary", name)
			return
		case *ast.AssignStmt:
			checkAssign(pass, n, parent, call, callee, name)
			return
		default:
			return // return stmt, call argument, comparison, …: the error is consumed
		}
	}
}

// checkAssign handles `... = src(...)`: a blank in the error position, a
// variable never read afterwards, or a guarded branch masking with nil.
func checkAssign(pass *analysis.Pass, n *callgraph.Node, as *ast.AssignStmt, call *ast.CallExpr, callee *types.Func, name string) {
	sig, _ := callee.Type().(*types.Signature)
	errIdx := errorResultIndex(sig)
	if errIdx < 0 {
		return
	}
	var lhs ast.Expr
	switch {
	case len(as.Rhs) == 1 && len(as.Lhs) == sig.Results().Len():
		lhs = as.Lhs[errIdx] // tuple assignment v, err := src()
	case len(as.Rhs) == len(as.Lhs):
		for i, r := range as.Rhs {
			if ast.Unparen(r) == call {
				lhs = as.Lhs[i]
			}
		}
	}
	if lhs == nil {
		return
	}
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return // stored into a field/slot: assume consumed
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(), "result of %s may be congest.ErrIncomplete and is discarded into _: propagate it, wrap it with %%w, or route it through Retryable/Adversary", name)
		return
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return
	}
	if !readAfter(pass, n.Body, obj, as.End()) {
		pass.Reportf(call.Pos(), "result of %s may be congest.ErrIncomplete, but %s is never consulted after this assignment: propagate it, wrap it with %%w, or route it through Retryable/Adversary", name, id.Name)
		return
	}
	checkNilMask(pass, n, obj, as.End(), name)
}

// readAfter reports whether obj is read (not merely overwritten) after
// pos inside body.
func readAfter(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch e := x.(type) {
		case *ast.AssignStmt:
			// LHS identifiers are writes, not reads: skip them, walk RHS.
			if e.Pos() > pos {
				for _, r := range e.Rhs {
					if astx.UsesObj(pass.TypesInfo, r, obj) {
						found = true
					}
				}
			}
			return false
		case *ast.Ident:
			if e.Pos() > pos && pass.TypesInfo.Uses[e] == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkNilMask reports `return ..., nil` inside an `if <cond using err>`
// branch that does not otherwise consult err: the incomplete error is
// noticed and then replaced by the zero value.
func checkNilMask(pass *analysis.Pass, n *callgraph.Node, obj types.Object, pos token.Pos, name string) {
	ast.Inspect(n.Body, func(x ast.Node) bool {
		ifs, ok := x.(*ast.IfStmt)
		if !ok || ifs.End() < pos {
			return true // entirely before the assignment: a different err value
		}
		if !condImpliesNonNil(pass, ifs.Cond, obj) {
			return true // not the `err != nil` guard: `err == nil` branches legitimately return nil
		}
		if condRoutesObj(pass, ifs.Cond, obj) {
			return true // err passed to a function in the condition (Retryable, errors.Is, …): routed
		}
		if blockUsesObj(pass, ifs.Body, obj) {
			return true // err is consulted inside the branch: handled
		}
		ast.Inspect(ifs.Body, func(y ast.Node) bool {
			ret, ok := y.(*ast.ReturnStmt)
			if !ok || len(ret.Results) == 0 {
				return true
			}
			last, ok := ast.Unparen(ret.Results[len(ret.Results)-1]).(*ast.Ident)
			if ok && last.Name == "nil" {
				pass.Reportf(ret.Pos(), "congest.ErrIncomplete masked with nil: %s can return it and this branch replaces it with the zero value; propagate it or route it through Retryable/Adversary", name)
			}
			return true
		})
		return true
	})
}

// condImpliesNonNil reports whether cond establishes that obj's error is
// present — the canonical `err != nil` guard (possibly conjoined with
// more clauses) or a call consuming err. A bare `err == nil` success
// branch returning nil is correct, not a mask.
func condImpliesNonNil(pass *analysis.Pass, cond ast.Expr, obj types.Object) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.NEQ:
			return isNilCheckOf(pass, e, obj)
		case token.LAND, token.LOR:
			return condImpliesNonNil(pass, e.X, obj) || condImpliesNonNil(pass, e.Y, obj)
		}
	case *ast.CallExpr:
		return condRoutesObj(pass, e, obj)
	}
	return false
}

// isNilCheckOf reports whether bin compares obj against nil.
func isNilCheckOf(pass *analysis.Pass, bin *ast.BinaryExpr, obj types.Object) bool {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if isNil(bin.Y) {
		return astx.UsesObj(pass.TypesInfo, bin.X, obj)
	}
	if isNil(bin.X) {
		return astx.UsesObj(pass.TypesInfo, bin.Y, obj)
	}
	return false
}

// condRoutesObj reports whether obj is passed to a function call inside
// cond — the retry-gate idiom `if Retryable(err)` / `if errors.Is(err, …)`,
// which is routing, not a bare nil-check.
func condRoutesObj(pass *analysis.Pass, cond ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(cond, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			for _, arg := range call.Args {
				if astx.UsesObj(pass.TypesInfo, arg, obj) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// blockUsesObj reports whether obj appears anywhere in block.
func blockUsesObj(pass *analysis.Pass, block *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(block, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func calleeName(pass *analysis.Pass, fn *types.Func) string {
	if fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

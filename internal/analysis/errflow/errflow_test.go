package errflow_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errflow"
)

// TestErrflow checks the analyzer against its single-package fixture:
// direct and transitive sources, every discard rule, nil masking, and
// the handled patterns.
func TestErrflow(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "errflowtest"), errflow.Analyzer)
}

// TestErrflowCrossPackage proves IncompleteSourceFacts cross package
// boundaries in the standalone loader.
func TestErrflowCrossPackage(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "ea"), errflow.Analyzer)
}

// TestErrflowFactsVetxRoundTrip proves the same findings survive the gob
// serialization boundary used by `go vet -vettool=`.
func TestErrflowFactsVetxRoundTrip(t *testing.T) {
	pkgs, err := analysis.LoadFixture(filepath.Join("testdata", "src", "ea"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 || pkgs[0].Path != "eb" || pkgs[1].Path != "ea" {
		t.Fatalf("fixture should load [eb ea], got %d packages", len(pkgs))
	}
	analyzers := []*analysis.Analyzer{errflow.Analyzer}

	depStore := analysis.NewFactStore()
	if _, err := analysis.RunFacts(analyzers, []*analysis.Package{pkgs[0]}, depStore); err != nil {
		t.Fatal(err)
	}
	wire, err := depStore.EncodePackage("eb")
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) == 0 {
		t.Fatal("package eb exported no facts; the round-trip test is vacuous")
	}

	freshStore := analysis.NewFactStore()
	if err := freshStore.DecodePackage("eb", wire); err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunFacts(analyzers, []*analysis.Package{pkgs[1]}, freshStore)
	if err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{
		"result of eb.Gather may be congest.ErrIncomplete and is dropped",
		"result of eb.Sweep may be congest.ErrIncomplete and is discarded into _",
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("after vetx round-trip, missing diagnostic %q in %v", want, diags)
		}
	}
	if len(diags) != 2 {
		t.Errorf("want exactly 2 diagnostics (forwards must stay clean), got %d: %v", len(diags), diags)
	}
}

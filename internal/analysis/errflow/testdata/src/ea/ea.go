// Package ea is the dependent half of the cross-package errflow
// fixture: eb's bodies are invisible here, so the findings below exist
// only through eb's exported IncompleteSourceFacts.
package ea

import "eb"

// drops loses a source's error one package away.
func drops() {
	eb.Gather() // want `result of eb\.Gather may be congest\.ErrIncomplete and is dropped`
}

// blanks discards a transitive source's error.
func blanks() {
	_ = eb.Sweep() // want `result of eb\.Sweep may be congest\.ErrIncomplete and is discarded into _`
}

// forwards is clean: the error is returned.
func forwards() error { return eb.Sweep() }

var _ = []any{drops, blanks, forwards}

// Package eb is the dependency half of the cross-package errflow
// fixture: its functions export IncompleteSourceFact that package ea
// imports. Nothing here mishandles the error, so eb analyzes clean.
package eb

import "errors"

// ErrIncomplete mirrors the engine's sentinel.
var ErrIncomplete = errors.New("phase incomplete")

// Gather is a direct source.
func Gather() error { return ErrIncomplete }

// Sweep is a transitive source: IncompleteSourceFact via Gather.
func Sweep() error { return Gather() }

// Package errflowtest exercises the errflow analyzer: incomplete-source
// detection (direct and transitive), the discard rules, nil masking, and
// the handled patterns that must stay clean.
package errflowtest

import (
	"errors"
	"fmt"
)

// ErrIncomplete mirrors the engine's sentinel (matched by name, like the
// RoundFunc shape).
var ErrIncomplete = errors.New("phase incomplete")

// IncompleteError mirrors the engine's structured wrapper.
type IncompleteError struct{ Round int }

func (e *IncompleteError) Error() string { return fmt.Sprintf("incomplete at round %d", e.Round) }

// fetch is a direct source: it returns the sentinel.
func fetch() error { return ErrIncomplete }

// build is a direct source: it constructs an IncompleteError.
func build(round int) error { return &IncompleteError{Round: round} }

// pair is a direct source with a value result in front.
func pair() (int, error) { return 0, ErrIncomplete }

// relay is a transitive source: it returns an error and calls fetch.
func relay() error { return fetch() }

// drop loses the error entirely.
func drop() {
	fetch() // want `result of fetch may be congest\.ErrIncomplete and is dropped`
}

// blank discards it into the blank identifier.
func blank() {
	_ = relay() // want `result of relay may be congest\.ErrIncomplete and is discarded into _`
}

// blankPair discards the error position of a tuple.
func blankPair() int {
	v, _ := pair() // want `result of pair may be congest\.ErrIncomplete and is discarded into _`
	return v
}

// deferred drops it through defer.
func deferred() {
	defer fetch() // want `result of fetch may be congest\.ErrIncomplete and is dropped by go/defer`
}

// reassigned consults err from step one, then overwrites it with a
// source's error and never looks again.
func reassigned() error {
	err := relay()
	if err != nil {
		return err
	}
	err = build(7) // want `result of build may be congest\.ErrIncomplete, but err is never consulted after this assignment`
	return nil
}

// masked notices the error and then replaces it with the zero value.
func masked() (int, error) {
	v, err := pair()
	if err != nil {
		return 0, nil // want `congest\.ErrIncomplete masked with nil: pair can return it`
	}
	return v, nil
}

// maskedInit masks through the if-init form.
func maskedInit() error {
	if err := fetch(); err != nil {
		return nil // want `congest\.ErrIncomplete masked with nil: fetch can return it`
	}
	return nil
}

// Retryable mirrors the engine's retry gate.
func Retryable(err error) bool { return errors.Is(err, ErrIncomplete) }

// The handled patterns: no diagnostics.

func propagates() error { return fetch() }

func wraps() error {
	if err := fetch(); err != nil {
		return fmt.Errorf("convergecast: %w", err)
	}
	return nil
}

func routes() bool {
	err := fetch()
	return Retryable(err)
}

func guards() (int, error) {
	v, err := pair()
	if err != nil {
		if Retryable(err) {
			return v, nil // err was consulted in this branch: not a mask
		}
		return 0, err
	}
	return v, nil
}

func allowed() {
	_ = fetch() //lint:allow errflow teardown path: the phase result is re-derived from the transcript on restart
}

// success returns nil on the `err == nil` branch — the retry-loop
// success path, not a mask (the engine's Adversary loops use exactly
// this shape).
func success() (int, error) {
	v, err := pair()
	if err == nil {
		return v, nil
	}
	return 0, err
}

var _ = []any{drop, blank, blankPair, deferred, reassigned, masked, maskedInit, propagates, wraps, routes, guards, allowed, success}

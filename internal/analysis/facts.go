// Facts: the interprocedural layer of the analysis framework.
//
// A Fact is a serializable statement an analyzer proves about a named
// function (or other package-level object) — "this function allocates",
// "this function is determinism-pure", "this function can return
// ErrIncomplete". Facts exported while analyzing a package become visible
// to every dependent package analyzed later, in both drivers:
//
//   - the standalone sweep analyzes packages in dependency order (the
//     `go list -deps` postorder) and keeps facts in an in-memory store;
//   - under `go vet -vettool=congestlint`, each package unit gob-encodes
//     its exported facts into its .vetx output file, and the go command
//     hands dependents the dependency vetx paths (PackageVetx), from
//     which the store is rehydrated.
//
// Objects are keyed by a stable textual path (package path + function or
// method spelling), so a fact attached while type-checking a package from
// source is found again when the same object is seen through compiler
// export data. This mirrors the golang.org/x/tools go/analysis facts
// model closely enough that the analyzers would port unchanged.
package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is the marker interface for analyzer facts. Implementations must
// be pointers to gob-encodable structs and be registered with
// RegisterFact at init time.
type Fact interface {
	AFact() // marker method
}

// RegisterFact registers a fact type for gob (de)serialization. Call it
// from the analyzer package's init for every fact type it exports.
func RegisterFact(fact Fact) {
	gob.Register(fact)
}

// factKey identifies one fact: the object's package, the object's stable
// in-package path, and the concrete fact type.
type factKey struct {
	pkg string
	obj string
	typ reflect.Type
}

// FactStore holds facts across packages for one analysis run.
type FactStore struct {
	m map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey]Fact)}
}

// ObjKey returns the stable textual path of a package-level object or
// method: "F" for a function, "(T).M" / "(*T).M" for methods. It is
// identical whether obj was type-checked from source or read back from
// compiler export data, which is what lets facts cross package
// boundaries.
func ObjKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			star := ""
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
				star = "*"
			}
			if n, isNamed := t.(*types.Named); isNamed {
				return "(" + star + n.Obj().Name() + ")." + fn.Name()
			}
		}
	}
	return obj.Name()
}

func (s *FactStore) set(pkgPath string, obj types.Object, fact Fact) {
	s.m[factKey{pkgPath, ObjKey(obj), reflect.TypeOf(fact)}] = fact
}

func (s *FactStore) get(obj types.Object, ptr Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	fact, ok := s.m[factKey{obj.Pkg().Path(), ObjKey(obj), reflect.TypeOf(ptr)}]
	if !ok {
		return false
	}
	reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(fact).Elem())
	return true
}

// wireFact is the gob wire form of one exported fact.
type wireFact struct {
	Obj  string
	Fact Fact
}

// EncodePackage serializes every fact attached to objects of pkgPath,
// sorted for byte-deterministic output (the vetx file participates in the
// go command's content-addressed cache).
func (s *FactStore) EncodePackage(pkgPath string) ([]byte, error) {
	var wire []wireFact
	for k, f := range s.m {
		if k.pkg == pkgPath {
			wire = append(wire, wireFact{Obj: k.obj, Fact: f})
		}
	}
	if len(wire) == 0 {
		return nil, nil
	}
	sort.Slice(wire, func(i, j int) bool {
		a, b := wire[i], wire[j]
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		return reflect.TypeOf(a.Fact).String() < reflect.TypeOf(b.Fact).String()
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("encoding facts for %s: %w", pkgPath, err)
	}
	return buf.Bytes(), nil
}

// DecodePackage merges a fact blob previously produced by EncodePackage
// for pkgPath into the store. Empty data is a valid empty fact set (the
// vetx files of packages outside the module are empty).
func (s *FactStore) DecodePackage(pkgPath string, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return fmt.Errorf("decoding facts for %s: %w", pkgPath, err)
	}
	for _, w := range wire {
		s.m[factKey{pkgPath, w.Obj, reflect.TypeOf(w.Fact)}] = w.Fact
	}
	return nil
}

// ExportObjectFact attaches fact to obj, which must belong to the package
// under analysis. The fact becomes importable from every package analyzed
// after this one.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts == nil || obj == nil || obj.Pkg() == nil || obj.Pkg() != p.Pkg {
		return
	}
	p.facts.set(p.Pkg.Path(), obj, fact)
}

// ImportObjectFact copies the fact of ptr's type attached to obj into
// *ptr, reporting whether one was found. obj may belong to the current
// package or to any dependency analyzed earlier.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.get(obj, ptr)
}

// Package hotalloc implements the congestlint analyzer that keeps the
// per-round kernels allocation-free, statically.
//
// The engine's round-driven protocols (congest.RoundFunc) execute once
// per node per round — millions of times in a large run — and the
// repository's performance story depends on those bodies allocating
// nothing in steady state (see the AllocsPerRun pins in
// internal/congest). hotalloc flags, inside any RoundFunc-shaped function
// (func(*Node, []Message) bool) and any function annotated with a
// //congest:hotpath doc comment:
//
//   - make and new calls;
//   - append (the backing array may grow; appends into slabs whose
//     capacity is preallocated at setup take a //lint:allow with the slab
//     named in the reason);
//   - map and &composite literals, and nested function literals
//     (a closure allocated per round);
//   - go and defer statements;
//   - string concatenation and fmt-style interface boxing of concrete
//     values into interface parameters.
//
// Bare slice/struct composite literals are deliberately not flagged: the
// engine's Send contract copies payloads, so Words{...} literals do not
// escape and stay on the stack — the dynamic AllocsPerRun pins
// cross-check exactly that assumption.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocating expressions inside RoundFunc bodies and //congest:hotpath functions (static complement of the AllocsPerRun zero-alloc pins)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil && (hasHotpathDirective(d.Doc) || isRoundFuncDecl(pass, d)) {
					checkHotBody(pass, d.Body)
					return false
				}
			case *ast.FuncLit:
				if isRoundFuncShape(funcLitSig(pass, d)) {
					checkHotBody(pass, d.Body)
					return false
				}
			}
			return true
		})
	}
	return nil
}

func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//congest:hotpath") {
			return true
		}
	}
	return false
}

func isRoundFuncDecl(pass *analysis.Pass, d *ast.FuncDecl) bool {
	fn, ok := pass.TypesInfo.ObjectOf(d.Name).(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && isRoundFuncShape(sig)
}

func funcLitSig(pass *analysis.Pass, lit *ast.FuncLit) *types.Signature {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.(*types.Signature)
	return sig
}

// isRoundFuncShape matches func(*Node, []Message) bool structurally by
// parameter type names, so fixtures with local Node/Message types
// exercise the check.
func isRoundFuncShape(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok || namedName(ptr.Elem()) != "Node" {
		return false
	}
	sl, ok := sig.Params().At(1).Type().Underlying().(*types.Slice)
	if !ok || namedName(sl.Elem()) != "Message" {
		return false
	}
	basic, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

func namedName(t types.Type) string {
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// checkHotBody flags allocating constructs in one hot function body.
// Nested function literals are flagged as closures and not descended
// into (their own cost is the allocation; their body runs under its own
// accounting if it is itself RoundFunc-shaped).
func checkHotBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(), "closure allocated in hot path: a function literal here is heap-allocated on every round")
			return false
		case *ast.GoStmt:
			pass.Reportf(x.Pos(), "goroutine launch in hot path")
		case *ast.DeferStmt:
			pass.Reportf(x.Pos(), "defer in hot path allocates a deferred-call record")
		case *ast.CompositeLit:
			tv, ok := pass.TypesInfo.Types[x]
			if ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(x.Pos(), "map literal allocates in hot path")
				}
			}
		case *ast.UnaryExpr:
			if _, isLit := ast.Unparen(x.X).(*ast.CompositeLit); x.Op.String() == "&" && isLit {
				pass.Reportf(x.Pos(), "&composite literal allocates in hot path")
			}
		case *ast.BinaryExpr:
			if x.Op.String() == "+" {
				if tv, ok := pass.TypesInfo.Types[x]; ok && tv.Type != nil && tv.Value == nil {
					if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
						pass.Reportf(x.Pos(), "string concatenation allocates in hot path")
					}
				}
			}
		case *ast.CallExpr:
			checkCall(pass, x)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make allocates in hot path; hoist the buffer into setup-time slab state")
			case "new":
				pass.Reportf(call.Pos(), "new allocates in hot path")
			case "append":
				pass.Reportf(call.Pos(), "append in hot path may grow its backing array; preallocate capacity at setup (and //lint:allow with the slab named) or use fixed-size state")
			}
			return
		}
	}
	checkBoxing(pass, call)
}

// checkBoxing flags concrete values passed to interface parameters — the
// fmt.Sprintf-style hidden allocation.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // f(xs...) passes the slice through, no boxing
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || types.IsInterface(at.Type) || at.IsNil() {
			continue
		}
		pass.Reportf(arg.Pos(), "concrete value boxed into interface parameter in hot path (hidden allocation)")
	}
}

// Package hotalloc implements the congestlint analyzer that keeps the
// per-round kernels allocation-free, statically and interprocedurally.
//
// The engine's round-driven protocols (congest.RoundFunc) execute once
// per node per round — millions of times in a large run — and the
// repository's performance story depends on those bodies allocating
// nothing in steady state (see the AllocsPerRun pins in
// internal/congest).
//
// Hot roots are RoundFunc-shaped functions (func(*Node, []Message) bool,
// declared or literal), functions annotated with a //congest:hotpath doc
// comment, and function values passed as arguments to an already-hot
// function (the engine's registration pattern: a kernel handed to a hot
// runner runs on the hot path too). Every function reachable from a root
// through static calls within the package is hot and carries an exported
// HotFact; allocations are flagged in every hot body, so a helper
// extracted out of a kernel stays covered — the false-negative shape the
// intraprocedural version missed.
//
// Calls that leave the package are checked through facts: analyzing a
// package exports an AllocsFact for every function that (transitively)
// allocates, and a call from a hot body to an imported function carrying
// an AllocsFact is flagged at the call site with the underlying reason.
//
// Inside a hot body the flagged constructs are:
//
//   - make and new calls;
//   - append (the backing array may grow; appends into slabs whose
//     capacity is preallocated at setup take a //lint:allow with the slab
//     named in the reason);
//   - map and &composite literals, and nested function literals
//     (a closure allocated per round);
//   - bound-method values (x.Method used as a value allocates the
//     binding closure);
//   - go and defer statements;
//   - string concatenation and fmt-style interface boxing of concrete
//     values into interface parameters;
//   - calls of imported functions whose AllocsFact proves they allocate.
//
// Bare slice/struct composite literals are deliberately not flagged: the
// engine's Send contract copies payloads, so Words{...} literals do not
// escape and stay on the stack — the dynamic AllocsPerRun pins
// cross-check exactly that assumption.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/astx"
	"repro/internal/analysis/callgraph"
)

// HotFact marks a function whose body executes on the hot path: a round
// kernel, a //congest:hotpath function, or anything one of those
// (transitively) calls.
type HotFact struct{}

func (*HotFact) AFact() {}

// AllocsFact marks a function that allocates — directly or through a
// (transitive) callee. Why names the first reason found.
type AllocsFact struct{ Why string }

func (*AllocsFact) AFact() {}

func init() {
	analysis.RegisterFact(&HotFact{})
	analysis.RegisterFact(&AllocsFact{})
}

var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocating expressions in RoundFunc kernels, //congest:hotpath functions, and everything they transitively call (static complement of the AllocsPerRun zero-alloc pins)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.Build(pass.TypesInfo, pass.Files)

	hot := hotNodes(pass, g)

	// Export HotFact for every hot declared function, so dependents know
	// that function values handed to it run on the hot path.
	for n := range hot {
		if n.Fn != nil {
			pass.ExportObjectFact(n.Fn, &HotFact{})
		}
	}

	// Bottom-up allocation facts for every declared function, hot or not:
	// dependents flag calls into this package's allocating functions from
	// their own hot bodies.
	allocWhy := allocFixpoint(pass, g)
	for n, why := range allocWhy {
		if n.Fn != nil {
			pass.ExportObjectFact(n.Fn, &AllocsFact{Why: why})
		}
	}

	// Report allocations inside each hot body.
	for _, n := range g.Nodes {
		if hot[n] {
			checkHotBody(pass, g, n)
		}
	}
	return nil
}

// hotNodes computes the hot set: roots (RoundFunc shape, hotpath
// directive, function values passed to hot callees) plus everything they
// reach through static local calls. The function-value rule can uncover
// new roots once more functions are known hot, so it iterates to a
// fixed point.
func hotNodes(pass *analysis.Pass, g *callgraph.Graph) map[*callgraph.Node]bool {
	var seeds []*callgraph.Node
	for _, n := range g.Nodes {
		if isRoot(pass, n) {
			seeds = append(seeds, n)
		}
	}
	hot := g.Reachable(seeds, false)
	for {
		added := false
		for _, n := range g.Nodes {
			for _, arg := range hotFuncArgs(pass, g, n, hot) {
				if !hot[arg] {
					for m := range g.Reachable([]*callgraph.Node{arg}, false) {
						if !hot[m] {
							hot[m] = true
							added = true
						}
					}
				}
			}
		}
		if !added {
			return hot
		}
	}
}

func isRoot(pass *analysis.Pass, n *callgraph.Node) bool {
	if n.Decl != nil {
		if astx.HasDirective(n.Decl.Doc, "//congest:hotpath") {
			return true
		}
		if fn, ok := pass.TypesInfo.ObjectOf(n.Decl.Name).(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && astx.IsRoundFuncShape(sig) {
				return true
			}
		}
		return false
	}
	return astx.IsRoundFuncShape(astx.FuncLitSig(pass.TypesInfo, n.Lit))
}

// hotFuncArgs returns the local function nodes passed as function values
// to a callee that is itself hot (locally, or via an imported HotFact):
// they will be invoked from the hot path.
func hotFuncArgs(pass *analysis.Pass, g *callgraph.Graph, n *callgraph.Node, hot map[*callgraph.Node]bool) []*callgraph.Node {
	var out []*callgraph.Node
	ast.Inspect(n.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := callgraph.StaticCallee(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		calleeHot := false
		if local, ok := g.ByFn[callee]; ok {
			calleeHot = hot[local]
		} else {
			calleeHot = pass.ImportObjectFact(callee, &HotFact{})
		}
		if !calleeHot {
			return true
		}
		for _, arg := range call.Args {
			switch a := ast.Unparen(arg).(type) {
			case *ast.FuncLit:
				if lit, ok := g.ByLit[a]; ok {
					out = append(out, lit)
				}
			case *ast.Ident:
				if fn, ok := pass.TypesInfo.ObjectOf(a).(*types.Func); ok {
					if local, ok := g.ByFn[fn]; ok {
						out = append(out, local)
					}
				}
			}
		}
		return true
	})
	return out
}

// allocation is one statically-detected allocating construct.
type allocation struct {
	node ast.Node
	msg  string
}

// allocFixpoint computes, for every node that allocates directly or
// through local/imported callees, a one-line reason. Direct reasons win
// over transitive ones; recursion settles to a fixed point.
func allocFixpoint(pass *analysis.Pass, g *callgraph.Graph) map[*callgraph.Node]string {
	why := make(map[*callgraph.Node]string)
	for _, n := range g.Nodes {
		if as := directAllocs(pass, n); len(as) > 0 {
			why[n] = fmt.Sprintf("%s at %s", as[0].msg, pass.Fset.Position(as[0].node.Pos()))
		} else {
			// A nested closure is itself an allocation of the encloser.
			if len(n.Lits) > 0 {
				why[n] = fmt.Sprintf("closure at %s", pass.Fset.Position(n.Lits[0].Lit.Pos()))
			}
		}
	}
	for {
		changed := false
		for _, n := range g.Nodes {
			if _, done := why[n]; done {
				continue
			}
			for _, c := range n.Calls {
				if local, ok := g.ByFn[c.Callee]; ok {
					if w, allocs := why[local]; allocs {
						why[n] = fmt.Sprintf("calls %s (%s)", c.Callee.Name(), w)
						changed = true
						break
					}
				} else {
					var fact AllocsFact
					if pass.ImportObjectFact(c.Callee, &fact) {
						why[n] = fmt.Sprintf("calls %s (%s)", qualifiedName(c.Callee), fact.Why)
						changed = true
						break
					}
				}
			}
		}
		if !changed {
			return why
		}
	}
}

// directAllocs collects the allocating constructs lexically inside n's
// body (excluding nested literals, which are their own nodes).
func directAllocs(pass *analysis.Pass, n *callgraph.Node) []allocation {
	var out []allocation
	add := func(node ast.Node, msg string) { out = append(out, allocation{node, msg}) }
	inCallFun := callFunSelectors(n.Body)
	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			return false // own node
		case *ast.GoStmt:
			add(e, "goroutine launch")
		case *ast.DeferStmt:
			add(e, "defer record")
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					add(e, "map literal")
				}
			}
		case *ast.UnaryExpr:
			if _, isLit := ast.Unparen(e.X).(*ast.CompositeLit); e.Op.String() == "&" && isLit {
				add(e, "&composite literal")
			}
		case *ast.SelectorExpr:
			if !inCallFun[e] && astx.IsMethodValue(pass.TypesInfo, e) {
				add(e, "bound-method value")
			}
		case *ast.BinaryExpr:
			if e.Op.String() == "+" {
				if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Type != nil && tv.Value == nil {
					if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
						add(e, "string concatenation")
					}
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make":
						add(e, "make")
					case "new":
						add(e, "new")
					case "append":
						add(e, "append")
					}
					return true
				}
			}
			for _, arg := range boxedArgs(pass, e) {
				add(arg, "interface boxing")
			}
		}
		return true
	})
	return out
}

// callFunSelectors records the selector expressions serving as the Fun
// of a call, so x.M() is a method call and x.M alone is a method value.
func callFunSelectors(body *ast.BlockStmt) map[*ast.SelectorExpr]bool {
	set := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				set[sel] = true
			}
		}
		return true
	})
	return set
}

// checkHotBody reports every allocating construct in one hot body, plus
// calls into other packages whose AllocsFact proves the callee
// allocates. Calls to local functions need no call-site diagnostic: the
// callee is itself hot and its allocations are reported in its own body.
func checkHotBody(pass *analysis.Pass, g *callgraph.Graph, n *callgraph.Node) {
	for _, a := range directAllocs(pass, n) {
		switch a.msg {
		case "make":
			pass.Reportf(a.node.Pos(), "make allocates in hot path; hoist the buffer into setup-time slab state")
		case "new":
			pass.Reportf(a.node.Pos(), "new allocates in hot path")
		case "append":
			pass.Reportf(a.node.Pos(), "append in hot path may grow its backing array; preallocate capacity at setup (and //lint:allow with the slab named) or use fixed-size state")
		case "map literal":
			pass.Reportf(a.node.Pos(), "map literal allocates in hot path")
		case "&composite literal":
			pass.Reportf(a.node.Pos(), "&composite literal allocates in hot path")
		case "string concatenation":
			pass.Reportf(a.node.Pos(), "string concatenation allocates in hot path")
		case "goroutine launch":
			pass.Reportf(a.node.Pos(), "goroutine launch in hot path")
		case "defer record":
			pass.Reportf(a.node.Pos(), "defer in hot path allocates a deferred-call record")
		case "bound-method value":
			pass.Reportf(a.node.Pos(), "bound-method value allocates in hot path: x.Method used as a value heap-allocates the binding; hoist it to setup or call the method directly")
		case "interface boxing":
			pass.Reportf(a.node.Pos(), "concrete value boxed into interface parameter in hot path (hidden allocation)")
		}
	}
	for _, lit := range n.Lits {
		pass.Reportf(lit.Lit.Pos(), "closure allocated in hot path: a function literal here is heap-allocated on every round")
	}
	for _, c := range n.Calls {
		if _, local := g.ByFn[c.Callee]; local {
			continue
		}
		var fact AllocsFact
		if pass.ImportObjectFact(c.Callee, &fact) {
			pass.Reportf(c.Pos, "call to %s allocates in hot path: %s", qualifiedName(c.Callee), fact.Why)
		}
	}
}

// boxedArgs returns the concrete-typed arguments boxed into interface
// parameters of call — the fmt.Sprintf-style hidden allocation.
func boxedArgs(pass *analysis.Pass, call *ast.CallExpr) []ast.Expr {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	var out []ast.Expr
	for i, arg := range call.Args {
		if call.Ellipsis.IsValid() && i == len(call.Args)-1 {
			continue // f(xs...) passes the slice through, no boxing
		}
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := pass.TypesInfo.Types[arg]
		if !ok || at.Type == nil || types.IsInterface(at.Type) || at.IsNil() {
			continue
		}
		out = append(out, arg)
	}
	return out
}

func qualifiedName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return fmt.Sprintf("%s.%s.%s", fn.Pkg().Name(), recvTypeName(sig), fn.Name())
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return "?"
}

package hotalloc_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/hotalloc"
)

// TestHotalloc checks the analyzer against its fixture package: every
// // want expectation must be reported and nothing else may be; the
// fixture also pins that //lint:allow suppresses with a reason given,
// and that a directive suppressing nothing is reported stale.
func TestHotalloc(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "hotalloctest"), hotalloc.Analyzer)
}

// TestHotallocCrossPackage proves facts cross package boundaries in the
// standalone loader: fixture a imports fixture b, and a's findings exist
// only through b's exported AllocsFact/HotFact.
func TestHotallocCrossPackage(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "a"), hotalloc.Analyzer)
}

// TestHotallocFactsVetxRoundTrip proves the same findings survive a
// serialization boundary, the way `go vet -vettool=` propagates facts:
// package b is analyzed with one store, its facts are gob-encoded (the
// vetx wire format), decoded into a fresh store, and package a is
// analyzed against only the decoded facts.
func TestHotallocFactsVetxRoundTrip(t *testing.T) {
	pkgs, err := analysis.LoadFixture(filepath.Join("testdata", "src", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 || pkgs[0].Path != "b" || pkgs[1].Path != "a" {
		t.Fatalf("fixture should load [b a], got %v", pkgPaths(pkgs))
	}
	bPkg, aPkg := pkgs[0], pkgs[1]

	analyzers := []*analysis.Analyzer{hotalloc.Analyzer}

	// Analyze b alone; serialize its facts.
	depStore := analysis.NewFactStore()
	if _, err := analysis.RunFacts(analyzers, []*analysis.Package{bPkg}, depStore); err != nil {
		t.Fatal(err)
	}
	wire, err := depStore.EncodePackage("b")
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) == 0 {
		t.Fatal("package b exported no facts; the round-trip test is vacuous")
	}

	// Re-encoding must be byte-deterministic: the vetx file participates
	// in the go command's content-addressed cache.
	wire2, err := depStore.EncodePackage("b")
	if err != nil {
		t.Fatal(err)
	}
	if string(wire) != string(wire2) {
		t.Fatal("fact encoding is not deterministic")
	}

	// Analyze a against a store rehydrated only from the wire bytes.
	freshStore := analysis.NewFactStore()
	if err := freshStore.DecodePackage("b", wire); err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunFacts(analyzers, []*analysis.Package{aPkg}, freshStore)
	if err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{
		"call to b.LeafAlloc allocates in hot path",
		"call to b.MidAlloc allocates in hot path",
		"make allocates in hot path", // localStep, hot via b.HotRegister's HotFact
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("after vetx round-trip, missing diagnostic %q in %v", want, diags)
		}
	}
}

func pkgPaths(pkgs []*analysis.Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Path)
	}
	return out
}

// Package a is the dependent half of the cross-package facts fixture:
// its kernel calls into package b, and every finding below exists only
// because facts crossed the package boundary.
package a

import "b"

type Node struct{ ID int }

type Message struct{ Port int }

// kernel reaches allocations one call below (b.LeafAlloc) and two calls
// below (b.MidAlloc → b.LeafAlloc): imported AllocsFacts surface them at
// the call sites, since b's bodies are not visible here.
func kernel(n *Node, msgs []Message) bool {
	b.LeafAlloc() // want `call to b.LeafAlloc allocates in hot path: make at .*b\.go`
	b.MidAlloc()  // want `call to b.MidAlloc allocates in hot path: calls LeafAlloc`
	return true
}

// localStep looks cold, but Use hands it to b.HotRegister, whose
// imported HotFact marks the callback hot.
func localStep() int {
	xs := make([]int, 4) // want `make allocates in hot path`
	return len(xs)
}

// Use registers the callback (and keeps kernel referenced).
func Use() int {
	var n Node
	kernel(&n, nil)
	return b.HotRegister(localStep)
}

// Package b is the dependency half of the cross-package facts fixture:
// nothing here is hot, so this package analyzes clean — but its
// functions export AllocsFact (LeafAlloc, MidAlloc) and HotFact
// (HotRegister) that package a imports.
package b

// LeafAlloc allocates directly: AllocsFact("make at ...").
func LeafAlloc() []uint64 {
	return make([]uint64, 8)
}

// MidAlloc allocates one call deeper: AllocsFact("calls LeafAlloc ...").
func MidAlloc() []uint64 {
	return LeafAlloc()
}

// HotRegister is a hot API taking a callback: HotFact tells dependents
// that function values passed here run on the hot path.
//
//congest:hotpath
func HotRegister(step func() int) int { return step() }

// Package hotalloctest is the analysistest fixture for the hotalloc
// analyzer. The local Node/Message/Words types mirror the engine's
// round-driven protocol API by name; hotalloc matches the RoundFunc shape
// func(*Node, []Message) bool structurally.
package hotalloctest

import "fmt"

type Node struct{ ID int }

type Message struct {
	Port    int
	Payload []uint64
}

type Words []uint64

func (n *Node) Send(port int, w Words) {}

type RoundFunc func(*Node, []Message) bool

// state is the setup-time slab the clean kernel indexes into.
var state []uint64

// MakeKernel builds a round kernel that allocates every round: each
// flagged expression is a per-node-per-round heap cost.
func MakeKernel() RoundFunc {
	return func(n *Node, msgs []Message) bool {
		buf := make([]uint64, 8) // want `make allocates in hot path`
		seen := map[int]bool{}   // want `map literal allocates in hot path`
		for _, m := range msgs {
			buf = append(buf, m.Payload...) // want `append in hot path may grow`
			seen[m.Port] = true
		}
		cb := func() int { return n.ID } // want `closure allocated in hot path`
		_ = cb
		n.Send(0, buf[:1])
		return len(seen) > 0
	}
}

// BoxKernel hides its allocation inside interface boxing: fmt.Sprintf
// boxes the int into its variadic any parameter.
func BoxKernel() RoundFunc {
	return func(n *Node, msgs []Message) bool {
		s := fmt.Sprintf("node %d", n.ID) // want `concrete value boxed into interface parameter`
		return len(s) > 0
	}
}

// CleanKernel is the idiomatic zero-alloc shape: slab state indexed by
// node ID, stack-allocated Words literals handed to Send (the engine
// copies payloads, so the literal never escapes).
func CleanKernel() RoundFunc {
	return func(n *Node, msgs []Message) bool {
		for _, m := range msgs {
			state[n.ID] += m.Payload[0]
		}
		n.Send(0, Words{state[n.ID]})
		return true
	}
}

// namedKernel is a declared function with the RoundFunc shape: flagged
// the same as a literal.
func namedKernel(n *Node, msgs []Message) bool {
	extra := new(Node) // want `new allocates in hot path`
	return extra != nil
}

//congest:hotpath
func annotatedHelper(xs []uint64) string {
	s := "id:"
	s = s + "x" // want `string concatenation allocates in hot path`
	return s
}

// coldHelper has no annotation and no RoundFunc shape: allocations here
// are setup-time and legal.
func coldHelper(n int) []uint64 {
	return make([]uint64, n)
}

// AllowedSlabAppend shows the suppression directive for an append into
// capacity preallocated at setup.
func AllowedSlabAppend(slab []uint64) RoundFunc {
	return func(n *Node, msgs []Message) bool {
		//lint:allow hotalloc slab capacity is preallocated to the exact token count at setup
		slab = append(slab, uint64(n.ID))
		return true
	}
}

// helperOne and helperTwo carry no annotation, but TransitiveKernel
// reaches them: the allocation two calls below the kernel is the exact
// false-negative shape the intraprocedural analyzer missed.
func helperOne(n *Node) {
	helperTwo(n)
}

func helperTwo(n *Node) {
	_ = make([]uint64, 4) // want `make allocates in hot path`
}

// TransitiveKernel allocates nothing itself; its callees do.
func TransitiveKernel() RoundFunc {
	return func(n *Node, msgs []Message) bool {
		helperOne(n)
		return true
	}
}

type emitter struct{ count int }

func (e *emitter) bump() { e.count++ }

// MethodValueKernel binds a method value per round: e.bump as a value
// heap-allocates the binding closure (calling e.bump() directly would
// not).
func MethodValueKernel(e *emitter) RoundFunc {
	return func(n *Node, msgs []Message) bool {
		f := e.bump // want `bound-method value allocates in hot path`
		f()
		e.bump() // a direct call is not a method value: no finding
		return true
	}
}

// hotRunner is an annotated hot API taking a callback: any function
// value handed to it runs on the hot path.
//
//congest:hotpath
func hotRunner(step func() int) int { return step() }

// coldLooking has no annotation and no RoundFunc shape, but UseRunner
// passes it to hotRunner, which makes it hot.
func coldLooking() int {
	xs := make([]int, 3) // want `make allocates in hot path`
	return len(xs)
}

func UseRunner() int {
	return hotRunner(coldLooking)
}

// notHot is never reached from a hot root, so the directive below
// suppresses nothing and is itself reported stale.
func notHot() []uint64 {
	/* want `stale //lint:allow hotalloc directive` */ //lint:allow hotalloc claims a slab that is preallocated (it is not: this function is cold)
	return make([]uint64, 1)
}

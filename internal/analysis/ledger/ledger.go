// Package ledger implements the congestlint analyzer that keeps the two
// round ledgers exclusive: engine-measured (simulated) round counts must
// never be booked into analytic (charged) fields, and vice versa.
//
// The repository accounts every algorithm's cost in a two-ledger
// pipeline.Rounds{Simulated, Charged}: Simulated rounds were measured on
// the CONGEST engine (EffectiveRounds/CommRounds class), Charged rounds
// are analytic framework budgets (ChargedRounds class). The paper's
// Õ(D+√n)-style bounds are only meaningful if the ledgers never mix —
// PR 2 found min-cut summing measured rounds into a charged total, and
// PR 4 found the same class in ShortcutBoruvka. ledger enforces the
// separation structurally: any assignment or composite-literal field
// whose destination name belongs to one ledger and whose right-hand side
// mentions a name from the other ledger is flagged, as is booking the
// display-only Total() collapse back into either ledger.
package ledger

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ledger",
	Doc:  "flags cross-booking between the simulated (measured) and charged (analytic) round ledgers (PR 2/PR 4's min-cut and ShortcutBoruvka bug class)",
	Run:  run,
}

type color int

const (
	uncolored color = iota
	simulated
	charged
	both // Total(): a collapse of both ledgers, bookable into neither
)

// fieldColor colors struct-field and method selector names.
var fieldColor = map[string]color{
	"Simulated":       simulated,
	"SimulatedRounds": simulated,
	"EffectiveRounds": simulated,
	"CommRounds":      simulated,
	"MeasuredRounds":  simulated,
	"Charged":         charged,
	"ChargedRounds":   charged,
	"Total":           both,
}

// identColor colors bare local variable names; the list is exact
// camelCase spellings so short unrelated names never match.
var identColor = map[string]color{
	"simulated":       simulated,
	"simulatedRounds": simulated,
	"effectiveRounds": simulated,
	"charged":         charged,
	"chargedRounds":   charged,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, s)
			case *ast.CompositeLit:
				checkCompositeLit(pass, s)
			}
			return true
		})
	}
	return nil
}

func checkAssign(pass *analysis.Pass, s *ast.AssignStmt) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE, token.ADD_ASSIGN, token.SUB_ASSIGN:
	default:
		return
	}
	if len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		checkBooking(pass, lhsColor(lhs), s.Rhs[i], s.Pos(), exprName(lhs))
	}
}

func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		checkBooking(pass, fieldColor[key.Name], kv.Value, kv.Pos(), key.Name)
	}
}

// checkBooking reports rhs terms whose ledger color conflicts with the
// destination's color.
func checkBooking(pass *analysis.Pass, dst color, rhs ast.Expr, pos token.Pos, dstName string) {
	if dst != simulated && dst != charged {
		return
	}
	for _, term := range coloredTerms(rhs) {
		switch {
		case term.c == both:
			pass.Reportf(pos, "ledger mix: %q (a Total() collapse of both ledgers) booked into the %s ledger via %q; Total is display-only", term.name, ledgerName(dst), dstName)
		case term.c != dst:
			pass.Reportf(pos, "ledger mix: %s-ledger quantity %q booked into %s-ledger destination %q; simulated (engine-measured) and charged (analytic) rounds must stay exclusive", ledgerName(term.c), term.name, ledgerName(dst), dstName)
		}
	}
}

type term struct {
	name string
	c    color
}

// coloredTerms collects the colored selector/identifier names appearing
// in e. Selector bases are walked but a colored selector's field name is
// what counts: res.EffectiveRounds contributes "EffectiveRounds".
func coloredTerms(e ast.Expr) []term {
	var out []term
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if c := fieldColor[x.Sel.Name]; c != uncolored {
				out = append(out, term{x.Sel.Name, c})
			}
			// Walk only the base: the Sel ident is already accounted.
			ast.Inspect(x.X, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if c := identColor[id.Name]; c != uncolored {
						out = append(out, term{id.Name, c})
					}
				}
				return true
			})
			return false
		case *ast.Ident:
			if c := identColor[x.Name]; c != uncolored {
				out = append(out, term{x.Name, c})
			}
		}
		return true
	})
	return out
}

func lhsColor(lhs ast.Expr) color {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return fieldColor[x.Sel.Name]
	case *ast.Ident:
		if c, ok := identColor[x.Name]; ok {
			return c
		}
		return fieldColor[x.Name]
	}
	return uncolored
}

func exprName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.Ident:
		return x.Name
	}
	return "destination"
}

func ledgerName(c color) string {
	if c == simulated {
		return "simulated"
	}
	return "charged"
}

// Package ledgertest is the analysistest fixture for the ledger
// analyzer. BoruvkaMixBug reproduces the PR 2/PR 4 bug shape: a measured
// engine round count summed into the analytic charged ledger.
package ledgertest

// Rounds mirrors pipeline.Rounds: one field per ledger.
type Rounds struct {
	Simulated int
	Charged   int
}

// Total collapses both ledgers for display only.
func (r Rounds) Total() int { return r.Simulated + r.Charged }

// RunResult mirrors the engine result types.
type RunResult struct {
	EffectiveRounds int
	ChargedRounds   int
}

// BoruvkaMixBug is the historical shape: ShortcutBoruvka booked the
// construction protocol's measured rounds into the charged total.
func BoruvkaMixBug(res *RunResult, acc *Rounds) {
	acc.Charged += res.EffectiveRounds // want `ledger mix: simulated-ledger quantity "EffectiveRounds" booked into charged-ledger destination "Charged"`
}

// MinCutMixBug is the PR 2 min-cut shape in composite-literal form.
func MinCutMixBug(res *RunResult) Rounds {
	return Rounds{
		Simulated: res.ChargedRounds, // want `ledger mix: charged-ledger quantity "ChargedRounds" booked into simulated-ledger destination "Simulated"`
	}
}

// TotalMisbook books the display-only collapse back into one ledger.
func TotalMisbook(r Rounds, acc *Rounds) {
	acc.Simulated = r.Total() // want `a Total\(\) collapse of both ledgers`
}

// ExclusiveClean books each quantity into its matching ledger.
func ExclusiveClean(res *RunResult) Rounds {
	return Rounds{
		Simulated: res.EffectiveRounds,
		Charged:   res.ChargedRounds,
	}
}

// PlusClean is the ledger-wise sum: same-color arithmetic is legal.
func PlusClean(a, b Rounds) Rounds {
	return Rounds{
		Simulated: a.Simulated + b.Simulated,
		Charged:   a.Charged + b.Charged,
	}
}

// LocalVarMix catches the bare-identifier spelling of the same mistake.
func LocalVarMix(res *RunResult) int {
	effectiveRounds := res.EffectiveRounds
	charged := 0
	charged += effectiveRounds // want `ledger mix: simulated-ledger quantity "effectiveRounds"`
	return charged
}

// AllowedHybrid shows the suppression directive for a deliberate hybrid
// booking with a documented reason.
func AllowedHybrid(res *RunResult, acc *Rounds) {
	//lint:allow ledger hybrid analytic bound: the modeled step is charged at its measured width
	acc.Charged += res.EffectiveRounds
}

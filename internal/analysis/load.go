package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the packages matching the go list patterns (run from
// dir), resolving imports through compiler export data produced by
// `go list -export`. This works fully offline: the go toolchain builds
// export data for the standard library and module-local packages into the
// local build cache.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	importMap := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, p := range targets {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks the single package rooted at dir (every non-test
// .go file in it), resolving its imports — typically standard-library
// only — via `go list -export`. It exists for analysistest fixtures,
// which live under testdata/ where the go tool will not list them.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		goFiles = append(goFiles, name)
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(goFiles)

	// Parse first so we know which imports need export data.
	fset := token.NewFileSet()
	var files []*ast.File
	imports := make(map[string]bool)
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path, _ := strconv.Unquote(spec.Path.Value)
			imports[path] = true
		}
	}

	exports := make(map[string]string)
	if len(imports) > 0 {
		var paths []string
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(dir, paths...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	return typecheckParsed(fset, imp, filepath.Base(dir), files)
}

func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typecheckParsed(fset, imp, path, files)
}

func typecheckParsed(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// goList runs `go list -e -export -deps -json` on the given patterns.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		out = append(out, &p)
	}
	return out, nil
}

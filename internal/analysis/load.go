package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package. FactsOnly marks a
// dependency loaded solely so analyzers can export facts from it: it is
// analyzed before its dependents, but its diagnostics are not reported
// (the user did not ask for that package).
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	FactsOnly bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	ImportMap  map[string]string
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load type-checks the packages matching the go list patterns (run from
// dir), resolving imports through compiler export data produced by
// `go list -export`. This works fully offline: the go toolchain builds
// export data for the standard library and module-local packages into the
// local build cache.
//
// Packages come back in dependency order (the `go list -deps` postorder),
// which is what lets facts exported while analyzing a dependency be
// imported while analyzing its dependents. Module-local packages that are
// pulled in only as dependencies of the requested patterns are loaded
// too, marked FactsOnly: their function bodies must be analyzed for the
// interprocedural analyzers to see through calls into them, but their
// diagnostics are not the caller's to report.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	importMap := make(map[string]string)
	var targets []*listedPackage
	factsOnly := make(map[string]bool)
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		switch {
		case !p.DepOnly:
			targets = append(targets, p)
		case p.Module != nil && p.Error == nil && len(p.GoFiles) > 0:
			// A module-local dependency of the requested set: analyze it
			// from source so its facts exist, without reporting on it.
			targets = append(targets, p)
			factsOnly[p.ImportPath] = true
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if to, ok := importMap[path]; ok {
			path = to
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var out []*Package
	for _, p := range targets {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := typecheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.FactsOnly = factsOnly[p.ImportPath]
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks the single package rooted at dir (every non-test
// .go file in it), resolving its imports via LoadFixture. The returned
// package is the one at dir itself; sibling fixture dependencies are
// loaded but not returned.
func LoadDir(dir string) (*Package, error) {
	pkgs, err := LoadFixture(dir)
	if err != nil {
		return nil, err
	}
	return pkgs[len(pkgs)-1], nil
}

// LoadFixture type-checks the fixture package rooted at dir together
// with its fixture dependencies, in dependency order (dependencies
// first, dir's own package last). It exists for analysistest fixtures,
// which live under testdata/ where the go tool will not list them.
//
// Imports resolve in two tiers: an import path naming a sibling
// directory of dir (testdata/src/a importing "b" finds testdata/src/b)
// is type-checked from source, recursively — this is what lets
// multi-package fixtures exercise cross-package facts; anything else —
// typically standard library — resolves through `go list -export`
// compiler export data.
func LoadFixture(dir string) ([]*Package, error) {
	fl := &fixtureLoader{
		root:    filepath.Dir(dir),
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		exports: make(map[string]string),
	}
	if _, err := fl.load(filepath.Base(dir)); err != nil {
		return nil, err
	}
	return fl.order, nil
}

// fixtureLoader loads a tree of fixture packages under one testdata/src
// root, memoizing packages and stdlib export-data paths.
type fixtureLoader struct {
	root    string
	fset    *token.FileSet
	pkgs    map[string]*Package // by fixture import path
	loading map[string]bool     // cycle guard
	order   []*Package          // dependency order
	exports map[string]string   // stdlib import path -> export data file
	gc      types.Importer      // shared export-data importer
}

// Import implements types.Importer over the two-tier resolution.
func (fl *fixtureLoader) Import(path string) (*types.Package, error) {
	if fl.isFixture(path) {
		pkg, err := fl.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if fl.gc == nil {
		lookup := func(p string) (io.ReadCloser, error) {
			e, ok := fl.exports[p]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(e)
		}
		fl.gc = importer.ForCompiler(fl.fset, "gc", lookup)
	}
	return fl.gc.Import(path)
}

// isFixture reports whether path names a sibling fixture directory.
func (fl *fixtureLoader) isFixture(path string) bool {
	if path == "" || strings.Contains(path, "..") {
		return false
	}
	info, err := os.Stat(filepath.Join(fl.root, filepath.FromSlash(path)))
	return err == nil && info.IsDir()
}

func (fl *fixtureLoader) load(path string) (*Package, error) {
	if pkg, ok := fl.pkgs[path]; ok {
		return pkg, nil
	}
	if fl.loading[path] {
		return nil, fmt.Errorf("fixture import cycle through %q", path)
	}
	fl.loading[path] = true
	defer delete(fl.loading, path)

	dir := filepath.Join(fl.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		goFiles = append(goFiles, name)
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	sort.Strings(goFiles)

	// Parse first so we know which imports need export data and which
	// are sibling fixtures to load from source.
	var files []*ast.File
	var stdlib []string
	for _, name := range goFiles {
		f, err := parser.ParseFile(fl.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			p, _ := strconv.Unquote(spec.Path.Value)
			if !fl.isFixture(p) {
				if _, have := fl.exports[p]; !have {
					stdlib = append(stdlib, p)
				}
			}
		}
	}
	if len(stdlib) > 0 {
		sort.Strings(stdlib)
		listed, err := goList(dir, stdlib...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				fl.exports[p.ImportPath] = p.Export
			}
		}
	}

	pkg, err := typecheckParsed(fl.fset, fl, path, files)
	if err != nil {
		return nil, err
	}
	fl.pkgs[path] = pkg
	fl.order = append(fl.order, pkg)
	return pkg, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return typecheckParsed(fset, imp, path, files)
}

func typecheckParsed(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, TypesInfo: info}, nil
}

// goList runs `go list -e -export -deps -json` on the given patterns.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var out []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		out = append(out, &p)
	}
	return out, nil
}

// Package purity implements the congestlint analyzer that proves
// determinism-critical functions pure, transitively.
//
// "Pure" here is determinism-purity, not freedom from side effects: a
// function may mutate its parameters and receiver all it wants, but its
// behavior must be a function of its inputs alone. The transcript
// framework leans on that for byte-identical CONGEST runs: the fault-plan
// hash, pipecast combiners, the block-count priority/rank functions, and
// everything a round kernel reaches must not consult the wall clock, the
// process-global random source, mutable package-level state, or the
// randomized order of a map iteration.
//
// Determinism-critical roots are:
//
//   - functions annotated with a //congest:pure doc comment;
//   - RoundFunc-shaped functions and literals (round kernels are
//     transcript-affecting by definition);
//   - function literals bound to the Fold field of a Combiner composite
//     literal (the pipecast merge functions).
//
// Everything reachable from a root — through static calls and through
// function literals built along the way — must be pure. Impurities are:
//
//   - time.Now / time.Since / time.Until (wall clock);
//   - the global-source draw functions of math/rand and math/rand/v2;
//   - writes to package-level variables, and reads of package-level
//     variables that are mutated anywhere in their own package;
//   - map-range loops whose body is order-sensitive: anything beyond
//     commutative updates (map/set writes, compound assignments,
//     delete) and appends into slices that are sorted later in the same
//     function lets the randomized iteration order escape.
//
// The analysis crosses package boundaries with facts: every analyzed
// function exports either a PureFact or an ImpureFact{Why}. A call from
// determinism-critical code into another repro-module package is checked
// against the callee's fact — an ImpureFact is reported with its reason,
// and a module-local callee with no PureFact at all is reported as
// unproven (dynamic dispatch, bodiless declarations). Callees outside
// the module (standard library) are assumed pure except for the explicit
// wall-clock and global-rand lists above.
package purity

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/astx"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/seededrand"
)

// PureFact marks a function proven determinism-pure, transitively.
type PureFact struct{}

func (*PureFact) AFact() {}

// ImpureFact marks a function proven impure; Why names the first reason.
type ImpureFact struct{ Why string }

func (*ImpureFact) AFact() {}

func init() {
	analysis.RegisterFact(&PureFact{})
	analysis.RegisterFact(&ImpureFact{})
}

var Analyzer = &analysis.Analyzer{
	Name: "purity",
	Doc:  "proves determinism-critical functions (//congest:pure, round kernels, combiner folds, and everything they reach) free of wall-clock reads, global rand, mutable package state, and order-sensitive map iteration",
	Run:  run,
}

// sortCalls neutralize an append accumulated under map-range order (the
// collect-keys-then-sort idiom).
var sortCalls = map[string]map[string]bool{
	"sort": {
		"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// impurity is one direct reason a body is not determinism-pure.
type impurity struct {
	pos token.Pos
	why string
}

func run(pass *analysis.Pass) error {
	g := callgraph.Build(pass.TypesInfo, pass.Files)
	mutated := mutatedGlobals(pass)

	// Direct impurities per node.
	direct := make(map[*callgraph.Node][]impurity)
	for _, n := range g.Nodes {
		direct[n] = directImpurities(pass, n, mutated)
	}

	// Transitive impurity fixpoint over local calls and nested literals.
	// why[n] is set once n is known impure; nodes that stay out of the
	// map are pure (least fixpoint, so pure recursion stays pure).
	why := make(map[*callgraph.Node]string)
	for _, n := range g.Nodes {
		if imps := direct[n]; len(imps) > 0 {
			why[n] = imps[0].why
		}
	}
	for {
		changed := false
		for _, n := range g.Nodes {
			if _, done := why[n]; done {
				continue
			}
			if w := calleeImpurity(pass, g, n, why); w != "" {
				why[n] = w
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Export one fact per declared function.
	for _, n := range g.Nodes {
		if n.Fn == nil {
			continue
		}
		if w, impure := why[n]; impure {
			pass.ExportObjectFact(n.Fn, &ImpureFact{Why: w})
		} else {
			pass.ExportObjectFact(n.Fn, &PureFact{})
		}
	}

	// Report every impurity inside the determinism-critical closure.
	folds := foldFields(pass)
	var roots []*callgraph.Node
	for _, n := range g.Nodes {
		if isRoot(pass, n, folds) {
			roots = append(roots, n)
		}
	}
	for n := range g.Reachable(roots, true) {
		for _, imp := range direct[n] {
			pass.Reportf(imp.pos, "%s in determinism-critical code: transcripts must be byte-identical across runs, so %s", imp.why, fixHint(imp.why))
		}
		reportImpureCalls(pass, g, n, why)
	}
	return nil
}

// isRoot reports whether n must be determinism-pure on its own account.
func isRoot(pass *analysis.Pass, n *callgraph.Node, folds map[ast.Expr]bool) bool {
	if n.Decl != nil {
		if astx.HasDirective(n.Decl.Doc, "//congest:pure") {
			return true
		}
		if fn, ok := pass.TypesInfo.ObjectOf(n.Decl.Name).(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && astx.IsRoundFuncShape(sig) {
				return true
			}
		}
		return false
	}
	if astx.IsRoundFuncShape(astx.FuncLitSig(pass.TypesInfo, n.Lit)) {
		return true
	}
	return folds[ast.Expr(n.Lit)]
}

// foldFields collects the expressions bound to a Fold key inside a
// Combiner composite literal — the pipecast merge functions, whose
// results feed the transcript directly.
func foldFields(pass *analysis.Pass) map[ast.Expr]bool {
	out := make(map[ast.Expr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(x ast.Node) bool {
			cl, ok := x.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if astx.NamedTypeName(pass.TypesInfo, cl) != "Combiner" {
				return true
			}
			for _, elt := range cl.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Fold" {
						out[ast.Unparen(kv.Value)] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// mutatedGlobals collects the package-level variables assigned anywhere
// in this package outside their declaration: reading one is reading
// mutable state.
func mutatedGlobals(pass *analysis.Pass) map[types.Object]bool {
	out := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if obj := astx.RootObj(pass.TypesInfo, e); obj != nil && isPackageVar(pass, obj) {
			out[obj] = true
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					record(lhs)
				}
			case *ast.IncDecStmt:
				record(s.X)
			case *ast.UnaryExpr:
				if s.Op == token.AND {
					record(s.X) // &global escapes: assume mutation
				}
			}
			return true
		})
	}
	return out
}

// isPackageVar reports whether obj is a package-level variable of the
// package under analysis.
func isPackageVar(pass *analysis.Pass, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() != pass.Pkg {
		return false
	}
	return v.Parent() == pass.Pkg.Scope()
}

// directImpurities collects the reasons lexically inside n's body
// (nested literals are their own nodes).
func directImpurities(pass *analysis.Pass, n *callgraph.Node, mutated map[types.Object]bool) []impurity {
	var out []impurity
	add := func(pos token.Pos, format string, args ...any) {
		out = append(out, impurity{pos, fmt.Sprintf(format, args...)})
	}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.FuncLit:
			return false // own node
		case *ast.CallExpr:
			if pkg, name, ok := astx.PkgFunc(pass.TypesInfo, e.Fun); ok {
				switch {
				case pkg == "time" && seededrand.ClockReads[name]:
					add(e.Pos(), "wall-clock read (time.%s)", name)
				case (pkg == "math/rand" || pkg == "math/rand/v2") && seededrand.GlobalDraws[name]:
					add(e.Pos(), "global rand draw (rand.%s)", name)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if obj := astx.RootObj(pass.TypesInfo, lhs); obj != nil && isPackageVar(pass, obj) {
					add(e.Pos(), "write to package-level state (%s)", obj.Name())
				}
			}
		case *ast.IncDecStmt:
			if obj := astx.RootObj(pass.TypesInfo, e.X); obj != nil && isPackageVar(pass, obj) {
				add(e.Pos(), "write to package-level state (%s)", obj.Name())
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e]; obj != nil && isPackageVar(pass, obj) && mutated[obj] && !isWriteTarget(n.Body, e) {
				add(e.Pos(), "read of mutated package-level state (%s)", obj.Name())
			}
		case *ast.RangeStmt:
			if astx.IsMapType(pass.TypesInfo, e.X) && !orderInsensitiveRange(pass, n, e) {
				add(e.Pos(), "order-sensitive map iteration")
			}
		}
		return true
	})
	return out
}

// isWriteTarget reports whether id is (part of) an assignment LHS — the
// write diagnostic already covers it, so skip the read diagnostic.
func isWriteTarget(body *ast.BlockStmt, id *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		var lhs []ast.Expr
		switch s := x.(type) {
		case *ast.AssignStmt:
			lhs = s.Lhs
		case *ast.IncDecStmt:
			lhs = []ast.Expr{s.X}
		default:
			return true
		}
		for _, e := range lhs {
			if e.Pos() <= id.Pos() && id.End() <= e.End() {
				found = true
			}
		}
		return true
	})
	return found
}

// orderInsensitiveRange reports whether every statement of a map-range
// body is commutative under iteration order: map/set writes, compound
// assignments, delete, continue, and appends into slices that are sorted
// later in the enclosing body — the collect-then-sort idiom.
func orderInsensitiveRange(pass *analysis.Pass, n *callgraph.Node, rs *ast.RangeStmt) bool {
	var ok func(stmt ast.Stmt) bool
	ok = func(stmt ast.Stmt) bool {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
				return true // compound ops (+=, |=, ...) are commutative
			}
			for i, lhs := range s.Lhs {
				if isBlank(lhs) {
					continue
				}
				if sel, isIdx := lhs.(*ast.IndexExpr); isIdx && astx.IsMapType(pass.TypesInfo, sel.X) {
					continue // m[k] = v: set/map write
				}
				// append into a slice sorted later in this function
				if i < len(s.Rhs) {
					if obj := appendTarget(pass, s.Rhs[i], lhs); obj != nil && sortedAfter(pass, n.Body, rs.End(), obj) {
						continue
					}
				}
				// Writes to variables declared inside the loop body stay
				// local to one iteration and cannot leak order.
				if obj := astx.RootObj(pass.TypesInfo, lhs); obj != nil && rs.Body.Pos() <= obj.Pos() && obj.Pos() <= rs.Body.End() {
					continue
				}
				return false
			}
			return true
		case *ast.ExprStmt:
			call, isCall := ast.Unparen(s.X).(*ast.CallExpr)
			if !isCall {
				return false
			}
			if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "delete" {
				if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
					return true
				}
			}
			return false
		case *ast.IfStmt:
			if s.Init != nil && !ok(s.Init) {
				return false
			}
			if !ok(s.Body) {
				return false
			}
			return s.Else == nil || ok(s.Else)
		case *ast.BlockStmt:
			for _, st := range s.List {
				if !ok(st) {
					return false
				}
			}
			return true
		case *ast.BranchStmt:
			return s.Tok == token.CONTINUE || s.Tok == token.BREAK
		case *ast.DeclStmt:
			return true // local declaration
		default:
			return false
		}
	}
	return ok(rs.Body)
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// appendTarget returns the object accumulating via xs = append(xs, ...)
// when rhs is such a call matching lhs, else nil.
func appendTarget(pass *analysis.Pass, rhs, lhs ast.Expr) types.Object {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if _, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return nil
	}
	return astx.RootObj(pass.TypesInfo, lhs)
}

// sortedAfter reports whether a sort.*/slices.Sort* call mentioning obj
// appears after pos in the enclosing body.
func sortedAfter(pass *analysis.Pass, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		pkg, name, ok := astx.PkgFunc(pass.TypesInfo, call.Fun)
		if !ok || !sortCalls[pkgBase(pkg)][name] {
			return true
		}
		for _, arg := range call.Args {
			if astx.UsesObj(pass.TypesInfo, arg, obj) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// calleeImpurity returns the first impurity n inherits from a callee or
// nested literal, or "".
func calleeImpurity(pass *analysis.Pass, g *callgraph.Graph, n *callgraph.Node, why map[*callgraph.Node]string) string {
	for _, c := range n.Calls {
		if w, reason := callImpurity(pass, g, c, why); reason {
			return w
		}
	}
	for _, lit := range n.Lits {
		if w, impure := why[lit]; impure {
			return fmt.Sprintf("builds an impure closure (%s)", w)
		}
	}
	return ""
}

// callImpurity classifies one call edge: local callees by fixpoint
// state, imported module-local callees by fact, everything else by the
// explicit blacklists already handled as direct impurities.
func callImpurity(pass *analysis.Pass, g *callgraph.Graph, c callgraph.Call, why map[*callgraph.Node]string) (string, bool) {
	if local, ok := g.ByFn[c.Callee]; ok {
		if w, impure := why[local]; impure {
			return fmt.Sprintf("calls %s (%s)", c.Callee.Name(), w), true
		}
		return "", false
	}
	var imp ImpureFact
	if pass.ImportObjectFact(c.Callee, &imp) {
		return fmt.Sprintf("calls %s (%s)", calleeName(c.Callee), imp.Why), true
	}
	var pure PureFact
	if pass.ImportObjectFact(c.Callee, &pure) {
		return "", false
	}
	if moduleLocal(c.Callee) && c.Callee.Pkg() != pass.Pkg {
		return fmt.Sprintf("calls %s, which is not proven pure (no PureFact: dynamic dispatch or unanalyzed declaration)", calleeName(c.Callee)), true
	}
	if c.Callee.Pkg() == pass.Pkg {
		// Same-package callee with no body node (bodiless declaration,
		// or an interface method of a local type).
		if _, hasNode := g.ByFn[c.Callee]; !hasNode {
			return fmt.Sprintf("calls %s, which has no analyzable body", calleeName(c.Callee)), true
		}
	}
	return "", false // outside the module: assumed pure beyond the blacklists
}

// moduleLocal reports whether fn belongs to the repro module, where
// every package is analyzed and facts are authoritative.
func moduleLocal(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "repro" || strings.HasPrefix(path, "repro/")
}

// reportImpureCalls reports, inside one determinism-critical body, each
// call edge that introduces impurity from elsewhere.
func reportImpureCalls(pass *analysis.Pass, g *callgraph.Graph, n *callgraph.Node, why map[*callgraph.Node]string) {
	for _, c := range n.Calls {
		if _, local := g.ByFn[c.Callee]; local {
			continue // its body is in the closure; reported there
		}
		if w, impure := callImpurity(pass, g, c, why); impure {
			pass.Reportf(c.Pos, "%s in determinism-critical code", w)
		}
	}
}

func calleeName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// fixHint maps an impurity class to its canonical fix.
func fixHint(why string) string {
	switch {
	case strings.HasPrefix(why, "wall-clock"):
		return "route timing through seeded state, not the clock"
	case strings.HasPrefix(why, "global rand"):
		return "derive a seeded generator from internal/xrand"
	case strings.HasPrefix(why, "write to package-level"):
		return "thread the state through parameters or receiver instead"
	case strings.HasPrefix(why, "read of mutated package-level"):
		return "pass the value in explicitly; mutable globals break replayability"
	case strings.HasPrefix(why, "order-sensitive map iteration"):
		return "iterate sorted keys, or keep the body commutative (or sort what it accumulates)"
	default:
		return "remove the dependence on process state"
	}
}

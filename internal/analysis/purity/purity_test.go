package purity_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/purity"
)

// TestPurity checks the analyzer against its single-package fixture:
// round kernels, //congest:pure roots, Combiner folds, all impurity
// classes, the order-insensitive map-range escapes, and //lint:allow.
func TestPurity(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "puritytest"), purity.Analyzer)
}

// TestPurityCrossPackage proves Pure/Impure facts cross package
// boundaries in the standalone loader: fixture pa imports pb, and pa's
// findings exist only through pb's exported facts.
func TestPurityCrossPackage(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "pa"), purity.Analyzer)
}

// TestPurityFactsVetxRoundTrip proves the same findings survive the gob
// serialization boundary used by `go vet -vettool=`.
func TestPurityFactsVetxRoundTrip(t *testing.T) {
	pkgs, err := analysis.LoadFixture(filepath.Join("testdata", "src", "pa"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 || pkgs[0].Path != "pb" || pkgs[1].Path != "pa" {
		t.Fatalf("fixture should load [pb pa], got %d packages", len(pkgs))
	}
	analyzers := []*analysis.Analyzer{purity.Analyzer}

	depStore := analysis.NewFactStore()
	if _, err := analysis.RunFacts(analyzers, []*analysis.Package{pkgs[0]}, depStore); err != nil {
		t.Fatal(err)
	}
	wire, err := depStore.EncodePackage("pb")
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) == 0 {
		t.Fatal("package pb exported no facts; the round-trip test is vacuous")
	}

	freshStore := analysis.NewFactStore()
	if err := freshStore.DecodePackage("pb", wire); err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunFacts(analyzers, []*analysis.Package{pkgs[1]}, freshStore)
	if err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{
		"calls pb.Clock (wall-clock read (time.Now))",
		"calls pb.Late (calls Clock (wall-clock read (time.Now)))",
	} {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("after vetx round-trip, missing diagnostic %q in %v", want, diags)
		}
	}
	if len(diags) != 2 {
		t.Errorf("want exactly 2 diagnostics (pb.Mix must stay clean via PureFact), got %d: %v", len(diags), diags)
	}
}

// Package pa is the dependent half of the cross-package purity fixture:
// its kernel calls into package pb, and the findings below exist only
// because pb's Pure/Impure facts crossed the package boundary.
package pa

import "pb"

type Node struct{ ID int }

type Message struct{ Port int }

// kernel reaches a wall-clock read one call below (pb.Clock) and two
// calls below (pb.Late → pb.Clock): the imported ImpureFacts surface
// them at the call sites, since pb's bodies are not visible here.
func kernel(n *Node, msgs []Message) bool {
	h := pb.Mix(uint64(n.ID)) // proven pure by imported PureFact: clean
	t := pb.Clock()           // want `calls pb\.Clock \(wall-clock read \(time\.Now\)\) in determinism-critical code`
	u := pb.Late(t)           // want `calls pb\.Late \(calls Clock \(wall-clock read \(time\.Now\)\)\) in determinism-critical code`
	return h+uint64(u) > 0
}

var _ = kernel

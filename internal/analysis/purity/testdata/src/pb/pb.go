// Package pb is the dependency half of the cross-package purity
// fixture: no determinism-critical roots live here, so it analyzes
// clean, but every function exports a PureFact or ImpureFact that
// package pa imports.
package pb

import "time"

// Clock is impure: ImpureFact("wall-clock read (time.Now)").
func Clock() int64 { return time.Now().Unix() }

// Mix is pure: PureFact.
func Mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	return x ^ x>>29
}

// Late is impure one call deeper: ImpureFact("calls Clock ...").
func Late(x int64) int64 { return x + Clock() }

// Package puritytest exercises the purity analyzer: determinism-critical
// roots (round kernels, //congest:pure functions, Combiner folds), the
// impurity classes, and the order-insensitive map-range escapes.
package puritytest

import (
	"math/rand"
	"sort"
	"time"
)

type Node struct{ ID int }

type Message struct{ Port int }

// Combiner mirrors the engine's pipecast merge table: the Fold literal
// is a determinism root even when nothing in the package calls it.
type Combiner struct {
	Name string
	Fold func(a, b uint64) uint64
}

var (
	steps  int             // mutated below: reading it is impure
	tuning = uint64(7)     // never reassigned: reading it is fine
	seen   = map[int]int{} // mutated inside CombineTrace's fold
)

// kernel is a round kernel; it reaches a wall-clock read one call below
// (stamp) and a global rand draw two calls below (stamp → jitter).
func kernel(n *Node, msgs []Message) bool {
	steps++    // want `write to package-level state \(steps\) in determinism-critical code`
	_ = tuning // never mutated: reading it carries no order or history
	return stamp() > 0
}

// stamp is one call below the kernel.
func stamp() int64 {
	t := time.Now() // want `wall-clock read \(time\.Now\) in determinism-critical code`
	return t.Unix() + int64(jitter())
}

// jitter is two calls below the kernel.
func jitter() int {
	return rand.Intn(8) // want `global rand draw \(rand\.Intn\) in determinism-critical code`
}

// CombineTrace's fold is a root by position (Fold field of a Combiner
// literal), and it leaks history through a package-level map.
var CombineTrace = Combiner{
	Name: "trace",
	Fold: func(a, b uint64) uint64 {
		seen[int(a)]++ // want `write to package-level state \(seen\) in determinism-critical code`
		return a + b
	},
}

// CombineSum's fold is pure: no diagnostics.
var CombineSum = Combiner{
	Name: "sum",
	Fold: func(a, b uint64) uint64 { return a + b },
}

// histogram ranges over a map, but every statement in the body is
// commutative: a compound add, a map write, and an append that is sorted
// right after the loop. No diagnostic.
//
//congest:pure
func histogram(m map[int]int) ([]int, int) {
	total := 0
	counts := map[int]int{}
	keys := make([]int, 0, len(m))
	for k, v := range m {
		total += v
		counts[k] = v
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys, total
}

// firstKey lets the randomized iteration order pick the answer.
//
//congest:pure
func firstKey(m map[int]int) int {
	best := -1
	for k := range m { // want `order-sensitive map iteration in determinism-critical code`
		if best == -1 {
			best = k
		}
	}
	return best
}

// reachesSteps is pure itself but reads mutated package state.
//
//congest:pure
func reachesSteps() int {
	return steps // want `read of mutated package-level state \(steps\) in determinism-critical code`
}

// closureLeak builds an impure closure: the literal's clock read is
// reported inside the literal (the closure is reachable from the pure
// root through the containment edge).
//
//congest:pure
func closureLeak() func() int64 {
	return func() int64 {
		return time.Now().Unix() // want `wall-clock read \(time\.Now\) in determinism-critical code`
	}
}

// coldClock is impure but unreachable from every root: no diagnostic
// here, only an exported ImpureFact for dependents.
func coldClock() time.Time { return time.Now() }

// allowedBench measures wall-clock with a reasoned allow.
//
//congest:pure
func allowedBench() int64 {
	start := time.Now() //lint:allow purity benchmark harness reports wall-clock duration alongside the deterministic transcript
	return start.Unix()
}

var _ = []any{kernel, coldClock, reachesSteps, closureLeak, allowedBench, histogram, firstKey}

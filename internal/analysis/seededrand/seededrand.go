// Package seededrand implements the congestlint analyzer that keeps all
// randomness PCG-seeded and all behavior wall-clock independent.
//
// Every generator, experiment, and fault plan in the repository must be
// replayable from a seed: transcripts are compared byte-for-byte across
// runs and GOMAXPROCS settings, so a single draw from the global
// math/rand source — or a decision influenced by time.Now — silently
// breaks determinism. internal/xrand is the one blessed randomness
// gateway (it derives *rand.Rand instances from seeded PCG state).
// seededrand flags, everywhere outside internal/xrand:
//
//   - calls to the global-source draw functions of math/rand and
//     math/rand/v2 (rand.Intn, rand.Shuffle, rand.Seed, v2's rand.N, …);
//     constructing an explicit *rand.Rand (and xrand.New itself) stays
//     legal, since explicit generators carry their seed;
//   - time.Now, time.Since, and time.Until — wall-clock reads. Benchmark
//     mains that legitimately time wall-clock take a //lint:allow with
//     the measurement named in the reason.
package seededrand

import (
	"go/ast"

	"repro/internal/analysis"
	"repro/internal/analysis/astx"
)

var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "forbids global math/rand draws and wall-clock reads outside internal/xrand, keeping every run seed-replayable",
	Run:  run,
}

// GlobalDraws are the package-level functions of math/rand (and its v2
// names) that consume the shared global source. Exported because the
// purity analyzer enforces the same non-determinism classes
// transitively.
var GlobalDraws = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

// ClockReads are the wall-clock reads of package time; shared with the
// purity analyzer like GlobalDraws.
var ClockReads = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == "repro/internal/xrand" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := astx.PkgFunc(pass.TypesInfo, call.Fun)
			if !ok {
				return true
			}
			switch {
			case (pkg == "math/rand" || pkg == "math/rand/v2") && GlobalDraws[name]:
				pass.Reportf(call.Pos(), "rand.%s draws from the process-global source and is not seed-replayable; derive a generator from internal/xrand instead", name)
			case pkg == "time" && ClockReads[name]:
				pass.Reportf(call.Pos(), "time.%s reads the wall clock: behavior must be seed-replayable and clock-independent outside internal/xrand", name)
			}
			return true
		})
	}
	return nil
}

// Package seededrandtest is the analysistest fixture for the seededrand
// analyzer: global math/rand draws and wall-clock reads are forbidden,
// explicit seeded generators are legal.
package seededrandtest

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

// GlobalDrawBug consumes the process-global source: not replayable from
// a seed.
func GlobalDrawBug(n int) int {
	return rand.Intn(n) // want `rand.Intn draws from the process-global source`
}

// GlobalShuffleBug is the same class through a different entry point.
func GlobalShuffleBug(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the process-global source`
}

// V2DrawBug: math/rand/v2's global helpers are just as unseeded.
func V2DrawBug(n int) int {
	return randv2.IntN(n) // want `rand.IntN draws from the process-global source`
}

// WallClockBug lets the wall clock influence behavior.
func WallClockBug() int64 {
	return time.Now().UnixNano() // want `time.Now reads the wall clock`
}

// ElapsedBug measures wall time, the Since spelling.
func ElapsedBug(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

// SeededClean draws from an explicit generator that carries its seed;
// in the repository proper the generator comes from internal/xrand.
func SeededClean(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n)
}

// DurationClean manipulates time values without reading the clock.
func DurationClean(d time.Duration) time.Duration {
	return d * 2
}

// AllowedBenchTimer shows the suppression directive for a benchmark
// harness that legitimately reports wall-clock timings.
func AllowedBenchTimer() time.Time {
	//lint:allow seededrand benchmark harness reports wall-clock table timings; no algorithmic decision depends on it
	return time.Now()
}

// Package zeromasktest is the analysistest fixture for the zeromask
// analyzer. FloodBug reproduces the PR 2/PR 3 class: a BFS-style flood
// whose round budget runs dry and which then reports its zero result as
// a success.
package zeromasktest

import "errors"

// ErrIncomplete mirrors the engine's sentinel.
var ErrIncomplete = errors.New("protocol incomplete")

// Result mirrors a protocol result struct.
type Result struct {
	Rounds  int
	Covered int
}

// FloodBug is the historical shape: the bounded flood loop falls through
// and the zero eccentricity masquerades as a converged answer.
func FloodBug(adj [][]int, src, budget int) (int, error) {
	frontier := []int{src}
	for r := 0; r < budget; r++ {
		var next []int
		for _, v := range frontier {
			next = append(next, adj[v]...)
		}
		if len(next) == 0 {
			return r, nil
		}
		frontier = next
	}
	return 0, nil // want `zero value returned with nil error on a fall-through path after a bounded loop`
}

// FloodFixed is the shipped fix: exhaustion surfaces as ErrIncomplete.
func FloodFixed(adj [][]int, src, budget int) (int, error) {
	frontier := []int{src}
	for r := 0; r < budget; r++ {
		var next []int
		for _, v := range frontier {
			next = append(next, adj[v]...)
		}
		if len(next) == 0 {
			return r, nil
		}
		frontier = next
	}
	return 0, ErrIncomplete
}

// GuardedBug returns a zero struct under an explicit budget guard.
func GuardedBug(budget int) (Result, error) {
	if budget <= 0 {
		return Result{}, nil // want `zero value returned with nil error on a budget-guarded branch`
	}
	return Result{Rounds: budget, Covered: 1}, nil
}

// EmptyInputClean is a legitimate zero success: the guard tests input
// emptiness, not budget exhaustion, and no loop precedes it.
func EmptyInputClean(xs []int) (int, error) {
	if len(xs) == 0 {
		return 0, nil
	}
	total := 0
	for _, x := range xs {
		total += x
	}
	return total, nil
}

// ComputedResultClean returns a computed value after its loop: zeromask
// only flags literal zeros, and a computed zero is the caller's honest
// answer.
func ComputedResultClean(xs []int) (int, error) {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total, nil
}

// AllowedSentinelFree shows the suppression directive: this probe
// genuinely means "zero matches, no error" when the scan runs dry.
func AllowedSentinelFree(xs []int, want, budget int) (int, error) {
	for i := 0; i < budget && i < len(xs); i++ {
		if xs[i] == want {
			return i, nil
		}
	}
	//lint:allow zeromask a dry scan really does mean index zero candidates; callers treat 0 as the none marker
	return 0, nil
}

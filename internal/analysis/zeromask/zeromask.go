// Package zeromask implements the congestlint analyzer that catches
// zero values masquerading as successful results.
//
// The bug class (found by hand in PR 2 and PR 3): a protocol whose round
// budget runs out, or whose flood never covers the graph, falls through
// to `return 0, nil` / `return T{}, nil` — and the caller cannot tell an
// exhausted run from a legitimate zero. The repository's convention is
// that such paths must return congest.ErrIncomplete (usually via
// *congest.IncompleteError). zeromask flags, in any function returning
// (T, error), a `return <zero T>, nil` that sits on an exhaustion-shaped
// path:
//
//   - the fall-through return after a bounded for loop (the loop ran dry
//     and the function still reports success), or
//   - a return under a condition that mentions a budget/round/attempt
//     identifier.
//
// Functions whose zero return precedes any loop (ordinary validation
// paths, empty-input successes) are not flagged.
package zeromask

import (
	"go/ast"
	"go/constant"
	"strings"

	"repro/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "zeromask",
	Doc:  "flags budget-exhaustion paths returning a zero value with a nil error instead of ErrIncomplete (PR 2/PR 3's zero-masquerading flood bug class)",
	Run:  run,
}

// budgetWords mark condition identifiers that smell like exhaustion
// checks.
var budgetWords = []string{"budget", "round", "attempt", "remaining", "retries", "tries", "deadline"}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var typ *ast.FuncType
			var body *ast.BlockStmt
			switch d := n.(type) {
			case *ast.FuncDecl:
				typ, body = d.Type, d.Body
			case *ast.FuncLit:
				typ, body = d.Type, d.Body
			default:
				return true
			}
			if body != nil && returnsValueAndError(pass, typ) {
				checkFunc(pass, typ, body)
			}
			return true
		})
	}
	return nil
}

// returnsValueAndError matches (T, error) results.
func returnsValueAndError(pass *analysis.Pass, typ *ast.FuncType) bool {
	if typ.Results == nil {
		return false
	}
	var flat []ast.Expr
	for _, f := range typ.Results.List {
		n := max(len(f.Names), 1)
		for i := 0; i < n; i++ {
			flat = append(flat, f.Type)
		}
	}
	if len(flat) != 2 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[flat[1]]
	return ok && tv.Type != nil && tv.Type.String() == "error"
}

func checkFunc(pass *analysis.Pass, typ *ast.FuncType, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false // separate function, visited on its own
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 2 {
			return true
		}
		if !isZeroValue(pass, ret.Results[0]) || !isNil(pass, ret.Results[1]) {
			return true
		}
		if reason := exhaustionPath(pass, body, ret); reason != "" {
			pass.Reportf(ret.Pos(), "zero value returned with nil error on %s: an exhausted or incomplete run masquerades as success; return ErrIncomplete (or a wrapped IncompleteError) instead", reason)
		}
		return true
	})
}

// exhaustionPath classifies the return's position: after a bounded loop in
// the same block ("a fall-through path after a bounded loop"), or guarded
// by a budget-ish condition ("a budget-guarded branch"). Empty means the
// return looks like an ordinary success path.
func exhaustionPath(pass *analysis.Pass, body *ast.BlockStmt, ret *ast.ReturnStmt) string {
	// Walk the statement path from body down to ret.
	var path []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || len(path) > 0 && path[len(path)-1] == ret {
			return false
		}
		if n.Pos() <= ret.Pos() && ret.End() <= n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	if len(path) == 0 || path[len(path)-1] != ret {
		return ""
	}
	for _, n := range path {
		if ifs, ok := n.(*ast.IfStmt); ok && mentionsBudgetWord(ifs.Cond) {
			return "a budget-guarded branch"
		}
	}
	// Fall-through shape: the return is the function's final statement and
	// a bounded for/range loop precedes it in the outermost block — the
	// loop ran dry and the function still reports success. Mid-function
	// zero returns (input validation, empty-input successes) pass.
	if len(body.List) == 0 || body.List[len(body.List)-1] != ast.Stmt(ret) {
		return ""
	}
	for _, stmt := range body.List[:len(body.List)-1] {
		switch loop := stmt.(type) {
		case *ast.ForStmt:
			if loop.Cond != nil {
				return "a fall-through path after a bounded loop"
			}
		case *ast.RangeStmt:
			return "a fall-through path after a loop"
		}
	}
	return ""
}

func mentionsBudgetWord(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			lower := strings.ToLower(id.Name)
			for _, w := range budgetWords {
				if strings.Contains(lower, w) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isZeroValue recognizes literal zero results: nil, zero numeric/string
// constants, empty composite literals, and conversions thereof.
func isZeroValue(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	if tv.IsNil() {
		return true
	}
	if tv.Value != nil {
		switch tv.Value.Kind() {
		case constant.Int, constant.Float:
			return constant.Sign(tv.Value) == 0
		case constant.String:
			return constant.StringVal(tv.Value) == ""
		case constant.Bool:
			return !constant.BoolVal(tv.Value)
		}
		return false
	}
	switch x := e.(type) {
	case *ast.CompositeLit:
		return len(x.Elts) == 0
	case *ast.CallExpr:
		// Conversion T(zero).
		if len(x.Args) == 1 {
			if tfun, ok := pass.TypesInfo.Types[x.Fun]; ok && tfun.IsType() {
				return isZeroValue(pass, x.Args[0])
			}
		}
	}
	return false
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

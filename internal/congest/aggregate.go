package congest

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// AggregateResult reports a part-wise aggregation run.
type AggregateResult struct {
	Mins  []uint64 // per part: the minimum key over its members
	Stats Stats
	// EffectiveRounds is the number of rounds until the flood went quiet —
	// the quantity Theorem 1 bounds by Õ(quality). The run itself executes
	// a fixed budget of rounds (nodes cannot detect global quiescence), so
	// Stats.Rounds exceeds this.
	EffectiveRounds int
	Budget          int
}

// AggregateMin computes, for every part, the minimum of the members' keys
// (64-bit, min-combinable; callers encode (value, id) pairs order-
// preservingly), with every member learning its part's minimum. This is the
// framework subproblem from paper §1.3.3: communication flows along the
// part's induced edges plus its shortcut edges, one (part, key) message per
// edge direction per round, so congested edges serialize exactly as the
// congestion parameter predicts.
//
// The round budget starts at an estimate from the shortcut's measured
// quality and doubles until the flood converges (checked against the
// sequential answer); the converged run's quiet-point is reported.
func AggregateMin(g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut, keys []uint64) (*AggregateResult, error) {
	return AggregateMinUnder(g, p, s, keys, nil)
}

// AggregateMinUnder is AggregateMin under an adversary: each attempt of the
// existing doubling loop runs with the adversary's fault plan (advanced
// along its timeline per attempt), aborted runs count as non-converged
// attempts instead of hard failures, and the attempt cap comes from the
// adversary's retry policy. The flooding protocol re-offers its best-known
// key whenever it changes, but a dropped update can still leave a member
// stale at the budget boundary — which the sequential convergence check
// catches, exactly as it catches an undersized budget. A nil adversary is
// the fault-free AggregateMin.
func AggregateMinUnder(g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut, keys []uint64, adv *Adversary) (*AggregateResult, error) {
	if len(keys) != g.N() {
		return nil, fmt.Errorf("congest: %d keys for %d vertices", len(keys), g.N())
	}
	// Channels: per edge, the parts communicating over it (see
	// buildEdgeChannels, shared with the relaxation primitive).
	partsOnEdge := buildEdgeChannels(g, p, s)
	// Expected answers for convergence checking (the environment's
	// ground-truth; a real deployment would rely on the proven bound).
	want := make([]uint64, p.NumParts())
	for i := range want {
		want[i] = math.MaxUint64
		for _, v := range p.Sets[i] {
			if keys[v] < want[i] {
				want[i] = keys[v]
			}
		}
	}
	m := s.Measure()
	budget := m.Quality + 2*m.TreeDiameter + 8
	attempts := 8
	if adv != nil {
		attempts = adv.attempts()
	}
	for attempt := 0; attempt < attempts; attempt++ {
		ropts := Options{MaxRounds: budget + 64}
		if adv != nil {
			// Crashes stall nodes' local round counters, so grant headroom.
			ropts = adv.options(2*budget + 64)
		}
		res, converged, err := runAggregate(g, p, partsOnEdge, keys, want, budget, ropts)
		if err != nil {
			if adv != nil && Retryable(err) {
				adv.Retries++
				budget *= 2
				continue
			}
			return nil, err
		}
		if converged {
			res.Budget = budget
			return res, nil
		}
		if adv != nil {
			adv.Retries++
		}
		budget *= 2
	}
	return nil, &IncompleteError{Protocol: "AggregateMin", Budget: budget,
		Detail: "flood failed to converge within the doubling budget"}
}

// localPartIdx finds the slab index of part within parts[off:end), the
// per-node window of the shared part slab. It is a top-level function (not
// a closure in the round kernel) so the hot path allocates nothing.
//
//congest:hotpath
func localPartIdx(parts []int32, off, end, part int32) int32 {
	for li := off; li < end; li++ {
		if parts[li] == part {
			return li
		}
	}
	return -1
}

func runAggregate(g *graph.Graph, p *partition.Parts, partsOnEdge func(int) []int32, keys, want []uint64, budget int, ropts Options) (*AggregateResult, bool, error) {
	n := g.N()
	// finalBest[v] = best-known key of v's own part when the budget ran out.
	finalBest := make([]uint64, n)
	for v := range finalBest {
		finalBest[v] = math.MaxUint64
	}
	// Per-node protocol state lives in shared slab arrays (CSR per node),
	// and every node shares one RoundFunc that indexes the slabs by node
	// ID, so a whole run performs a constant number of allocations.
	type channel struct{ port, part int32 }
	type nodeState struct {
		chOff, chEnd int32 // into channels/dirty
		ptOff, ptEnd int32 // into parts/best
		own          int32 // index into parts/best, or -1
		round        int32
	}
	totCh := 0
	for id := 0; id < g.M(); id++ {
		totCh += 2 * len(partsOnEdge(id))
	}
	channels := make([]channel, 0, totCh)
	dirty := make([]bool, totCh)
	parts := make([]int32, 0, totCh+n)
	best := make([]uint64, 0, totCh+n)
	sentRound := make([]int32, 0, totCh)
	state := make([]nodeState, n)
	for v := 0; v < n; v++ {
		st := &state[v]
		st.chOff = int32(len(channels))
		st.ptOff = int32(len(parts))
		st.own = -1
		for port, a := range g.Adj(v) {
			sentRound = append(sentRound, -1)
			for _, pi := range partsOnEdge(a.ID) {
				channels = append(channels, channel{int32(port), pi})
				if localPartIdx(parts, st.ptOff, int32(len(parts)), pi) == -1 {
					parts = append(parts, pi)
					best = append(best, math.MaxUint64)
				}
			}
		}
		if pi := p.Of[v]; pi != -1 {
			if li := localPartIdx(parts, st.ptOff, int32(len(parts)), int32(pi)); li != -1 {
				st.own = li
				if keys[v] < best[li] {
					best[li] = keys[v]
				}
			} else {
				// Isolated member: no channels carry its part, but it still
				// reports its own key.
				parts = append(parts, int32(pi))
				best = append(best, keys[v])
				st.own = int32(len(parts) - 1)
			}
		}
		st.chEnd = int32(len(channels))
		st.ptEnd = int32(len(parts))
		for ci := st.chOff; ci < st.chEnd; ci++ {
			if li := localPartIdx(parts, st.ptOff, st.ptEnd, channels[ci].part); li != -1 && best[li] != math.MaxUint64 {
				dirty[ci] = true
			}
		}
	}
	portOff := make([]int32, n+1) // node -> offset into sentRound
	for v := 0; v < n; v++ {
		portOff[v+1] = portOff[v] + int32(g.Degree(v))
	}
	step := func(nd *Node, msgs []Message) bool {
		st := &state[nd.ID]
		// Fold in the previous round's deliveries.
		for _, msg := range msgs {
			pi := int32(msg.Payload[0])
			key := msg.Payload[1]
			li := localPartIdx(parts, st.ptOff, st.ptEnd, pi)
			if li == -1 || key >= best[li] {
				continue
			}
			best[li] = key
			for ci := st.chOff; ci < st.chEnd; ci++ {
				if channels[ci].part == pi && int(channels[ci].port) != msg.Port {
					dirty[ci] = true
				}
			}
		}
		if int(st.round) == budget {
			if st.own != -1 {
				finalBest[nd.ID] = best[st.own]
			}
			return false
		}
		// One pending update per port, lowest part ID first (channels are
		// built in (port, part) order).
		sent := sentRound[portOff[nd.ID]:portOff[nd.ID+1]]
		for ci := st.chOff; ci < st.chEnd; ci++ {
			ch := channels[ci]
			if !dirty[ci] || sent[ch.port] == st.round {
				continue
			}
			nd.Send(int(ch.port), Words{uint64(ch.part), best[localPartIdx(parts, st.ptOff, st.ptEnd, ch.part)]})
			dirty[ci] = false
			sent[ch.port] = st.round
		}
		st.round++
		return true
	}
	stats, err := RunSync(g, func(*Node) RoundFunc { return step }, ropts)
	if err != nil {
		return nil, false, err
	}
	// Convergence: every part member must hold the true minimum.
	converged := true
	for i, w := range want {
		for _, v := range p.Sets[i] {
			if finalBest[v] != w {
				converged = false
			}
		}
	}
	res := &AggregateResult{
		Mins:            append([]uint64(nil), want...),
		Stats:           stats,
		EffectiveRounds: stats.LastActiveRound,
	}
	return res, converged, nil
}

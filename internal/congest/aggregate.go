package congest

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// AggregateResult reports a part-wise aggregation run.
type AggregateResult struct {
	Mins  []uint64 // per part: the minimum key over its members
	Stats Stats
	// EffectiveRounds is the number of rounds until the flood went quiet —
	// the quantity Theorem 1 bounds by Õ(quality). The run itself executes
	// a fixed budget of rounds (nodes cannot detect global quiescence), so
	// Stats.Rounds exceeds this.
	EffectiveRounds int
	Budget          int
}

// AggregateMin computes, for every part, the minimum of the members' keys
// (64-bit, min-combinable; callers encode (value, id) pairs order-
// preservingly), with every member learning its part's minimum. This is the
// framework subproblem from paper §1.3.3: communication flows along the
// part's induced edges plus its shortcut edges, one (part, key) message per
// edge direction per round, so congested edges serialize exactly as the
// congestion parameter predicts.
//
// The round budget starts at an estimate from the shortcut's measured
// quality and doubles until the flood converges (checked against the
// sequential answer); the converged run's quiet-point is reported.
func AggregateMin(g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut, keys []uint64) (*AggregateResult, error) {
	if len(keys) != g.N() {
		return nil, fmt.Errorf("congest: %d keys for %d vertices", len(keys), g.N())
	}
	// Channels: per edge, the parts communicating over it.
	partsOnEdge := make(map[int][]int)
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		if pi := p.Of[e.U]; pi != -1 && pi == p.Of[e.V] {
			partsOnEdge[id] = append(partsOnEdge[id], pi)
		}
	}
	for pi, ids := range s.Edges {
		for _, id := range ids {
			dup := false
			for _, x := range partsOnEdge[id] {
				if x == pi {
					dup = true
					break
				}
			}
			if !dup {
				partsOnEdge[id] = append(partsOnEdge[id], pi)
			}
		}
	}
	// Expected answers for convergence checking (the environment's
	// ground-truth; a real deployment would rely on the proven bound).
	want := make([]uint64, p.NumParts())
	for i := range want {
		want[i] = math.MaxUint64
		for _, v := range p.Sets[i] {
			if keys[v] < want[i] {
				want[i] = keys[v]
			}
		}
	}
	m := s.Measure()
	budget := m.Quality + 2*m.TreeDiameter + 8
	for attempt := 0; attempt < 8; attempt++ {
		res, converged, err := runAggregate(g, p, partsOnEdge, keys, want, budget)
		if err != nil {
			return nil, err
		}
		if converged {
			res.Budget = budget
			return res, nil
		}
		budget *= 2
	}
	return nil, fmt.Errorf("congest: aggregation failed to converge within budget %d", budget)
}

func runAggregate(g *graph.Graph, p *partition.Parts, partsOnEdge map[int][]int, keys, want []uint64, budget int) (*AggregateResult, bool, error) {
	n := g.N()
	finalBest := make([]map[int]uint64, n)
	f := func(nd *Node) {
		// State: best-known key per participating part; dirty flags per
		// (port, part) channel.
		best := make(map[int]uint64)
		type channel struct{ port, part int }
		var channels []channel
		dirty := make(map[channel]bool)
		for port := 0; port < nd.Degree(); port++ {
			for _, pi := range partsOnEdge[nd.PortEdge(port)] {
				channels = append(channels, channel{port, pi})
				if _, ok := best[pi]; !ok {
					best[pi] = math.MaxUint64
				}
			}
		}
		if pi := p.Of[nd.ID]; pi != -1 {
			if b, ok := best[pi]; !ok || keys[nd.ID] < b {
				best[pi] = keys[nd.ID]
			}
		}
		for _, ch := range channels {
			if best[ch.part] != math.MaxUint64 {
				dirty[ch] = true
			}
		}
		for r := 0; r < budget; r++ {
			// One pending update per port, lowest part ID first.
			sent := make(map[int]bool)
			for _, ch := range channels {
				if !dirty[ch] || sent[ch.port] {
					continue
				}
				nd.Send(ch.port, Words{uint64(ch.part), best[ch.part]})
				dirty[ch] = false
				sent[ch.port] = true
			}
			msgs, ok := nd.Step()
			if !ok {
				return
			}
			for _, msg := range msgs {
				pi := int(msg.Payload[0])
				key := msg.Payload[1]
				if cur, ok := best[pi]; ok && key < cur {
					best[pi] = key
					for _, ch := range channels {
						if ch.part == pi && ch.port != msg.Port {
							dirty[ch] = true
						}
					}
				}
			}
		}
		finalBest[nd.ID] = best
	}
	stats, err := Run(g, f, Options{MaxRounds: budget + 64})
	if err != nil {
		return nil, false, err
	}
	// Convergence: every part member must hold the true minimum.
	converged := true
	for i, w := range want {
		for _, v := range p.Sets[i] {
			if finalBest[v] == nil || finalBest[v][i] != w {
				converged = false
			}
		}
	}
	res := &AggregateResult{
		Mins:            append([]uint64(nil), want...),
		Stats:           stats,
		EffectiveRounds: stats.LastActiveRound,
	}
	return res, converged, nil
}

package congest

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// closureAggregate is the pre-slab reference implementation of one
// aggregation run, used to cross-check the slab version.
func closureAggregate(g *graph.Graph, p *partition.Parts, partsOnEdge func(int) []int32, keys, want []uint64, budget int) (int, bool) {
	n := g.N()
	finalBest := make([]uint64, n)
	for v := range finalBest {
		finalBest[v] = math.MaxUint64
	}
	proto := func(nd *Node) RoundFunc {
		type channel struct{ port, part int32 }
		var parts []int32
		var best []uint64
		var channels []channel
		localIdx := func(part int32) int {
			for li, x := range parts {
				if x == part {
					return li
				}
			}
			return -1
		}
		for port := 0; port < nd.Degree(); port++ {
			for _, pi := range partsOnEdge(nd.PortEdge(port)) {
				channels = append(channels, channel{int32(port), pi})
				if localIdx(pi) == -1 {
					parts = append(parts, pi)
					best = append(best, math.MaxUint64)
				}
			}
		}
		own := -1
		if pi := p.Of[nd.ID]; pi != -1 {
			if li := localIdx(int32(pi)); li != -1 {
				own = li
				if keys[nd.ID] < best[li] {
					best[li] = keys[nd.ID]
				}
			} else {
				parts = append(parts, int32(pi))
				best = append(best, keys[nd.ID])
				own = len(parts) - 1
			}
		}
		dirty := make([]bool, len(channels))
		for ci, ch := range channels {
			if best[localIdx(ch.part)] != math.MaxUint64 {
				dirty[ci] = true
			}
		}
		sentRound := make([]int32, nd.Degree())
		for i := range sentRound {
			sentRound[i] = -1
		}
		r := 0
		return func(nd *Node, msgs []Message) bool {
			for _, msg := range msgs {
				pi := int32(msg.Payload[0])
				key := msg.Payload[1]
				li := localIdx(pi)
				if li == -1 || key >= best[li] {
					continue
				}
				best[li] = key
				for ci, ch := range channels {
					if ch.part == pi && int(ch.port) != msg.Port {
						dirty[ci] = true
					}
				}
			}
			if r == budget {
				if own != -1 {
					finalBest[nd.ID] = best[own]
				}
				return false
			}
			for ci, ch := range channels {
				if !dirty[ci] || sentRound[ch.port] == int32(r) {
					continue
				}
				nd.Send(int(ch.port), Words{uint64(ch.part), best[localIdx(ch.part)]})
				dirty[ci] = false
				sentRound[ch.port] = int32(r)
			}
			r++
			return true
		}
	}
	stats, err := RunSync(g, proto, Options{MaxRounds: budget + 64})
	if err != nil {
		panic(err)
	}
	converged := true
	for i, w := range want {
		for _, v := range p.Sets[i] {
			if finalBest[v] != w {
				converged = false
			}
		}
	}
	return stats.LastActiveRound, converged
}

func TestSlabAggregateMatchesClosureReference(t *testing.T) {
	e := gen.Wheel(65)
	tr, _ := graph.BFSTree(e.G, 64)
	p, err := partition.RimArcs(e.G, 4)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, e.G.N())
	for v := range keys {
		keys[v] = uint64(v*7%1009 + 1)
	}
	s, _ := shortcut.ObliviousAuto(e.G, tr, p)
	res, err := AggregateMin(e.G, p, s, keys)
	if err != nil {
		t.Fatal(err)
	}
	// The same channel relation the slab version used (shared builder).
	g := e.G
	partsOnEdge := buildEdgeChannels(g, p, s)
	want := make([]uint64, p.NumParts())
	for i := range want {
		want[i] = math.MaxUint64
		for _, v := range p.Sets[i] {
			if keys[v] < want[i] {
				want[i] = keys[v]
			}
		}
	}
	refRounds, ok := closureAggregate(g, p, partsOnEdge, keys, want, res.Budget)
	if !ok {
		t.Fatal("reference did not converge at the same budget")
	}
	if refRounds != res.EffectiveRounds {
		t.Fatalf("slab EffectiveRounds=%d, closure reference=%d", res.EffectiveRounds, refRounds)
	}
}

package congest_test

import (
	"math"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
	"repro/internal/xrand"
)

// These tests are the dynamic half of the hotalloc story: the static
// analyzer (internal/analysis/hotalloc, run by cmd/congestlint) proves the
// round kernels contain no allocating expressions, and these pins prove
// the whole-run allocation count is a flat setup constant — far below one
// allocation per node-round. A kernel regression allocates per node per
// round, so it overshoots each pin by orders of magnitude (the tests
// assert node-rounds exceed the pin to keep that cross-check meaningful).

// pinAllocs runs fn through testing.AllocsPerRun and checks the ceiling
// and the node-rounds dominance that makes the ceiling a kernel check.
func pinAllocs(t *testing.T, name string, ceiling float64, nodeRounds int, fn func()) {
	t.Helper()
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	fn() // warm lazy state so the pin measures steady-state runs
	allocs := testing.AllocsPerRun(8, fn)
	if allocs > ceiling {
		t.Errorf("%s allocates %.0f objects per run; pinned ceiling is %.0f — a round kernel is allocating", name, allocs, ceiling)
	}
	if float64(nodeRounds) < ceiling {
		t.Errorf("%s: node-rounds %d below the %.0f ceiling; grow the instance so a per-node-round allocation cannot hide in the slack", name, nodeRounds, ceiling)
	}
}

// TestPipecastAllocsFlat pins the Pipecast kernel: one run's allocations
// are its setup slabs (tag lists, accumulators, ring state), not
// O(node-rounds) objects.
func TestPipecastAllocsFlat(t *testing.T) {
	rng := xrand.New(7)
	g := gen.ErdosRenyiConnected(64, 200, rng)
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	const numTags = 4096
	contrib := randomContrib(g.N(), numTags, rng)
	var stats congest.Stats
	run := func() {
		res, err := congest.Pipecast(tr, numTags, contrib, congest.CombineSum)
		if err != nil {
			t.Fatal(err)
		}
		stats = res.Stats
	}
	run()
	pinAllocs(t, "Pipecast", 320, g.N()*stats.Rounds, run)
}

// TestConstructShortcutAllocsFlat pins the flooding-construction kernel
// in simulate mode.
func TestConstructShortcutAllocsFlat(t *testing.T) {
	g := gen.Wheel(129).G
	p, err := partition.RimArcs(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(g, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	var stats congest.Stats
	run := func() {
		res, err := congest.ConstructShortcut(g, tr, p, congest.ConstructOptions{Cap: 8, Simulate: true})
		if err != nil {
			t.Fatal(err)
		}
		stats = res.Stats
	}
	run()
	pinAllocs(t, "ConstructShortcut", 1100, g.N()*stats.Rounds, run)
}

// TestRelaxPartwiseAllocsFlat pins the part-wise relaxation kernel on a
// reused Relaxer (the channel CSR is built once; each Relax call builds
// only its per-phase slabs).
func TestRelaxPartwiseAllocsFlat(t *testing.T) {
	rng := xrand.New(11)
	g := gen.UniformWeights(gen.Wheel(129).G, rng)
	p, err := partition.RimArcs(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(g, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shortcut.ObliviousAuto(g, tr, p)
	relaxer := congest.NewRelaxer(g, p, s)
	weights := make([]float64, g.M())
	for id := range weights {
		weights[id] = g.Edge(id).W
	}
	init := make([]float64, g.N())
	for v := range init {
		init[v] = math.Inf(1)
	}
	init[0] = 0
	var stats congest.Stats
	run := func() {
		res, err := relaxer.Relax(weights, init)
		if err != nil {
			t.Fatal(err)
		}
		stats = res.Stats
	}
	run()
	pinAllocs(t, "Relaxer.Relax", 96, g.N()*stats.Rounds, run)
}

// TestBatchRelaxAllocsFlat pins the batched k-source relaxation kernel on
// a reused BatchRelaxer: one run's allocations are its setup slabs (the
// k×n distance planes, channel CSR views, dirty bits), not O(node-rounds)
// objects — the zero-allocs-per-round claim of the query-serving layer's
// miss path.
func TestBatchRelaxAllocsFlat(t *testing.T) {
	rng := xrand.New(17)
	g := gen.UniformWeights(gen.Wheel(129).G, rng)
	p, err := partition.RimArcs(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(g, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shortcut.ObliviousAuto(g, tr, p)
	relaxer := congest.NewBatchRelaxer(g, p, s)
	weights := make([]float64, g.M())
	for id := range weights {
		weights[id] = g.Edge(id).W
	}
	const k = 8
	init := make([][]float64, k)
	for i := range init {
		init[i] = make([]float64, g.N())
		for v := range init[i] {
			init[i][v] = math.Inf(1)
		}
		init[i][(i*11)%g.N()] = 0
	}
	var stats congest.Stats
	run := func() {
		res, err := relaxer.Relax(weights, init)
		if err != nil {
			t.Fatal(err)
		}
		stats = res.Stats
	}
	run()
	pinAllocs(t, "BatchRelaxer.Relax", 224, g.N()*stats.Rounds, run)
}

package congest

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// BatchRelaxResult reports a batched k-source distance-relaxation run.
type BatchRelaxResult struct {
	// Dist[s] is source s's per-vertex fixed point: the pointwise minimum
	// over channel-graph paths of init[s][u] + Σ weights along the path —
	// bit-identical to k independent Relaxer.Relax runs, since every
	// source's tokens traverse the same channels with the same weights.
	Dist  [][]float64
	Stats Stats
	// EffectiveRounds is the quiet-point of the whole batch: the round
	// after which no token of any source moved. The pipelining win is that
	// this grows like h+k, not k·h: a port queues at most one pending
	// token per source, so once the first tag drains the remaining sources
	// stream behind it one round apart, exactly the Pipecast multi-token
	// schedule.
	EffectiveRounds int
	Budget          int
}

// BatchRelaxBudget is the framework's per-phase round budget for relaxing
// k sources at once over a shortcut of the given measurement: the
// single-source budget plus one pipelining round per extra source tag
// queued on a port — O(h+k) where the sequential schedule pays k·O(h). It
// is both the estimate the simulated batch starts from and the per-phase
// charge the analytic batched SSSP books.
func BatchRelaxBudget(m shortcut.Measurement, k int) int {
	return RelaxBudget(m) + k
}

// BatchRelaxer runs batched multi-source relaxation phases over a fixed
// (graph, parts, shortcut) triple, reusing the channel CSR and the
// measured budget across phases. It is the k-source generalization of
// Relaxer: one phase floods all k sources' tentative distances as
// tag-multiplexed tokens (tag = source index) over the same channel graph,
// one token per port per round.
//
// The multiplexing is per (port, source), not per (channel, source):
// relaxation tokens are value-only — the receiver folds the delivered
// distance by min and never consults the part tag — so the single-source
// protocol's per-channel copies on a shared port all carry the same value
// and exist only to meter per-part congestion. With source tags the
// distinct streams through a port are the k sources, and that is what the
// batch serializes: congestion k per port, dilation h, hence the O(h+k)
// quiet point the budget tracks.
type BatchRelaxer struct {
	g           *graph.Graph
	partsOnEdge func(int) []int32
	m           shortcut.Measurement
}

// NewBatchRelaxer precomputes the channel structure and measures the
// shortcut once.
func NewBatchRelaxer(g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut) *BatchRelaxer {
	return &BatchRelaxer{
		g:           g,
		partsOnEdge: buildEdgeChannels(g, p, s),
		m:           s.Measure(),
	}
}

// Budget returns BatchRelaxBudget for k sources over this relaxer's
// shortcut measurement.
func (r *BatchRelaxer) Budget(k int) int { return BatchRelaxBudget(r.m, k) }

// Relax runs one batched relaxation phase: init[s] is source s's tentative
// distance vector (+Inf for "unknown"), and the result's Dist[s] is its
// channel-graph fixed point. The round budget starts at BatchRelaxBudget
// and doubles until every source's flood converges against the sequential
// fixed point (the environment's ground truth), mirroring Relaxer.Relax.
func (r *BatchRelaxer) Relax(weights []float64, init [][]float64) (*BatchRelaxResult, error) {
	g := r.g
	k := len(init)
	if k == 0 {
		return nil, fmt.Errorf("congest: batched relaxation needs at least one source")
	}
	if len(weights) != g.M() {
		return nil, fmt.Errorf("congest: %d weights for %d edges", len(weights), g.M())
	}
	for s, iv := range init {
		if len(iv) != g.N() {
			return nil, fmt.Errorf("congest: source %d has %d initial distances for %d vertices", s, len(iv), g.N())
		}
	}
	for id, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("congest: edge %d has weight %v", id, w)
		}
	}
	want := make([][]float64, k)
	for s := 0; s < k; s++ {
		want[s] = channelFixedPoint(g, r.partsOnEdge, weights, init[s])
	}
	budget := r.Budget(k)
	for attempt := 0; attempt < 8; attempt++ {
		res, converged, err := runBatchRelax(g, r.partsOnEdge, weights, init, want, budget)
		if err != nil {
			return nil, err
		}
		if converged {
			res.Budget = budget
			return res, nil
		}
		budget *= 2
	}
	return nil, fmt.Errorf("congest: batched relaxation failed to converge within budget %d", budget)
}

// firstDirtySource scans a port's k per-source dirty slots (the window
// dirty[off:off+k]) for the lowest-indexed source with a pending update.
// It is a top-level function (not a closure in the round kernel) so the
// hot path allocates nothing.
//
//congest:hotpath
//congest:pure
func firstDirtySource(dirty []bool, off, k int) int {
	for s := 0; s < k; s++ {
		if dirty[off+s] {
			return s
		}
	}
	return -1
}

// batchFold folds one delivered token into the receiving node's k-slot
// distance row and, on improvement, marks the source dirty on every
// channel-carrying port of the node except the arrival port. row is the
// node's dist[v*k : (v+1)*k] window; active and the pOff/pEnd window are
// the node's ports; the return reports whether the token improved
// anything.
//
//congest:hotpath
//congest:pure
func batchFold(row []float64, dirty, active []bool, pOff, pEnd int32, k, arrival, src int, cand float64) bool {
	if cand >= row[src] {
		return false
	}
	row[src] = cand
	for pi := pOff; pi < pEnd; pi++ {
		if active[pi] && int(pi-pOff) != arrival {
			dirty[int(pi)*k+src] = true
		}
	}
	return true
}

func runBatchRelax(g *graph.Graph, partsOnEdge func(int) []int32, weights []float64, init, want [][]float64, budget int) (*BatchRelaxResult, bool, error) {
	n := g.N()
	k := len(init)
	// finalDist is laid out [s*n+v] so the result carves into per-source
	// slices; the working dist is [v*k+s] so a node's k tags share a cache
	// line in the kernel.
	finalDist := make([]float64, k*n)
	dist := make([]float64, n*k)
	for s := 0; s < k; s++ {
		for v := 0; v < n; v++ {
			dist[v*k+s] = init[s][v]
		}
	}
	type nodeState struct {
		pOff, pEnd int32 // the node's ports; ×k into dirty
		round      int32
	}
	// Ports in global CSR order; a port participates iff its edge carries
	// at least one channel.
	totPorts := 0
	for v := 0; v < n; v++ {
		totPorts += g.Degree(v)
	}
	active := make([]bool, totPorts)
	dirty := make([]bool, totPorts*k)
	state := make([]nodeState, n)
	pi := int32(0)
	for v := 0; v < n; v++ {
		st := &state[v]
		st.pOff = pi
		for _, a := range g.Adj(v) {
			active[pi] = len(partsOnEdge(a.ID)) > 0
			pi++
		}
		st.pEnd = pi
		for s := 0; s < k; s++ {
			if !math.IsInf(dist[v*k+s], 1) {
				for p := st.pOff; p < st.pEnd; p++ {
					if active[p] {
						dirty[int(p)*k+s] = true
					}
				}
			}
		}
	}
	step := func(nd *Node, msgs []Message) bool {
		st := &state[nd.ID]
		row := dist[nd.ID*k : (nd.ID+1)*k]
		// Fold in the previous round's deliveries: token tag = source
		// index, value = sender's distance, plus the traversal cost of the
		// edge it arrived on.
		for _, msg := range msgs {
			src := int(msg.Payload[0])
			cand := WordFloat64(msg.Payload[1]) + weights[msg.Edge]
			batchFold(row, dirty, active, st.pOff, st.pEnd, k, msg.Port, src, cand)
		}
		if int(st.round) == budget {
			for s := 0; s < k; s++ {
				finalDist[s*n+nd.ID] = row[s]
			}
			return false
		}
		// One pending token per port per round, lowest source tag first;
		// the remaining tags wait for later rounds — the per-source
		// congestion serialization that pipelines the batch in h+k rounds.
		for p := st.pOff; p < st.pEnd; p++ {
			if !active[p] {
				continue
			}
			src := firstDirtySource(dirty, int(p)*k, k)
			if src < 0 {
				continue
			}
			nd.Send(int(p-st.pOff), Words{uint64(src), Float64Word(row[src])})
			dirty[int(p)*k+src] = false
		}
		st.round++
		return true
	}
	stats, err := RunSync(g, func(*Node) RoundFunc { return step }, Options{MaxRounds: budget + 64})
	if err != nil {
		return nil, false, err
	}
	converged := true
	out := make([][]float64, k)
	for s := 0; s < k; s++ {
		out[s] = finalDist[s*n : (s+1)*n : (s+1)*n]
		for v := 0; v < n; v++ {
			if out[s][v] != want[s][v] {
				converged = false
			}
		}
	}
	res := &BatchRelaxResult{
		Dist:            out,
		Stats:           stats,
		EffectiveRounds: stats.LastActiveRound,
	}
	return res, converged, nil
}

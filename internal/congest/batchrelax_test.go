package congest_test

import (
	"math"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
	"repro/internal/xrand"
)

// wheelTriple builds the standard wheel test network: rim-arc parts and an
// oblivious shortcut over a hub-rooted BFS tree.
func wheelTriple(t *testing.T, rim, arcs int, seed int64) (*graph.Graph, *partition.Parts, *shortcut.Shortcut) {
	t.Helper()
	rng := xrand.New(seed)
	g := gen.UniformWeights(gen.Wheel(rim).G, rng)
	p, err := partition.RimArcs(g, arcs)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(g, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shortcut.ObliviousAuto(g, tr, p)
	return g, p, s
}

// The batched k-source relaxation must return, per source, exactly the
// bytes the single-source protocol returns — the tags share channels but
// never mix values.
func TestBatchRelaxMatchesSequential(t *testing.T) {
	g, p, s := wheelTriple(t, 65, 4, 3)
	weights := edgeWeights(g)
	const k = 8
	init := make([][]float64, k)
	for i := 0; i < k; i++ {
		init[i] = infInit(g.N(), i*7%g.N())
	}
	batch, err := congest.NewBatchRelaxer(g, p, s).Relax(weights, init)
	if err != nil {
		t.Fatal(err)
	}
	if batch.EffectiveRounds > batch.Budget {
		t.Fatalf("batched quiet-point %d exceeds the converged budget %d", batch.EffectiveRounds, batch.Budget)
	}
	relaxer := congest.NewRelaxer(g, p, s)
	seqRounds := 0
	for i := 0; i < k; i++ {
		seq, err := relaxer.Relax(weights, init[i])
		if err != nil {
			t.Fatal(err)
		}
		seqRounds += seq.EffectiveRounds
		for v := 0; v < g.N(); v++ {
			if batch.Dist[i][v] != seq.Dist[v] {
				t.Fatalf("source %d vertex %d: batched %v vs sequential %v", i, v, batch.Dist[i][v], seq.Dist[v])
			}
		}
	}
	// The pipelining win: k tags through one batched phase settle in
	// budget+k-ish rounds, far below the k sequential quiet-points.
	if batch.EffectiveRounds*2 >= seqRounds {
		t.Fatalf("batched phase took %d rounds vs %d sequential: no pipelining win", batch.EffectiveRounds, seqRounds)
	}
}

// A batch of one source must behave exactly like the single-source
// protocol, budget aside.
func TestBatchRelaxSingleSource(t *testing.T) {
	g, p, s := wheelTriple(t, 33, 4, 5)
	weights := edgeWeights(g)
	init := infInit(g.N(), 2)
	batch, err := congest.NewBatchRelaxer(g, p, s).Relax(weights, [][]float64{init})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := congest.NewRelaxer(g, p, s).Relax(weights, init)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if batch.Dist[0][v] != seq.Dist[v] {
			t.Fatalf("vertex %d: batched %v vs sequential %v", v, batch.Dist[0][v], seq.Dist[v])
		}
	}
}

func TestBatchRelaxRejectsMalformedInput(t *testing.T) {
	g, p, s := wheelTriple(t, 33, 4, 9)
	r := congest.NewBatchRelaxer(g, p, s)
	weights := edgeWeights(g)
	if _, err := r.Relax(weights, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := r.Relax(weights[:1], [][]float64{infInit(g.N(), 0)}); err == nil {
		t.Error("short weight vector accepted")
	}
	if _, err := r.Relax(weights, [][]float64{make([]float64, 3)}); err == nil {
		t.Error("short init vector accepted")
	}
	bad := append([]float64(nil), weights...)
	bad[0] = math.NaN()
	if _, err := r.Relax(bad, [][]float64{infInit(g.N(), 0)}); err == nil {
		t.Error("NaN weight accepted")
	}
}

package congest

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/partition"
)

// DecomposeResult reports an in-network Borůvka fragment decomposition.
// Exactly one round ledger is populated per the run's mode.
type DecomposeResult struct {
	Parts *partition.Parts
	// Phases is the number of merge phases actually executed (the run ends
	// early once a single fragment remains).
	Phases int
	// Stats accumulates every simulated protocol of the decomposition.
	Stats Stats
	// EffectiveRounds: measured rounds of all phases in simulate mode (one
	// pipelined min-convergecast of fragment-best outgoing edges plus one
	// pipelined relabeling broadcast per phase).
	EffectiveRounds int
	// ChargedRounds is the analytic-mode total: DecomposePhaseBudget per
	// phase, evaluated at each phase's actual fragment count.
	ChargedRounds int
}

// DecomposePhaseBudget is the framework's round charge for one Borůvka
// phase run on the pipelined tree layer: a k-token convergecast of the
// fragments' lightest outgoing edges up the tree plus the k-token
// relabeling broadcast back down, k = the phase's fragment count. This
// replaced the flat per-phase aggregation model (2·height + 2 regardless
// of fragment count) the SSSP self-sufficient pipeline used to charge.
func DecomposePhaseBudget(t *graph.Tree, numFrags int) int {
	return 2 * PipecastBudget(t, numFrags)
}

// BoruvkaDecompose computes the Borůvka fragment decomposition — the part
// family the self-sufficient SSSP pipeline feeds to the shortcut framework
// — fully in-network over the given spanning tree. Each phase is two
// pipelined tree protocols:
//
//   - up: every vertex contributes its lightest incident outgoing edge
//     (an edge whose other endpoint lies in a different fragment — locally
//     decidable, since vertices track their neighbors' fragment labels)
//     tagged with its fragment label; the per-fragment graph.EdgeLess
//     minima stream to the root in O(height + fragments) rounds;
//   - down: the root merges fragments exactly as sequential Borůvka does
//     and streams the old→new label mapping back, O(height + fragments);
//     every vertex relabels itself and its recorded neighbor labels, so no
//     further neighbor exchange is ever needed (initial labels are vertex
//     IDs, which neighbors know).
//
// The sequential trace (partition.BoruvkaTrace) is the convergence oracle:
// the simulated per-fragment minima are validated against each phase's
// recorded choices, and the returned Parts are the shared fixed point, so
// both modes hand downstream consumers identical fragments. In simulate
// mode the two protocols run on the engine and their measured rounds are
// the cost; analytic mode charges DecomposePhaseBudget per phase.
func BoruvkaDecompose(g *graph.Graph, t *graph.Tree, phases int, simulate bool) (*DecomposeResult, error) {
	if t.G != g {
		return nil, fmt.Errorf("congest: decomposition tree belongs to a different graph")
	}
	trace, parts, err := partition.BoruvkaTrace(g, phases)
	if err != nil {
		return nil, fmt.Errorf("congest: boruvka decomposition: %w", err)
	}
	res := &DecomposeResult{Parts: parts, Phases: len(trace)}
	if !simulate {
		for _, ph := range trace {
			res.ChargedRounds += DecomposePhaseBudget(t, ph.NumFrags)
		}
		return res, nil
	}
	edgeMin := Combiner{Name: "edgeless-min", Identity: math.MaxUint64, Fold: func(a, b uint64) uint64 {
		switch {
		case a == math.MaxUint64:
			return b
		case b == math.MaxUint64:
			return a
		case graph.EdgeLess(g, int(b), int(a)):
			return b
		default:
			return a
		}
	}}
	contrib := make([][]Token, g.N())
	backing := make([]Token, g.N())
	tokens := make([]Token, 0, g.N())
	for phi, ph := range trace {
		// Local lightest outgoing edge per vertex, tagged with the
		// vertex's fragment.
		for v := 0; v < g.N(); v++ {
			bestEdge := -1
			for _, a := range g.Adj(v) {
				if ph.Frag[a.To] == ph.Frag[v] {
					continue
				}
				if bestEdge == -1 || graph.EdgeLess(g, a.ID, bestEdge) {
					bestEdge = a.ID
				}
			}
			if bestEdge == -1 {
				contrib[v] = nil
				continue
			}
			backing[v] = Token{Tag: ph.Frag[v], Value: uint64(bestEdge)}
			contrib[v] = backing[v : v+1 : v+1]
		}
		up, err := Pipecast(t, ph.NumFrags, contrib, edgeMin)
		if err != nil {
			return nil, fmt.Errorf("congest: boruvka phase %d convergecast: %w", phi, err)
		}
		for f := 0; f < ph.NumFrags; f++ {
			want := uint64(math.MaxUint64)
			if ph.Best[f] != -1 {
				want = uint64(ph.Best[f])
			}
			if up.Values[f] != want {
				return nil, fmt.Errorf("congest: boruvka fragment %d converged to edge %d, sequential trace chose %d",
					f, up.Values[f], ph.Best[f])
			}
		}
		res.Stats.Add(up.Stats)
		res.EffectiveRounds += up.EffectiveRounds
		// Relabeling broadcast: old fragment label -> post-merge label.
		tokens = tokens[:0]
		for f := 0; f < ph.NumFrags; f++ {
			tokens = append(tokens, Token{Tag: int32(f), Value: uint64(ph.Next[f])})
		}
		down, err := PipeBroadcast(t, tokens)
		if err != nil {
			return nil, fmt.Errorf("congest: boruvka phase %d relabeling: %w", phi, err)
		}
		res.Stats.Add(down.Stats)
		res.EffectiveRounds += down.EffectiveRounds
	}
	return res, nil
}

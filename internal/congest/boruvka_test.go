package congest_test

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/xrand"
)

// TestBoruvkaDecomposeModesAgree: the in-network fragment decomposition
// hands both modes the identical part family (the sequential trace's fixed
// point), with each mode's rounds exclusively in its own ledger.
func TestBoruvkaDecomposeModesAgree(t *testing.T) {
	rng := xrand.New(21)
	for _, tc := range []struct {
		name   string
		g      *graph.Graph
		phases int
	}{
		{"grid", weighted(gen.Grid(8, 8).G, 31), 3},
		{"wheel", weighted(gen.Wheel(49).G, 32), 2},
		{"er", weighted(gen.ErdosRenyiConnected(60, 150, rng), 33), 4},
	} {
		tr, err := graph.BFSTree(tc.g, 0)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := congest.BoruvkaDecompose(tc.g, tr, tc.phases, true)
		if err != nil {
			t.Fatalf("%s simulate: %v", tc.name, err)
		}
		ana, err := congest.BoruvkaDecompose(tc.g, tr, tc.phases, false)
		if err != nil {
			t.Fatalf("%s analytic: %v", tc.name, err)
		}
		want, err := partition.BoruvkaFragments(tc.g, tc.phases)
		if err != nil {
			t.Fatal(err)
		}
		for _, got := range []*congest.DecomposeResult{sim, ana} {
			if got.Parts.NumParts() != want.NumParts() {
				t.Fatalf("%s: %d parts, sequential has %d", tc.name, got.Parts.NumParts(), want.NumParts())
			}
			for v, pi := range got.Parts.Of {
				if pi != want.Of[v] {
					t.Fatalf("%s vertex %d: part %d, sequential has %d", tc.name, v, pi, want.Of[v])
				}
			}
		}
		if sim.EffectiveRounds <= 0 || sim.ChargedRounds != 0 {
			t.Fatalf("%s simulate ledgers %d/%d not exclusively simulated", tc.name, sim.EffectiveRounds, sim.ChargedRounds)
		}
		if ana.ChargedRounds <= 0 || ana.EffectiveRounds != 0 || ana.Stats.Messages != 0 {
			t.Fatalf("%s analytic ledgers %d/%d (messages %d) not exclusively charged",
				tc.name, ana.EffectiveRounds, ana.ChargedRounds, ana.Stats.Messages)
		}
		if sim.Phases != ana.Phases {
			t.Fatalf("%s: phase counts differ: %d vs %d", tc.name, sim.Phases, ana.Phases)
		}
	}
}

// weighted assigns distinct deterministic weights (decompositions need the
// EdgeLess order to be strict for unique fragment-best edges).
func weighted(g *graph.Graph, seed int64) *graph.Graph {
	gen.DistinctWeights(gen.UniformWeights(g, xrand.New(seed)))
	return g
}

// TestBoruvkaDecomposeMeasuredBound: each phase is two pipelined tree
// protocols, so the total measured rounds stay within the sum of the
// per-phase 2·(height + fragments + 1) pipelining bounds.
func TestBoruvkaDecomposeMeasuredBound(t *testing.T) {
	g := weighted(gen.Grid(10, 10).G, 34)
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	const phases = 3
	trace, _, err := partition.BoruvkaTrace(g, phases)
	if err != nil {
		t.Fatal(err)
	}
	res, err := congest.BoruvkaDecompose(g, tr, phases, true)
	if err != nil {
		t.Fatal(err)
	}
	bound := 0
	for _, ph := range trace {
		bound += 2 * (tr.Height() + ph.NumFrags + 1)
	}
	if res.EffectiveRounds > bound {
		t.Fatalf("measured %d rounds exceed the pipelining bound %d", res.EffectiveRounds, bound)
	}
	if res.EffectiveRounds <= 0 {
		t.Fatal("no measured rounds")
	}
}

// TestBoruvkaDecomposeTreeIdentity: a tree of a different graph is
// rejected (the construction-layer identity contract).
func TestBoruvkaDecomposeTreeIdentity(t *testing.T) {
	g1 := weighted(gen.Grid(4, 4).G, 35)
	g2 := weighted(gen.Grid(4, 4).G, 36)
	tr, err := graph.BFSTree(g2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := congest.BoruvkaDecompose(g1, tr, 2, false); err == nil {
		t.Fatal("accepted a tree of a different graph")
	}
}

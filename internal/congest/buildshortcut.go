package congest

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// BuildResult reports a distributed shortcut construction.
type BuildResult struct {
	S     *shortcut.Shortcut
	Stats Stats
	// EffectiveRounds: rounds until the claiming protocol went quiet.
	EffectiveRounds int
}

// BuildObliviousShortcut runs the upward-claiming construction as an actual
// CONGEST protocol (the distributed realization behind the oblivious
// constructor, in the spirit of [HIZ16a]'s uniform construction):
//
//   - every vertex of a part holds a token for that part;
//   - each round, a vertex forwards at most one pending claim (part ID)
//     over its parent edge; the parent grants it if the edge's load is
//     below the budget (the parent endpoint tracks the load — claims only
//     travel over the edge being claimed, so it sees every claim) and
//     replies GRANT or DENY in the next round;
//   - granted claims extend the part's shortcut by that tree edge and the
//     token continues from the parent; denied tokens die.
//
// Messages carry (type, partID): two words = O(log n) bits. The returned
// stats are the construction's own cost — the quantity the framework
// charges as Õ(quality) construction rounds.
func BuildObliviousShortcut(g *graph.Graph, t *graph.Tree, p *partition.Parts, budget int) (*BuildResult, error) {
	if budget < 1 {
		budget = 1
	}
	const (
		msgClaim = 1
		msgGrant = 2
		msgDeny  = 3
	)
	n := g.N()
	claimedBy := make([][]int, n) // per vertex: part IDs whose claim of the parent edge was granted
	// Round budget: tokens climb at most height levels, each step costs 2
	// rounds (claim + reply), plus queueing up to budget per edge.
	roundBudget := 2*(t.Height()+2)*(budget+1) + 8
	f := func(nd *Node) {
		// Parent port of this node, -1 at the root.
		parentPort := -1
		for port := 0; port < nd.Degree(); port++ {
			if nd.PortEdge(port) == t.ParentEdge[nd.ID] {
				parentPort = port
				break
			}
		}
		load := make(map[int]int) // child port -> granted count (as parent side)
		var pendingClaims []int   // part IDs queued for our parent edge
		inFlight := -1            // claim awaiting a reply
		type reply struct{ port, kind, part int }
		var replyQueue []reply
		queuedSet := make(map[int]bool)
		if pi := p.Of[nd.ID]; pi != -1 {
			pendingClaims = append(pendingClaims, pi)
			queuedSet[pi] = true
		}
		var granted []int
		for r := 0; r < roundBudget; r++ {
			// Send one claim on the parent edge if idle.
			if inFlight == -1 && len(pendingClaims) > 0 && parentPort != -1 {
				inFlight = pendingClaims[0]
				pendingClaims = pendingClaims[1:]
				nd.Send(parentPort, Words{msgClaim, uint64(inFlight)})
			}
			// Send one queued reply per child port.
			sentOn := map[int]bool{}
			var rest []reply
			for _, rp := range replyQueue {
				if sentOn[rp.port] {
					rest = append(rest, rp)
					continue
				}
				sentOn[rp.port] = true
				nd.Send(rp.port, Words{uint64(rp.kind), uint64(rp.part)})
			}
			replyQueue = rest
			msgs, ok := nd.Step()
			if !ok {
				return
			}
			for _, m := range msgs {
				switch m.Payload[0] {
				case msgClaim:
					part := int(m.Payload[1])
					if load[m.Port] < budget {
						load[m.Port]++
						replyQueue = append(replyQueue, reply{m.Port, msgGrant, part})
					} else {
						replyQueue = append(replyQueue, reply{m.Port, msgDeny, part})
					}
				case msgGrant:
					part := int(m.Payload[1])
					if part == inFlight {
						granted = append(granted, part)
						inFlight = -1
					}
				case msgDeny:
					if int(m.Payload[1]) == inFlight {
						inFlight = -1
					}
				}
			}
		}
		claimedBy[nd.ID] = granted
	}
	stats, err := Run(g, f, Options{MaxRounds: roundBudget + 64})
	if err != nil {
		return nil, fmt.Errorf("congest: shortcut construction: %w", err)
	}
	// The protocol above moves tokens only one level (each vertex claims its
	// own parent edge); chain the construction level by level: a granted
	// claim at v means part i now "stands at" parent(v). We iterate the
	// one-level protocol until no token moves, accumulating edges; the
	// per-iteration stats add up. See buildLevels below.
	return assembleLevels(g, t, p, budget, claimedBy, stats)
}

// assembleLevels completes the construction: after the simulated first
// level, further levels repeat the same one-level protocol from the new
// frontier. The messages of subsequent levels are bounded by the first
// level's (frontiers only shrink), so their cost is charged as an identical
// round count per remaining level while the claims themselves are computed
// exactly; this keeps simulation time linear instead of quadratic.
func assembleLevels(g *graph.Graph, t *graph.Tree, p *partition.Parts, budget int, firstLevel [][]int, perLevel Stats) (*BuildResult, error) {
	numParts := p.NumParts()
	load := make(map[int]int)
	claimed := make([]map[int]bool, numParts)
	frontier := make([]map[int]bool, numParts)
	for i := range claimed {
		claimed[i] = make(map[int]bool)
		frontier[i] = make(map[int]bool)
	}
	// Level 1 from the simulation.
	for v, parts := range firstLevel {
		for _, i := range parts {
			id := t.ParentEdge[v]
			if id == -1 || claimed[i][id] {
				continue
			}
			claimed[i][id] = true
			load[id]++
			frontier[i][t.Parent[v]] = true
		}
	}
	levels := 1
	for moved := true; moved; {
		moved = false
		for i := 0; i < numParts; i++ {
			next := make(map[int]bool)
			for v := range frontier[i] {
				id := t.ParentEdge[v]
				if id == -1 || claimed[i][id] {
					continue
				}
				if load[id] >= budget {
					continue
				}
				load[id]++
				claimed[i][id] = true
				next[t.Parent[v]] = true
				moved = true
			}
			frontier[i] = next
		}
		if moved {
			levels++
		}
	}
	edges := make([][]int, numParts)
	for i := range edges {
		for id := range claimed[i] {
			//lint:allow detmap shortcut.New sorts and dedups every edge list, so map order never escapes
			edges[i] = append(edges[i], id)
		}
	}
	s, err := shortcut.New(g, t, p, edges)
	if err != nil {
		return nil, err
	}
	total := perLevel
	for l := 1; l < levels; l++ {
		total.Add(perLevel)
	}
	return &BuildResult{S: s, Stats: total, EffectiveRounds: total.LastActiveRound}, nil
}

package congest_test

import (
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestBuildObliviousShortcutValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, budget := range []int{1, 2, 4} {
		e := gen.Grid(6, 6)
		tr, err := graph.BFSTree(e.G, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := partition.Voronoi(e.G, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := congest.BuildObliviousShortcut(e.G, tr, p, budget)
		if err != nil {
			t.Fatal(err)
		}
		m := res.S.Measure()
		if m.Congestion > budget {
			t.Fatalf("budget %d: congestion %d", budget, m.Congestion)
		}
		if res.EffectiveRounds <= 0 || res.Stats.Messages <= 0 {
			t.Fatalf("no construction cost recorded: %+v", res.Stats)
		}
	}
}

func TestBuildObliviousShortcutWheel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e := gen.Wheel(65)
	tr, err := graph.BFSTree(e.G, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.RimArcs(e.G, 8)
	if err != nil {
		t.Fatal(err)
	}
	_ = rng
	res, err := congest.BuildObliviousShortcut(e.G, tr, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Every rim vertex can claim its spoke (congestion 1 per spoke), so
	// each arc should end up connected through the hub: 1 or 2 blocks.
	for i, b := range res.S.BlockCounts() {
		if b > 2 {
			t.Fatalf("arc %d has %d blocks after distributed construction", i, b)
		}
	}
	// Construction on a height-1 tree should be fast.
	if res.EffectiveRounds > 40 {
		t.Fatalf("construction took %d rounds on a wheel", res.EffectiveRounds)
	}
}

func TestBuildShortcutThenAggregate(t *testing.T) {
	// End-to-end: distributed construction feeding distributed aggregation.
	rng := rand.New(rand.NewSource(3))
	e := gen.Wheel(49)
	tr, _ := graph.BFSTree(e.G, 48)
	p, err := partition.RimArcs(e.G, 6)
	if err != nil {
		t.Fatal(err)
	}
	built, err := congest.BuildObliviousShortcut(e.G, tr, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, e.G.N())
	for v := range keys {
		keys[v] = uint64(rng.Intn(10000) + 1)
	}
	res, err := congest.AggregateMin(e.G, p, built.S, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.NumParts(); i++ {
		want := uint64(1 << 62)
		for _, v := range p.Sets[i] {
			if keys[v] < want {
				want = keys[v]
			}
		}
		if res.Mins[i] != want {
			t.Fatalf("part %d: %d want %d", i, res.Mins[i], want)
		}
	}
}

package congest

import (
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// buildEdgeChannels computes, for every edge, the parts communicating over
// it, in CSR layout: an edge carries its induced part (both endpoints in
// the same part) plus every part whose shortcut borrows it. This is the
// communication structure shared by all part-wise framework primitives
// (aggregation, distance relaxation): one logical (part, edge) flow per
// channel, so congested edges serialize exactly as the congestion parameter
// predicts.
//
// The returned function yields the channel parts of an edge ID; the slice
// is valid until the builder's backing arrays are garbage.
func buildEdgeChannels(g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut) func(id int) []int32 {
	peOff := make([]int32, g.M()+1)
	induced := func(id int) int {
		if g.EdgeRemoved(id) {
			// Churn tombstone: carries no channel (and its endpoints are
			// gone, so the part lookup below would misindex).
			return -1
		}
		e := g.Edge(id)
		if pi := p.Of[e.U]; pi != -1 && pi == p.Of[e.V] {
			return pi
		}
		return -1
	}
	for id := 0; id < g.M(); id++ {
		if induced(id) != -1 {
			peOff[id+1]++
		}
	}
	for pi, ids := range s.Edges {
		for _, id := range ids {
			if induced(id) != pi {
				peOff[id+1]++
			}
		}
	}
	for id := 0; id < g.M(); id++ {
		peOff[id+1] += peOff[id]
	}
	peStore := make([]int32, peOff[g.M()])
	peLen := make([]int32, g.M())
	for id := 0; id < g.M(); id++ {
		if pi := induced(id); pi != -1 {
			peStore[peOff[id]] = int32(pi)
			peLen[id] = 1
		}
	}
	for pi, ids := range s.Edges {
		for _, id := range ids {
			if induced(id) != pi {
				peStore[peOff[id]+peLen[id]] = int32(pi)
				peLen[id]++
			}
		}
	}
	return func(id int) []int32 { return peStore[peOff[id] : peOff[id]+peLen[id]] }
}

package congest_test

import (
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

func TestRunPingPong(t *testing.T) {
	g := gen.Path(2)
	vals := make([]uint64, 2)
	f := func(n *congest.Node) {
		if n.ID == 0 {
			n.Send(0, congest.Words{42})
		}
		msgs, ok := n.Step()
		if !ok {
			return
		}
		for _, m := range msgs {
			vals[n.ID] = m.Payload[0]
			n.Send(m.Port, congest.Words{m.Payload[0] + 1})
		}
		msgs, ok = n.Step()
		if !ok {
			return
		}
		for _, m := range msgs {
			vals[n.ID] = m.Payload[0]
		}
	}
	stats, err := congest.Run(g, f, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if vals[1] != 42 || vals[0] != 43 {
		t.Fatalf("vals %v", vals)
	}
	if stats.Messages != 2 {
		t.Fatalf("messages %d want 2", stats.Messages)
	}
}

func TestBandwidthEnforced(t *testing.T) {
	g := gen.Path(2)
	f := func(n *congest.Node) {
		if n.ID == 0 {
			n.Send(0, congest.Words{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
		}
		n.Step()
	}
	if _, err := congest.Run(g, f, congest.Options{Bandwidth: 128}); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestDoubleSendRejected(t *testing.T) {
	g := gen.Path(2)
	f := func(n *congest.Node) {
		if n.ID == 0 {
			n.Send(0, congest.Words{1})
			n.Send(0, congest.Words{2})
		}
		n.Step()
	}
	if _, err := congest.Run(g, f, congest.Options{}); err == nil {
		t.Fatal("double send accepted")
	}
}

func TestMaxRoundsAborts(t *testing.T) {
	g := gen.Path(3)
	f := func(n *congest.Node) {
		for {
			n.Broadcast(congest.Words{0})
			if _, ok := n.Step(); !ok {
				return
			}
		}
	}
	if _, err := congest.Run(g, f, congest.Options{MaxRounds: 10}); err == nil {
		t.Fatal("runaway protocol not aborted")
	}
}

func TestUnevenTermination(t *testing.T) {
	// Nodes exit after ID-many rounds; the engine must not deadlock.
	g := gen.Cycle(6)
	f := func(n *congest.Node) {
		for r := 0; r <= n.ID; r++ {
			if _, ok := n.Step(); !ok {
				return
			}
		}
	}
	if _, err := congest.Run(g, f, congest.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicDelivery(t *testing.T) {
	// Same protocol twice: stats must match exactly.
	e := gen.Grid(5, 5)
	run := func() congest.Stats {
		f := func(n *congest.Node) {
			best := uint64(n.ID)
			for r := 0; r < 10; r++ {
				n.Broadcast(congest.Words{best})
				msgs, ok := n.Step()
				if !ok {
					return
				}
				for _, m := range msgs {
					if m.Payload[0] < best {
						best = m.Payload[0]
					}
				}
			}
		}
		s, err := congest.Run(e.G, f, congest.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic stats: %+v vs %+v", a, b)
	}
}

func TestDistributedBFSMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		g := gen.ErdosRenyiConnected(40, 80, rng)
		d := graph.Diameter(g)
		parent, parentEdge, stats, err := congest.DistributedBFS(g, 0, d)
		if err != nil {
			t.Fatal(err)
		}
		ref := graph.BFS(g, 0)
		for v := 0; v < g.N(); v++ {
			if v == 0 {
				continue
			}
			if parent[v] == -1 {
				t.Fatalf("vertex %d unreached", v)
			}
			// Depths must match BFS (parents may differ on ties).
			if ref.Dist[v] != ref.Dist[parent[v]]+1 {
				t.Fatalf("vertex %d: parent %d not one level up", v, parent[v])
			}
			e := g.Edge(parentEdge[v])
			if !((e.U == v && e.V == parent[v]) || (e.V == v && e.U == parent[v])) {
				t.Fatalf("vertex %d: parent edge mismatch", v)
			}
		}
		if stats.Rounds > 4*d+64 {
			t.Fatalf("BFS took %d rounds for diameter %d", stats.Rounds, d)
		}
	}
}

func TestLeaderElect(t *testing.T) {
	g := gen.Cycle(12)
	leader, _, err := congest.LeaderElect(g, 12)
	if err != nil {
		t.Fatal(err)
	}
	if leader != 0 {
		t.Fatalf("leader %d want 0", leader)
	}
}

func TestAggregateMinOnGridRows(t *testing.T) {
	e := gen.Grid(6, 8)
	tr, err := graph.BFSTree(e.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.GridRows(e.G, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, e.G.N())
	for v := range keys {
		keys[v] = uint64(1000 - v)
	}
	s, _ := shortcut.ObliviousAuto(e.G, tr, p)
	res, err := congest.AggregateMin(e.G, p, s, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.NumParts(); i++ {
		want := uint64(1<<63 - 1)
		for _, v := range p.Sets[i] {
			if keys[v] < want {
				want = keys[v]
			}
		}
		if res.Mins[i] != want {
			t.Fatalf("part %d min %d want %d", i, res.Mins[i], want)
		}
	}
	if res.EffectiveRounds <= 0 {
		t.Fatal("no effective rounds recorded")
	}
}

func TestAggregateShortcutsBeatNoShortcuts(t *testing.T) {
	// The paper's wheel scenario: the graph has diameter 2 but the rim arcs
	// have diameter Θ(n/arcs). Without shortcuts each arc floods internally
	// (Θ(n/arcs) rounds); with tree-restricted shortcuts through the hub the
	// flood quiesces in O(quality) ≪ that.
	e := gen.Wheel(129) // 128 rim vertices + hub
	tr, _ := graph.BFSTree(e.G, 128)
	p, err := partition.RimArcs(e.G, 4)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, e.G.N())
	for v := range keys {
		keys[v] = uint64(v * 7 % 1009)
	}
	sEmpty := shortcut.Empty(e.G, tr, p)
	rEmpty, err := congest.AggregateMin(e.G, p, sEmpty, keys)
	if err != nil {
		t.Fatal(err)
	}
	sGood, _ := shortcut.ObliviousAuto(e.G, tr, p)
	rGood, err := congest.AggregateMin(e.G, p, sGood, keys)
	if err != nil {
		t.Fatal(err)
	}
	if rGood.EffectiveRounds >= rEmpty.EffectiveRounds {
		t.Fatalf("shortcuts did not help: %d vs %d rounds",
			rGood.EffectiveRounds, rEmpty.EffectiveRounds)
	}
}

func TestStatsAdd(t *testing.T) {
	a := congest.Stats{Rounds: 3, Messages: 10, TotalBits: 640, MaxEdgeLoad: 2, LastActiveRound: 3}
	b := congest.Stats{Rounds: 4, Messages: 5, TotalBits: 320, MaxEdgeLoad: 5, LastActiveRound: 2}
	a.Add(b)
	if a.Rounds != 7 || a.Messages != 15 || a.MaxEdgeLoad != 5 || a.LastActiveRound != 5 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

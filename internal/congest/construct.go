package congest

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// ConstructOptions configures the distributed flooding construction.
type ConstructOptions struct {
	// Cap is the congestion cap b: each tree edge admits at most Cap parts
	// (values below 1 are clamped to 1, matching shortcut.Construct).
	Cap int
	// Simulate runs the construction as an actual CONGEST protocol on the
	// engine and reports measured rounds; false computes the fixed point
	// sequentially and charges the framework's construction budget
	// (the mincut/sssp two-ledger convention).
	Simulate bool
	// Priorities is the part priority ranking the eviction rule uses
	// (prio[i] = rank of part i, rank 0 highest). Nil computes the
	// block-count-driven ranking (shortcut.TreeBlockPriorities) — callers
	// that run several constructions over one part family (the cap search)
	// pass it in so the ranking, and its dissemination cost, are paid once.
	Priorities []int32
	// Adversary, when non-nil, injects its fault plan into every simulated
	// run and widens the doubling loop to its retry policy. Requires
	// Simulate (the analytic path runs no protocol to disrupt).
	Adversary *Adversary
}

// ConstructResult reports a distributed shortcut construction. Exactly one
// ledger is populated per the run's mode: EffectiveRounds/Stats when the
// protocol was simulated, ChargedRounds when the fixed point was computed
// analytically.
type ConstructResult struct {
	S *shortcut.Shortcut
	// Stats is the construction protocol's own cost (simulate mode) — the
	// quantity the framework charges as construction rounds.
	Stats Stats
	// EffectiveRounds: rounds until the flood-and-evict protocol went quiet
	// (simulate mode). The run executes a fixed budget — nodes cannot detect
	// global quiescence — so Stats.Rounds exceeds this.
	EffectiveRounds int
	// ChargedRounds is the analytic-mode construction charge,
	// ConstructBudget(t, cap).
	ChargedRounds int
	Cap           int
	// Budget is the round budget the converged simulation ran under.
	Budget int
}

// ConstructBudget is the framework's round charge for one flooding
// construction: every part ID climbs at most height levels and each tree
// edge serializes at most cap admissions (plus eviction retractions) — the
// operational O((b+1)·height) bound. The simulated protocol starts from the
// same estimate, mirroring RelaxBudget.
func ConstructBudget(t *graph.Tree, cap int) int {
	if cap < 1 {
		cap = 1
	}
	return (cap+2)*(t.Height()+2) + 8
}

// ConstructShortcut builds a tree-restricted shortcut fully in-network: the
// distributed realization of shortcut.Construct's part-wise flooding. Every
// vertex of a part holds the part's priority rank; ranks flood up the tree,
// each vertex forwarding over its parent edge the (up to) cap best ranks it
// currently knows — one ADMIT or EVICT message per edge per round — and
// retracting previously forwarded ranks when a higher-priority flood
// arrives (the eviction cascades up). The fixed point is exactly
// shortcut.FloodFixedPoint under the same priorities; the run's budget
// starts at ConstructBudget and doubles until the converged state matches
// that ground truth (the same environment-checked convergence loop
// AggregateMin uses).
func ConstructShortcut(g *graph.Graph, t *graph.Tree, p *partition.Parts, opts ConstructOptions) (*ConstructResult, error) {
	if t.G != g {
		return nil, fmt.Errorf("congest: construction tree belongs to a different graph")
	}
	if p.G != g {
		return nil, fmt.Errorf("congest: construction parts belong to a different graph")
	}
	cap := opts.Cap
	if cap < 1 {
		cap = 1
	}
	prio := opts.Priorities
	if prio == nil {
		prio = shortcut.TreeBlockPriorities(t, p)
	} else if err := shortcut.ValidPriorities(prio, p.NumParts()); err != nil {
		return nil, fmt.Errorf("congest: %w", err)
	}
	adv := opts.Adversary
	if adv != nil && !opts.Simulate {
		return nil, fmt.Errorf("congest: construction adversary requires simulate mode")
	}
	res := &ConstructResult{Cap: cap}
	if !opts.Simulate {
		res.S = shortcut.ConstructPrio(g, t, p, cap, prio)
		res.ChargedRounds = ConstructBudget(t, cap)
		return res, nil
	}
	want := shortcut.FloodFixedPoint(g, t, p, cap, prio)
	budget := ConstructBudget(t, cap)
	attempts := 8
	if adv != nil {
		attempts = adv.attempts()
	}
	for attempt := 0; attempt < attempts; attempt++ {
		ropts := Options{MaxRounds: budget + 64}
		if adv != nil {
			// Crashes stall nodes' local round counters, so grant headroom.
			ropts = adv.options(2*budget + 64)
		}
		final, stats, err := runConstruct(g, t, p, cap, budget, prio, ropts)
		if err != nil {
			if adv != nil && Retryable(err) {
				adv.Retries++
				budget *= 2
				continue
			}
			return nil, err
		}
		if floodStatesEqual(final, want) {
			s, err := shortcut.FromFloodState(g, t, p, final, prio)
			if err != nil {
				return nil, fmt.Errorf("congest: assembling constructed shortcut: %w", err)
			}
			res.S = s
			res.Stats = stats
			res.EffectiveRounds = stats.LastActiveRound
			res.Budget = budget
			return res, nil
		}
		if adv != nil {
			adv.Retries++
		}
		budget *= 2
	}
	return nil, &IncompleteError{Protocol: "ConstructShortcut", Budget: budget,
		Detail: "flood-and-evict failed to converge to the fixed point within the doubling budget"}
}

func floodStatesEqual(a, b [][]int32) bool {
	for v := range a {
		if len(a[v]) != len(b[v]) {
			return false
		}
		for i := range a[v] {
			if a[v][i] != b[v][i] {
				return false
			}
		}
	}
	return true
}

// Message ops of the construction protocol: one (op, rank) pair per tree
// edge per round, O(log n) bits.
const (
	conAdmit = 1
	conEvict = 2
)

// conNode is one vertex's protocol state. All fields are touched only from
// the node's own RoundFunc invocations, so shard workers never contend.
// All part identities are priority ranks (rank 0 = highest priority), so
// "keep the cap best" is a sorted-prefix truncation.
type conNode struct {
	parentPort int32
	own        int32 // priority rank of this vertex's part, or -1
	round      int32
	dirty      bool
	rcv        [][]int32 // per port: ranks currently admitted by that child
	sent       []int32   // sorted; what the parent currently believes, <= cap
	tmp        []int32   // scratch for the target computation
}

// runConstruct executes the flood-and-evict protocol for a fixed round
// budget and returns each node's final forwarded set (in rank space).
func runConstruct(g *graph.Graph, t *graph.Tree, p *partition.Parts, cap, budget int, prio []int32, ropts Options) ([][]int32, Stats, error) {
	n := g.N()
	final := make([][]int32, n)
	state := make([]conNode, n)
	for v := 0; v < n; v++ {
		st := &state[v]
		st.parentPort = -1
		for port, a := range g.Adj(v) {
			if a.ID == t.ParentEdge[v] && a.To == t.Parent[v] {
				st.parentPort = int32(port)
				break
			}
		}
		st.own = int32(-1)
		if pi := p.Of[v]; pi != -1 {
			st.own = prio[pi]
			st.dirty = true
		}
		// A child admits at most cap ranks (its own |sent| bound), so one
		// contiguous backing slab sliced per port keeps insSorted growth
		// out of the rounds at two setup allocations per node.
		deg := g.Degree(v)
		st.rcv = make([][]int32, deg)
		backing := make([]int32, deg*cap)
		for i := range st.rcv {
			st.rcv[i] = backing[i*cap : i*cap : (i+1)*cap]
		}
		st.sent = make([]int32, 0, cap+1)
		st.tmp = make([]int32, 0, cap+1)
	}
	step := func(nd *Node, msgs []Message) bool {
		st := &state[nd.ID]
		for _, m := range msgs {
			rank := int32(m.Payload[1])
			set := st.rcv[m.Port]
			switch m.Payload[0] {
			case conAdmit:
				st.rcv[m.Port] = insSorted(set, rank)
			case conEvict:
				st.rcv[m.Port] = delSorted(set, rank)
			}
			st.dirty = true
		}
		if int(st.round) == budget {
			final[nd.ID] = st.sent
			return false
		}
		if st.dirty && st.parentPort != -1 {
			target := conTarget(st, cap)
			// One message per round: retract the worst stale admission
			// first (keeping |sent| <= cap at all times), else forward the
			// best missing part.
			if x, ok := worstNotIn(st.sent, target); ok {
				nd.Send(int(st.parentPort), Words{conEvict, uint64(x)})
				st.sent = delSorted(st.sent, x)
			} else if x, ok := bestNotIn(target, st.sent); ok {
				nd.Send(int(st.parentPort), Words{conAdmit, uint64(x)})
				st.sent = insSorted(st.sent, x)
			} else {
				st.dirty = false
			}
		} else if st.dirty {
			st.dirty = false // root: nothing to forward
		}
		st.round++
		return true
	}
	stats, err := RunSync(g, func(*Node) RoundFunc { return step }, ropts)
	if err != nil {
		return nil, stats, err
	}
	return final, stats, nil
}

// conTarget computes the (up to) cap best priority ranks currently present
// at the node: its own part plus everything admitted by its children. The
// merge keeps only the best cap+1 candidates, so a round costs
// O(degree · cap) regardless of how many parts exist.
func conTarget(st *conNode, cap int) []int32 {
	tmp := st.tmp[:0]
	if st.own != -1 {
		tmp = append(tmp, st.own) //lint:allow hotalloc st.tmp is preallocated with cap+1 capacity at setup and insBounded keeps len <= cap
	}
	for _, set := range st.rcv {
		for _, i := range set {
			tmp = insBounded(tmp, i, cap)
		}
	}
	st.tmp = tmp
	return tmp
}

// insBounded inserts x into the sorted set keeping only the lowest bound
// elements.
func insBounded(set []int32, x int32, bound int) []int32 {
	set = insSorted(set, x)
	if len(set) > bound {
		set = set[:bound]
	}
	return set
}

// insSorted inserts x into a sorted duplicate-free slice (no-op if present).
func insSorted(set []int32, x int32) []int32 {
	lo := 0
	for lo < len(set) && set[lo] < x {
		lo++
	}
	if lo < len(set) && set[lo] == x {
		return set
	}
	set = append(set, 0) //lint:allow hotalloc every caller passes a slab preallocated at setup (sent/tmp: cap+1, rcv: cap) and the protocol keeps len below it before insert
	copy(set[lo+1:], set[lo:])
	set[lo] = x
	return set
}

// delSorted removes x from a sorted slice (no-op if absent).
func delSorted(set []int32, x int32) []int32 {
	for i, v := range set {
		if v == x {
			return append(set[:i], set[i+1:]...) //lint:allow hotalloc shrinking append: the result is one shorter than the input, so the backing array never grows
		}
	}
	return set
}

// worstNotIn returns the largest element of a absent from b (both sorted).
func worstNotIn(a, b []int32) (int32, bool) {
	for i := len(a) - 1; i >= 0; i-- {
		if !containsSorted(b, a[i]) {
			return a[i], true
		}
	}
	return 0, false
}

// bestNotIn returns the smallest element of a absent from b (both sorted).
func bestNotIn(a, b []int32) (int32, bool) {
	for _, x := range a {
		if !containsSorted(b, x) {
			return x, true
		}
	}
	return 0, false
}

func containsSorted(set []int32, x int32) bool {
	for _, v := range set {
		if v == x {
			return true
		}
		if v > x {
			return false
		}
	}
	return false
}

package congest_test

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// constructInstances builds the protocol test matrix: families with
// different tree shapes and part geometries.
func constructInstances(t *testing.T) []struct {
	name string
	g    *graph.Graph
	tr   *graph.Tree
	p    *partition.Parts
} {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	var out []struct {
		name string
		g    *graph.Graph
		tr   *graph.Tree
		p    *partition.Parts
	}
	add := func(name string, g *graph.Graph, root int, p *partition.Parts, err error) {
		if err != nil {
			t.Fatal(err)
		}
		tr, err := graph.BFSTree(g, root)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, struct {
			name string
			g    *graph.Graph
			tr   *graph.Tree
			p    *partition.Parts
		}{name, g, tr, p})
	}
	grid := gen.Grid(7, 7).G
	pg, err := partition.GridRows(grid, 7, 7)
	add("grid-rows", grid, 0, pg, err)
	wheel := gen.Wheel(25).G
	pw, err := partition.RimArcs(wheel, 6)
	add("wheel-arcs", wheel, wheel.N()-1, pw, err)
	er := gen.ErdosRenyiConnected(60, 140, rng)
	pe, err := partition.Voronoi(er, 7, rng)
	add("er-voronoi", er, 0, pe, err)
	pieces := make([]*gen.Piece, 5)
	for i := range pieces {
		pieces[i] = gen.ApollonianPiece(14, rng)
	}
	cs := gen.CliqueSum(pieces, 3, rng)
	pc, err := partition.Voronoi(cs.G, 9, rng)
	add("k5free", cs.G, 0, pc, err)
	return out
}

// TestConstructShortcutMatchesFixedPoint: the simulated protocol converges
// to exactly the sequential fixed point — same per-part edge sets — at a
// range of caps, and its stats are sane.
func TestConstructShortcutMatchesFixedPoint(t *testing.T) {
	for _, tc := range constructInstances(t) {
		for _, cap := range []int{1, 2, 5} {
			res, err := congest.ConstructShortcut(tc.g, tc.tr, tc.p, congest.ConstructOptions{Cap: cap, Simulate: true})
			if err != nil {
				t.Fatalf("%s cap %d: %v", tc.name, cap, err)
			}
			want := shortcut.Construct(tc.g, tc.tr, tc.p, cap)
			for i := range want.Edges {
				if len(res.S.Edges[i]) != len(want.Edges[i]) {
					t.Fatalf("%s cap %d part %d: %v != fixed point %v", tc.name, cap, i, res.S.Edges[i], want.Edges[i])
				}
				for j := range want.Edges[i] {
					if res.S.Edges[i][j] != want.Edges[i][j] {
						t.Fatalf("%s cap %d part %d: %v != fixed point %v", tc.name, cap, i, res.S.Edges[i], want.Edges[i])
					}
				}
			}
			if m := res.S.Measure(); m.Congestion > cap {
				t.Fatalf("%s cap %d: congestion %d exceeds cap", tc.name, cap, m.Congestion)
			}
			if res.EffectiveRounds < 1 || res.EffectiveRounds > res.Budget {
				t.Fatalf("%s cap %d: effective rounds %d outside (0, budget %d]", tc.name, cap, res.EffectiveRounds, res.Budget)
			}
			if res.Stats.Messages == 0 {
				t.Fatalf("%s cap %d: construction sent no messages", tc.name, cap)
			}
			if res.ChargedRounds != 0 {
				t.Fatalf("%s cap %d: simulate mode filled the charged ledger with %d", tc.name, cap, res.ChargedRounds)
			}
		}
	}
}

// TestConstructShortcutAnalyticLedger: analytic mode returns the identical
// shortcut with the construction budget in the charged ledger and nothing
// in the simulated one.
func TestConstructShortcutAnalyticLedger(t *testing.T) {
	for _, tc := range constructInstances(t) {
		res, err := congest.ConstructShortcut(tc.g, tc.tr, tc.p, congest.ConstructOptions{Cap: 3})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.ChargedRounds != congest.ConstructBudget(tc.tr, 3) {
			t.Fatalf("%s: charged %d, want budget %d", tc.name, res.ChargedRounds, congest.ConstructBudget(tc.tr, 3))
		}
		if res.EffectiveRounds != 0 || res.Stats.Messages != 0 {
			t.Fatalf("%s: analytic mode leaked simulated stats %+v", tc.name, res.Stats)
		}
		want := shortcut.Construct(tc.g, tc.tr, tc.p, 3)
		if got, w := res.S.Measure(), want.Measure(); got.Quality != w.Quality {
			t.Fatalf("%s: analytic quality %d != fixed point %d", tc.name, got.Quality, w.Quality)
		}
	}
}

// TestConstructShortcutRejectsForeignTree: construction over a tree of a
// different graph must fail fast rather than flooding a mismatched edge
// space.
func TestConstructShortcutRejectsForeignTree(t *testing.T) {
	g1 := gen.Grid(4, 4).G
	g2 := gen.Grid(4, 4).G
	tr2, err := graph.BFSTree(g2, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.GridRows(g1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := congest.ConstructShortcut(g1, tr2, p, congest.ConstructOptions{Cap: 2, Simulate: true}); err == nil {
		t.Fatal("accepted a tree of a different graph")
	}
	tr1, err := graph.BFSTree(g1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := partition.GridRows(g2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := congest.ConstructShortcut(g1, tr1, p2, congest.ConstructOptions{Cap: 2}); err == nil {
		t.Fatal("accepted parts of a different graph")
	}
}

// TestConstructShortcutRejectsBadPriorities: a priority ranking that is
// not a permutation of 0..parts-1 must fail fast — an out-of-range rank
// would index past the inverse mapping at assembly, a duplicate would
// silently merge two parts' floods.
func TestConstructShortcutRejectsBadPriorities(t *testing.T) {
	g := gen.Grid(4, 4).G
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.GridRows(g, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		prio []int32
	}{
		{"short", []int32{0, 1}},
		{"out-of-range", []int32{0, 1, 2, 5}},
		{"negative", []int32{0, 1, 2, -1}},
		{"duplicate", []int32{0, 1, 1, 2}},
	} {
		if _, err := congest.ConstructShortcut(g, tr, p, congest.ConstructOptions{Cap: 2, Priorities: tc.prio}); err == nil {
			t.Fatalf("%s priorities accepted", tc.name)
		}
	}
}

// TestConstructShortcutDeterministic: the protocol's outcome — edge sets
// and statistics — is identical across GOMAXPROCS settings (the engine's
// determinism contract extended to the construction protocol). Run under
// -race in CI, this also exercises the shard workers against the per-node
// slab state.
func TestConstructShortcutDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := gen.ErdosRenyiConnected(80, 200, rng)
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.Voronoi(g, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *congest.ConstructResult {
		res, err := congest.ConstructShortcut(g, tr, p, congest.ConstructOptions{Cap: 2, Simulate: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)
	a := run()
	runtime.GOMAXPROCS(4)
	b := run()
	if a.Stats != b.Stats {
		t.Fatalf("stats differ across GOMAXPROCS: %+v vs %+v", a.Stats, b.Stats)
	}
	for i := range a.S.Edges {
		if len(a.S.Edges[i]) != len(b.S.Edges[i]) {
			t.Fatalf("part %d edges differ: %v vs %v", i, a.S.Edges[i], b.S.Edges[i])
		}
		for j := range a.S.Edges[i] {
			if a.S.Edges[i][j] != b.S.Edges[i][j] {
				t.Fatalf("part %d edges differ: %v vs %v", i, a.S.Edges[i], b.S.Edges[i])
			}
		}
	}
}

package congest_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// transcriptRun executes a flooding protocol and returns a full transcript:
// every message every node received, in delivery order, plus the final
// stats. The engine promises this is a pure function of the graph and
// protocol, independent of GOMAXPROCS and scheduling.
func transcriptRun(t *testing.T, g *graph.Graph, rounds int) string {
	t.Helper()
	var sb []strings.Builder
	sb = make([]strings.Builder, g.N())
	f := func(n *congest.Node) {
		best := uint64(n.ID)
		for r := 0; r < rounds; r++ {
			n.Broadcast(congest.Words{best})
			msgs, ok := n.Step()
			if !ok {
				return
			}
			for _, m := range msgs {
				fmt.Fprintf(&sb[n.ID], "r%d p%d f%d e%d w%d;", r, m.Port, m.From, m.Edge, m.Payload[0])
				if m.Payload[0] < best {
					best = m.Payload[0]
				}
			}
		}
		fmt.Fprintf(&sb[n.ID], "final=%d", best)
	}
	stats, err := congest.Run(g, f, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for v := range sb {
		fmt.Fprintf(&out, "node %d: %s\n", v, sb[v].String())
	}
	fmt.Fprintf(&out, "stats: %+v\n", stats)
	return out.String()
}

// TestTranscriptsIdenticalAcrossGOMAXPROCS runs the same CONGEST program
// under GOMAXPROCS=1 and GOMAXPROCS=8 and requires byte-identical
// transcripts and results: the barrier-synchronous scheduler's sharding
// must not leak into observable behavior.
func TestTranscriptsIdenticalAcrossGOMAXPROCS(t *testing.T) {
	e := gen.Grid(7, 9)
	prev := runtime.GOMAXPROCS(1)
	one := transcriptRun(t, e.G, 12)
	runtime.GOMAXPROCS(8)
	eight := transcriptRun(t, e.G, 12)
	runtime.GOMAXPROCS(prev)
	if one != eight {
		t.Fatalf("transcripts differ between GOMAXPROCS=1 and GOMAXPROCS=8:\n--- 1 ---\n%s\n--- 8 ---\n%s", one, eight)
	}
}

// TestAggregationIdenticalAcrossGOMAXPROCS runs the round-driven
// aggregation protocol (the RunSync path) at both GOMAXPROCS settings and
// compares full results.
func TestAggregationIdenticalAcrossGOMAXPROCS(t *testing.T) {
	e := gen.Wheel(65)
	tr, err := graph.BFSTree(e.G, 64)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.RimArcs(e.G, 4)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, e.G.N())
	for v := range keys {
		keys[v] = uint64(v*2654435761 + 17)
	}
	s, _ := shortcut.ObliviousAuto(e.G, tr, p)
	run := func() string {
		res, err := congest.AggregateMin(e.G, p, s, keys)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v %d %d %+v", res.Mins, res.EffectiveRounds, res.Budget, res.Stats)
	}
	prev := runtime.GOMAXPROCS(1)
	one := run()
	runtime.GOMAXPROCS(8)
	eight := run()
	runtime.GOMAXPROCS(prev)
	if one != eight {
		t.Fatalf("aggregation results differ:\nGOMAXPROCS=1: %s\nGOMAXPROCS=8: %s", one, eight)
	}
}

// TestDistributedBFSIdenticalAcrossGOMAXPROCS runs the BFS-tree election
// protocol at GOMAXPROCS 1 and 8 and requires identical parent and
// parent-edge arrays plus identical stats: the lowest-port tie-break for
// simultaneous announcements must be a pure function of the graph, not of
// shard scheduling. The wheel is adversarial for this — every rim vertex
// hears the apex and a rim neighbor in the same round — and the grid
// exercises four-way ties. Run under -race in CI, this also checks the
// result arrays against concurrent shard writes.
func TestDistributedBFSIdenticalAcrossGOMAXPROCS(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		root int
	}{
		{"grid", gen.Grid(9, 7).G, 0},
		{"wheel", gen.Wheel(41).G, 40},
	} {
		diam := graph.Diameter(tc.g)
		run := func() string {
			parent, parentEdge, stats, err := congest.DistributedBFS(tc.g, tc.root, diam)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			return fmt.Sprintf("%v %v %+v", parent, parentEdge, stats)
		}
		prev := runtime.GOMAXPROCS(1)
		one := run()
		runtime.GOMAXPROCS(8)
		eight := run()
		runtime.GOMAXPROCS(prev)
		if one != eight {
			t.Fatalf("%s: BFS results differ:\nGOMAXPROCS=1: %s\nGOMAXPROCS=8: %s", tc.name, one, eight)
		}
	}
}

// TestRunSyncMatchesBlockingRun expresses one protocol in both engine modes
// and requires identical stats: the round-driven form is a drop-in
// replacement for the blocking form.
func TestRunSyncMatchesBlockingRun(t *testing.T) {
	e := gen.Grid(5, 6)
	const rounds = 9
	finalsA := make([]uint64, e.G.N())
	blocking := func(n *congest.Node) {
		best := uint64(n.ID)
		for r := 0; r < rounds; r++ {
			n.Broadcast(congest.Words{best})
			msgs, ok := n.Step()
			if !ok {
				return
			}
			for _, m := range msgs {
				if m.Payload[0] < best {
					best = m.Payload[0]
				}
			}
		}
		finalsA[n.ID] = best
	}
	statsA, err := congest.Run(e.G, blocking, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	finalsB := make([]uint64, e.G.N())
	proto := func(n *congest.Node) congest.RoundFunc {
		best := uint64(n.ID)
		r := 0
		return func(n *congest.Node, msgs []congest.Message) bool {
			for _, m := range msgs {
				if m.Payload[0] < best {
					best = m.Payload[0]
				}
			}
			if r == rounds {
				finalsB[n.ID] = best
				return false
			}
			n.Broadcast(congest.Words{best})
			r++
			return true
		}
	}
	statsB, err := congest.RunSync(e.G, proto, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if statsA != statsB {
		t.Fatalf("stats differ: blocking %+v vs sync %+v", statsA, statsB)
	}
	for v := range finalsA {
		if finalsA[v] != finalsB[v] {
			t.Fatalf("node %d: blocking %d vs sync %d", v, finalsA[v], finalsB[v])
		}
	}
}

package congest

import (
	"fmt"
	"math"
	"sort"
)

// FaultPlan is a seeded, byte-deterministic adversary injected into a run
// via Options.Faults. It can drop individual messages (an independent
// Bernoulli coin per edge direction per round, derived from a hash so the
// outcome is a pure function of the plan and the round — never of
// scheduling), take links down for whole round intervals, and crash nodes
// for round intervals (the node computes nothing, sends nothing, and
// receives nothing while down; on restart its protocol state is preserved,
// or wiped and rebuilt from scratch when the crash says so).
//
// Rounds in the plan are *global* rounds: Offset plus the run's 1-based
// local round. Retry loops advance Offset between attempts so a retried
// protocol faces the continuation of the adversary's timeline rather than
// a replay of the exact faults that just defeated it (a deterministic
// adversary replayed verbatim would deterministically win again).
//
// All fault events are recorded in Stats (Dropped, DownDrops, CrashDrops,
// CrashedRounds), so the round/message ledger stays honest about what was
// lost.
type FaultPlan struct {
	// Seed drives the Bernoulli message-drop coins.
	Seed uint64
	// DropProb is the per-message drop probability in [0, 1], applied
	// independently to every edge direction every round.
	DropProb float64
	// DropUntil bounds the drop coins' horizon: they apply only to global
	// rounds ≤ DropUntil (0 = no bound). A finite horizon is what turns the
	// retry loops' convergence guarantee from probabilistic to certain for
	// the once-only token streams — a doubled budget eventually grants a
	// clean window past the horizon.
	DropUntil int
	// Offset shifts the run's local rounds into the plan's global timeline:
	// local round r (1-based) is global round Offset + r.
	Offset int
	// LinkDowns lists intervals during which an edge delivers nothing.
	LinkDowns []LinkDown
	// Crashes lists intervals during which a node is down. Only the
	// round-driven (RunSync) API supports crashes: a wiped restart rebuilds
	// the node's state through the SyncProtocol factory, which has no
	// equivalent for a blocked goroutine mid-Step.
	Crashes []Crash
}

// LinkDown takes edge Edge down for global rounds [From, To): every message
// queued across it in those rounds is lost (both directions).
type LinkDown struct {
	Edge int
	From int // first down round (global, 1-based), inclusive
	To   int // first up round again, exclusive
}

// Crash takes node Node down for global rounds [Round, Restart): it skips
// its compute phase, its queued sends are discarded, and messages addressed
// to it are lost. At round Restart the node resumes; with Wipe set its
// protocol state is discarded and rebuilt by calling the run's SyncProtocol
// factory again (the node restarts the protocol from round 1 in an
// otherwise mid-flight network).
type Crash struct {
	Node    int
	Round   int // first crashed round (global, 1-based), inclusive
	Restart int // first live round again, exclusive
	Wipe    bool
}

// Validate checks the plan against a network of n nodes and m edges;
// blocking reports whether the run uses the blocking (goroutine) API,
// which cannot host crashes.
func (fp *FaultPlan) Validate(n, m int, blocking bool) error {
	if math.IsNaN(fp.DropProb) || fp.DropProb < 0 || fp.DropProb > 1 {
		return fmt.Errorf("congest: fault plan drop probability %v outside [0, 1]", fp.DropProb)
	}
	if fp.Offset < 0 {
		return fmt.Errorf("congest: fault plan offset %d is negative", fp.Offset)
	}
	if fp.DropUntil < 0 {
		return fmt.Errorf("congest: fault plan drop horizon %d is negative", fp.DropUntil)
	}
	for i, d := range fp.LinkDowns {
		if d.Edge < 0 || d.Edge >= m {
			return fmt.Errorf("congest: link-down %d targets edge %d outside [0, %d)", i, d.Edge, m)
		}
		if d.From < 1 {
			return fmt.Errorf("congest: link-down %d starts at round %d (rounds are 1-based)", i, d.From)
		}
		if d.To <= d.From {
			return fmt.Errorf("congest: link-down %d has inverted interval [%d, %d)", i, d.From, d.To)
		}
	}
	for i, c := range fp.Crashes {
		if c.Node < 0 || c.Node >= n {
			return fmt.Errorf("congest: crash %d targets node %d outside [0, %d)", i, c.Node, n)
		}
		if c.Round < 1 {
			return fmt.Errorf("congest: crash %d starts at round %d (rounds are 1-based)", i, c.Round)
		}
		if c.Restart <= c.Round {
			return fmt.Errorf("congest: crash %d has inverted interval [%d, %d)", i, c.Round, c.Restart)
		}
		if blocking {
			return fmt.Errorf("congest: crash faults require the round-driven (RunSync) API")
		}
	}
	return nil
}

// Clone returns a deep copy (retry loops mutate Offset per attempt).
func (fp *FaultPlan) Clone() *FaultPlan {
	if fp == nil {
		return nil
	}
	out := *fp
	out.LinkDowns = append([]LinkDown(nil), fp.LinkDowns...)
	out.Crashes = append([]Crash(nil), fp.Crashes...)
	return &out
}

// Normalize canonicalizes the plan in place: link-down intervals are sorted
// by (edge, from, to) and overlapping or adjacent intervals on the same edge
// are merged; crash intervals likewise per node, with Wipe OR-ed across
// merged intervals (a merged crash wipes if any constituent did). The
// observable fault schedule — DownAt and CrashedAt at every round — is
// invariant under normalization, which the fuzz test checks.
func (fp *FaultPlan) Normalize() {
	if len(fp.LinkDowns) > 1 {
		sort.Slice(fp.LinkDowns, func(a, b int) bool {
			x, y := fp.LinkDowns[a], fp.LinkDowns[b]
			if x.Edge != y.Edge {
				return x.Edge < y.Edge
			}
			if x.From != y.From {
				return x.From < y.From
			}
			return x.To < y.To
		})
		out := fp.LinkDowns[:1]
		for _, d := range fp.LinkDowns[1:] {
			last := &out[len(out)-1]
			if d.Edge == last.Edge && d.From <= last.To {
				if d.To > last.To {
					last.To = d.To
				}
				continue
			}
			out = append(out, d)
		}
		fp.LinkDowns = out
	}
	if len(fp.Crashes) > 1 {
		sort.Slice(fp.Crashes, func(a, b int) bool {
			x, y := fp.Crashes[a], fp.Crashes[b]
			if x.Node != y.Node {
				return x.Node < y.Node
			}
			if x.Round != y.Round {
				return x.Round < y.Round
			}
			return x.Restart < y.Restart
		})
		out := fp.Crashes[:1]
		for _, c := range fp.Crashes[1:] {
			last := &out[len(out)-1]
			if c.Node == last.Node && c.Round <= last.Restart {
				if c.Restart > last.Restart {
					last.Restart = c.Restart
				}
				last.Wipe = last.Wipe || c.Wipe
				continue
			}
			out = append(out, c)
		}
		fp.Crashes = out
	}
}

// DownAt reports whether edge is down at global round gr.
func (fp *FaultPlan) DownAt(edge, gr int) bool {
	for _, d := range fp.LinkDowns {
		if d.Edge == edge && d.From <= gr && gr < d.To {
			return true
		}
	}
	return false
}

// CrashedAt reports whether node is crashed at global round gr.
func (fp *FaultPlan) CrashedAt(node, gr int) bool {
	for _, c := range fp.Crashes {
		if c.Node == node && c.Round <= gr && gr < c.Restart {
			return true
		}
	}
	return false
}

// wipesAt reports whether node's restart at global round gr discards its
// state: some wiping crash interval ends exactly there. (A wipe interval
// that ends while the node is still held down by another interval does not
// wipe — the state is discarded at the moment the node actually restarts,
// and only if the interval ending then asked for it. Normalize's OR-merge
// makes overlapping intervals behave as one.)
func (fp *FaultPlan) wipesAt(node, gr int) bool {
	for _, c := range fp.Crashes {
		if c.Node == node && c.Wipe && c.Restart == gr {
			return true
		}
	}
	return false
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// well-mixed 64-bit hash.
//
//congest:pure
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const twoTo64 = 18446744073709551616.0 // 2^64 as a float64

// drops is the deterministic Bernoulli coin: whether the message crossing
// (edge, dir) at global round gr is dropped. A pure function of the plan —
// independent of scheduling, shard layout, and GOMAXPROCS — and the purity
// analyzer proves it stays one.
//
//congest:pure
func (fp *FaultPlan) drops(edge, dir, gr int) bool {
	if fp.DropProb <= 0 {
		return false
	}
	if fp.DropUntil > 0 && gr > fp.DropUntil {
		return false
	}
	threshold := uint64(math.MaxUint64)
	if fp.DropProb < 1 {
		t := fp.DropProb * twoTo64
		if t >= twoTo64 {
			t = twoTo64 - 1
		}
		threshold = uint64(t)
	}
	h := splitmix64(splitmix64(fp.Seed^splitmix64(uint64(edge)<<1|uint64(dir))) ^ uint64(gr))
	return h < threshold
}

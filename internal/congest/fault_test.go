package congest_test

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
)

// faultedTranscript runs a round-driven flooding protocol under a fault
// plan and returns a full transcript — every delivery at every node, in
// order, plus the final stats. The engine promises this is a pure function
// of (graph, protocol, plan): scheduling and GOMAXPROCS must not leak into
// which messages are dropped.
func faultedTranscript(t *testing.T, g *graph.Graph, rounds int, plan *congest.FaultPlan) string {
	t.Helper()
	sb := make([]strings.Builder, g.N())
	proto := func(*congest.Node) congest.RoundFunc {
		r := 0
		return func(n *congest.Node, msgs []congest.Message) bool {
			for _, m := range msgs {
				fmt.Fprintf(&sb[n.ID], "p%d f%d w%d;", m.Port, m.From, m.Payload[0])
			}
			if r == rounds {
				return false
			}
			n.Broadcast(congest.Words{uint64(n.ID)})
			r++
			return true
		}
	}
	// Crashes stall the crashed node's local round counter, so the engine
	// budget needs headroom beyond the per-node round count.
	stats, err := congest.RunSync(g, proto, congest.Options{MaxRounds: 2*rounds + 16, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	for v := range sb {
		fmt.Fprintf(&out, "node %d: %s\n", v, sb[v].String())
	}
	fmt.Fprintf(&out, "stats: %+v\n", stats)
	return out.String()
}

// TestFaultedTranscriptIdenticalAcrossGOMAXPROCS is the determinism
// acceptance for the fault layer: the same faulted run — Bernoulli drops,
// a link outage, a crash/restart — yields byte-identical transcripts under
// GOMAXPROCS=1 and GOMAXPROCS=8. Run under -race in CI.
func TestFaultedTranscriptIdenticalAcrossGOMAXPROCS(t *testing.T) {
	e := gen.Grid(7, 9)
	plan := &congest.FaultPlan{
		Seed:      99,
		DropProb:  0.3,
		LinkDowns: []congest.LinkDown{{Edge: 3, From: 2, To: 9}, {Edge: 17, From: 1, To: 5}},
		Crashes:   []congest.Crash{{Node: 11, Round: 4, Restart: 9}, {Node: 30, Round: 2, Restart: 12, Wipe: true}},
	}
	prev := runtime.GOMAXPROCS(1)
	one := faultedTranscript(t, e.G, 14, plan)
	runtime.GOMAXPROCS(8)
	eight := faultedTranscript(t, e.G, 14, plan)
	runtime.GOMAXPROCS(prev)
	if one != eight {
		t.Fatalf("faulted transcripts differ between GOMAXPROCS=1 and GOMAXPROCS=8:\n--- 1 ---\n%s\n--- 8 ---\n%s", one, eight)
	}
	if !strings.Contains(one, "Dropped:") {
		t.Fatalf("transcript stats carry no fault counters: %s", one)
	}
}

// TestFaultedPipecastIdenticalAcrossGOMAXPROCS runs the resilient pipelined
// convergecast under a fault plan at both GOMAXPROCS settings and requires
// identical values, rounds, stats, and retry counts.
func TestFaultedPipecastIdenticalAcrossGOMAXPROCS(t *testing.T) {
	e := gen.Grid(6, 7)
	tr, err := graph.BFSTree(e.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	const numTags = 5
	contrib := make([][]congest.Token, e.G.N())
	for v := range contrib {
		contrib[v] = []congest.Token{{Tag: int32(v % numTags), Value: uint64(v + 1)}}
	}
	plan := congest.FaultPlan{
		Seed:      7,
		DropProb:  0.15,
		DropUntil: 120,
		LinkDowns: []congest.LinkDown{{Edge: 1, From: 3, To: 11}},
		Crashes:   []congest.Crash{{Node: 13, Round: 2, Restart: 8}},
	}
	run := func() string {
		adv := congest.NewAdversary(plan)
		res, err := adv.Pipecast(tr, numTags, contrib, congest.CombineSum)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v %v %d %+v retries=%d consumed=%d",
			res.Values, res.Present, res.EffectiveRounds, res.Stats, adv.Retries, adv.Consumed())
	}
	prev := runtime.GOMAXPROCS(1)
	one := run()
	runtime.GOMAXPROCS(8)
	eight := run()
	runtime.GOMAXPROCS(prev)
	if one != eight {
		t.Fatalf("faulted pipecast differs:\nGOMAXPROCS=1: %s\nGOMAXPROCS=8: %s", one, eight)
	}
	// The faulted result must equal the fault-free fixed point.
	clean, err := congest.Pipecast(tr, numTags, contrib, congest.CombineSum)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := congest.NewAdversary(plan).Pipecast(tr, numTags, contrib, congest.CombineSum)
	if err != nil {
		t.Fatal(err)
	}
	for tag, want := range clean.Values {
		if fres.Values[tag] != want {
			t.Fatalf("tag %d: faulted value %d, fault-free %d", tag, fres.Values[tag], want)
		}
	}
}

// TestOptionsValidation pins the explicit Options/FaultPlan validation:
// malformed configurations are rejected with ErrInvalidOptions before the
// run starts.
func TestOptionsValidation(t *testing.T) {
	g := gen.Path(4)
	noop := func(*congest.Node) congest.RoundFunc {
		return func(*congest.Node, []congest.Message) bool { return false }
	}
	cases := []struct {
		name string
		opts congest.Options
	}{
		{"negative bandwidth", congest.Options{Bandwidth: -1}},
		{"negative max rounds", congest.Options{MaxRounds: -5}},
		{"drop prob above one", congest.Options{Faults: &congest.FaultPlan{DropProb: 1.5}}},
		{"drop prob negative", congest.Options{Faults: &congest.FaultPlan{DropProb: -0.1}}},
		{"drop prob NaN", congest.Options{Faults: &congest.FaultPlan{DropProb: math.NaN()}}},
		{"negative offset", congest.Options{Faults: &congest.FaultPlan{Offset: -1}}},
		{"negative drop horizon", congest.Options{Faults: &congest.FaultPlan{DropUntil: -2}}},
		{"link-down edge out of range", congest.Options{Faults: &congest.FaultPlan{LinkDowns: []congest.LinkDown{{Edge: 99, From: 1, To: 2}}}}},
		{"link-down zero-based round", congest.Options{Faults: &congest.FaultPlan{LinkDowns: []congest.LinkDown{{Edge: 0, From: 0, To: 2}}}}},
		{"link-down inverted interval", congest.Options{Faults: &congest.FaultPlan{LinkDowns: []congest.LinkDown{{Edge: 0, From: 5, To: 5}}}}},
		{"crash node out of range", congest.Options{Faults: &congest.FaultPlan{Crashes: []congest.Crash{{Node: 4, Round: 1, Restart: 2}}}}},
		{"crash inverted interval", congest.Options{Faults: &congest.FaultPlan{Crashes: []congest.Crash{{Node: 0, Round: 3, Restart: 3}}}}},
	}
	for _, tc := range cases {
		if _, err := congest.RunSync(g, noop, tc.opts); !errors.Is(err, congest.ErrInvalidOptions) {
			t.Errorf("%s: got %v, want ErrInvalidOptions", tc.name, err)
		}
	}
	// Crashes require the round-driven API: the blocking runner rejects
	// them, the sync runner accepts the identical plan.
	crash := congest.Options{MaxRounds: 4, Faults: &congest.FaultPlan{Crashes: []congest.Crash{{Node: 1, Round: 1, Restart: 2}}}}
	if _, err := congest.Run(g, func(n *congest.Node) {}, crash); !errors.Is(err, congest.ErrInvalidOptions) {
		t.Errorf("blocking run with crashes: got %v, want ErrInvalidOptions", err)
	}
	if _, err := congest.RunSync(g, noop, crash); err != nil {
		t.Errorf("round-driven run with crashes: %v", err)
	}
}

// TestDropsAreCountedAndTotal pins the drop bookkeeping: with DropProb 1
// and no horizon every delivery is dropped and counted, and nodes hear
// nothing.
func TestDropsAreCountedAndTotal(t *testing.T) {
	g := gen.Cycle(6)
	heard := make([]int, g.N()) // per-node: RoundFuncs run on shard workers
	proto := func(*congest.Node) congest.RoundFunc {
		r := 0
		return func(n *congest.Node, msgs []congest.Message) bool {
			heard[n.ID] += len(msgs)
			if r == 5 {
				return false
			}
			n.Broadcast(congest.Words{1})
			r++
			return true
		}
	}
	stats, err := congest.RunSync(g, proto, congest.Options{MaxRounds: 16, Faults: &congest.FaultPlan{DropProb: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for v, h := range heard {
		if h != 0 {
			t.Fatalf("node %d heard %d messages under DropProb=1", v, h)
		}
	}
	if stats.Dropped == 0 {
		t.Fatalf("no drops counted: %+v", stats)
	}
}

// FuzzFaultPlan fuzzes the plan event merging: Normalize (sort + merge of
// overlapping intervals) must not change the plan's observable schedule —
// DownAt and CrashedAt agree with the un-normalized plan at every (target,
// round) — and must be idempotent.
func FuzzFaultPlan(f *testing.F) {
	f.Add([]byte{1, 2, 9, 0, 3, 7, 1, 1, 4})
	f.Add([]byte{0, 1, 2, 0, 1, 3, 0, 2, 5, 1, 4, 9})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n, m, horizon = 4, 6, 24
		plan := &congest.FaultPlan{}
		for i := 0; i+2 < len(data); i += 3 {
			target := int(data[i] % 8)
			from := int(data[i+1]%(horizon-2)) + 1
			to := from + int(data[i+2]%8) + 1
			if target < m {
				plan.LinkDowns = append(plan.LinkDowns, congest.LinkDown{Edge: target, From: from, To: to})
			}
			if target < n {
				plan.Crashes = append(plan.Crashes, congest.Crash{
					Node: target, Round: from, Restart: to, Wipe: data[i+2]&1 == 1})
			}
		}
		if err := plan.Validate(n, m, false); err != nil {
			t.Fatalf("generated plan invalid: %v", err)
		}
		norm := plan.Clone()
		norm.Normalize()
		if err := norm.Validate(n, m, false); err != nil {
			t.Fatalf("normalized plan invalid: %v", err)
		}
		for gr := 0; gr <= horizon+8; gr++ {
			for e := 0; e < m; e++ {
				if plan.DownAt(e, gr) != norm.DownAt(e, gr) {
					t.Fatalf("edge %d round %d: DownAt changed by Normalize (%v -> %v)",
						e, gr, plan.DownAt(e, gr), norm.DownAt(e, gr))
				}
			}
			for v := 0; v < n; v++ {
				if plan.CrashedAt(v, gr) != norm.CrashedAt(v, gr) {
					t.Fatalf("node %d round %d: CrashedAt changed by Normalize (%v -> %v)",
						v, gr, plan.CrashedAt(v, gr), norm.CrashedAt(v, gr))
				}
			}
		}
		again := norm.Clone()
		again.Normalize()
		if len(again.LinkDowns) != len(norm.LinkDowns) || len(again.Crashes) != len(norm.Crashes) {
			t.Fatalf("Normalize not idempotent: %d/%d downs, %d/%d crashes",
				len(norm.LinkDowns), len(again.LinkDowns), len(norm.Crashes), len(again.Crashes))
		}
	})
}

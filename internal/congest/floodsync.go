package congest

import (
	"fmt"

	"repro/internal/graph"
)

// Round-driven (RunSync) realizations of the bootstrap floods. The blocking
// LeaderElect/DistributedBFS park one goroutine per node, which is fine at
// experiment sizes but rules out million-node networks (10⁶ goroutine
// stacks). These variants keep all protocol state in caller-owned slabs and
// drive one shared RoundFunc, so a node-round costs a function call and the
// engine's slab substrate carries the whole run. They converge to the same
// fixed points — the minimum vertex ID, and the canonical lowest-port BFS
// parents — and both take engine Options, so callers can stream per-round
// figures through Options.OnRound.

// LeaderElectSync elects the minimum vertex ID on the round-driven
// scheduler. Unlike the blocking LeaderElect, the flood is improvement-
// gated: a node re-broadcasts its best-known ID only when a message lowered
// it, so total messages are O(m · improvements) rather than O(m · D̂), while
// the round count stays diamBound+2 (nodes cannot detect global convergence
// and must run out the bound). The result is validated for unanimity; a
// bound below the true eccentricity of the minimum surfaces as
// IncompleteError, never as a wrong leader.
func LeaderElectSync(g *graph.Graph, diamBound int, opts Options) (leader int, stats Stats, err error) {
	n := g.N()
	if n == 0 {
		return -1, stats, fmt.Errorf("congest: leader election over an empty network")
	}
	if diamBound <= 0 {
		return -1, stats, fmt.Errorf("congest: leader election diameter bound %d must be positive", diamBound)
	}
	best := make([]uint64, n)
	shared := RoundFunc(func(nd *Node, msgs []Message) bool {
		if nd.Round() == 1 {
			best[nd.ID] = uint64(nd.ID)
			nd.Broadcast(Words{best[nd.ID]})
			return true
		}
		improved := false
		for _, m := range msgs {
			if m.Payload[0] < best[nd.ID] {
				best[nd.ID] = m.Payload[0]
				improved = true
			}
		}
		if improved {
			nd.Broadcast(Words{best[nd.ID]})
		}
		return nd.Round() <= diamBound+1
	})
	stats, err = RunSync(g, func(*Node) RoundFunc { return shared }, opts)
	if err != nil {
		return -1, stats, err
	}
	leader = int(best[0])
	for v := 1; v < n; v++ {
		if int(best[v]) != leader {
			return -1, stats, &IncompleteError{Protocol: "LeaderElectSync", Rounds: stats.Rounds, Budget: diamBound + 2,
				Detail: fmt.Sprintf("nodes 0 and %d disagree (%d vs %d): diameter bound too small", v, leader, best[v])}
		}
	}
	return leader, stats, nil
}

// DistributedBFSSync builds the canonical BFS tree from root on the
// round-driven scheduler: the root announces itself in round 1; a node
// adopts the lowest-port announcement of its first delivery (exactly the
// blocking DistributedBFS rule and CanonicalBFSParents' fixed point),
// re-announces once, and halts one round later. Joined nodes leave the live
// set as the wave passes, so the run ends ~ecc(root)+2 rounds in — it never
// idles out a full diameter bound the way the election must. diamBound+2
// rounds is the give-up point for nodes the flood never reaches.
func DistributedBFSSync(g *graph.Graph, root, diamBound int, opts Options) (parent, parentEdge []int, stats Stats, err error) {
	n := g.N()
	if root < 0 || root >= n {
		return nil, nil, stats, fmt.Errorf("congest: BFS root %d out of range for %d nodes", root, n)
	}
	if diamBound <= 0 {
		return nil, nil, stats, fmt.Errorf("congest: BFS diameter bound %d must be positive", diamBound)
	}
	parent = make([]int, n)
	parentEdge = make([]int, n)
	for v := range parent {
		parent[v] = -1
		parentEdge[v] = -1
	}
	joined := make([]bool, n)
	shared := RoundFunc(func(nd *Node, msgs []Message) bool {
		if joined[nd.ID] {
			return false // announcement delivered last round; leave the live set
		}
		if nd.Round() == 1 {
			if nd.ID == root {
				joined[root] = true
				nd.Broadcast(Words{uint64(nd.ID)})
			}
			return true
		}
		if len(msgs) > 0 {
			// Inboxes are port-ordered, so msgs[0] is the lowest-port
			// announcer — the canonical parent rule.
			parent[nd.ID] = msgs[0].From
			parentEdge[nd.ID] = msgs[0].Edge
			joined[nd.ID] = true
			nd.Broadcast(Words{uint64(nd.ID)})
			return true
		}
		return nd.Round() <= diamBound+1
	})
	stats, err = RunSync(g, func(*Node) RoundFunc { return shared }, opts)
	if err != nil {
		return nil, nil, stats, err
	}
	for v := 0; v < n; v++ {
		if v != root && parent[v] == -1 {
			return nil, nil, stats, &IncompleteError{Protocol: "BFSSync", Rounds: stats.Rounds, Budget: diamBound + 2,
				Detail: fmt.Sprintf("flood from %d missed node %d within diamBound %d", root, v, diamBound)}
		}
	}
	if parent[root] != -1 {
		return nil, nil, stats, fmt.Errorf("congest: root %d acquired a parent", root)
	}
	return parent, parentEdge, stats, nil
}

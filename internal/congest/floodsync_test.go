package congest_test

import (
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// floodSyncFamilies is the equivalence corpus: a long-diameter grid, the
// hub-skewed wheel, and a randomized k-tree.
func floodSyncFamilies(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"grid9x9": gen.GridCSR(9, 9).Graph(),
		"wheel65": gen.WheelCSR(65).Graph(),
		"ktree":   gen.KTree(80, 3, xrand.New(7)).G,
		"chain":   gen.WheelChainCSR(12, 7).Graph(),
	}
}

// TestLeaderElectSyncMatchesBlocking pins the round-driven election to the
// blocking protocol's fixed point: same leader, and the round count runs
// out the same diamBound+2 budget.
func TestLeaderElectSyncMatchesBlocking(t *testing.T) {
	for name, g := range floodSyncFamilies(t) {
		diamBound := 2*graph.DiameterApprox(g) + 2
		want, _, err := congest.LeaderElect(g, diamBound)
		if err != nil {
			t.Fatalf("%s: blocking elect: %v", name, err)
		}
		got, stats, err := congest.LeaderElectSync(g, diamBound, congest.Options{})
		if err != nil {
			t.Fatalf("%s: sync elect: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: sync elected %d, blocking elected %d", name, got, want)
		}
		if stats.Rounds != diamBound+2 {
			t.Errorf("%s: sync elect ran %d rounds, want diamBound+2 = %d", name, stats.Rounds, diamBound+2)
		}
	}
}

// TestDistributedBFSSyncCanonical pins the round-driven BFS to the
// sequential canonical fixed point (lowest-port parents) on every family,
// and checks the early-exit property: the run ends near ecc(root), not at
// the diameter bound.
func TestDistributedBFSSyncCanonical(t *testing.T) {
	for name, g := range floodSyncFamilies(t) {
		diamBound := 2*graph.DiameterApprox(g) + 2
		wantP, wantPE, err := congest.CanonicalBFSParents(g, 0)
		if err != nil {
			t.Fatalf("%s: canonical parents: %v", name, err)
		}
		p, pe, stats, err := congest.DistributedBFSSync(g, 0, diamBound, congest.Options{})
		if err != nil {
			t.Fatalf("%s: sync BFS: %v", name, err)
		}
		for v := range p {
			if p[v] != wantP[v] || pe[v] != wantPE[v] {
				t.Fatalf("%s: node %d: sync parent %d/edge %d, canonical %d/%d", name, v, p[v], pe[v], wantP[v], wantPE[v])
			}
		}
		if stats.Rounds > diamBound+3 {
			t.Errorf("%s: sync BFS ran %d rounds, bound %d", name, stats.Rounds, diamBound+3)
		}
	}
}

// TestFloodSyncBoundTooSmall checks both protocols surface IncompleteError
// (not a wrong fixed point) when the diameter bound cannot cover the graph.
func TestFloodSyncBoundTooSmall(t *testing.T) {
	g := gen.GridCSR(1, 30).Graph() // a path: diameter 29
	if _, _, err := congest.LeaderElectSync(g, 3, congest.Options{}); err == nil {
		t.Error("leader election with diamBound 3 on a 30-path converged")
	}
	if _, _, _, err := congest.DistributedBFSSync(g, 0, 3, congest.Options{}); err == nil {
		t.Error("BFS with diamBound 3 on a 30-path converged")
	}
}

package congest

import "fmt"

// IncompleteError is the structured form of ErrIncomplete: a protocol run
// terminated without every node reaching the final state — a flood that did
// not cover the graph within its budget, a disagreeing election, a
// convergecast that missed tokens. Retry loops branch on the structured
// fields (which protocol, how far it got, what budget it had) instead of
// parsing error strings; errors.Is(err, ErrIncomplete) still holds through
// Unwrap.
type IncompleteError struct {
	Protocol string // e.g. "BFS", "LeaderElect", "Pipecast"
	Rounds   int    // rounds the run actually took (0 if unknown)
	Budget   int    // round budget the protocol had
	Detail   string // what specifically did not converge
}

func (e *IncompleteError) Error() string {
	msg := fmt.Sprintf("%v: %s did not converge within budget %d", ErrIncomplete, e.Protocol, e.Budget)
	if e.Rounds > 0 {
		msg += fmt.Sprintf(" (ran %d rounds)", e.Rounds)
	}
	if e.Detail != "" {
		msg += ": " + e.Detail
	}
	return msg
}

// Unwrap ties the typed error to the ErrIncomplete sentinel.
func (e *IncompleteError) Unwrap() error { return ErrIncomplete }

// Package congest simulates the CONGEST model (paper §1.3.1): a synchronous
// message-passing network where, per round, each node may send one B-bit
// message across each incident edge (B = Θ(log n)). Nodes run as goroutines
// executing ordinary sequential protocol code against a blocking Node API;
// the engine enforces bandwidth, counts rounds and messages, and delivers
// messages deterministically (sorted by port) so runs are reproducible
// regardless of goroutine scheduling.
//
// Every goroutine is joined before Run returns; the engine owns all
// channels.
package congest

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/graph"
)

// Payload is message content with an explicit bit size, so the engine can
// enforce the CONGEST bandwidth bound.
type Payload interface{ Bits() int }

// Words is the standard payload: a fixed number of 64-bit words. CONGEST's
// O(log n) bits per edge per round corresponds to a small constant number of
// words.
type Words []uint64

// Bits returns 64 bits per word.
func (w Words) Bits() int { return 64 * len(w) }

// Float64Word encodes a float64 as a payload word.
func Float64Word(f float64) uint64 { return math.Float64bits(f) }

// WordFloat64 decodes a payload word into a float64.
func WordFloat64(w uint64) float64 { return math.Float64frombits(w) }

// Message is a received message.
type Message struct {
	Port    int // adjacency index at the receiver the message arrived on
	From    int // sender vertex ID
	Edge    int // edge ID it traveled over
	Payload Words
}

// Options configures a run.
type Options struct {
	// Bandwidth in bits per edge direction per round. 0 selects
	// 64 * max(2, ceil(log2 n / 16)) — a Θ(log n) default that fits a few
	// words for realistic n.
	Bandwidth int
	// MaxRounds aborts runs that fail to terminate (0 = 64·n + 1024).
	MaxRounds int
}

// Stats summarizes a run.
type Stats struct {
	Rounds          int
	Messages        int
	TotalBits       int
	MaxEdgeLoad     int // max messages that crossed any single edge (both directions)
	LastActiveRound int // last round in which any message was delivered
}

// Add accumulates another run's statistics (rounds add sequentially).
func (s *Stats) Add(o Stats) {
	s.Rounds += o.Rounds
	s.Messages += o.Messages
	s.TotalBits += o.TotalBits
	if o.MaxEdgeLoad > s.MaxEdgeLoad {
		s.MaxEdgeLoad = o.MaxEdgeLoad
	}
	s.LastActiveRound += o.LastActiveRound
}

// Node is the per-process API handed to a NodeFunc. All methods must be
// called from that node's goroutine only.
type Node struct {
	ID    int
	NumV  int // n, known to all nodes (standard CONGEST assumption)
	ports []graph.Arc

	eng     *engine
	outbox  []send
	inbox   []Message
	round   int
	stopped bool
}

type send struct {
	port    int
	payload Words
}

// NodeFunc is the protocol executed at every node. Returning ends the
// node's participation (it stays silent but the network keeps running until
// all nodes return).
type NodeFunc func(n *Node)

// Degree returns the number of incident edge-ports.
func (n *Node) Degree() int { return len(n.ports) }

// Neighbor returns the vertex at the other end of the given port.
func (n *Node) Neighbor(port int) int { return n.ports[port].To }

// PortEdge returns the edge ID behind a port.
func (n *Node) PortEdge(port int) int { return n.ports[port].ID }

// Round returns the current round number (starting at 0 before the first
// Step).
func (n *Node) Round() int { return n.round }

// Send queues a message on a port for delivery at the next Step. At most
// one message per port per round; exceeding bandwidth or double-sending
// aborts the run with an error.
func (n *Node) Send(port int, payload Words) {
	for _, s := range n.outbox {
		if s.port == port {
			n.eng.fail(fmt.Errorf("congest: node %d sent twice on port %d in round %d", n.ID, port, n.round))
			return
		}
	}
	if payload.Bits() > n.eng.bandwidth {
		n.eng.fail(fmt.Errorf("congest: node %d message of %d bits exceeds bandwidth %d", n.ID, payload.Bits(), n.eng.bandwidth))
		return
	}
	n.outbox = append(n.outbox, send{port: port, payload: payload})
}

// Broadcast queues the same message on every port.
func (n *Node) Broadcast(payload Words) {
	for port := range n.ports {
		n.Send(port, payload)
	}
}

// Step submits the queued sends, advances one synchronous round, and
// returns the messages received (sorted by port). It returns false if the
// run was aborted.
func (n *Node) Step() ([]Message, bool) {
	if n.stopped {
		return nil, false
	}
	msgs, ok := n.eng.step(n.ID, n.outbox, false)
	n.outbox = n.outbox[:0]
	n.round++
	if !ok {
		n.stopped = true
	}
	n.inbox = msgs
	return msgs, ok
}

// engine coordinates the synchronous rounds.
type engine struct {
	g         *graph.Graph
	bandwidth int
	maxRounds int

	mu        sync.Mutex
	cond      *sync.Cond
	phase     int // round counter for the barrier
	waiting   int
	active    int
	pending   [][]send // per node: sends submitted this round
	done      []bool
	inboxes   [][]Message
	stats     Stats
	edgeLoad  []int
	err       error
	announced bool
}

func (e *engine) fail(err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err == nil {
		e.err = err
	}
	e.cond.Broadcast() // release any nodes blocked at the barrier
}

// step is the barrier: node id submits its sends (or its exit) and blocks
// until every active node has done so; the last arrival routes messages.
func (e *engine) step(id int, out []send, exiting bool) ([]Message, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.err != nil {
		return nil, false
	}
	e.pending[id] = append(e.pending[id][:0], out...)
	if exiting {
		e.done[id] = true
	}
	myPhase := e.phase
	e.waiting++
	if e.waiting == e.active {
		e.route()
		e.waiting = 0
		for i := range e.done {
			if e.done[i] {
				e.active--
				e.done[i] = false // counted
			}
		}
		e.phase++
		e.cond.Broadcast()
	} else {
		for e.phase == myPhase && e.err == nil {
			e.cond.Wait()
		}
	}
	if e.err != nil {
		e.cond.Broadcast()
		return nil, false
	}
	if exiting {
		return nil, true
	}
	inbox := e.inboxes[id]
	return inbox, true
}

// route delivers all pending sends; caller holds the lock.
func (e *engine) route() {
	for i := range e.inboxes {
		e.inboxes[i] = nil
	}
	for from, sends := range e.pending {
		for _, s := range sends {
			arc := e.g.Adj(from)[s.port]
			to := arc.To
			// Find the receiving port at `to`.
			rport := -1
			for pi, a := range e.g.Adj(to) {
				if a.ID == arc.ID {
					rport = pi
					break
				}
			}
			e.inboxes[to] = append(e.inboxes[to], Message{
				Port:    rport,
				From:    from,
				Edge:    arc.ID,
				Payload: s.payload,
			})
			e.stats.Messages++
			e.stats.TotalBits += s.payload.Bits()
			e.edgeLoad[arc.ID]++
			e.stats.LastActiveRound = e.stats.Rounds + 1
		}
		e.pending[from] = e.pending[from][:0]
	}
	for i := range e.inboxes {
		sort.Slice(e.inboxes[i], func(a, b int) bool { return e.inboxes[i][a].Port < e.inboxes[i][b].Port })
	}
	e.stats.Rounds++
	if e.stats.Rounds > e.maxRounds && e.err == nil {
		e.err = fmt.Errorf("congest: exceeded %d rounds", e.maxRounds)
	}
}

// ErrAborted is wrapped by Run when the protocol was cut short.
var ErrAborted = errors.New("congest: run aborted")

// Run executes f at every node of g until all nodes return.
func Run(g *graph.Graph, f NodeFunc, opts Options) (Stats, error) {
	n := g.N()
	bw := opts.Bandwidth
	if bw == 0 {
		words := 2
		for (1 << (16 * words)) < n {
			words++
		}
		bw = 64 * words
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 64*n + 1024
	}
	e := &engine{
		g:         g,
		bandwidth: bw,
		maxRounds: maxRounds,
		pending:   make([][]send, n),
		done:      make([]bool, n),
		inboxes:   make([][]Message, n),
		edgeLoad:  make([]int, g.M()),
		active:    n,
	}
	e.cond = sync.NewCond(&e.mu)
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		node := &Node{ID: v, NumV: n, ports: g.Adj(v), eng: e}
		go func() {
			defer wg.Done()
			f(node)
			// Node finished: keep satisfying the barrier as an exiting
			// participant exactly once; afterwards it is inactive.
			if !node.stopped {
				e.step(node.ID, nil, true)
			}
		}()
	}
	wg.Wait()
	for _, l := range e.edgeLoad {
		if l > e.stats.MaxEdgeLoad {
			e.stats.MaxEdgeLoad = l
		}
	}
	if e.err != nil {
		return e.stats, fmt.Errorf("%w: %v", ErrAborted, e.err)
	}
	return e.stats, nil
}

// Package congest simulates the CONGEST model (paper §1.3.1): a synchronous
// message-passing network where, per round, each node may send one B-bit
// message across each incident edge (B = Θ(log n)). Nodes run protocol code
// against a blocking Node API; the engine enforces bandwidth, counts rounds
// and messages, and delivers messages deterministically (in port order) so
// runs are reproducible regardless of scheduling.
//
// Engine design (barrier-synchronous round scheduler). Each node's protocol
// still executes on its own goroutine — the blocking Step API requires a
// stack per node — but the goroutines are coroutines, not free-running
// threads: a fixed worker pool shards the nodes and drives each round in two
// phases. In the compute phase every worker walks its shard in node order,
// handing the baton to one node at a time (an unbuffered-channel handoff);
// the node runs its protocol until the next Step and queues sends into its
// own dense per-port outbox slots. In the deliver phase the workers build
// inboxes receiver-side: each receiver scans its ports and pulls the
// message, if any, from the neighbor's opposite slot (precomputed reverse
// ports), so inboxes come out in port order with no sorting and no routing
// map; per-shard statistics are merged in shard order after the phase
// barrier. There is no global lock anywhere on the round path, and all
// per-round buffers (outbox slots, inboxes, payload arenas) are reused, so
// a round allocates nothing.
//
// Determinism: the engine's observable behavior — inbox contents and order,
// statistics, error outcomes — is a pure function of the graph and the
// protocol, independent of GOMAXPROCS and scheduling.
//
// Message payloads are valid until the receiving node's next Step call (the
// engine reuses the underlying arena); protocols that need a payload longer
// must copy it.
//
// Every goroutine is joined before Run returns; the engine owns all
// channels.
package congest

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Payload is message content with an explicit bit size, so the engine can
// enforce the CONGEST bandwidth bound.
type Payload interface{ Bits() int }

// Words is the standard payload: a fixed number of 64-bit words. CONGEST's
// O(log n) bits per edge per round corresponds to a small constant number of
// words.
type Words []uint64

// Bits returns 64 bits per word.
func (w Words) Bits() int { return 64 * len(w) }

// Float64Word encodes a float64 as a payload word.
func Float64Word(f float64) uint64 { return math.Float64bits(f) }

// WordFloat64 decodes a payload word into a float64.
func WordFloat64(w uint64) float64 { return math.Float64frombits(w) }

// Message is a received message. Payload is valid until the receiver's next
// Step.
type Message struct {
	Port    int // adjacency index at the receiver the message arrived on
	From    int // sender vertex ID
	Edge    int // edge ID it traveled over
	Payload Words
}

// Options configures a run.
type Options struct {
	// Bandwidth in bits per edge direction per round. 0 selects
	// 64 * max(2, ceil(log2 n / 16)) — a Θ(log n) default that fits a few
	// words for realistic n.
	Bandwidth int
	// MaxRounds aborts runs that fail to terminate (0 = 64·n + 1024).
	MaxRounds int
	// Faults, when non-nil, injects the deterministic adversary into the
	// run: message drops, link-down intervals, and node crash/restarts.
	// The plan is validated before the run starts (ErrInvalidOptions).
	Faults *FaultPlan
	// OnRound, when non-nil, is called once per completed round (single-
	// threaded, between phase barriers) with that round's delivery
	// figures. It is the streaming observation hook for million-node
	// runs: a caller can fold per-round wall-clock or bytes trends
	// without the engine — or the caller — ever materializing
	// O(n·rounds) state. The callback must not retain the probe past the
	// call and must not touch the engine.
	OnRound func(RoundProbe)
}

// RoundProbe is the per-round snapshot streamed to Options.OnRound.
type RoundProbe struct {
	Round    int // 1-based round number
	Messages int // messages delivered this round
	Bits     int // payload bits delivered this round
	Active   int // nodes still participating after the compute phase
}

// ErrInvalidOptions is wrapped by Run/RunSync when Options fail validation
// (negative bandwidth or round bound, malformed fault plan) — the run never
// starts.
var ErrInvalidOptions = errors.New("congest: invalid options")

// validate rejects malformed options before a run starts; blocking reports
// whether the run uses the goroutine-per-node API (which cannot host crash
// faults).
func (o Options) validate(n, m int, blocking bool) error {
	if o.Bandwidth < 0 {
		return fmt.Errorf("%w: negative bandwidth %d", ErrInvalidOptions, o.Bandwidth)
	}
	if o.MaxRounds < 0 {
		return fmt.Errorf("%w: negative round bound %d", ErrInvalidOptions, o.MaxRounds)
	}
	if o.Faults != nil {
		if err := o.Faults.Validate(n, m, blocking); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidOptions, err)
		}
	}
	return nil
}

// Stats summarizes a run.
type Stats struct {
	Rounds          int
	Messages        int
	TotalBits       int
	MaxEdgeLoad     int // max messages that crossed any single edge (both directions)
	LastActiveRound int // last round in which any message was delivered

	// Fault ledger (all zero on fault-free runs): messages lost to the
	// Bernoulli drop coins, to down links, and to crashed receivers, plus
	// the total node-rounds spent crashed.
	Dropped       int
	DownDrops     int
	CrashDrops    int
	CrashedRounds int
}

// Add accumulates another run's statistics (rounds add sequentially).
func (s *Stats) Add(o Stats) {
	s.Rounds += o.Rounds
	s.Messages += o.Messages
	s.TotalBits += o.TotalBits
	if o.MaxEdgeLoad > s.MaxEdgeLoad {
		s.MaxEdgeLoad = o.MaxEdgeLoad
	}
	s.LastActiveRound += o.LastActiveRound
	s.Dropped += o.Dropped
	s.DownDrops += o.DownDrops
	s.CrashDrops += o.CrashDrops
	s.CrashedRounds += o.CrashedRounds
}

// Node is the per-process API handed to a NodeFunc. All methods must be
// called from that node's goroutine only.
type Node struct {
	ID    int
	NumV  int // n, known to all nodes (standard CONGEST assumption)
	ports []graph.Arc

	eng     *engine
	round   int
	stopped bool
	exited  bool
	fn      RoundFunc // non-nil in round-driven mode

	out       []outSlot // per port: queued send for this round
	sendArena []uint64  // backing storage for queued payload words
	resume    chan struct{}
	yield     chan struct{}
}

type outSlot struct {
	has  bool
	off  int32 // into sendArena
	len  int32
	bits int32
}

// NodeFunc is the protocol executed at every node. Returning ends the
// node's participation (it stays silent but the network keeps running until
// all nodes return).
type NodeFunc func(n *Node)

// RoundFunc is the round-driven (synchronous-callback) protocol form: the
// engine calls it once per round with the messages delivered at the end of
// the previous round (nil in round 1). The callback inspects the messages,
// queues this round's sends with n.Send, and reports whether the node keeps
// participating; returning false ends participation and discards any sends
// queued in that final call (matching the blocking API, where returning
// from a NodeFunc after Step discards queued sends).
//
// Protocols written in this form run with zero goroutine switches — shard
// workers invoke the callbacks directly — which is roughly two orders of
// magnitude cheaper per node-round than the blocking Step API. Prefer it
// for any protocol that is naturally a per-round state machine.
type RoundFunc func(n *Node, msgs []Message) bool

// SyncProtocol builds the per-node state of a round-driven protocol: called
// once per node before round 1, it returns the node's RoundFunc.
type SyncProtocol func(n *Node) RoundFunc

// Degree returns the number of incident edge-ports.
func (n *Node) Degree() int { return len(n.ports) }

// Neighbor returns the vertex at the other end of the given port.
func (n *Node) Neighbor(port int) int { return n.ports[port].To }

// PortEdge returns the edge ID behind a port.
func (n *Node) PortEdge(port int) int { return n.ports[port].ID }

// Round returns the current round number (starting at 0 before the first
// Step).
func (n *Node) Round() int { return n.round }

// Send queues a message on a port for delivery at the next Step. At most
// one message per port per round; exceeding bandwidth or double-sending
// aborts the run with an error. The payload is copied, so the caller may
// reuse it.
func (n *Node) Send(port int, payload Words) {
	if n.out[port].has {
		//lint:allow hotalloc Errorf boxing on the abort path only: the run is already failing
		n.eng.fail(fmt.Errorf("congest: node %d sent twice on port %d in round %d", n.ID, port, n.round))
		return
	}
	if payload.Bits() > n.eng.bandwidth {
		//lint:allow hotalloc Errorf boxing on the abort path only: the run is already failing
		n.eng.fail(fmt.Errorf("congest: node %d message of %d bits exceeds bandwidth %d", n.ID, payload.Bits(), n.eng.bandwidth))
		return
	}
	off := len(n.sendArena)
	n.sendArena = append(n.sendArena, payload...) //lint:allow hotalloc sendArena is the per-round payload slab, reset to len 0 each Step; its capacity reaches steady state after the first rounds and the AllocsPerRun pins hold
	n.out[port] = outSlot{has: true, off: int32(off), len: int32(len(payload)), bits: int32(payload.Bits())}
}

// Broadcast queues the same message on every port.
func (n *Node) Broadcast(payload Words) {
	for port := range n.ports {
		n.Send(port, payload)
	}
}

// Step submits the queued sends, advances one synchronous round, and
// returns the messages received (in port order). It returns false if the
// run was aborted.
func (n *Node) Step() ([]Message, bool) {
	if n.fn != nil {
		panic("congest: Step called from a round-driven (RoundFunc) protocol")
	}
	if n.stopped {
		return nil, false
	}
	n.yield <- struct{}{} // hand the baton back to the shard worker
	<-n.resume            // resumed in the next round's compute phase
	n.round++
	if n.eng.failed() {
		n.stopped = true
		return nil, false
	}
	// The previous round's sends were delivered; the slots are ours again.
	n.clearOut()
	return n.eng.inboxes[n.ID], true
}

func (n *Node) clearOut() {
	for p := range n.out {
		n.out[p].has = false
	}
	n.sendArena = n.sendArena[:0]
}

// engine coordinates the synchronous rounds.
type engine struct {
	g         *graph.Graph
	bandwidth int
	maxRounds int

	nodes   []Node
	revPort [][]int32 // revPort[v][p]: port index at the neighbor for the same edge
	alive   []bool
	active  int
	onRound func(RoundProbe)

	// Arc-indexed slabs, carved per node by the degree prefix sums in
	// portOff: outbox slots, reverse ports, and inbox headers all live in
	// three contiguous allocations sized by the actual arc count (2m)
	// instead of ~4 allocations per node. Shards cover contiguous node
	// ranges, so each worker's slab region is contiguous too.
	portOff   []int32 // n+1; node v's arcs are [portOff[v], portOff[v+1])
	outSlab   []outSlot
	revSlab   []int32
	inboxSlab []Message

	// Fault-injection state (nil/empty on fault-free runs). The scheduler
	// refreshes crashed/downEdge once per round between phase barriers
	// (single-threaded), so the shard workers only ever read them.
	faults     *FaultPlan
	proto      SyncProtocol // retained for wiped crash restarts
	gRound     int          // current global round (faults.Offset + local round)
	crashed    []bool
	downEdge   []bool
	downMarked []int32 // edges currently marked down, for O(marked) clearing

	inboxes    [][]Message
	inboxArena [][]uint64 // per receiver: payload backing, reused per round

	// Fixed worker pool.
	workers   int
	bounds    []int // shard s covers nodes [bounds[s], bounds[s+1])
	taskCh    chan int
	phaseFn   func(shard int)
	phaseWg   sync.WaitGroup
	shardWork []shardResult

	stats     Stats
	edgeLoad2 []int32 // per edge direction: messages delivered

	errFlag atomic.Bool // lock-free fast path for the per-Step check
	errMu   sync.Mutex
	err     error
}

// shardResult is one shard's per-phase scratch output, merged by the
// scheduler in shard order.
type shardResult struct {
	messages int
	bits     int
	anyMsg   bool
	exited   int

	// Fault counters, merged into Stats in shard order.
	dropped       int
	downDrops     int
	crashDrops    int
	crashedRounds int

	_ [4]int64 // pad to keep shards off each other's cache lines
}

func (e *engine) fail(err error) {
	e.errMu.Lock()
	if e.err == nil {
		e.err = err
		e.errFlag.Store(true)
	}
	e.errMu.Unlock()
}

func (e *engine) failed() bool { return e.errFlag.Load() }

// runPhase executes fn over all shards on the worker pool and waits.
func (e *engine) runPhase(fn func(shard int)) {
	e.phaseFn = fn
	e.phaseWg.Add(e.workers)
	for s := 0; s < e.workers; s++ {
		e.taskCh <- s
	}
	e.phaseWg.Wait()
}

// computeShard runs the compute phase over the shard's live nodes in node
// order. Round-driven nodes are direct calls; blocking-API nodes get the
// baton via a channel handoff and run until their next Step (or exit).
//
//congest:hotpath
func (e *engine) computeShard(shard int) {
	res := &e.shardWork[shard]
	res.exited = 0
	res.crashedRounds = 0
	failed := e.failed()
	for v := e.bounds[shard]; v < e.bounds[shard+1]; v++ {
		if !e.alive[v] {
			continue
		}
		nd := &e.nodes[v]
		if e.faults != nil && e.crashed[v] {
			// Crashed: no compute, and the outbox must be empty so the
			// deliver phase finds nothing from it (slots are only cleared
			// at the owner's next compute otherwise).
			nd.clearOut()
			res.crashedRounds++
			continue
		}
		if nd.fn != nil {
			nd.round++
			nd.clearOut()
			if failed || !nd.fn(nd, e.inboxes[v]) {
				nd.clearOut()
				e.alive[v] = false
				res.exited++
			}
			continue
		}
		nd.resume <- struct{}{}
		<-nd.yield
		if nd.exited {
			e.alive[v] = false
			res.exited++
		}
	}
}

// deliverShard builds the inboxes of the shard's nodes receiver-side, in
// port order, from the senders' outbox slots. This is the packed-payload
// receive path: message words are appended into the receiver's word
// arena and the inbox headers fill pre-carved slab capacity, so at steady
// state a delivery allocates nothing.
//
//congest:hotpath
func (e *engine) deliverShard(shard int) {
	res := &e.shardWork[shard]
	res.messages, res.bits, res.anyMsg = 0, 0, false
	res.dropped, res.downDrops, res.crashDrops = 0, 0, 0
	for v := e.bounds[shard]; v < e.bounds[shard+1]; v++ {
		if e.faults != nil && e.crashed[v] {
			// Crashed receiver: everything addressed to it this round is
			// lost, and its inbox must be empty so a restart sees no stale
			// messages. (Crash precedes the link checks: a message to a
			// crashed node is booked as a crash drop even if its link is
			// also down.)
			for p := range e.g.Adj(v) {
				if e.nodes[e.g.Adj(v)[p].To].out[e.revPort[v][p]].has {
					res.crashDrops++
				}
			}
			e.inboxes[v] = e.inboxes[v][:0]
			continue
		}
		inbox := e.inboxes[v][:0]
		arena := e.inboxArena[v][:0]
		for p, a := range e.g.Adj(v) {
			sp := e.revPort[v][p]
			slot := &e.nodes[a.To].out[sp]
			if !slot.has {
				continue
			}
			if e.faults != nil {
				if e.downEdge[a.ID] {
					res.downDrops++
					continue
				}
				dir := 0
				if e.g.Edge(a.ID).V == v {
					dir = 1
				}
				if e.faults.drops(a.ID, dir, e.gRound) {
					res.dropped++
					continue
				}
			}
			words := e.nodes[a.To].sendArena[slot.off : slot.off+slot.len]
			off := len(arena)
			arena = append(arena, words...) //lint:allow hotalloc inboxArena is the receiver's payload word slab, reset to len 0 each round; its capacity reaches steady state after the first rounds and the AllocsPerRun pins hold
			inbox = append(inbox, Message{  //lint:allow hotalloc inboxSlab pre-carves capacity for one message per port — the per-round maximum — so this append never grows
				Port:    p,
				From:    a.To,
				Edge:    a.ID,
				Payload: arena[off : off+len(words)],
			})
			res.messages++
			res.bits += int(slot.bits)
			dir := 0
			if e.g.Edge(a.ID).V == v {
				dir = 1
			}
			e.edgeLoad2[2*a.ID+dir]++
		}
		if len(inbox) > 0 {
			res.anyMsg = true
		}
		e.inboxes[v] = inbox
		e.inboxArena[v] = arena
	}
}

// updateFaults refreshes the adversary's per-round state for local round
// `local` (1-based). Runs single-threaded between phase barriers, so the
// shard workers only ever read crashed/downEdge/gRound.
func (e *engine) updateFaults(local int) {
	e.gRound = e.faults.Offset + local
	for _, id := range e.downMarked {
		e.downEdge[id] = false
	}
	e.downMarked = e.downMarked[:0]
	for _, d := range e.faults.LinkDowns {
		if d.From <= e.gRound && e.gRound < d.To && !e.downEdge[d.Edge] {
			e.downEdge[d.Edge] = true
			e.downMarked = append(e.downMarked, int32(d.Edge))
		}
	}
	for _, c := range e.faults.Crashes {
		v := c.Node
		now := e.faults.CrashedAt(v, e.gRound)
		if e.crashed[v] == now {
			continue // also dedupes multiple intervals for the same node
		}
		if !now && e.alive[v] && e.faults.wipesAt(v, e.gRound) && e.proto != nil {
			// Wiped restart: discard the node's protocol state and rebuild
			// it through the factory; the node re-runs from its round 1 in
			// an otherwise mid-flight network.
			nd := &e.nodes[v]
			nd.round = 0
			nd.clearOut()
			nd.fn = e.proto(nd)
		}
		e.crashed[v] = now
	}
}

// ErrAborted is wrapped by Run when the protocol was cut short.
var ErrAborted = errors.New("congest: run aborted")

// enginePool recycles engine scaffolding (channels, slot arrays, inboxes)
// across runs, so starting a simulation allocates O(1) once warm.
var enginePool = sync.Pool{New: func() any { return &engine{} }}

// prepare (re)sizes pooled engine state for graph g.
func (e *engine) prepare(g *graph.Graph, bw, maxRounds int, faults *FaultPlan) {
	n := g.N()
	e.g = g
	e.bandwidth = bw
	e.maxRounds = maxRounds
	e.err = nil
	e.errFlag.Store(false)
	e.stats = Stats{}
	e.active = n

	e.faults = faults
	e.proto = nil
	e.gRound = 0
	e.downMarked = e.downMarked[:0]
	if faults != nil {
		if cap(e.crashed) < n {
			e.crashed = make([]bool, n)
		}
		e.crashed = e.crashed[:n]
		for v := range e.crashed {
			e.crashed[v] = false
		}
		if cap(e.downEdge) < g.M() {
			e.downEdge = make([]bool, g.M())
		}
		e.downEdge = e.downEdge[:g.M()]
		for i := range e.downEdge {
			e.downEdge[i] = false
		}
	}

	if cap(e.nodes) < n {
		e.nodes = make([]Node, n)
	}
	e.nodes = e.nodes[:n]
	if cap(e.alive) < n {
		e.alive = make([]bool, n)
	}
	e.alive = e.alive[:n]
	if cap(e.inboxes) < n {
		e.inboxes = make([][]Message, n)
	}
	e.inboxes = e.inboxes[:n]
	if cap(e.inboxArena) < n {
		e.inboxArena = make([][]uint64, n)
	}
	e.inboxArena = e.inboxArena[:n]
	if cap(e.revPort) < n {
		e.revPort = make([][]int32, n)
	}
	e.revPort = e.revPort[:n]
	if cap(e.edgeLoad2) < 2*g.M() {
		e.edgeLoad2 = make([]int32, 2*g.M())
	}
	e.edgeLoad2 = e.edgeLoad2[:2*g.M()]
	for i := range e.edgeLoad2 {
		e.edgeLoad2[i] = 0
	}

	// Degree prefix sums, then one slab per arc-indexed structure: outbox
	// slots, reverse ports, and inbox headers are carved per node from
	// three contiguous allocations. At n=10⁶ the old per-node make calls
	// were ~4 million allocations on a cold engine; the slabs are three
	// (plus the prefix table), and pooled runs reuse them wholesale.
	if cap(e.portOff) < n+1 {
		e.portOff = make([]int32, n+1)
	}
	e.portOff = e.portOff[:n+1]
	total := 0
	for v := 0; v < n; v++ {
		e.portOff[v] = int32(total)
		total += len(g.Adj(v))
	}
	e.portOff[n] = int32(total)
	if cap(e.outSlab) < total {
		e.outSlab = make([]outSlot, total)
	}
	e.outSlab = e.outSlab[:total]
	if cap(e.revSlab) < total {
		e.revSlab = make([]int32, total)
	}
	e.revSlab = e.revSlab[:total]
	if cap(e.inboxSlab) < total {
		e.inboxSlab = make([]Message, total)
	}
	e.inboxSlab = e.inboxSlab[:total]

	// Reverse ports: for edge {u,v} with ports pu (at u) and pv (at v),
	// revPort[u][pu] = pv and revPort[v][pv] = pu. Computed in one sweep:
	// the ascending vertex scan visits each edge first from its smaller
	// endpoint, so the staging slot only needs the first port, and the
	// first endpoint is recovered as Other(edge, v).
	stage := g.AcquireScratch() // edge ID -> port at the first-seen endpoint
	for v := 0; v < n; v++ {
		adj := g.Adj(v)
		lo, hi := e.portOff[v], e.portOff[v+1]
		e.revPort[v] = e.revSlab[lo:hi:hi]
		// Inbox headers start empty (round 1 must see no stale messages)
		// with capacity for one message per port — the per-round maximum.
		e.inboxes[v] = e.inboxSlab[lo:lo:hi]
		nd := &e.nodes[v]
		*nd = Node{
			ID:        v,
			NumV:      n,
			ports:     adj,
			eng:       e,
			out:       e.outSlab[lo:hi:hi],
			sendArena: nd.sendArena[:0],
			resume:    nd.resume,
			yield:     nd.yield,
		}
		nd.clearOut() // the slab may hold another run's stale has flags
		e.alive[v] = true
	}
	for v := 0; v < n; v++ {
		for p, a := range g.Adj(v) {
			if fp, ok := stage.Get(a.ID); ok {
				fv := g.Other(a.ID, v)
				e.revPort[v][p] = fp
				e.revPort[fv][fp] = int32(p)
			} else {
				stage.Set(a.ID, int32(p))
			}
		}
	}
	g.ReleaseScratch(stage)

	// Shards: one contiguous range per worker.
	e.workers = runtime.GOMAXPROCS(0)
	if e.workers > n {
		e.workers = n
	}
	if e.workers < 1 {
		e.workers = 1
	}
	if cap(e.bounds) < e.workers+1 {
		e.bounds = make([]int, e.workers+1)
	}
	e.bounds = e.bounds[:e.workers+1]
	for s := 0; s <= e.workers; s++ {
		e.bounds[s] = s * n / e.workers
	}
	if cap(e.shardWork) < e.workers {
		e.shardWork = make([]shardResult, e.workers)
	}
	e.shardWork = e.shardWork[:e.workers]
	e.taskCh = make(chan int, e.workers)
}

// Run executes the blocking-API protocol f at every node of g until all
// nodes return.
func Run(g *graph.Graph, f NodeFunc, opts Options) (Stats, error) {
	return run(g, f, nil, opts)
}

// RunSync executes a round-driven protocol: proto is called once per node
// to build its state and per-round callback, then the engine drives rounds
// until every callback has returned false. Semantics (rounds, bandwidth,
// statistics, determinism) are identical to Run; only the control transfer
// differs — no node goroutines exist, so a node-round costs a function
// call.
func RunSync(g *graph.Graph, proto SyncProtocol, opts Options) (Stats, error) {
	return run(g, nil, proto, opts)
}

func run(g *graph.Graph, f NodeFunc, proto SyncProtocol, opts Options) (Stats, error) {
	n := g.N()
	if err := opts.validate(n, g.M(), proto == nil); err != nil {
		return Stats{}, err
	}
	bw := opts.Bandwidth
	if bw == 0 {
		words := 2
		for (1 << (16 * words)) < n {
			words++
		}
		bw = 64 * words
	}
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		maxRounds = 64*n + 1024
	}
	e := enginePool.Get().(*engine)
	e.prepare(g, bw, maxRounds, opts.Faults)
	e.onRound = opts.OnRound
	if n == 0 {
		enginePool.Put(e)
		return Stats{}, nil
	}

	// Fixed worker pool: workers pull shard indexes and run the current
	// phase function until the task channel closes.
	var poolWg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		poolWg.Add(1)
		go func() {
			defer poolWg.Done()
			for s := range e.taskCh {
				e.phaseFn(s)
				e.phaseWg.Done()
			}
		}()
	}
	var nodeWg sync.WaitGroup
	if proto != nil {
		// Round-driven mode: build per-node state; no goroutines.
		e.proto = proto // retained: wiped crash restarts rebuild through it
		for v := 0; v < n; v++ {
			e.nodes[v].fn = proto(&e.nodes[v])
		}
	} else {
		// Blocking mode: node coroutines, parked until their shard worker
		// hands them the baton. The handoff channels exist only here —
		// round-driven runs never pay the 2n channel allocations.
		for v := 0; v < n; v++ {
			nodeWg.Add(1)
			nd := &e.nodes[v]
			if nd.resume == nil {
				nd.resume = make(chan struct{})
				nd.yield = make(chan struct{})
			}
			go func() {
				defer nodeWg.Done()
				<-nd.resume
				f(nd)
				// Exiting: discard queued sends and yield one final time;
				// the node occupies (silently) one compute slot this round.
				nd.clearOut()
				nd.exited = true
				nd.yield <- struct{}{}
			}()
		}
	}

	for e.active > 0 {
		if e.faults != nil {
			e.updateFaults(e.stats.Rounds + 1)
		}
		e.runPhase(e.computeShard)
		for s := range e.shardWork {
			e.active -= e.shardWork[s].exited
			e.stats.CrashedRounds += e.shardWork[s].crashedRounds
		}
		if !e.failed() {
			e.runPhase(e.deliverShard)
			anyMsg := false
			roundMsgs, roundBits := 0, 0
			for s := range e.shardWork {
				roundMsgs += e.shardWork[s].messages
				roundBits += e.shardWork[s].bits
				e.stats.Dropped += e.shardWork[s].dropped
				e.stats.DownDrops += e.shardWork[s].downDrops
				e.stats.CrashDrops += e.shardWork[s].crashDrops
				anyMsg = anyMsg || e.shardWork[s].anyMsg
			}
			e.stats.Messages += roundMsgs
			e.stats.TotalBits += roundBits
			if anyMsg {
				e.stats.LastActiveRound = e.stats.Rounds + 1
			}
			if e.onRound != nil {
				e.onRound(RoundProbe{
					Round:    e.stats.Rounds + 1,
					Messages: roundMsgs,
					Bits:     roundBits,
					Active:   e.active,
				})
			}
		}
		e.stats.Rounds++
		if e.stats.Rounds > e.maxRounds {
			e.fail(fmt.Errorf("congest: exceeded %d rounds", e.maxRounds))
		}
	}
	nodeWg.Wait()
	close(e.taskCh)
	poolWg.Wait()

	// Edge load counts both directions of an edge together.
	for id := 0; id < g.M(); id++ {
		if both := int(e.edgeLoad2[2*id] + e.edgeLoad2[2*id+1]); both > e.stats.MaxEdgeLoad {
			e.stats.MaxEdgeLoad = both
		}
	}
	stats, err := e.stats, e.err
	enginePool.Put(e)
	if err != nil {
		return stats, fmt.Errorf("%w: %v", ErrAborted, err)
	}
	return stats, nil
}

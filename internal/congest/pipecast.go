package congest

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// This file implements the pipelined multi-token tree communication layer:
// Pipecast streams k tagged tokens up a rooted spanning tree to the root in
// O(height + k) measured rounds (one token per tree edge per round, per-tag
// combining on the way up), and PipeBroadcast streams k tokens from the
// root down to every vertex in the same bound. Pipelined tree aggregation
// is exactly the primitive the paper's Part-Wise Aggregation theorem
// reduces to; before this layer existed the repo booked three call sites —
// the block-priority bootstrap, the per-guess block-count sums of the cap
// search, and the SSSP self-sufficient Borůvka decomposition — as modeled
// pipelined-convergecast charges instead of running them.
//
// Protocol shape (convergecast). Every vertex owns a sorted list of the
// distinct tags present in its subtree; its emission schedule is exactly
// that list, in ascending tag order, one token per round over its parent
// edge. A tag's value is final at a vertex once every child has streamed
// past the tag (children emit in the same ascending order, so "past" is
// one monotone frontier pointer per child); the vertex then forwards the
// combined value. All protocol state — tag lists, accumulators, per-child
// frontiers — lives in preallocated CSR slabs indexed by node ID and every
// node shares one RoundFunc, so a round allocates nothing. The subtree tag
// lists are environment-provided setup state (the same convention as the
// child counts treeCombine precomputed and the channel CSR AggregateMin
// builds); a deployment would replace them with one extra DONE token per
// edge without changing the asymptotics.
//
// Round bound: a vertex at height h emits its i-th token (0-based) no
// later than round h + i + 1, by induction — its children sit at height
// ≤ h-1 and have at most i+1 tokens at or below the tag, so the last
// arrives by round (h-1) + (i+1) + 1 and is folded in time. The root
// therefore holds all k combined values after height + k rounds, and the
// pipelined run beats k sequential convergecasts (k·O(height)) whenever
// k ≥ 2 and the tree is not a star.

// Token is one tagged 64-bit contribution (or broadcast item). Tags are
// dense indices — part IDs, fragment IDs — and values are whatever the
// combiner folds (counts, sums, order-encoded edges).
type Token struct {
	Tag   int32
	Value uint64
}

// Combiner folds two same-tag values. Fold must be commutative and
// associative with Identity as neutral element (Fold(Identity, x) = x):
// the convergecast folds children in arrival order.
type Combiner struct {
	Name     string
	Identity uint64
	Fold     func(a, b uint64) uint64
}

// The standard combiners. CombineCount is CombineSum under the convention
// that every contribution carries value 1 (it counts contributors).
var (
	CombineSum = Combiner{Name: "sum", Identity: 0, Fold: func(a, b uint64) uint64 { return a + b }}
	CombineMax = Combiner{Name: "max", Identity: 0, Fold: func(a, b uint64) uint64 {
		if b > a {
			return b
		}
		return a
	}}
	CombineMin = Combiner{Name: "min", Identity: math.MaxUint64, Fold: func(a, b uint64) uint64 {
		if b < a {
			return b
		}
		return a
	}}
	CombineCount = Combiner{Name: "count", Identity: 0, Fold: func(a, b uint64) uint64 { return a + b }}
)

// PipecastBudget is the framework's round charge for one pipelined
// k-token tree convergecast: every token climbs at most height levels and
// each tree edge serializes at most k tokens — O(height + k), the
// Part-Wise Aggregation pipelining bound. The symmetric broadcast down
// has the same budget, so a full bootstrap (counts up, ranking down)
// charges twice this.
func PipecastBudget(t *graph.Tree, k int) int {
	return t.Height() + k + 2
}

// PipecastResult reports a pipelined convergecast run.
type PipecastResult struct {
	// Values holds, per tag, the combined value at the root (Identity
	// where no contribution carried the tag).
	Values []uint64
	// Present marks tags that received at least one contribution.
	Present []bool
	Stats   Stats
	// EffectiveRounds is the round of the last token delivery — the
	// measured O(height + k) quantity (≤ Height + k + 1, tested).
	EffectiveRounds int
}

// Pipecast streams every vertex's tagged contributions up the tree to the
// root, combining same-tag values with comb, one token per tree edge per
// round. contrib[v] may be unsorted and may repeat tags (repeats fold
// locally first); the slices are never mutated. Tags must lie in
// [0, numTags). The root's per-tag results are validated against the
// sequential fold — a mismatch is an engine bug, reported as an error.
func Pipecast(t *graph.Tree, numTags int, contrib [][]Token, comb Combiner) (*PipecastResult, error) {
	return pipecastOpts(t, numTags, contrib, comb, Options{})
}

// pipecastOpts is Pipecast under explicit engine options — the resilient
// retry layer passes a fault plan and a per-attempt round budget through
// here (opts.MaxRounds of 0 selects the protocol's own default). All slab
// state is built per call, so a retried attempt starts from scratch.
func pipecastOpts(t *graph.Tree, numTags int, contrib [][]Token, comb Combiner, opts Options) (*PipecastResult, error) {
	g := t.G
	n := g.N()
	if len(contrib) != n {
		return nil, fmt.Errorf("congest: pipecast %d contribution lists for %d vertices", len(contrib), n)
	}
	if numTags < 0 {
		return nil, fmt.Errorf("congest: pipecast negative tag space %d", numTags)
	}
	for v, toks := range contrib {
		for _, tok := range toks {
			if tok.Tag < 0 || int(tok.Tag) >= numTags {
				return nil, fmt.Errorf("congest: pipecast vertex %d tag %d outside [0, %d)", v, tok.Tag, numTags)
			}
		}
	}
	// Sequential ground truth for the end-of-run validation.
	want := make([]uint64, numTags)
	present := make([]bool, numTags)
	for i := range want {
		want[i] = comb.Identity
	}
	for _, toks := range contrib {
		for _, tok := range toks {
			want[tok.Tag] = comb.Fold(want[tok.Tag], tok.Value)
			present[tok.Tag] = true
		}
	}

	// Per-vertex sorted distinct subtree tag lists plus accumulators
	// initialized to the vertex's own folded contribution. Children
	// precede parents in reverse BFS order, so one bottom-up sweep merges
	// each child's final list into its parent's.
	lists := make([][]int32, n)
	var scratch []int32
	for oi := n - 1; oi >= 0; oi-- {
		v := t.Order[oi]
		scratch = scratch[:0]
		for _, tok := range contrib[v] {
			scratch = append(scratch, tok.Tag)
		}
		for _, c := range t.Children[v] {
			scratch = append(scratch, lists[c]...)
		}
		sort.Slice(scratch, func(a, b int) bool { return scratch[a] < scratch[b] })
		list := make([]int32, 0, len(scratch))
		for i, tg := range scratch {
			if i == 0 || tg != scratch[i-1] {
				list = append(list, tg)
			}
		}
		lists[v] = list
	}

	// CSR slabs: tag lists and accumulators share offsets; per-child slot
	// state (delivered counts, frontier indices into the parent's list)
	// lives in a second CSR keyed by (vertex, child port).
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(len(lists[v]))
	}
	tags := make([]int32, off[n])
	acc := make([]uint64, off[n])
	for v := 0; v < n; v++ {
		row := tags[off[v]:off[v+1]]
		copy(row, lists[v])
		arow := acc[off[v]:off[v+1]]
		for i := range arow {
			arow[i] = comb.Identity
		}
		for _, tok := range contrib[v] {
			i := sort.Search(len(row), func(j int) bool { return row[j] >= tok.Tag })
			arow[i] = comb.Fold(arow[i], tok.Value)
		}
	}
	// Child slots: slot s of vertex v covers one tree child; portSlot maps
	// an adjacency port to its slot (or -1). frontier[s] is the index in
	// v's tag list of the child's next-undelivered tag (len(list) once the
	// child's stream is exhausted); delivered[s] counts receipts.
	slotOff := make([]int32, n+1)
	for v := 0; v < n; v++ {
		slotOff[v+1] = slotOff[v] + int32(len(t.Children[v]))
	}
	portSlot := make([]int32, 0, 2*g.M())
	portOff := make([]int32, n+1)
	slotChild := make([]int32, slotOff[n])
	frontier := make([]int32, slotOff[n])
	delivered := make([]int32, slotOff[n])
	for v := 0; v < n; v++ {
		portOff[v+1] = portOff[v] + int32(g.Degree(v))
		next := slotOff[v]
		for _, a := range g.Adj(v) {
			if t.Parent[a.To] == v && t.ParentEdge[a.To] == a.ID {
				slotChild[next] = int32(a.To)
				// First frontier: where the child's first tag sits in v's
				// list (every child tag appears there by construction).
				if len(lists[a.To]) == 0 {
					frontier[next] = int32(len(lists[v]))
				} else {
					row := lists[v]
					frontier[next] = int32(sort.Search(len(row), func(j int) bool { return row[j] >= lists[a.To][0] }))
				}
				portSlot = append(portSlot, next)
				next++
			} else {
				portSlot = append(portSlot, -1)
			}
		}
	}
	parentPort := make([]int32, n)
	for v := 0; v < n; v++ {
		parentPort[v] = -1
		for port, a := range g.Adj(v) {
			if a.ID == t.ParentEdge[v] && a.To == t.Parent[v] {
				parentPort[v] = int32(port)
				break
			}
		}
	}
	nextEmit := make([]int32, n)

	root := t.Root
	step := func(nd *Node, msgs []Message) bool {
		v := nd.ID
		myOff, myLen := off[v], off[v+1]-off[v]
		for _, m := range msgs {
			s := portSlot[portOff[v]+int32(m.Port)]
			if s == -1 {
				//lint:allow hotalloc terminal engine-abort path: the Errorf boxing happens only when the run is already failing
				nd.eng.fail(fmt.Errorf("congest: pipecast token on non-child port %d at node %d", m.Port, v))
				return false
			}
			tg := int32(m.Payload[0])
			idx := frontier[s]
			if idx >= myLen || tags[myOff+idx] != tg {
				//lint:allow hotalloc terminal engine-abort path: the Errorf boxing happens only when the run is already failing
				nd.eng.fail(fmt.Errorf("congest: pipecast node %d got tag %d out of schedule", v, tg))
				return false
			}
			acc[myOff+idx] = comb.Fold(acc[myOff+idx], m.Payload[1])
			delivered[s]++
			c := slotChild[s]
			clist := lists[c]
			if int(delivered[s]) == len(clist) {
				frontier[s] = myLen
			} else {
				cn := clist[delivered[s]]
				fr := idx + 1
				for tags[myOff+fr] < cn {
					fr++
				}
				frontier[s] = fr
			}
		}
		if v == root {
			for s := slotOff[v]; s < slotOff[v+1]; s++ {
				if frontier[s] < myLen {
					return true
				}
			}
			return false
		}
		if nextEmit[v] >= myLen {
			return false // stream exhausted (implies all children done)
		}
		minF := myLen
		for s := slotOff[v]; s < slotOff[v+1]; s++ {
			if frontier[s] < minF {
				minF = frontier[s]
			}
		}
		if nextEmit[v] < minF {
			i := nextEmit[v]
			nd.Send(int(parentPort[v]), Words{uint64(tags[myOff+i]), acc[myOff+i]})
			nextEmit[v]++
		}
		return true
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = t.Height() + numTags + 64
	}
	stats, err := RunSync(g, func(*Node) RoundFunc { return step }, opts)
	if err != nil {
		return nil, err
	}
	res := &PipecastResult{
		Values:          make([]uint64, numTags),
		Present:         present,
		Stats:           stats,
		EffectiveRounds: stats.LastActiveRound,
	}
	for i := range res.Values {
		res.Values[i] = comb.Identity
	}
	rrow := tags[off[root]:off[root+1]]
	for i, tg := range rrow {
		res.Values[tg] = acc[off[root]+int32(i)]
	}
	for tg := 0; tg < numTags; tg++ {
		if res.Values[tg] != want[tg] {
			return nil, &IncompleteError{Protocol: "Pipecast", Rounds: stats.Rounds, Budget: opts.MaxRounds,
				Detail: fmt.Sprintf("tag %d converged to %d, sequential fold has %d", tg, res.Values[tg], want[tg])}
		}
	}
	return res, nil
}

// BroadcastResult reports a pipelined broadcast run.
type BroadcastResult struct {
	Stats Stats
	// EffectiveRounds is the round of the last token delivery — the
	// measured O(height + k) quantity.
	EffectiveRounds int
}

// PipeBroadcast streams k tokens from the root down the tree, one token
// per tree edge per round: the root emits the stream in order, every
// vertex re-emits it to all children with one round of lag, so the
// deepest vertex holds all k tokens after height + k rounds. Tokens must
// be sorted by strictly ascending tag (the convergecast's output order).
// Per-node pending state is a fixed-size ring buffer in a shared slab —
// receive and forward rates are both one token per round, so the ring
// never holds more than two tokens. Every vertex's received stream is
// validated against the input; an incomplete or reordered delivery is an
// error, never a silent partial result.
func PipeBroadcast(t *graph.Tree, tokens []Token) (*BroadcastResult, error) {
	return pipeBroadcastOpts(t, tokens, Options{})
}

// pipeBroadcastOpts is PipeBroadcast under explicit engine options (see
// pipecastOpts); slab state is rebuilt per call so retries start clean.
func pipeBroadcastOpts(t *graph.Tree, tokens []Token, opts Options) (*BroadcastResult, error) {
	g := t.G
	n := g.N()
	k := len(tokens)
	for i := 1; i < k; i++ {
		if tokens[i].Tag <= tokens[i-1].Tag {
			return nil, fmt.Errorf("congest: broadcast tokens not in ascending tag order at %d", i)
		}
	}
	const ringCap = 4 // receive ≤1/round, forward 1/round: depth ≤ 2
	ringTag := make([]int32, ringCap*n)
	ringVal := make([]uint64, ringCap*n)
	head := make([]int32, n) // index of oldest pending token
	count := make([]int32, n)
	recvd := make([]int32, n) // tokens received so far (root: k)
	sent := make([]int32, n)  // tokens forwarded to children so far
	childPorts := make([]int32, 0, n)
	childOff := make([]int32, n+1)
	parentPortOf := make([]int32, n)
	for v := 0; v < n; v++ {
		parentPortOf[v] = -1
		for port, a := range g.Adj(v) {
			if a.ID == t.ParentEdge[v] && a.To == t.Parent[v] {
				parentPortOf[v] = int32(port)
			}
			if t.Parent[a.To] == v && t.ParentEdge[a.To] == a.ID {
				childPorts = append(childPorts, int32(port))
			}
		}
		childOff[v+1] = int32(len(childPorts))
	}
	root := t.Root
	recvd[root] = int32(k)
	step := func(nd *Node, msgs []Message) bool {
		v := nd.ID
		numChild := childOff[v+1] - childOff[v]
		for _, m := range msgs {
			if int32(m.Port) != parentPortOf[v] {
				//lint:allow hotalloc terminal engine-abort path: the Errorf boxing happens only when the run is already failing
				nd.eng.fail(fmt.Errorf("congest: broadcast token on non-parent port %d at node %d", m.Port, v))
				return false
			}
			i := recvd[v]
			if int(i) >= k || tokens[i].Tag != int32(m.Payload[0]) || tokens[i].Value != m.Payload[1] {
				//lint:allow hotalloc terminal engine-abort path: the Errorf boxing happens only when the run is already failing
				nd.eng.fail(fmt.Errorf("congest: broadcast node %d received token out of sequence", v))
				return false
			}
			if numChild > 0 { // leaves consume; interior vertices buffer to forward
				if count[v] == ringCap {
					//lint:allow hotalloc terminal engine-abort path: the Errorf boxing happens only when the run is already failing
					nd.eng.fail(fmt.Errorf("congest: broadcast ring overflow at node %d", v))
					return false
				}
				ringTag[ringCap*v+int((head[v]+count[v])%ringCap)] = tokens[i].Tag
				ringVal[ringCap*v+int((head[v]+count[v])%ringCap)] = tokens[i].Value
				count[v]++
			}
			recvd[v]++
		}
		if numChild == 0 {
			return int(recvd[v]) < k // leaf: done once the stream arrived
		}
		if int(sent[v]) == k {
			return false // all forwarded (implies all received)
		}
		var tg int32
		var val uint64
		haveNext := false
		if v == root {
			if int(sent[v]) < k {
				tg, val = tokens[sent[v]].Tag, tokens[sent[v]].Value
				haveNext = true
			}
		} else if count[v] > 0 {
			tg = ringTag[ringCap*v+int(head[v])]
			val = ringVal[ringCap*v+int(head[v])]
			head[v] = (head[v] + 1) % ringCap
			count[v]--
			haveNext = true
		}
		if haveNext {
			for ci := childOff[v]; ci < childOff[v+1]; ci++ {
				nd.Send(int(childPorts[ci]), Words{uint64(tg), val})
			}
			sent[v]++
		}
		return true
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = t.Height() + k + 64
	}
	stats, err := RunSync(g, func(*Node) RoundFunc { return step }, opts)
	if err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		if int(recvd[v]) != k {
			return nil, &IncompleteError{Protocol: "PipeBroadcast", Rounds: stats.Rounds, Budget: opts.MaxRounds,
				Detail: fmt.Sprintf("node %d received %d of %d tokens", v, recvd[v], k)}
		}
	}
	return &BroadcastResult{Stats: stats, EffectiveRounds: stats.LastActiveRound}, nil
}

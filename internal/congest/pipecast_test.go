package congest_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
)

// randomContrib builds a random contribution set: each vertex holds 0-3
// tokens with tags in [0, numTags) (possibly repeated and unsorted).
func randomContrib(n, numTags int, rng *rand.Rand) [][]congest.Token {
	contrib := make([][]congest.Token, n)
	for v := 0; v < n; v++ {
		for j := rng.Intn(4); j > 0; j-- {
			contrib[v] = append(contrib[v], congest.Token{
				Tag:   int32(rng.Intn(numTags)),
				Value: uint64(rng.Intn(1000)),
			})
		}
	}
	return contrib
}

// foldReference computes the per-tag sequential fold.
func foldReference(numTags int, contrib [][]congest.Token, comb congest.Combiner) ([]uint64, []bool) {
	want := make([]uint64, numTags)
	present := make([]bool, numTags)
	for i := range want {
		want[i] = comb.Identity
	}
	for _, toks := range contrib {
		for _, tok := range toks {
			want[tok.Tag] = comb.Fold(want[tok.Tag], tok.Value)
			present[tok.Tag] = true
		}
	}
	return want, present
}

// TestPipecastMatchesSequentialFold: random graphs, random contributions,
// all four standard combiners — the root's values must equal the
// sequential fold and every present flag must be correct.
func TestPipecastMatchesSequentialFold(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	combs := []congest.Combiner{congest.CombineSum, congest.CombineMax, congest.CombineMin, congest.CombineCount}
	for trial := 0; trial < 8; trial++ {
		g := gen.ErdosRenyiConnected(20+rng.Intn(40), 100, rng)
		tr, err := graph.BFSTree(g, rng.Intn(g.N()))
		if err != nil {
			t.Fatal(err)
		}
		numTags := 1 + rng.Intn(12)
		contrib := randomContrib(g.N(), numTags, rng)
		comb := combs[trial%len(combs)]
		res, err := congest.Pipecast(tr, numTags, contrib, comb)
		if err != nil {
			t.Fatal(err)
		}
		want, present := foldReference(numTags, contrib, comb)
		for tg := 0; tg < numTags; tg++ {
			if res.Values[tg] != want[tg] {
				t.Fatalf("trial %d (%s) tag %d: %d want %d", trial, comb.Name, tg, res.Values[tg], want[tg])
			}
			if res.Present[tg] != present[tg] {
				t.Fatalf("trial %d tag %d: present %v want %v", trial, tg, res.Present[tg], present[tg])
			}
		}
	}
}

// TestPipecastPathBound pins the acceptance criterion: on a path, the
// pipelined convergecast of k tokens completes in at most height + k + 1
// measured rounds — the O(height + k) pipelining bound, not k·O(height).
func TestPipecastPathBound(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, tc := range []struct{ n, k int }{{64, 16}, {64, 1}, {32, 32}, {100, 8}} {
		g := gen.Path(tc.n)
		tr, err := graph.BFSTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Adversarial placement: all k tags at the far leaf, so every token
		// must travel the full height and pipelining is the only way to
		// avoid k·height rounds.
		contrib := make([][]congest.Token, tc.n)
		for tg := 0; tg < tc.k; tg++ {
			contrib[tc.n-1] = append(contrib[tc.n-1], congest.Token{Tag: int32(tg), Value: uint64(rng.Intn(100))})
		}
		res, err := congest.Pipecast(tr, tc.k, contrib, congest.CombineSum)
		if err != nil {
			t.Fatal(err)
		}
		if bound := tr.Height() + tc.k + 1; res.EffectiveRounds > bound {
			t.Fatalf("n=%d k=%d: %d effective rounds exceed height+k+1 = %d", tc.n, tc.k, res.EffectiveRounds, bound)
		}
		if res.EffectiveRounds < tr.Height() {
			t.Fatalf("n=%d k=%d: %d effective rounds below height %d — tokens cannot teleport", tc.n, tc.k, res.EffectiveRounds, tr.Height())
		}
	}
}

// TestPipecastGeneralTreeBound: the height + k + 1 bound holds on
// arbitrary trees too, with contributions scattered everywhere.
func TestPipecastGeneralTreeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 6; trial++ {
		g := gen.ErdosRenyiConnected(30+rng.Intn(50), 120, rng)
		tr, err := graph.BFSTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		numTags := 1 + rng.Intn(20)
		contrib := randomContrib(g.N(), numTags, rng)
		res, err := congest.Pipecast(tr, numTags, contrib, congest.CombineMin)
		if err != nil {
			t.Fatal(err)
		}
		if bound := tr.Height() + numTags + 1; res.EffectiveRounds > bound {
			t.Fatalf("trial %d: %d effective rounds exceed height+k+1 = %d", trial, res.EffectiveRounds, bound)
		}
	}
}

// TestPipecastOneTokenPerEdgePerRound: the protocol's bandwidth discipline
// — at most one token crosses any edge in any round (MaxEdgeLoad counts
// both directions, and tokens only flow up).
func TestPipecastOneTokenPerEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g := gen.ErdosRenyiConnected(40, 90, rng)
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	contrib := randomContrib(g.N(), 10, rng)
	res, err := congest.Pipecast(tr, 10, contrib, congest.CombineSum)
	if err != nil {
		t.Fatal(err)
	}
	// Total messages = sum over non-root vertices of distinct subtree tags;
	// each of those tokens crosses one tree edge once.
	if res.Stats.MaxEdgeLoad > res.Stats.Rounds {
		t.Fatalf("edge load %d exceeds rounds %d: some edge carried two tokens in a round", res.Stats.MaxEdgeLoad, res.Stats.Rounds)
	}
}

// TestPipecastErrors: malformed inputs are explicit errors.
func TestPipecastErrors(t *testing.T) {
	g := gen.Path(4)
	tr, _ := graph.BFSTree(g, 0)
	if _, err := congest.Pipecast(tr, 2, make([][]congest.Token, 3), congest.CombineSum); err == nil {
		t.Fatal("accepted short contribution list")
	}
	bad := make([][]congest.Token, 4)
	bad[1] = []congest.Token{{Tag: 5, Value: 1}}
	if _, err := congest.Pipecast(tr, 2, bad, congest.CombineSum); err == nil {
		t.Fatal("accepted out-of-range tag")
	}
	neg := make([][]congest.Token, 4)
	neg[0] = []congest.Token{{Tag: -1, Value: 1}}
	if _, err := congest.Pipecast(tr, 2, neg, congest.CombineSum); err == nil {
		t.Fatal("accepted negative tag")
	}
}

// TestPipecastEmptyTagSpace: zero tags is a legal degenerate run.
func TestPipecastEmptyTagSpace(t *testing.T) {
	g := gen.Path(5)
	tr, _ := graph.BFSTree(g, 0)
	res, err := congest.Pipecast(tr, 0, make([][]congest.Token, 5), congest.CombineSum)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 0 || res.Stats.Messages != 0 {
		t.Fatalf("degenerate run produced %d values, %d messages", len(res.Values), res.Stats.Messages)
	}
}

// TestPipeBroadcastDelivers: every vertex receives the full stream within
// the height + k + 1 bound.
func TestPipeBroadcastDelivers(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 6; trial++ {
		g := gen.ErdosRenyiConnected(20+rng.Intn(40), 100, rng)
		tr, err := graph.BFSTree(g, rng.Intn(g.N()))
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + rng.Intn(16)
		tokens := make([]congest.Token, k)
		for i := range tokens {
			tokens[i] = congest.Token{Tag: int32(i), Value: uint64(rng.Intn(1000))}
		}
		res, err := congest.PipeBroadcast(tr, tokens)
		if err != nil {
			t.Fatal(err)
		}
		if bound := tr.Height() + k + 1; res.EffectiveRounds > bound {
			t.Fatalf("trial %d: %d effective rounds exceed height+k+1 = %d", trial, res.EffectiveRounds, bound)
		}
	}
}

// TestPipeBroadcastRejectsUnsorted: the stream contract (strictly
// ascending tags) is validated up front.
func TestPipeBroadcastRejectsUnsorted(t *testing.T) {
	g := gen.Path(4)
	tr, _ := graph.BFSTree(g, 0)
	if _, err := congest.PipeBroadcast(tr, []congest.Token{{Tag: 2}, {Tag: 1}}); err == nil {
		t.Fatal("accepted descending tags")
	}
	if _, err := congest.PipeBroadcast(tr, []congest.Token{{Tag: 1}, {Tag: 1}}); err == nil {
		t.Fatal("accepted duplicate tags")
	}
}

// TestPipecastIdenticalAcrossGOMAXPROCS: the pipelined protocol's full
// observable result — values, presence, stats, effective rounds — is
// byte-identical across scheduler parallelism (run under -race in CI, this
// also checks the slab state against concurrent shard writes).
func TestPipecastIdenticalAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	g := gen.Wheel(65).G
	tr, err := graph.BFSTree(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	const numTags = 9
	contrib := randomContrib(g.N(), numTags, rng)
	run := func() string {
		res, err := congest.Pipecast(tr, numTags, contrib, congest.CombineMin)
		if err != nil {
			t.Fatal(err)
		}
		tokens := make([]congest.Token, 0, numTags)
		for tg := 0; tg < numTags; tg++ {
			if res.Present[tg] {
				tokens = append(tokens, congest.Token{Tag: int32(tg), Value: res.Values[tg]})
			}
		}
		bres, err := congest.PipeBroadcast(tr, tokens)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v %v %d %+v | %d %+v",
			res.Values, res.Present, res.EffectiveRounds, res.Stats, bres.EffectiveRounds, bres.Stats)
	}
	prev := runtime.GOMAXPROCS(1)
	one := run()
	runtime.GOMAXPROCS(8)
	eight := run()
	runtime.GOMAXPROCS(prev)
	if one != eight {
		t.Fatalf("pipecast results differ:\nGOMAXPROCS=1: %s\nGOMAXPROCS=8: %s", one, eight)
	}
}

// decodeTokens turns fuzz bytes into a per-vertex token layout on a fixed
// n-vertex tree: triples of (vertex, tag, value) bytes, tags in [0, 8) so
// tag collisions — the merging case — are common.
func decodeTokens(data []byte, n int) [][]congest.Token {
	contrib := make([][]congest.Token, n)
	for i := 0; i+2 < len(data); i += 3 {
		v := int(data[i]) % n
		contrib[v] = append(contrib[v], congest.Token{
			Tag:   int32(data[i+1] % 8),
			Value: uint64(data[i+2]),
		})
	}
	return contrib
}

// FuzzPipecastMerge fuzzes the tag/combiner merging of the pipelined
// convergecast: arbitrary (unsorted, duplicate-heavy) per-vertex token
// lists must fold to exactly the sequential per-tag result under every
// standard combiner, must never be mutated, and the result arrays must
// not alias the input (the mergeSorted fuzzer's invariants, lifted to the
// protocol layer).
func FuzzPipecastMerge(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1})
	f.Add([]byte{1, 3, 7, 1, 3, 9, 2, 0, 0})
	f.Add([]byte{5, 7, 255, 5, 7, 255, 5, 7, 1})
	g := gen.Grid(3, 4).G
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		f.Fatal(err)
	}
	combs := []congest.Combiner{congest.CombineSum, congest.CombineMax, congest.CombineMin, congest.CombineCount}
	f.Fuzz(func(t *testing.T, data []byte) {
		contrib := decodeTokens(data, g.N())
		orig := make([][]congest.Token, len(contrib))
		for v, toks := range contrib {
			orig[v] = append([]congest.Token(nil), toks...)
		}
		for _, comb := range combs {
			res, err := congest.Pipecast(tr, 8, contrib, comb)
			if err != nil {
				t.Fatalf("%s: %v", comb.Name, err)
			}
			want, present := foldReference(8, contrib, comb)
			for tg := 0; tg < 8; tg++ {
				if res.Values[tg] != want[tg] {
					t.Fatalf("%s tag %d: %d want %d", comb.Name, tg, res.Values[tg], want[tg])
				}
				if res.Present[tg] != present[tg] {
					t.Fatalf("%s tag %d: present %v want %v", comb.Name, tg, res.Present[tg], present[tg])
				}
				if !present[tg] && res.Values[tg] != comb.Identity {
					t.Fatalf("%s tag %d: absent tag not at identity", comb.Name, tg)
				}
			}
			// Input immutability: the protocol sorts and folds internally.
			for v, toks := range contrib {
				if len(toks) != len(orig[v]) {
					t.Fatalf("vertex %d token list length mutated", v)
				}
				for i := range toks {
					if toks[i] != orig[v][i] {
						t.Fatalf("vertex %d token %d mutated: %+v vs %+v", v, i, toks[i], orig[v][i])
					}
				}
			}
		}
	})
}

// TestCombinerIdentities pins the neutral elements the pipelined layer's
// accumulators rely on (Fold(Identity, x) == x).
func TestCombinerIdentities(t *testing.T) {
	for _, comb := range []congest.Combiner{congest.CombineSum, congest.CombineMax, congest.CombineMin, congest.CombineCount} {
		for _, x := range []uint64{0, 1, 42, math.MaxUint64 - 1, math.MaxUint64} {
			if got := comb.Fold(comb.Identity, x); got != x {
				t.Fatalf("%s: Fold(identity, %d) = %d", comb.Name, x, got)
			}
			if got := comb.Fold(x, comb.Identity); got != x {
				t.Fatalf("%s: Fold(%d, identity) = %d", comb.Name, x, got)
			}
		}
	}
}

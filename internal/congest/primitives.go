package congest

import (
	"fmt"

	"repro/internal/graph"
)

// DistributedBFS builds a BFS tree from root with a classic flooding
// protocol: the root announces itself; every node adopts the first
// announcement (lowest port on ties) as its parent and forwards. Terminates
// after diamBound+2 rounds (nodes know n and an upper bound on D, per the
// CONGEST conventions in §1.3.1).
//
// Returns the parent and parent-edge arrays (as in graph.BFS) plus stats.
func DistributedBFS(g *graph.Graph, root, diamBound int) (parent, parentEdge []int, stats Stats, err error) {
	n := g.N()
	parent = make([]int, n)
	parentEdge = make([]int, n)
	type result struct {
		parent, parentEdge int
	}
	results := make([]result, n)
	f := func(nd *Node) {
		me := result{parent: -1, parentEdge: -1}
		joined := nd.ID == root
		announced := false
		for r := 0; r <= diamBound+1; r++ {
			if joined && !announced {
				nd.Broadcast(Words{uint64(nd.ID)})
				announced = true
			}
			msgs, ok := nd.Step()
			if !ok {
				return
			}
			if !joined {
				for _, m := range msgs {
					me.parent = m.From
					me.parentEdge = m.Edge
					joined = true
					break
				}
			}
		}
		results[nd.ID] = me
	}
	stats, err = Run(g, f, Options{MaxRounds: 4*diamBound + 64})
	if err != nil {
		return nil, nil, stats, err
	}
	for v := 0; v < n; v++ {
		parent[v] = results[v].parent
		parentEdge[v] = results[v].parentEdge
	}
	if parent[root] != -1 {
		return nil, nil, stats, fmt.Errorf("congest: root %d acquired a parent", root)
	}
	return parent, parentEdge, stats, nil
}

// LeaderElect elects the minimum vertex ID by flooding for diamBound rounds.
// Every node returns the same leader; used by protocols that need a root.
func LeaderElect(g *graph.Graph, diamBound int) (leader int, stats Stats, err error) {
	n := g.N()
	out := make([]int, n)
	f := func(nd *Node) {
		best := uint64(nd.ID)
		for r := 0; r < diamBound+1; r++ {
			nd.Broadcast(Words{best})
			msgs, ok := nd.Step()
			if !ok {
				return
			}
			for _, m := range msgs {
				if m.Payload[0] < best {
					best = m.Payload[0]
				}
			}
		}
		out[nd.ID] = int(best)
	}
	stats, err = Run(g, f, Options{MaxRounds: 4*diamBound + 64})
	if err != nil {
		return -1, stats, err
	}
	leader = out[0]
	for _, l := range out {
		if l != leader {
			return -1, stats, fmt.Errorf("congest: leader election disagreement: %d vs %d", l, leader)
		}
	}
	return leader, stats, nil
}

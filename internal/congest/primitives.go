package congest

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// ErrIncomplete is wrapped by protocol helpers whose run terminated without
// every node reaching the protocol's final state — a flood that did not
// cover the graph within its round bound, or a node that bailed out
// mid-protocol. Before this sentinel existed, such runs left zero-valued
// entries in the result arrays, which could masquerade as legitimate output
// (parent 0, leader 0).
var ErrIncomplete = errors.New("congest: protocol incomplete")

// DistributedBFS builds a BFS tree from root with a classic flooding
// protocol: the root announces itself; every node adopts the first
// announcement (lowest port on ties) as its parent and forwards. Terminates
// after diamBound+2 rounds (nodes know n and an upper bound on D, per the
// CONGEST conventions in §1.3.1).
//
// Returns the parent and parent-edge arrays (as in graph.BFS) plus stats.
// If diamBound is below the true eccentricity of root, the flood cannot
// reach every node and the run fails with ErrIncomplete rather than
// returning a partial tree.
func DistributedBFS(g *graph.Graph, root, diamBound int) (parent, parentEdge []int, stats Stats, err error) {
	n := g.N()
	if root < 0 || root >= n {
		return nil, nil, stats, fmt.Errorf("congest: BFS root %d out of range for %d nodes", root, n)
	}
	if diamBound <= 0 {
		// A non-positive bound cannot cover even a single hop; before this
		// guard the flood ran zero useful rounds and surfaced the confusing
		// ErrIncomplete (or, on a single vertex, silently succeeded).
		return nil, nil, stats, fmt.Errorf("congest: BFS diameter bound %d must be positive", diamBound)
	}
	parent = make([]int, n)
	parentEdge = make([]int, n)
	type result struct {
		parent, parentEdge int
		done               bool
	}
	// Pre-filled with explicit sentinels: a node that bails mid-protocol
	// must read as "no parent, not done", never as "parent 0".
	results := make([]result, n)
	for v := range results {
		results[v] = result{parent: -1, parentEdge: -1}
	}
	f := func(nd *Node) {
		me := result{parent: -1, parentEdge: -1}
		joined := nd.ID == root
		announced := false
		for r := 0; r <= diamBound+1; r++ {
			if joined && !announced {
				nd.Broadcast(Words{uint64(nd.ID)})
				announced = true
			}
			msgs, ok := nd.Step()
			if !ok {
				return
			}
			if !joined {
				for _, m := range msgs {
					me.parent = m.From
					me.parentEdge = m.Edge
					joined = true
					break
				}
			}
		}
		me.done = true
		results[nd.ID] = me
	}
	stats, err = Run(g, f, Options{MaxRounds: 4*diamBound + 64})
	if err != nil {
		return nil, nil, stats, err
	}
	for v := 0; v < n; v++ {
		if !results[v].done {
			return nil, nil, stats, &IncompleteError{Protocol: "BFS", Rounds: stats.Rounds, Budget: diamBound + 2,
				Detail: fmt.Sprintf("node %d bailed before round %d", v, diamBound+2)}
		}
		if v != root && results[v].parent == -1 {
			return nil, nil, stats, &IncompleteError{Protocol: "BFS", Rounds: stats.Rounds, Budget: diamBound + 2,
				Detail: fmt.Sprintf("flood from %d missed node %d within diamBound %d", root, v, diamBound)}
		}
		parent[v] = results[v].parent
		parentEdge[v] = results[v].parentEdge
	}
	if parent[root] != -1 {
		return nil, nil, stats, fmt.Errorf("congest: root %d acquired a parent", root)
	}
	return parent, parentEdge, stats, nil
}

// LeaderElect elects the minimum vertex ID by flooding for diamBound rounds.
// Every node returns the same leader; used by protocols that need a root.
// A node that fails to finish the protocol surfaces as ErrIncomplete instead
// of a zero-valued vote (which would masquerade as a vote for leader 0).
func LeaderElect(g *graph.Graph, diamBound int) (leader int, stats Stats, err error) {
	n := g.N()
	if n == 0 {
		return -1, stats, fmt.Errorf("congest: leader election over an empty network")
	}
	if diamBound <= 0 {
		// Zero or negative bounds used to fall through to a zero-round
		// flood whose unanimous self-votes masqueraded as an election.
		return -1, stats, fmt.Errorf("congest: leader election diameter bound %d must be positive", diamBound)
	}
	out := make([]int, n)
	for v := range out {
		out[v] = -1 // sentinel: no vote recorded
	}
	f := func(nd *Node) {
		best := uint64(nd.ID)
		for r := 0; r < diamBound+1; r++ {
			nd.Broadcast(Words{best})
			msgs, ok := nd.Step()
			if !ok {
				return
			}
			for _, m := range msgs {
				if m.Payload[0] < best {
					best = m.Payload[0]
				}
			}
		}
		out[nd.ID] = int(best)
	}
	stats, err = Run(g, f, Options{MaxRounds: 4*diamBound + 64})
	if err != nil {
		return -1, stats, err
	}
	leader = out[0]
	for v, l := range out {
		if l == -1 {
			return -1, stats, &IncompleteError{Protocol: "LeaderElect", Rounds: stats.Rounds, Budget: diamBound + 1,
				Detail: fmt.Sprintf("node %d bailed before voting", v)}
		}
		if l != leader {
			return -1, stats, fmt.Errorf("congest: leader election disagreement: %d vs %d", l, leader)
		}
	}
	return leader, stats, nil
}

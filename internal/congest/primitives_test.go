package congest_test

import (
	"errors"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Regression: DistributedBFS with a diameter bound below the true
// eccentricity used to return a partial tree (unreached nodes with parent
// -1) and a nil error — silent success on an incomplete flood. It must
// surface ErrIncomplete instead.
func TestDistributedBFSUnderestimatedDiamBound(t *testing.T) {
	g := gen.Path(64) // eccentricity of vertex 0 is 63
	parent, parentEdge, _, err := congest.DistributedBFS(g, 0, 4)
	if err == nil {
		t.Fatalf("want error for diamBound 4 on a 64-path, got parent=%v", parent[:8])
	}
	if !errors.Is(err, congest.ErrIncomplete) {
		t.Fatalf("want ErrIncomplete, got %v", err)
	}
	if parent != nil || parentEdge != nil {
		t.Fatalf("partial results leaked alongside the error")
	}
}

// Regression: LeaderElect on an empty network used to panic indexing
// out[0]; it must return an error.
func TestLeaderElectEmptyNetwork(t *testing.T) {
	_, _, err := congest.LeaderElect(graph.New(0), 4)
	if err == nil {
		t.Fatal("want error for empty network")
	}
}

// A tight-but-sufficient diameter bound still succeeds and matches the
// sequential BFS depths (guards the fix against over-strictness).
func TestDistributedBFSExactDiamBound(t *testing.T) {
	g := gen.Path(32)
	parent, _, _, err := congest.DistributedBFS(g, 0, 31)
	if err != nil {
		t.Fatal(err)
	}
	ref := graph.BFS(g, 0)
	for v := 1; v < g.N(); v++ {
		if ref.Dist[v] != ref.Dist[parent[v]]+1 {
			t.Fatalf("vertex %d: parent %d not one level up", v, parent[v])
		}
	}
}

// Regression: a non-positive diameter bound used to fall through to the
// flood loops — DistributedBFS ran a zero-round flood and reported every
// node missed (a confusing ErrIncomplete, or silent success on a single
// vertex), and LeaderElect's unanimous self-votes masqueraded as an
// election on a single vertex. Both must reject diamBound <= 0 up front
// with an explicit validation error, not ErrIncomplete.
func TestRejectNonPositiveDiamBound(t *testing.T) {
	g := gen.Path(8)
	single := gen.Path(1)
	for _, diamBound := range []int{0, -1, -100} {
		if _, _, _, err := congest.DistributedBFS(g, 0, diamBound); err == nil {
			t.Fatalf("DistributedBFS accepted diamBound %d", diamBound)
		} else if errors.Is(err, congest.ErrIncomplete) {
			t.Fatalf("DistributedBFS diamBound %d: want a validation error, got ErrIncomplete: %v", diamBound, err)
		}
		if _, _, _, err := congest.DistributedBFS(single, 0, diamBound); err == nil {
			t.Fatalf("DistributedBFS on a single vertex accepted diamBound %d", diamBound)
		}
		if _, _, err := congest.LeaderElect(g, diamBound); err == nil {
			t.Fatalf("LeaderElect accepted diamBound %d", diamBound)
		}
		if leader, _, err := congest.LeaderElect(single, diamBound); err == nil {
			t.Fatalf("LeaderElect on a single vertex accepted diamBound %d (leader %d)", diamBound, leader)
		}
	}
	// Positive bounds still work, including the degenerate single vertex.
	if leader, _, err := congest.LeaderElect(single, 1); err != nil || leader != 0 {
		t.Fatalf("LeaderElect(single, 1) = %d, %v", leader, err)
	}
	if _, _, _, err := congest.DistributedBFS(single, 0, 1); err != nil {
		t.Fatalf("DistributedBFS(single, 1): %v", err)
	}
}

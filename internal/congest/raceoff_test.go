//go:build !race

package congest_test

// raceEnabled reports whether the race detector instruments this build
// (see raceon_test.go).
const raceEnabled = false

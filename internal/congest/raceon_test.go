//go:build race

package congest_test

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count pins skip under it: instrumentation changes escape
// analysis and adds runtime bookkeeping objects, so AllocsPerRun counts
// are inflated and meaningless against the plain-build ceilings.
const raceEnabled = true

package congest

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// RelaxResult reports a distance-relaxation run.
type RelaxResult struct {
	// Dist is the per-vertex best-known distance when the round budget ran
	// out: the pointwise minimum over channel-graph paths of
	// init[u] + Σ weights along the path.
	Dist  []float64
	Stats Stats
	// EffectiveRounds is the number of rounds until the relaxation flood
	// went quiet. The run executes a fixed budget (nodes cannot detect
	// global quiescence), so Stats.Rounds exceeds this.
	EffectiveRounds int
	Budget          int
}

// RelaxPartwise runs one phase of part-wise distance relaxation: starting
// from the tentative distances init (+Inf for "unknown"), it floods
// improved distances along each part's induced edges plus its shortcut
// edges until every vertex holds the channel-graph fixed point
//
//	dist(v) = min over channel-graph paths u⇝v of init(u) + Σ weights(e).
//
// This is the SSSP analogue of the part-wise aggregation subproblem: one
// (part, distance) message per channel per round, so congested shortcut
// edges serialize exactly as the congestion parameter predicts, and the
// effective round count is the quantity the framework bounds by
// Õ(quality). Weights are indexed by edge ID (typically the (1+ε)-rounded
// weights of the SSSP pipeline) and must be non-negative; both endpoints
// of an edge know its weight, so messages carry the sender's distance and
// the receiver adds the traversal cost.
//
// The protocol is round-driven (RoundFunc): a node-round is a plain
// function call on shared slab state, so a whole run performs a constant
// number of allocations. The round budget starts at RelaxBudget of the
// shortcut's measurement and doubles until the flood converges (checked
// against the sequential fixed point, the environment's ground-truth); the
// converged run's quiet-point is reported.
//
// Callers running many phases over the same (g, p, s) should build a
// Relaxer once instead: RelaxPartwise rebuilds the channel structure and
// re-measures the shortcut on every call.
func RelaxPartwise(g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut, weights, init []float64) (*RelaxResult, error) {
	return NewRelaxer(g, p, s).Relax(weights, init)
}

// RelaxBudget is the framework's per-primitive round budget for a shortcut
// of the given measurement: the estimate simulated relaxation starts from,
// and the per-phase charge the analytic SSSP fast path books.
func RelaxBudget(m shortcut.Measurement) int {
	return m.Quality + 2*m.TreeDiameter + 8
}

// Relaxer runs part-wise relaxation phases over a fixed (graph, parts,
// shortcut) triple, reusing the channel CSR and the measured round budget
// across phases.
type Relaxer struct {
	g           *graph.Graph
	partsOnEdge func(int) []int32
	budget      int
}

// NewRelaxer precomputes the channel structure and round budget.
func NewRelaxer(g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut) *Relaxer {
	return &Relaxer{
		g:           g,
		partsOnEdge: buildEdgeChannels(g, p, s),
		budget:      RelaxBudget(s.Measure()),
	}
}

// Relax runs one relaxation phase (see RelaxPartwise).
func (r *Relaxer) Relax(weights, init []float64) (*RelaxResult, error) {
	g := r.g
	if len(weights) != g.M() {
		return nil, fmt.Errorf("congest: %d weights for %d edges", len(weights), g.M())
	}
	if len(init) != g.N() {
		return nil, fmt.Errorf("congest: %d initial distances for %d vertices", len(init), g.N())
	}
	for id, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("congest: edge %d has weight %v", id, w)
		}
	}
	want := channelFixedPoint(g, r.partsOnEdge, weights, init)
	budget := r.budget
	for attempt := 0; attempt < 8; attempt++ {
		res, converged, err := runRelax(g, r.partsOnEdge, weights, init, want, budget)
		if err != nil {
			return nil, err
		}
		if converged {
			res.Budget = budget
			return res, nil
		}
		budget *= 2
	}
	return nil, fmt.Errorf("congest: relaxation failed to converge within budget %d", budget)
}

func runRelax(g *graph.Graph, partsOnEdge func(int) []int32, weights, init, want []float64, budget int) (*RelaxResult, bool, error) {
	n := g.N()
	finalDist := make([]float64, n)
	for v := range finalDist {
		finalDist[v] = math.Inf(1)
	}
	// Per-node protocol state lives in shared slab arrays (mirroring the
	// aggregation protocol): channels in (port, part) order per node, dirty
	// flags per channel, one sent-round slot per port.
	type channel struct{ port, part int32 }
	type nodeState struct {
		chOff, chEnd int32 // into channels/dirty
		dist         float64
		round        int32
	}
	totCh := 0
	for id := 0; id < g.M(); id++ {
		totCh += 2 * len(partsOnEdge(id))
	}
	channels := make([]channel, 0, totCh)
	dirty := make([]bool, totCh)
	sentRound := make([]int32, 0, totCh)
	state := make([]nodeState, n)
	for v := 0; v < n; v++ {
		st := &state[v]
		st.chOff = int32(len(channels))
		st.dist = init[v]
		for port, a := range g.Adj(v) {
			sentRound = append(sentRound, -1)
			for _, pi := range partsOnEdge(a.ID) {
				channels = append(channels, channel{int32(port), pi})
			}
		}
		st.chEnd = int32(len(channels))
		if !math.IsInf(st.dist, 1) {
			for ci := st.chOff; ci < st.chEnd; ci++ {
				dirty[ci] = true
			}
		}
	}
	portOff := make([]int32, n+1) // node -> offset into sentRound
	for v := 0; v < n; v++ {
		portOff[v+1] = portOff[v] + int32(g.Degree(v))
	}
	step := func(nd *Node, msgs []Message) bool {
		st := &state[nd.ID]
		// Fold in the previous round's deliveries: the sender's distance
		// plus the traversal cost of the edge it arrived on.
		for _, msg := range msgs {
			cand := WordFloat64(msg.Payload[1]) + weights[msg.Edge]
			if cand >= st.dist {
				continue
			}
			st.dist = cand
			for ci := st.chOff; ci < st.chEnd; ci++ {
				if int(channels[ci].port) != msg.Port {
					dirty[ci] = true
				}
			}
		}
		if int(st.round) == budget {
			finalDist[nd.ID] = st.dist
			return false
		}
		// One pending update per port per round, in (port, part) channel
		// order; remaining dirty channels wait for later rounds (the
		// congestion serialization).
		sent := sentRound[portOff[nd.ID]:portOff[nd.ID+1]]
		for ci := st.chOff; ci < st.chEnd; ci++ {
			ch := channels[ci]
			if !dirty[ci] || sent[ch.port] == st.round {
				continue
			}
			nd.Send(int(ch.port), Words{uint64(ch.part), Float64Word(st.dist)})
			dirty[ci] = false
			sent[ch.port] = st.round
		}
		st.round++
		return true
	}
	stats, err := RunSync(g, func(*Node) RoundFunc { return step }, Options{MaxRounds: budget + 64})
	if err != nil {
		return nil, false, err
	}
	converged := true
	for v := 0; v < n; v++ {
		if finalDist[v] != want[v] {
			converged = false
		}
	}
	res := &RelaxResult{
		Dist:            finalDist,
		Stats:           stats,
		EffectiveRounds: stats.LastActiveRound,
	}
	return res, converged, nil
}

// RelaxBellmanFord runs plain synchronous distributed Bellman–Ford over
// every edge of g: the naive SSSP baseline. Each round, every node whose
// tentative distance improved broadcasts it; the flood settles in exactly
// as many rounds as the largest hop count over minimum-weight paths (the
// quantity graph.Dijkstra reports as Hops). Budgeting and convergence
// checking mirror RelaxPartwise.
func RelaxBellmanFord(g *graph.Graph, weights, init []float64) (*RelaxResult, error) {
	if len(weights) != g.M() {
		return nil, fmt.Errorf("congest: %d weights for %d edges", len(weights), g.M())
	}
	if len(init) != g.N() {
		return nil, fmt.Errorf("congest: %d initial distances for %d vertices", len(init), g.N())
	}
	for id, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("congest: edge %d has weight %v", id, w)
		}
	}
	allEdges := func(id int) []int32 { return oneChannel }
	want := channelFixedPoint(g, allEdges, weights, init)
	n := g.N()
	budget := 16
	for attempt := 0; attempt < 16; attempt++ {
		res, converged, err := runBFRelax(g, weights, init, want, budget)
		if err != nil {
			return nil, err
		}
		if converged {
			res.Budget = budget
			return res, nil
		}
		if budget > 4*n {
			break
		}
		budget *= 2
	}
	return nil, fmt.Errorf("congest: Bellman-Ford failed to converge within budget %d", budget)
}

// oneChannel is the degenerate channel list of the naive baseline: every
// edge carries a single flow.
var oneChannel = []int32{0}

func runBFRelax(g *graph.Graph, weights, init, want []float64, budget int) (*RelaxResult, bool, error) {
	n := g.N()
	finalDist := make([]float64, n)
	dist := make([]float64, n)
	copy(dist, init)
	pending := make([]bool, n) // improved since last broadcast
	for v := range pending {
		pending[v] = !math.IsInf(dist[v], 1)
	}
	round := make([]int32, n)
	step := func(nd *Node, msgs []Message) bool {
		v := nd.ID
		for _, msg := range msgs {
			if cand := WordFloat64(msg.Payload[0]) + weights[msg.Edge]; cand < dist[v] {
				dist[v] = cand
				pending[v] = true
			}
		}
		if int(round[v]) == budget {
			finalDist[v] = dist[v]
			return false
		}
		if pending[v] {
			nd.Broadcast(Words{Float64Word(dist[v])})
			pending[v] = false
		}
		round[v]++
		return true
	}
	stats, err := RunSync(g, func(*Node) RoundFunc { return step }, Options{MaxRounds: budget + 64})
	if err != nil {
		return nil, false, err
	}
	converged := true
	for v := 0; v < n; v++ {
		if finalDist[v] != want[v] {
			converged = false
		}
	}
	res := &RelaxResult{Dist: finalDist, Stats: stats, EffectiveRounds: stats.LastActiveRound}
	return res, converged, nil
}

// channelFixedPoint computes the sequential ground truth of a relaxation
// phase: the pointwise minimum over channel-graph paths of init[u] plus the
// path's weight, via a potential-initialized Dijkstra over the edges that
// carry at least one channel. Both the protocol and this oracle accumulate
// path weights source-to-target, so their results are bit-identical.
func channelFixedPoint(g *graph.Graph, partsOnEdge func(int) []int32, weights, init []float64) []float64 {
	n := g.N()
	dist := make([]float64, n)
	copy(dist, init)
	var h graph.MinDistHeap
	h.Reset(dist)
	for v := 0; v < n; v++ {
		if !math.IsInf(dist[v], 1) {
			h.Push(v)
		}
	}
	done := make([]bool, n)
	for h.Len() > 0 {
		v := h.Pop()
		if done[v] {
			continue
		}
		done[v] = true
		for _, a := range g.Adj(v) {
			if len(partsOnEdge(a.ID)) == 0 {
				continue
			}
			if cand := dist[v] + weights[a.ID]; cand < dist[a.To] {
				dist[a.To] = cand
				h.Push(a.To)
			}
		}
	}
	return dist
}

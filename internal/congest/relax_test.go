package congest_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

func infInit(n, src int) []float64 {
	init := make([]float64, n)
	for v := range init {
		init[v] = math.Inf(1)
	}
	init[src] = 0
	return init
}

func edgeWeights(g *graph.Graph) []float64 {
	w := make([]float64, g.M())
	for id := range w {
		w[id] = g.Edge(id).W
	}
	return w
}

// RelaxBellmanFord must compute exact distances and settle in exactly
// maxHops+1 effective rounds (one round per hop of the slowest shortest
// path, plus the final improvement broadcast).
func TestRelaxBellmanFordMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		g := gen.UniformWeights(gen.ErdosRenyiConnected(30, 70, rng), rng)
		src := rng.Intn(g.N())
		res, err := congest.RelaxBellmanFord(g, edgeWeights(g), infInit(g.N(), src))
		if err != nil {
			t.Fatal(err)
		}
		want, err := graph.Dijkstra(g, src)
		if err != nil {
			t.Fatal(err)
		}
		maxHops := 0
		for v := 0; v < g.N(); v++ {
			if res.Dist[v] != want.Dist[v] {
				t.Fatalf("vertex %d: protocol %v vs dijkstra %v", v, res.Dist[v], want.Dist[v])
			}
			if want.Hops[v] > maxHops {
				maxHops = want.Hops[v]
			}
		}
		if res.EffectiveRounds != maxHops+1 {
			t.Fatalf("settled in %d effective rounds, want maxHops+1 = %d", res.EffectiveRounds, maxHops+1)
		}
	}
}

// refChannelRelax computes the fixed point over the part+shortcut channel
// edges by brute-force iteration: the ground truth RelaxPartwise must hit.
func refChannelRelax(g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut, w, init []float64) []float64 {
	onChannel := make([]bool, g.M())
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		if pi := p.Of[e.U]; pi != -1 && pi == p.Of[e.V] {
			onChannel[id] = true
		}
	}
	for _, ids := range s.Edges {
		for _, id := range ids {
			onChannel[id] = true
		}
	}
	dist := append([]float64(nil), init...)
	for iter := 0; iter < g.N()+1; iter++ {
		changed := false
		for id := 0; id < g.M(); id++ {
			if !onChannel[id] {
				continue
			}
			e := g.Edge(id)
			if c := dist[e.U] + w[id]; c < dist[e.V] {
				dist[e.V] = c
				changed = true
			}
			if c := dist[e.V] + w[id]; c < dist[e.U] {
				dist[e.U] = c
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func TestRelaxPartwiseComputesChannelFixedPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	e := gen.Wheel(33)
	g := gen.UniformWeights(e.G, rng)
	hub := g.N() - 1
	p, err := partition.RimArcs(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(g, hub)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shortcut.ObliviousAuto(g, tr, p)
	// Several seeds with finite potentials, not just a single source.
	init := infInit(g.N(), 0)
	init[7] = 2.5
	init[20] = 0.25
	res, err := congest.RelaxPartwise(g, p, s, edgeWeights(g), init)
	if err != nil {
		t.Fatal(err)
	}
	want := refChannelRelax(g, p, s, edgeWeights(g), init)
	for v := 0; v < g.N(); v++ {
		if res.Dist[v] != want[v] {
			t.Fatalf("vertex %d: protocol %v vs reference %v", v, res.Dist[v], want[v])
		}
	}
	if res.EffectiveRounds <= 0 || res.EffectiveRounds > res.Budget {
		t.Fatalf("effective rounds %d out of (0, %d]", res.EffectiveRounds, res.Budget)
	}
}

// The relaxation protocol's full observable result must be byte-identical
// across GOMAXPROCS settings, like every other engine protocol.
func TestRelaxPartwiseIdenticalAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	e := gen.Wheel(49)
	g := gen.UniformWeights(e.G, rng)
	p, err := partition.RimArcs(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(g, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shortcut.ObliviousAuto(g, tr, p)
	run := func() string {
		res, err := congest.RelaxPartwise(g, p, s, edgeWeights(g), infInit(g.N(), 3))
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%v %d %d %+v", res.Dist, res.EffectiveRounds, res.Budget, res.Stats)
	}
	prev := runtime.GOMAXPROCS(1)
	one := run()
	runtime.GOMAXPROCS(8)
	eight := run()
	runtime.GOMAXPROCS(prev)
	if one != eight {
		t.Fatalf("relaxation results differ:\nGOMAXPROCS=1: %s\nGOMAXPROCS=8: %s", one, eight)
	}
}

func TestRelaxInputValidation(t *testing.T) {
	g := gen.Path(4)
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(g, [][]int{{0, 1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	s := shortcut.Empty(g, tr, p)
	w := []float64{1, 1, 1}
	if _, err := congest.RelaxPartwise(g, p, s, w[:2], infInit(4, 0)); err == nil {
		t.Fatal("accepted short weights")
	}
	if _, err := congest.RelaxPartwise(g, p, s, w, infInit(3, 0)); err == nil {
		t.Fatal("accepted short init")
	}
	if _, err := congest.RelaxPartwise(g, p, s, []float64{1, -1, 1}, infInit(4, 0)); err == nil {
		t.Fatal("accepted negative weight")
	}
	if _, err := congest.RelaxBellmanFord(g, []float64{1, math.NaN(), 1}, infInit(4, 0)); err == nil {
		t.Fatal("accepted NaN weight")
	}
}

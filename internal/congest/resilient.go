package congest

import (
	"errors"
	"fmt"

	"repro/internal/graph"
)

// This file is the recovery layer over the fault-injection engine: an
// Adversary wraps a FaultPlan plus the retry policy, and every protocol the
// self-sufficient pipeline needs — leader election, BFS tree construction,
// the pipelined tree layer, part-wise aggregation, the flooding
// construction — has an adversary-aware entry point that detects
// non-convergence (the engine's ErrAborted, the protocols' ErrIncomplete
// fixed-point self-checks) and retries with a doubled round budget, up to a
// cap of attempts.
//
// Convergence guarantee: every retried protocol validates its converged
// state against the same sequential fixed point the fault-free run uses
// (the repo's sequential-oracle convention), so a successful resilient run
// is *identical* — same tree, same priorities, same shortcut, same cap — to
// the fault-free run. And whenever the adversary's disruptions have a
// finite horizon (bounded link-down and crash intervals, DropUntil set) and
// leave the graph connected, some doubled budget eventually grants an
// attempt a clean window after the horizon, which then converges
// deterministically — so the retry loop terminates with the fault-free
// answer. A drop probability with no horizon degrades this to a
// probabilistic guarantee for the once-only token streams (Pipecast /
// PipeBroadcast forward each token once; any lost token voids the whole
// attempt), which is why FaultPlan.DropUntil exists.
//
// Retries advance the adversary's timeline (FaultPlan.Offset) by each
// attempt's granted budget: the retried protocol faces the continuation of
// the fault schedule, never a verbatim replay of the coins that just
// defeated it.
//
// Limitation (documented, by design): protocols whose per-node state lives
// in shared slabs rebuild nothing when a crash restarts a node with
// Wipe — the SyncProtocol factory returns the shared RoundFunc, so a wiped
// restart degrades to a preserve-state restart. Whole-protocol retries,
// not per-node wipes, are the recovery mechanism here.

// Adversary couples a fault plan with the retry policy and tracks how much
// of the plan's timeline has been consumed across attempts. The zero
// Attempts selects 8, matching the pre-existing doubling loops. A nil
// *Adversary is valid everywhere and means "no faults": the adversary-aware
// entry points degrade to the plain fault-free protocols.
type Adversary struct {
	Plan     FaultPlan
	Attempts int

	// Retries counts retryable failures absorbed so far (all protocols).
	Retries int

	consumed int // rounds of the plan's timeline granted to attempts
}

// NewAdversary wraps a fault plan with the default retry policy.
func NewAdversary(plan FaultPlan) *Adversary { return &Adversary{Plan: plan} }

// attempts returns the retry cap.
func (a *Adversary) attempts() int {
	if a == nil || a.Attempts <= 0 {
		return 8
	}
	return a.Attempts
}

// Consumed reports how many rounds of the adversary's timeline have been
// granted to protocol attempts (successful or not) — the resilient
// pipeline's honest notion of elapsed adversarial time.
func (a *Adversary) Consumed() int {
	if a == nil {
		return 0
	}
	return a.consumed
}

// options builds one attempt's engine options: the plan shifted to the
// current timeline position, and the attempt's round budget consumed from
// the timeline whether or not the run uses all of it (the consumption must
// be deterministic, and a run's actual length is only known after the
// fact).
func (a *Adversary) options(maxRounds int) Options {
	p := a.Plan.Clone()
	p.Offset = a.Plan.Offset + a.consumed
	a.consumed += maxRounds
	return Options{MaxRounds: maxRounds, Faults: p}
}

// Retryable reports whether err is a transient non-convergence a doubled
// budget may fix: an aborted run (round bound exceeded, out-of-schedule
// token) or a failed fixed-point self-check. Anything else — malformed
// input, a caller bug — is permanent.
func Retryable(err error) bool {
	return errors.Is(err, ErrAborted) || errors.Is(err, ErrIncomplete)
}

// exhausted is the typed error a retry loop returns when every attempt
// failed.
func exhausted(protocol string, attempts, lastBudget int, last error) error {
	return &IncompleteError{Protocol: protocol, Budget: lastBudget,
		Detail: fmt.Sprintf("%d faulted attempts exhausted, last: %v", attempts, last)}
}

// CanonicalBFSParents computes, sequentially, the parent/parent-edge arrays
// of the canonical elected BFS tree from root: every vertex adopts its
// first adjacency-order (lowest-port) neighbor one BFS level closer. This
// is the fixed point both DistributedBFS (first announcement, lowest port
// on ties) and the resilient re-broadcasting BFS converge to, and the tree
// pipeline.SelfSetup builds analytically — exported so all three share one
// definition.
func CanonicalBFSParents(g *graph.Graph, root int) (parent, parentEdge []int, err error) {
	r := graph.BFS(g, root)
	if len(r.Order) != g.N() {
		return nil, nil, graph.ErrDisconnected
	}
	parent = make([]int, g.N())
	parentEdge = make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		parent[v], parentEdge[v] = -1, -1
		if v == root {
			continue
		}
		for _, a := range g.Adj(v) {
			if r.Dist[a.To] == r.Dist[v]-1 {
				parent[v], parentEdge[v] = a.To, a.ID
				break
			}
		}
	}
	return parent, parentEdge, nil
}

// LeaderElect elects the minimum vertex ID under the adversary: a
// round-driven flood where every node re-broadcasts its best-known ID
// every round (re-broadcasting makes lost messages harmless — the
// information is offered again next round), for a budget of rounds that
// starts at diamBound+1 and doubles per attempt. The converged votes are
// checked for unanimity on the true minimum (vertex 0 — IDs are dense);
// disagreement retries. A nil adversary delegates to the fault-free
// LeaderElect.
func (a *Adversary) LeaderElect(g *graph.Graph, diamBound int) (leader int, stats Stats, err error) {
	if a == nil {
		return LeaderElect(g, diamBound)
	}
	n := g.N()
	if n == 0 {
		return -1, stats, fmt.Errorf("congest: leader election over an empty network")
	}
	if diamBound <= 0 {
		return -1, stats, fmt.Errorf("congest: leader election diameter bound %d must be positive", diamBound)
	}
	budget := diamBound + 1
	var last error
	for attempt := 0; attempt < a.attempts(); attempt++ {
		best := make([]uint64, n)
		for v := range best {
			best[v] = uint64(v)
		}
		b := budget
		step := func(nd *Node, msgs []Message) bool {
			v := nd.ID
			for _, m := range msgs {
				if m.Payload[0] < best[v] {
					best[v] = m.Payload[0]
				}
			}
			if nd.round > b {
				return false
			}
			nd.Broadcast(Words{best[v]})
			return true
		}
		// Crashes stall a node's local round counter, so grant the engine
		// headroom beyond the per-node budget.
		rstats, rerr := RunSync(g, func(*Node) RoundFunc { return step }, a.options(2*budget+64))
		stats.Add(rstats)
		if rerr == nil {
			agreed := true
			for v := 0; v < n; v++ {
				if best[v] != 0 {
					agreed = false
					break
				}
			}
			if agreed {
				return 0, stats, nil
			}
			rerr = &IncompleteError{Protocol: "LeaderElect", Rounds: rstats.Rounds, Budget: budget,
				Detail: "votes not unanimous on the minimum ID"}
		}
		if !Retryable(rerr) {
			return -1, stats, rerr
		}
		last = rerr
		a.Retries++
		budget *= 2
	}
	return -1, stats, exhausted("LeaderElect", a.attempts(), budget/2, last)
}

// BFS builds the canonical elected BFS tree from root under the adversary:
// a Bellman-Ford-style flood where every reached node re-broadcasts its
// current distance every round and tracks the best distance heard per
// port. Re-broadcasting makes the protocol self-stabilizing under message
// loss: any clean window of diameter-many rounds after the adversary's
// horizon refreshes every per-port estimate and the distances settle to
// true BFS levels. Each node then adopts the lowest port whose neighbor
// sits one level closer — and the converged arrays are checked against
// CanonicalBFSParents exactly, so a successful run returns the identical
// tree the fault-free pipeline elects. A nil adversary delegates to
// DistributedBFS.
func (a *Adversary) BFS(g *graph.Graph, root, diamBound int) (parent, parentEdge []int, stats Stats, err error) {
	if a == nil {
		return DistributedBFS(g, root, diamBound)
	}
	n := g.N()
	if root < 0 || root >= n {
		return nil, nil, stats, fmt.Errorf("congest: BFS root %d out of range for %d nodes", root, n)
	}
	if diamBound <= 0 {
		return nil, nil, stats, fmt.Errorf("congest: BFS diameter bound %d must be positive", diamBound)
	}
	wantParent, wantEdge, err := CanonicalBFSParents(g, root)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("congest: resilient BFS: %w", err)
	}
	const inf = uint64(1) << 62
	portOff := make([]int32, n+1)
	for v := 0; v < n; v++ {
		portOff[v+1] = portOff[v] + int32(g.Degree(v))
	}
	budget := diamBound + 2
	var last error
	for attempt := 0; attempt < a.attempts(); attempt++ {
		dist := make([]uint64, n)
		nbrDist := make([]uint64, portOff[n])
		for v := range dist {
			dist[v] = inf
		}
		for i := range nbrDist {
			nbrDist[i] = inf
		}
		dist[root] = 0
		b := budget
		step := func(nd *Node, msgs []Message) bool {
			v := nd.ID
			for _, m := range msgs {
				d := m.Payload[0]
				if d < nbrDist[portOff[v]+int32(m.Port)] {
					nbrDist[portOff[v]+int32(m.Port)] = d
					if d+1 < dist[v] {
						dist[v] = d + 1
					}
				}
			}
			if nd.round > b {
				return false
			}
			if dist[v] < inf {
				nd.Broadcast(Words{dist[v]})
			}
			return true
		}
		rstats, rerr := RunSync(g, func(*Node) RoundFunc { return step }, a.options(2*budget+64))
		stats.Add(rstats)
		if rerr == nil {
			parent = make([]int, n)
			parentEdge = make([]int, n)
			ok := true
			for v := 0; v < n && ok; v++ {
				parent[v], parentEdge[v] = -1, -1
				if v == root {
					continue
				}
				for port, arc := range g.Adj(v) {
					if dist[v] < inf && nbrDist[portOff[v]+int32(port)] == dist[v]-1 {
						parent[v], parentEdge[v] = arc.To, arc.ID
						break
					}
				}
				if parent[v] != wantParent[v] || parentEdge[v] != wantEdge[v] {
					ok = false
				}
			}
			if ok {
				return parent, parentEdge, stats, nil
			}
			rerr = &IncompleteError{Protocol: "BFS", Rounds: rstats.Rounds, Budget: budget,
				Detail: "converged tree differs from the canonical elected tree"}
		}
		if !Retryable(rerr) {
			return nil, nil, stats, rerr
		}
		last = rerr
		a.Retries++
		budget *= 2
	}
	return nil, nil, stats, exhausted("BFS", a.attempts(), budget/2, last)
}

// Pipecast is the pipelined convergecast under the adversary: whole-run
// restarts with doubled budget (the token streams emit each token once, so
// any loss voids the attempt; the run's own fixed-point validation plus the
// engine's schedule checks detect every such loss). A nil adversary
// delegates to the plain Pipecast.
func (a *Adversary) Pipecast(t *graph.Tree, numTags int, contrib [][]Token, comb Combiner) (*PipecastResult, error) {
	if a == nil {
		return Pipecast(t, numTags, contrib, comb)
	}
	budget := t.Height() + numTags + 64
	var last error
	for attempt := 0; attempt < a.attempts(); attempt++ {
		res, err := pipecastOpts(t, numTags, contrib, comb, a.options(budget))
		if err == nil {
			return res, nil
		}
		if !Retryable(err) {
			return nil, err
		}
		last = err
		a.Retries++
		budget *= 2
	}
	return nil, exhausted("Pipecast", a.attempts(), budget/2, last)
}

// PipeBroadcast is the pipelined broadcast under the adversary (see
// Pipecast).
func (a *Adversary) PipeBroadcast(t *graph.Tree, tokens []Token) (*BroadcastResult, error) {
	if a == nil {
		return PipeBroadcast(t, tokens)
	}
	budget := t.Height() + len(tokens) + 64
	var last error
	for attempt := 0; attempt < a.attempts(); attempt++ {
		res, err := pipeBroadcastOpts(t, tokens, a.options(budget))
		if err == nil {
			return res, nil
		}
		if !Retryable(err) {
			return nil, err
		}
		last = err
		a.Retries++
		budget *= 2
	}
	return nil, exhausted("PipeBroadcast", a.attempts(), budget/2, last)
}

// treeCombineUnder is treeCombine routed through the adversary's Pipecast
// (nil adversary = fault-free).
func treeCombineUnder(t *graph.Tree, values []uint64, comb Combiner, a *Adversary) (total uint64, stats Stats, err error) {
	g := t.G
	if len(values) != g.N() {
		return 0, stats, fmt.Errorf("congest: %d values for %d vertices", len(values), g.N())
	}
	backing := make([]Token, g.N())
	contrib := make([][]Token, g.N())
	for v := range contrib {
		backing[v] = Token{Tag: 0, Value: values[v]}
		contrib[v] = backing[v : v+1 : v+1]
	}
	res, err := a.Pipecast(t, 1, contrib, comb)
	if err != nil {
		return 0, stats, err
	}
	return res.Values[0], res.Stats, nil
}

package congest_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
)

// testPlan is a connected-preserving fault plan: finite drop horizon,
// finite outages, finite crash windows — every retry past the horizon runs
// clean, so the resilient protocols must converge.
func testPlan(g *graph.Graph) congest.FaultPlan {
	return congest.FaultPlan{
		Seed:      41,
		DropProb:  0.2,
		DropUntil: 200,
		LinkDowns: []congest.LinkDown{{Edge: 0, From: 1, To: 30}, {Edge: g.M() - 1, From: 4, To: 16}},
		Crashes: []congest.Crash{
			{Node: g.N() / 3, Round: 2, Restart: 14},
			{Node: g.N() - 1, Round: 6, Restart: 18, Wipe: true},
		},
	}
}

// TestAdversaryElectionAndBFSMatchFaultFree pins the tentpole convergence
// property at the primitive level: under a connectivity-preserving fault
// plan, the resilient election and BFS reach the identical fixed point as
// the fault-free protocols.
func TestAdversaryElectionAndBFSMatchFaultFree(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", gen.Grid(6, 7).G},
		{"wheel", gen.Wheel(33).G},
	} {
		t.Run(tc.name, func(t *testing.T) {
			diam := 2*graph.DiameterApprox(tc.g) + 2
			wantLeader, _, err := congest.LeaderElect(tc.g, diam)
			if err != nil {
				t.Fatal(err)
			}
			wantParent, wantEdge, _, err := congest.DistributedBFS(tc.g, wantLeader, diam)
			if err != nil {
				t.Fatal(err)
			}
			adv := congest.NewAdversary(testPlan(tc.g))
			leader, _, err := adv.LeaderElect(tc.g, diam)
			if err != nil {
				t.Fatal(err)
			}
			if leader != wantLeader {
				t.Fatalf("faulted election chose %d, fault-free %d", leader, wantLeader)
			}
			parent, parentEdge, _, err := adv.BFS(tc.g, leader, diam)
			if err != nil {
				t.Fatal(err)
			}
			for v := range wantParent {
				if parent[v] != wantParent[v] || parentEdge[v] != wantEdge[v] {
					t.Fatalf("vertex %d: faulted BFS (%d,%d), fault-free (%d,%d)",
						v, parent[v], parentEdge[v], wantParent[v], wantEdge[v])
				}
			}
			// The canonical sequential oracle agrees too.
			cp, ce, err := congest.CanonicalBFSParents(tc.g, leader)
			if err != nil {
				t.Fatal(err)
			}
			for v := range cp {
				if parent[v] != cp[v] || parentEdge[v] != ce[v] {
					t.Fatalf("vertex %d: BFS (%d,%d) disagrees with canonical oracle (%d,%d)",
						v, parent[v], parentEdge[v], cp[v], ce[v])
				}
			}
		})
	}
}

// TestAdversaryRetriesThenConverges forces first attempts to fail — total
// loss until a horizon — and requires the retry loop to push the protocol
// past the horizon into a clean window and still produce the fault-free
// answer, booking at least one retry.
func TestAdversaryRetriesThenConverges(t *testing.T) {
	g := gen.Cycle(8)
	diam := 2*graph.DiameterApprox(g) + 2
	adv := congest.NewAdversary(congest.FaultPlan{Seed: 3, DropProb: 1, DropUntil: 50})
	leader, stats, err := adv.LeaderElect(g, diam)
	if err != nil {
		t.Fatal(err)
	}
	if leader != 0 {
		t.Fatalf("elected %d, want 0", leader)
	}
	if adv.Retries == 0 {
		t.Fatal("total loss until round 50 cost no retries — the adversary never engaged")
	}
	if stats.Dropped == 0 {
		t.Fatalf("no drops recorded across attempts: %+v", stats)
	}
	if adv.Consumed() <= 50 {
		t.Fatalf("adversary timeline consumed only %d rounds", adv.Consumed())
	}
}

// TestRetryableAndIncompleteError pins the typed-error satellite: the
// IncompleteError carries protocol context, still satisfies
// errors.Is(err, ErrIncomplete), and both abort and incompleteness are
// retryable while plain errors are not.
func TestRetryableAndIncompleteError(t *testing.T) {
	ie := &congest.IncompleteError{Protocol: "BFS", Rounds: 12, Budget: 10, Detail: "x"}
	if !errors.Is(ie, congest.ErrIncomplete) {
		t.Fatal("IncompleteError does not unwrap to ErrIncomplete")
	}
	for _, s := range []string{"BFS", "10", "12"} {
		if !strings.Contains(ie.Error(), s) {
			t.Fatalf("IncompleteError message %q misses %q", ie.Error(), s)
		}
	}
	if !congest.Retryable(ie) {
		t.Fatal("IncompleteError not retryable")
	}
	if !congest.Retryable(fmt.Errorf("wrap: %w", congest.ErrAborted)) {
		t.Fatal("wrapped ErrAborted not retryable")
	}
	if congest.Retryable(errors.New("disk on fire")) {
		t.Fatal("arbitrary error retryable")
	}
	if congest.Retryable(nil) {
		t.Fatal("nil error retryable")
	}
}

// TestProtocolsReturnIncompleteError pins that undersized budgets surface
// as the typed error at the established call sites.
func TestProtocolsReturnIncompleteError(t *testing.T) {
	g := gen.Path(30)
	var ie *congest.IncompleteError
	if _, _, _, err := congest.DistributedBFS(g, 0, 2); !errors.As(err, &ie) {
		t.Fatalf("BFS with tiny diameter bound: got %v, want IncompleteError", err)
	} else if ie.Protocol != "BFS" {
		t.Fatalf("protocol %q, want BFS", ie.Protocol)
	}
}

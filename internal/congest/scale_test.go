package congest_test

import (
	"runtime"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
)

// minFloodProto returns a SyncProtocol whose per-node state lives in the
// caller's slabs and whose RoundFunc is one shared closure — the protocol
// layer contributes O(1) allocations per run, so the engine pins below
// measure the round path itself. The protocol floods the minimum vertex
// ID for exactly `rounds` rounds: round 1 broadcasts the own ID, later
// rounds re-broadcast only on improvement.
func minFloodProto(n, rounds int) (congest.SyncProtocol, []uint64) {
	cur := make([]uint64, n)
	shared := congest.RoundFunc(func(nd *congest.Node, msgs []congest.Message) bool {
		if nd.Round() > rounds {
			return false
		}
		if nd.Round() == 1 {
			cur[nd.ID] = uint64(nd.ID)
			nd.Broadcast(congest.Words{cur[nd.ID]})
			return true
		}
		improved := false
		for _, m := range msgs {
			if m.Payload[0] < cur[nd.ID] {
				cur[nd.ID] = m.Payload[0]
				improved = true
			}
		}
		if improved {
			nd.Broadcast(congest.Words{cur[nd.ID]})
		}
		return true
	})
	proto := func(nd *congest.Node) congest.RoundFunc {
		cur[nd.ID] = uint64(nd.ID)
		return shared
	}
	return proto, cur
}

// TestSlabOutboxAllocsFlat pins the engine's own round path on the slab
// substrate: with a shared-closure protocol, a warmed run's allocations
// are the per-run scaffolding (task channel, worker goroutines), not the
// per-node outbox/revPort/inbox structures — those live in the
// degree-prefix slabs carved once in prepare and reused from the pool.
func TestSlabOutboxAllocsFlat(t *testing.T) {
	g := gen.WheelChainCSR(100, 31).Graph() // n=3200, mixed degrees
	proto, _ := minFloodProto(g.N(), 6)
	var stats congest.Stats
	run := func() {
		res, err := congest.RunSync(g, proto, congest.Options{})
		if err != nil {
			t.Fatal(err)
		}
		stats = res
	}
	run()
	pinAllocs(t, "RunSync/slab-engine", 256, g.N()*stats.Rounds, run)
}

// hashRun executes the min-flood protocol on g and folds every node's
// full message transcript (round, port, sender, edge, payload words) and
// the run statistics into per-node FNV-1a digests — a byte-determinism
// witness that never materializes O(n·rounds) state.
func hashRun(t *testing.T, g *graph.Graph, rounds int) []uint64 {
	t.Helper()
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	digest := make([]uint64, g.N())
	for i := range digest {
		digest[i] = fnvOffset
	}
	mix := func(v int, x uint64) {
		h := digest[v]
		for s := 0; s < 64; s += 8 {
			h = (h ^ (x >> s & 0xff)) * fnvPrime
		}
		digest[v] = h
	}
	cur := make([]uint64, g.N())
	shared := congest.RoundFunc(func(nd *congest.Node, msgs []congest.Message) bool {
		if nd.Round() > rounds {
			return false
		}
		for _, m := range msgs {
			mix(nd.ID, uint64(nd.Round()))
			mix(nd.ID, uint64(m.Port))
			mix(nd.ID, uint64(m.From))
			mix(nd.ID, uint64(m.Edge))
			for _, w := range m.Payload {
				mix(nd.ID, w)
			}
		}
		if nd.Round() == 1 {
			cur[nd.ID] = uint64(nd.ID)
			nd.Broadcast(congest.Words{cur[nd.ID]})
			return true
		}
		improved := false
		for _, m := range msgs {
			if m.Payload[0] < cur[nd.ID] {
				cur[nd.ID] = m.Payload[0]
				improved = true
			}
		}
		if improved {
			nd.Broadcast(congest.Words{cur[nd.ID]})
		}
		return true
	})
	stats, err := congest.RunSync(g, func(nd *congest.Node) congest.RoundFunc { return shared }, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mix(0, uint64(stats.Rounds))
	mix(0, uint64(stats.Messages))
	mix(0, uint64(stats.TotalBits))
	mix(0, uint64(stats.MaxEdgeLoad))
	return digest
}

// TestTranscripts100kAcrossGOMAXPROCS is the at-scale determinism witness
// the million-node acceptance demands: a 10⁵-node wheel (maximal shard
// skew — one hub port per shard boundary) floods under GOMAXPROCS 1 and
// 8, and every node's transcript digest must match exactly.
func TestTranscripts100kAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-node transcript comparison skipped in -short")
	}
	g := gen.WheelCSR(100_000).Graph()
	prev := runtime.GOMAXPROCS(1)
	one := hashRun(t, g, 5)
	runtime.GOMAXPROCS(8)
	eight := hashRun(t, g, 5)
	runtime.GOMAXPROCS(prev)
	for v := range one {
		if one[v] != eight[v] {
			t.Fatalf("node %d transcript digest differs between GOMAXPROCS=1 (%x) and GOMAXPROCS=8 (%x)", v, one[v], eight[v])
		}
	}
}

// TestOnRoundStreamsTotals checks the streaming per-round probe: the
// folded per-round figures must reproduce the run totals exactly, rounds
// must arrive 1..R in order, and a fold state of O(1) suffices.
func TestOnRoundStreamsTotals(t *testing.T) {
	g := gen.GridCSR(40, 40).Graph()
	proto, _ := minFloodProto(g.N(), 8)
	var rounds, msgs, bits, lastRound int
	stats, err := congest.RunSync(g, proto, congest.Options{
		OnRound: func(p congest.RoundProbe) {
			if p.Round != lastRound+1 {
				t.Errorf("probe round %d after %d", p.Round, lastRound)
			}
			lastRound = p.Round
			rounds++
			msgs += p.Messages
			bits += p.Bits
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != stats.Rounds {
		t.Fatalf("observed %d rounds, stats say %d", rounds, stats.Rounds)
	}
	if msgs != stats.Messages || bits != stats.TotalBits {
		t.Fatalf("streamed totals %d msgs / %d bits, stats %d / %d", msgs, bits, stats.Messages, stats.TotalBits)
	}
}

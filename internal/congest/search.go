package congest

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// SearchOptions configures the in-network congestion-cap search.
type SearchOptions struct {
	// Simulate runs every construction and quality probe as an actual
	// CONGEST protocol and reports measured rounds; false computes the same
	// fixed points and estimates sequentially and charges the framework
	// budgets (the two-ledger convention).
	Simulate bool
}

// SearchResult reports an in-network cap search. Exactly one round ledger
// is populated per the run's mode.
type SearchResult struct {
	S   *shortcut.Shortcut
	Cap int
	// Estimate is the winning guess's in-network quality estimate:
	// maxBlocks · maxAugmentedEcc + congestion — the quality formula with
	// the augmented-diameter probe standing in for the worst-case tree
	// diameter, every term a convergecast over the constructed shortcut.
	Estimate int
	// Guesses is the number of caps evaluated (≤ ceil(log2 parts) + 1).
	Guesses int
	// Priorities is the block-count-driven ranking all guesses shared.
	Priorities []int32
	// Stats accumulates every simulated protocol of the search.
	Stats Stats
	// EffectiveRounds: total measured rounds of the search in simulate mode
	// (constructions, congestion convergecasts, flood probes, the priority
	// bootstrap, and the winner broadcast).
	EffectiveRounds int
	// ChargedRounds is the analytic-mode total for the same pipeline.
	ChargedRounds int
	// ChargedEquivalent is the analytic-ledger total regardless of mode —
	// every term is a closed-form budget of quantities both modes share
	// (caps, estimates, tree height, part count), so a simulate run can
	// report what the same search would charge without re-running it.
	// Equals ChargedRounds in analytic mode.
	ChargedEquivalent int
}

// PriorityBudget is the round charge for the block-priority bootstrap: each
// part's tree block count is a convergecast sum of locally decidable
// indicators (a member tops a block iff its tree parent is outside the
// part), the per-part counts pipeline to the root — one token per tree edge
// per round — and the resulting ranking broadcasts back down. O(height +
// parts) up plus the same down.
func PriorityBudget(t *graph.Tree, p *partition.Parts) int {
	return 2 * (t.Height() + p.NumParts() + 2)
}

// probeBudget is the analytic charge for one guess's quality estimate: a
// tree convergecast of the congestion maximum, a part-wise flood probe
// whose round count the estimate itself bounds (the RelaxBudget shape),
// and the pipelined block-count convergecast (each vertex decides locally
// which parts' admitted chains it tops; the same pipelined shape — and
// budget — as the priority bootstrap).
func probeBudget(t *graph.Tree, p *partition.Parts, est int) int {
	return (t.Height() + 2) + (est + 2*t.Height() + 8) + PriorityBudget(t, p)
}

// SearchCap finds a good congestion cap fully in-network: the O(log n)
// doubling search the paper's framework runs in place of the central sweep
// (shortcut.ConstructAuto). Caps 1, 2, 4, ... (clamped to the part count —
// a cap of NumParts already admits every part everywhere) are each
// constructed with the flooding protocol, and each guess's quality is
// estimated by convergecast over the constructed shortcut:
//
//   - congestion: every vertex knows how many parts it admitted over its
//     parent edge; the maximum convergecasts up the tree (TreeMax);
//   - block counts: every vertex decides locally which parts' admitted
//     chains it tops; the per-part sums pipeline up the tree;
//   - augmented-diameter probe: every part floods its minimum member ID
//     over its induced-plus-shortcut channels (the AggregateMin primitive);
//     the quiescence point tracks the augmented eccentricity under real
//     congestion serialization.
//
// The estimate is the quality formula with the probe standing in for the
// worst-case tree diameter — maxBlocks · maxAugmentedEcc + congestion —
// evaluated on the converged fixed point, which both modes share, so
// simulate and analytic runs select the same cap; the guess with the
// lowest estimate (ties toward the smaller cap) wins and is re-broadcast
// down the tree. Block-count part priorities are computed once and shared
// by all guesses; their bootstrap is charged via PriorityBudget in both
// ledgers (in simulate mode as a modeled pipelined convergecast, like the
// per-phase constants ShortcutBoruvka books).
func SearchCap(g *graph.Graph, t *graph.Tree, p *partition.Parts, opts SearchOptions) (*SearchResult, error) {
	if t.G != g {
		return nil, fmt.Errorf("congest: cap search tree belongs to a different graph")
	}
	if p.G != g {
		return nil, fmt.Errorf("congest: cap search parts belong to a different graph")
	}
	np := p.NumParts()
	if np == 0 {
		return nil, fmt.Errorf("congest: cap search over an empty part family")
	}
	res := &SearchResult{Priorities: shortcut.TreeBlockPriorities(t, p)}
	book := func(simulated, charged int) {
		if opts.Simulate {
			res.EffectiveRounds += simulated
		} else {
			res.ChargedRounds += charged
		}
		res.ChargedEquivalent += charged
	}
	prioCost := PriorityBudget(t, p)
	book(prioCost, prioCost)
	bestEst := -1
	for cap := 1; ; cap *= 2 {
		c := cap
		if c > np {
			c = np
		}
		cres, err := ConstructShortcut(g, t, p, ConstructOptions{
			Cap: c, Simulate: opts.Simulate, Priorities: res.Priorities,
		})
		if err != nil {
			return nil, fmt.Errorf("congest: cap search guess %d: %w", c, err)
		}
		res.Guesses++
		res.Stats.Add(cres.Stats)
		est, err := estimateQuality(g, t, p, cres.S, opts.Simulate, res)
		if err != nil {
			return nil, fmt.Errorf("congest: cap search guess %d: %w", c, err)
		}
		// The construction's analytic charge is the closed-form budget in
		// either mode (analytic runs return exactly it), so the charged
		// equivalent stays complete on simulate runs too.
		book(cres.EffectiveRounds, ConstructBudget(t, c))
		book(0, probeBudget(t, p, est)) // simulate books measured probe rounds inside estimateQuality
		if bestEst == -1 || est < bestEst {
			bestEst = est
			res.S, res.Cap, res.Estimate = cres.S, c, est
		}
		if c >= np {
			break // larger caps construct the identical shortcut
		}
	}
	// Disseminate the winning cap down the tree so every node constructs
	// (and keeps) the same assignment.
	if opts.Simulate {
		_, bstats, err := TreeBroadcast(t, uint64(res.Cap))
		if err != nil {
			return nil, fmt.Errorf("congest: broadcasting winning cap: %w", err)
		}
		res.Stats.Add(bstats)
		book(bstats.Rounds, t.Height()+2)
	} else {
		book(0, t.Height()+2)
	}
	return res, nil
}

// estimateQuality computes one guess's quality estimate —
// maxBlocks · maxAugmentedEcc + congestion — and, in simulate mode, runs
// the in-network protocols realizing it (booking their measured rounds
// into res and validating the congestion convergecast against the ground
// truth; the block-count convergecast is booked as a modeled pipelined
// cost). The estimate's value is always derived from the converged fixed
// point, so both modes agree on it.
func estimateQuality(g *graph.Graph, t *graph.Tree, p *partition.Parts, s *shortcut.Shortcut, simulate bool, res *SearchResult) (int, error) {
	m := s.Measure()
	maxEcc := 0
	for i := 0; i < p.NumParts(); i++ {
		ecc, err := s.AugmentedEcc(i)
		if err != nil {
			return 0, err
		}
		if ecc > maxEcc {
			maxEcc = ecc
		}
	}
	est := m.MaxBlocks*maxEcc + m.Congestion
	if simulate {
		// Per-vertex admitted counts: how many parts use v's parent edge —
		// exactly the |sent| each node's protocol state holds when the
		// construction converges.
		counts := make([]uint64, g.N())
		use := g.AcquireScratch()
		for _, ids := range s.Edges {
			for _, id := range ids {
				use.Add(id, 1)
			}
		}
		for v := 0; v < g.N(); v++ {
			if id := t.ParentEdge[v]; id != -1 {
				counts[v] = uint64(use.GetOr(id, 0))
			}
		}
		g.ReleaseScratch(use)
		rootMax, mstats, err := TreeMax(t, counts)
		if err != nil {
			return 0, err
		}
		if rootMax != uint64(m.Congestion) {
			return 0, fmt.Errorf("congest: congestion convergecast returned %d, fixed point has %d", rootMax, m.Congestion)
		}
		res.Stats.Add(mstats)
		res.EffectiveRounds += mstats.Rounds
		// The probe: every part floods its minimum member ID over its
		// channels; time-to-quiet tracks the augmented eccentricity under
		// real congestion serialization.
		keys := make([]uint64, g.N())
		for v := range keys {
			keys[v] = uint64(v)
		}
		pres, err := AggregateMin(g, p, s, keys)
		if err != nil {
			return 0, err
		}
		res.Stats.Add(pres.Stats)
		res.EffectiveRounds += pres.EffectiveRounds
		// Block-count convergecast: locally decidable tops, per-part sums
		// pipelined to the root — a modeled cost with the priority
		// bootstrap's shape and budget.
		res.EffectiveRounds += PriorityBudget(t, p)
	}
	return est, nil
}

package congest

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// SearchOptions configures the in-network congestion-cap search.
type SearchOptions struct {
	// Simulate runs every construction and quality probe as an actual
	// CONGEST protocol and reports measured rounds; false computes the same
	// fixed points and estimates sequentially and charges the framework
	// budgets (the two-ledger convention).
	Simulate bool
	// Adversary, when non-nil, injects its fault plan into every simulated
	// protocol of the search (bootstrap, constructions, probes, winner
	// broadcast), with per-protocol retry under doubled budgets. Requires
	// Simulate. Because every sub-protocol validates against the sequential
	// fixed points both modes share, a successful faulted search returns
	// the identical cap, priorities, and shortcut as the fault-free search.
	Adversary *Adversary
}

// SearchResult reports an in-network cap search. Exactly one round ledger
// is populated per the run's mode.
type SearchResult struct {
	S   *shortcut.Shortcut
	Cap int
	// Estimate is the winning guess's in-network quality estimate:
	// maxBlocks · maxAugmentedEcc + congestion — the quality formula with
	// the augmented-diameter probe standing in for the worst-case tree
	// diameter, every term a convergecast over the constructed shortcut.
	Estimate int
	// Guesses is the number of caps evaluated (≤ ceil(log2 parts) + 1).
	Guesses int
	// Priorities is the block-count-driven ranking all guesses shared.
	Priorities []int32
	// BootstrapRounds is the priority bootstrap's round cost in the mode's
	// ledger: the pipelined block-count convergecast plus ranking
	// broadcast's measured rounds in simulate mode, PriorityBudget in
	// analytic mode.
	BootstrapRounds int
	// Stats accumulates every simulated protocol of the search.
	Stats Stats
	// EffectiveRounds: total measured rounds of the search in simulate mode
	// (constructions, congestion and block-count convergecasts, flood
	// probes, the priority bootstrap, and the winner broadcast — every term
	// measured on the engine, none modeled).
	EffectiveRounds int
	// ChargedRounds is the analytic-mode total for the same pipeline.
	ChargedRounds int
	// ChargedEquivalent is the analytic-ledger total regardless of mode —
	// every term is a closed-form budget of quantities both modes share
	// (caps, estimates, tree height, part count), so a simulate run can
	// report what the same search would charge without re-running it.
	// Equals ChargedRounds in analytic mode.
	ChargedEquivalent int
}

// PriorityBudget is the analytic round charge for the block-priority
// bootstrap: each part's tree block count is a convergecast sum of locally
// decidable indicators (a member tops a block iff its tree parent is
// outside the part), the per-part counts pipeline to the root — one token
// per tree edge per round — and the resulting ranking broadcasts back
// down: one PipecastBudget each way. Simulate mode runs exactly this
// protocol (BootstrapPriorities) and reports measured rounds instead.
func PriorityBudget(t *graph.Tree, p *partition.Parts) int {
	return 2 * PipecastBudget(t, p.NumParts())
}

// BootstrapResult reports the block-priority bootstrap.
type BootstrapResult struct {
	// Counts are the per-part tree block counts the convergecast produced
	// (== shortcut.TreeBlockCounts, validated).
	Counts []int
	// Priorities is the resulting ranking (== shortcut.TreeBlockPriorities).
	Priorities []int32
	Stats      Stats
	// EffectiveRounds: measured rounds (pipelined convergecast up plus
	// ranking broadcast down) in simulate mode.
	EffectiveRounds int
	// ChargedRounds: PriorityBudget in analytic mode.
	ChargedRounds int
}

// BootstrapPriorities computes the block-count part priorities the way a
// deployed network does — the distributed realization of
// shortcut.TreeBlockCounts + TreeBlockPriorities. Every part member
// decides locally whether it tops a tree block of its part (its tree
// parent lies outside the part, or it is the root); the indicators
// pipeline up the tree as tagged count tokens (Pipecast, one token per
// tree edge per round, O(height + parts) measured rounds), the root ranks
// the counts (shortcut.RankBlockCounts), and the ranking streams back
// down (PipeBroadcast, same bound). Both steps' fixed points are
// validated against the sequential functions, so the two modes share the
// ranking — and with it every downstream construction — exactly.
func BootstrapPriorities(t *graph.Tree, p *partition.Parts, simulate bool) (*BootstrapResult, error) {
	return BootstrapPrioritiesUnder(t, p, simulate, nil)
}

// BootstrapPrioritiesUnder is the priority bootstrap under an adversary:
// both pipelined streams run through the adversary's retrying wrappers (a
// nil adversary is the fault-free bootstrap).
func BootstrapPrioritiesUnder(t *graph.Tree, p *partition.Parts, simulate bool, adv *Adversary) (*BootstrapResult, error) {
	counts := shortcut.TreeBlockCounts(t, p)
	res := &BootstrapResult{Counts: counts, Priorities: shortcut.RankBlockCounts(counts)}
	if !simulate {
		res.ChargedRounds = PriorityBudget(t, p)
		return res, nil
	}
	np := p.NumParts()
	up, err := adv.Pipecast(t, np, BlockTopTokens(t, p), CombineCount)
	if err != nil {
		return nil, fmt.Errorf("congest: priority bootstrap convergecast: %w", err)
	}
	for i, want := range counts {
		if up.Values[i] != uint64(want) {
			return nil, fmt.Errorf("congest: part %d block-count convergecast returned %d, sequential count is %d",
				i, up.Values[i], want)
		}
	}
	res.Stats.Add(up.Stats)
	res.EffectiveRounds += up.EffectiveRounds
	tokens := make([]Token, np)
	for i := range tokens {
		tokens[i] = Token{Tag: int32(i), Value: uint64(res.Priorities[i])}
	}
	down, err := adv.PipeBroadcast(t, tokens)
	if err != nil {
		return nil, fmt.Errorf("congest: priority bootstrap ranking broadcast: %w", err)
	}
	res.Stats.Add(down.Stats)
	res.EffectiveRounds += down.EffectiveRounds
	return res, nil
}

// BlockTopTokens builds the priority bootstrap's convergecast payload:
// one count token, tagged with the member's part, for every vertex that
// tops a tree block of its part (its tree parent lies outside the part,
// or it is the root) — the locally decidable indicators whose per-part
// sums are shortcut.TreeBlockCounts. Shared by BootstrapPriorities and
// the E15 experiment so table and protocol can never diverge.
func BlockTopTokens(t *graph.Tree, p *partition.Parts) [][]Token {
	n := t.G.N()
	backing := make([]Token, n)
	contrib := make([][]Token, n)
	for v := 0; v < n; v++ {
		pi := p.Of[v]
		if pi == -1 {
			continue
		}
		if par := t.Parent[v]; par != -1 && p.Of[par] == pi {
			continue // an interior member of a block contributes nothing
		}
		backing[v] = Token{Tag: int32(pi), Value: 1}
		contrib[v] = backing[v : v+1 : v+1]
	}
	return contrib
}

// probeBudget is the analytic charge for one guess's quality estimate: a
// tree convergecast of the congestion maximum, a part-wise flood probe
// whose round count the estimate itself bounds (the RelaxBudget shape),
// and the pipelined block-count convergecast (each vertex decides locally
// which parts' admitted chains it tops and the per-part sums stream to
// the root: one PipecastBudget).
func probeBudget(t *graph.Tree, p *partition.Parts, est int) int {
	return (t.Height() + 2) + (est + 2*t.Height() + 8) + PipecastBudget(t, p.NumParts())
}

// SearchCap finds a good congestion cap fully in-network: the O(log n)
// doubling search the paper's framework runs in place of the central sweep
// (shortcut.ConstructAuto). Caps 1, 2, 4, ... (clamped to the part count —
// a cap of NumParts already admits every part everywhere) are each
// constructed with the flooding protocol, and each guess's quality is
// estimated by convergecast over the constructed shortcut:
//
//   - congestion: every vertex knows how many parts it admitted over its
//     parent edge; the maximum convergecasts up the tree (TreeMax);
//   - block counts: every vertex decides locally which parts' admitted
//     chains it tops (shortcut.BlockTops); the per-part sums pipeline up
//     the tree (Pipecast), one token per tree edge per round;
//   - augmented-diameter probe: every part floods its minimum member ID
//     over its induced-plus-shortcut channels (the AggregateMin primitive);
//     the quiescence point tracks the augmented eccentricity under real
//     congestion serialization.
//
// The estimate is the quality formula with the probe standing in for the
// worst-case tree diameter — maxBlocks · maxAugmentedEcc + congestion —
// evaluated on the converged fixed point, which both modes share, so
// simulate and analytic runs select the same cap; the guess with the
// lowest estimate (ties toward the smaller cap) wins and is re-broadcast
// down the tree. Block-count part priorities are computed once and shared
// by all guesses; in simulate mode their bootstrap runs message-level on
// the pipelined tree layer (BootstrapPriorities) and its measured rounds
// are booked — no modeled charge remains anywhere in the simulated
// ledger. Analytic mode charges PriorityBudget as before.
func SearchCap(g *graph.Graph, t *graph.Tree, p *partition.Parts, opts SearchOptions) (*SearchResult, error) {
	if t.G != g {
		return nil, fmt.Errorf("congest: cap search tree belongs to a different graph")
	}
	if p.G != g {
		return nil, fmt.Errorf("congest: cap search parts belong to a different graph")
	}
	np := p.NumParts()
	if np == 0 {
		return nil, fmt.Errorf("congest: cap search over an empty part family")
	}
	if opts.Adversary != nil && !opts.Simulate {
		return nil, fmt.Errorf("congest: cap search adversary requires simulate mode")
	}
	boot, err := BootstrapPrioritiesUnder(t, p, opts.Simulate, opts.Adversary)
	if err != nil {
		return nil, err
	}
	res := &SearchResult{Priorities: boot.Priorities}
	book := func(simulated, charged int) {
		if opts.Simulate {
			res.EffectiveRounds += simulated
		} else {
			res.ChargedRounds += charged
		}
		res.ChargedEquivalent += charged
	}
	res.Stats.Add(boot.Stats)
	book(boot.EffectiveRounds, PriorityBudget(t, p))
	if opts.Simulate {
		res.BootstrapRounds = boot.EffectiveRounds
	} else {
		res.BootstrapRounds = boot.ChargedRounds
	}
	bestEst := -1
	for cap := 1; ; cap *= 2 {
		c := cap
		if c > np {
			c = np
		}
		cres, err := ConstructShortcut(g, t, p, ConstructOptions{
			Cap: c, Simulate: opts.Simulate, Priorities: res.Priorities, Adversary: opts.Adversary,
		})
		if err != nil {
			return nil, fmt.Errorf("congest: cap search guess %d: %w", c, err)
		}
		res.Guesses++
		res.Stats.Add(cres.Stats)
		est, err := estimateQuality(g, t, p, cres.S, opts.Simulate, opts.Adversary, res)
		if err != nil {
			return nil, fmt.Errorf("congest: cap search guess %d: %w", c, err)
		}
		// The construction's analytic charge is the closed-form budget in
		// either mode (analytic runs return exactly it), so the charged
		// equivalent stays complete on simulate runs too.
		book(cres.EffectiveRounds, ConstructBudget(t, c))
		book(0, probeBudget(t, p, est)) // simulate books measured probe rounds inside estimateQuality
		if bestEst == -1 || est < bestEst {
			bestEst = est
			res.S, res.Cap, res.Estimate = cres.S, c, est
		}
		if c >= np {
			break // larger caps construct the identical shortcut
		}
	}
	// Disseminate the winning cap down the tree so every node constructs
	// (and keeps) the same assignment.
	if opts.Simulate {
		bres, err := opts.Adversary.PipeBroadcast(t, []Token{{Tag: 0, Value: uint64(res.Cap)}})
		if err != nil {
			return nil, fmt.Errorf("congest: broadcasting winning cap: %w", err)
		}
		bstats := bres.Stats
		res.Stats.Add(bstats)
		book(bstats.Rounds, t.Height()+2)
	} else {
		book(0, t.Height()+2)
	}
	return res, nil
}

// estimateQuality computes one guess's quality estimate —
// maxBlocks · maxAugmentedEcc + congestion — and, in simulate mode, runs
// the in-network protocols realizing it, booking their measured rounds
// into res and validating each convergecast against the ground truth: the
// congestion maximum (TreeMax), the augmented-eccentricity probe
// (AggregateMin), and the per-part block-count sums (a pipelined
// multi-token convergecast of the locally decidable BlockTops indicators
// — formerly a modeled charge). The estimate's value is always derived
// from the converged fixed point, so both modes agree on it.
func estimateQuality(g *graph.Graph, t *graph.Tree, p *partition.Parts, s *shortcut.Shortcut, simulate bool, adv *Adversary, res *SearchResult) (int, error) {
	m := s.Measure()
	maxEcc := 0
	for i := 0; i < p.NumParts(); i++ {
		ecc, err := s.AugmentedEcc(i)
		if err != nil {
			return 0, err
		}
		if ecc > maxEcc {
			maxEcc = ecc
		}
	}
	est := m.MaxBlocks*maxEcc + m.Congestion
	if simulate {
		// Per-vertex admitted counts: how many parts use v's parent edge —
		// exactly the |sent| each node's protocol state holds when the
		// construction converges.
		counts := make([]uint64, g.N())
		use := g.AcquireScratch()
		for _, ids := range s.Edges {
			for _, id := range ids {
				use.Add(id, 1)
			}
		}
		for v := 0; v < g.N(); v++ {
			if id := t.ParentEdge[v]; id != -1 {
				counts[v] = uint64(use.GetOr(id, 0))
			}
		}
		g.ReleaseScratch(use)
		rootMax, mstats, err := treeCombineUnder(t, counts, CombineMax, adv)
		if err != nil {
			return 0, err
		}
		if rootMax != uint64(m.Congestion) {
			return 0, fmt.Errorf("congest: congestion convergecast returned %d, fixed point has %d", rootMax, m.Congestion)
		}
		res.Stats.Add(mstats)
		res.EffectiveRounds += mstats.Rounds
		// The probe: every part floods its minimum member ID over its
		// channels; time-to-quiet tracks the augmented eccentricity under
		// real congestion serialization.
		keys := make([]uint64, g.N())
		for v := range keys {
			keys[v] = uint64(v)
		}
		pres, err := AggregateMinUnder(g, p, s, keys, adv)
		if err != nil {
			return 0, err
		}
		res.Stats.Add(pres.Stats)
		res.EffectiveRounds += pres.EffectiveRounds
		// Block-count convergecast: each vertex tops the admitted chains
		// it can decide locally (BlockTops); the per-part sums stream to
		// the root on the pipelined layer and must reproduce the fixed
		// point's block parameters exactly.
		tops := s.BlockTops()
		total := 0
		for _, ts := range tops {
			total += len(ts)
		}
		backing := make([]Token, 0, total)
		contrib := make([][]Token, g.N())
		for v, ts := range tops {
			if len(ts) == 0 {
				continue
			}
			base := len(backing)
			for _, pi := range ts {
				backing = append(backing, Token{Tag: pi, Value: 1})
			}
			contrib[v] = backing[base:len(backing):len(backing)]
		}
		bres, err := adv.Pipecast(t, p.NumParts(), contrib, CombineCount)
		if err != nil {
			return 0, fmt.Errorf("congest: block-count convergecast: %w", err)
		}
		for i, want := range m.Blocks {
			if bres.Values[i] != uint64(want) {
				return 0, fmt.Errorf("congest: part %d block-count convergecast returned %d, fixed point has %d",
					i, bres.Values[i], want)
			}
		}
		res.Stats.Add(bres.Stats)
		res.EffectiveRounds += bres.EffectiveRounds
	}
	return est, nil
}

package congest_test

import (
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// TestSearchCapModesAgree: the in-network doubling search selects the same
// cap and the identical shortcut in both modes (the estimate is evaluated
// on the shared fixed point), with each mode's rounds exclusively in its
// own ledger.
func TestSearchCapModesAgree(t *testing.T) {
	for _, tc := range constructInstances(t) {
		sim, err := congest.SearchCap(tc.g, tc.tr, tc.p, congest.SearchOptions{Simulate: true})
		if err != nil {
			t.Fatalf("%s simulate: %v", tc.name, err)
		}
		ana, err := congest.SearchCap(tc.g, tc.tr, tc.p, congest.SearchOptions{})
		if err != nil {
			t.Fatalf("%s analytic: %v", tc.name, err)
		}
		if sim.Cap != ana.Cap || sim.Estimate != ana.Estimate || sim.Guesses != ana.Guesses {
			t.Fatalf("%s: modes disagree: simulate (cap %d est %d guesses %d) vs analytic (cap %d est %d guesses %d)",
				tc.name, sim.Cap, sim.Estimate, sim.Guesses, ana.Cap, ana.Estimate, ana.Guesses)
		}
		for i := range sim.S.Edges {
			if len(sim.S.Edges[i]) != len(ana.S.Edges[i]) {
				t.Fatalf("%s part %d: edge sets differ between modes", tc.name, i)
			}
			for j := range sim.S.Edges[i] {
				if sim.S.Edges[i][j] != ana.S.Edges[i][j] {
					t.Fatalf("%s part %d: edge sets differ between modes", tc.name, i)
				}
			}
		}
		if sim.EffectiveRounds <= 0 || sim.ChargedRounds != 0 {
			t.Fatalf("%s simulate: ledgers %d/%d not exclusively simulated", tc.name, sim.EffectiveRounds, sim.ChargedRounds)
		}
		if ana.ChargedRounds <= 0 || ana.EffectiveRounds != 0 || ana.Stats.Messages != 0 {
			t.Fatalf("%s analytic: ledgers %d/%d (messages %d) not exclusively charged",
				tc.name, ana.EffectiveRounds, ana.ChargedRounds, ana.Stats.Messages)
		}
		// The simulate run's closed-form charged equivalent must be exactly
		// what the analytic run charges (that is its contract).
		if sim.ChargedEquivalent != ana.ChargedRounds || ana.ChargedEquivalent != ana.ChargedRounds {
			t.Fatalf("%s: charged equivalents %d/%d do not match the analytic charge %d",
				tc.name, sim.ChargedEquivalent, ana.ChargedEquivalent, ana.ChargedRounds)
		}
	}
}

// TestSearchCapGuessCount: the doubling loop is tight — caps are clamped
// to the part count with no wasted extra iteration (the ConstructAuto
// regression, pinned for the in-network search too).
func TestSearchCapGuessCount(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	e := gen.Grid(6, 6)
	tr, err := graph.BFSTree(e.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ parts, guesses int }{{1, 1}, {4, 3}, {5, 4}} {
		p, err := partition.Voronoi(e.G, tc.parts, rng)
		if err != nil {
			t.Fatal(err)
		}
		res, err := congest.SearchCap(e.G, tr, p, congest.SearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Guesses != tc.guesses {
			t.Fatalf("%d parts: %d guesses, want %d", tc.parts, res.Guesses, tc.guesses)
		}
	}
}

// TestSearchCapEmptyParts: an empty part family is an explicit error.
func TestSearchCapEmptyParts(t *testing.T) {
	e := gen.Grid(3, 3)
	tr, err := graph.BFSTree(e.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.New(e.G, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := congest.SearchCap(e.G, tr, p, congest.SearchOptions{Simulate: true}); err == nil {
		t.Fatal("empty part family accepted")
	}
}

// TestSearchCapTracksCentralSweep: the in-network estimate may pick a
// different cap than the exact central sweep, but the quality it settles
// for must stay within a constant factor of the sweep's optimum.
func TestSearchCapTracksCentralSweep(t *testing.T) {
	for _, tc := range constructInstances(t) {
		res, err := congest.SearchCap(tc.g, tc.tr, tc.p, congest.SearchOptions{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		auto, err := shortcut.ConstructAuto(tc.g, tc.tr, tc.p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := res.S.Measure().Quality
		if got > 2*auto.M.Quality {
			t.Fatalf("%s: in-network search quality %d more than 2x the central sweep's %d",
				tc.name, got, auto.M.Quality)
		}
	}
}

// TestBootstrapPrioritiesMeasured: the priority bootstrap runs message-
// level in simulate mode — real messages, measured rounds within the
// pipelined 2·(height + parts + 1) bound, fixed points identical to the
// sequential functions — and charges PriorityBudget only in analytic mode
// (the modeled simulated charge is gone).
func TestBootstrapPrioritiesMeasured(t *testing.T) {
	for _, tc := range constructInstances(t) {
		sim, err := congest.BootstrapPriorities(tc.tr, tc.p, true)
		if err != nil {
			t.Fatalf("%s simulate: %v", tc.name, err)
		}
		ana, err := congest.BootstrapPriorities(tc.tr, tc.p, false)
		if err != nil {
			t.Fatalf("%s analytic: %v", tc.name, err)
		}
		wantCounts := shortcut.TreeBlockCounts(tc.tr, tc.p)
		wantPrio := shortcut.TreeBlockPriorities(tc.tr, tc.p)
		for _, res := range []*congest.BootstrapResult{sim, ana} {
			for i := range wantCounts {
				if res.Counts[i] != wantCounts[i] || res.Priorities[i] != wantPrio[i] {
					t.Fatalf("%s: bootstrap fixed point diverges from the sequential functions", tc.name)
				}
			}
		}
		bound := 2 * (tc.tr.Height() + tc.p.NumParts() + 1)
		if sim.EffectiveRounds < 1 || sim.EffectiveRounds > bound {
			t.Fatalf("%s simulate: %d measured rounds outside (0, %d]", tc.name, sim.EffectiveRounds, bound)
		}
		if sim.Stats.Messages == 0 || sim.ChargedRounds != 0 {
			t.Fatalf("%s simulate: messages %d, charged %d — not message-level/exclusive",
				tc.name, sim.Stats.Messages, sim.ChargedRounds)
		}
		if ana.ChargedRounds != congest.PriorityBudget(tc.tr, tc.p) || ana.EffectiveRounds != 0 || ana.Stats.Messages != 0 {
			t.Fatalf("%s analytic: ledgers %d/%d (messages %d) not exclusively charged",
				tc.name, ana.EffectiveRounds, ana.ChargedRounds, ana.Stats.Messages)
		}
		// The cap search reports exactly the measured bootstrap in simulate
		// mode (no PriorityBudget term on the simulated ledger).
		sres, err := congest.SearchCap(tc.g, tc.tr, tc.p, congest.SearchOptions{Simulate: true})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if sres.BootstrapRounds != sim.EffectiveRounds {
			t.Fatalf("%s: search booked bootstrap %d, the protocol measures %d",
				tc.name, sres.BootstrapRounds, sim.EffectiveRounds)
		}
	}
}

package congest

import (
	"fmt"

	"repro/internal/graph"
)

// The single-value tree primitives are thin single-token wrappers over the
// pipelined multi-token layer (Pipecast / PipeBroadcast): one tag, one
// token per tree edge, O(height) rounds. They replaced a hand-rolled
// blocking-API convergecast core that the pipelined protocol subsumes.

// TreeBroadcast floods a value from the root down a rooted spanning tree:
// O(height) rounds, one word per edge. Returns the value received at every
// vertex; an incomplete delivery is an error, never a partial array.
func TreeBroadcast(t *graph.Tree, value uint64) (values []uint64, stats Stats, err error) {
	res, err := PipeBroadcast(t, []Token{{Tag: 0, Value: value}})
	if err != nil {
		return nil, stats, err
	}
	out := make([]uint64, t.G.N())
	for v := range out {
		out[v] = value // every vertex's receipt was validated by the run
	}
	return out, res.Stats, nil
}

// TreeSum convergecasts the sum of per-vertex values up a rooted spanning
// tree: O(height) rounds, one word per edge (partial sums combine). The
// root's total is returned. This is the subtree-aggregation primitive the
// min-cut 1-respecting evaluation uses.
func TreeSum(t *graph.Tree, values []uint64) (total uint64, stats Stats, err error) {
	return treeCombine(t, values, CombineSum)
}

// TreeMax convergecasts the maximum of per-vertex values up a rooted
// spanning tree: O(height) rounds, one word per edge (partial maxima
// combine). The cap search uses it to measure a constructed shortcut's
// congestion in-network — each vertex's value is the number of parts
// admitted over its parent edge.
func TreeMax(t *graph.Tree, values []uint64) (max uint64, stats Stats, err error) {
	return treeCombine(t, values, CombineMax)
}

// treeCombine runs the pipelined convergecast with a single tag carried by
// every vertex: each vertex contributes one token, so the stream degenerates
// to the classic wait-for-children convergecast (n-1 messages, O(height)
// rounds) while sharing the pipelined core's protocol and state layout.
func treeCombine(t *graph.Tree, values []uint64, comb Combiner) (total uint64, stats Stats, err error) {
	g := t.G
	if len(values) != g.N() {
		return 0, stats, fmt.Errorf("congest: %d values for %d vertices", len(values), g.N())
	}
	backing := make([]Token, g.N())
	contrib := make([][]Token, g.N())
	for v := range contrib {
		backing[v] = Token{Tag: 0, Value: values[v]}
		contrib[v] = backing[v : v+1 : v+1]
	}
	res, err := Pipecast(t, 1, contrib, comb)
	if err != nil {
		return 0, stats, err
	}
	return res.Values[0], res.Stats, nil
}

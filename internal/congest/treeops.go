package congest

import (
	"fmt"

	"repro/internal/graph"
)

// TreeBroadcast floods a value from the root down a rooted spanning tree:
// O(height) rounds, one word per edge. Returns the value received at every
// vertex.
func TreeBroadcast(t *graph.Tree, value uint64) (values []uint64, stats Stats, err error) {
	g := t.G
	out := make([]uint64, g.N())
	rounds := t.Height() + 2
	f := func(nd *Node) {
		have := nd.ID == t.Root
		v := value
		if !have {
			v = 0
		}
		sentDown := false
		for r := 0; r < rounds; r++ {
			if have && !sentDown {
				for port := 0; port < nd.Degree(); port++ {
					to := nd.Neighbor(port)
					if t.Parent[to] == nd.ID && t.ParentEdge[to] == nd.PortEdge(port) {
						nd.Send(port, Words{v})
					}
				}
				sentDown = true
			}
			msgs, ok := nd.Step()
			if !ok {
				return
			}
			for _, m := range msgs {
				if !have && m.Edge == t.ParentEdge[nd.ID] {
					v = m.Payload[0]
					have = true
				}
			}
		}
		if have {
			out[nd.ID] = v
		}
	}
	stats, err = Run(g, f, Options{MaxRounds: 4*rounds + 16})
	if err != nil {
		return nil, stats, err
	}
	return out, stats, nil
}

// TreeSum convergecasts the sum of per-vertex values up a rooted spanning
// tree: O(height) rounds, one word per edge (partial sums combine). The
// root's total is returned. This is the subtree-aggregation primitive the
// min-cut 1-respecting evaluation uses.
func TreeSum(t *graph.Tree, values []uint64) (total uint64, stats Stats, err error) {
	return treeCombine(t, values, func(a, b uint64) uint64 { return a + b })
}

// TreeMax convergecasts the maximum of per-vertex values up a rooted
// spanning tree: O(height) rounds, one word per edge (partial maxima
// combine). The cap search uses it to measure a constructed shortcut's
// congestion in-network — each vertex's value is the number of parts
// admitted over its parent edge.
func TreeMax(t *graph.Tree, values []uint64) (max uint64, stats Stats, err error) {
	return treeCombine(t, values, func(a, b uint64) uint64 {
		if b > a {
			return b
		}
		return a
	})
}

// treeCombine is the shared convergecast: each vertex waits for all
// children, folds their subtree values into its own with combine, and sends
// the result up its parent edge. The root's folded value is returned.
func treeCombine(t *graph.Tree, values []uint64, combine func(a, b uint64) uint64) (total uint64, stats Stats, err error) {
	g := t.G
	if len(values) != g.N() {
		return 0, stats, fmt.Errorf("congest: %d values for %d vertices", len(values), g.N())
	}
	// Each vertex waits for all children, then sends its subtree sum up.
	childCount := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		childCount[v] = len(t.Children[v])
	}
	var rootTotal uint64
	rounds := t.Height() + 2
	f := func(nd *Node) {
		sum := values[nd.ID]
		waiting := childCount[nd.ID]
		sentUp := false
		for r := 0; r < rounds; r++ {
			if waiting == 0 && !sentUp && nd.ID != t.Root {
				for port := 0; port < nd.Degree(); port++ {
					if nd.PortEdge(port) == t.ParentEdge[nd.ID] {
						nd.Send(port, Words{sum})
					}
				}
				sentUp = true
			}
			msgs, ok := nd.Step()
			if !ok {
				return
			}
			for _, m := range msgs {
				from := m.From
				if t.Parent[from] == nd.ID && m.Edge == t.ParentEdge[from] {
					sum = combine(sum, m.Payload[0])
					waiting--
				}
			}
		}
		if nd.ID == t.Root {
			rootTotal = sum
		}
	}
	stats, err = Run(g, f, Options{MaxRounds: 4*rounds + 16})
	if err != nil {
		return 0, stats, err
	}
	return rootTotal, stats, nil
}

package congest_test

import (
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestTreeBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		g := gen.ErdosRenyiConnected(30+rng.Intn(40), 120, rng)
		root := rng.Intn(g.N())
		tr, err := graph.BFSTree(g, root)
		if err != nil {
			t.Fatal(err)
		}
		const secret = 0xDEADBEEF
		values, stats, err := congest.TreeBroadcast(tr, secret)
		if err != nil {
			t.Fatal(err)
		}
		for v, got := range values {
			if got != secret {
				t.Fatalf("vertex %d got %x", v, got)
			}
		}
		if stats.LastActiveRound > tr.Height()+2 {
			t.Fatalf("broadcast active for %d rounds, height %d", stats.LastActiveRound, tr.Height())
		}
	}
}

func TestTreeSum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 6; trial++ {
		g := gen.ErdosRenyiConnected(20+rng.Intn(40), 100, rng)
		tr, err := graph.BFSTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		values := make([]uint64, g.N())
		var want uint64
		for v := range values {
			values[v] = uint64(rng.Intn(1000))
			want += values[v]
		}
		got, stats, err := congest.TreeSum(tr, values)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("sum %d want %d", got, want)
		}
		if stats.Messages != g.N()-1 {
			t.Fatalf("convergecast used %d messages, want n-1=%d", stats.Messages, g.N()-1)
		}
	}
}

func TestTreeMax(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		g := gen.ErdosRenyiConnected(20+rng.Intn(40), 100, rng)
		tr, err := graph.BFSTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		values := make([]uint64, g.N())
		var want uint64
		for v := range values {
			values[v] = uint64(rng.Intn(1000))
			if values[v] > want {
				want = values[v]
			}
		}
		got, stats, err := congest.TreeMax(tr, values)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("max %d want %d", got, want)
		}
		if stats.Messages != g.N()-1 {
			t.Fatalf("convergecast used %d messages, want n-1=%d", stats.Messages, g.N()-1)
		}
	}
}

func TestTreeSumLengthMismatch(t *testing.T) {
	g := gen.Path(4)
	tr, _ := graph.BFSTree(g, 0)
	if _, _, err := congest.TreeSum(tr, []uint64{1}); err == nil {
		t.Fatal("accepted short value slice")
	}
}

func TestTreeBroadcastOnStar(t *testing.T) {
	g := gen.Star(10)
	tr, _ := graph.BFSTree(g, 0)
	values, _, err := congest.TreeBroadcast(tr, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if v != 7 {
			t.Fatal("star broadcast incomplete")
		}
	}
}

package congest_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/congest"
	"repro/internal/gen"
)

func TestWordsBits(t *testing.T) {
	if (congest.Words{1, 2, 3}).Bits() != 192 {
		t.Fatal("Bits wrong")
	}
	if (congest.Words{}).Bits() != 0 {
		t.Fatal("empty Bits wrong")
	}
}

func TestFloat64WordRoundtrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true // NaN != NaN; encoding is still stable
		}
		return congest.WordFloat64(congest.Float64Word(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64WordOrderPreservingForPositive(t *testing.T) {
	// Positive float order matches unsigned bit order — the property the
	// MST key encoding relies on.
	f := func(a, b float64) bool {
		x, y := math.Abs(a), math.Abs(b)
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			return true
		}
		return (x < y) == (congest.Float64Word(x) < congest.Float64Word(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLastActiveRoundSemantics(t *testing.T) {
	// A protocol that sends only in round 1 and then idles for 5 rounds:
	// LastActiveRound must be small even though Rounds is larger.
	g := gen.Path(3)
	f := func(n *congest.Node) {
		if n.ID == 0 {
			n.Broadcast(congest.Words{1})
		}
		for r := 0; r < 6; r++ {
			if _, ok := n.Step(); !ok {
				return
			}
		}
	}
	stats, err := congest.Run(g, f, congest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.LastActiveRound > 2 {
		t.Fatalf("LastActiveRound %d, expected <= 2", stats.LastActiveRound)
	}
	if stats.Rounds < 6 {
		t.Fatalf("Rounds %d, expected >= 6", stats.Rounds)
	}
}

func TestNodeAccessors(t *testing.T) {
	g := gen.Star(4)
	f := func(n *congest.Node) {
		if n.ID == 0 {
			if n.Degree() != 3 {
				panic("center degree")
			}
			for port := 0; port < n.Degree(); port++ {
				nb := n.Neighbor(port)
				e := g.Edge(n.PortEdge(port))
				if !((e.U == 0 && e.V == nb) || (e.V == 0 && e.U == nb)) {
					panic("port mapping")
				}
			}
		}
		if n.NumV != 4 {
			panic("NumV")
		}
		n.Step()
	}
	if _, err := congest.Run(g, f, congest.Options{}); err != nil {
		t.Fatal(err)
	}
}

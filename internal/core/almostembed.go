package core

import (
	"fmt"
	"sort"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
	"repro/internal/structure"
	"repro/internal/tw"
)

// AlmostEmbeddableShortcut realizes Theorem 8: a T-restricted shortcut for a
// (q, g, k, ℓ)-almost-embeddable graph with block parameter
// O(q + (g+1)kℓ²d) and congestion O(q + kℓ²d(g + log n)).
//
// Following Lemmas 9-10:
//   - parts containing an apex receive the whole tree (≤ q of them);
//   - removing the apices splits T into subtrees; their vertex sets are the
//     cells, with cells touching a common vortex merged into special cells;
//   - the relation R from the cell-assignment lemmas (4-6) gives each part
//     its global shortcuts: the full T-subtrees of its assigned cells plus
//     their uplink edges toward the apices;
//   - every tree component gets local shortcuts: the clipped parts run
//     through the treewidth construction with a diameter-based decomposition
//     of the component (induced-embedding cotree bags for planar bases,
//     Lemma 2's vortex extension for components holding internal vortex
//     nodes, a restricted base decomposition for positive-genus bases).
func AlmostEmbeddableShortcut(g *graph.Graph, t *graph.Tree, p *partition.Parts, a *structure.AlmostEmbeddable) (*Result, error) {
	s := shortcut.Empty(g, t, p)
	info := map[string]int{}

	// Apex-containing parts get the entire tree.
	apexPart := make([]bool, p.NumParts())
	var apexParts []int
	for _, x := range a.Apices {
		if i := p.Of[x]; i != -1 && !apexPart[i] {
			apexPart[i] = true
			apexParts = append(apexParts, i)
		}
	}
	shortcut.WholeTree(s, apexParts)
	info["apexParts"] = len(apexParts)

	cells := BuildCells(g, t, a.Apices, a.VortexOf)
	info["cells"] = len(cells.Cells)
	for _, sp := range cells.Special {
		if sp {
			info["specialCells"]++
		}
	}
	assigned, stats := AssignCells(p, cells, apexPart)
	info["observedBeta"] = stats.ObservedBeta
	info["deferredParts"] = stats.DeferredParts

	// Global shortcuts: assigned cells contribute their internal tree edges
	// plus uplinks.
	cellTreeEdges := make([][]int, len(cells.Cells))
	for ci, vs := range cells.Cells {
		for _, v := range vs {
			pe := t.ParentEdge[v]
			if pe == -1 {
				continue
			}
			if cells.CellOf[t.Parent[v]] == ci {
				cellTreeEdges[ci] = append(cellTreeEdges[ci], pe)
			}
		}
		for _, r := range cells.Subtrees[ci] {
			if pe := t.ParentEdge[r]; pe != -1 {
				cellTreeEdges[ci] = append(cellTreeEdges[ci], pe) // uplink
			}
		}
	}
	for i := range assigned {
		for _, ci := range assigned[i] {
			s.Edges[i] = append(s.Edges[i], cellTreeEdges[ci]...)
		}
	}

	// Local shortcuts per tree component (cells before vortex merging).
	comps := treeComponents(g, t, cells)
	maxLocalWidth := 0
	for _, comp := range comps {
		width, err := localCellShortcut(g, t, p, a, s, comp, apexPart)
		if err != nil {
			return nil, fmt.Errorf("core: local cell shortcut: %w", err)
		}
		if width > maxLocalWidth {
			maxLocalWidth = width
		}
	}
	info["maxLocalWidth"] = maxLocalWidth

	// Re-normalize (dedupe/sort) through the constructor.
	ns, err := shortcut.NewNormalized(g, t, p, s.Edges)
	if err != nil {
		return nil, fmt.Errorf("core: assembling almost-embeddable shortcut: %w", err)
	}
	return &Result{S: ns, M: ns.Measure(), Info: info}, nil
}

// treeComponents lists the connected components of T minus the apices (the
// unmerged cells): each is a sorted vertex list, traversed downward from the
// per-cell subtree roots through non-apex children.
func treeComponents(g *graph.Graph, t *graph.Tree, cells *CellPartition) [][]int {
	var comps [][]int
	for ci := range cells.Cells {
		for _, root := range cells.Subtrees[ci] {
			var comp []int
			stack := []int{root}
			for len(stack) > 0 {
				v := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				comp = append(comp, v)
				for _, c := range t.Children[v] {
					if cells.CellOf[c] != -1 { // CellOf is -1 exactly at apices
						stack = append(stack, c)
					}
				}
			}
			sort.Ints(comp)
			comps = append(comps, comp)
		}
	}
	return comps
}

// localCellShortcut builds Lemma 9/10-style local shortcuts inside one tree
// component: clip parts, build a diameter-based decomposition, run the
// treewidth construction restricted to the component's tree, and merge the
// assignment back into s. Returns the folded width used (diagnostic).
func localCellShortcut(g *graph.Graph, t *graph.Tree, p *partition.Parts, a *structure.AlmostEmbeddable, s *shortcut.Shortcut, comp []int, apexPart []bool) (int, error) {
	if len(comp) < 2 {
		return 0, nil
	}
	// Order component vertices: base vertices first, vortex internals after
	// (AddAttachedVertices requires attached vertices to come last).
	var baseVs, internalVs []int
	for _, v := range comp {
		if v < a.BaseN {
			baseVs = append(baseVs, v)
		} else if !a.IsApex(v) {
			internalVs = append(internalVs, v)
		}
	}
	ordered := append(append([]int(nil), baseVs...), internalVs...)
	local, oldToNew, edgeOrig := g.InducedSubgraph(ordered)
	// Local tree: restriction of T to the component (a subtree).
	lparent := make([]int, local.N())
	lparentEdge := make([]int, local.N())
	for i := range lparent {
		lparent[i] = -1
		lparentEdge[i] = -1
	}
	globalOfLocalEdge := make(map[int]int, len(edgeOrig))
	localOfGlobalEdge := make(map[int]int, len(edgeOrig))
	for lid, oid := range edgeOrig {
		globalOfLocalEdge[lid] = oid
		localOfGlobalEdge[oid] = lid
	}
	rootLocal := -1
	inComp := make(map[int]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	for _, v := range ordered {
		pv := t.Parent[v]
		if pv != -1 && inComp[pv] {
			lparent[oldToNew[v]] = oldToNew[pv]
			leid, ok := localOfGlobalEdge[t.ParentEdge[v]]
			if !ok {
				return 0, fmt.Errorf("tree edge of %d missing from induced component", v)
			}
			lparentEdge[oldToNew[v]] = leid
		} else {
			rootLocal = oldToNew[v]
		}
	}
	ltree, err := graph.TreeFromParents(local, rootLocal, lparent, lparentEdge)
	if err != nil {
		return 0, fmt.Errorf("component tree: %w", err)
	}
	// Clip parts into the component.
	var sets [][]int
	var origin []int
	for i := 0; i < p.NumParts(); i++ {
		if apexPart[i] {
			continue
		}
		var localVs []int
		for _, v := range p.Sets[i] {
			if inComp[v] {
				localVs = append(localVs, oldToNew[v])
			}
		}
		if len(localVs) == 0 {
			continue
		}
		for _, c := range componentsWithin(local, localVs) {
			sets = append(sets, c)
			origin = append(origin, i)
		}
	}
	if len(sets) == 0 {
		return 0, nil
	}
	lp, err := partition.New(local, sets)
	if err != nil {
		return 0, fmt.Errorf("clipped parts: %w", err)
	}
	// Decomposition of the component.
	d, err := componentDecomposition(a, local, ltree, ordered, len(baseVs), oldToNew)
	if err != nil {
		return 0, err
	}
	res, err := shortcut.FromTreewidth(local, ltree, lp, d)
	if err != nil {
		return 0, err
	}
	for si, ids := range res.S.Edges {
		i := origin[si]
		for _, leid := range ids {
			s.Edges[i] = append(s.Edges[i], globalOfLocalEdge[leid])
		}
	}
	return res.FoldedWidth, nil
}

// componentDecomposition builds a diameter-flavored tree decomposition of a
// component: cotree bags over the induced base embedding when the base is
// planar (joining multiple base components under one tree), the restricted
// BaseTD for positive-genus bases, and in both cases Lemma 2's extension for
// vortex-internal nodes.
func componentDecomposition(a *structure.AlmostEmbeddable, local *graph.Graph, ltree *graph.Tree, ordered []int, numBase int, oldToNew []int) (*tw.Decomposition, error) {
	baseLocalVerts := make([]int, 0, numBase)
	for li := 0; li < numBase; li++ {
		baseLocalVerts = append(baseLocalVerts, li)
	}
	baseOnly, b2l, _ := local.InducedSubgraph(baseLocalVerts) // identity map, but fresh graph without vortex edges
	var baseDecomp *tw.Decomposition
	if a.BaseEmb.Genus() == 0 {
		// Induced embedding of the base restricted to this component.
		globalBase := make([]int, numBase)
		for li := 0; li < numBase; li++ {
			globalBase[li] = ordered[li]
		}
		emb, _, _ := embed.Induce(a.BaseEmb, globalBase)
		// emb is over a graph isomorphic to baseOnly with the same ordering
		// (InducedSubgraph preserves keep-order), so decompositions carry
		// over by index.
		d, err := cotreeDecompositionPerComponent(emb)
		if err != nil {
			return nil, err
		}
		baseDecomp = &tw.Decomposition{G: baseOnly, Bags: d.Bags, Adj: d.Adj}
		if err := baseDecomp.Validate(); err != nil {
			return nil, fmt.Errorf("base component decomposition: %w", err)
		}
	} else {
		if a.BaseTD == nil {
			return nil, fmt.Errorf("positive-genus base without BaseTD witness")
		}
		baseDecomp = restrictDecomposition(a.BaseTD, baseOnly, func(baseV int) int {
			lv := oldToNew[baseV]
			if lv == -1 || lv >= numBase {
				return -1
			}
			return b2l[lv]
		})
	}
	if local.N() == numBase {
		return &tw.Decomposition{G: local, Bags: baseDecomp.Bags, Adj: baseDecomp.Adj}, nil
	}
	// Vortex extension (Lemma 2): attach each internal node to all its
	// local neighbors.
	attach := make([][]int, local.N()-numBase)
	for li := numBase; li < local.N(); li++ {
		for _, arc := range local.Adj(li) {
			attach[li-numBase] = append(attach[li-numBase], arc.To)
		}
	}
	d := &tw.Decomposition{G: baseOnly, Bags: baseDecomp.Bags, Adj: baseDecomp.Adj}
	full, err := tw.AddAttachedVertices(d, local, numBase, attach)
	if err != nil {
		return nil, fmt.Errorf("vortex extension: %w", err)
	}
	return full, nil
}

// cotreeDecompositionPerComponent runs the cotree construction on each
// connected component of an embedded graph and joins the resulting bag trees
// under component 0's root (disjoint vertex sets keep everything coherent).
func cotreeDecompositionPerComponent(e *embed.Embedding) (*tw.Decomposition, error) {
	comps, _ := graph.Components(e.G)
	joined := &tw.Decomposition{G: e.G}
	var firstBagOfComp []int
	for _, comp := range comps {
		cEmb, cMap, _ := embed.Induce(e, comp)
		ct, err := graph.BFSTree(cEmb.G, 0)
		if err != nil {
			return nil, err
		}
		cd, err := tw.FromEmbeddingByCotree(cEmb, ct)
		if err != nil {
			return nil, err
		}
		// Remap bag vertices back into e.G indices.
		back := make([]int, cEmb.G.N())
		for _, v := range comp {
			back[cMap[v]] = v
		}
		offset := len(joined.Bags)
		firstBagOfComp = append(firstBagOfComp, offset)
		for _, bag := range cd.Bags {
			nb := make([]int, len(bag))
			for i, v := range bag {
				nb[i] = back[v]
			}
			joined.Bags = append(joined.Bags, nb)
			joined.Adj = append(joined.Adj, nil)
		}
		for bi, ns := range cd.Adj {
			for _, nj := range ns {
				joined.Adj[offset+bi] = append(joined.Adj[offset+bi], offset+nj)
			}
		}
	}
	// Join component bag-trees in a chain.
	for i := 1; i < len(firstBagOfComp); i++ {
		a, b := firstBagOfComp[i-1], firstBagOfComp[i]
		joined.Adj[a] = append(joined.Adj[a], b)
		joined.Adj[b] = append(joined.Adj[b], a)
	}
	if err := joined.Validate(); err != nil {
		return nil, fmt.Errorf("joined cotree decomposition: %w", err)
	}
	return joined, nil
}

// restrictDecomposition restricts a decomposition of the full base graph to
// an induced subgraph: vertices are mapped through mapv (-1 drops them).
// Restriction preserves validity.
func restrictDecomposition(d *tw.Decomposition, sub *graph.Graph, mapv func(int) int) *tw.Decomposition {
	out := &tw.Decomposition{G: sub, Bags: make([][]int, len(d.Bags)), Adj: make([][]int, len(d.Adj))}
	for bi, bag := range d.Bags {
		for _, v := range bag {
			if nv := mapv(v); nv != -1 {
				out.Bags[bi] = append(out.Bags[bi], nv)
			}
		}
	}
	for bi, ns := range d.Adj {
		out.Adj[bi] = append([]int(nil), ns...)
	}
	return out
}

package core

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// CellPartition is a partition of the non-apex vertices into connected,
// low-diameter cells (paper Definition 14). Cells here are the connected
// components of the spanning tree with the apices removed (each a subtree of
// diameter at most 2·d_T), with cells touching a common vortex merged into
// special cells (Lemma 10).
type CellPartition struct {
	Cells   [][]int // cell -> sorted vertex list
	CellOf  []int   // vertex -> cell index, or -1 (apices)
	Special []bool  // cell contains vortex-internal nodes
	// Subtrees lists, per cell, the roots (topmost vertices) of the tree
	// components composing it; the parent edge of each root is an uplink.
	Subtrees [][]int
}

// BuildCells computes the cell partition of G - apices induced by removing
// the apex vertices from the spanning tree t, merging cells that contain
// internal nodes of the same vortex (vortexOf[v] >= 0 identifies them).
func BuildCells(g *graph.Graph, t *graph.Tree, apices []int, vortexOf func(v int) int) *CellPartition {
	isApex := make([]bool, g.N())
	for _, x := range apices {
		isApex[x] = true
	}
	uf := graph.NewUnionFind(g.N())
	for v := 0; v < g.N(); v++ {
		pv := t.Parent[v]
		if pv == -1 || isApex[v] || isApex[pv] {
			continue
		}
		uf.Union(v, pv)
	}
	// Merge components sharing a vortex.
	vortexRep := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		if isApex[v] {
			continue
		}
		if vi := vortexOf(v); vi >= 0 {
			if r, ok := vortexRep[vi]; ok {
				uf.Union(r, v)
			} else {
				vortexRep[vi] = v
			}
		}
	}
	cp := &CellPartition{CellOf: make([]int, g.N())}
	for i := range cp.CellOf {
		cp.CellOf[i] = -1
	}
	repIdx := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		if isApex[v] {
			continue
		}
		r := uf.Find(v)
		ci, ok := repIdx[r]
		if !ok {
			ci = len(cp.Cells)
			repIdx[r] = ci
			cp.Cells = append(cp.Cells, nil)
			cp.Special = append(cp.Special, false)
			cp.Subtrees = append(cp.Subtrees, nil)
		}
		cp.Cells[ci] = append(cp.Cells[ci], v)
		cp.CellOf[v] = ci
		if vortexOf(v) >= 0 {
			cp.Special[ci] = true
		}
		// Root of a tree component: parent is an apex or absent.
		if pv := t.Parent[v]; pv == -1 || isApex[pv] {
			cp.Subtrees[ci] = append(cp.Subtrees[ci], v)
		}
	}
	for ci := range cp.Cells {
		sort.Ints(cp.Cells[ci])
	}
	return cp
}

// AssignmentStats reports what the peeling procedure observed; experiments
// compare ObservedBeta against the O(d) bound of Lemmas 5-7.
type AssignmentStats struct {
	ObservedBeta  int // max parts assigned to a single cell
	DeferredParts int // parts that ended with <= 2 incident cells (or only special)
	AssignedCells int
}

// AssignCells computes the cell-assignment relation R ⊆ C × P of
// Definition 15 via the algorithmic content of Lemmas 4-6: repeatedly either
// defer a part that intersects at most two cells (it will be served by local
// shortcuts there), or assign the lowest-degree normal cell to all its
// remaining parts and delete it. The combinatorial-gate lemmas guarantee
// that for minor-closed cell structures the chosen cell has degree O(s);
// ObservedBeta records what actually happened.
//
// Returned: per part, the list of assigned cells (nil for deferred parts
// with no assignments).
func AssignCells(p *partition.Parts, cp *CellPartition, skip []bool) ([][]int, AssignmentStats) {
	numParts := p.NumParts()
	numCells := len(cp.Cells)
	// Incidence lists (deduplicated; part sets are sorted, and CellOf maps
	// consecutive members to runs of cells, so dedup is a last-seen check
	// after collecting + sorting).
	cellsOfPart := make([][]int32, numParts)
	partsOfCell := make([][]int32, numCells)
	for i := 0; i < numParts; i++ {
		if skip != nil && skip[i] {
			continue
		}
		cells := make([]int32, 0, len(p.Sets[i]))
		for _, v := range p.Sets[i] {
			if ci := cp.CellOf[v]; ci != -1 {
				cells = append(cells, int32(ci))
			}
		}
		sort.Slice(cells, func(a, b int) bool { return cells[a] < cells[b] })
		w := 0
		for r, ci := range cells {
			if r == 0 || ci != cells[w-1] {
				cells[w] = ci
				w++
			}
		}
		cellsOfPart[i] = cells[:w]
		for _, ci := range cellsOfPart[i] {
			partsOfCell[ci] = append(partsOfCell[ci], int32(i))
		}
	}
	assigned := make([][]int, numParts)
	var stats AssignmentStats
	// Live state and degree counters; all picks and sweeps run in ascending
	// index order, so the procedure is deterministic (ties in the
	// minimum-degree choice go to the lowest cell index).
	partLive := make([]bool, numParts)
	liveParts := 0
	for i := 0; i < numParts; i++ {
		if (skip == nil || !skip[i]) && len(cellsOfPart[i]) > 0 {
			partLive[i] = true
			liveParts++
		}
	}
	cellLive := make([]bool, numCells) // live normal cells
	liveCells := 0
	for ci := 0; ci < numCells; ci++ {
		if !cp.Special[ci] {
			cellLive[ci] = true
			liveCells++
		}
	}
	deg := make([]int, numCells) // live parts incident to the cell
	for ci := range partsOfCell {
		deg[ci] = len(partsOfCell[ci])
	}
	remCells := make([]int, numParts) // incident cells not yet assigned
	for i := range cellsOfPart {
		remCells[i] = len(cellsOfPart[i])
	}
	deferPart := func(i int) {
		partLive[i] = false
		liveParts--
		for _, ci := range cellsOfPart[i] {
			deg[ci]--
		}
		stats.DeferredParts++
	}
	for liveParts > 0 {
		// Defer any part with at most 2 incident cells (counting both
		// normal and special cells, per Lemma 4).
		deferredAny := false
		for i := 0; i < numParts; i++ {
			if partLive[i] && remCells[i] <= 2 {
				deferPart(i)
				deferredAny = true
			}
		}
		if deferredAny {
			continue
		}
		if liveCells == 0 {
			// Only special cells remain incident to the surviving parts;
			// they are all served locally in those (≤ L) special cells.
			for i := 0; i < numParts; i++ {
				if partLive[i] {
					partLive[i] = false
					liveParts--
					stats.DeferredParts++
				}
			}
			break
		}
		// Pick the minimum-degree live normal cell (lowest index on ties).
		best, bestDeg := -1, 0
		for ci := 0; ci < numCells; ci++ {
			if cellLive[ci] && (best == -1 || deg[ci] < bestDeg) {
				best, bestDeg = ci, deg[ci]
			}
		}
		if bestDeg > stats.ObservedBeta {
			stats.ObservedBeta = bestDeg
		}
		for _, i32 := range partsOfCell[best] {
			if i := int(i32); partLive[i] {
				assigned[i] = append(assigned[i], best)
				remCells[i]--
			}
		}
		cellLive[best] = false
		liveCells--
		stats.AssignedCells++
		// Note: removing the cell may drop some parts to <= 2 cells; the
		// loop's defer step will catch them next iteration.
	}
	// Assignments were appended in assignment order; report them sorted.
	for i := range assigned {
		sort.Ints(assigned[i])
	}
	return assigned, stats
}

package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
	"repro/internal/structure"
	"repro/internal/tw"
)

// CliqueSumWitness is the structural input for Theorem 7: the clique-sum
// decomposition tree plus, per bag, its clique-completed local graph B⁰, a
// tree decomposition of it (the family-F shortcut witness), and the
// local-to-global vertex map.
type CliqueSumWitness struct {
	CST         *structure.CliqueSumTree
	BagGraphs   []*graph.Graph
	BagDecomp   []*tw.Decomposition
	BagToGlobal [][]int
}

// Result is a constructed shortcut plus its measurement and diagnostics.
type Result struct {
	S    *shortcut.Shortcut
	M    shortcut.Measurement
	Info map[string]int
}

// CliqueSumShortcut realizes Theorem 7: a T-restricted shortcut on a
// k-clique-sum of graphs from a family F (here: graphs carrying treewidth
// witnesses), with block parameter 2k + O(b_F) and congestion
// O(k·log²n) + c_F, via the folded decomposition tree of Figure 4.
//
// Per the paper's proof of Lemma 1 + Theorem 7:
//   - global shortcuts: each part P receives the tree edges inside the
//     decomposition subtrees hanging below its LCA group h_P, minus edges of
//     the h_P group's bags;
//   - local shortcuts: within every bag of the h_P group that P meets, the
//     repaired tree T²ₕ (Steiner contraction of T onto the bag) carries a
//     family-F shortcut for P's clipped components; assigned virtual edges
//     are discarded, as are edges inside the parent partial clique.
func CliqueSumShortcut(g *graph.Graph, t *graph.Tree, p *partition.Parts, w *CliqueSumWitness) (*Result, error) {
	return cliqueSumShortcut(g, t, p, w, tw.Fold)
}

// CliqueSumShortcutUnfolded is the Lemma 1 variant without decomposition-
// tree compression: congestion carries the raw depth d_DT instead of
// O(log² n). It exists for the folding ablation (experiment E10).
func CliqueSumShortcutUnfolded(g *graph.Graph, t *graph.Tree, p *partition.Parts, w *CliqueSumWitness) (*Result, error) {
	return cliqueSumShortcut(g, t, p, w, tw.IdentityFold)
}

func cliqueSumShortcut(g *graph.Graph, t *graph.Tree, p *partition.Parts, w *CliqueSumWitness, foldFn func([]int, int) *tw.Folded) (*Result, error) {
	cst := w.CST
	nBags := len(cst.Bags)
	if nBags == 0 {
		return nil, fmt.Errorf("core: empty clique-sum witness")
	}
	// Root and fold the decomposition tree.
	parent := make([]int, nBags)
	for i := range parent {
		parent[i] = -2
	}
	parent[0] = -1
	queue := []int{0}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range cst.Adj[x] {
			if parent[y] == -2 {
				parent[y] = x
				queue = append(queue, y)
			}
		}
	}
	folded := foldFn(parent, 0)
	nGroups := len(folded.Groups)
	rootGroup := folded.GroupOf[0]

	// Euler intervals on the folded group tree.
	tin, tout := eulerIntervals(folded.Parent, rootGroup)
	isAncestor := func(a, b int) bool { return tin[a] <= tin[b] && tout[b] <= tout[a] }

	// Per vertex: bags containing it, in CSR layout.
	inOff := make([]int32, g.N()+1)
	for bi := range cst.Bags {
		for _, v := range cst.Bags[bi].Vertices {
			inOff[v+1]++
		}
	}
	for v := 0; v < g.N(); v++ {
		inOff[v+1] += inOff[v]
	}
	inBagsStore := make([]int32, inOff[g.N()])
	inFill := make([]int32, g.N())
	for bi := range cst.Bags {
		for _, v := range cst.Bags[bi].Vertices {
			inBagsStore[inOff[v]+inFill[v]] = int32(bi)
			inFill[v]++
		}
	}
	// Tree edges: groups containing each tree edge (groups of bags whose
	// edge list has it), dense per edge ID. The per-edge group lists double
	// as the E(B_h) exclusion test (they are tiny: an edge lives in the few
	// bags sharing it).
	// CSR sized by raw (pre-dedup) counts; the fill dedups by scanning the
	// filled prefix, which is tiny (an edge lives in the few bags sharing
	// it), so goLen tracks the deduplicated lengths.
	goOff := make([]int32, g.M()+1)
	for bi := range cst.Bags {
		for _, id := range cst.Bags[bi].Edges {
			if t.IsTreeEdge(id) {
				goOff[id+1]++
			}
		}
	}
	for id := 0; id < g.M(); id++ {
		goOff[id+1] += goOff[id]
	}
	goStore := make([]int32, goOff[g.M()])
	goLen := make([]int32, g.M())
	for bi := range cst.Bags {
		gi := int32(folded.GroupOf[bi])
		for _, id := range cst.Bags[bi].Edges {
			if !t.IsTreeEdge(id) {
				continue
			}
			dup := false
			for _, x := range goStore[goOff[id] : goOff[id]+goLen[id]] {
				if x == gi {
					dup = true
					break
				}
			}
			if !dup {
				goStore[goOff[id]+goLen[id]] = gi
				goLen[id]++
			}
		}
	}
	groupsOfEdge := func(id int) []int32 { return goStore[goOff[id] : goOff[id]+goLen[id]] }
	edgeInGroup := func(gi int, id int) bool {
		for _, x := range groupsOfEdge(id) {
			if int(x) == gi {
				return true
			}
		}
		return false
	}

	// h_P per part: LCA of the groups of bags meeting P.
	lca := func(a, b int) int {
		for a != b {
			if folded.Depth[a] < folded.Depth[b] {
				a, b = b, a
			}
			a = folded.Parent[a]
		}
		return a
	}
	hGroup := make([]int, p.NumParts())
	for i, set := range p.Sets {
		h := -1
		for _, v := range set {
			for _, bi := range inBagsStore[inOff[v]:inOff[v+1]] {
				gi := folded.GroupOf[bi]
				if h == -1 {
					h = gi
				} else {
					h = lca(h, gi)
				}
			}
		}
		if h == -1 {
			return nil, fmt.Errorf("core: part %d meets no bag", i)
		}
		hGroup[i] = h
	}

	// Subtree boundary separators: for every original decomposition edge
	// (bi, parent bi) whose endpoints fold into different groups, its
	// separator vertices belong to the boundary of every folded subtree the
	// edge crosses (the "double edges" of the folding argument: at most two
	// such separators per folded node, hence at most 2k boundary vertices).
	// Lists may repeat a vertex; partsEntering dedups at the part level.
	boundarySep := make([][]int32, nGroups)
	for bi := range cst.Bags {
		pb := parent[bi]
		if pb < 0 {
			continue
		}
		gc, gp := folded.GroupOf[bi], folded.GroupOf[pb]
		if gc == gp {
			continue
		}
		// Chain folding keeps original neighbors in ancestor-descendant
		// groups, but either endpoint may be the folded ancestor (a chain
		// runs through its group's first/middle/last bags).
		lo, hi := gc, gp // walk from lo up to hi
		switch {
		case isAncestor(gp, gc):
			// keep
		case isAncestor(gc, gp):
			lo, hi = gp, gc
		default:
			return nil, fmt.Errorf("core: fold broke ancestry between bags %d and %d", bi, pb)
		}
		sep := cst.Separator(bi, pb)
		for c := lo; c != hi; c = folded.Parent[c] {
			for _, v := range sep {
				boundarySep[c] = append(boundarySep[c], int32(v))
			}
		}
	}
	// Parts entering each folded subtree: parts owning a boundary vertex
	// (the paper's condition P ∩ V(C_f') ≠ ∅, which caps congestion at
	// O(k) per decomposition level). Deduped per group with an epoch arena
	// over part indices.
	partsEntering := make([][]int, nGroups)
	partSeen := g.AcquireScratch() // part indices: NumParts <= N
	defer g.ReleaseScratch(partSeen)
	for gi := range boundarySep {
		partSeen.Reset()
		for _, v := range boundarySep[gi] {
			if i := p.Of[v]; i != -1 && partSeen.Visit(i) {
				partsEntering[gi] = append(partsEntering[gi], i)
			}
		}
	}
	partsAt := make([][]int, nGroups)
	for i, h := range hGroup {
		partsAt[h] = append(partsAt[h], i)
	}
	edges := make([][]int, p.NumParts())
	// Global shortcut grants: for each tree edge, walk up from each group
	// containing it; at ancestor a reached through child subtree c, parts
	// anchored at a that enter c's subtree receive the edge, except edges of
	// the anchor group's own bags (handled locally). Iterating tree edges by
	// child vertex keeps the grant order deterministic.
	granted := g.AcquireScratch() // part indices: NumParts <= N
	defer g.ReleaseScratch(granted)
	// Two passes over the grant walks: count per part, then fill exact-size
	// lists sliced from one backing array (local grants append after them).
	grantCounts := make([]int32, p.NumParts())
	grantTotal := 0
	walk := func(id int, emit func(i, id int)) {
		granted.Reset()
		for _, g32 := range groupsOfEdge(id) {
			c := int(g32)
			for a := folded.Parent[c]; a != -1; c, a = a, folded.Parent[a] {
				if edgeInGroup(a, id) {
					continue
				}
				for _, i := range partsEntering[c] {
					if hGroup[i] == a && granted.Visit(i) {
						emit(i, id)
					}
				}
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		id := t.ParentEdge[v]
		if id == -1 || goLen[id] == 0 {
			continue
		}
		walk(id, func(i, _ int) { grantCounts[i]++; grantTotal++ })
	}
	grantStore := make([]int, 0, grantTotal)
	for i, c := range grantCounts {
		base := len(grantStore)
		grantStore = grantStore[:base+int(c)]
		edges[i] = grantStore[base : base : base+int(c)]
	}
	for v := 0; v < g.N(); v++ {
		id := t.ParentEdge[v]
		if id == -1 || goLen[id] == 0 {
			continue
		}
		walk(id, func(i, id int) { edges[i] = append(edges[i], id) })
	}

	// Local shortcuts: for each bag, the parts anchored at its group that
	// meet it (membership via the partition's dense Of array).
	info := map[string]int{
		"foldedDepth": folded.Height(),
		"groups":      nGroups,
	}
	maxLocalWidth := 0
	for bi := range cst.Bags {
		gi := folded.GroupOf[bi]
		var localPartIdx []int
		for _, i := range partsAt[gi] {
			for _, v := range cst.Bags[bi].Vertices {
				if p.Of[v] == i {
					localPartIdx = append(localPartIdx, i)
					break
				}
			}
		}
		if len(localPartIdx) == 0 {
			continue
		}
		localEdges, width, err := localBagShortcut(g, t, p, w, bi, parent[bi], localPartIdx)
		if err != nil {
			return nil, fmt.Errorf("core: bag %d local shortcut: %w", bi, err)
		}
		if width > maxLocalWidth {
			maxLocalWidth = width
		}
		for i, ids := range localEdges {
			edges[localPartIdx[i]] = append(edges[localPartIdx[i]], ids...)
		}
	}
	info["maxLocalFoldedWidth"] = maxLocalWidth

	// Global walk edges and local bag edges overlap; normalize through the
	// constructor.
	s, err := shortcut.NewNormalized(g, t, p, edges)
	if err != nil {
		return nil, fmt.Errorf("core: assembling clique-sum shortcut: %w", err)
	}
	return &Result{S: s, M: s.Measure(), Info: info}, nil
}

// localBagShortcut builds the local (within-bag) shortcut of Theorem 7 for
// the given parts: Steiner-contract T onto the bag, run the family
// (treewidth) shortcutter on the completed bag graph, keep only real global
// tree edges, and drop edges inside the parent partial clique.
func localBagShortcut(g *graph.Graph, t *graph.Tree, p *partition.Parts, w *CliqueSumWitness, bi, parentBag int, partIdx []int) (perPart [][]int, foldedWidth int, err error) {
	bagLocal := w.BagGraphs[bi]
	toGlobal := w.BagToGlobal[bi]
	toLocal := g.AcquireScratch() // global vertex -> local bag index
	defer g.ReleaseScratch(toLocal)
	for li, v := range toGlobal {
		toLocal.Set(v, int32(li))
	}
	// Repaired tree T²: Steiner contraction mapped into bag-local indices.
	// All the small per-call int buffers share one backing allocation.
	ln := bagLocal.N()
	lstore := make([]int, 2*ln, 4*ln)
	lparent := lstore[:ln]
	lparentEdge := lstore[ln : 2*ln]
	stEdges, stRoot := steinerContract(t, toGlobal)
	realGlobal := bagLocal.AcquireScratch() // local edge ID -> global tree edge ID
	defer bagLocal.ReleaseScratch(realGlobal)
	for i := range lparent {
		lparent[i] = -1
		lparentEdge[i] = -1
	}
	for _, se := range stEdges {
		lc, lp := int(toLocal.GetOr(se.Child, -1)), int(toLocal.GetOr(se.Parent, -1))
		leid := bagLocal.FindEdge(lc, lp)
		if leid == -1 {
			return nil, 0, fmt.Errorf("repaired tree edge {%d,%d} missing from completed bag", se.Child, se.Parent)
		}
		lparent[lc] = lp
		lparentEdge[lc] = leid
		if se.GlobalID != -1 {
			realGlobal.Set(leid, int32(se.GlobalID))
		}
	}
	ltree, err := graph.TreeFromParents(bagLocal, int(toLocal.GetOr(stRoot, -1)), lparent, lparentEdge)
	if err != nil {
		return nil, 0, fmt.Errorf("repaired tree invalid: %w", err)
	}
	// Clip parts into the bag and split into components of the completed
	// bag graph (the double-edge treatment: components become sub-parts).
	// The component DFS runs over hoisted buffers: one scratch (slot 0 = in
	// clipped set, 1 = seen), one shared component store, one stack.
	sets := make([][]int, 0, len(partIdx))
	origin := make([]int, 0, len(partIdx)) // sub-part -> index into partIdx
	localVs := lstore[2*ln : 2*ln : 3*ln]
	in := bagLocal.AcquireScratch()
	defer bagLocal.ReleaseScratch(in)
	compStore := lstore[3*ln : 3*ln : 4*ln]
	var stack []int
	for k, i := range partIdx {
		localVs = localVs[:0]
		for _, v := range p.Sets[i] {
			if lv, ok := toLocal.Get(v); ok {
				localVs = append(localVs, int(lv))
			}
		}
		in.Reset()
		for _, v := range localVs {
			in.Set(v, 0)
		}
		for _, v := range localVs {
			if st, _ := in.Get(v); st == 1 {
				continue
			}
			base := len(compStore)
			stack = append(stack[:0], v)
			in.Set(v, 1)
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				compStore = append(compStore, x)
				for _, a := range bagLocal.Adj(x) {
					if st, ok := in.Get(a.To); ok && st == 0 {
						in.Set(a.To, 1)
						stack = append(stack, a.To)
					}
				}
			}
			// compStore may have been regrown by later appends; slices taken
			// here keep pointing at the backing they were cut from, which
			// stays correct.
			comp := compStore[base:len(compStore):len(compStore)]
			sort.Ints(comp)
			sets = append(sets, comp)
			origin = append(origin, k)
		}
	}
	perPart = make([][]int, len(partIdx))
	if len(sets) == 0 {
		return perPart, 0, nil
	}
	// componentsWithin splits into connected pieces, so skip the re-check.
	lp, err := partition.NewUnchecked(bagLocal, sets)
	if err != nil {
		return nil, 0, fmt.Errorf("clipped parts invalid: %w", err)
	}
	res, err := shortcut.FromTreewidth(bagLocal, ltree, lp, w.BagDecomp[bi])
	if err != nil {
		return nil, 0, err
	}
	// Parent partial clique exclusion set (separators are tiny: ≤ k+1).
	var sepGlobal []int
	if parentBag >= 0 {
		sepGlobal = w.CST.Separator(bi, parentBag)
	}
	inSep := func(v int) bool {
		for _, s := range sepGlobal {
			if s == v {
				return true
			}
		}
		return false
	}
	// Two passes: count surviving grants per part, then fill exact-size
	// lists sliced from one backing array.
	keep := func(leid int) (int, bool) {
		gid, real := realGlobal.Get(leid)
		if !real {
			return 0, false // virtual contracted-path edge: discard
		}
		ge := g.Edge(int(gid))
		if inSep(ge.U) && inSep(ge.V) {
			return 0, false // inside the parent partial clique: discard
		}
		return int(gid), true
	}
	counts := make([]int32, len(partIdx))
	total := 0
	for si, ids := range res.S.Edges {
		for _, leid := range ids {
			if _, ok := keep(leid); ok {
				counts[origin[si]]++
				total++
			}
		}
	}
	grantStore := make([]int, 0, total)
	for k := range perPart {
		base := len(grantStore)
		grantStore = grantStore[:base+int(counts[k])]
		perPart[k] = grantStore[base : base : base+int(counts[k])]
	}
	for si, ids := range res.S.Edges {
		for _, leid := range ids {
			if gid, ok := keep(leid); ok {
				perPart[origin[si]] = append(perPart[origin[si]], gid)
			}
		}
	}
	return perPart, res.FoldedWidth, nil
}

// componentsWithin splits a vertex set into connected components of the
// induced subgraph of lg. One scratch slot per vertex: 0 = in set, unseen;
// 1 = seen.
func componentsWithin(lg *graph.Graph, vs []int) [][]int {
	in := lg.AcquireScratch()
	defer lg.ReleaseScratch(in)
	for _, v := range vs {
		in.Set(v, 0)
	}
	var out [][]int
	var stack []int
	store := make([]int, 0, len(vs)) // all components share one backing array
	for _, v := range vs {
		if st, _ := in.Get(v); st == 1 {
			continue
		}
		base := len(store)
		stack = append(stack[:0], v)
		in.Set(v, 1)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			store = append(store, x)
			for _, a := range lg.Adj(x) {
				if st, ok := in.Get(a.To); ok && st == 0 {
					in.Set(a.To, 1)
					stack = append(stack, a.To)
				}
			}
		}
		comp := store[base:len(store):len(store)]
		sort.Ints(comp)
		out = append(out, comp)
	}
	return out
}

// eulerIntervals computes entry/exit times of a rooted tree given by parent
// pointers.
func eulerIntervals(parent []int, root int) (tin, tout []int) {
	n := len(parent)
	tin = make([]int, n)
	tout = make([]int, n)
	// Children lists in CSR layout.
	deg := make([]int32, n)
	for _, p := range parent {
		if p >= 0 {
			deg[p]++
		}
	}
	children := make([][]int, n)
	childStore := make([]int, 0, n)
	for v := 0; v < n; v++ {
		base := len(childStore)
		childStore = childStore[:base+int(deg[v])]
		children[v] = childStore[base : base : base+int(deg[v])]
	}
	for v, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	timer := 0
	type frame struct {
		v    int
		exit bool
	}
	stack := make([]frame, 1, 2*n)
	stack[0] = frame{root, false}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.exit {
			tout[f.v] = timer
			timer++
			continue
		}
		tin[f.v] = timer
		timer++
		stack = append(stack, frame{f.v, true})
		for _, c := range children[f.v] {
			stack = append(stack, frame{c, false})
		}
	}
	return tin, tout
}

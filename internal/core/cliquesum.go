package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
	"repro/internal/structure"
	"repro/internal/tw"
)

// CliqueSumWitness is the structural input for Theorem 7: the clique-sum
// decomposition tree plus, per bag, its clique-completed local graph B⁰, a
// tree decomposition of it (the family-F shortcut witness), and the
// local-to-global vertex map.
type CliqueSumWitness struct {
	CST         *structure.CliqueSumTree
	BagGraphs   []*graph.Graph
	BagDecomp   []*tw.Decomposition
	BagToGlobal [][]int
}

// Result is a constructed shortcut plus its measurement and diagnostics.
type Result struct {
	S    *shortcut.Shortcut
	M    shortcut.Measurement
	Info map[string]int
}

// CliqueSumShortcut realizes Theorem 7: a T-restricted shortcut on a
// k-clique-sum of graphs from a family F (here: graphs carrying treewidth
// witnesses), with block parameter 2k + O(b_F) and congestion
// O(k·log²n) + c_F, via the folded decomposition tree of Figure 4.
//
// Per the paper's proof of Lemma 1 + Theorem 7:
//   - global shortcuts: each part P receives the tree edges inside the
//     decomposition subtrees hanging below its LCA group h_P, minus edges of
//     the h_P group's bags;
//   - local shortcuts: within every bag of the h_P group that P meets, the
//     repaired tree T²ₕ (Steiner contraction of T onto the bag) carries a
//     family-F shortcut for P's clipped components; assigned virtual edges
//     are discarded, as are edges inside the parent partial clique.
func CliqueSumShortcut(g *graph.Graph, t *graph.Tree, p *partition.Parts, w *CliqueSumWitness) (*Result, error) {
	return cliqueSumShortcut(g, t, p, w, tw.Fold)
}

// CliqueSumShortcutUnfolded is the Lemma 1 variant without decomposition-
// tree compression: congestion carries the raw depth d_DT instead of
// O(log² n). It exists for the folding ablation (experiment E10).
func CliqueSumShortcutUnfolded(g *graph.Graph, t *graph.Tree, p *partition.Parts, w *CliqueSumWitness) (*Result, error) {
	return cliqueSumShortcut(g, t, p, w, tw.IdentityFold)
}

func cliqueSumShortcut(g *graph.Graph, t *graph.Tree, p *partition.Parts, w *CliqueSumWitness, foldFn func([]int, int) *tw.Folded) (*Result, error) {
	cst := w.CST
	nBags := len(cst.Bags)
	if nBags == 0 {
		return nil, fmt.Errorf("core: empty clique-sum witness")
	}
	// Root and fold the decomposition tree.
	parent := make([]int, nBags)
	for i := range parent {
		parent[i] = -2
	}
	parent[0] = -1
	queue := []int{0}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range cst.Adj[x] {
			if parent[y] == -2 {
				parent[y] = x
				queue = append(queue, y)
			}
		}
	}
	folded := foldFn(parent, 0)
	nGroups := len(folded.Groups)
	rootGroup := folded.GroupOf[0]

	// Euler intervals on the folded group tree.
	tin, tout := eulerIntervals(folded.Parent, rootGroup)
	isAncestor := func(a, b int) bool { return tin[a] <= tin[b] && tout[b] <= tout[a] }

	// Per vertex: bags containing it; per group: bag-vertex membership.
	inBags := make([][]int, g.N())
	for bi := range cst.Bags {
		for _, v := range cst.Bags[bi].Vertices {
			inBags[v] = append(inBags[v], bi)
		}
	}
	// Tree edges: groups containing each tree edge (groups of bags whose
	// edge list has it). Also per-group tree-edge membership, for the
	// E(B_h) exclusion.
	edgeGroups := make(map[int][]int)
	edgeInGroup := make([]map[int]bool, nGroups)
	for gi := range edgeInGroup {
		edgeInGroup[gi] = make(map[int]bool)
	}
	for bi := range cst.Bags {
		gi := folded.GroupOf[bi]
		for _, id := range cst.Bags[bi].Edges {
			if t.IsTreeEdge(id) {
				if !edgeInGroup[gi][id] {
					edgeGroups[id] = append(edgeGroups[id], gi)
					edgeInGroup[gi][id] = true
				}
			}
		}
	}

	// h_P per part: LCA of the groups of bags meeting P.
	lca := func(a, b int) int {
		for a != b {
			if folded.Depth[a] < folded.Depth[b] {
				a, b = b, a
			}
			a = folded.Parent[a]
		}
		return a
	}
	hGroup := make([]int, p.NumParts())
	for i, set := range p.Sets {
		h := -1
		for _, v := range set {
			for _, bi := range inBags[v] {
				gi := folded.GroupOf[bi]
				if h == -1 {
					h = gi
				} else {
					h = lca(h, gi)
				}
			}
		}
		if h == -1 {
			return nil, fmt.Errorf("core: part %d meets no bag", i)
		}
		hGroup[i] = h
	}

	// Subtree boundary separators: for every original decomposition edge
	// (bi, parent bi) whose endpoints fold into different groups, its
	// separator vertices belong to the boundary of every folded subtree the
	// edge crosses (the "double edges" of the folding argument: at most two
	// such separators per folded node, hence at most 2k boundary vertices).
	boundarySep := make([]map[int]bool, nGroups)
	for gi := range boundarySep {
		boundarySep[gi] = make(map[int]bool)
	}
	for bi := range cst.Bags {
		pb := parent[bi]
		if pb < 0 {
			continue
		}
		gc, gp := folded.GroupOf[bi], folded.GroupOf[pb]
		if gc == gp {
			continue
		}
		// Chain folding keeps original neighbors in ancestor-descendant
		// groups, but either endpoint may be the folded ancestor (a chain
		// runs through its group's first/middle/last bags).
		lo, hi := gc, gp // walk from lo up to hi
		switch {
		case isAncestor(gp, gc):
			// keep
		case isAncestor(gc, gp):
			lo, hi = gp, gc
		default:
			return nil, fmt.Errorf("core: fold broke ancestry between bags %d and %d", bi, pb)
		}
		sep := cst.Separator(bi, pb)
		for c := lo; c != hi; c = folded.Parent[c] {
			for _, v := range sep {
				boundarySep[c][v] = true
			}
		}
	}
	// Parts entering each folded subtree: parts owning a boundary vertex
	// (the paper's condition P ∩ V(C_f') ≠ ∅, which caps congestion at
	// O(k) per decomposition level).
	partsEntering := make([][]int, nGroups)
	for gi := range boundarySep {
		seen := make(map[int]bool)
		for v := range boundarySep[gi] {
			if i := p.Of[v]; i != -1 && !seen[i] {
				seen[i] = true
				partsEntering[gi] = append(partsEntering[gi], i)
			}
		}
	}
	partsAt := make([][]int, nGroups)
	for i, h := range hGroup {
		partsAt[h] = append(partsAt[h], i)
	}
	edges := make([][]int, p.NumParts())
	partHasVertexCache := make([]map[int]bool, p.NumParts())
	for i, set := range p.Sets {
		partHasVertexCache[i] = make(map[int]bool, len(set))
		for _, v := range set {
			partHasVertexCache[i][v] = true
		}
	}
	// Global shortcut grants: for each tree edge, walk up from each group
	// containing it; at ancestor a reached through child subtree c, parts
	// anchored at a that enter c's subtree receive the edge, except edges of
	// the anchor group's own bags (handled locally).
	granted := make(map[int]bool)
	for id, gs := range edgeGroups {
		for i := range granted {
			delete(granted, i)
		}
		for _, g0 := range gs {
			c := g0
			for a := folded.Parent[c]; a != -1; c, a = a, folded.Parent[a] {
				if edgeInGroup[a][id] {
					continue
				}
				for _, i := range partsEntering[c] {
					if hGroup[i] == a && !granted[i] {
						granted[i] = true
						edges[i] = append(edges[i], id)
					}
				}
			}
		}
	}

	// Local shortcuts: for each bag, the parts anchored at its group that
	// meet it.
	info := map[string]int{
		"foldedDepth": folded.Height(),
		"groups":      nGroups,
	}
	maxLocalWidth := 0
	for bi := range cst.Bags {
		gi := folded.GroupOf[bi]
		var localPartIdx []int
		for _, i := range partsAt[gi] {
			for _, v := range cst.Bags[bi].Vertices {
				if partHasVertexCache[i][v] {
					localPartIdx = append(localPartIdx, i)
					break
				}
			}
		}
		if len(localPartIdx) == 0 {
			continue
		}
		localEdges, width, err := localBagShortcut(g, t, p, w, bi, parent[bi], localPartIdx)
		if err != nil {
			return nil, fmt.Errorf("core: bag %d local shortcut: %w", bi, err)
		}
		if width > maxLocalWidth {
			maxLocalWidth = width
		}
		for i, ids := range localEdges {
			edges[localPartIdx[i]] = append(edges[localPartIdx[i]], ids...)
		}
	}
	info["maxLocalFoldedWidth"] = maxLocalWidth

	s, err := shortcut.New(g, t, p, edges)
	if err != nil {
		return nil, fmt.Errorf("core: assembling clique-sum shortcut: %w", err)
	}
	return &Result{S: s, M: s.Measure(), Info: info}, nil
}

// localBagShortcut builds the local (within-bag) shortcut of Theorem 7 for
// the given parts: Steiner-contract T onto the bag, run the family
// (treewidth) shortcutter on the completed bag graph, keep only real global
// tree edges, and drop edges inside the parent partial clique.
func localBagShortcut(g *graph.Graph, t *graph.Tree, p *partition.Parts, w *CliqueSumWitness, bi, parentBag int, partIdx []int) (perPart [][]int, foldedWidth int, err error) {
	bagLocal := w.BagGraphs[bi]
	toGlobal := w.BagToGlobal[bi]
	toLocal := make(map[int]int, len(toGlobal))
	for li, v := range toGlobal {
		toLocal[v] = li
	}
	// Repaired tree T²: Steiner contraction mapped into bag-local indices.
	stEdges, stRoot := steinerContract(t, toGlobal)
	lparent := make([]int, bagLocal.N())
	lparentEdge := make([]int, bagLocal.N())
	realGlobal := make(map[int]int) // local edge ID -> global tree edge ID
	for i := range lparent {
		lparent[i] = -1
		lparentEdge[i] = -1
	}
	for _, se := range stEdges {
		lc, lp := toLocal[se.Child], toLocal[se.Parent]
		leid := bagLocal.FindEdge(lc, lp)
		if leid == -1 {
			return nil, 0, fmt.Errorf("repaired tree edge {%d,%d} missing from completed bag", se.Child, se.Parent)
		}
		lparent[lc] = lp
		lparentEdge[lc] = leid
		if se.GlobalID != -1 {
			realGlobal[leid] = se.GlobalID
		}
	}
	ltree, err := graph.TreeFromParents(bagLocal, toLocal[stRoot], lparent, lparentEdge)
	if err != nil {
		return nil, 0, fmt.Errorf("repaired tree invalid: %w", err)
	}
	// Clip parts into the bag and split into components of the completed
	// bag graph (the double-edge treatment: components become sub-parts).
	var sets [][]int
	var origin []int // sub-part -> index into partIdx
	for k, i := range partIdx {
		var localVs []int
		for _, v := range p.Sets[i] {
			if lv, ok := toLocal[v]; ok {
				localVs = append(localVs, lv)
			}
		}
		for _, comp := range componentsWithin(bagLocal, localVs) {
			sets = append(sets, comp)
			origin = append(origin, k)
		}
	}
	perPart = make([][]int, len(partIdx))
	if len(sets) == 0 {
		return perPart, 0, nil
	}
	lp, err := partition.New(bagLocal, sets)
	if err != nil {
		return nil, 0, fmt.Errorf("clipped parts invalid: %w", err)
	}
	res, err := shortcut.FromTreewidth(bagLocal, ltree, lp, w.BagDecomp[bi])
	if err != nil {
		return nil, 0, err
	}
	// Parent partial clique exclusion set.
	sepGlobal := map[int]bool{}
	if parentBag >= 0 {
		for _, v := range w.CST.Separator(bi, parentBag) {
			sepGlobal[v] = true
		}
	}
	for si, ids := range res.S.Edges {
		for _, leid := range ids {
			gid, real := realGlobal[leid]
			if !real {
				continue // virtual contracted-path edge: discard
			}
			ge := g.Edge(gid)
			if sepGlobal[ge.U] && sepGlobal[ge.V] {
				continue // inside the parent partial clique: discard
			}
			perPart[origin[si]] = append(perPart[origin[si]], gid)
		}
	}
	return perPart, res.FoldedWidth, nil
}

// componentsWithin splits a vertex set into connected components of the
// induced subgraph of lg.
func componentsWithin(lg *graph.Graph, vs []int) [][]int {
	in := make(map[int]bool, len(vs))
	for _, v := range vs {
		in[v] = true
	}
	seen := make(map[int]bool, len(vs))
	var out [][]int
	for _, v := range vs {
		if seen[v] {
			continue
		}
		var comp []int
		stack := []int{v}
		seen[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, x)
			for _, a := range lg.Adj(x) {
				if in[a.To] && !seen[a.To] {
					seen[a.To] = true
					stack = append(stack, a.To)
				}
			}
		}
		sort.Ints(comp)
		out = append(out, comp)
	}
	return out
}

// eulerIntervals computes entry/exit times of a rooted tree given by parent
// pointers.
func eulerIntervals(parent []int, root int) (tin, tout []int) {
	n := len(parent)
	tin = make([]int, n)
	tout = make([]int, n)
	children := make([][]int, n)
	for v, p := range parent {
		if p >= 0 {
			children[p] = append(children[p], v)
		}
	}
	timer := 0
	type frame struct {
		v    int
		exit bool
	}
	stack := []frame{{root, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.exit {
			tout[f.v] = timer
			timer++
			continue
		}
		tin[f.v] = timer
		timer++
		stack = append(stack, frame{f.v, true})
		for _, c := range children[f.v] {
			stack = append(stack, frame{c, false})
		}
	}
	return tin, tout
}

package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

func witnessOf(cs *gen.CliqueSumGraph) *core.CliqueSumWitness {
	return &core.CliqueSumWitness{
		CST:         cs.CST,
		BagGraphs:   cs.BagGraphs,
		BagDecomp:   cs.BagDecomp,
		BagToGlobal: cs.BagToGlobal,
	}
}

func TestCliqueSumShortcutGridBags(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var pieces []*gen.Piece
	for i := 0; i < 6; i++ {
		pieces = append(pieces, gen.GridPiece(4, 4))
	}
	cs := gen.CliqueSum(pieces, 2, rng)
	tr, err := graph.BFSTree(cs.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.Voronoi(cs.G, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CliqueSumShortcut(cs.G, tr, p, witnessOf(cs))
	if err != nil {
		t.Fatal(err)
	}
	empty := shortcut.Empty(cs.G, tr, p).Measure()
	if res.M.Quality >= empty.Quality {
		t.Fatalf("clique-sum shortcut quality %d no better than empty %d", res.M.Quality, empty.Quality)
	}
	// Theorem 7 block shape: 2k + O(b_F). b_F for treewidth bags is
	// O(folded width); allow a generous constant.
	bound := 2*cs.K + 8*(res.Info["maxLocalFoldedWidth"]+2) + 4
	if res.M.MaxBlocks > bound {
		t.Fatalf("blocks %d exceed Theorem 7 shape bound %d", res.M.MaxBlocks, bound)
	}
}

func TestCliqueSumShortcutTriangulationBags(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var pieces []*gen.Piece
	for i := 0; i < 5; i++ {
		pieces = append(pieces, gen.ApollonianPiece(25, rng))
	}
	cs := gen.CliqueSum(pieces, 3, rng)
	tr, _ := graph.BFSTree(cs.G, 0)
	p, err := partition.Voronoi(cs.G, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CliqueSumShortcut(cs.G, tr, p, witnessOf(cs))
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Quality <= 0 {
		t.Fatal("degenerate measurement")
	}
	// Every part must end with a small number of blocks relative to empty.
	empty := shortcut.Empty(cs.G, tr, p).Measure()
	if res.M.MaxBlocks >= empty.MaxBlocks && empty.MaxBlocks > 4 {
		t.Fatalf("no block improvement: %d vs %d", res.M.MaxBlocks, empty.MaxBlocks)
	}
}

func TestCliqueSumShortcutBoruvkaParts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var pieces []*gen.Piece
	for i := 0; i < 4; i++ {
		pieces = append(pieces, gen.KTreePiece(40, 3, rng))
	}
	cs := gen.CliqueSum(pieces, 3, rng)
	gen.UniformWeights(cs.G, rng)
	p, err := partition.BoruvkaFragments(cs.G, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := graph.BFSTree(cs.G, 0)
	res, err := core.CliqueSumShortcut(cs.G, tr, p, witnessOf(cs))
	if err != nil {
		t.Fatal(err)
	}
	if res.Info["foldedDepth"] > 64 {
		t.Fatalf("folded depth %d suspiciously large for %d bags", res.Info["foldedDepth"], len(cs.CST.Bags))
	}
}

func TestCliqueSumSingleBagDegeneratesToTreewidth(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cs := gen.CliqueSum([]*gen.Piece{gen.GridPiece(5, 5)}, 2, rng)
	tr, _ := graph.BFSTree(cs.G, 0)
	p, err := partition.GridRows(cs.G, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.CliqueSumShortcut(cs.G, tr, p, witnessOf(cs))
	if err != nil {
		t.Fatal(err)
	}
	// Single bag: everything is local; quality should match the plain
	// treewidth construction. The direct construction runs on the bag graph,
	// so its tree and parts must be built there too (shortcut.New now
	// enforces that identity).
	bg := cs.BagGraphs[0]
	btr, err := graph.BFSTree(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := partition.GridRows(bg, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	twRes, err := shortcut.FromTreewidth(bg, btr, bp, cs.BagDecomp[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.M.MaxBlocks > 2*twRes.S.Measure().MaxBlocks+2 {
		t.Fatalf("single-bag clique-sum much worse than direct treewidth: %d vs %d",
			res.M.MaxBlocks, twRes.S.Measure().MaxBlocks)
	}
}

func TestAlmostEmbeddableShortcutPlanarApex(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := gen.PlanarWithApex(8, 8, rng)
	tr, err := graph.BFSTree(a.G, a.Apices[0]) // root at the apex: shallow tree
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.Voronoi(a.G, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a)
	if err != nil {
		t.Fatal(err)
	}
	empty := shortcut.Empty(a.G, tr, p).Measure()
	if res.M.Quality >= empty.Quality && empty.MaxBlocks > 3 {
		t.Fatalf("apex shortcut quality %d vs empty %d", res.M.Quality, empty.Quality)
	}
}

func TestAlmostEmbeddableWheelScenario(t *testing.T) {
	// The paper's §2.3.2 example: cycle + apex = wheel. Rim arcs as parts.
	rng := rand.New(rand.NewSource(6))
	a := gen.CycleWithApex(64, rng)
	tr, err := graph.BFSTree(a.G, a.Apices[0])
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.RimArcs(a.G, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a)
	if err != nil {
		t.Fatal(err)
	}
	// The apex-aware construction must keep quality near the (tiny) graph
	// diameter: blocks O(1)·small, not Θ(n/parts).
	if res.M.MaxBlocks > 10 {
		t.Fatalf("wheel blocks %d; apex handling failed", res.M.MaxBlocks)
	}
	// Contrast: the tree alone without shortcuts leaves ~64/8 blocks per arc.
	empty := shortcut.Empty(a.G, tr, p).Measure()
	if empty.MaxBlocks <= res.M.MaxBlocks {
		t.Fatalf("expected empty shortcut to be worse: %d vs %d", empty.MaxBlocks, res.M.MaxBlocks)
	}
}

func TestAlmostEmbeddableVortexGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
		Base:        gen.Grid(7, 7),
		NumVortices: 2,
		VortexDepth: 2,
		VortexNodes: 4,
		NumApices:   1,
		ApexDegree:  6,
	}, rng)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(a.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.Voronoi(a.G, 9, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Info["specialCells"] < 1 {
		t.Fatal("expected at least one special cell")
	}
	if res.M.Quality <= 0 {
		t.Fatal("degenerate measurement")
	}
}

func TestAlmostEmbeddableNoApexIsGlobalTreewidth(t *testing.T) {
	// Without apices there is a single cell; the construction degenerates
	// to the Theorem 9 route (global treewidth shortcut).
	rng := rand.New(rand.NewSource(8))
	a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
		Base:        gen.Grid(6, 6),
		NumVortices: 1,
		VortexDepth: 2,
		VortexNodes: 3,
	}, rng)
	tr, _ := graph.BFSTree(a.G, 0)
	p, err := partition.Voronoi(a.G, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.Info["cells"] != 1 {
		t.Fatalf("expected a single cell, got %d", res.Info["cells"])
	}
	if res.M.MaxBlocks > 20 {
		t.Fatalf("blocks %d too large for no-apex genus+vortex route", res.M.MaxBlocks)
	}
}

func TestCellPartitionAndAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := gen.PlanarWithApex(6, 6, rng)
	tr, _ := graph.BFSTree(a.G, a.Apices[0])
	cells := core.BuildCells(a.G, tr, a.Apices, a.VortexOf)
	// Cells cover exactly the non-apex vertices, disjointly.
	covered := 0
	for ci, vs := range cells.Cells {
		covered += len(vs)
		for _, v := range vs {
			if cells.CellOf[v] != ci {
				t.Fatal("CellOf inconsistent")
			}
			if a.IsApex(v) {
				t.Fatal("apex inside a cell")
			}
		}
		if len(cells.Subtrees[ci]) < 1 {
			t.Fatal("cell without subtree roots")
		}
	}
	if covered != a.G.N()-len(a.Apices) {
		t.Fatalf("cells cover %d of %d", covered, a.G.N()-len(a.Apices))
	}
	p, err := partition.Voronoi(a.G, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	assigned, stats := core.AssignCells(p, cells, nil)
	// Property (i) of Definition 15: each part is related to all cells it
	// intersects except at most 2.
	for i := range assigned {
		touch := make(map[int]bool)
		for _, v := range p.Sets[i] {
			if ci := cells.CellOf[v]; ci != -1 {
				touch[ci] = true
			}
		}
		got := make(map[int]bool, len(assigned[i]))
		for _, ci := range assigned[i] {
			got[ci] = true
			if !touch[ci] {
				t.Fatalf("part %d assigned cell %d it does not touch", i, ci)
			}
		}
		missing := 0
		for ci := range touch {
			if !got[ci] {
				missing++
			}
		}
		if missing > 2 {
			t.Fatalf("part %d missing %d > 2 touched cells", i, missing)
		}
	}
	if stats.ObservedBeta < 0 {
		t.Fatal("bad stats")
	}
}

func TestBestOfAndFromOblivious(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	e := gen.Grid(6, 6)
	tr, _ := graph.BFSTree(e.G, 0)
	p, err := partition.Voronoi(e.G, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	r1 := core.FromOblivious(e.G, tr, p)
	if core.BestOf(nil, r1) != r1 {
		t.Fatal("BestOf dropped the only result")
	}
	if core.BestOf() != nil {
		t.Fatal("BestOf() should be nil")
	}
}

package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// ExcludedMinorShortcut realizes Theorem 6 (the main theorem): every graph
// in a family excluding a fixed minor H admits tree-restricted shortcuts of
// quality Õ(d²) — block parameter O(d), congestion O(d·log n + log² n).
//
// By the Graph Structure Theorem the graph is a k-clique-sum of
// k-almost-embeddable bags; our generators hand over exactly that witness
// (clique-sum tree + per-bag diameter-based tree decompositions standing in
// for the Theorem 8 family bounds), and the construction is Theorem 7 over
// that family. The returned diagnostics expose the folded decomposition
// depth (the log² n congestion term) and the per-bag widths (the O(d) block
// term).
func ExcludedMinorShortcut(g *graph.Graph, t *graph.Tree, p *partition.Parts, w *CliqueSumWitness) (*Result, error) {
	if w == nil || w.CST == nil {
		return nil, fmt.Errorf("core: excluded-minor shortcut requires a clique-sum witness")
	}
	return CliqueSumShortcut(g, t, p, w)
}

// BestOf runs several constructions and returns the one with the best
// measured quality. Experiments use it to compare the structure-aware
// construction against the oblivious one, mirroring the paper's remark that
// the framework algorithm never looks at the structure and can only be
// better than what the existence proof guarantees.
func BestOf(results ...*Result) *Result {
	var best *Result
	for _, r := range results {
		if r == nil {
			continue
		}
		if best == nil || r.M.Quality < best.M.Quality {
			best = r
		}
	}
	return best
}

// FromOblivious wraps the structure-blind constructor's output as a Result
// for uniform comparison.
func FromOblivious(g *graph.Graph, t *graph.Tree, p *partition.Parts) *Result {
	s, m := shortcut.ObliviousAuto(g, t, p)
	return &Result{S: s, M: m, Info: map[string]int{"oblivious": 1}}
}

package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Gate is one (fence, gate) pair of a combinatorial gate collection
// (Definition 17): the gate covers all edges between its two cells, the
// fence contains the gate's boundary.
type Gate struct {
	CellA, CellB int
	Fence        []int // sorted vertex list
	Set          []int // sorted vertex list ("gate" S); Fence ⊆ Set
}

// GateCollection is an s-combinatorial gate for a cell partition, built per
// the structure of Lemma 7: one gate per adjacent cell pair, consisting of
// the inter-cell edges' endpoints connected up by paths inside each cell's
// spanning tree. Fences equal gates (F = S), which satisfies properties
// (1), (2) and (5) of Definition 17 for free; property (6)'s parameter s is
// *measured* rather than proved — on planar cell structures the adjacency
// graph is planar, so the number of gates is at most 3|C| and s comes out
// O(d), which is exactly what tests assert.
type GateCollection struct {
	Gates []Gate
	// S is the measured parameter: (Σ |fence|) / |cells|.
	S float64
}

// BuildGates constructs the gate collection for the given cell partition.
// cellTrees[ci] must be a parent map (vertex -> parent, roots map to -1)
// spanning cell ci with diameter O(d); BuildCells' tree components provide
// it naturally via the global spanning tree.
func BuildGates(g *graph.Graph, cp *CellPartition, t *graph.Tree) (*GateCollection, error) {
	// Pair up cells by the edges between them.
	type pairKey struct{ a, b int }
	interCell := make(map[pairKey][]int)
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		ca, cb := cp.CellOf[e.U], cp.CellOf[e.V]
		if ca == -1 || cb == -1 || ca == cb {
			continue
		}
		if ca > cb {
			ca, cb = cb, ca
		}
		interCell[pairKey{ca, cb}] = append(interCell[pairKey{ca, cb}], id)
	}
	gc := &GateCollection{}
	totalFence := 0
	var keys []pairKey
	for k := range interCell {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	for _, k := range keys {
		edges := interCell[k]
		in := make(map[int]bool)
		addPathWithinCell := func(u, v, cell int) error {
			// Tree path between u and v restricted to the cell: both lie in
			// the same tree component, so walking up to their meeting point
			// stays inside the cell.
			du, dv := u, v
			seen := map[int]bool{du: true}
			for t.Parent[du] != -1 && cp.CellOf[t.Parent[du]] == cell {
				du = t.Parent[du]
				seen[du] = true
			}
			onPath := []int{}
			x := dv
			for x != -1 && !seen[x] {
				if cp.CellOf[x] != cell {
					return fmt.Errorf("core: gate path left cell %d at vertex %d", cell, x)
				}
				onPath = append(onPath, x)
				x = t.Parent[x]
			}
			if x == -1 {
				return fmt.Errorf("core: gate path between %d and %d found no meeting point", u, v)
			}
			// Mark v..meeting and u..meeting.
			for _, p := range onPath {
				in[p] = true
			}
			for y := u; y != x; y = t.Parent[y] {
				in[y] = true
			}
			in[x] = true
			return nil
		}
		// Endpoints of all inter-cell edges.
		var endsA, endsB []int
		for _, id := range edges {
			e := g.Edge(id)
			ua, ub := e.U, e.V
			if cp.CellOf[ua] != k.a {
				ua, ub = ub, ua
			}
			in[ua] = true
			in[ub] = true
			endsA = append(endsA, ua)
			endsB = append(endsB, ub)
		}
		// Connect consecutive endpoints within each cell (the cyc(eL,eR)
		// structure of Lemma 7, generalized to all edges).
		for i := 1; i < len(endsA); i++ {
			if err := addPathWithinCell(endsA[i-1], endsA[i], k.a); err != nil {
				return nil, err
			}
		}
		for i := 1; i < len(endsB); i++ {
			if err := addPathWithinCell(endsB[i-1], endsB[i], k.b); err != nil {
				return nil, err
			}
		}
		var verts []int
		for v := range in {
			verts = append(verts, v)
		}
		sort.Ints(verts)
		gc.Gates = append(gc.Gates, Gate{
			CellA: k.a,
			CellB: k.b,
			Fence: verts,
			Set:   verts,
		})
		totalFence += len(verts)
	}
	if len(cp.Cells) > 0 {
		gc.S = float64(totalFence) / float64(len(cp.Cells))
	}
	return gc, nil
}

// ValidateGates checks the Definition 17 properties that hold by
// construction plus the coverage property (3) and two-cell property (4):
//
//	(1) Fence ⊆ Set;
//	(2) boundary of Set within Fence (vacuous with F = S, still checked);
//	(3) every inter-cell edge covered by some gate;
//	(4) each gate meets at most two cells;
//	(5) non-fence gate vertices disjoint across gates (vacuous with F = S).
func ValidateGates(g *graph.Graph, cp *CellPartition, gc *GateCollection) error {
	covered := make(map[int]bool)
	for gi, gate := range gc.Gates {
		fence := make(map[int]bool, len(gate.Fence))
		for _, v := range gate.Fence {
			fence[v] = true
		}
		set := make(map[int]bool, len(gate.Set))
		cells := map[int]bool{}
		for _, v := range gate.Set {
			set[v] = true
			if c := cp.CellOf[v]; c != -1 {
				cells[c] = true
			}
		}
		// (1)
		for _, v := range gate.Fence {
			if !set[v] {
				return fmt.Errorf("core: gate %d fence vertex %d outside gate", gi, v)
			}
		}
		// (2): boundary vertices (gate vertices with a neighbor outside)
		// must lie in the fence.
		for _, v := range gate.Set {
			for _, a := range g.Adj(v) {
				if !set[a.To] && !fence[v] {
					return fmt.Errorf("core: gate %d boundary vertex %d not in fence", gi, v)
				}
			}
		}
		// (4)
		if len(cells) > 2 {
			return fmt.Errorf("core: gate %d meets %d cells", gi, len(cells))
		}
		// Mark covered inter-cell edges.
		for id := 0; id < g.M(); id++ {
			e := g.Edge(id)
			if set[e.U] && set[e.V] {
				covered[id] = true
			}
		}
		// (5): with F = S there are no non-fence vertices; assert that.
		if len(gate.Set) != len(gate.Fence) {
			return fmt.Errorf("core: gate %d has non-fence vertices (unsupported)", gi)
		}
	}
	// (3)
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		ca, cb := cp.CellOf[e.U], cp.CellOf[e.V]
		if ca == -1 || cb == -1 || ca == cb {
			continue
		}
		if !covered[id] {
			return fmt.Errorf("core: inter-cell edge %d not covered by any gate", id)
		}
	}
	return nil
}

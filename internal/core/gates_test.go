package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestGatesOnApexGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
		Base:       gen.Grid(8, 8),
		NumApices:  1,
		ApexDegree: 6, // sparse apex: several multi-vertex cells
	}, rng)
	tr, err := graph.BFSTree(a.G, a.Apices[0])
	if err != nil {
		t.Fatal(err)
	}
	cells := core.BuildCells(a.G, tr, a.Apices, a.VortexOf)
	if len(cells.Cells) < 2 {
		t.Skip("degenerate cell partition")
	}
	gc, err := core.BuildGates(a.G, cells, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.ValidateGates(a.G, cells, gc); err != nil {
		t.Fatal(err)
	}
	// Lemma 7 shape: s = O(d). Cells are tree components of height <= tree
	// height; allow a generous planar constant (36d in the paper).
	d := 2*tr.Height() + 1
	if gc.S > float64(36*d) {
		t.Fatalf("s = %.1f exceeds 36d = %d", gc.S, 36*d)
	}
}

func TestGatesAcrossApexDegrees(t *testing.T) {
	for _, deg := range []int{3, 8, 16} {
		rng := rand.New(rand.NewSource(int64(deg)))
		a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
			Base:       gen.Grid(6, 6),
			NumApices:  1,
			ApexDegree: deg,
		}, rng)
		tr, err := graph.BFSTree(a.G, a.Apices[0])
		if err != nil {
			t.Fatal(err)
		}
		cells := core.BuildCells(a.G, tr, a.Apices, a.VortexOf)
		gc, err := core.BuildGates(a.G, cells, tr)
		if err != nil {
			t.Fatal(err)
		}
		if err := core.ValidateGates(a.G, cells, gc); err != nil {
			t.Fatalf("deg=%d: %v", deg, err)
		}
	}
}

func TestGatesLemma4Consequence(t *testing.T) {
	// Lemma 4: with an s-combinatorial gate, either some part meets <= 2
	// cells or some cell meets <= 2s parts. Verify the disjunction on a
	// concrete instance.
	rng := rand.New(rand.NewSource(5))
	a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
		Base:       gen.Grid(8, 8),
		NumApices:  1,
		ApexDegree: 10,
	}, rng)
	tr, err := graph.BFSTree(a.G, a.Apices[0])
	if err != nil {
		t.Fatal(err)
	}
	cells := core.BuildCells(a.G, tr, a.Apices, a.VortexOf)
	gc, err := core.BuildGates(a.G, cells, tr)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := partition.Voronoi(a.G, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Count incidences.
	partCells := make([]map[int]bool, parts.NumParts())
	cellParts := make([]map[int]bool, len(cells.Cells))
	for ci := range cells.Cells {
		cellParts[ci] = map[int]bool{}
	}
	for i := range partCells {
		partCells[i] = map[int]bool{}
		for _, v := range parts.Sets[i] {
			if ci := cells.CellOf[v]; ci != -1 {
				partCells[i][ci] = true
				cellParts[ci][i] = true
			}
		}
	}
	someSmallPart := false
	for i := range partCells {
		if len(partCells[i]) <= 2 {
			someSmallPart = true
		}
	}
	someSmallCell := false
	for ci := range cellParts {
		if float64(len(cellParts[ci])) <= 2*gc.S+2 {
			someSmallCell = true
		}
	}
	if !someSmallPart && !someSmallCell {
		t.Fatalf("Lemma 4 disjunction violated with s=%.1f", gc.S)
	}
}

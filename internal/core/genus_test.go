package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

// TestAlmostEmbeddableTorusBaseWithApex exercises the positive-genus route:
// the per-cell decompositions come from restricting the torus's column
// path-decomposition witness (DESIGN.md substitution for the genus case).
func TestAlmostEmbeddableTorusBaseWithApex(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	base := gen.Torus(5, 6)
	td := gen.TorusColumnsDecomposition(base, 5, 6)
	if err := td.Validate(); err != nil {
		t.Fatal(err)
	}
	a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
		Base:       base,
		Genus:      1,
		NumApices:  1,
		ApexDegree: 0,
		BaseTD:     td,
	}, rng)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(a.G, a.Apices[0])
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.Voronoi(a.G, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Quality <= 0 {
		t.Fatal("degenerate measurement")
	}
}

// TestAlmostEmbeddableTorusVortexApex combines all three ingredients on a
// genus-1 base.
func TestAlmostEmbeddableTorusVortexApex(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := gen.Torus(5, 5)
	td := gen.TorusColumnsDecomposition(base, 5, 5)
	a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
		Base:        base,
		Genus:       1,
		NumVortices: 1,
		VortexDepth: 2,
		VortexNodes: 3,
		NumApices:   1,
		ApexDegree:  5,
		BaseTD:      td,
	}, rng)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(a.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.Voronoi(a.G, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a); err != nil {
		t.Fatal(err)
	}
}

// TestGenusBaseWithoutWitnessFails: the construction must refuse a
// positive-genus base without a BaseTD rather than silently degrade —
// unless the apex-free single-cell route never needs it.
func TestGenusBaseWithoutWitnessFails(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// A sparse apex with the tree rooted away from it leaves large
	// genus-1 cells, whose local decompositions need the witness.
	a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
		Base:       gen.Torus(4, 4),
		Genus:      1,
		NumApices:  1,
		ApexDegree: 3,
	}, rng)
	tr, _ := graph.BFSTree(a.G, 0)
	p, err := partition.Voronoi(a.G, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a); err == nil {
		t.Fatal("expected an error for genus base without BaseTD")
	}
}

// TestExcludedMinorNilWitness checks the error path.
func TestExcludedMinorNilWitness(t *testing.T) {
	g := gen.Path(4)
	tr, _ := graph.BFSTree(g, 0)
	p, _ := partition.New(g, [][]int{{0, 1}})
	if _, err := core.ExcludedMinorShortcut(g, tr, p, nil); err == nil {
		t.Fatal("accepted nil witness")
	}
}

package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

// TestQuickCliqueSumShortcutAlwaysValid: random clique-sum configurations
// (bag types, counts, glue sizes, part families) always yield valid
// T-restricted shortcuts whose quality is finite and whose blocks stay
// within the Theorem 7 shape.
func TestQuickCliqueSumShortcutAlwaysValid(t *testing.T) {
	f := func(seed int64, bagsRaw, kindRaw, partsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nb := 1 + int(bagsRaw)%6
		k := 2 + int(kindRaw)%2 // glue size 2 or 3
		pieces := make([]*gen.Piece, nb)
		for i := range pieces {
			switch int(kindRaw) % 3 {
			case 0:
				pieces[i] = gen.GridPiece(3+rng.Intn(2), 3+rng.Intn(2))
			case 1:
				pieces[i] = gen.ApollonianPiece(10+rng.Intn(10), rng)
			default:
				pieces[i] = gen.KTreePiece(12+rng.Intn(10), k, rng)
			}
		}
		cs := gen.CliqueSum(pieces, k, rng)
		if err := cs.CST.Validate(); err != nil {
			return false
		}
		tr, err := graph.BFSTree(cs.G, rng.Intn(cs.G.N()))
		if err != nil {
			return false
		}
		np := 1 + int(partsRaw)%8
		if np > cs.G.N() {
			np = cs.G.N()
		}
		p, err := partition.Voronoi(cs.G, np, rng)
		if err != nil {
			return false
		}
		res, err := core.CliqueSumShortcut(cs.G, tr, p, &core.CliqueSumWitness{
			CST:         cs.CST,
			BagGraphs:   cs.BagGraphs,
			BagDecomp:   cs.BagDecomp,
			BagToGlobal: cs.BagToGlobal,
		})
		if err != nil {
			return false
		}
		// Shape: blocks bounded by 2k + O(local folded width).
		bound := 2*k + 8*(res.Info["maxLocalFoldedWidth"]+2) + 4
		return res.M.Quality > 0 && res.M.MaxBlocks <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAssignCellsProperties: Definition 15's two properties hold for
// random apex graphs and part families:
// (i) each part misses at most 2 of its touched cells,
// (ii) assignments only reference touched cells.
func TestQuickAssignCellsProperties(t *testing.T) {
	f := func(seed int64, partsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
			Base:       gen.Grid(4+rng.Intn(4), 4+rng.Intn(4)),
			NumApices:  1 + rng.Intn(2),
			ApexDegree: 3 + rng.Intn(5),
		}, rng)
		root := a.Apices[0]
		tr, err := graph.BFSTree(a.G, root)
		if err != nil {
			return false
		}
		np := 2 + int(partsRaw)%10
		p, err := partition.Voronoi(a.G, np, rng)
		if err != nil {
			return false
		}
		cells := core.BuildCells(a.G, tr, a.Apices, a.VortexOf)
		assigned, _ := core.AssignCells(p, cells, nil)
		for i := range assigned {
			touch := map[int]bool{}
			for _, v := range p.Sets[i] {
				if ci := cells.CellOf[v]; ci != -1 {
					touch[ci] = true
				}
			}
			got := map[int]bool{}
			for _, ci := range assigned[i] {
				if !touch[ci] {
					return false // (ii) violated
				}
				got[ci] = true
			}
			missing := 0
			for ci := range touch {
				if !got[ci] {
					missing++
				}
			}
			if missing > 2 {
				return false // (i) violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAlmostEmbeddableShortcutValid: random vortex/apex graphs always
// produce valid shortcuts.
func TestQuickAlmostEmbeddableShortcutValid(t *testing.T) {
	f := func(seed int64, cfg uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
			Base:        gen.Grid(5, 5+int(cfg)%4),
			NumVortices: int(cfg) % 2,
			VortexDepth: 2,
			VortexNodes: 3,
			NumApices:   int(cfg) % 3,
			ApexDegree:  4,
		}, rng)
		if err := a.Validate(); err != nil {
			return false
		}
		tr, err := graph.BFSTree(a.G, 0)
		if err != nil {
			return false
		}
		p, err := partition.Voronoi(a.G, 4+int(cfg)%6, rng)
		if err != nil {
			return false
		}
		res, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a)
		if err != nil {
			return false
		}
		// Validity is enforced inside shortcut.New; sanity: quality finite
		// and every block count >= 1.
		for _, b := range res.M.Blocks {
			if b < 1 {
				return false
			}
		}
		return res.M.Quality > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Package core implements the paper's primary contribution: constructive
// realizations of its shortcut-existence theorems.
//
//   - Theorem 7 (clique sums): local + global shortcuts over a folded
//     k-clique-sum decomposition tree (core/cliquesum.go);
//   - Theorem 8 (almost-embeddable graphs): apex handling, BFS cell
//     partitions, the cell-assignment relation of Lemmas 4-6, and per-cell
//     local shortcuts (core/almostembed.go, core/cells.go);
//   - Theorem 6 (excluded minors): the composition of the two
//     (core/excludedminor.go).
//
// The paper proves these shortcuts *exist*; the framework algorithm never
// computes the decomposition. Here the generators hand us the witnesses, so
// we can build the shortcuts explicitly and measure their quality against
// the theorems' bounds. The oblivious constructor (internal/shortcut)
// plays the role of the structure-blind algorithm.
package core

import (
	"repro/internal/graph"
)

// steinerEdge is one edge of a repaired tree T²ₕ (paper, proof of Lemma 1):
// either a real global tree edge between two bag vertices, or a virtual edge
// standing for a contracted tree path through vertices outside the bag.
type steinerEdge struct {
	Child, Parent int // global vertex IDs, both in the bag
	GlobalID      int // global tree edge ID, or -1 for virtual edges
}

// steinerContract computes the paper's repaired tree T²ₕ: the minor of the
// global spanning tree t obtained by restricting to the Steiner tree of the
// bag's vertex set and contracting every non-bag vertex into its nearest
// bag ancestor. The result spans exactly the bag vertices reachable in t
// (all of them, since t spans G) and is a tree because it is a minor of t.
//
// Returned: the edge list and the root (the bag vertex of minimum t-depth).
func steinerContract(t *graph.Tree, bagVerts []int) (edges []steinerEdge, root int) {
	// image[v] = nearest bag ancestor-or-self of v (-1 above the root),
	// memoized along root paths in an epoch arena. Bag vertices are their
	// own image; intermediate walked vertices are never bag vertices.
	image := t.G.AcquireScratch()
	defer t.G.ReleaseScratch(image)
	for _, v := range bagVerts {
		image.Set(v, int32(v))
	}
	imageOf := func(v int) int {
		start := v
		for v != -1 {
			if iv, ok := image.Get(v); ok {
				res := int(iv)
				for u := start; u != v; u = t.Parent[u] {
					image.Set(u, int32(res))
				}
				return res
			}
			v = t.Parent[v]
		}
		for u := start; u != -1; u = t.Parent[u] {
			image.Set(u, -1)
		}
		return -1
	}
	root = -1
	for _, v := range bagVerts {
		if root == -1 || t.Depth[v] < t.Depth[root] {
			root = v
		}
	}
	edges = make([]steinerEdge, 0, len(bagVerts))
	for _, v := range bagVerts {
		p := imageOf(t.Parent[v])
		if p == -1 {
			// v has no bag ancestor: it is a root of the contracted forest.
			// All such roots attach to the same outside component (the one
			// containing the global tree root), so the path contraction
			// joins them by virtual edges; hang them under the chosen root.
			if v != root {
				edges = append(edges, steinerEdge{Child: v, Parent: root, GlobalID: -1})
			}
			continue
		}
		gid := -1
		if t.Parent[v] == p {
			gid = t.ParentEdge[v]
		}
		edges = append(edges, steinerEdge{Child: v, Parent: p, GlobalID: gid})
	}
	return edges, root
}

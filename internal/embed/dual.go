package embed

import (
	"fmt"

	"repro/internal/graph"
)

// Dual holds the dual graph of an embedding: one dual vertex per face, one
// dual edge per primal edge connecting the faces on its two sides.
type Dual struct {
	G        *graph.Graph // the dual graph; dual edge IDs equal primal edge IDs
	Faces    [][]int      // primal faces as dart cycles
	FaceOf   []int        // primal dart -> face index
	PrimalOf []int        // dual edge ID -> primal edge ID (identity, kept for clarity)
}

// NewDual constructs the dual graph of e. Dual edge i corresponds exactly to
// primal edge i (IDs aligned), which is what tree-cotree needs. Self-loops in
// the dual (an edge with the same face on both sides, i.e. a bridge) are
// dropped, recorded with PrimalOf[i] == -1 semantics via the Bridges list.
type dualBuild struct{}

func NewDual(e *Embedding) (*Dual, []int) {
	faces, faceOf := e.Faces()
	d := &Dual{
		G:      graph.New(len(faces)),
		Faces:  faces,
		FaceOf: faceOf,
	}
	var bridges []int
	for id := 0; id < e.G.M(); id++ {
		f1, f2 := faceOf[2*id], faceOf[2*id+1]
		if f1 == f2 {
			bridges = append(bridges, id) // bridge: dual self-loop, omitted
			d.PrimalOf = append(d.PrimalOf, -1)
			continue
		}
		d.G.AddEdge(f1, f2, 1)
		d.PrimalOf = append(d.PrimalOf, id)
	}
	return d, bridges
}

// TreeCotree computes a tree-cotree decomposition of a connected embedding:
// a primal spanning tree T (the given one), a dual spanning tree ("cotree")
// disjoint from T, and the leftover edges X in neither. Euler's formula
// forces |X| = 2g, and the cycles induced in T by the X edges generate the
// fundamental group of the surface (Eppstein). These are exactly the
// generating cycles used by the paper's Planarization Lemma (Lemma 11).
func TreeCotree(e *Embedding, t *graph.Tree) (cotreeEdges, leftover []int, err error) {
	if t.G != e.G {
		return nil, nil, fmt.Errorf("embed.TreeCotree: tree is not over the embedded graph")
	}
	inTree := make([]bool, e.G.M())
	for _, id := range t.TreeEdgeIDs() {
		inTree[id] = true
	}
	faces, faceOf := e.Faces()
	uf := graph.NewUnionFind(len(faces))
	for id := 0; id < e.G.M(); id++ {
		if inTree[id] {
			continue
		}
		f1, f2 := faceOf[2*id], faceOf[2*id+1]
		if f1 != f2 && uf.Union(f1, f2) {
			cotreeEdges = append(cotreeEdges, id)
		} else {
			leftover = append(leftover, id)
		}
	}
	// Sanity: Euler's formula gives |leftover| = 2g on a connected surface.
	if want := 2 * e.Genus(); len(leftover) != want && graph.IsConnected(e.G) {
		return nil, nil, fmt.Errorf("embed.TreeCotree: %d leftover edges, want 2g=%d", len(leftover), want)
	}
	return cotreeEdges, leftover, nil
}

// InducedCycle returns the edge IDs of the cycle formed by non-tree edge id
// together with the tree path between its endpoints.
func InducedCycle(t *graph.Tree, l *graph.LCA, id int) []int {
	e := t.G.Edge(id)
	a := l.Query(e.U, e.V)
	ids := []int{id}
	for v := e.U; v != a; v = t.Parent[v] {
		ids = append(ids, t.ParentEdge[v])
	}
	for v := e.V; v != a; v = t.Parent[v] {
		ids = append(ids, t.ParentEdge[v])
	}
	return ids
}

// GeneratingCycles returns, for a connected embedded graph with spanning tree
// t, the edge set of the union of the 2g generating cycles (the cycles
// induced by the leftover edges of a tree-cotree decomposition). Cutting the
// surface along this set planarizes the graph (Lemma 11).
func GeneratingCycles(e *Embedding, t *graph.Tree) (cutEdges []int, err error) {
	_, leftover, err := TreeCotree(e, t)
	if err != nil {
		return nil, err
	}
	l := graph.NewLCA(t)
	inCut := make([]bool, e.G.M())
	for _, id := range leftover {
		for _, cid := range InducedCycle(t, l, id) {
			inCut[cid] = true
		}
	}
	for id, ok := range inCut {
		if ok {
			cutEdges = append(cutEdges, id)
		}
	}
	return cutEdges, nil
}

// Package embed implements combinatorial embeddings (rotation systems) of
// graphs on orientable surfaces: face tracing, Euler genus, dual graphs,
// tree-cotree decompositions, and the planarization ("cutting") operation of
// the paper's Appendix A (Lemma 11).
//
// Darts. Every edge with ID e yields two darts (directed half-edges):
// dart 2e points from Edge(e).U to Edge(e).V, dart 2e+1 points back.
// An embedding assigns each vertex a cyclic counterclockwise order of the
// darts leaving it (a rotation). Faces are the orbits of the permutation
// next(d) = rotSucc(twin(d)); with n vertices, m edges, f faces and c
// connected components, the total Euler genus is g = c - (n - m + f)/2 ...
// computed per component as g = (2 - n + m - f)/2.
package embed

import (
	"fmt"

	"repro/internal/graph"
)

// Twin returns the opposite dart of d.
func Twin(d int) int { return d ^ 1 }

// EdgeOf returns the edge ID underlying dart d.
func EdgeOf(d int) int { return d / 2 }

// Tail returns the vertex a dart leaves from.
func Tail(g *graph.Graph, d int) int {
	e := g.Edge(d / 2)
	if d%2 == 0 {
		return e.U
	}
	return e.V
}

// Head returns the vertex a dart points to.
func Head(g *graph.Graph, d int) int { return Tail(g, Twin(d)) }

// Embedding is a rotation system on a graph. The zero value is unusable;
// construct with New.
type Embedding struct {
	G   *graph.Graph
	rot [][]int // rot[v]: darts leaving v in counterclockwise order
	pos []int   // pos[d]: index of dart d within rot[Tail(d)]
}

// New validates and wraps a rotation system: rot[v] must be a permutation of
// the darts whose tail is v.
func New(g *graph.Graph, rot [][]int) (*Embedding, error) {
	if len(rot) != g.N() {
		return nil, fmt.Errorf("embed: rotation has %d vertices, graph has %d", len(rot), g.N())
	}
	e := &Embedding{G: g, rot: rot, pos: make([]int, 2*g.M())}
	seen := g.AcquireScratch() // dart-indexed; 2M slots
	defer g.ReleaseScratch(seen)
	seen.Grow(2 * g.M())
	total := 0
	for v, ds := range rot {
		for i, d := range ds {
			if d < 0 || d >= 2*g.M() {
				return nil, fmt.Errorf("embed: vertex %d lists invalid dart %d", v, d)
			}
			if Tail(g, d) != v {
				return nil, fmt.Errorf("embed: dart %d (tail %d) listed at vertex %d", d, Tail(g, d), v)
			}
			if !seen.Visit(d) {
				return nil, fmt.Errorf("embed: dart %d listed twice", d)
			}
			total++
			e.pos[d] = i
		}
	}
	if total != 2*g.M() {
		for d := 0; d < 2*g.M(); d++ {
			if !seen.Has(d) {
				return nil, fmt.Errorf("embed: dart %d missing from rotation", d)
			}
		}
	}
	return e, nil
}

// NewTrusted wraps a rotation system that is correct by construction (a
// generator's own output), skipping New's per-dart validation: it only
// builds the dart-position index. Surgery results and externally supplied
// rotations must keep using New.
func NewTrusted(g *graph.Graph, rot [][]int) *Embedding {
	e := &Embedding{G: g, rot: rot, pos: make([]int, 2*g.M())}
	for _, ds := range rot {
		for i, d := range ds {
			e.pos[d] = i
		}
	}
	return e
}

// FromAdjacencyOrder builds the embedding whose rotation at each vertex is
// simply the adjacency-list order. For graphs generated with geometric
// structure (grids, triangulations) whose adjacency lists are constructed in
// counterclockwise order this is the intended embedding; for arbitrary graphs
// it is *some* embedding on *some* surface.
func FromAdjacencyOrder(g *graph.Graph) *Embedding {
	rot := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		for _, a := range g.Adj(v) {
			d := 2 * a.ID
			if g.Edge(a.ID).U != v {
				d++
			}
			rot[v] = append(rot[v], d)
		}
	}
	e, err := New(g, rot)
	if err != nil {
		// Adjacency order is a permutation of darts by construction.
		panic(fmt.Sprintf("embed.FromAdjacencyOrder: internal error: %v", err))
	}
	return e
}

// Rotation returns the rotation at v (not to be modified).
func (e *Embedding) Rotation(v int) []int { return e.rot[v] }

// Succ returns the next dart after d in the rotation at d's tail.
func (e *Embedding) Succ(d int) int {
	ds := e.rot[Tail(e.G, d)]
	return ds[(e.pos[d]+1)%len(ds)]
}

// Pred returns the previous dart before d in the rotation at d's tail.
func (e *Embedding) Pred(d int) int {
	ds := e.rot[Tail(e.G, d)]
	return ds[(e.pos[d]-1+len(ds))%len(ds)]
}

// FaceNext returns the next dart along the face to the left of d.
func (e *Embedding) FaceNext(d int) int { return e.Succ(Twin(d)) }

// Faces returns all faces as dart cycles, plus faceOf mapping each dart to
// its face index.
func (e *Embedding) Faces() (faces [][]int, faceOf []int) {
	m2 := 2 * e.G.M()
	faceOf = make([]int, m2)
	for i := range faceOf {
		faceOf[i] = -1
	}
	for d0 := 0; d0 < m2; d0++ {
		if faceOf[d0] != -1 {
			continue
		}
		idx := len(faces)
		var cyc []int
		for d := d0; faceOf[d] == -1; d = e.FaceNext(d) {
			faceOf[d] = idx
			cyc = append(cyc, d)
		}
		faces = append(faces, cyc)
	}
	return faces, faceOf
}

// Genus returns the total Euler genus of the embedding, summed over
// connected components: for each component, g = (2 - n + m - f) / 2.
// A planar embedding has genus 0.
func (e *Embedding) Genus() int {
	comps, of := graph.Components(e.G)
	nComp := make([]int, len(comps))
	mComp := make([]int, len(comps))
	fComp := make([]int, len(comps))
	for i, c := range comps {
		nComp[i] = len(c)
	}
	for id := 0; id < e.G.M(); id++ {
		mComp[of[e.G.Edge(id).U]]++
	}
	faces, _ := e.Faces()
	for _, f := range faces {
		fComp[of[Tail(e.G, f[0])]]++
	}
	total := 0
	for i := range comps {
		f := fComp[i]
		if mComp[i] == 0 {
			f = 1 // an isolated vertex sits on a sphere with one face
		}
		euler := nComp[i] - mComp[i] + f
		total += (2 - euler) / 2
	}
	return total
}

// FaceVertices returns the vertex sequence around face (tails of its darts).
func (e *Embedding) FaceVertices(face []int) []int {
	out := make([]int, len(face))
	for i, d := range face {
		out[i] = Tail(e.G, d)
	}
	return out
}

// Validate re-checks rotation consistency; used after surgery operations.
func (e *Embedding) Validate() error {
	_, err := New(e.G, e.rot)
	return err
}

// InsertDartAfter splices dart d into the rotation of its tail vertex,
// immediately after dart after (which must share the tail). Used by
// generators that grow embeddings incrementally.
func (e *Embedding) InsertDartAfter(d, after int) {
	v := Tail(e.G, d)
	if Tail(e.G, after) != v {
		panic(fmt.Sprintf("embed.InsertDartAfter: darts %d and %d have different tails", d, after))
	}
	e.growPos(d)
	i := e.pos[after]
	e.rot[v] = append(e.rot[v], 0)
	copy(e.rot[v][i+2:], e.rot[v][i+1:])
	e.rot[v][i+1] = d
	for j := i + 1; j < len(e.rot[v]); j++ {
		e.pos[e.rot[v][j]] = j
	}
}

// AppendDart appends dart d to the end of its tail vertex's rotation. Used
// for the first darts at fresh vertices.
func (e *Embedding) AppendDart(d int) {
	v := Tail(e.G, d)
	e.growPos(d)
	if e.rot[v] == nil {
		// Fresh vertex: one allocation covers the common small rotations.
		e.rot[v] = make([]int, 0, 4)
	}
	e.rot[v] = append(e.rot[v], d)
	e.pos[d] = len(e.rot[v]) - 1
}

func (e *Embedding) growPos(d int) {
	for len(e.pos) <= d {
		e.pos = append(e.pos, 0)
	}
	for len(e.rot) < e.G.N() {
		e.rot = append(e.rot, nil)
	}
}

// ReserveDarts pre-sizes the embedding's internal tables for a graph that
// will grow to m edges (2m darts), so incremental generators avoid repeated
// growth.
func (e *Embedding) ReserveDarts(m int) {
	if cap(e.pos) < 2*m {
		np := make([]int, len(e.pos), 2*m)
		copy(np, e.pos)
		e.pos = np
	}
}

package embed_test

import (
	"math/rand"
	"testing"

	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestDartHelpers(t *testing.T) {
	g := graph.New(3)
	id := g.AddEdge(1, 2, 1)
	d := 2 * id
	if embed.Tail(g, d) != 1 || embed.Head(g, d) != 2 {
		t.Fatalf("dart %d: tail %d head %d", d, embed.Tail(g, d), embed.Head(g, d))
	}
	if embed.Twin(d) != d+1 || embed.EdgeOf(d+1) != id {
		t.Fatal("Twin/EdgeOf wrong")
	}
	if embed.Tail(g, d+1) != 2 {
		t.Fatal("twin tail wrong")
	}
}

func TestNewValidates(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	// Dart 0 (0->1) listed at wrong vertex.
	if _, err := embed.New(g, [][]int{{}, {0, 1}}); err == nil {
		t.Fatal("accepted dart at wrong tail")
	}
	// Missing dart.
	if _, err := embed.New(g, [][]int{{0}, {}}); err == nil {
		t.Fatal("accepted missing dart")
	}
	// Duplicate dart.
	if _, err := embed.New(g, [][]int{{0, 0}, {1}}); err == nil {
		t.Fatal("accepted duplicate dart")
	}
	// Correct.
	e, err := embed.New(g, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if e.Genus() != 0 {
		t.Fatalf("single edge genus %d", e.Genus())
	}
}

func TestGridIsPlanar(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {1, 5}, {2, 2}, {3, 4}, {7, 7}, {10, 3}} {
		e := gen.Grid(dims[0], dims[1])
		if err := e.Emb.Validate(); err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		if got := e.Emb.Genus(); got != 0 {
			t.Fatalf("grid %v genus %d want 0", dims, got)
		}
		faces, _ := e.Emb.Faces()
		wantFaces := (dims[0]-1)*(dims[1]-1) + 1
		if dims[0] == 1 || dims[1] == 1 {
			wantFaces = 1
		}
		if e.G.M() == 0 {
			wantFaces = 0 // Faces() traces dart orbits; no darts, no orbits
		}
		if len(faces) != wantFaces {
			t.Fatalf("grid %v has %d faces want %d", dims, len(faces), wantFaces)
		}
	}
}

func TestTorusGenusOne(t *testing.T) {
	for _, dims := range [][2]int{{3, 3}, {4, 6}, {5, 5}} {
		e := gen.Torus(dims[0], dims[1])
		if got := e.Emb.Genus(); got != 1 {
			t.Fatalf("torus %v genus %d want 1", dims, got)
		}
		// Flat torus is a quadrangulation: every face is a 4-cycle.
		faces, _ := e.Emb.Faces()
		for _, f := range faces {
			if len(f) != 4 {
				t.Fatalf("torus face of length %d", len(f))
			}
		}
	}
}

func TestGenusChain(t *testing.T) {
	for k := 1; k <= 3; k++ {
		e := gen.GenusChain(k, 3, 3)
		if got := e.Emb.Genus(); got != k {
			t.Fatalf("chain of %d tori: genus %d", k, got)
		}
		if !graph.IsConnected(e.G) {
			t.Fatal("genus chain disconnected")
		}
	}
}

func TestApollonianMaximalPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{3, 4, 10, 50, 200} {
		a := gen.NewApollonian(n, rng)
		a.EnsureEmbedding()
		if err := a.Emb.Validate(); err != nil {
			t.Fatal(err)
		}
		if got := a.Emb.Genus(); got != 0 {
			t.Fatalf("n=%d: genus %d want 0", n, got)
		}
		if a.G.M() != 3*n-6 {
			t.Fatalf("n=%d: m=%d want maximal planar %d", n, a.G.M(), 3*n-6)
		}
		faces, _ := a.Emb.Faces()
		for _, f := range faces {
			if len(f) != 3 {
				t.Fatalf("non-triangular face in triangulation: %d darts", len(f))
			}
		}
		if !graph.PlanarDensityOK(a.G) {
			t.Fatal("density check failed")
		}
	}
}

func TestWheelPlanar(t *testing.T) {
	e := gen.Wheel(10)
	if got := e.Emb.Genus(); got != 0 {
		t.Fatalf("wheel genus %d", got)
	}
	if d := graph.Diameter(e.G); d != 2 {
		t.Fatalf("wheel diameter %d want 2", d)
	}
}

func TestOuterplanar(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{3, 5, 12, 40} {
		e := gen.Outerplanar(n, n/2, rng)
		if got := e.Emb.Genus(); got != 0 {
			t.Fatalf("n=%d: outerplanar genus %d", n, got)
		}
		if !graph.IsSeriesParallelReducible(e.G) {
			t.Fatalf("n=%d: outerplanar graph has a K4 minor", n)
		}
		// All vertices on one face (outerplanarity witness).
		faces, _ := e.Emb.Faces()
		found := false
		for _, f := range faces {
			on := make(map[int]bool)
			for _, v := range e.Emb.FaceVertices(f) {
				on[v] = true
			}
			if len(on) == n {
				found = true
			}
		}
		if !found {
			t.Fatalf("n=%d: no face contains all vertices", n)
		}
	}
}

func TestSuccPredInverse(t *testing.T) {
	e := gen.Grid(4, 4)
	for v := 0; v < e.G.N(); v++ {
		for _, d := range e.Emb.Rotation(v) {
			if e.Emb.Pred(e.Emb.Succ(d)) != d {
				t.Fatalf("Pred(Succ(%d)) != %d", d, d)
			}
		}
	}
}

func TestFacesPartitionDarts(t *testing.T) {
	e := gen.Torus(4, 5)
	faces, faceOf := e.Emb.Faces()
	count := 0
	for fi, f := range faces {
		count += len(f)
		for _, d := range f {
			if faceOf[d] != fi {
				t.Fatal("faceOf disagrees with faces")
			}
		}
	}
	if count != 2*e.G.M() {
		t.Fatalf("faces cover %d darts want %d", count, 2*e.G.M())
	}
}

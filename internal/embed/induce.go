package embed

import "fmt"

// Induce restricts an embedding to the induced subgraph on keep: darts whose
// edges survive retain their cyclic order at each kept vertex. Deleting
// vertices and edges never increases genus, so induced embeddings of planar
// embeddings stay planar.
//
// Returned: the induced embedding (over a fresh graph), the old->new vertex
// map (-1 for dropped vertices), and per new edge its original edge ID.
func Induce(e *Embedding, keep []int) (*Embedding, []int, []int) {
	sub, oldToNew, edgeOrig := e.G.InducedSubgraph(keep)
	newEdge := make(map[int]int, len(edgeOrig))
	for nid, oid := range edgeOrig {
		newEdge[oid] = nid
	}
	rot := make([][]int, sub.N())
	for _, v := range keep {
		nv := oldToNew[v]
		for _, d := range e.Rotation(v) {
			nid, ok := newEdge[EdgeOf(d)]
			if !ok {
				continue
			}
			rot[nv] = append(rot[nv], 2*nid+d%2)
		}
	}
	emb, err := New(sub, rot)
	if err != nil {
		panic(fmt.Sprintf("embed.Induce: internal error: %v", err))
	}
	return emb, oldToNew, edgeOrig
}

package embed

import (
	"fmt"

	"repro/internal/graph"
)

// CutGraph is the result of cutting an embedded graph along a set of edges
// (paper Definition 18): cut edges are slit into two sub-edges, and each
// vertex incident to k >= 1 cut edges is split into max(k,1) copies, one per
// maximal rotation interval bounded by cut darts (both bounding cut darts
// included in the interval).
type CutGraph struct {
	PG       *graph.Graph // the cut graph
	Emb      *Embedding   // induced embedding of PG
	Proj     []int        // PG vertex -> original vertex (the projection p)
	EdgeProj []int        // PG edge -> original edge ID
	Outer    []bool       // PG vertex is an outer node (its original split into >1 copies)
}

// Cut slits the embedding e along the given cut edge set and returns the cut
// graph with its induced embedding. When the cut set is the union of the
// 2g generating cycles of a tree-cotree decomposition, the result is planar
// and all outer nodes lie on a common face (Planarization Lemma, Lemma 11);
// both properties are verified by tests rather than assumed here.
func Cut(e *Embedding, cutEdges []int) (*CutGraph, error) {
	g := e.G
	isCut := make([]bool, g.M())
	for _, id := range cutEdges {
		if id < 0 || id >= g.M() {
			return nil, fmt.Errorf("embed.Cut: invalid cut edge %d", id)
		}
		isCut[id] = true
	}

	// Step 1: vertex copies. For each vertex, intervals between cut darts.
	// copyOf[v][j] = new vertex ID of v's j-th interval copy.
	// intervalOf maps each dart to the interval index of its tail's copy
	// that owns it (for non-cut darts), and start/end interval indices for
	// cut darts.
	copyOf := make([][]int, g.N())
	cutPositions := make([][]int, g.N())
	pg := graph.New(0)
	var proj []int
	outerCount := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		var cuts []int
		for i, d := range e.Rotation(v) {
			if isCut[EdgeOf(d)] {
				cuts = append(cuts, i)
			}
		}
		cutPositions[v] = cuts
		k := len(cuts)
		if k == 0 {
			k = 1
		}
		copyOf[v] = make([]int, k)
		for j := 0; j < k; j++ {
			copyOf[v][j] = pg.AddVertex()
			proj = append(proj, v)
		}
		outerCount[v] = k
	}

	// intervalIndex returns which interval of v owns the non-cut dart at
	// rotation position p.
	intervalIndex := func(v, p int) int {
		cuts := cutPositions[v]
		if len(cuts) == 0 {
			return 0
		}
		// Largest j with cuts[j] <= p, cyclic (wraps to last interval).
		lo, hi := 0, len(cuts)-1
		if p < cuts[0] {
			return len(cuts) - 1
		}
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if cuts[mid] <= p {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo
	}
	// startInterval / endInterval of a cut dart d: the intervals at Tail(d)
	// for which d is the start bound (interval j where cuts[j] == pos(d))
	// and the end bound (interval j-1, cyclically).
	startInterval := func(d int) int {
		v := Tail(g, d)
		p := e.pos[d]
		cuts := cutPositions[v]
		for j, c := range cuts {
			if c == p {
				return j
			}
		}
		panic("embed.Cut: cut dart not found among cut positions")
	}
	endInterval := func(d int) int {
		j := startInterval(d)
		k := len(cutPositions[Tail(g, d)])
		return (j - 1 + k) % k
	}

	// Step 2: edges. Non-cut edges map 1:1; cut edges yield one sub-edge per
	// dart: subEdge(d) joins (tail(d), startInterval(d)) to
	// (head(d), endInterval(twin(d))).
	newDartOf := make([]int, 2*g.M()) // old non-cut dart -> new dart
	subTail := make([]int, 2*g.M())   // cut dart d -> new dart at its tail copy
	subHead := make([]int, 2*g.M())   // cut dart d -> new dart at its head copy
	for i := range newDartOf {
		newDartOf[i] = -1
		subTail[i] = -1
		subHead[i] = -1
	}
	var edgeProj []int
	for id := 0; id < g.M(); id++ {
		d, dt := 2*id, 2*id+1
		if !isCut[id] {
			u := copyOf[Tail(g, d)][intervalIndex(Tail(g, d), e.pos[d])]
			w := copyOf[Tail(g, dt)][intervalIndex(Tail(g, dt), e.pos[dt])]
			nid := pg.AddEdge(u, w, g.Edge(id).W)
			edgeProj = append(edgeProj, id)
			newDartOf[d] = 2 * nid
			newDartOf[dt] = 2*nid + 1
			continue
		}
		for _, dd := range [2]int{d, dt} {
			u := copyOf[Tail(g, dd)][startInterval(dd)]
			w := copyOf[Head(g, dd)][endInterval(Twin(dd))]
			nid := pg.AddEdge(u, w, g.Edge(id).W)
			edgeProj = append(edgeProj, id)
			subTail[dd] = 2 * nid
			subHead[dd] = 2*nid + 1
		}
	}

	// Step 3: rotations of the cut graph.
	rot := make([][]int, pg.N())
	for v := 0; v < g.N(); v++ {
		oldRot := e.Rotation(v)
		cuts := cutPositions[v]
		if len(cuts) == 0 {
			nv := copyOf[v][0]
			for _, d := range oldRot {
				rot[nv] = append(rot[nv], newDartOf[d])
			}
			continue
		}
		L := len(oldRot)
		for j := range cuts {
			nv := copyOf[v][j]
			s := cuts[j]
			t := cuts[(j+1)%len(cuts)]
			dStart := oldRot[s]
			dEnd := oldRot[t]
			rot[nv] = append(rot[nv], subTail[dStart])
			steps := (t - s - 1 + L) % L
			if len(cuts) == 1 {
				steps = L - 1
			}
			for k := 1; k <= steps; k++ {
				d := oldRot[(s+k)%L]
				rot[nv] = append(rot[nv], newDartOf[d])
			}
			rot[nv] = append(rot[nv], subHead[Twin(dEnd)])
		}
	}
	emb, err := New(pg, rot)
	if err != nil {
		return nil, fmt.Errorf("embed.Cut: induced rotation invalid: %w", err)
	}
	outer := make([]bool, pg.N())
	for nv, ov := range proj {
		outer[nv] = outerCount[ov] > 1
	}
	return &CutGraph{PG: pg, Emb: emb, Proj: proj, EdgeProj: edgeProj, Outer: outer}, nil
}

// Planarize cuts a connected embedded graph of genus g along the union of
// its 2g generating cycles with respect to the given spanning tree, per the
// Planarization Lemma (Lemma 11). The result is planar, with every outer
// node on a common face.
func Planarize(e *Embedding, t *graph.Tree) (*CutGraph, error) {
	cut, err := GeneratingCycles(e, t)
	if err != nil {
		return nil, err
	}
	return Cut(e, cut)
}

package embed_test

import (
	"testing"

	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestDualOfGrid(t *testing.T) {
	e := gen.Grid(3, 3)
	d, bridges := embed.NewDual(e.Emb)
	// 3x3 grid: 4 inner faces + outer = 5 dual vertices, 12 dual edges.
	if d.G.N() != 5 {
		t.Fatalf("dual vertices %d want 5", d.G.N())
	}
	if d.G.M() != 12 {
		t.Fatalf("dual edges %d want 12", d.G.M())
	}
	if len(bridges) != 0 {
		t.Fatalf("grid has no bridges, got %v", bridges)
	}
	if !graph.IsConnected(d.G) {
		t.Fatal("dual should be connected")
	}
}

func TestDualBridges(t *testing.T) {
	// A path has one face; both edges are bridges.
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	e := embed.FromAdjacencyOrder(g)
	d, bridges := embed.NewDual(e)
	if d.G.N() != 1 || len(bridges) != 2 {
		t.Fatalf("path dual: %d faces, bridges %v", d.G.N(), bridges)
	}
}

func TestTreeCotreePlanar(t *testing.T) {
	e := gen.Grid(4, 5)
	tr, err := graph.BFSTree(e.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	cotree, leftover, err := embed.TreeCotree(e.Emb, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 0 {
		t.Fatalf("planar leftover = %v want none", leftover)
	}
	// Tree + cotree must partition the edges.
	if len(cotree)+(e.G.N()-1) != e.G.M() {
		t.Fatalf("tree-cotree does not partition edges")
	}
}

func TestTreeCotreeTorus(t *testing.T) {
	e := gen.Torus(4, 4)
	tr, err := graph.BFSTree(e.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, leftover, err := embed.TreeCotree(e.Emb, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 2 {
		t.Fatalf("torus leftover %d edges want 2g=2", len(leftover))
	}
}

func TestInducedCycleIsCycle(t *testing.T) {
	e := gen.Grid(3, 3)
	tr, _ := graph.BFSTree(e.G, 0)
	l := graph.NewLCA(tr)
	inTree := make(map[int]bool)
	for _, id := range tr.TreeEdgeIDs() {
		inTree[id] = true
	}
	for id := 0; id < e.G.M(); id++ {
		if inTree[id] {
			continue
		}
		cyc := embed.InducedCycle(tr, l, id)
		// Each vertex in the edge set must have even degree (it is a cycle).
		deg := make(map[int]int)
		for _, cid := range cyc {
			ce := e.G.Edge(cid)
			deg[ce.U]++
			deg[ce.V]++
		}
		for v, d := range deg {
			if d != 2 {
				t.Fatalf("non-tree edge %d: vertex %d has degree %d in induced cycle", id, v, d)
			}
		}
	}
}

func TestCutTriangleAlongAllEdges(t *testing.T) {
	// Cutting a sphere-embedded triangle along all its edges yields two
	// disjoint triangles (the two faces).
	g := graph.New(3)
	e01 := g.AddEdge(0, 1, 1)
	e12 := g.AddEdge(1, 2, 1)
	e20 := g.AddEdge(2, 0, 1)
	rot := [][]int{
		{2 * e01, 2*e20 + 1},
		{2*e01 + 1, 2 * e12},
		{2*e12 + 1, 2 * e20},
	}
	e, err := embed.New(g, rot)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := embed.Cut(e, []int{e01, e12, e20})
	if err != nil {
		t.Fatal(err)
	}
	if cut.PG.N() != 6 || cut.PG.M() != 6 {
		t.Fatalf("cut triangle: n=%d m=%d want 6,6", cut.PG.N(), cut.PG.M())
	}
	comps, _ := graph.Components(cut.PG)
	if len(comps) != 2 || len(comps[0]) != 3 || len(comps[1]) != 3 {
		t.Fatalf("components %v want two triangles", comps)
	}
	if got := cut.Emb.Genus(); got != 0 {
		t.Fatalf("cut graph genus %d want 0", got)
	}
	for v := 0; v < cut.PG.N(); v++ {
		if !cut.Outer[v] {
			t.Fatalf("vertex %d should be an outer node", v)
		}
	}
}

func TestCutGridAlongFaceCycle(t *testing.T) {
	// Cutting the plane along an inner face's 4-cycle separates that face's
	// interior; here the interior is empty so we get the quad itself plus
	// the rest.
	e := gen.Grid(4, 4)
	// Find an inner quadrilateral face.
	faces, _ := e.Emb.Faces()
	var quad []int
	for _, f := range faces {
		if len(f) == 4 {
			seen := map[int]bool{}
			ok := true
			for _, d := range f {
				id := embed.EdgeOf(d)
				if seen[id] {
					ok = false
				}
				seen[id] = true
			}
			if ok {
				quad = f
				break
			}
		}
	}
	if quad == nil {
		t.Fatal("no quad face found")
	}
	var cutIDs []int
	for _, d := range quad {
		cutIDs = append(cutIDs, embed.EdgeOf(d))
	}
	cut, err := embed.Cut(e.Emb, cutIDs)
	if err != nil {
		t.Fatal(err)
	}
	comps, _ := graph.Components(cut.PG)
	if len(comps) != 2 {
		t.Fatalf("cut along a face cycle gives %d components want 2", len(comps))
	}
	if got := cut.Emb.Genus(); got != 0 {
		t.Fatalf("genus after planar cut: %d", got)
	}
	// One component is the 4-cycle copy.
	if len(comps[0]) != 4 && len(comps[1]) != 4 {
		t.Fatalf("no 4-cycle component: sizes %d,%d", len(comps[0]), len(comps[1]))
	}
}

func TestPlanarizeTorus(t *testing.T) {
	for _, dims := range [][2]int{{3, 3}, {4, 6}, {6, 6}} {
		e := gen.Torus(dims[0], dims[1])
		tr, err := graph.BFSTree(e.G, 0)
		if err != nil {
			t.Fatal(err)
		}
		cut, err := embed.Planarize(e.Emb, tr)
		if err != nil {
			t.Fatal(err)
		}
		if got := cut.Emb.Genus(); got != 0 {
			t.Fatalf("torus %v planarization has genus %d", dims, got)
		}
		// Lemma 11(ii): all outer nodes lie on a common face.
		assertOuterOnCommonFace(t, cut)
		// Projection covers all original vertices.
		seen := make([]bool, e.G.N())
		for _, ov := range cut.Proj {
			seen[ov] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("original vertex %d lost in planarization", v)
			}
		}
		// Edge projection: every original edge yields 1 (uncut) or 2 (cut)
		// images.
		images := make([]int, e.G.M())
		for _, oid := range cut.EdgeProj {
			images[oid]++
		}
		for id, c := range images {
			if c != 1 && c != 2 {
				t.Fatalf("edge %d has %d images", id, c)
			}
		}
	}
}

func TestPlanarizeGenus2(t *testing.T) {
	e := gen.GenusChain(2, 3, 4)
	tr, err := graph.BFSTree(e.G, 0)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := embed.Planarize(e.Emb, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := cut.Emb.Genus(); got != 0 {
		t.Fatalf("genus-2 planarization has genus %d", got)
	}
	assertOuterOnCommonFace(t, cut)
}

func assertOuterOnCommonFace(t *testing.T, cut *embed.CutGraph) {
	t.Helper()
	var outer []int
	for v, ok := range cut.Outer {
		if ok {
			outer = append(outer, v)
		}
	}
	if len(outer) == 0 {
		t.Fatal("planarization produced no outer nodes")
	}
	faces, _ := cut.Emb.Faces()
	for _, f := range faces {
		on := make(map[int]bool)
		for _, v := range cut.Emb.FaceVertices(f) {
			on[v] = true
		}
		all := true
		for _, v := range outer {
			if !on[v] {
				all = false
				break
			}
		}
		if all {
			return
		}
	}
	t.Fatal("no face contains all outer nodes (Lemma 11(ii) violated)")
}

func TestPlanarizePlanarIsNoop(t *testing.T) {
	e := gen.Grid(3, 4)
	tr, _ := graph.BFSTree(e.G, 0)
	cut, err := embed.Planarize(e.Emb, tr)
	if err != nil {
		t.Fatal(err)
	}
	if cut.PG.N() != e.G.N() || cut.PG.M() != e.G.M() {
		t.Fatalf("planar planarization changed the graph: %d,%d -> %d,%d",
			e.G.N(), e.G.M(), cut.PG.N(), cut.PG.M())
	}
}

package embed_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestQuickEulerFormulaApollonian: for random planar triangulations the
// Euler formula must hold exactly: n - m + f = 2.
func TestQuickEulerFormulaApollonian(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		n := 3 + int(sizeRaw)%80
		a := gen.NewApollonian(n, rand.New(rand.NewSource(seed)))
		faces, _ := a.EnsureEmbedding().Faces()
		return a.G.N()-a.G.M()+len(faces) == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCutPreservesEdgeMultiplicity: cutting any random edge subset of
// a random triangulation yields one image per uncut edge and two per cut
// edge, and the induced rotation stays valid.
func TestQuickCutPreservesEdgeMultiplicity(t *testing.T) {
	f := func(seed int64, sizeRaw, density uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + int(sizeRaw)%40
		a := gen.NewApollonian(n, rng)
		a.EnsureEmbedding()
		var cutIDs []int
		prob := float64(density%90+5) / 100
		for id := 0; id < a.G.M(); id++ {
			if rng.Float64() < prob {
				cutIDs = append(cutIDs, id)
			}
		}
		cut, err := embed.Cut(a.Emb, cutIDs)
		if err != nil {
			return false
		}
		if err := cut.Emb.Validate(); err != nil {
			return false
		}
		images := make([]int, a.G.M())
		for _, oid := range cut.EdgeProj {
			images[oid]++
		}
		isCut := make([]bool, a.G.M())
		for _, id := range cutIDs {
			isCut[id] = true
		}
		for id, c := range images {
			want := 1
			if isCut[id] {
				want = 2
			}
			if c != want {
				return false
			}
		}
		// Projection covers all original vertices.
		seen := make([]bool, a.G.N())
		for _, ov := range cut.Proj {
			seen[ov] = true
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCutNeverRaisesGenus: cutting can only reduce or preserve total
// genus (it slits the surface open).
func TestQuickCutNeverRaisesGenus(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := gen.Torus(3+rng.Intn(3), 3+rng.Intn(3))
		var cutIDs []int
		for id := 0; id < e.G.M(); id++ {
			if rng.Float64() < 0.3 {
				cutIDs = append(cutIDs, id)
			}
		}
		cut, err := embed.Cut(e.Emb, cutIDs)
		if err != nil {
			return false
		}
		return cut.Emb.Genus() <= e.Emb.Genus()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickInduceSubgraphStaysPlanar: induced embeddings of planar
// embeddings are planar.
func TestQuickInduceSubgraphStaysPlanar(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + int(sizeRaw)%60
		a := gen.NewApollonian(n, rng)
		a.EnsureEmbedding()
		var keep []int
		for v := 0; v < a.G.N(); v++ {
			if rng.Float64() < 0.6 {
				keep = append(keep, v)
			}
		}
		if len(keep) == 0 {
			keep = []int{0}
		}
		ind, _, _ := embed.Induce(a.Emb, keep)
		return ind.Genus() == 0 && ind.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTreeCotreePartition: tree + cotree + leftover partitions the
// edge set, with |leftover| = 2·genus.
func TestQuickTreeCotreePartition(t *testing.T) {
	f := func(seed int64, genusRaw uint8) bool {
		g := 1 + int(genusRaw)%3
		e := gen.GenusChain(g, 3, 4)
		tr, err := graph.BFSTree(e.G, 0)
		if err != nil {
			return false
		}
		cotree, leftover, err := embed.TreeCotree(e.Emb, tr)
		if err != nil {
			return false
		}
		return len(cotree)+len(leftover)+(e.G.N()-1) == e.G.M() && len(leftover) == 2*g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

package experiments_test

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/structure"
)

// sparseApexCorridors is a corridor field whose base station reaches only a
// few sensors: the network diameter is NOT collapsed to 2, unlike the
// default single-apex generator.
func sparseApexCorridors(rows, cols int, rng *rand.Rand) *structure.AlmostEmbeddable {
	return gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
		Base:       gen.Grid(rows, cols),
		NumApices:  1,
		ApexDegree: 2,
	}, rng)
}

// Regression: the E6c diam column was hardcoded to 2, correct only by
// coincidence of the default all-sensors apex. On a sparse-apex corridor
// variant the reported diameter must track the generated network.
func TestAggregationShowcaseDiamComputedFromNetwork(t *testing.T) {
	const seed = 99
	widths := []int{12}
	tbl := experiments.AggregationShowcaseOn(sparseApexCorridors, widths, seed)
	if len(tbl.Rows) != len(widths) {
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
	for i := range widths {
		// Regenerate the same network from the same per-point stream.
		a := sparseApexCorridors(8, widths[i], experiments.PointRNG(seed, i))
		want := graph.DiameterApprox(a.G)
		got, err := strconv.Atoi(tbl.Cell(i, "diam"))
		if err != nil {
			t.Fatalf("diam cell: %v", err)
		}
		if got != want {
			t.Fatalf("row %d: diam column %d, network diameter %d", i, got, want)
		}
		if want == 2 {
			t.Fatalf("row %d: sparse-apex network unexpectedly has diameter 2; test lost its teeth", i)
		}
	}
}

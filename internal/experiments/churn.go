package experiments

import (
	"math"
	"math/rand"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/shortcut"
)

// E18Churn measures self-healing shortcuts under churn: the zero-witness
// pipeline (analytic mode) picks a cap and ranking, shortcut.Maintain wraps
// the construction, and a Poisson edge-churn stream — weight updates,
// inserts, deletes, including tree-edge deletes that force a splice-and-
// re-root patch — is applied through shortcut.Repair. Repair recomputes
// admissions only along the dirty upward closure; a full flooding rebuild
// is triggered only when the measured quality degrades past the maintained
// threshold (RebuildFactor, default 2x).
//
// r_repair is the repair strategy's total modeled rounds (per-event dirty-
// path repairs plus any threshold-triggered rebuilds at ConstructBudget
// each); r_rebuild is the strawman that re-floods after every event. The
// acceptance bar is r_repair strictly below r_rebuild on every family,
// with q_end within 2x of q_oracle — a fresh full cap re-search
// (shortcut.ConstructAuto) on the churned graph.
//
// Same three families as E13/E14/E15: grids with row parts, wheels with
// rim-arc parts, K5-minor-free clique-sum chains with Voronoi parts.
func E18Churn(gridSides, wheelRims, chainBags []int, steps int, seed int64) *Table {
	t := &Table{
		ID:     "E18",
		Title:  "self-healing shortcuts under churn: dirty-path repair vs per-event rebuild",
		Header: []string{"family", "n", "events", "upd", "ins", "del", "patches", "rebuilds", "r_repair", "r_rebuild", "ratio", "q_end", "q_oracle", "q_ratio"},
	}
	ng, nw := len(gridSides), len(wheelRims)
	rows := forEachPoint(ng+nw+len(chainBags), func(i int) row {
		rng := pointRNG(seed, i)
		switch {
		case i < ng:
			s := gridSides[i]
			e := gen.Grid(s, s)
			p, err := partition.GridRows(e.G, s, s)
			if err != nil {
				panic(err)
			}
			return churnRow("grid", e.G, p, steps, rng)
		case i < ng+nw:
			rim := wheelRims[i-ng]
			a := gen.CycleWithApex(rim, rng)
			p, err := partition.RimArcs(a.G, 8)
			if err != nil {
				panic(err)
			}
			return churnRow("wheel", a.G, p, steps, rng)
		default:
			nb := chainBags[i-ng-nw]
			pieces := make([]*gen.Piece, nb)
			for j := range pieces {
				pieces[j] = gen.ApollonianPiece(18+rng.Intn(8), rng)
			}
			cs := gen.CliqueSum(pieces, 3, rng)
			p, err := partition.Voronoi(cs.G, 3*nb, rng)
			if err != nil {
				panic(err)
			}
			return churnRow("k5free", cs.G, p, steps, rng)
		}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.Notes = append(t.Notes,
		"events ~ Poisson(1.5) per step: 1/4 weight updates, 1/4 inserts, 1/2 deletes (disconnecting tree-edge deletes are refused by Repair and skipped)",
		"patches: tree-edge deletes repaired by splice-and-re-root; rebuilds: threshold-triggered full re-floods (charged to r_repair)",
		"r_repair: dirty-path repair rounds + rebuild charges; r_rebuild: the strawman that re-floods (ConstructBudget) after every event",
		"q_oracle: fresh full cap re-search (shortcut.ConstructAuto) on the churned graph; q_ratio = q_end / q_oracle")
	return t
}

// churnRow bootstraps the maintained shortcut through the analytic
// zero-witness pipeline, drives one Poisson churn stream through Repair,
// and formats one table row.
func churnRow(family string, g *graph.Graph, p *partition.Parts, steps int, rng *rand.Rand) row {
	setup, err := pipeline.SelfSetup(g, false)
	if err != nil {
		panic(err)
	}
	search, err := congest.SearchCap(g, setup.Tree, p, congest.SearchOptions{})
	if err != nil {
		panic(err)
	}
	m, err := shortcut.MaintainPrio(g, setup.Tree, p, search.Cap, search.Priorities, 0)
	if err != nil {
		panic(err)
	}
	var events, upd, ins, del, patches, rebuilds, rRepair, rRebuild int
	for step := 0; step < steps; step++ {
		for k := poisson(rng, 1.5); k > 0; k-- {
			var ev shortcut.Event
			switch draw := rng.Intn(4); {
			case draw == 0:
				id := rng.Intn(g.M())
				if g.EdgeRemoved(id) {
					continue
				}
				ev = shortcut.Event{Kind: shortcut.WeightUpdate, Edge: id, W: 1 + rng.Float64()}
			case draw == 1:
				u, v := rng.Intn(g.N()), rng.Intn(g.N())
				if u == v || g.HasEdge(u, v) {
					continue
				}
				ev = shortcut.Event{Kind: shortcut.EdgeInsert, U: u, V: v, W: 1 + rng.Float64()}
			default:
				id := rng.Intn(g.M())
				if g.EdgeRemoved(id) {
					continue
				}
				ev = shortcut.Event{Kind: shortcut.EdgeDelete, Edge: id}
			}
			rep, err := m.Repair(ev)
			if err != nil {
				continue // disconnecting tree-edge delete: refused, skipped
			}
			events++
			switch ev.Kind {
			case shortcut.WeightUpdate:
				upd++
			case shortcut.EdgeInsert:
				ins++
			case shortcut.EdgeDelete:
				del++
			}
			if rep.TreePatched {
				patches++
			}
			rRepair += rep.RepairRounds
			rRebuild += congest.ConstructBudget(m.T, m.Cap)
			if rep.RebuildRecommended {
				rebuilds++
				rRepair += congest.ConstructBudget(m.T, m.Cap)
				if err := m.Reseat(m.Cap, shortcut.TreeBlockPriorities(m.T, m.P)); err != nil {
					panic(err)
				}
			}
		}
	}
	auto, err := shortcut.ConstructAuto(g, m.T, p)
	if err != nil {
		panic(err)
	}
	qEnd := m.Quality()
	qOracle := auto.M.Quality
	return row{family, g.N(), events, upd, ins, del, patches, rebuilds,
		rRepair, rRebuild, float64(rRepair) / float64(rRebuild),
		qEnd, qOracle, float64(qEnd) / float64(qOracle)}
}

// poisson draws from Poisson(lambda) by Knuth's product-of-uniforms method
// (lambda is small here, so the loop is short).
func poisson(rng *rand.Rand, lambda float64) int {
	l := math.Exp(-lambda)
	k, prod := 0, rng.Float64()
	for prod > l {
		k++
		prod *= rng.Float64()
	}
	return k
}

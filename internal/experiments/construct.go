package experiments

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
	"repro/internal/tw"
)

// E13Construct measures the distributed in-network shortcut construction
// (congest.ConstructShortcut): the network builds its own tree-restricted
// shortcuts by part-wise flooding with a congestion cap instead of being
// handed a witness-derived assignment — the construction step the framework
// actually requires a network to run. Three families, three central
// baselines:
//
//   - grids with row parts vs the cotree treewidth witness (E1's setup),
//   - wheels (cycle + apex) with rim-arc parts vs the apex-aware
//     almost-embeddable witness (E11's setup), and
//   - K5-minor-free clique-sum chains with Voronoi parts vs the Theorem 6
//     excluded-minor witness (E5's setup, the acceptance family).
//
// Per row the congestion cap is chosen by the analytic auto-search
// (shortcut.ConstructAuto), then the construction runs once in each ledger:
// r_sim is the simulated protocol's measured effective rounds, r_chg the
// analytic-mode framework charge (congest.ConstructBudget). use_dist /
// use_wit are the part-wise aggregation rounds each shortcut then buys, so
// r_sim + use_dist prices the full in-network pipeline against a witness
// construction whose rounds were never paid.
func E13Construct(gridSides, wheelRims, chainBags []int, seed int64) *Table {
	t := &Table{
		ID:     "E13",
		Title:  "distributed in-network shortcut construction: flooding vs witness quality and rounds",
		Header: []string{"family", "n", "diam", "parts", "cap", "q_dist", "q_wit", "ratio", "r_sim", "r_chg", "use_dist", "use_wit"},
	}
	ng, nw := len(gridSides), len(wheelRims)
	rows := forEachPoint(ng+nw+len(chainBags), func(i int) row {
		rng := pointRNG(seed, i)
		switch {
		case i < ng:
			s := gridSides[i]
			e := gen.Grid(s, s)
			tr, err := graph.BFSTree(e.G, 0)
			if err != nil {
				panic(err)
			}
			p, err := partition.GridRows(e.G, s, s)
			if err != nil {
				panic(err)
			}
			d, err := tw.FromEmbeddingByCotree(e.Emb, tr)
			if err != nil {
				panic(err)
			}
			res, err := shortcut.FromTreewidth(e.G, tr, p, d)
			if err != nil {
				panic(err)
			}
			return constructRow("grid", e.G, tr, p, res.S)
		case i < ng+nw:
			rim := wheelRims[i-ng]
			a := gen.CycleWithApex(rim, rng)
			tr, err := graph.BFSTree(a.G, a.Apices[0])
			if err != nil {
				panic(err)
			}
			p, err := partition.RimArcs(a.G, 8)
			if err != nil {
				panic(err)
			}
			res, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a)
			if err != nil {
				panic(err)
			}
			return constructRow("wheel", a.G, tr, p, res.S)
		default:
			nb := chainBags[i-ng-nw]
			pieces := make([]*gen.Piece, nb)
			for j := range pieces {
				pieces[j] = gen.ApollonianPiece(18+rng.Intn(8), rng)
			}
			cs := gen.CliqueSum(pieces, 3, rng)
			tr, err := graph.BFSTree(cs.G, 0)
			if err != nil {
				panic(err)
			}
			p, err := partition.Voronoi(cs.G, 3*nb, rng)
			if err != nil {
				panic(err)
			}
			res, err := core.ExcludedMinorShortcut(cs.G, tr, p, witness(cs))
			if err != nil {
				panic(err)
			}
			return constructRow("k5free", cs.G, tr, p, res.S)
		}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.Notes = append(t.Notes,
		"q_dist: flooding-constructed quality at the auto-chosen cap; q_wit: the witness construction the generator knows",
		"r_sim: measured construction rounds (CONGEST protocol); r_chg: the analytic-ledger charge for one construction",
		"use_dist/use_wit: part-wise aggregation rounds over each shortcut (the construction's downstream payoff)")
	return t
}

// constructRow runs the in-network construction in both ledgers plus an
// aggregation usage over both shortcuts, and formats one table cell row.
func constructRow(family string, g *graph.Graph, tr *graph.Tree, p *partition.Parts, wit *shortcut.Shortcut) row {
	auto, err := shortcut.ConstructAuto(g, tr, p)
	if err != nil {
		panic(err)
	}
	mAuto, cap := auto.M, auto.Cap
	sim, err := congest.ConstructShortcut(g, tr, p, congest.ConstructOptions{Cap: cap, Simulate: true})
	if err != nil {
		panic(err)
	}
	// The analytic ledger's charge is closed-form; no need to rebuild the
	// fixed point a third time.
	charged := congest.ConstructBudget(tr, cap)
	if q := sim.S.Measure().Quality; q != mAuto.Quality {
		panic(fmt.Sprintf("E13: simulated construction quality %d != fixed point %d", q, mAuto.Quality))
	}
	keys := make([]uint64, g.N())
	for v := range keys {
		keys[v] = uint64((v*7919)%100000 + 1)
	}
	useDist, err := aggregate(g, p, sim.S, keys)
	if err != nil {
		panic(err)
	}
	useWit, err := aggregate(g, p, wit, keys)
	if err != nil {
		panic(err)
	}
	witM := wit.Measure()
	return row{family, g.N(), graph.DiameterApprox(g), p.NumParts(), cap,
		mAuto.Quality, witM.Quality,
		float64(mAuto.Quality) / float64(witM.Quality),
		sim.EffectiveRounds, charged, useDist, useWit}
}

package experiments

import (
	"strconv"
	"testing"
)

// TestE13ConstructAcceptance pins the experiment's acceptance shape: on the
// E5 K5-minor-free family the distributed-constructed quality stays within
// a constant factor of the witness-constructed quality, and construction
// rounds appear in both the simulated and the analytic ledger of every row.
func TestE13ConstructAcceptance(t *testing.T) {
	tab := E13Construct([]int{6, 10}, []int{32}, []int{2, 4, 8, 16}, 2018)
	if len(tab.Rows) != 7 {
		t.Fatalf("expected 7 rows, got %d", len(tab.Rows))
	}
	col := func(name string) int {
		for ci, h := range tab.Header {
			if h == name {
				return ci
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	fam, ratio := col("family"), col("ratio")
	rSim, rChg := col("r_sim"), col("r_chg")
	const maxRatio = 3.0 // "within a constant factor" of the witness quality
	for ri, row := range tab.Rows {
		sim, err := strconv.Atoi(row[rSim])
		if err != nil || sim < 1 {
			t.Fatalf("row %d: simulated construction rounds %q not positive", ri, row[rSim])
		}
		chg, err := strconv.Atoi(row[rChg])
		if err != nil || chg < 1 {
			t.Fatalf("row %d: charged construction rounds %q not positive", ri, row[rChg])
		}
		if row[fam] != "k5free" {
			continue
		}
		r, err := strconv.ParseFloat(row[ratio], 64)
		if err != nil {
			t.Fatalf("row %d: ratio %q not numeric", ri, row[ratio])
		}
		if r > maxRatio {
			t.Fatalf("row %d: distributed quality %.2fx the witness quality exceeds the constant-factor bound %v", ri, r, maxRatio)
		}
	}
}

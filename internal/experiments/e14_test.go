package experiments

import (
	"strconv"
	"testing"
)

// TestE14PipelineAcceptance pins the zero-witness acceptance shape: on all
// three families the quality of the shortcut the network built with zero
// generator input stays within a factor 2 of the witness construction, and
// every row reports both round ledgers (measured bootstrap + search, and
// the analytic charge) as positive.
func TestE14PipelineAcceptance(t *testing.T) {
	tab := E14Pipeline([]int{6, 10}, []int{32}, []int{2, 4, 8}, 2018)
	if len(tab.Rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(tab.Rows))
	}
	col := func(name string) int {
		for ci, h := range tab.Header {
			if h == name {
				return ci
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	fam := col("family")
	ratio := col("ratio")
	rBoot, rSearch, rChg := col("r_boot"), col("r_search"), col("r_chg")
	seen := map[string]bool{}
	const maxRatio = 2.0 // the acceptance bar: within a constant factor of the witness
	for ri, row := range tab.Rows {
		seen[row[fam]] = true
		r, err := strconv.ParseFloat(row[ratio], 64)
		if err != nil {
			t.Fatalf("row %d: ratio %q not numeric", ri, row[ratio])
		}
		if r > maxRatio {
			t.Fatalf("row %d (%s): zero-witness quality %.2fx the witness quality exceeds %v",
				ri, row[fam], r, maxRatio)
		}
		for _, c := range []int{rBoot, rSearch, rChg} {
			v, err := strconv.Atoi(row[c])
			if err != nil || v < 1 {
				t.Fatalf("row %d: round column %q=%q not positive", ri, tab.Header[c], row[c])
			}
		}
	}
	for _, f := range []string{"grid", "wheel", "k5free"} {
		if !seen[f] {
			t.Fatalf("family %s missing from the table", f)
		}
	}
}

package experiments

import (
	"strconv"
	"testing"
)

// TestE15PipecastAcceptance pins the pipelined communication layer's
// acceptance shape: on every family the measured pipelined convergecast
// stays within the height + k + 1 bound and beats the k-fold sequential
// repetition, both ledgers are reported, and — with the bootstrap and
// block-count sums now running message-level — the simulate-mode cap
// search still selects exactly the analytic mode's cap, with positive
// measured bootstrap rounds.
func TestE15PipecastAcceptance(t *testing.T) {
	tab := E15Pipecast([]int{6, 10}, []int{32}, []int{2, 4, 8}, 2018)
	if len(tab.Rows) != 6 {
		t.Fatalf("expected 6 rows, got %d", len(tab.Rows))
	}
	col := func(name string) int {
		for ci, h := range tab.Header {
			if h == name {
				return ci
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	num := func(ri, ci int) int {
		v, err := strconv.Atoi(tab.Rows[ri][ci])
		if err != nil {
			t.Fatalf("row %d: column %q=%q not numeric", ri, tab.Header[ci], tab.Rows[ri][ci])
		}
		return v
	}
	fam, k := col("family"), col("k")
	rPipe, bound, rSeq := col("r_pipe"), col("bound"), col("r_seq")
	chgPipe, chgSeq := col("chg_pipe"), col("chg_seq")
	capSim, capAna, rBoot := col("cap_sim"), col("cap_ana"), col("r_boot")
	seen := map[string]bool{}
	for ri, row := range tab.Rows {
		seen[row[fam]] = true
		if num(ri, rPipe) > num(ri, bound) {
			t.Fatalf("row %d (%s): pipelined rounds %d exceed the height+k+1 bound %d",
				ri, row[fam], num(ri, rPipe), num(ri, bound))
		}
		if num(ri, k) >= 2 && num(ri, rPipe) >= num(ri, rSeq) {
			t.Fatalf("row %d (%s): pipelined %d rounds did not beat sequential %d",
				ri, row[fam], num(ri, rPipe), num(ri, rSeq))
		}
		if num(ri, chgPipe) < 1 || num(ri, chgSeq) < 1 {
			t.Fatalf("row %d (%s): analytic ledger columns not positive", ri, row[fam])
		}
		if num(ri, capSim) != num(ri, capAna) {
			t.Fatalf("row %d (%s): simulate cap %d != analytic cap %d with the measured bootstrap",
				ri, row[fam], num(ri, capSim), num(ri, capAna))
		}
		if num(ri, rBoot) < 1 {
			t.Fatalf("row %d (%s): no measured bootstrap rounds", ri, row[fam])
		}
	}
	for _, f := range []string{"grid", "wheel", "k5free"} {
		if !seen[f] {
			t.Fatalf("family %s missing from the table", f)
		}
	}
}

// TestRunnersRegistry: every table regenerated through the registry keeps
// its declared ID, ByID finds each one, and unknown IDs are rejected —
// the contract behind cmd/allbench's -table flag.
func TestRunnersRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Runners()) {
		t.Fatalf("IDs/Runners length mismatch")
	}
	want := map[string]bool{"E5": true, "E9": true, "E13": true, "E14": true, "E15": true}
	for _, id := range ids {
		delete(want, id)
	}
	if len(want) != 0 {
		t.Fatalf("registry missing IDs: %v", want)
	}
	tab, ok := ByID("E15", 2018)
	if !ok || tab.ID != "E15" {
		t.Fatalf("ByID(E15) = %v, %v", tab, ok)
	}
	if _, ok := ByID("E99", 2018); ok {
		t.Fatal("ByID accepted an unknown table ID")
	}
}

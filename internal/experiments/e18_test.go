package experiments

import (
	"strconv"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pipeline"
)

// TestE18ChurnAcceptance pins the self-healing acceptance shape: on every
// family the dirty-path repair strategy spends strictly fewer modeled
// rounds than the per-event rebuild strawman, and the maintained shortcut's
// final quality stays within a constant factor of a fresh full cap
// re-search on the churned graph.
func TestE18ChurnAcceptance(t *testing.T) {
	tab := E18Churn([]int{6, 10}, []int{32}, []int{2}, 30, 2018)
	if len(tab.Rows) != 4 {
		t.Fatalf("expected 4 rows, got %d", len(tab.Rows))
	}
	col := func(name string) int {
		for ci, h := range tab.Header {
			if h == name {
				return ci
			}
		}
		t.Fatalf("missing column %q", name)
		return -1
	}
	fam, events := col("family"), col("events")
	rRepair, rRebuild := col("r_repair"), col("r_rebuild")
	qRatio := col("q_ratio")
	seen := map[string]bool{}
	for ri, row := range tab.Rows {
		seen[row[fam]] = true
		ev, err := strconv.Atoi(row[events])
		if err != nil || ev < 1 {
			t.Fatalf("row %d: events %q not positive", ri, row[events])
		}
		rep, err := strconv.Atoi(row[rRepair])
		if err != nil {
			t.Fatalf("row %d: r_repair %q not numeric", ri, row[rRepair])
		}
		reb, err := strconv.Atoi(row[rRebuild])
		if err != nil {
			t.Fatalf("row %d: r_rebuild %q not numeric", ri, row[rRebuild])
		}
		if rep >= reb {
			t.Fatalf("row %d (%s): repair rounds %d not strictly below rebuild rounds %d",
				ri, row[fam], rep, reb)
		}
		q, err := strconv.ParseFloat(row[qRatio], 64)
		if err != nil {
			t.Fatalf("row %d: q_ratio %q not numeric", ri, row[qRatio])
		}
		const maxQRatio = 3.0
		if q > maxQRatio {
			t.Fatalf("row %d (%s): churned quality %.2fx the fresh re-search exceeds %v",
				ri, row[fam], q, maxQRatio)
		}
	}
	for _, f := range []string{"grid", "wheel", "k5free"} {
		if !seen[f] {
			t.Fatalf("family %s missing from the table", f)
		}
	}
}

// TestE18FaultedPipelineFixedPoint is the tentpole's convergence
// acceptance: under a seeded fault plan that leaves the graph connected
// (finite link-downs, crash/restart windows, Bernoulli drops with a
// horizon), the retrying pipeline — resilient election, resilient BFS, cap
// search with every sub-protocol under the adversary — converges to the
// identical leader, tree, cap, and shortcut as the fault-free run, on all
// three E14 families.
func TestE18FaultedPipelineFixedPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("faulted pipeline sweep skipped in -short mode")
	}
	type instance struct {
		family string
		g      *graph.Graph
		p      *partition.Parts
	}
	var cases []instance
	{
		e := gen.Grid(6, 6)
		p, err := partition.GridRows(e.G, 6, 6)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, instance{"grid", e.G, p})
	}
	{
		rng := pointRNG(18, 1)
		a := gen.CycleWithApex(32, rng)
		p, err := partition.RimArcs(a.G, 8)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, instance{"wheel", a.G, p})
	}
	{
		rng := pointRNG(18, 2)
		pieces := []*gen.Piece{gen.ApollonianPiece(18, rng), gen.ApollonianPiece(20, rng)}
		cs := gen.CliqueSum(pieces, 3, rng)
		p, err := partition.Voronoi(cs.G, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, instance{"k5free", cs.G, p})
	}
	for _, tc := range cases {
		t.Run(tc.family, func(t *testing.T) {
			// Fault-free reference.
			setup, err := pipeline.SelfSetup(tc.g, true)
			if err != nil {
				t.Fatal(err)
			}
			search, err := congest.SearchCap(tc.g, setup.Tree, tc.p, congest.SearchOptions{Simulate: true})
			if err != nil {
				t.Fatal(err)
			}
			// Faulted run: drops with a horizon, a link outage, one
			// crash/restart (state preserved) and one wiping restart.
			plan := congest.FaultPlan{
				Seed:      0xE18,
				DropProb:  0.10,
				DropUntil: 300,
				LinkDowns: []congest.LinkDown{
					{Edge: 0, From: 1, To: 40},
					{Edge: tc.g.M() / 2, From: 5, To: 25},
				},
				Crashes: []congest.Crash{
					{Node: tc.g.N() / 2, Round: 3, Restart: 20},
					{Node: tc.g.N() - 1, Round: 10, Restart: 30, Wipe: true},
				},
			}
			adv := congest.NewAdversary(plan)
			fsetup, err := pipeline.SelfSetupUnder(tc.g, true, adv)
			if err != nil {
				t.Fatal(err)
			}
			fsearch, err := congest.SearchCap(tc.g, fsetup.Tree, tc.p, congest.SearchOptions{Simulate: true, Adversary: adv})
			if err != nil {
				t.Fatal(err)
			}
			if fsetup.Leader != setup.Leader {
				t.Fatalf("faulted leader %d, fault-free %d", fsetup.Leader, setup.Leader)
			}
			for v := range setup.Tree.Parent {
				if fsetup.Tree.Parent[v] != setup.Tree.Parent[v] ||
					fsetup.Tree.ParentEdge[v] != setup.Tree.ParentEdge[v] {
					t.Fatalf("vertex %d: faulted tree (%d,%d), fault-free (%d,%d)", v,
						fsetup.Tree.Parent[v], fsetup.Tree.ParentEdge[v],
						setup.Tree.Parent[v], setup.Tree.ParentEdge[v])
				}
			}
			if fsearch.Cap != search.Cap {
				t.Fatalf("faulted cap %d, fault-free %d", fsearch.Cap, search.Cap)
			}
			for i := range search.S.Edges {
				if len(fsearch.S.Edges[i]) != len(search.S.Edges[i]) {
					t.Fatalf("part %d: faulted shortcut %v, fault-free %v",
						i, fsearch.S.Edges[i], search.S.Edges[i])
				}
				for j := range search.S.Edges[i] {
					if fsearch.S.Edges[i][j] != search.S.Edges[i][j] {
						t.Fatalf("part %d: faulted shortcut %v, fault-free %v",
							i, fsearch.S.Edges[i], search.S.Edges[i])
					}
				}
			}
			// The adversary's timeline keeps advancing across the pipeline,
			// so the fault horizon may be spent by the time the search runs
			// — but the bootstrap must have absorbed real faults.
			pipe := fsetup.Stats
			pipe.Add(fsearch.Stats)
			dropped := pipe.Dropped + pipe.DownDrops + pipe.CrashDrops
			if dropped == 0 {
				t.Fatal("adversary injected no faults into the pipeline — the test is vacuous")
			}
		})
	}
}

package experiments_test

import (
	"strconv"
	"testing"

	"repro/internal/experiments"
)

// E19's acceptance bars: every simulated E14-family row shows a batching
// speedup > 2 at k=8 with its per-phase quiet-point inside the O(h+k)
// budget, and the 10⁴-node serving row sustains ≥ 10⁵ queries/sec from
// the warmed cache with the hit rate and rounds/query columns populated.
func TestE19QueryAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("E19 sweep skipped in -short mode")
	}
	tbl := experiments.E19Query([]int{10}, []int{64}, []int{8}, 9999, 20000, true, 7)
	if tbl.ID != "E19" {
		t.Fatalf("table ID %q", tbl.ID)
	}
	wantFamilies := map[string]bool{"grid": false, "wheel": false, "k5free": false, "serve-wheel": false}
	for i := range tbl.Rows {
		family := tbl.Cell(i, "family")
		if _, ok := wantFamilies[family]; !ok {
			t.Fatalf("row %d: unexpected family %q", i, family)
		}
		wantFamilies[family] = true

		speedup, err := strconv.ParseFloat(tbl.Cell(i, "speedup"), 64)
		if err != nil {
			t.Fatalf("row %d speedup: %v", i, err)
		}
		if speedup <= 2 {
			t.Errorf("%s: batched k-source speedup %.2f, want > 2", family, speedup)
		}

		if family != "serve-wheel" {
			rpMax, err := strconv.Atoi(tbl.Cell(i, "rp_max"))
			if err != nil {
				t.Fatalf("row %d rp_max: %v", i, err)
			}
			rpBound, err := strconv.Atoi(tbl.Cell(i, "rp_bound"))
			if err != nil {
				t.Fatalf("row %d rp_bound: %v", i, err)
			}
			if rpMax > rpBound {
				t.Errorf("%s: per-phase quiet-point %d exceeds the O(h+k) budget %d", family, rpMax, rpBound)
			}
		}

		hitPct, err := strconv.ParseFloat(tbl.Cell(i, "hit_pct"), 64)
		if err != nil {
			t.Fatalf("row %d hit_pct: %v", i, err)
		}
		if hitPct <= 0 || hitPct > 100 {
			t.Errorf("%s: hit_pct %.2f outside (0, 100]", family, hitPct)
		}
		if _, err := strconv.ParseFloat(tbl.Cell(i, "r_query"), 64); err != nil {
			t.Fatalf("row %d r_query: %v", i, err)
		}

		if family == "serve-wheel" {
			if n, _ := strconv.Atoi(tbl.Cell(i, "n")); n != 10000 {
				t.Errorf("serving row has %d nodes, want 10000", n)
			}
			qps, err := strconv.ParseFloat(tbl.Cell(i, "qps"), 64)
			if err != nil {
				t.Fatalf("serve row qps: %v", err)
			}
			if qps < 1e5 {
				t.Errorf("warmed serving throughput %.0f qps, want >= 1e5", qps)
			}
		}
	}
	for family, present := range wantFamilies {
		if !present {
			t.Errorf("family %s missing from E19", family)
		}
	}
}

package experiments_test

import (
	"strconv"
	"testing"

	"repro/internal/experiments"
)

// The E9 acceptance shape: on both hop-heavy families the shortcut
// pipeline's rounds beat naive Bellman–Ford by a factor that grows with
// size, while the achieved stretch stays within 1+ε of the exact oracle.
func TestE9SSSPContrastGrowsAndStretchHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("E9 sweep skipped in -short mode")
	}
	wheels := []int{64, 256, 512}
	chains := []int{32, 128, 256}
	tbl := experiments.E9SSSP(wheels, chains, 2018)
	if len(tbl.Rows) != len(wheels)+len(chains) {
		t.Fatalf("got %d rows", len(tbl.Rows))
	}
	cell := func(row int, col string) float64 {
		v, err := strconv.ParseFloat(tbl.Cell(row, col), 64)
		if err != nil {
			t.Fatalf("row %d col %s: %v", row, col, err)
		}
		return v
	}
	for _, fam := range []struct {
		name       string
		first, end int // row range of the family, inclusive
	}{
		{"wheel", 0, len(wheels) - 1},
		{"k5free-chain", len(wheels), len(wheels) + len(chains) - 1},
	} {
		for row := fam.first; row <= fam.end; row++ {
			if s := cell(row, "stretch"); s > 1.1+1e-9 {
				t.Fatalf("%s row %d: stretch %v exceeds 1+eps", fam.name, row, s)
			}
		}
		firstSpeedup := cell(fam.first, "speedup")
		lastSpeedup := cell(fam.end, "speedup")
		if lastSpeedup <= 1 {
			t.Fatalf("%s: shortcut pipeline never beats naive (final speedup %v)", fam.name, lastSpeedup)
		}
		if lastSpeedup <= firstSpeedup {
			t.Fatalf("%s: speedup does not grow (%v -> %v)", fam.name, firstSpeedup, lastSpeedup)
		}
	}
}

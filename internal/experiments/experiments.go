// Package experiments implements the reproduction's evaluation harness: one
// runner per experiment in DESIGN.md §2 (E1-E12), each regenerating the
// table that stands in for the corresponding theorem/figure of the paper.
// The binaries in cmd/ and the root-level benchmarks both drive these
// runners, so `go test -bench` output and the CLI tables match.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", t.ID, t.Title)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Cell looks up a numeric cell by row index and column name (-1 if absent).
func (t *Table) Cell(row int, col string) string {
	for ci, h := range t.Header {
		if h == col && row < len(t.Rows) {
			return t.Rows[row][ci]
		}
	}
	return ""
}

// logLogSlope estimates the slope of log(y) vs log(x) by least squares —
// used to check polynomial growth exponents (e.g. quality vs diameter
// slope <= 2 for Theorem 6).
func logLogSlope(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		lx[i] = ln(xs[i])
		ly[i] = ln(ys[i])
		sx += lx[i]
		sy += ly[i]
	}
	for i := range xs {
		sxx += (lx[i] - sx/n) * (lx[i] - sx/n)
		sxy += (lx[i] - sx/n) * (ly[i] - sy/n)
	}
	if sxx == 0 {
		return 0
	}
	return sxy / sxx
}

func ln(x float64) float64 { return math.Log(x) }

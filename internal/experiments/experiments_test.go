package experiments_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
)

func cellFloat(t *testing.T, tbl *experiments.Table, row int, col string) float64 {
	t.Helper()
	s := tbl.Cell(row, col)
	if s == "" {
		t.Fatalf("%s: missing cell row=%d col=%q", tbl.ID, row, col)
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell %q not numeric: %v", tbl.ID, s, err)
	}
	return f
}

func TestE2BlocksBounded(t *testing.T) {
	tbl := experiments.E2Treewidth(200, []int{2, 4}, 1)
	for r := range tbl.Rows {
		if tbl.Cell(r, "b<=k+2?") != "true" {
			t.Fatalf("Theorem 5 block bound violated: %s", tbl)
		}
	}
}

func TestE5SlopeAtMostTwo(t *testing.T) {
	tbl := experiments.E5Main([]int{2, 4, 8, 16}, 1)
	// Pointwise, quality must stay within the Õ(d²) shape.
	for r := range tbl.Rows {
		q := cellFloat(t, tbl, r, "quality")
		dd := cellFloat(t, tbl, r, "d*d")
		if q > 2*dd {
			t.Fatalf("row %d: quality %v far exceeds d² = %v", r, q, dd)
		}
	}
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "slope") {
			found = true
			fields := strings.Fields(n)
			for i, f := range fields {
				if f == "diameter:" && i+1 < len(fields) {
					slope, err := strconv.ParseFloat(fields[i+1], 64)
					if err != nil {
						t.Fatal(err)
					}
					if slope > 2.5 {
						t.Fatalf("quality growth exponent %.2f exceeds theorem", slope)
					}
				}
			}
		}
	}
	if !found {
		t.Fatal("no slope note")
	}
}

func TestE10FoldingHelpsOnDeepChains(t *testing.T) {
	tbl := experiments.E10FoldingAblation([]int{48}, 1)
	raw := cellFloat(t, tbl, 0, "rawDepth")
	folded := cellFloat(t, tbl, 0, "foldedDepth")
	if folded >= raw {
		t.Fatalf("folding did not reduce depth: %v vs %v", folded, raw)
	}
	cu := cellFloat(t, tbl, 0, "c_unfolded")
	cf := cellFloat(t, tbl, 0, "c_folded")
	if cf > cu {
		t.Fatalf("folded congestion %v worse than unfolded %v", cf, cu)
	}
}

func TestE11ApexAwareBeatsNaive(t *testing.T) {
	tbl := experiments.E11ApexEffect([]int{64}, 1)
	naive := cellFloat(t, tbl, 0, "q_naive(empty)")
	aware := cellFloat(t, tbl, 0, "q_apexAware")
	if aware >= naive {
		t.Fatalf("apex-aware quality %v not better than naive %v", aware, naive)
	}
}

func TestE12AllPlanarized(t *testing.T) {
	tbl := experiments.E12Planarize([]int{0, 1, 2}, 1)
	for r := range tbl.Rows {
		if tbl.Cell(r, "resultGenus") != "0" {
			t.Fatalf("row %d not planarized: %s", r, tbl)
		}
		if tbl.Cell(r, "outerOnOneFace") != "true" {
			t.Fatalf("row %d outer nodes scattered: %s", r, tbl)
		}
	}
}

func TestE7RatiosBounded(t *testing.T) {
	tbl := experiments.E7MinCut([]int{30, 60}, 1)
	for r := range tbl.Rows {
		ratio := cellFloat(t, tbl, r, "ratio")
		if ratio < 1.0-1e-9 {
			t.Fatalf("impossible ratio %v", ratio)
		}
		if ratio > 1.5 {
			t.Fatalf("ratio %v too large", ratio)
		}
	}
}

func TestE8QualityTracksSqrtN(t *testing.T) {
	tbl := experiments.E8LowerBound([]int{6, 12}, 1)
	// Quality must grow with sqrt(n): the larger instance's quality should
	// exceed the smaller's.
	q0 := cellFloat(t, tbl, 0, "quality")
	q1 := cellFloat(t, tbl, 1, "quality")
	if q1 <= q0 {
		t.Fatalf("lower-bound quality did not grow: %v -> %v", q0, q1)
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep skipped in -short mode")
	}
	tables := experiments.All(7)
	// Pinned explicitly (not via len(Runners())) so accidentally dropping
	// an experiment from the registry fails here; bump when adding one.
	if len(tables) != 20 {
		t.Fatalf("expected 20 tables, got %d", len(tables))
	}
	seen := map[string]bool{}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Fatalf("%s produced no rows", tbl.ID)
		}
		if seen[tbl.ID] {
			t.Fatalf("duplicate table %s", tbl.ID)
		}
		seen[tbl.ID] = true
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Fatalf("%s: ragged row %v", tbl.ID, row)
			}
		}
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &experiments.Table{
		ID:     "T",
		Title:  "test",
		Header: []string{"a", "b"},
	}
	tbl.AddRow(1, 2.5)
	s := tbl.String()
	if !strings.Contains(s, "2.50") || !strings.Contains(s, "=== T") {
		t.Fatalf("rendering wrong: %s", s)
	}
	if tbl.Cell(0, "a") != "1" || tbl.Cell(0, "zzz") != "" || tbl.Cell(9, "a") != "" {
		t.Fatal("Cell lookup wrong")
	}
}

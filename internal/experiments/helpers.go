package experiments

import (
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// aggregate runs one part-wise min aggregation and returns the effective
// round count.
func aggregate(g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut, keys []uint64) (int, error) {
	res, err := congest.AggregateMin(g, p, s, keys)
	if err != nil {
		return 0, err
	}
	return res.EffectiveRounds, nil
}

// Runner couples an experiment table's ID with its bench-friendly-size
// runner, so callers (cmd/allbench's -table flag, the smoke tests) can
// regenerate a single table without running the whole suite.
type Runner struct {
	ID  string
	Run func(seed int64) *Table
}

// Runners returns every experiment at bench-friendly sizes, in ID order.
func Runners() []Runner {
	return []Runner{
		{"E1", func(seed int64) *Table { return E1PlanarQuality([]int{6, 10, 14, 18}, seed) }},
		{"E2", func(seed int64) *Table { return E2Treewidth(400, []int{2, 3, 4, 6}, seed) }},
		{"E3", func(seed int64) *Table { return E3CliqueSum([]int{2, 4, 8, 12}, 18, 3, seed) }},
		{"E4", func(seed int64) *Table { return E4AlmostEmbeddable(seed) }},
		{"E5", func(seed int64) *Table { return E5Main([]int{2, 4, 8, 16}, seed) }},
		{"E6", func(seed int64) *Table { return E6MST([]int{64, 128, 256, 512}, seed) }},
		{"E6b", func(seed int64) *Table { return E6bMSTExcludedMinor([]int{2, 4, 8}, seed) }},
		{"E6c", func(seed int64) *Table { return AggregationShowcase([]int{16, 32, 64, 128}, seed) }},
		{"E7", func(seed int64) *Table { return E7MinCut([]int{40, 80, 160}, seed) }},
		{"E8", func(seed int64) *Table { return E8LowerBound([]int{4, 8, 12, 16}, seed) }},
		{"E8b", func(seed int64) *Table { return E8bLowerBoundMST([]int{4, 6, 8}, seed) }},
		{"E9", func(seed int64) *Table { return E9SSSP([]int{64, 128, 256, 512}, []int{32, 64, 128, 256}, seed) }},
		{"E10", func(seed int64) *Table { return E10FoldingAblation([]int{8, 16, 32, 64}, seed) }},
		{"E11", func(seed int64) *Table { return E11ApexEffect([]int{32, 64, 128}, seed) }},
		{"E12", func(seed int64) *Table { return E12Planarize([]int{0, 1, 2, 3}, seed) }},
		{"E13", func(seed int64) *Table {
			return E13Construct([]int{6, 10, 14}, []int{32, 64}, []int{2, 4, 8, 16}, seed)
		}},
		{"E14", func(seed int64) *Table { return E14Pipeline([]int{6, 10, 14}, []int{32, 64}, []int{2, 4, 8, 16}, seed) }},
		{"E15", func(seed int64) *Table { return E15Pipecast([]int{6, 10, 14}, []int{32, 64}, []int{2, 4, 8, 16}, seed) }},
		{"E18", func(seed int64) *Table { return E18Churn([]int{6, 10, 14}, []int{32, 64}, []int{2, 4}, 40, seed) }},
		{"E19", func(seed int64) *Table { return E19Query([]int{10}, []int{64}, []int{8}, 9999, 20000, false, seed) }},
	}
}

// ByID regenerates the single experiment table with the given ID (case
// as listed — "E6c", "E15") at bench-friendly sizes; ok is false for an
// unknown ID.
func ByID(id string, seed int64) (t *Table, ok bool) {
	for _, r := range Runners() {
		if r.ID == id {
			return r.Run(seed), true
		}
	}
	return nil, false
}

// IDs lists every experiment table ID in order.
func IDs() []string {
	rs := Runners()
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.ID
	}
	return out
}

// All runs every experiment at bench-friendly sizes and returns the tables
// in ID order. The tables build concurrently (each one also parallelizes
// its own grid points); results are deterministic either way. Used by
// cmd/allbench and smoke tests.
func All(seed int64) []*Table {
	runners := Runners()
	return forEachPoint(len(runners), func(i int) *Table { return runners[i].Run(seed) })
}

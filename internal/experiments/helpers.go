package experiments

import (
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// aggregate runs one part-wise min aggregation and returns the effective
// round count.
func aggregate(g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut, keys []uint64) (int, error) {
	res, err := congest.AggregateMin(g, p, s, keys)
	if err != nil {
		return 0, err
	}
	return res.EffectiveRounds, nil
}

// All runs every experiment at bench-friendly sizes and returns the tables
// in ID order. Used by cmd/allbench and smoke tests.
func All(seed int64) []*Table {
	return []*Table{
		E1PlanarQuality([]int{6, 10, 14, 18}, seed),
		E2Treewidth(400, []int{2, 3, 4, 6}, seed),
		E3CliqueSum([]int{2, 4, 8, 12}, 18, 3, seed),
		E4AlmostEmbeddable(seed),
		E5Main([]int{2, 4, 8, 16}, seed),
		E6MST([]int{64, 128, 256}, seed),
		E6bMSTExcludedMinor([]int{2, 4, 8}, seed),
		AggregationShowcase([]int{16, 32, 64}, seed),
		E7MinCut([]int{40, 80, 160}, seed),
		E8LowerBound([]int{4, 8, 12, 16}, seed),
		E8bLowerBoundMST([]int{4, 6, 8}, seed),
		E10FoldingAblation([]int{8, 16, 32, 64}, seed),
		E11ApexEffect([]int{32, 64, 128}, seed),
		E12Planarize([]int{0, 1, 2, 3}, seed),
	}
}

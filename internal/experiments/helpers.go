package experiments

import (
	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// aggregate runs one part-wise min aggregation and returns the effective
// round count.
func aggregate(g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut, keys []uint64) (int, error) {
	res, err := congest.AggregateMin(g, p, s, keys)
	if err != nil {
		return 0, err
	}
	return res.EffectiveRounds, nil
}

// All runs every experiment at bench-friendly sizes and returns the tables
// in ID order. The tables build concurrently (each one also parallelizes
// its own grid points); results are deterministic either way. Used by
// cmd/allbench and smoke tests.
func All(seed int64) []*Table {
	runners := []func() *Table{
		func() *Table { return E1PlanarQuality([]int{6, 10, 14, 18}, seed) },
		func() *Table { return E2Treewidth(400, []int{2, 3, 4, 6}, seed) },
		func() *Table { return E3CliqueSum([]int{2, 4, 8, 12}, 18, 3, seed) },
		func() *Table { return E4AlmostEmbeddable(seed) },
		func() *Table { return E5Main([]int{2, 4, 8, 16}, seed) },
		func() *Table { return E6MST([]int{64, 128, 256, 512}, seed) },
		func() *Table { return E6bMSTExcludedMinor([]int{2, 4, 8}, seed) },
		func() *Table { return AggregationShowcase([]int{16, 32, 64, 128}, seed) },
		func() *Table { return E7MinCut([]int{40, 80, 160}, seed) },
		func() *Table { return E8LowerBound([]int{4, 8, 12, 16}, seed) },
		func() *Table { return E8bLowerBoundMST([]int{4, 6, 8}, seed) },
		func() *Table { return E9SSSP([]int{64, 128, 256, 512}, []int{32, 64, 128, 256}, seed) },
		func() *Table { return E10FoldingAblation([]int{8, 16, 32, 64}, seed) },
		func() *Table { return E11ApexEffect([]int{32, 64, 128}, seed) },
		func() *Table { return E12Planarize([]int{0, 1, 2, 3}, seed) },
		func() *Table { return E13Construct([]int{6, 10, 14}, []int{32, 64}, []int{2, 4, 8, 16}, seed) },
		func() *Table { return E14Pipeline([]int{6, 10, 14}, []int{32, 64}, []int{2, 4, 8, 16}, seed) },
	}
	return forEachPoint(len(runners), func(i int) *Table { return runners[i]() })
}

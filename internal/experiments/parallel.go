package experiments

import (
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/xrand"
)

// forEachPoint evaluates fn over n independent grid points concurrently on
// a worker pool bounded by GOMAXPROCS, returning the results in index order
// — so tables keep deterministic row order no matter how the points
// interleave. A panic in any point is re-raised in the caller (the
// experiments treat generator/construction failures as fatal).
func forEachPoint[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var panicked any
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
				<-sem
				wg.Done()
			}()
			out[i] = fn(i)
		}(i)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// pointRNG derives an independent deterministic RNG for grid point i of a
// run seeded with seed. Points draw from disjoint streams, so their results
// do not depend on evaluation order.
func pointRNG(seed int64, i int) *rand.Rand {
	return xrand.New(seed*1_000_003 + int64(i)*7919 + 1)
}

// PointRNG exposes the per-grid-point RNG derivation so external tools and
// tests can regenerate the exact instance behind any table row.
func PointRNG(seed int64, i int) *rand.Rand { return pointRNG(seed, i) }

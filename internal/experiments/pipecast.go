package experiments

import (
	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pipeline"
)

// E15Pipecast measures the pipelined multi-token tree communication layer
// against sequential repetition: streaming the k per-part block-count
// tokens to the root in one pipelined convergecast (congest.Pipecast,
// O(height + k) rounds, one token per tree edge per round) versus running
// k single-token convergecasts back to back (k · O(height) — what the
// framework would pay without pipelining). The payload is the priority
// bootstrap's own workload: every part member decides locally whether it
// tops a tree block, and the per-part sums travel to the root.
//
// The same three families as E13/E14 — grids with row parts, wheels with
// rim-arc parts, K5-minor-free clique-sum chains with Voronoi parts — each
// over the tree the network elects for itself (pipeline.SelfSetup).
// r_pipe must stay within the height + k + 1 pipelining bound and beat
// r_seq on every row; chg_pipe/chg_seq report the analytic ledger for the
// same two strategies. The cap columns validate the layer's integration:
// with the bootstrap and per-guess block-count sums now running
// message-level, simulate-mode SearchCap (cap_sim, with r_boot measured
// bootstrap rounds) must still select the same cap as the analytic mode
// (cap_ana).
func E15Pipecast(gridSides, wheelRims, chainBags []int, seed int64) *Table {
	t := &Table{
		ID:     "E15",
		Title:  "pipelined multi-token convergecast: O(h+k) streaming vs k sequential convergecasts",
		Header: []string{"family", "n", "h", "k", "r_pipe", "bound", "r_seq", "speedup", "chg_pipe", "chg_seq", "cap_sim", "cap_ana", "r_boot"},
	}
	ng, nw := len(gridSides), len(wheelRims)
	rows := forEachPoint(ng+nw+len(chainBags), func(i int) row {
		rng := pointRNG(seed, i)
		switch {
		case i < ng:
			s := gridSides[i]
			e := gen.Grid(s, s)
			p, err := partition.GridRows(e.G, s, s)
			if err != nil {
				panic(err)
			}
			return pipecastRow("grid", e.G, p)
		case i < ng+nw:
			rim := wheelRims[i-ng]
			a := gen.CycleWithApex(rim, rng)
			p, err := partition.RimArcs(a.G, 8)
			if err != nil {
				panic(err)
			}
			return pipecastRow("wheel", a.G, p)
		default:
			nb := chainBags[i-ng-nw]
			pieces := make([]*gen.Piece, nb)
			for j := range pieces {
				pieces[j] = gen.ApollonianPiece(18+rng.Intn(8), rng)
			}
			cs := gen.CliqueSum(pieces, 3, rng)
			p, err := partition.Voronoi(cs.G, 3*nb, rng)
			if err != nil {
				panic(err)
			}
			return pipecastRow("k5free", cs.G, p)
		}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.Notes = append(t.Notes,
		"r_pipe: measured rounds streaming all k block-count tokens up in one pipelined convergecast; bound: height + k + 1",
		"r_seq: measured rounds of k single-token convergecasts run back to back (the unpipelined strategy)",
		"chg_pipe/chg_seq: the analytic-ledger charges for the same two strategies",
		"cap_sim/cap_ana: the cap each SearchCap mode selects (must agree); r_boot: the simulate run's measured priority-bootstrap rounds")
	return t
}

// pipecastRow runs the pipelined and sequential strategies over one
// family instance plus the two-mode cap-search validation, and formats
// one table row.
func pipecastRow(family string, g *graph.Graph, p *partition.Parts) row {
	setup, err := pipeline.SelfSetup(g, true)
	if err != nil {
		panic(err)
	}
	tr := setup.Tree
	k := p.NumParts()
	// The payload is the bootstrap's own workload (congest.BlockTopTokens),
	// so the table measures exactly the protocol the search runs.
	pres, err := congest.Pipecast(tr, k, congest.BlockTopTokens(tr, p), congest.CombineCount)
	if err != nil {
		panic(err)
	}
	// Sequential repetition: one single-token convergecast per part, the
	// k·O(height) baseline the pipelined layer replaces.
	rSeq := 0
	vals := make([]uint64, g.N())
	contrib := congest.BlockTopTokens(tr, p)
	for i := 0; i < k; i++ {
		for v := range vals {
			vals[v] = 0
			if len(contrib[v]) == 1 && contrib[v][0].Tag == int32(i) {
				vals[v] = 1
			}
		}
		_, stats, err := congest.TreeSum(tr, vals)
		if err != nil {
			panic(err)
		}
		rSeq += stats.LastActiveRound
	}
	sim, err := congest.SearchCap(g, tr, p, congest.SearchOptions{Simulate: true})
	if err != nil {
		panic(err)
	}
	ana, err := congest.SearchCap(g, tr, p, congest.SearchOptions{})
	if err != nil {
		panic(err)
	}
	return row{family, g.N(), tr.Height(), k,
		pres.EffectiveRounds, tr.Height() + k + 1, rSeq,
		float64(rSeq) / float64(pres.EffectiveRounds),
		congest.PipecastBudget(tr, k), k * congest.PipecastBudget(tr, 1),
		sim.Cap, ana.Cap, sim.BootstrapRounds}
}

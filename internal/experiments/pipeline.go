package experiments

import (
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/shortcut"
	"repro/internal/tw"
)

// E14Pipeline measures the zero-witness pipeline end to end: the network
// elects a leader, builds its own BFS tree (congest.LeaderElect +
// congest.DistributedBFS), ranks parts by tree block counts, runs the
// in-network O(log n) doubling cap search (congest.SearchCap) — one
// flooding construction plus convergecast quality estimate per guess — and
// keeps the winning shortcut. No witness, tree, or cap is supplied by the
// generator anywhere on that path.
//
// The same three families as E13, against the same witness baselines:
// grids with row parts (cotree treewidth witness), wheels with rim-arc
// parts (apex-aware almost-embeddable witness), and K5-minor-free
// clique-sum chains with Voronoi parts (Theorem 6 witness). q_zero is the
// exactly measured quality of the zero-witness shortcut, q_wit the witness
// construction's; the acceptance bar is q_zero within 2× of q_wit on every
// family. r_boot and r_search are the measured bootstrap and cap-search
// rounds (simulate ledger), r_chg the analytic-ledger total for the same
// pipeline, and use_zero/use_wit the part-wise aggregation rounds each
// shortcut then buys.
func E14Pipeline(gridSides, wheelRims, chainBags []int, seed int64) *Table {
	t := &Table{
		ID:     "E14",
		Title:  "zero-witness pipeline: elect + BFS + cap search vs witness constructions",
		Header: []string{"family", "n", "diam", "parts", "cap", "q_zero", "q_wit", "ratio", "r_boot", "r_search", "r_chg", "use_zero", "use_wit"},
	}
	ng, nw := len(gridSides), len(wheelRims)
	rows := forEachPoint(ng+nw+len(chainBags), func(i int) row {
		rng := pointRNG(seed, i)
		switch {
		case i < ng:
			s := gridSides[i]
			e := gen.Grid(s, s)
			tr, err := graph.BFSTree(e.G, 0)
			if err != nil {
				panic(err)
			}
			p, err := partition.GridRows(e.G, s, s)
			if err != nil {
				panic(err)
			}
			d, err := tw.FromEmbeddingByCotree(e.Emb, tr)
			if err != nil {
				panic(err)
			}
			res, err := shortcut.FromTreewidth(e.G, tr, p, d)
			if err != nil {
				panic(err)
			}
			return pipelineRow("grid", e.G, p, res.S)
		case i < ng+nw:
			rim := wheelRims[i-ng]
			a := gen.CycleWithApex(rim, rng)
			tr, err := graph.BFSTree(a.G, a.Apices[0])
			if err != nil {
				panic(err)
			}
			p, err := partition.RimArcs(a.G, 8)
			if err != nil {
				panic(err)
			}
			res, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a)
			if err != nil {
				panic(err)
			}
			return pipelineRow("wheel", a.G, p, res.S)
		default:
			nb := chainBags[i-ng-nw]
			pieces := make([]*gen.Piece, nb)
			for j := range pieces {
				pieces[j] = gen.ApollonianPiece(18+rng.Intn(8), rng)
			}
			cs := gen.CliqueSum(pieces, 3, rng)
			tr, err := graph.BFSTree(cs.G, 0)
			if err != nil {
				panic(err)
			}
			p, err := partition.Voronoi(cs.G, 3*nb, rng)
			if err != nil {
				panic(err)
			}
			res, err := core.ExcludedMinorShortcut(cs.G, tr, p, witness(cs))
			if err != nil {
				panic(err)
			}
			return pipelineRow("k5free", cs.G, p, res.S)
		}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.Notes = append(t.Notes,
		"q_zero: quality of the shortcut the network built with zero generator input (elected tree, in-network cap search, block priorities)",
		"q_wit: the witness construction the generator knows (whose construction rounds were never paid)",
		"r_boot/r_search: measured bootstrap and cap-search rounds; r_chg: the analytic-ledger charge for the same pipeline",
		"use_zero/use_wit: part-wise aggregation rounds over each shortcut (the downstream payoff)")
	return t
}

// pipelineRow runs the zero-witness pipeline once (simulate mode, which
// also reports the closed-form analytic charge) plus an aggregation usage
// over both shortcuts, and formats one table row.
func pipelineRow(family string, g *graph.Graph, p *partition.Parts, wit *shortcut.Shortcut) row {
	setup, err := pipeline.SelfSetup(g, true)
	if err != nil {
		panic(err)
	}
	search, err := congest.SearchCap(g, setup.Tree, p, congest.SearchOptions{Simulate: true})
	if err != nil {
		panic(err)
	}
	keys := make([]uint64, g.N())
	for v := range keys {
		keys[v] = uint64((v*7919)%100000 + 1)
	}
	useZero, err := aggregate(g, p, search.S, keys)
	if err != nil {
		panic(err)
	}
	useWit, err := aggregate(g, p, wit, keys)
	if err != nil {
		panic(err)
	}
	qZero := search.S.Measure().Quality
	qWit := wit.Measure().Quality
	// r_chg: what the identical pipeline charges on the analytic ledger —
	// a closed form both modes report, so no second run is needed (the
	// mode-agreement tests pin that the analytic run matches it exactly).
	return row{family, g.N(), graph.DiameterApprox(g), p.NumParts(), search.Cap,
		qZero, qWit, float64(qZero) / float64(qWit),
		setup.Cost.Simulated, search.EffectiveRounds,
		setup.ChargedEquivalent + search.ChargedEquivalent,
		useZero, useWit}
}

package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
	"repro/internal/tw"
)

// witness converts a generated clique-sum into the core input.
func witness(cs *gen.CliqueSumGraph) *core.CliqueSumWitness {
	return &core.CliqueSumWitness{
		CST:         cs.CST,
		BagGraphs:   cs.BagGraphs,
		BagDecomp:   cs.BagDecomp,
		BagToGlobal: cs.BagToGlobal,
	}
}

// row is one grid point's formatted output cells.
type row []interface{}

// E1PlanarQuality measures shortcut quality on planar families against
// Theorem 4's b=O(log d), c=O(d·log d): grids of growing diameter with the
// adversarial row parts, comparing the oblivious and treewidth-witness
// constructions.
func E1PlanarQuality(sides []int, seed int64) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "planar shortcut quality (Theorem 4 shape: b=Õ(1), c=Õ(d))",
		Header: []string{"n", "diam", "parts", "b_obliv", "c_obliv", "q_obliv", "b_tw", "c_tw", "q_tw"},
	}
	rows := forEachPoint(len(sides), func(i int) row {
		s := sides[i]
		e := gen.Grid(s, s)
		tr, err := graph.BFSTree(e.G, 0)
		if err != nil {
			panic(err)
		}
		p, err := partition.GridRows(e.G, s, s)
		if err != nil {
			panic(err)
		}
		_, mo := shortcut.ObliviousAuto(e.G, tr, p)
		// Treewidth route: cotree decomposition of the grid itself.
		d, err := tw.FromEmbeddingByCotree(e.Emb, tr)
		if err != nil {
			panic(err)
		}
		res, err := shortcut.FromTreewidth(e.G, tr, p, d)
		if err != nil {
			panic(err)
		}
		mt := res.S.Measure()
		return row{e.G.N(), 2 * (s - 1), p.NumParts(),
			mo.MaxBlocks, mo.Congestion, mo.Quality,
			mt.MaxBlocks, mt.Congestion, mt.Quality}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

// E2Treewidth sweeps k on k-trees against Theorem 5: b = O(k),
// c = O(k·log²n).
func E2Treewidth(n int, ks []int, seed int64) *Table {
	t := &Table{
		ID:     "E2",
		Title:  fmt.Sprintf("treewidth shortcut quality, n=%d (Theorem 5: b=O(k), c=O(k·log²n))", n),
		Header: []string{"k", "foldedWidth", "foldedDepth", "blocks", "congestion", "quality", "b<=k+2?"},
	}
	rows := forEachPoint(len(ks), func(i int) row {
		k := ks[i]
		rng := pointRNG(seed, i)
		kt := gen.KTree(n, k, rng)
		tr, err := graph.BFSTree(kt.G, 0)
		if err != nil {
			panic(err)
		}
		p, err := partition.Voronoi(kt.G, 16, rng)
		if err != nil {
			panic(err)
		}
		res, err := shortcut.FromTreewidth(kt.G, tr, p, kt.Decomp)
		if err != nil {
			panic(err)
		}
		m := res.S.Measure()
		ok := m.MaxBlocks <= res.FoldedWidth+3
		return row{k, res.FoldedWidth, res.FoldedHeight, m.MaxBlocks, m.Congestion, m.Quality, ok}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

// E3CliqueSum sweeps the number of bags in a clique-sum against Theorem 7:
// blocks stay 2k+O(b_F), congestion gains only the folded-depth term.
func E3CliqueSum(bagCounts []int, bagSize, k int, seed int64) *Table {
	t := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("clique-sum shortcut quality, planar bags of ~%d (Theorem 7)", bagSize),
		Header: []string{"bags", "n", "foldedDepth", "blocks", "congestion", "quality", "q_obliv"},
	}
	rows := forEachPoint(len(bagCounts), func(i int) row {
		nb := bagCounts[i]
		rng := pointRNG(seed, i)
		pieces := make([]*gen.Piece, nb)
		for j := range pieces {
			pieces[j] = gen.ApollonianPiece(bagSize, rng)
		}
		cs := gen.CliqueSum(pieces, k, rng)
		tr, err := graph.BFSTree(cs.G, 0)
		if err != nil {
			panic(err)
		}
		p, err := partition.Voronoi(cs.G, 2*nb, rng)
		if err != nil {
			panic(err)
		}
		res, err := core.CliqueSumShortcut(cs.G, tr, p, witness(cs))
		if err != nil {
			panic(err)
		}
		_, mo := shortcut.ObliviousAuto(cs.G, tr, p)
		return row{nb, cs.G.N(), res.Info["foldedDepth"], res.M.MaxBlocks, res.M.Congestion, res.M.Quality, mo.Quality}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

// E4AlmostEmbeddable sweeps vortex and apex parameters against Theorem 8.
func E4AlmostEmbeddable(seed int64) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "almost-embeddable shortcut quality (Theorem 8: b=O(q+(g+1)kℓ²d))",
		Header: []string{"base", "q(apex)", "ℓ(vortex)", "k(depth)", "n", "diam", "blocks", "congestion", "quality", "beta"},
	}
	configs := []struct {
		name    string
		side    int
		genus   int
		q, l, k int
	}{
		{"grid10", 10, 0, 0, 1, 2},
		{"grid10", 10, 0, 1, 0, 0},
		{"grid10", 10, 0, 1, 1, 2},
		{"grid10", 10, 0, 2, 2, 2},
		{"grid14", 14, 0, 1, 2, 3},
	}
	rows := forEachPoint(len(configs), func(i int) row {
		cfg := configs[i]
		rng := pointRNG(seed, i)
		a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
			Base:        gen.Grid(cfg.side, cfg.side),
			Genus:       cfg.genus,
			NumVortices: cfg.l,
			VortexDepth: cfg.k,
			VortexNodes: 4,
			NumApices:   cfg.q,
			ApexDegree:  0, // connect to all: worst-case diameter collapse
		}, rng)
		if err := a.Validate(); err != nil {
			panic(err)
		}
		root := 0
		if len(a.Apices) > 0 {
			root = a.Apices[0]
		}
		tr, err := graph.BFSTree(a.G, root)
		if err != nil {
			panic(err)
		}
		p, err := partition.Voronoi(a.G, 12, rng)
		if err != nil {
			panic(err)
		}
		res, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a)
		if err != nil {
			panic(err)
		}
		return row{cfg.name, cfg.q, cfg.l, cfg.k, a.G.N(), graph.DiameterApprox(a.G),
			res.M.MaxBlocks, res.M.Congestion, res.M.Quality, res.Info["observedBeta"]}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

// E5Main sweeps the diameter of K5-minor-free networks (3-clique-sums of
// planar triangulations) and checks the main theorem's q(d) = Õ(d²): the
// log-log slope of quality vs diameter should be at most ~2.
func E5Main(bagCounts []int, seed int64) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "main theorem: quality vs diameter on K5-minor-free networks (q = Õ(d²))",
		Header: []string{"bags", "n", "diam", "blocks", "congestion", "quality", "d*d"},
	}
	type point struct {
		cells row
		d, q  float64
	}
	points := forEachPoint(len(bagCounts), func(i int) point {
		nb := bagCounts[i]
		rng := pointRNG(seed, i)
		pieces := make([]*gen.Piece, nb)
		for j := range pieces {
			pieces[j] = gen.ApollonianPiece(18+rng.Intn(8), rng)
		}
		cs := gen.CliqueSum(pieces, 3, rng)
		tr, err := graph.BFSTree(cs.G, 0)
		if err != nil {
			panic(err)
		}
		p, err := partition.Voronoi(cs.G, 3*nb, rng)
		if err != nil {
			panic(err)
		}
		res, err := core.ExcludedMinorShortcut(cs.G, tr, p, witness(cs))
		if err != nil {
			panic(err)
		}
		d := graph.DiameterApprox(cs.G)
		return point{
			cells: row{nb, cs.G.N(), d, res.M.MaxBlocks, res.M.Congestion, res.M.Quality, d * d},
			d:     float64(d),
			q:     float64(res.M.Quality),
		}
	})
	var ds, qs []float64
	for _, pt := range points {
		t.AddRow(pt.cells...)
		ds = append(ds, pt.d)
		qs = append(qs, pt.q)
	}
	slope := logLogSlope(ds, qs)
	t.Notes = append(t.Notes, fmt.Sprintf("log-log slope of quality vs diameter: %.2f (theorem predicts <= 2)", slope))
	return t
}

// E8LowerBound measures oblivious quality on the Ω̃(√n) hard family: the
// quality should scale like √n even though the diameter stays logarithmic.
func E8LowerBound(sizes []int, seed int64) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "lower-bound family contrast ([SHK+12]): quality ~ √n despite small diameter",
		Header: []string{"p=ell", "n", "diam", "quality", "sqrt(n)", "quality/sqrt(n)"},
	}
	rows := forEachPoint(len(sizes), func(i int) row {
		s := sizes[i]
		lb := gen.LowerBound(s, s)
		tr, err := graph.BFSTree(lb.G, lb.Root)
		if err != nil {
			panic(err)
		}
		p, err := partition.PathsAsParts(lb.G, lb.Paths)
		if err != nil {
			panic(err)
		}
		_, m := shortcut.ObliviousAuto(lb.G, tr, p)
		n := lb.G.N()
		sq := 1
		for sq*sq < n {
			sq++
		}
		return row{s, n, graph.DiameterApprox(lb.G), m.Quality, sq, float64(m.Quality) / float64(sq)}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

// E10FoldingAblation contrasts Lemma 1 (raw decomposition depth) with
// Theorem 7 (folded to O(log²n)): congestion on a long chain of bags.
func E10FoldingAblation(chainLengths []int, seed int64) *Table {
	t := &Table{
		ID:     "E10",
		Title:  "folding ablation (Lemma 1 vs Theorem 7): congestion vs decomposition depth",
		Header: []string{"bags", "rawDepth", "foldedDepth", "c_unfolded", "c_folded", "q_unfolded", "q_folded"},
	}
	rows := forEachPoint(len(chainLengths), func(i int) row {
		L := chainLengths[i]
		rng := pointRNG(seed, i)
		pieces := make([]*gen.Piece, L)
		for j := range pieces {
			pieces[j] = gen.GridPiece(4, 4)
		}
		cs := gen.CliqueSumChain(pieces, 1, rng) // chain: raw depth = L-1
		tr, err := graph.BFSTree(cs.G, 0)
		if err != nil {
			panic(err)
		}
		p, err := partition.Voronoi(cs.G, 2*L, rng)
		if err != nil {
			panic(err)
		}
		folded, err := core.CliqueSumShortcut(cs.G, tr, p, witness(cs))
		if err != nil {
			panic(err)
		}
		unfolded, err := core.CliqueSumShortcutUnfolded(cs.G, tr, p, witness(cs))
		if err != nil {
			panic(err)
		}
		return row{L, unfolded.Info["foldedDepth"], folded.Info["foldedDepth"],
			unfolded.M.Congestion, folded.M.Congestion,
			unfolded.M.Quality, folded.M.Quality}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

// E11ApexEffect reproduces the §2.3.2 discussion: adding an apex to a cycle
// collapses the diameter; naive shortcuts built for the cycle stop being
// good, the apex-aware construction keeps quality near the new diameter.
func E11ApexEffect(ns []int, seed int64) *Table {
	t := &Table{
		ID:     "E11",
		Title:  "apex effect (cycle -> wheel, §2.3.2): naive vs apex-aware quality",
		Header: []string{"n", "cycleDiam", "wheelDiam", "arcs", "q_naive(empty)", "q_oblivious", "q_apexAware"},
	}
	rows := forEachPoint(len(ns), func(i int) row {
		n := ns[i]
		rng := pointRNG(seed, i)
		a := gen.CycleWithApex(n, rng)
		tr, err := graph.BFSTree(a.G, a.Apices[0])
		if err != nil {
			panic(err)
		}
		arcs := 8
		p, err := partition.RimArcs(a.G, arcs)
		if err != nil {
			panic(err)
		}
		empty := shortcut.Empty(a.G, tr, p).Measure()
		_, mo := shortcut.ObliviousAuto(a.G, tr, p)
		res, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a)
		if err != nil {
			panic(err)
		}
		return row{n + 1, n / 2, 2, arcs, empty.Quality, mo.Quality, res.M.Quality}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

package experiments

import (
	"math/rand"
	"strconv"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/query"
	"repro/internal/sssp"
)

// E19Query measures the query-serving layer: one zero-witness construction
// (analytic SelfSetup + SearchCap — byte-identical to the simulated
// pipeline) serves batched k-source SSSP and cached distance queries.
//
// Left half, the batching win: k=8 sources computed by one batched run
// (sssp.ApproxBatch, tag-multiplexed tokens over the shared part channels)
// versus k sequential single-source runs over the identical shortcut, in
// the same ledger. On the E14 families the batch runs message-level on the
// engine: r_batch/r_seq are measured simulated rounds, rp_max the largest
// per-phase quiet-point against its O(h+k) budget rp_bound
// (congest.BatchRelaxBudget), and the acceptance bar is speedup > 2 with
// byte-identical answers (pinned by the sssp tests). The 10⁴-node serving
// row books both schedules analytically — same formulas, bigger network.
//
// Right half, the serving story: a seeded Zipf-skewed trace replayed twice
// against the oracle. The cold pass reports hit rate and amortized
// rounds/query (every distinct source costs one batched miss, every other
// query rides the cache at zero rounds); the second pass of the same trace
// reports warmed queries/sec — steady-state serving throughput, the
// acceptance bar being ≥ 10⁵ qps at 10⁴ nodes.
//
// wallclock enables the qps column (warmed wall-clock throughput, the one
// non-deterministic figure); registry runs pass false so allbench output
// stays byte-identical across runs and GOMAXPROCS.
func E19Query(gridSides, wheelRims, chainBags []int, serveRim, queries int, wallclock bool, seed int64) *Table {
	t := &Table{
		ID:     "E19",
		Title:  "query serving: batched k-source SSSP + cached distance oracle over one construction",
		Header: []string{"family", "n", "parts", "k", "r_batch", "r_seq", "speedup", "rp_max", "rp_bound", "queries", "hit_pct", "qps", "r_query"},
	}
	ng, nw := len(gridSides), len(wheelRims)
	rows := forEachPoint(ng+nw+len(chainBags)+1, func(i int) row {
		rng := pointRNG(seed, i)
		switch {
		case i < ng:
			s := gridSides[i]
			e := gen.Grid(s, s)
			g := gen.UniformWeights(e.G, rng)
			p, err := partition.GridRows(g, s, s)
			if err != nil {
				panic(err)
			}
			return queryRow("grid", g, p, true, 8, queries, wallclock, rng)
		case i < ng+nw:
			rim := wheelRims[i-ng]
			a := gen.CycleWithApex(rim, rng)
			g := gen.UniformWeights(a.G, rng)
			// Heavy spokes: shortest paths ride the rim instead of hopping
			// the apex, so the relaxation flood has real hop-depth — the
			// latency the batched schedule pipelines away. (An apex-routed
			// wheel has h≈2 and nothing for batching to save.)
			apex := a.Apices[0]
			for id := 0; id < g.M(); id++ {
				if e := g.Edge(id); e.U == apex || e.V == apex {
					g.SetWeight(id, e.W*float64(rim))
				}
			}
			p, err := partition.RimArcs(g, 8)
			if err != nil {
				panic(err)
			}
			return queryRow("wheel", g, p, true, 8, queries, wallclock, rng)
		case i < ng+nw+len(chainBags):
			nb := chainBags[i-ng-nw]
			pieces := make([]*gen.Piece, nb)
			for j := range pieces {
				pieces[j] = gen.ApollonianPiece(12+rng.Intn(6), rng)
			}
			// A path-glued chain partitioned by bag: shortest paths cross
			// one part boundary per phase, so every phase floods real
			// depth — the regime where one batched schedule amortizes k
			// sources. (A Voronoi partition over the same chain leaves most
			// sequential phases trivially quiet and the comparison noisy.)
			cs := gen.CliqueSumChain(pieces, 3, rng)
			g := gen.UniformWeights(cs.G, rng)
			p, err := bagAlignedParts(g, cs)
			if err != nil {
				panic(err)
			}
			return queryRow("k5free", g, p, true, 8, queries, wallclock, rng)
		default:
			// The serving row: a 10⁴-node wheel (constant diameter, few
			// relaxation phases) under the same trace, analytic ledger.
			a := gen.CycleWithApex(serveRim, rng)
			g := gen.UniformWeights(a.G, rng)
			p, err := partition.RimArcs(g, 64)
			if err != nil {
				panic(err)
			}
			return queryRow("serve-wheel", g, p, false, 16, queries, wallclock, rng)
		}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.Notes = append(t.Notes,
		"r_batch: one batched k-source run (sssp.ApproxBatch); r_seq: k sequential single-source runs over the same shortcut, same ledger (simulated on the E14 families, charged on the serve row)",
		"rp_max: largest measured per-phase quiet-point of the batch; rp_bound: the O(h+k) per-phase budget congest.BatchRelaxBudget — the O(h+k)-not-k·O(h) claim ('-' on analytic rows)",
		"hit_pct/r_query: cold replay of a Zipf(1.5) trace (each distinct source = one batched miss, window 1024); qps: the same trace replayed against the warmed cache (wall-clock, not deterministic; '-' unless enabled — registry runs keep allbench byte-identical)",
		"answers are byte-identical between the batched and sequential schedules (pinned by internal/sssp's E14-family equality tests)")
	return t
}

// bagAlignedParts partitions a clique-sum chain by decomposition bag:
// each vertex joins its first containing bag, and every connected
// component of a bag's vertex set becomes one part (separator triangles
// belong to the earlier bag, which can split the later bag's remainder).
func bagAlignedParts(g *graph.Graph, cs *gen.CliqueSumGraph) (*partition.Parts, error) {
	owner := make([]int, g.N())
	for i := range owner {
		owner[i] = -1
	}
	for b, glob := range cs.BagToGlobal {
		for _, v := range glob {
			if owner[v] < 0 {
				owner[v] = b
			}
		}
	}
	var sets [][]int
	visited := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if visited[v] {
			continue
		}
		comp := []int{v}
		visited[v] = true
		for qi := 0; qi < len(comp); qi++ {
			for _, a := range g.Adj(comp[qi]) {
				if !visited[a.To] && owner[a.To] == owner[v] {
					visited[a.To] = true
					comp = append(comp, a.To)
				}
			}
		}
		sets = append(sets, comp)
	}
	return partition.New(g, sets)
}

// queryRow bootstraps the construction through the analytic zero-witness
// pipeline, measures batched-vs-sequential k-source SSSP, replays the
// query trace cold and warmed, and formats one table row.
func queryRow(family string, g *graph.Graph, p *partition.Parts, simulate bool, k, queries int, wallclock bool, rng *rand.Rand) row {
	setup, err := pipeline.SelfSetup(g, false)
	if err != nil {
		panic(err)
	}
	search, err := congest.SearchCap(g, setup.Tree, p, congest.SearchOptions{})
	if err != nil {
		panic(err)
	}
	const eps = 0.125
	n := g.N()
	srcs := make([]int, k)
	for i := range srcs {
		srcs[i] = (i * n / k) % n
	}
	opts := sssp.Options{Eps: eps, Simulate: simulate}
	batch, err := sssp.ApproxBatch(g, srcs, p, search.S, opts)
	if err != nil {
		panic(err)
	}
	rBatch := batch.CommRounds + batch.ChargedRounds
	rSeq := 0
	for _, src := range srcs {
		seq, err := sssp.Approx(g, src, p, search.S, opts)
		if err != nil {
			panic(err)
		}
		rSeq += seq.CommRounds + seq.ChargedRounds
	}
	rpMax := "-"
	if simulate {
		rpMax = strconv.Itoa(batch.MaxPhaseRounds)
	}
	o, err := query.New(g, p, search.S, query.Options{Eps: eps})
	if err != nil {
		panic(err)
	}
	trace := query.TraceOptions{Queries: queries, ZipfS: 1.5, Seed: rng.Int63()}
	cold, err := query.Replay(o, trace)
	if err != nil {
		panic(err)
	}
	warm, err := query.Replay(o, trace)
	if err != nil {
		panic(err)
	}
	qps := "-"
	if wallclock {
		qps = strconv.FormatFloat(warm.QPS, 'f', 2, 64)
	}
	return row{family, n, p.NumParts(), k,
		rBatch, rSeq, float64(rSeq) / float64(rBatch), rpMax, batch.PhaseBudget,
		cold.Queries, 100 * cold.HitRate, qps, cold.RoundsPerQuery}
}

package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/embed"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/mst"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/shortcut"
	"repro/internal/structure"
)

// E6MST compares MST round counts across algorithms on the apex scenario
// (where the framework's advantage is real): shortcut framework vs naive
// flooding vs the O(D+√n) pipeline, as the rim grows. Weights are
// adversarial (cheap rim, expensive spokes) so fragments become wide.
func E6MST(rimSizes []int, seed int64) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "distributed MST rounds (Corollary 1): wheel networks, adversarial weights",
		Header: []string{"n", "diam", "r_shortcut", "r_naive", "r_pipelined", "charged_sc", "agree"},
	}
	rows := forEachPoint(len(rimSizes), func(i int) row {
		rim := rimSizes[i]
		rng := pointRNG(seed, i)
		g := gen.Wheel(rim + 1).G
		hub := g.N() - 1
		for id := 0; id < g.M(); id++ {
			e := g.Edge(id)
			if e.U == hub || e.V == hub {
				g.SetWeight(id, 100+rng.Float64())
			} else {
				g.SetWeight(id, 1+rng.Float64())
			}
		}
		gen.DistinctWeights(g)
		tr, err := graph.BFSTree(g, hub)
		if err != nil {
			panic(err)
		}
		sc, err := mst.ShortcutBoruvka(g, mst.ObliviousProvider(g, tr))
		if err != nil {
			panic(err)
		}
		naive, err := mst.ShortcutBoruvka(g, mst.EmptyProvider(g, tr))
		if err != nil {
			panic(err)
		}
		piped, err := mst.PipelinedMST(g)
		if err != nil {
			panic(err)
		}
		kIDs, _ := graph.Kruskal(g)
		agree := len(sc.EdgeIDs) == len(kIDs) && len(naive.EdgeIDs) == len(kIDs) && len(piped.EdgeIDs) == len(kIDs)
		for j := range kIDs {
			if !agree {
				break
			}
			agree = sc.EdgeIDs[j] == kIDs[j] && naive.EdgeIDs[j] == kIDs[j] && piped.EdgeIDs[j] == kIDs[j]
		}
		return row{g.N(), graph.DiameterApprox(g), sc.CommRounds, naive.CommRounds,
			piped.CommRounds, sc.ChargedRounds, agree}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.Notes = append(t.Notes,
		"r_shortcut stays near O(D·polylog) while r_naive grows with fragment width ~ n")
	return t
}

// E6bMSTExcludedMinor runs the three engines on K5-minor-free networks of
// growing size (the paper's headline family).
func E6bMSTExcludedMinor(bagCounts []int, seed int64) *Table {
	t := &Table{
		ID:     "E6b",
		Title:  "distributed MST rounds on K5-minor-free clique-sums",
		Header: []string{"bags", "n", "diam", "r_witness", "r_naive", "r_pipelined"},
	}
	rows := forEachPoint(len(bagCounts), func(i int) row {
		nb := bagCounts[i]
		rng := pointRNG(seed, i)
		pieces := make([]*gen.Piece, nb)
		for j := range pieces {
			pieces[j] = gen.ApollonianPiece(20, rng)
		}
		cs := gen.CliqueSum(pieces, 3, rng)
		gen.DistinctWeights(gen.UniformWeights(cs.G, rng))
		tr, err := graph.BFSTree(cs.G, 0)
		if err != nil {
			panic(err)
		}
		w := witness(cs)
		provider := func(p *partition.Parts) (*shortcut.Shortcut, pipeline.Rounds, error) {
			res, err := core.ExcludedMinorShortcut(cs.G, tr, p, w)
			if err != nil {
				return nil, pipeline.Rounds{}, err
			}
			return res.S, pipeline.Rounds{Charged: res.M.Quality}, nil
		}
		scRes, err := mst.ShortcutBoruvka(cs.G, provider)
		if err != nil {
			panic(err)
		}
		naive, err := mst.ShortcutBoruvka(cs.G, mst.EmptyProvider(cs.G, tr))
		if err != nil {
			panic(err)
		}
		piped, err := mst.PipelinedMST(cs.G)
		if err != nil {
			panic(err)
		}
		return row{nb, cs.G.N(), graph.DiameterApprox(cs.G),
			scRes.CommRounds, naive.CommRounds, piped.CommRounds}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

// E7MinCut measures the (1+ε)-approximate min cut: achieved ratio against
// exact Stoer-Wagner, plus round counts.
func E7MinCut(sizes []int, seed int64) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "(1+ε)-approximate min cut (Corollary 1): achieved ratio vs exact",
		Header: []string{"n", "m", "exact", "approx", "ratio", "trees", "rounds(charged)"},
	}
	rows := forEachPoint(len(sizes), func(i int) row {
		n := sizes[i]
		rng := pointRNG(seed, i)
		a := gen.NewApollonian(n, rng)
		gen.UniformWeights(a.G, rng)
		exact, _, err := graph.GlobalMinCut(a.G)
		if err != nil {
			panic(err)
		}
		r, err := mincut.Approx(a.G, mincut.Options{Trees: 24, TwoRespecting: n <= 250})
		if err != nil {
			panic(err)
		}
		return row{a.G.N(), a.G.M(), exact, r.Value, r.Value / exact, r.Trees, r.ChargedRounds + r.CommRounds}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

// E8bLowerBoundMST shows MST rounds growing ~√n on the hard family even at
// logarithmic diameter (the contrast motivating the paper).
func E8bLowerBoundMST(sizes []int, seed int64) *Table {
	t := &Table{
		ID:     "E8b",
		Title:  "MST rounds on the lower-bound family: ~√n despite D=O(log n)",
		Header: []string{"p=ell", "n", "diam", "r_oblivious", "r_naive", "sqrt(n)"},
	}
	rows := forEachPoint(len(sizes), func(i int) row {
		s := sizes[i]
		rng := pointRNG(seed, i)
		lb := gen.LowerBound(s, s)
		gen.DistinctWeights(gen.UniformWeights(lb.G, rng))
		tr, err := graph.BFSTree(lb.G, lb.Root)
		if err != nil {
			panic(err)
		}
		sc, err := mst.ShortcutBoruvka(lb.G, mst.ObliviousProvider(lb.G, tr))
		if err != nil {
			panic(err)
		}
		naive, err := mst.ShortcutBoruvka(lb.G, mst.EmptyProvider(lb.G, tr))
		if err != nil {
			panic(err)
		}
		n := lb.G.N()
		sq := 1
		for sq*sq < n {
			sq++
		}
		return row{s, n, graph.DiameterApprox(lb.G), sc.CommRounds, naive.CommRounds, sq}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

// E12Planarize quantifies the Planarization Lemma (Lemma 11) on tori and
// higher-genus surfaces: cut-graph growth and verified planarity.
func E12Planarize(genera []int, seed int64) *Table {
	t := &Table{
		ID:     "E12",
		Title:  "planarization (Lemma 11): cutting genus-g graphs along 2g generating cycles",
		Header: []string{"genus", "n", "m", "cut_n", "cut_m", "outer", "resultGenus", "outerOnOneFace"},
	}
	rows := forEachPoint(len(genera), func(i int) row {
		g := genera[i]
		var e *gen.Embedded
		if g == 0 {
			e = gen.Grid(6, 6)
		} else {
			e = gen.GenusChain(g, 4, 5)
		}
		tr, err := graph.BFSTree(e.G, 0)
		if err != nil {
			panic(err)
		}
		cut, err := embed.Planarize(e.Emb, tr)
		if err != nil {
			panic(err)
		}
		outer := 0
		for _, o := range cut.Outer {
			if o {
				outer++
			}
		}
		onFace := outerOnCommonFace(cut)
		return row{g, e.G.N(), e.G.M(), cut.PG.N(), cut.PG.M(), outer, cut.Emb.Genus(), onFace}
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	return t
}

func outerOnCommonFace(cut *embed.CutGraph) bool {
	var outer []int
	for v, ok := range cut.Outer {
		if ok {
			outer = append(outer, v)
		}
	}
	if len(outer) == 0 {
		return true
	}
	faces, _ := cut.Emb.Faces()
	for _, f := range faces {
		on := make(map[int]bool)
		for _, v := range cut.Emb.FaceVertices(f) {
			on[v] = true
		}
		all := true
		for _, v := range outer {
			if !on[v] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// AggregationShowcase is the sensor scenario as a table: rounds for
// part-wise aggregation, naive vs shortcut, as corridors lengthen.
func AggregationShowcase(widths []int, seed int64) *Table {
	return AggregationShowcaseOn(nil, widths, seed)
}

// AggregationShowcaseOn runs the aggregation showcase over a custom
// corridor generator (rows × cols grid rows as parts, any apex/vortex
// dressing); nil selects the default single-apex sensor field. The diam
// column is computed from the generated network — it is 2 for the default
// generator only because its apex neighbors every sensor.
func AggregationShowcaseOn(generate func(rows, cols int, rng *rand.Rand) *structure.AlmostEmbeddable, widths []int, seed int64) *Table {
	t := &Table{
		ID:     "E6c",
		Title:  "part-wise aggregation rounds (Theorem 1 primitive): grid+apex corridors",
		Header: []string{"cols", "n", "diam", "rounds_naive", "rounds_shortcut", "quality"},
	}
	if generate == nil {
		generate = func(rows, cols int, rng *rand.Rand) *structure.AlmostEmbeddable {
			return gen.PlanarWithApex(rows, cols, rng)
		}
	}
	const rows = 8
	outRows := forEachPoint(len(widths), func(i int) row {
		cols := widths[i]
		rng := pointRNG(seed, i)
		a := generate(rows, cols, rng)
		tr, err := graph.BFSTree(a.G, a.Apices[0])
		if err != nil {
			panic(err)
		}
		sets := make([][]int, rows)
		for r := 0; r < rows; r++ {
			sets[r] = make([]int, cols)
			for c := 0; c < cols; c++ {
				sets[r][c] = r*cols + c
			}
		}
		p, err := partition.New(a.G, sets)
		if err != nil {
			panic(err)
		}
		keys := make([]uint64, a.G.N())
		for v := range keys {
			keys[v] = uint64((v*7919)%100000 + 1)
		}
		empty := shortcut.Empty(a.G, tr, p)
		rn, err := aggregate(a.G, p, empty, keys)
		if err != nil {
			panic(err)
		}
		res, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a)
		if err != nil {
			panic(err)
		}
		rs, err := aggregate(a.G, p, res.S, keys)
		if err != nil {
			panic(err)
		}
		return row{cols, a.G.N(), graph.DiameterApprox(a.G), rn, rs, res.M.Quality}
	})
	for _, r := range outRows {
		t.AddRow(r...)
	}
	t.Notes = append(t.Notes, fmt.Sprintf("rows fixed at %d; naive grows with corridor length, shortcut with quality", rows))
	return t
}

package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/partition"
	"repro/internal/xrand"
)

// ScaleMode selects how much of the zero-witness pipeline runs message-level
// on the CONGEST engine.
type ScaleMode string

const (
	// ScaleAnalytic computes every fixed point sequentially and books the
	// framework's analytic round charges — the only mode whose wall-clock is
	// independent of the graph's diameter, and therefore the one that carries
	// a 10⁶-node grid (whose Θ(D) setup floods alone are ~4000 engine rounds
	// over 10⁶ nodes).
	ScaleAnalytic ScaleMode = "analytic"
	// ScaleHybrid simulates the bootstrap floods (election + BFS) message-
	// level on the round-driven engine — the stages whose per-round
	// wall-clock and bytes the measurement layer wants — and prices the
	// downstream stages analytically.
	ScaleHybrid ScaleMode = "hybrid"
	// ScaleSimulate runs every stage message-level. Decomposition and cap
	// search pipeline one token per fragment, so this mode is for experiment
	// sizes, not scale runs.
	ScaleSimulate ScaleMode = "simulate"
)

// ScaleStage is one timed stage of the pipeline run: wall-clock plus the
// stage's two-ledger round cost and, for simulated stages, the engine's
// traffic figures streamed through Options.OnRound (never O(n·rounds)
// retained state — two counters and two maxima per stage).
type ScaleStage struct {
	Name      string
	WallNS    int64
	Simulated int // engine-measured rounds
	Charged   int // analytic-ledger rounds
	Messages  int
	Bits      int64
	// MaxRoundBits / MaxRoundNS are the busiest single round observed by the
	// per-round probe (simulated stages only).
	MaxRoundBits int
	MaxRoundNS   int64
}

// ScaleResult is a full zero-witness pipeline run at scale: generate →
// elect → BFS → decompose → cap search → construct → MST, each stage timed,
// with the MST validated edge-for-edge against the CSR Kruskal oracle.
type ScaleResult struct {
	Family     string
	Mode       ScaleMode
	N, M       int
	Diameter   int   // double-sweep estimate (the bound the protocols use)
	GraphBytes int64 // CSR slab footprint
	Leader     int
	Parts      int // fragments handed to the cap search
	Cap        int // winning congestion cap
	Quality    int // measured quality of the constructed shortcut
	MSTPhases  int
	MSTWeight  float64
	MSTEdges   int
	Stages     []ScaleStage
}

// Totals folds the per-stage figures: wall-clock and the two round ledgers.
func (r *ScaleResult) Totals() (wallNS int64, simulated, charged int) {
	for _, s := range r.Stages {
		wallNS += s.WallNS
		simulated += s.Simulated
		charged += s.Charged
	}
	return wallNS, simulated, charged
}

// String renders the run as the per-stage table the scale harness prints.
func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "family=%s mode=%s n=%d m=%d diam~%d csr=%.1fMB parts=%d cap=%d quality=%d mst_edges=%d mst_phases=%d\n",
		r.Family, r.Mode, r.N, r.M, r.Diameter, float64(r.GraphBytes)/(1<<20), r.Parts, r.Cap, r.Quality, r.MSTEdges, r.MSTPhases)
	fmt.Fprintf(&b, "%-10s %12s %10s %10s %12s %14s %14s %12s\n",
		"stage", "wall_ms", "r_sim", "r_chg", "messages", "bytes", "maxround_B", "maxround_ms")
	for _, s := range r.Stages {
		fmt.Fprintf(&b, "%-10s %12.2f %10d %10d %12d %14d %14d %12.2f\n",
			s.Name, float64(s.WallNS)/1e6, s.Simulated, s.Charged, s.Messages, s.Bits/8, s.MaxRoundBits/8, float64(s.MaxRoundNS)/1e6)
	}
	wall, sim, chg := r.Totals()
	fmt.Fprintf(&b, "%-10s %12.2f %10d %10d\n", "total", float64(wall)/1e6, sim, chg)
	return b.String()
}

// roundMeter folds engine RoundProbes into a stage: O(1) state however many
// rounds stream through.
type roundMeter struct {
	stage *ScaleStage
	last  time.Time
}

func (m *roundMeter) probe(p congest.RoundProbe) {
	now := time.Now() //lint:allow seededrand wall-clock round timing feeds the reported MaxRoundNS metric only; no algorithmic decision depends on it
	if !m.last.IsZero() {
		if d := now.Sub(m.last).Nanoseconds(); d > m.stage.MaxRoundNS {
			m.stage.MaxRoundNS = d
		}
	}
	m.last = now
	m.stage.Messages += p.Messages
	m.stage.Bits += int64(p.Bits)
	if p.Bits > m.stage.MaxRoundBits {
		m.stage.MaxRoundBits = p.Bits
	}
}

// scaleCSR builds the family's graph CSR-direct. Families are the scale
// trio: square grid (Θ(√n) diameter), wheel (diameter 2, maximal hub
// degree), and the wheel-chain (bounded degree, diameter ≈ bags). Edges
// get uniform random weights (repo convention: UniformWeights +
// DistinctWeights, deterministic seed) — under unit weights, Borůvka's
// lowest-ID tie-break selects one connected edge set per family and
// collapses every fragment in a single phase, which would degenerate the
// decompose and cap-search stages.
func scaleCSR(family string, n int) (*graph.CSR, error) {
	var c *graph.CSR
	switch family {
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		c = gen.GridCSR(side, side)
	case "wheel":
		c = gen.WheelCSR(n)
	case "chain":
		const rim = 31
		bags := n / (rim + 1)
		if bags < 2 {
			bags = 2
		}
		c = gen.WheelChainCSR(bags, rim)
	default:
		return nil, fmt.Errorf("experiments: unknown scale family %q", family)
	}
	return gen.DistinctWeightsCSR(gen.UniformWeightsCSR(c, xrand.New(2018))), nil
}

// ScalePipeline runs the full zero-witness pipeline on one scale family:
// CSR-direct generation, leader election, distributed BFS, in-network
// Borůvka decomposition to ~√n fragments, the O(log n) doubling cap search,
// one flooding construction at the winning cap, and the shortcut Borůvka
// MST (validated against the CSR Kruskal oracle). Every stage is timed and
// its rounds booked into the ledger matching the mode; simulated stages
// additionally stream per-round traffic through the engine probe.
func ScalePipeline(family string, n int, mode ScaleMode) (*ScaleResult, error) {
	switch mode {
	case ScaleAnalytic, ScaleHybrid, ScaleSimulate:
	default:
		return nil, fmt.Errorf("experiments: unknown scale mode %q", mode)
	}
	res := &ScaleResult{Family: family, Mode: mode}
	stage := func(name string, f func(s *ScaleStage) error) error {
		s := ScaleStage{Name: name}
		start := time.Now() //lint:allow seededrand per-stage wall-clock is the harness's reported metric; no algorithmic decision depends on it
		err := f(&s)
		s.WallNS = time.Since(start).Nanoseconds() //lint:allow seededrand per-stage wall-clock is the harness's reported metric; no algorithmic decision depends on it
		res.Stages = append(res.Stages, s)
		return err
	}
	simSetup := mode != ScaleAnalytic // elect + BFS on the engine
	simDeep := mode == ScaleSimulate  // decompose / search / construct / MST on the engine

	// generate: CSR slabs, the engine-facing adjacency, and the double-sweep
	// diameter estimate every protocol's bound derives from.
	var g *graph.Graph
	var diamBound int
	if err := stage("generate", func(*ScaleStage) error {
		c, err := scaleCSR(family, n)
		if err != nil {
			return err
		}
		res.N, res.M, res.GraphBytes = c.N(), c.M(), int64(c.Bytes())
		res.Diameter = c.DiameterApprox()
		if res.Diameter < 0 {
			return fmt.Errorf("experiments: scale family %q generated a disconnected graph", family)
		}
		diamBound = 2*res.Diameter + 2
		g = c.Graph()
		return nil
	}); err != nil {
		return nil, err
	}

	// elect: minimum-ID flood. The charged form is the SelfSetup convention
	// (diamBound+2 per bootstrap flood).
	if err := stage("elect", func(s *ScaleStage) error {
		if !simSetup {
			res.Leader = 0 // the election's fixed point: the minimum vertex ID
			s.Charged = diamBound + 2
			return nil
		}
		m := roundMeter{stage: s}
		leader, stats, err := congest.LeaderElectSync(g, diamBound, congest.Options{OnRound: m.probe})
		if err != nil {
			return err
		}
		res.Leader = leader
		s.Simulated = stats.Rounds
		return nil
	}); err != nil {
		return nil, err
	}

	// bfs: the canonical lowest-port tree rooted at the leader.
	var tree *graph.Tree
	if err := stage("bfs", func(s *ScaleStage) error {
		var parent, parentEdge []int
		var err error
		if simSetup {
			m := roundMeter{stage: s}
			var stats congest.Stats
			parent, parentEdge, stats, err = congest.DistributedBFSSync(g, res.Leader, diamBound, congest.Options{OnRound: m.probe})
			s.Simulated = stats.Rounds
		} else {
			parent, parentEdge, err = congest.CanonicalBFSParents(g, res.Leader)
			s.Charged = diamBound + 2
		}
		if err != nil {
			return err
		}
		tree, err = graph.TreeFromParents(g, res.Leader, parent, parentEdge)
		return err
	}); err != nil {
		return nil, err
	}

	// decompose: Borůvka fragments down to ~√n parts — the family the cap
	// search prices shortcuts for. Fragment counts can collapse much faster
	// than the per-phase halving guarantee (unit weights merge in long
	// chains), so the phase count is chosen by probing the sequential trace:
	// the largest count that keeps at least √n fragments. The probe is the
	// environment's free sequential computation; only the chosen run is
	// priced.
	var parts *partition.Parts
	if err := stage("decompose", func(s *ScaleStage) error {
		target := 1
		for target*target < res.N {
			target++
		}
		phases := 1
		for phases < 64 {
			_, probe, err := partition.BoruvkaTrace(g, phases+1)
			if err != nil {
				return err
			}
			if probe.NumParts() < target {
				break
			}
			phases++
		}
		dec, err := congest.BoruvkaDecompose(g, tree, phases, simDeep)
		if err != nil {
			return err
		}
		parts = dec.Parts
		res.Parts = dec.Parts.NumParts()
		s.Simulated = dec.EffectiveRounds
		s.Charged = dec.ChargedRounds
		s.Messages = dec.Stats.Messages
		s.Bits = int64(dec.Stats.TotalBits)
		return nil
	}); err != nil {
		return nil, err
	}

	// search: the in-network O(log n) doubling cap search over the fragments.
	var cap int
	if err := stage("search", func(s *ScaleStage) error {
		sr, err := congest.SearchCap(g, tree, parts, congest.SearchOptions{Simulate: simDeep})
		if err != nil {
			return err
		}
		cap = sr.Cap
		res.Cap = cap
		s.Simulated = sr.EffectiveRounds
		s.Charged = sr.ChargedRounds
		s.Messages = sr.Stats.Messages
		s.Bits = int64(sr.Stats.TotalBits)
		return nil
	}); err != nil {
		return nil, err
	}

	// construct: one flooding construction at the winning cap — the
	// per-family build the MST's provider then repeats phase by phase.
	if err := stage("construct", func(s *ScaleStage) error {
		cr, err := congest.ConstructShortcut(g, tree, parts, congest.ConstructOptions{Cap: cap, Simulate: simDeep})
		if err != nil {
			return err
		}
		res.Quality = cr.S.Measure().Quality
		s.Simulated = cr.EffectiveRounds
		s.Charged = cr.ChargedRounds
		s.Messages = cr.Stats.Messages
		s.Bits = int64(cr.Stats.TotalBits)
		return nil
	}); err != nil {
		return nil, err
	}

	// mst: shortcut Borůvka over the flooding provider at the found cap,
	// validated edge-for-edge against the CSR Kruskal oracle.
	if err := stage("mst", func(s *ScaleStage) error {
		provider := mst.FloodProvider(g, tree, cap, simDeep)
		run, err := mst.ShortcutBoruvkaOpts(g, provider, mst.Options{Simulate: simDeep})
		if err != nil {
			return err
		}
		s.Simulated = run.CommRounds
		s.Charged = run.ChargedRounds
		s.Messages = run.Messages
		res.MSTPhases = run.Phases
		res.MSTWeight = run.Weight
		res.MSTEdges = len(run.EdgeIDs)
		c := graph.NewCSR(g)
		wantIDs, wantW := c.MST()
		if len(wantIDs) != len(run.EdgeIDs) || math.Abs(wantW-run.Weight) > 1e-6 {
			return fmt.Errorf("experiments: scale MST mismatch: %d edges / weight %g vs oracle %d / %g",
				len(run.EdgeIDs), run.Weight, len(wantIDs), wantW)
		}
		for i := range wantIDs {
			if run.EdgeIDs[i] != int(wantIDs[i]) {
				return fmt.Errorf("experiments: scale MST edge %d: got ID %d, oracle %d", i, run.EdgeIDs[i], wantIDs[i])
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

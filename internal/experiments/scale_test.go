package experiments

import (
	"testing"
	"time"
)

// TestScalePipelineModes runs the full pipeline on every family in every
// mode at experiment size and pins the mode-agreement invariants: the modes
// share one fixed point (same leader, parts, cap, MST — the MST oracle
// check is inside ScalePipeline), and rounds land in the matching ledger
// only.
func TestScalePipelineModes(t *testing.T) {
	for _, family := range []string{"grid", "wheel", "chain"} {
		var caps []int
		for _, mode := range []ScaleMode{ScaleAnalytic, ScaleHybrid, ScaleSimulate} {
			res, err := ScalePipeline(family, 400, mode)
			if err != nil {
				t.Fatalf("%s/%s: %v", family, mode, err)
			}
			caps = append(caps, res.Cap)
			if res.MSTEdges != res.N-1 {
				t.Errorf("%s/%s: MST has %d edges for %d nodes", family, mode, res.MSTEdges, res.N)
			}
			_, sim, chg := res.Totals()
			switch mode {
			case ScaleAnalytic:
				if sim != 0 || chg == 0 {
					t.Errorf("%s/analytic: simulated=%d charged=%d, want 0/>0", family, sim, chg)
				}
			case ScaleSimulate:
				if sim == 0 || chg != 0 {
					t.Errorf("%s/simulate: simulated=%d charged=%d, want >0/0", family, sim, chg)
				}
			case ScaleHybrid:
				if sim == 0 || chg == 0 {
					t.Errorf("%s/hybrid: simulated=%d charged=%d, want both >0", family, sim, chg)
				}
			}
		}
		if caps[0] != caps[1] || caps[1] != caps[2] {
			t.Errorf("%s: modes disagree on the winning cap: %v", family, caps)
		}
	}
}

// TestScaleSmoke100k is the CI-facing scale smoke (make scale-smoke): the
// full zero-witness pipeline at 10⁵ nodes on the grid (hybrid: Θ(√n)-
// diameter setup floods simulated message-level) and the wheel, with the
// MST oracle-checked inside the harness and a generous wall-clock ceiling
// so a quadratic regression on any stage fails loudly rather than hanging.
func TestScaleSmoke100k(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁵-node pipeline skipped in -short")
	}
	for _, family := range []string{"grid", "wheel"} {
		start := time.Now()
		res, err := ScalePipeline(family, 100_000, ScaleHybrid)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		t.Logf("\n%s", res)
		if res.MSTEdges != res.N-1 {
			t.Errorf("%s: MST has %d edges for %d nodes", family, res.MSTEdges, res.N)
		}
		if res.Stages[1].Bits == 0 || res.Stages[2].Bits == 0 {
			t.Errorf("%s: hybrid setup stages streamed no traffic: %+v", family, res.Stages[1:3])
		}
		if elapsed := time.Since(start); elapsed > 120*time.Second {
			t.Errorf("%s: pipeline took %v, budget 120s", family, elapsed)
		}
	}
}

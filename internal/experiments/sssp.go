package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
	"repro/internal/sssp"
)

// E9SSSP measures distributed (1+ε)-approximate single-source shortest
// paths — the third problem of the paper's headline trio, filling the E9
// slot — on the two adversarial families where shortest paths are
// hop-heavy while the diameter stays constant:
//
//   - wheels with expensive spokes (rim-hugging shortest paths, rim-arc
//     parts, oblivious shortcuts), and
//   - K5-minor-free clique-sum chains of wheel pieces whose hubs merge
//     into one shared apex (per-piece rim parts, the Theorem 7 witness
//     construction).
//
// r_naive is the settle-round count of plain distributed Bellman–Ford
// (grows with the rim); r_shortcut is the part-wise relaxation pipeline's
// charged rounds (phases × Õ(quality), constant-ish); stretch is the
// achieved approximation against the exact Dijkstra oracle and stays
// ≤ 1+ε by construction.
func E9SSSP(rimSizes, chainRims []int, seed int64) *Table {
	const (
		eps       = 0.1
		arcs      = 4 // rim arcs per wheel / parts per chain piece
		numPieces = 3 // pieces per clique-sum chain
	)
	t := &Table{
		ID:     "E9",
		Title:  "distributed (1+ε)-approximate SSSP rounds (ε=0.1): hop-heavy minor-free families",
		Header: []string{"family", "n", "diam", "r_naive", "r_shortcut", "speedup", "stretch", "phases", "quality"},
	}
	rows := forEachPoint(len(rimSizes)+len(chainRims), func(i int) row {
		rng := pointRNG(seed, i)
		if i < len(rimSizes) {
			rim := rimSizes[i]
			g := gen.Wheel(rim + 1).G
			hub := g.N() - 1
			spokeHeavy(g, hub, float64(10*rim), rng)
			p, err := partition.RimArcs(g, arcs)
			if err != nil {
				panic(err)
			}
			tr, err := graph.BFSTree(g, hub)
			if err != nil {
				panic(err)
			}
			s, _ := shortcut.ObliviousAuto(g, tr, p)
			return ssspRow("wheel", g, p, s, eps)
		}
		rim := chainRims[i-len(rimSizes)]
		pieces := make([]*gen.Piece, numPieces)
		for j := range pieces {
			pieces[j] = gen.WheelPiece(rim)
		}
		cs := gen.CliqueSumChain(pieces, 3, rng)
		g := cs.G
		hub := cs.BagToGlobal[0][rim] // all piece hubs merge into this apex
		spokeHeavy(g, hub, float64(10*numPieces*rim), rng)
		p, err := partition.New(g, chainRimParts(cs, rim, hub))
		if err != nil {
			panic(err)
		}
		tr, err := graph.BFSTree(g, hub)
		if err != nil {
			panic(err)
		}
		res, err := core.ExcludedMinorShortcut(g, tr, p, witness(cs))
		if err != nil {
			panic(err)
		}
		return ssspRow("k5free-chain", g, p, res.S, eps)
	})
	for _, r := range rows {
		t.AddRow(r...)
	}
	t.Notes = append(t.Notes,
		"r_naive grows with the rim (hop-heavy shortest paths at diameter 2); r_shortcut stays near phases*quality",
		"stretch <= 1+eps is guaranteed by the (1+eps) weight rounding; distances are exact on rounded weights")
	return t
}

// spokeHeavy makes every edge incident to the hub expensive and every
// other (rim) edge cheap with small jitter, so shortest paths hug the rim.
func spokeHeavy(g *graph.Graph, hub int, heavy float64, rng *rand.Rand) {
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		if e.U == hub || e.V == hub {
			g.SetWeight(id, heavy+rng.Float64())
		} else {
			g.SetWeight(id, 1+0.25*rng.Float64())
		}
	}
}

// chainRimParts returns one part per chain piece: the piece's rim vertices
// not already claimed by an earlier piece (attachment identifies a rim
// pair, which stays with the earlier part; the remainder of a rim cycle
// minus an adjacent pair is a path, hence connected).
func chainRimParts(cs *gen.CliqueSumGraph, rim, hub int) [][]int {
	claimed := make([]bool, cs.G.N())
	claimed[hub] = true
	sets := make([][]int, 0, len(cs.BagToGlobal))
	for b := range cs.BagToGlobal {
		var set []int
		for lv := 0; lv < rim; lv++ {
			if gv := cs.BagToGlobal[b][lv]; !claimed[gv] {
				claimed[gv] = true
				set = append(set, gv)
			}
		}
		sets = append(sets, set)
	}
	return sets
}

// ssspRow runs the approximate pipeline and the baselines on one instance
// and formats the table row. The source is vertex 0, a rim vertex in both
// families.
func ssspRow(family string, g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut, eps float64) row {
	const src = 0
	r, err := sssp.Approx(g, src, p, s, sssp.Options{Eps: eps})
	if err != nil {
		panic(err)
	}
	exact, err := graph.Dijkstra(g, src)
	if err != nil {
		panic(err)
	}
	// One oracle run serves both columns.
	naive := sssp.NaiveRoundsFrom(exact)
	stretch := 1.0
	for v := 0; v < g.N(); v++ {
		if v == src {
			continue
		}
		if ratio := r.Dist[v] / exact.Dist[v]; ratio > stretch {
			stretch = ratio
		}
	}
	rs := r.ChargedRounds + r.CommRounds
	return row{family, g.N(), graph.DiameterApprox(g), naive, rs,
		float64(naive) / float64(rs), stretch, r.Phases, r.Quality}
}

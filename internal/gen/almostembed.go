package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/embed"
	"repro/internal/graph"
	"repro/internal/structure"
	"repro/internal/tw"
)

// TorusColumnsDecomposition builds a path decomposition of a rows x cols
// toroidal grid of width O(rows): bag i holds columns i, i+1, and column 0
// (the standard trick for breaking the cyclic column structure). It is the
// BaseTD witness for torus-based almost-embeddable graphs.
func TorusColumnsDecomposition(t *Embedded, rows, cols int) *tw.Decomposition {
	at := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	bags := make([][]int, cols-1)
	parent := make([]int, cols-1)
	for i := 0; i+1 < cols; i++ {
		for r := 0; r < rows; r++ {
			bags[i] = append(bags[i], at(r, i), at(r, i+1))
			if i != 0 && i+1 != cols {
				bags[i] = append(bags[i], at(r, 0))
			}
		}
		parent[i] = i - 1 // -1 for i==0
	}
	d, err := tw.FromBags(t.G, bags, parent)
	if err != nil {
		panic(fmt.Sprintf("gen.TorusColumnsDecomposition: %v", err))
	}
	return d
}

// AlmostEmbedOpts configures the almost-embeddable generator.
type AlmostEmbedOpts struct {
	Base        *Embedded // embedded base graph (planar or bounded genus)
	Genus       int       // declared genus bound of the base
	NumVortices int       // ℓ
	VortexDepth int       // k
	VortexNodes int       // internal nodes per vortex
	NumApices   int       // q
	ApexDegree  int       // random neighbors per apex (0 = connect to all)

	// BaseTD optionally supplies a tree decomposition witness of the base;
	// required by the shortcut construction when the base is not planar.
	BaseTD *tw.Decomposition
}

// AlmostEmbeddableGraph builds a (q, g, k, ℓ)-almost-embeddable graph per
// Definition 5: it copies the base, attaches NumVortices vortices of depth
// at most VortexDepth to faces of the base embedding (Definition 4), and
// adds NumApices apices connected to random vertices and to each other. The
// returned structure witness passes structure.Validate.
func AlmostEmbeddableGraph(opts AlmostEmbedOpts, rng *rand.Rand) *structure.AlmostEmbeddable {
	base := opts.Base
	// Pre-size for the common apex-only case: every base vertex gains up to
	// NumApices incident apex edges on top of its base degree.
	g := graph.NewWithEdgeCapacity(base.G.N(), base.G.M()+opts.NumApices*base.G.N())
	baseVs := make([]int, base.G.N())
	baseDeg := make([]int32, base.G.N())
	for v := range baseVs {
		baseVs[v] = v
		baseDeg[v] = int32(base.G.Degree(v) + opts.NumApices)
	}
	g.ReserveAdjBatch(baseVs, baseDeg)
	for id := 0; id < base.G.M(); id++ {
		e := base.G.Edge(id)
		g.AddEdge(e.U, e.V, e.W)
	}
	a := &structure.AlmostEmbeddable{
		G:       g,
		BaseN:   base.G.N(),
		Base:    base.G,
		BaseEmb: base.Emb,
		Q:       opts.NumApices,
		Genus:   opts.Genus,
		K:       opts.VortexDepth,
		L:       opts.NumVortices,
		BaseTD:  opts.BaseTD,
	}
	// Choose vortex faces: faces whose vertex sequence is a simple cycle of
	// length >= 3, largest first so vortices have room. Skipped entirely
	// when no vortices are requested (the common apex-only scenarios).
	var candidates [][]int
	if opts.NumVortices > 0 {
		faces, _ := base.Emb.Faces()
		seen := base.G.AcquireScratch()
		for _, f := range faces {
			vs := base.Emb.FaceVertices(f)
			if len(vs) < 3 {
				continue
			}
			seen.Reset()
			simple := true
			for _, v := range vs {
				if !seen.Visit(v) {
					simple = false
					break
				}
			}
			if simple {
				candidates = append(candidates, vs)
			}
		}
		base.G.ReleaseScratch(seen)
	}
	// Sort candidates by length descending (insertion sort, few faces used).
	for i := 1; i < len(candidates); i++ {
		for j := i; j > 0 && len(candidates[j]) > len(candidates[j-1]); j-- {
			candidates[j], candidates[j-1] = candidates[j-1], candidates[j]
		}
	}
	if opts.NumVortices > len(candidates) {
		panic(fmt.Sprintf("gen.AlmostEmbeddableGraph: %d vortices requested, %d simple faces available",
			opts.NumVortices, len(candidates)))
	}
	for vi := 0; vi < opts.NumVortices; vi++ {
		boundary := candidates[vi]
		a.Vortices = append(a.Vortices, buildVortex(g, boundary, opts.VortexDepth, opts.VortexNodes, rng))
	}
	// Apices.
	for q := 0; q < opts.NumApices; q++ {
		x := g.AddVertex()
		a.Apices = append(a.Apices, x)
	}
	for _, x := range a.Apices {
		if opts.ApexDegree <= 0 {
			for v := 0; v < x; v++ {
				if !a.IsApex(v) {
					g.AddEdge(x, v, 1)
				}
			}
			continue
		}
		// Random distinct neighbors among non-apex vertices.
		picked := make(map[int]bool)
		for len(picked) < opts.ApexDegree {
			v := rng.Intn(g.N())
			if v != x && !a.IsApex(v) && !picked[v] {
				picked[v] = true
				g.AddEdge(x, v, 1)
			}
		}
	}
	// Apex-apex edges: connect consecutively so they are never isolated
	// from each other (Definition 5 allows arbitrary apex interconnection).
	for i := 1; i < len(a.Apices); i++ {
		g.AddEdge(a.Apices[i-1], a.Apices[i], 1)
	}
	return a
}

// buildVortex attaches one vortex to the given boundary cycle: numNodes
// internal nodes with evenly spread arcs whose overlap never exceeds depth.
func buildVortex(g *graph.Graph, boundary []int, depth, numNodes int, rng *rand.Rand) structure.Vortex {
	n := len(boundary)
	if numNodes < 1 {
		numNodes = 1
	}
	if numNodes > n {
		numNodes = n
	}
	stride := (n + numNodes - 1) / numNodes
	span := stride * depth
	if span >= n {
		span = n - 1
	}
	if span < 1 {
		span = 1
	}
	v := structure.Vortex{
		Boundary: append([]int(nil), boundary...),
		Depth:    depth,
	}
	starts := make([]int, numNodes)
	for i := 0; i < numNodes; i++ {
		starts[i] = (i * n) / numNodes
	}
	// Shrink span until measured coverage respects the declared depth.
	for ; span > 1; span-- {
		cover := make([]int, n)
		for _, s := range starts {
			for j := 0; j < span; j++ {
				cover[(s+j)%n]++
			}
		}
		ok := true
		for _, c := range cover {
			if c > depth {
				ok = false
				break
			}
		}
		if ok {
			break
		}
	}
	for i := 0; i < numNodes; i++ {
		in := g.AddVertex()
		v.Internal = append(v.Internal, in)
		v.Arc = append(v.Arc, [2]int{starts[i], span})
		// Connect to a random nonempty subset of the arc, always including
		// the first arc vertex so the vortex is connected to the base.
		g.AddEdge(in, boundary[starts[i]%n], 1)
		for j := 1; j < span; j++ {
			if rng.Float64() < 0.6 {
				g.AddEdge(in, boundary[(starts[i]+j)%n], 1)
			}
		}
	}
	// Edges between arc-adjacent internal nodes (Definition 4 allows them).
	for i := 1; i < numNodes; i++ {
		if arcsShareVertex(&v, i-1, i) {
			g.AddEdge(v.Internal[i-1], v.Internal[i], 1)
		}
	}
	if numNodes > 2 && arcsShareVertex(&v, numNodes-1, 0) {
		g.AddEdge(v.Internal[numNodes-1], v.Internal[0], 1)
	}
	return v
}

func arcsShareVertex(v *structure.Vortex, i, j int) bool {
	n := len(v.Boundary)
	for t := 0; t < v.Arc[i][1]; t++ {
		p := (v.Arc[i][0] + t) % n
		if v.CoversPosition(j, p) {
			return true
		}
	}
	return false
}

// PlanarWithApex is a convenience: a grid with one apex connected to every
// base vertex — the paper's canonical diameter-collapse scenario (§2.3.2).
func PlanarWithApex(rows, cols int, rng *rand.Rand) *structure.AlmostEmbeddable {
	return AlmostEmbeddableGraph(AlmostEmbedOpts{
		Base:      Grid(rows, cols),
		NumApices: 1,
	}, rng)
}

// CycleWithApex is the paper's wheel example: a cycle whose added apex
// collapses the diameter from Θ(n) to 2.
func CycleWithApex(n int, rng *rand.Rand) *structure.AlmostEmbeddable {
	g := Cycle(n)
	rot := make([][]int, n)
	for i := 0; i < n; i++ {
		// Edge i joins i and (i+1)%n; dart 2i leaves vertex i.
		prev := (i - 1 + n) % n
		var prevDart int
		if g.Edge(prev).U == i {
			prevDart = 2 * prev
		} else {
			prevDart = 2*prev + 1
		}
		rot[i] = []int{2 * i, prevDart}
	}
	emb, err := embed.New(g, rot)
	if err != nil {
		panic(fmt.Sprintf("gen.CycleWithApex: %v", err))
	}
	return AlmostEmbeddableGraph(AlmostEmbedOpts{
		Base:      &Embedded{G: g, Emb: emb},
		NumApices: 1,
	}, rng)
}

// Package gen provides graph generators for every workload in the paper's
// reproduction: basic families (paths, cycles, trees, random graphs),
// planar and bounded-genus families carrying combinatorial embeddings,
// k-trees carrying tree decompositions, almost-embeddable graphs carrying
// their vortex/apex structure, clique-sums carrying decomposition trees, and
// the Ω̃(√n) lower-bound family of [SHK+12].
//
// Every generator is deterministic given its *rand.Rand, and every generator
// that promises a structural property attaches a *witness* that tests verify
// (an embedding whose Euler genus is checked, a tree decomposition that is
// validated, and so on).
package gen

import (
	"math/rand"

	"repro/internal/graph"
)

// Path returns the path graph on n vertices with unit weights.
func Path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *graph.Graph {
	g := Path(n)
	g.AddEdge(n-1, 0, 1)
	return g
}

// Star returns the star with one center (vertex 0) and n-1 leaves.
func Star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i, 1)
	}
	return g
}

// Complete returns K_n.
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	return g
}

// RandomTree returns a uniformly random recursive tree: vertex v attaches to
// a uniform earlier vertex.
func RandomTree(n int, rng *rand.Rand) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v), 1)
	}
	return g
}

// BalancedBinaryTree returns a complete-ish binary tree on n vertices
// (vertex v has parent (v-1)/2), giving diameter Θ(log n).
func BalancedBinaryTree(n int) *graph.Graph {
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, (v-1)/2, 1)
	}
	return g
}

// ErdosRenyiConnected returns a connected G(n, m)-style random graph: a
// random spanning tree plus (m - n + 1) uniformly random extra edges
// (duplicates and self-pairs skipped, so the final edge count may be
// slightly lower than m).
func ErdosRenyiConnected(n, m int, rng *rand.Rand) *graph.Graph {
	g := RandomTree(n, rng)
	type pair struct{ a, b int }
	have := make(map[pair]bool, m)
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		have[pair{a, b}] = true
	}
	for g.M() < m {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		if have[pair{a, b}] {
			// Dense corner case: bail out when nearly complete.
			if len(have) >= n*(n-1)/2 {
				break
			}
			continue
		}
		have[pair{a, b}] = true
		g.AddEdge(a, b, 1)
	}
	return g
}

// UniformWeights assigns each edge an independent uniform weight in
// [1, 2), keeping determinism through the provided rng. It mutates g and
// returns it for chaining.
func UniformWeights(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	for id := 0; id < g.M(); id++ {
		g.SetWeight(id, 1+rng.Float64())
	}
	return g
}

// DistinctWeights perturbs each edge weight by a tiny ID-dependent amount so
// that all weights are distinct while preserving the original ordering by
// more than the perturbation. It mutates g and returns it.
func DistinctWeights(g *graph.Graph) *graph.Graph {
	for id := 0; id < g.M(); id++ {
		g.SetWeight(id, g.Edge(id).W+float64(id)*1e-9)
	}
	return g
}

package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/structure"
	"repro/internal/tw"
)

// Piece is a building block for clique-sum generation: a graph from some
// family F, a tree decomposition witness of it, and a list of cliques at
// which it may be glued. Attach cliques must be actual cliques of G so that
// the glued bags equal their own clique-completions (B⁰ = B, Definition 1
// with no deleted edges).
type Piece struct {
	G      *graph.Graph
	Decomp *tw.Decomposition
	// VertexCliques / EdgeCliques declare the implicit attach-clique
	// families — every vertex as a singleton clique, every edge as a pair —
	// without materializing them (for a piece with n vertices and m edges
	// that is n+m slices of bookkeeping). Candidate enumeration orders
	// vertices first, then edges, then the explicit extras in Cliques.
	VertexCliques bool
	EdgeCliques   bool
	Cliques       [][]int // explicit extra attach cliques (e.g. triangles)
}

// numCliquesLenLE counts attach cliques of size in [1, k].
func (p *Piece) numCliquesLenLE(k int) int {
	count := 0
	if p.VertexCliques && k >= 1 {
		count += p.G.N()
	}
	if p.EdgeCliques && k >= 2 {
		count += p.G.M()
	}
	for _, c := range p.Cliques {
		if len(c) >= 1 && len(c) <= k {
			count++
		}
	}
	return count
}

// cliqueLenLEAt materializes the idx-th attach clique of size <= k into buf.
func (p *Piece) cliqueLenLEAt(k, idx int, buf []int) []int {
	if p.VertexCliques && k >= 1 {
		if idx < p.G.N() {
			return append(buf[:0], idx)
		}
		idx -= p.G.N()
	}
	if p.EdgeCliques && k >= 2 {
		if idx < p.G.M() {
			e := p.G.Edge(idx)
			return append(buf[:0], e.U, e.V)
		}
		idx -= p.G.M()
	}
	for _, c := range p.Cliques {
		if len(c) >= 1 && len(c) <= k {
			if idx == 0 {
				return append(buf[:0], c...)
			}
			idx--
		}
	}
	panic("gen.Piece: clique index out of range")
}

// numCliquesLenEQ counts attach cliques of size exactly s.
func (p *Piece) numCliquesLenEQ(s int) int {
	count := 0
	if p.VertexCliques && s == 1 {
		count += p.G.N()
	}
	if p.EdgeCliques && s == 2 {
		count += p.G.M()
	}
	for _, c := range p.Cliques {
		if len(c) == s {
			count++
		}
	}
	return count
}

// cliqueLenEQAt materializes the idx-th attach clique of size s into buf.
func (p *Piece) cliqueLenEQAt(s, idx int, buf []int) []int {
	if p.VertexCliques && s == 1 {
		if idx < p.G.N() {
			return append(buf[:0], idx)
		}
		idx -= p.G.N()
	}
	if p.EdgeCliques && s == 2 {
		if idx < p.G.M() {
			e := p.G.Edge(idx)
			return append(buf[:0], e.U, e.V)
		}
		idx -= p.G.M()
	}
	for _, c := range p.Cliques {
		if len(c) == s {
			if idx == 0 {
				return append(buf[:0], c...)
			}
			idx--
		}
	}
	panic("gen.Piece: clique index out of range")
}

// CliqueSumGraph is a graph assembled as a k-clique-sum of pieces, carrying
// the decomposition-tree witness (Definition 8) and per-bag data for the
// shortcut construction of Theorem 7.
type CliqueSumGraph struct {
	G           *graph.Graph
	CST         *structure.CliqueSumTree
	BagGraphs   []*graph.Graph      // bag-local graphs (B⁰, cliques complete)
	BagDecomp   []*tw.Decomposition // TD witness of each bag-local graph
	BagToGlobal [][]int             // bag-local vertex -> global vertex
	K           int
}

// CliqueSumChain glues pieces in a path: piece i attaches to piece i-1, so
// the decomposition tree is a chain of depth len(pieces)-1 — the worst case
// for Lemma 1's congestion and the showcase for Theorem 7's folding
// (experiment E10).
func CliqueSumChain(pieces []*Piece, k int, rng *rand.Rand) *CliqueSumGraph {
	return cliqueSum(pieces, k, rng, true)
}

// CliqueSum glues the given pieces into one graph: piece 0 seeds the graph;
// each later piece is glued onto a uniformly random earlier bag, identifying
// one of the new piece's attach cliques with an equal-sized attach clique of
// the earlier bag. Pieces must each have at least one clique of every size
// they are expected to glue at; sizes are capped at k.
func CliqueSum(pieces []*Piece, k int, rng *rand.Rand) *CliqueSumGraph {
	return cliqueSum(pieces, k, rng, false)
}

func cliqueSum(pieces []*Piece, k int, rng *rand.Rand, chain bool) *CliqueSumGraph {
	if len(pieces) == 0 {
		panic("gen.CliqueSum: no pieces")
	}
	cs := &CliqueSumGraph{K: k}
	g := graph.New(0)
	// Upper bounds over all merges: every piece vertex/edge lands at most
	// once in the global graph.
	sumN, sumM := 0, 0
	for _, p := range pieces {
		sumN += p.G.N()
		sumM += p.G.M()
	}
	g.ReserveVertices(sumN)
	g.ReserveEdges(sumM)
	cst := &structure.CliqueSumTree{K: k}
	var bagEdges [][]int

	// addPiece merges a piece; srcVs/tgVs (parallel, at most K entries)
	// identify piece-local vertices with existing global ones.
	addPiece := func(p *Piece, srcVs, tgVs []int) []int {
		mapTo := func(v int) (int, bool) {
			for i, sv := range srcVs {
				if sv == v {
					return tgVs[i], true
				}
			}
			return 0, false
		}
		toGlobal := make([]int, p.G.N())
		// Adjacency growth for this merge: every piece edge adds at most one
		// global edge, and its endpoints' adjacency grows by the piece-local
		// degree. (Vertex and edge capacity were reserved for all pieces.)
		next := g.AddVertices(p.G.N() - len(srcVs))
		newVs := make([]int, 0, p.G.N()-len(srcVs))
		newCaps := make([]int32, 0, p.G.N()-len(srcVs))
		identified := make([]bool, p.G.N())
		for v := 0; v < p.G.N(); v++ {
			if gv, ok := mapTo(v); ok {
				toGlobal[v] = gv
				identified[v] = true
				// Identified (clique) vertices already carry arcs.
				g.ReserveAdj(gv, p.G.Degree(v))
			} else {
				toGlobal[v] = next
				next++
				newVs = append(newVs, toGlobal[v])
				newCaps = append(newCaps, int32(p.G.Degree(v)))
			}
		}
		g.ReserveAdjBatch(newVs, newCaps)
		edges := make([]int, 0, p.G.M())
		for id := 0; id < p.G.M(); id++ {
			e := p.G.Edge(id)
			gu, gv := toGlobal[e.U], toGlobal[e.V]
			// Only edges with both endpoints identified into the attach
			// clique can already exist; everything else is new, skipping
			// the FindEdge scan.
			if identified[e.U] && identified[e.V] {
				if ex := g.FindEdge(gu, gv); ex != -1 {
					edges = append(edges, ex) // shared clique edge, already present
					continue
				}
			}
			edges = append(edges, g.AddEdge(gu, gv, e.W))
		}
		verts := append([]int(nil), toGlobal...)
		sort.Ints(verts)
		cst.Bags = append(cst.Bags, structure.Bag{Vertices: verts, Edges: edges})
		cst.Adj = append(cst.Adj, nil)
		bagEdges = append(bagEdges, edges)
		cs.BagGraphs = append(cs.BagGraphs, p.G)
		cs.BagDecomp = append(cs.BagDecomp, p.Decomp)
		cs.BagToGlobal = append(cs.BagToGlobal, toGlobal)
		return toGlobal
	}

	addPiece(pieces[0], nil, nil)
	for pi := 1; pi < len(pieces); pi++ {
		p := pieces[pi]
		// Candidate attach cliques of the new piece, size <= k: counted,
		// drawn, then the chosen one materialized by index.
		srcCount := p.numCliquesLenLE(k)
		if srcCount == 0 {
			panic(fmt.Sprintf("gen.CliqueSum: piece %d has no attach clique of size <= %d", pi, k))
		}
		var srcBuf [8]int
		src := p.cliqueLenLEAt(k, rng.Intn(srcCount), srcBuf[:0])
		// Find an earlier bag with an attach clique of the same size.
		// Candidates are only counted; the chosen one is materialized by
		// index after the draw.
		targets := 0
		for bj := range cst.Bags {
			if chain && bj != pi-1 {
				continue // chain mode: attach to the previous bag only
			}
			targets += pieces[bj].numCliquesLenEQ(len(src))
		}
		if targets == 0 {
			panic(fmt.Sprintf("gen.CliqueSum: no earlier bag offers a %d-clique", len(src)))
		}
		pick := rng.Intn(targets)
		tgBag := -1
		var tgBuf [8]int
		var tgClique []int // global vertices
		for bj := range cst.Bags {
			if chain && bj != pi-1 {
				continue
			}
			c := pieces[bj].numCliquesLenEQ(len(src))
			if pick >= c {
				pick -= c
				continue
			}
			tgBag = bj
			tgClique = pieces[bj].cliqueLenEQAt(len(src), pick, tgBuf[:0])
			for i, v := range tgClique {
				tgClique[i] = cs.BagToGlobal[bj][v]
			}
			break
		}
		addPiece(p, src, tgClique)
		bi := len(cst.Bags) - 1
		cst.Adj[bi] = append(cst.Adj[bi], tgBag)
		cst.Adj[tgBag] = append(cst.Adj[tgBag], bi)
	}
	cst.G = g
	cs.G = g
	cs.CST = cst
	// The witness is valid by construction (gen's tests re-validate sampled
	// instances); skipping the O(n+m) check here keeps generation off the
	// experiment drivers' critical path.
	return cs
}

// GridPiece returns a rows x cols grid piece with a diameter-based tree
// decomposition and attach cliques: all single vertices and all edges.
func GridPiece(rows, cols int) *Piece {
	e := Grid(rows, cols)
	t, err := graph.BFSTree(e.G, 0)
	if err != nil {
		panic(fmt.Sprintf("gen.GridPiece: %v", err))
	}
	d, err := tw.FromEmbeddingByCotree(e.Emb, t)
	if err != nil {
		panic(fmt.Sprintf("gen.GridPiece: %v", err))
	}
	return &Piece{G: e.G, Decomp: d, VertexCliques: true, EdgeCliques: true}
}

// ApollonianPiece returns a random planar triangulation piece with its
// width-3 tree decomposition and attach cliques: all vertices, edges, and
// the triangles recorded during construction.
func ApollonianPiece(n int, rng *rand.Rand) *Piece {
	a := NewApollonian(n, rng)
	d := ApollonianDecomposition(a)
	p := &Piece{G: a.G, Decomp: d, VertexCliques: true, EdgeCliques: true}
	store := make([]int, 0, 3*(1+len(a.Corners)))
	store = append(store, 0, 1, 2)
	p.Cliques = make([][]int, 0, 1+len(a.Corners))
	p.Cliques = append(p.Cliques, store[0:3:3])
	for _, c := range a.Corners {
		base := len(store)
		store = append(store, c[0], c[1], c[2])
		p.Cliques = append(p.Cliques, store[base:base+3:base+3])
	}
	return p
}

// WheelPiece returns a wheel piece — a rim cycle of the given length plus
// a hub adjacent to every rim vertex (rim vertices 0..rim-1, hub = rim) —
// with its width-3 tree decomposition. Attach cliques are exactly the rim
// triangles {i, i+1, hub}, stored hub-last, so positional clique
// identification in CliqueSumChain merges the hubs of consecutive pieces
// into one shared apex: the resulting "wheel of wheels" is a 3-clique-sum
// of planar pieces (hence K5-minor-free by Wagner's theorem) whose
// diameter stays 2 while rim-hugging shortest paths grow with the total
// rim — the adversarial family of the SSSP experiment (E9).
func WheelPiece(rim int) *Piece {
	if rim < 4 {
		panic(fmt.Sprintf("gen.WheelPiece: rim %d too small", rim))
	}
	g := graph.NewWithEdgeCapacity(rim+1, 2*rim)
	hub := rim
	for i := 0; i < rim; i++ {
		g.AddEdge(i, (i+1)%rim, 1)
	}
	for i := 0; i < rim; i++ {
		g.AddEdge(i, hub, 1)
	}
	// Chain decomposition: bag i = {hub, 0, i, i+1} for i = 1..rim-2. Hub
	// and vertex 0 sit in every bag; vertex i appears in bags i-1 and i;
	// the closing rim edge {rim-1, 0} lives in the last bag.
	bags := make([][]int, rim-2)
	parent := make([]int, rim-2)
	store := make([]int, 0, 4*(rim-2))
	for i := 1; i <= rim-2; i++ {
		base := len(store)
		store = append(store, hub, 0, i, i+1)
		bags[i-1] = store[base : base+4 : base+4]
		parent[i-1] = i - 2 // -1 for the first bag
	}
	d, err := tw.FromBags(g, bags, parent)
	if err != nil {
		panic(fmt.Sprintf("gen.WheelPiece: %v", err))
	}
	p := &Piece{G: g, Decomp: d}
	triStore := make([]int, 0, 3*rim)
	p.Cliques = make([][]int, 0, rim)
	for i := 0; i < rim; i++ {
		base := len(triStore)
		triStore = append(triStore, i, (i+1)%rim, hub)
		p.Cliques = append(p.Cliques, triStore[base:base+3:base+3])
	}
	return p
}

// KTreePiece returns a random k-tree piece with its native decomposition;
// attach cliques are the recorded bags' clique parts.
func KTreePiece(n, k int, rng *rand.Rand) *Piece {
	kt := KTree(n, k, rng)
	p := &Piece{G: kt.G, Decomp: kt.Decomp, VertexCliques: true}
	for _, bag := range kt.Decomp.Bags {
		if len(bag) >= 2 {
			p.Cliques = append(p.Cliques, append([]int(nil), bag[:2]...))
		}
		if len(bag) > k {
			p.Cliques = append(p.Cliques, append([]int(nil), bag[:k]...))
		}
	}
	return p
}

// ApollonianDecomposition builds the natural width-3 tree decomposition of
// an Apollonian network: root bag {0,1,2}; each inserted vertex v gets bag
// {v} ∪ corners(v) attached under the bag of its youngest corner.
func ApollonianDecomposition(a *Apollonian) *tw.Decomposition {
	n := a.G.N()
	bags := make([][]int, 1, n-2)
	store := make([]int, 3, 3+4*len(a.Corners)) // all bags share one backing array
	store[0], store[1], store[2] = 0, 1, 2
	bags[0] = store[0:3:3]
	parent := make([]int, 1, n-2)
	parent[0] = -1
	for i, c := range a.Corners {
		v := i + 3
		base := len(store)
		store = append(store, v, c[0], c[1], c[2])
		bags = append(bags, store[base:base+4:base+4])
		y := c[0]
		if c[1] > y {
			y = c[1]
		}
		if c[2] > y {
			y = c[2]
		}
		if y < 3 {
			parent = append(parent, 0)
		} else {
			parent = append(parent, y-2) // bag index of vertex y is y-2
		}
	}
	// The bag family is valid by construction (each inserted vertex's bag is
	// {v} ∪ corners(v) under its youngest corner's bag); gen's tests
	// re-validate it, so the hot path skips the O(n+m) check.
	d, err := tw.FromBagsTrusted(a.G, bags, parent)
	if err != nil {
		panic(fmt.Sprintf("gen.ApollonianDecomposition: %v", err))
	}
	return d
}

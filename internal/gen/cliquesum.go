package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/structure"
	"repro/internal/tw"
)

// Piece is a building block for clique-sum generation: a graph from some
// family F, a tree decomposition witness of it, and a list of cliques at
// which it may be glued. Attach cliques must be actual cliques of G so that
// the glued bags equal their own clique-completions (B⁰ = B, Definition 1
// with no deleted edges).
type Piece struct {
	G       *graph.Graph
	Decomp  *tw.Decomposition
	Cliques [][]int
}

// CliqueSumGraph is a graph assembled as a k-clique-sum of pieces, carrying
// the decomposition-tree witness (Definition 8) and per-bag data for the
// shortcut construction of Theorem 7.
type CliqueSumGraph struct {
	G           *graph.Graph
	CST         *structure.CliqueSumTree
	BagGraphs   []*graph.Graph      // bag-local graphs (B⁰, cliques complete)
	BagDecomp   []*tw.Decomposition // TD witness of each bag-local graph
	BagToGlobal [][]int             // bag-local vertex -> global vertex
	K           int
}

// CliqueSumChain glues pieces in a path: piece i attaches to piece i-1, so
// the decomposition tree is a chain of depth len(pieces)-1 — the worst case
// for Lemma 1's congestion and the showcase for Theorem 7's folding
// (experiment E10).
func CliqueSumChain(pieces []*Piece, k int, rng *rand.Rand) *CliqueSumGraph {
	return cliqueSum(pieces, k, rng, true)
}

// CliqueSum glues the given pieces into one graph: piece 0 seeds the graph;
// each later piece is glued onto a uniformly random earlier bag, identifying
// one of the new piece's attach cliques with an equal-sized attach clique of
// the earlier bag. Pieces must each have at least one clique of every size
// they are expected to glue at; sizes are capped at k.
func CliqueSum(pieces []*Piece, k int, rng *rand.Rand) *CliqueSumGraph {
	return cliqueSum(pieces, k, rng, false)
}

func cliqueSum(pieces []*Piece, k int, rng *rand.Rand, chain bool) *CliqueSumGraph {
	if len(pieces) == 0 {
		panic("gen.CliqueSum: no pieces")
	}
	cs := &CliqueSumGraph{K: k}
	g := graph.New(0)
	cst := &structure.CliqueSumTree{K: k}
	var bagEdges [][]int

	addPiece := func(p *Piece, mapTo map[int]int) []int {
		// mapTo: piece-local -> global for identified vertices.
		toGlobal := make([]int, p.G.N())
		for v := 0; v < p.G.N(); v++ {
			if gv, ok := mapTo[v]; ok {
				toGlobal[v] = gv
			} else {
				toGlobal[v] = g.AddVertex()
			}
		}
		var edges []int
		for id := 0; id < p.G.M(); id++ {
			e := p.G.Edge(id)
			gu, gv := toGlobal[e.U], toGlobal[e.V]
			if ex := g.FindEdge(gu, gv); ex != -1 {
				edges = append(edges, ex) // shared clique edge, already present
			} else {
				edges = append(edges, g.AddEdge(gu, gv, e.W))
			}
		}
		verts := append([]int(nil), toGlobal...)
		sort.Ints(verts)
		cst.Bags = append(cst.Bags, structure.Bag{Vertices: verts, Edges: edges})
		cst.Adj = append(cst.Adj, nil)
		bagEdges = append(bagEdges, edges)
		cs.BagGraphs = append(cs.BagGraphs, p.G)
		cs.BagDecomp = append(cs.BagDecomp, p.Decomp)
		cs.BagToGlobal = append(cs.BagToGlobal, toGlobal)
		return toGlobal
	}

	addPiece(pieces[0], map[int]int{})
	for pi := 1; pi < len(pieces); pi++ {
		p := pieces[pi]
		// Candidate attach cliques of the new piece, size <= k.
		var srcCliques [][]int
		for _, c := range p.Cliques {
			if len(c) <= k && len(c) >= 1 {
				srcCliques = append(srcCliques, c)
			}
		}
		if len(srcCliques) == 0 {
			panic(fmt.Sprintf("gen.CliqueSum: piece %d has no attach clique of size <= %d", pi, k))
		}
		src := srcCliques[rng.Intn(len(srcCliques))]
		// Find an earlier bag with an attach clique of the same size.
		type target struct {
			bag    int
			clique []int // global vertices
		}
		var targets []target
		for bj := range cst.Bags {
			if chain && bj != pi-1 {
				continue // chain mode: attach to the previous bag only
			}
			pj := pieces[bj]
			for _, c := range pj.Cliques {
				if len(c) == len(src) {
					gc := make([]int, len(c))
					for i, v := range c {
						gc[i] = cs.BagToGlobal[bj][v]
					}
					targets = append(targets, target{bag: bj, clique: gc})
				}
			}
		}
		if len(targets) == 0 {
			panic(fmt.Sprintf("gen.CliqueSum: no earlier bag offers a %d-clique", len(src)))
		}
		tg := targets[rng.Intn(len(targets))]
		mapTo := make(map[int]int, len(src))
		for i, v := range src {
			mapTo[v] = tg.clique[i]
		}
		addPiece(p, mapTo)
		bi := len(cst.Bags) - 1
		cst.Adj[bi] = append(cst.Adj[bi], tg.bag)
		cst.Adj[tg.bag] = append(cst.Adj[tg.bag], bi)
	}
	cst.G = g
	cs.G = g
	cs.CST = cst
	if err := cst.Validate(); err != nil {
		panic(fmt.Sprintf("gen.CliqueSum: invalid witness: %v", err))
	}
	return cs
}

// GridPiece returns a rows x cols grid piece with a diameter-based tree
// decomposition and attach cliques: all single vertices and all edges.
func GridPiece(rows, cols int) *Piece {
	e := Grid(rows, cols)
	t, err := graph.BFSTree(e.G, 0)
	if err != nil {
		panic(fmt.Sprintf("gen.GridPiece: %v", err))
	}
	d, err := tw.FromEmbeddingByCotree(e.Emb, t)
	if err != nil {
		panic(fmt.Sprintf("gen.GridPiece: %v", err))
	}
	p := &Piece{G: e.G, Decomp: d}
	for v := 0; v < e.G.N(); v++ {
		p.Cliques = append(p.Cliques, []int{v})
	}
	for id := 0; id < e.G.M(); id++ {
		ed := e.G.Edge(id)
		p.Cliques = append(p.Cliques, []int{ed.U, ed.V})
	}
	return p
}

// ApollonianPiece returns a random planar triangulation piece with its
// width-3 tree decomposition and attach cliques: all vertices, edges, and
// the triangles recorded during construction.
func ApollonianPiece(n int, rng *rand.Rand) *Piece {
	a := NewApollonian(n, rng)
	d := ApollonianDecomposition(a)
	p := &Piece{G: a.G, Decomp: d}
	for v := 0; v < a.G.N(); v++ {
		p.Cliques = append(p.Cliques, []int{v})
	}
	for id := 0; id < a.G.M(); id++ {
		ed := a.G.Edge(id)
		p.Cliques = append(p.Cliques, []int{ed.U, ed.V})
	}
	p.Cliques = append(p.Cliques, []int{0, 1, 2})
	for _, c := range a.Corners {
		p.Cliques = append(p.Cliques, []int{c[0], c[1], c[2]})
	}
	return p
}

// KTreePiece returns a random k-tree piece with its native decomposition;
// attach cliques are the recorded bags' clique parts.
func KTreePiece(n, k int, rng *rand.Rand) *Piece {
	kt := KTree(n, k, rng)
	p := &Piece{G: kt.G, Decomp: kt.Decomp}
	for v := 0; v < kt.G.N(); v++ {
		p.Cliques = append(p.Cliques, []int{v})
	}
	for _, bag := range kt.Decomp.Bags {
		if len(bag) >= 2 {
			p.Cliques = append(p.Cliques, append([]int(nil), bag[:2]...))
		}
		if len(bag) > k {
			p.Cliques = append(p.Cliques, append([]int(nil), bag[:k]...))
		}
	}
	return p
}

// ApollonianDecomposition builds the natural width-3 tree decomposition of
// an Apollonian network: root bag {0,1,2}; each inserted vertex v gets bag
// {v} ∪ corners(v) attached under the bag of its youngest corner.
func ApollonianDecomposition(a *Apollonian) *tw.Decomposition {
	n := a.G.N()
	bags := make([][]int, 1, n-2)
	bags[0] = []int{0, 1, 2}
	parent := make([]int, 1, n-2)
	parent[0] = -1
	for i, c := range a.Corners {
		v := i + 3
		bags = append(bags, []int{v, c[0], c[1], c[2]})
		y := c[0]
		if c[1] > y {
			y = c[1]
		}
		if c[2] > y {
			y = c[2]
		}
		if y < 3 {
			parent = append(parent, 0)
		} else {
			parent = append(parent, y-2) // bag index of vertex y is y-2
		}
	}
	d, err := tw.FromBags(a.G, bags, parent)
	if err != nil {
		panic(fmt.Sprintf("gen.ApollonianDecomposition: %v", err))
	}
	return d
}

package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// CSR-direct generators: the million-node families emit graph.CSR without
// ever materializing [][]Arc adjacency or per-vertex slices. Each
// generator writes the edge slabs (U/V/W — part of the CSR itself) in the
// same edge-ID order as its Graph-building counterpart, then csrFromEdges
// assembles the arc slabs with one counting pass — O(n) auxiliary memory
// total, O(1) per vertex, regardless of m.

// csrFromEdges builds the offset and arc slabs over edge arrays already
// in their final CSR position. Arcs come out in ascending edge-ID order
// per vertex — the AddEdge port order — because edges are scanned in ID
// order.
//
//congest:pure
func csrFromEdges(n int, u, v []int32, w []float64) *graph.CSR {
	c := &graph.CSR{
		Off: make([]int32, n+1),
		Dst: make([]int32, 2*len(u)),
		AID: make([]int32, 2*len(u)),
		U:   u,
		V:   v,
		W:   w,
	}
	deg := make([]int32, n)
	for id := range u {
		deg[u[id]]++
		deg[v[id]]++
	}
	pos := int32(0)
	for i, d := range deg {
		c.Off[i] = pos
		pos += d
	}
	c.Off[n] = pos
	cursor := deg // reuse: cursor[v] counts arcs already placed at v
	for i := range cursor {
		cursor[i] = 0
	}
	for id := range u {
		a, b := u[id], v[id]
		pa := c.Off[a] + cursor[a]
		cursor[a]++
		c.Dst[pa], c.AID[pa] = b, int32(id)
		pb := c.Off[b] + cursor[b]
		cursor[b]++
		c.Dst[pb], c.AID[pb] = a, int32(id)
	}
	return c
}

// GridCSR emits the rows x cols grid directly in CSR form, byte-identical
// to graph.NewCSR(Grid(rows, cols).G): vertex (r,c) is r*cols+c, edges in
// row-major right-then-down order, unit weights.
//
//congest:pure
func GridCSR(rows, cols int) *graph.CSR {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("gen.GridCSR: bad dimensions %dx%d", rows, cols))
	}
	n := rows * cols
	m := rows*(cols-1) + (rows-1)*cols
	u := make([]int32, 0, m)
	v := make([]int32, 0, m)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			at := int32(r*cols + c)
			if c+1 < cols {
				u = append(u, at)
				v = append(v, at+1)
			}
			if r+1 < rows {
				u = append(u, at)
				v = append(v, at+int32(cols))
			}
		}
	}
	return csrFromEdges(n, u, v, unitWeights(m))
}

// WheelCSR emits the wheel graph directly in CSR form, byte-identical to
// graph.NewCSR(Wheel(n).G): rim edges 0..n-2 then spokes from the hub
// (vertex n-1), unit weights.
//
//congest:pure
func WheelCSR(n int) *graph.CSR {
	if n < 4 {
		panic("gen.WheelCSR: need n >= 4")
	}
	rim := n - 1
	hub := int32(n - 1)
	u := make([]int32, 0, 2*rim)
	v := make([]int32, 0, 2*rim)
	for i := 0; i < rim; i++ {
		u = append(u, int32(i))
		v = append(v, int32((i+1)%rim))
	}
	for i := 0; i < rim; i++ {
		u = append(u, hub)
		v = append(v, int32(i))
	}
	return csrFromEdges(n, u, v, unitWeights(2*rim))
}

// KTreeCSR emits a random k-tree directly in CSR form, drawing from rng
// exactly as KTree does: the same seed yields the byte-identical graph
// (same vertex and edge IDs). The attachment cliques live in one flat
// stride-k slab instead of per-clique slices.
//
//congest:pure
func KTreeCSR(n, k int, rng *rand.Rand) *graph.CSR {
	if n < k+1 {
		panic(fmt.Sprintf("gen.KTreeCSR: need n >= k+1, got n=%d k=%d", n, k))
	}
	m := k*(k-1)/2 + (n-k)*k
	u := make([]int32, 0, m)
	v := make([]int32, 0, m)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			u = append(u, int32(i))
			v = append(v, int32(j))
		}
	}
	// cl holds every attachment clique back to back; clique c is
	// cl[c*k:(c+1)*k] in the same member order KTree keeps.
	numCliques := 1 + (n-k)*k
	cl := make([]int32, k, numCliques*k)
	for i := 0; i < k; i++ {
		cl[i] = int32(i)
	}
	for w := k; w < n; w++ {
		ci := rng.Intn(len(cl) / k)
		base := ci * k
		for _, x := range cl[base : base+k] {
			u = append(u, int32(w))
			v = append(v, x)
		}
		for drop := 0; drop < k; drop++ {
			cl = append(cl, int32(w))
			for i := 0; i < k; i++ {
				if i != drop {
					cl = append(cl, cl[base+i])
				}
			}
		}
	}
	return csrFromEdges(n, u, v, unitWeights(m))
}

// WheelChainCSR emits a chain of `bags` wheels (each with `rim` rim
// vertices plus a hub) whose consecutive hubs are joined by bridge edges:
// a K5-minor-free, hop-heavy family (diameter Θ(bags)) for the scale
// pipeline, mirroring the E9/E13 clique-sum chains. Bag b occupies
// vertices b*(rim+1)..(b+1)*(rim+1)-1 with its hub last; per bag the edge
// order is rim, spokes, then the bridge back to the previous hub.
//
//congest:pure
func WheelChainCSR(bags, rim int) *graph.CSR {
	if bags < 1 || rim < 3 {
		panic(fmt.Sprintf("gen.WheelChainCSR: need bags >= 1, rim >= 3, got %d/%d", bags, rim))
	}
	stride := rim + 1
	n := bags * stride
	m := bags*2*rim + bags - 1
	u := make([]int32, 0, m)
	v := make([]int32, 0, m)
	for b := 0; b < bags; b++ {
		base := int32(b * stride)
		hub := base + int32(rim)
		for i := 0; i < rim; i++ {
			u = append(u, base+int32(i))
			v = append(v, base+int32((i+1)%rim))
		}
		for i := 0; i < rim; i++ {
			u = append(u, hub)
			v = append(v, base+int32(i))
		}
		if b > 0 {
			u = append(u, hub-int32(stride))
			v = append(v, hub)
		}
	}
	return csrFromEdges(n, u, v, unitWeights(m))
}

func unitWeights(m int) []float64 {
	w := make([]float64, m)
	for i := range w {
		w[i] = 1
	}
	return w
}

// UniformWeightsCSR assigns each edge an independent uniform weight in
// [1, 2), exactly as UniformWeights does on a Graph: weights are drawn in
// edge-ID order, so the same rng seed yields the same weights on either
// representation. It mutates c and returns it for chaining.
func UniformWeightsCSR(c *graph.CSR, rng *rand.Rand) *graph.CSR {
	for id := range c.W {
		c.W[id] = 1 + rng.Float64()
	}
	return c
}

// DistinctWeightsCSR perturbs unit-ish weights the same way
// DistinctWeights does on a Graph: w[id] += id * 1e-9, keeping the
// canonical MST unique under plain weight comparison as well as under
// EdgeLess tie-breaking.
func DistinctWeightsCSR(c *graph.CSR) *graph.CSR {
	for id := range c.W {
		c.W[id] += float64(id) * 1e-9
	}
	return c
}

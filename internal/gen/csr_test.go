package gen_test

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// TestCSRGeneratorsMatchGraphBuilders checks every CSR-direct family
// against its Graph-building counterpart: the emitted CSR must be
// byte-identical to snapshotting the Graph (same edge IDs, port order,
// weights), across the E14 pipeline families.
func TestCSRGeneratorsMatchGraphBuilders(t *testing.T) {
	cases := []struct {
		name string
		csr  *graph.CSR
		g    *graph.Graph
	}{
		{"grid6x6", gen.GridCSR(6, 6), gen.Grid(6, 6).G},
		{"grid1x9", gen.GridCSR(1, 9), gen.Grid(1, 9).G},
		{"wheel33", gen.WheelCSR(33), gen.Wheel(33).G},
		{"ktree-k2", gen.KTreeCSR(40, 2, xrand.New(5)), gen.KTree(40, 2, xrand.New(5)).G},
		{"ktree-k4", gen.KTreeCSR(60, 4, xrand.New(17)), gen.KTree(60, 4, xrand.New(17)).G},
	}
	for _, tc := range cases {
		if err := tc.csr.Validate(); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want := graph.NewCSR(tc.g)
		if !reflect.DeepEqual(tc.csr, want) {
			t.Errorf("%s: CSR-direct emission differs from Graph snapshot", tc.name)
		}
	}
}

// TestUniformWeightsCSRMatchesGraph checks the weight pipeline used by the
// scale harness: UniformWeightsCSR + DistinctWeightsCSR must produce the
// same weights, in the same edge-ID order, as the Graph-side
// UniformWeights + DistinctWeights under the same seed.
func TestUniformWeightsCSRMatchesGraph(t *testing.T) {
	c := gen.DistinctWeightsCSR(gen.UniformWeightsCSR(gen.GridCSR(7, 7), xrand.New(42)))
	g := gen.DistinctWeights(gen.UniformWeights(gen.Grid(7, 7).G, xrand.New(42)))
	for id := 0; id < g.M(); id++ {
		if got, want := c.W[id], g.Edge(id).W; got != want {
			t.Fatalf("edge %d: CSR weight %v, Graph weight %v", id, got, want)
		}
	}
}

// TestWheelChainCSR checks the chain family's shape and internal
// consistency (it has no Graph-building counterpart; the Graph view is
// the materialization itself).
func TestWheelChainCSR(t *testing.T) {
	c := gen.WheelChainCSR(5, 8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.N() != 5*9 || c.M() != 5*16+4 {
		t.Fatalf("chain size %d/%d, want 45/84", c.N(), c.M())
	}
	if !c.IsConnected() {
		t.Fatal("chain disconnected")
	}
	if err := c.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	// Diameter grows with the chain: rim-to-rim across the hub bridges is
	// bags+1 hops.
	if d := c.DiameterApprox(); d < 5 {
		t.Fatalf("chain DiameterApprox %d, want hop-heavy (>= bags)", d)
	}
}

// TestCSROraclesMatchGraphOracles runs BFS and MST on both
// representations of each family and requires byte-identical answers —
// the satellite equivalence contract that lets the scale pipeline
// validate its distributed MST against the CSR-side Kruskal.
func TestCSROraclesMatchGraphOracles(t *testing.T) {
	cases := []struct {
		name string
		csr  *graph.CSR
	}{
		{"grid8x8", gen.DistinctWeightsCSR(gen.GridCSR(8, 8))},
		{"wheel41", gen.DistinctWeightsCSR(gen.WheelCSR(41))},
		{"ktree", gen.DistinctWeightsCSR(gen.KTreeCSR(50, 3, xrand.New(9)))},
		{"chain", gen.DistinctWeightsCSR(gen.WheelChainCSR(4, 12))},
	}
	for _, tc := range cases {
		g := tc.csr.Graph()
		b := graph.BFS(g, 0)
		cb := tc.csr.BFS(0)
		for v := 0; v < g.N(); v++ {
			if b.Dist[v] != int(cb.Dist[v]) || b.Parent[v] != int(cb.Parent[v]) || b.ParentEdge[v] != int(cb.ParentEdge[v]) {
				t.Fatalf("%s: BFS diverges at vertex %d", tc.name, v)
			}
		}
		wantIDs, wantW := graph.Kruskal(g)
		gotIDs, gotW := tc.csr.MST()
		if gotW != wantW || len(gotIDs) != len(wantIDs) {
			t.Fatalf("%s: MST weight %v (%d edges), want %v (%d edges)", tc.name, gotW, len(gotIDs), wantW, len(wantIDs))
		}
		for i := range wantIDs {
			if int(gotIDs[i]) != wantIDs[i] {
				t.Fatalf("%s: MST edge %d: ID %d, want %d", tc.name, i, gotIDs[i], wantIDs[i])
			}
		}
	}
}

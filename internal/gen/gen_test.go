package gen_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestBasicShapes(t *testing.T) {
	tests := []struct {
		name       string
		g          *graph.Graph
		n, m, diam int
	}{
		{"path", gen.Path(7), 7, 6, 6},
		{"cycle", gen.Cycle(8), 8, 8, 4},
		{"star", gen.Star(9), 9, 8, 2},
		{"complete", gen.Complete(5), 5, 10, 1},
		{"binary", gen.BalancedBinaryTree(15), 15, 14, 6},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.n || tc.g.M() != tc.m {
				t.Fatalf("n,m = %d,%d want %d,%d", tc.g.N(), tc.g.M(), tc.n, tc.m)
			}
			if d := graph.Diameter(tc.g); d != tc.diam {
				t.Fatalf("diameter %d want %d", d, tc.diam)
			}
			if err := tc.g.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRandomTreeIsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		g := gen.RandomTree(n, rng)
		if g.M() != n-1 || !graph.IsConnected(g) || !graph.IsForest(g) {
			t.Fatalf("n=%d: not a tree (m=%d)", n, g.M())
		}
	}
}

func TestErdosRenyiConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(nRaw, mRaw uint8) bool {
		n := 2 + int(nRaw)%100
		m := n - 1 + int(mRaw)%100
		g := gen.ErdosRenyiConnected(n, m, rng)
		return graph.IsConnected(g) && g.M() >= n-1 && g.M() <= m && g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyiDenseCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Ask for more edges than the complete graph has: must terminate.
	g := gen.ErdosRenyiConnected(6, 100, rng)
	if g.M() > 15 {
		t.Fatalf("m=%d exceeds complete graph", g.M())
	}
}

func TestWeightHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := gen.UniformWeights(gen.Cycle(10), rng)
	for id := 0; id < g.M(); id++ {
		w := g.Edge(id).W
		if w < 1 || w >= 2 {
			t.Fatalf("weight %v outside [1,2)", w)
		}
	}
	gen.DistinctWeights(g)
	seen := map[float64]bool{}
	for id := 0; id < g.M(); id++ {
		w := g.Edge(id).W
		if seen[w] {
			t.Fatalf("duplicate weight %v", w)
		}
		seen[w] = true
	}
}

func TestGridDiameterFormula(t *testing.T) {
	for _, tc := range [][3]int{{2, 3, 3}, {5, 5, 8}, {1, 9, 8}} {
		e := gen.Grid(tc[0], tc[1])
		if d := graph.Diameter(e.G); d != tc[2] {
			t.Fatalf("%dx%d diameter %d want %d", tc[0], tc[1], d, tc[2])
		}
	}
}

func TestTorusRegularity(t *testing.T) {
	e := gen.Torus(4, 5)
	for v := 0; v < e.G.N(); v++ {
		if e.G.Degree(v) != 4 {
			t.Fatalf("torus vertex %d degree %d", v, e.G.Degree(v))
		}
	}
	if e.G.M() != 2*e.G.N() {
		t.Fatalf("torus m=%d want %d", e.G.M(), 2*e.G.N())
	}
}

func TestKTreeEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{1, 2, 4} {
		n := 30
		kt := gen.KTree(n, k, rng)
		// k-tree edges: k(k-1)/2 seed + k per added vertex (n-k of them).
		want := k*(k-1)/2 + k*(n-k)
		if kt.G.M() != want {
			t.Fatalf("k=%d: m=%d want %d", k, kt.G.M(), want)
		}
		if kt.Decomp.Width() != k {
			t.Fatalf("width %d", kt.Decomp.Width())
		}
	}
}

func TestApollonianCornersRecorded(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := gen.NewApollonian(30, rng)
	if len(a.Corners) != 27 {
		t.Fatalf("corners %d want 27", len(a.Corners))
	}
	for i, c := range a.Corners {
		v := i + 3
		for _, u := range c {
			if !a.G.HasEdge(v, u) {
				t.Fatalf("vertex %d not adjacent to recorded corner %d", v, u)
			}
		}
	}
}

func TestCliqueSumChainDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pieces := make([]*gen.Piece, 10)
	for i := range pieces {
		pieces[i] = gen.GridPiece(3, 3)
	}
	cs := gen.CliqueSumChain(pieces, 2, rng)
	if err := cs.CST.Validate(); err != nil {
		t.Fatal(err)
	}
	// Chain: bag i adjacent to i-1 and i+1 only.
	for bi, ns := range cs.CST.Adj {
		wantDeg := 2
		if bi == 0 || bi == len(cs.CST.Bags)-1 {
			wantDeg = 1
		}
		if len(ns) != wantDeg {
			t.Fatalf("bag %d degree %d want %d", bi, len(ns), wantDeg)
		}
	}
}

func TestLowerBoundSizes(t *testing.T) {
	lb := gen.LowerBound(5, 8)
	// 5*8 path vertices + 8 leaves + internal tree nodes.
	if lb.G.N() < 48 {
		t.Fatalf("n=%d too small", lb.G.N())
	}
	if len(lb.Paths) != 5 {
		t.Fatalf("paths %d", len(lb.Paths))
	}
	for _, p := range lb.Paths {
		if len(p) != 8 {
			t.Fatalf("path length %d", len(p))
		}
	}
	if lb.Root < 0 || lb.Root >= lb.G.N() {
		t.Fatalf("root %d", lb.Root)
	}
}

func TestAlmostEmbeddableApexDegreeOption(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
		Base:       gen.Grid(5, 5),
		NumApices:  1,
		ApexDegree: 3,
	}, rng)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := a.G.Degree(a.Apices[0]); d != 3 {
		t.Fatalf("apex degree %d want 3", d)
	}
	full := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
		Base:       gen.Grid(5, 5),
		NumApices:  1,
		ApexDegree: 0,
	}, rng)
	if d := full.G.Degree(full.Apices[0]); d != 25 {
		t.Fatalf("apex degree %d want 25", d)
	}
}

func TestVortexDepthRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, depth := range []int{1, 2, 3} {
		a := gen.AlmostEmbeddableGraph(gen.AlmostEmbedOpts{
			Base:        gen.Grid(6, 6),
			NumVortices: 1,
			VortexDepth: depth,
			VortexNodes: 5,
		}, rng)
		if err := a.Validate(); err != nil {
			t.Fatalf("depth=%d: %v", depth, err)
		}
	}
}

func TestGenusChainVertexCount(t *testing.T) {
	e := gen.GenusChain(3, 3, 3)
	// Three 9-vertex tori glued at 2 shared vertices.
	if e.G.N() != 27-2 {
		t.Fatalf("n=%d want 25", e.G.N())
	}
}

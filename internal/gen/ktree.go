package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/tw"
)

// KTreeGraph is a k-tree (or partial k-tree) together with its natural
// width-k tree decomposition witness.
type KTreeGraph struct {
	G      *graph.Graph
	Decomp *tw.Decomposition
	K      int
}

// KTree generates a random k-tree on n vertices: start from K_{k+1}, then
// each new vertex attaches to a uniformly random existing k-clique. The
// natural tree decomposition (one bag per vertex from k onward) has width
// exactly k.
func KTree(n, k int, rng *rand.Rand) *KTreeGraph {
	if n < k+1 {
		panic(fmt.Sprintf("gen.KTree: need n >= k+1, got n=%d k=%d", n, k))
	}
	g := graph.New(n)
	// Seed: K_{k+1} over vertices 0..k, built as vertex k attaching to the
	// clique {0..k-1}.
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	cliques := [][]int{seq(0, k)} // k-cliques available for attachment
	attach := make([][]int, 0, n-k)
	for v := k; v < n; v++ {
		c := cliques[rng.Intn(len(cliques))]
		for _, u := range c {
			g.AddEdge(v, u, 1)
		}
		attach = append(attach, c)
		for drop := range c {
			nc := make([]int, 0, k)
			nc = append(nc, v)
			for i, u := range c {
				if i != drop {
					nc = append(nc, u)
				}
			}
			cliques = append(cliques, nc)
		}
	}
	// Bags: bag index v-k for vertex v in k..n-1. Bag = {v} ∪ attach set.
	// Parent: bag of the youngest attach vertex (clamped to the root bag).
	bags := make([][]int, n-k)
	parent := make([]int, n-k)
	for v := k; v < n; v++ {
		bi := v - k
		bags[bi] = append([]int{v}, attach[bi]...)
		y := k
		for _, u := range attach[bi] {
			if u > y {
				y = u
			}
		}
		if v == k {
			parent[bi] = -1
		} else {
			parent[bi] = y - k
		}
	}
	d, err := tw.FromBags(g, bags, parent)
	if err != nil {
		panic(fmt.Sprintf("gen.KTree: internal decomposition error: %v", err))
	}
	return &KTreeGraph{G: g, Decomp: d, K: k}
}

// PartialKTree generates a k-tree and then removes each non-seed edge with
// the given probability, keeping the graph connected (removals that would
// disconnect are skipped). The decomposition witness remains valid (bags are
// computed for the full k-tree; deleting edges never invalidates a tree
// decomposition) but is rebuilt over the thinned graph.
func PartialKTree(n, k int, dropProb float64, rng *rand.Rand) *KTreeGraph {
	full := KTree(n, k, rng)
	g := graph.New(n)
	keptBagEdge := make([]bool, full.G.M())
	// Decide drops; then verify connectivity, restoring edges if needed.
	for id := 0; id < full.G.M(); id++ {
		keptBagEdge[id] = rng.Float64() >= dropProb
	}
	// Always keep a spanning structure: run union-find over kept edges and
	// restore dropped edges that would disconnect.
	uf := graph.NewUnionFind(n)
	for id := 0; id < full.G.M(); id++ {
		if keptBagEdge[id] {
			e := full.G.Edge(id)
			uf.Union(e.U, e.V)
		}
	}
	for id := 0; id < full.G.M(); id++ {
		if !keptBagEdge[id] {
			e := full.G.Edge(id)
			if uf.Union(e.U, e.V) {
				keptBagEdge[id] = true // restoring keeps connectivity
			}
		}
	}
	for id := 0; id < full.G.M(); id++ {
		if keptBagEdge[id] {
			e := full.G.Edge(id)
			g.AddEdge(e.U, e.V, e.W)
		}
	}
	d := &tw.Decomposition{G: g, Bags: full.Decomp.Bags, Adj: full.Decomp.Adj}
	if err := d.Validate(); err != nil {
		panic(fmt.Sprintf("gen.PartialKTree: internal decomposition error: %v", err))
	}
	return &KTreeGraph{G: g, Decomp: d, K: k}
}

func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

package gen

import "repro/internal/graph"

// LowerBoundGraph is the classical hard instance for distributed
// optimization from [SHK+12] (and [Elk06]): p long disjoint paths plus a
// shallow balanced tree ("highway") touching every column. Its diameter is
// O(log ℓ), yet any tree-restricted shortcut for the p paths as parts must
// either congest the tree heavily or leave parts in many blocks, forcing
// quality Ω(min(p, ℓ)) ≈ Ω(√n). The graph contains large clique minors, so
// it is *not* in any fixed excluded-minor family — it is the contrast
// workload for experiment E8.
type LowerBoundGraph struct {
	G     *graph.Graph
	Paths [][]int // the p paths: the natural adversarial parts
	Root  int     // root of the highway tree
}

// LowerBound builds the instance with p paths of length ell (p*ell path
// vertices plus ~2*ell tree vertices).
func LowerBound(p, ell int) *LowerBoundGraph {
	if p < 1 || ell < 2 {
		panic("gen.LowerBound: need p >= 1, ell >= 2")
	}
	g := graph.New(p * ell)
	lb := &LowerBoundGraph{G: g}
	at := func(i, j int) int { return i*ell + j }
	for i := 0; i < p; i++ {
		path := make([]int, ell)
		for j := 0; j < ell; j++ {
			path[j] = at(i, j)
			if j > 0 {
				g.AddEdge(at(i, j-1), at(i, j), 1)
			}
		}
		lb.Paths = append(lb.Paths, path)
	}
	// Balanced binary tree over the ell columns: leaves[j] connects to
	// column j of every path.
	leaves := make([]int, ell)
	for j := range leaves {
		leaves[j] = g.AddVertex()
		for i := 0; i < p; i++ {
			g.AddEdge(leaves[j], at(i, j), 1)
		}
	}
	level := leaves
	for len(level) > 1 {
		var next []int
		for i := 0; i < len(level); i += 2 {
			parent := g.AddVertex()
			g.AddEdge(parent, level[i], 1)
			if i+1 < len(level) {
				g.AddEdge(parent, level[i+1], 1)
			}
			next = append(next, parent)
		}
		level = next
	}
	lb.Root = level[0]
	return lb
}

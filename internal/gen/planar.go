package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/embed"
	"repro/internal/graph"
)

// Embedded couples a graph with a combinatorial embedding witness.
type Embedded struct {
	G   *graph.Graph
	Emb *embed.Embedding
}

// Grid returns the rows x cols grid with an explicit planar embedding
// (genus 0). Vertex (r,c) is r*cols + c. Diameter is rows+cols-2.
func Grid(rows, cols int) *Embedded {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("gen.Grid: bad dimensions %dx%d", rows, cols))
	}
	g := graph.New(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	right := make([]int, rows*cols) // edge ID of edge to (r, c+1), else -1
	down := make([]int, rows*cols)
	for i := range right {
		right[i] = -1
		down[i] = -1
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				right[at(r, c)] = g.AddEdge(at(r, c), at(r, c+1), 1)
			}
			if r+1 < rows {
				down[at(r, c)] = g.AddEdge(at(r, c), at(r+1, c), 1)
			}
		}
	}
	// Counterclockwise rotation (rows grow downward): right, up, left, down.
	dart := func(id, tail int) int {
		if g.Edge(id).U == tail {
			return 2 * id
		}
		return 2*id + 1
	}
	rot := make([][]int, g.N())
	rotStore := make([]int, 0, 2*g.M()) // all rotations share one backing array
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := at(r, c)
			base := len(rotStore)
			if id := right[v]; id != -1 {
				rotStore = append(rotStore, dart(id, v))
			}
			if r > 0 {
				rotStore = append(rotStore, dart(down[at(r-1, c)], v))
			}
			if c > 0 {
				rotStore = append(rotStore, dart(right[at(r, c-1)], v))
			}
			if id := down[v]; id != -1 {
				rotStore = append(rotStore, dart(id, v))
			}
			rot[v] = rotStore[base:len(rotStore):len(rotStore)]
		}
	}
	return &Embedded{G: g, Emb: embed.NewTrusted(g, rot)}
}

// Torus returns the rows x cols toroidal grid (all rows and columns wrap)
// with its standard flat embedding of genus 1. Requires rows, cols >= 3 so
// the graph stays simple.
func Torus(rows, cols int) *Embedded {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("gen.Torus: need at least 3x3, got %dx%d", rows, cols))
	}
	g := graph.New(rows * cols)
	at := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	right := make([]int, rows*cols)
	down := make([]int, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			right[at(r, c)] = g.AddEdge(at(r, c), at(r, c+1), 1)
			down[at(r, c)] = g.AddEdge(at(r, c), at(r+1, c), 1)
		}
	}
	dart := func(id, tail int) int {
		if g.Edge(id).U == tail {
			return 2 * id
		}
		return 2*id + 1
	}
	rot := make([][]int, g.N())
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := at(r, c)
			rot[v] = []int{
				dart(right[v], v),
				dart(down[at(r-1, c)], v),
				dart(right[at(r, c-1)], v),
				dart(down[v], v),
			}
		}
	}
	emb, err := embed.New(g, rot)
	if err != nil {
		panic(fmt.Sprintf("gen.Torus: internal embedding error: %v", err))
	}
	return &Embedded{G: g, Emb: emb}
}

// GenusChain glues k toroidal grids in a chain, identifying a corner vertex
// of each with a corner of the next (rotations concatenated), producing an
// embedding of genus exactly k.
func GenusChain(k, rows, cols int) *Embedded {
	if k < 1 {
		panic("gen.GenusChain: k must be >= 1")
	}
	cur := Torus(rows, cols)
	for i := 1; i < k; i++ {
		next := Torus(rows, cols)
		cur = glueAtVertex(cur, next, cur.G.N()-1, 0)
	}
	return cur
}

// glueAtVertex identifies vertex a of x with vertex b of y, concatenating
// their rotations, which adds the genera (connected sum of surfaces).
func glueAtVertex(x, y *Embedded, a, b int) *Embedded {
	nx := x.G.N()
	// Map y's vertices into the combined graph: b -> a, others shifted.
	mapv := make([]int, y.G.N())
	next := nx
	for v := 0; v < y.G.N(); v++ {
		if v == b {
			mapv[v] = a
		} else {
			mapv[v] = next
			next++
		}
	}
	g := graph.New(nx + y.G.N() - 1)
	for id := 0; id < x.G.M(); id++ {
		e := x.G.Edge(id)
		g.AddEdge(e.U, e.V, e.W)
	}
	yEdgeOffset := x.G.M()
	for id := 0; id < y.G.M(); id++ {
		e := y.G.Edge(id)
		g.AddEdge(mapv[e.U], mapv[e.V], e.W)
	}
	// Rebuild rotations: x darts keep IDs; y dart d of edge id becomes dart
	// of edge id+offset with same parity (endpoints keep U/V roles).
	rot := make([][]int, g.N())
	for v := 0; v < nx; v++ {
		rot[v] = append(rot[v], x.Emb.Rotation(v)...)
	}
	for v := 0; v < y.G.N(); v++ {
		nv := mapv[v]
		for _, d := range y.Emb.Rotation(v) {
			rot[nv] = append(rot[nv], d+2*yEdgeOffset)
		}
	}
	emb, err := embed.New(g, rot)
	if err != nil {
		panic(fmt.Sprintf("gen.glueAtVertex: internal embedding error: %v", err))
	}
	return &Embedded{G: g, Emb: emb}
}

// Apollonian returns a random planar triangulation (stacked/Apollonian
// network) on n >= 3 vertices, built by repeatedly inserting a vertex into a
// uniformly random face and connecting it to the face's three corners. The
// result is maximal planar (m = 3n-6) and also a planar 3-tree.
// InsertionFaces records, per inserted vertex v >= 3, the three corner
// vertices it attached to (used to derive a width-3 tree decomposition).
type Apollonian struct {
	Embedded
	Corners [][3]int // Corners[i] = attachment corners of vertex i+3

	// Deferred embedding state: rotations as circular dart lists, built
	// into Emb on demand by EnsureEmbedding (clique-sum pieces never need
	// the embedding, so the common path skips materializing it).
	rotNext []int32
	first   []int32
}

// EnsureEmbedding materializes (and caches) the planar embedding recorded
// during construction. NewApollonian leaves Emb nil until this is called.
func (a *Apollonian) EnsureEmbedding() *embed.Embedding {
	if a.Emb != nil {
		return a.Emb
	}
	n := a.G.N()
	rotStore := make([]int, 0, 2*a.G.M())
	rot := make([][]int, n)
	for v := 0; v < n; v++ {
		base := len(rotStore)
		d := a.first[v]
		for {
			rotStore = append(rotStore, int(d))
			d = a.rotNext[d]
			if d == a.first[v] {
				break
			}
		}
		rot[v] = rotStore[base:len(rotStore):len(rotStore)]
	}
	a.Emb = embed.NewTrusted(a.G, rot)
	return a.Emb
}

// NewApollonian builds a random Apollonian network.
//
// Construction runs in two passes: the insertion process is simulated on
// flat edge records with rotations kept as circular linked lists (inserting
// a dart is two pointer writes), and only at the end are the graph and
// embedding materialized with exact-size storage. The result is identical
// to the naive incremental construction — same vertex/edge IDs and the same
// rotation linearizations — without its per-insert slice churn.
func NewApollonian(n int, rng *rand.Rand) *Apollonian {
	if n < 3 {
		panic("gen.NewApollonian: need n >= 3")
	}
	m := 3*n - 6
	if n == 3 {
		m = 3
	}
	type rec struct{ u, v int32 }
	edges := make([]rec, 0, m)
	deg := make([]int32, n)
	addEdge := func(u, v int) int {
		edges = append(edges, rec{int32(u), int32(v)})
		deg[u]++
		deg[v]++
		return len(edges) - 1
	}
	tail := func(d int) int {
		if d%2 == 0 {
			return int(edges[d/2].u)
		}
		return int(edges[d/2].v)
	}
	dartTo := func(id, t int) int {
		if int(edges[id].u) == t {
			return 2 * id
		}
		return 2*id + 1
	}
	// Rotations as circular linked lists over darts; first[v] is the dart
	// the final linearization starts from (it is never displaced: inserts
	// always land after an existing dart).
	rotNext := make([]int32, 2*m)
	first := make([]int32, n)
	e01 := addEdge(0, 1)
	e12 := addEdge(1, 2)
	e20 := addEdge(2, 0)
	link2 := func(v, d1, d2 int) {
		rotNext[d1] = int32(d2)
		rotNext[d2] = int32(d1)
		first[v] = int32(d1)
	}
	link2(0, 2*e01, 2*e20+1) // at 0: 0->1, 0->2
	link2(1, 2*e01+1, 2*e12) // at 1: 1->0, 1->2
	link2(2, 2*e12+1, 2*e20) // at 2: 2->1, 2->0
	// Faces tracked as dart triples (d1: a->b, d2: b->c, d3: c->a) with
	// next(d1)=d2 etc. Both triangle faces are traced exactly like
	// embed.Faces (ascending start dart) so the face-list order — and hence
	// the rng draw sequence — matches the incremental construction.
	type face [3]int32
	live := make([]face, 0, 2*n-4) // final face count of a triangulation
	{
		var seen [6]bool
		for d0 := 0; d0 < 6; d0++ {
			if seen[d0] {
				continue
			}
			var f face
			d, i := d0, 0
			for !seen[d] {
				seen[d] = true
				f[i] = int32(d)
				i++
				d = int(rotNext[d^1]) // FaceNext = Succ(Twin(d))
			}
			if i != 3 {
				panic("gen.NewApollonian: seed face not a triangle")
			}
			live = append(live, f)
		}
	}
	a := &Apollonian{}
	a.Corners = make([][3]int, 0, n-3)
	insertAfter := func(d, after int) {
		rotNext[d] = rotNext[after]
		rotNext[after] = int32(d)
	}
	for w := 3; w < n; w++ {
		fi := rng.Intn(len(live))
		f := live[fi]
		d1, d2, d3 := int(f[0]), int(f[1]), int(f[2])
		va, vb, vc := tail(d1), tail(d2), tail(d3)
		ea := addEdge(va, w)
		eb := addEdge(vb, w)
		ec := addEdge(vc, w)
		a.Corners = append(a.Corners, [3]int{va, vb, vc})
		// Splice new darts: at a after a->c (= twin(d3)); at b after b->a
		// (= twin(d1)); at c after c->b (= twin(d2)).
		insertAfter(dartTo(ea, va), d3^1)
		insertAfter(dartTo(eb, vb), d1^1)
		insertAfter(dartTo(ec, vc), d2^1)
		// Rotation at w: (w->a, w->c, w->b).
		dw1, dw2, dw3 := dartTo(ea, w), dartTo(ec, w), dartTo(eb, w)
		rotNext[dw1] = int32(dw2)
		rotNext[dw2] = int32(dw3)
		rotNext[dw3] = int32(dw1)
		first[w] = int32(dw1)
		// Replace face f with the three new faces.
		live[fi] = face{int32(d1), int32(dartTo(eb, vb)), int32(dartTo(ea, w))}
		live = append(live,
			face{int32(d2), int32(dartTo(ec, vc)), int32(dartTo(eb, w))},
			face{int32(d3), int32(dartTo(ea, va)), int32(dartTo(ec, w))},
		)
	}
	// Materialize the graph with exact-size storage: same vertex and edge
	// IDs as the simulation recorded.
	g := graph.NewWithEdgeCapacity(n, len(edges))
	vs := make([]int, n)
	for v := range vs {
		vs[v] = v
	}
	g.ReserveAdjBatch(vs, deg)
	for _, e := range edges {
		g.AddEdge(int(e.u), int(e.v), 1)
	}
	a.G = g
	a.rotNext = rotNext
	a.first = first
	return a
}

// Wheel returns the wheel graph: an n-1 cycle (rim) plus a hub adjacent to
// every rim vertex. The hub is vertex n-1. The wheel is the paper's running
// example of an apex collapsing diameter (Θ(n) cycle -> Θ(1) wheel).
func Wheel(n int) *Embedded {
	if n < 4 {
		panic("gen.Wheel: need n >= 4")
	}
	rim := n - 1
	g := graph.New(n)
	hub := n - 1
	rimEdge := make([]int, rim)
	for i := 0; i < rim; i++ {
		rimEdge[i] = g.AddEdge(i, (i+1)%rim, 1)
	}
	spoke := make([]int, rim)
	for i := 0; i < rim; i++ {
		spoke[i] = g.AddEdge(hub, i, 1)
	}
	dart := func(id, tail int) int {
		if g.Edge(id).U == tail {
			return 2 * id
		}
		return 2*id + 1
	}
	rot := make([][]int, n)
	for i := 0; i < rim; i++ {
		prev := (i - 1 + rim) % rim
		// CCW at rim vertex (hub inside): next, hub, prev.
		rot[i] = []int{
			dart(rimEdge[i], i),
			dart(spoke[i], i),
			dart(rimEdge[prev], i),
		}
	}
	for i := 0; i < rim; i++ {
		rot[hub] = append(rot[hub], dart(spoke[i], hub))
	}
	emb, err := embed.New(g, rot)
	if err != nil {
		panic(fmt.Sprintf("gen.Wheel: internal embedding error: %v", err))
	}
	return &Embedded{G: g, Emb: emb}
}

// Outerplanar returns a cycle on n vertices plus a set of non-crossing
// random chords, embedded with all vertices on the outer face. Outerplanar
// graphs are K4-minor-free and planar.
func Outerplanar(n, chords int, rng *rand.Rand) *Embedded {
	if n < 3 {
		panic("gen.Outerplanar: need n >= 3")
	}
	g := graph.New(n)
	type chord struct{ a, b, id int }
	var all []chord
	cyc := make([]int, n)
	for i := 0; i < n; i++ {
		cyc[i] = g.AddEdge(i, (i+1)%n, 1)
	}
	// Nested (hence non-crossing) chords via recursive interval splitting.
	var split func(lo, hi, budget int)
	split = func(lo, hi, budget int) {
		if budget <= 0 || hi-lo < 2 {
			return
		}
		if !(lo == 0 && hi == n-1) { // (0,n-1) is already a cycle edge
			all = append(all, chord{a: lo, b: hi, id: g.AddEdge(lo, hi, 1)})
			budget--
		}
		mid := lo + 1 + rng.Intn(hi-lo-1)
		split(lo, mid, budget/2)
		split(mid, hi, budget-budget/2)
	}
	split(0, n-1, chords)
	// Rotation: at vertex i, order darts by the "span" of the edge along the
	// cycle: next cycle edge, then chords to increasing distance, then prev
	// cycle edge. For non-crossing chords this is a planar rotation.
	dart := func(id, tail int) int {
		if g.Edge(id).U == tail {
			return 2 * id
		}
		return 2*id + 1
	}
	rot := make([][]int, n)
	for i := 0; i < n; i++ {
		prev := (i - 1 + n) % n
		type incident struct {
			d    int
			span int
		}
		var chordsHere []incident
		for _, c := range all {
			if c.a == i {
				chordsHere = append(chordsHere, incident{dart(c.id, i), c.b - c.a})
			} else if c.b == i {
				chordsHere = append(chordsHere, incident{dart(c.id, i), n - (c.b - c.a)})
			}
		}
		// Sort chords by span ascending (insertion sort; few chords).
		for x := 1; x < len(chordsHere); x++ {
			for y := x; y > 0 && chordsHere[y].span < chordsHere[y-1].span; y-- {
				chordsHere[y], chordsHere[y-1] = chordsHere[y-1], chordsHere[y]
			}
		}
		rot[i] = []int{dart(cyc[i], i)}
		for _, c := range chordsHere {
			rot[i] = append(rot[i], c.d)
		}
		rot[i] = append(rot[i], dart(cyc[prev], i))
	}
	emb, err := embed.New(g, rot)
	if err != nil {
		panic(fmt.Sprintf("gen.Outerplanar: internal embedding error: %v", err))
	}
	return &Embedded{G: g, Emb: emb}
}

package gen_test

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/xrand"
)

// The generators' hot paths skip per-instance witness validation (the
// clique-sum tree and the Apollonian decomposition are correct by
// construction); these tests keep that claim audited on sampled instances.

func TestCliqueSumWitnessValidates(t *testing.T) {
	rng := xrand.New(21)
	for trial := 0; trial < 5; trial++ {
		pieces := make([]*gen.Piece, 2+trial*3)
		for i := range pieces {
			pieces[i] = gen.ApollonianPiece(12+rng.Intn(10), rng)
		}
		cs := gen.CliqueSum(pieces, 3, rng)
		if err := cs.CST.Validate(); err != nil {
			t.Fatalf("trial %d: clique-sum witness invalid: %v", trial, err)
		}
		if err := cs.G.Validate(); err != nil {
			t.Fatalf("trial %d: merged graph invalid: %v", trial, err)
		}
		for bi, d := range cs.BagDecomp {
			if err := d.Validate(); err != nil {
				t.Fatalf("trial %d bag %d: piece decomposition invalid: %v", trial, bi, err)
			}
		}
	}
}

func TestApollonianDecompositionValidates(t *testing.T) {
	rng := xrand.New(33)
	for trial := 0; trial < 10; trial++ {
		a := gen.NewApollonian(5+trial*7, rng)
		if err := a.G.Validate(); err != nil {
			t.Fatalf("trial %d: graph invalid: %v", trial, err)
		}
		a.EnsureEmbedding()
		if err := a.Emb.Validate(); err != nil {
			t.Fatalf("trial %d: embedding invalid: %v", trial, err)
		}
		if g := a.Emb.Genus(); g != 0 {
			t.Fatalf("trial %d: Apollonian embedding has genus %d", trial, g)
		}
		d := gen.ApollonianDecomposition(a)
		if err := d.Validate(); err != nil {
			t.Fatalf("trial %d: decomposition invalid: %v", trial, err)
		}
		if w := d.Width(); w != 3 && a.G.N() > 3 {
			t.Fatalf("trial %d: width %d, want 3", trial, w)
		}
	}
}

func TestGridEmbeddingValidates(t *testing.T) {
	for _, dims := range [][2]int{{1, 1}, {1, 5}, {4, 4}, {3, 7}} {
		e := gen.Grid(dims[0], dims[1])
		if err := e.Emb.Validate(); err != nil {
			t.Fatalf("grid %v: embedding invalid: %v", dims, err)
		}
		if g := e.Emb.Genus(); g != 0 {
			t.Fatalf("grid %v: genus %d", dims, g)
		}
	}
}

// WheelPiece: the decomposition witness must validate, and chaining wheel
// pieces at their rim triangles must merge every piece's hub into one
// shared apex (the positional clique identification the E9 family relies
// on), keeping the whole chain at diameter 2.
func TestWheelPieceChainMergesHubs(t *testing.T) {
	rng := xrand.New(31)
	const rim = 16
	p := gen.WheelPiece(rim)
	if err := p.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := p.Decomp.Validate(); err != nil {
		t.Fatal(err)
	}
	if w := p.Decomp.Width(); w != 3 {
		t.Fatalf("wheel decomposition width %d, want 3", w)
	}
	pieces := []*gen.Piece{gen.WheelPiece(rim), gen.WheelPiece(rim), gen.WheelPiece(rim)}
	cs := gen.CliqueSumChain(pieces, 3, rng)
	if err := cs.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := cs.CST.Validate(); err != nil {
		t.Fatal(err)
	}
	hub := cs.BagToGlobal[0][rim]
	for b := range cs.BagToGlobal {
		if cs.BagToGlobal[b][rim] != hub {
			t.Fatalf("piece %d hub %d not merged into %d", b, cs.BagToGlobal[b][rim], hub)
		}
	}
	if d := graph.Diameter(cs.G); d != 2 {
		t.Fatalf("wheel chain diameter %d, want 2", d)
	}
}

package graph

// BFSResult holds the outcome of a breadth-first search.
type BFSResult struct {
	Source     int
	Dist       []int // hop distance from source; -1 if unreachable
	Parent     []int // BFS-tree parent; -1 for source and unreachable
	ParentEdge []int // edge ID to parent; -1 for source and unreachable
	Order      []int // vertices in visit order
}

// BFS runs a breadth-first search from src.
func BFS(g *Graph, src int) *BFSResult {
	n := g.N()
	store := make([]int, 3*n) // Dist, Parent, ParentEdge share one allocation
	r := &BFSResult{
		Source:     src,
		Dist:       store[0:n:n],
		Parent:     store[n : 2*n : 2*n],
		ParentEdge: store[2*n : 3*n : 3*n],
	}
	for i := range r.Dist {
		r.Dist[i] = -1
		r.Parent[i] = -1
		r.ParentEdge[i] = -1
	}
	r.Order = make([]int, 0, g.N())
	r.Dist[src] = 0
	r.Order = append(r.Order, src)
	for head := 0; head < len(r.Order); head++ {
		v := r.Order[head]
		for _, a := range g.Adj(v) {
			if r.Dist[a.To] == -1 {
				r.Dist[a.To] = r.Dist[v] + 1
				r.Parent[a.To] = v
				r.ParentEdge[a.To] = a.ID
				r.Order = append(r.Order, a.To)
			}
		}
	}
	return r
}

// MultiBFSResult holds the outcome of a multi-source BFS (Voronoi partition).
type MultiBFSResult struct {
	Sources    []int
	Dist       []int // hop distance to nearest source; -1 if unreachable
	Owner      []int // index into Sources of the owning source; -1 if unreachable
	Parent     []int
	ParentEdge []int
}

// MultiBFS runs a BFS simultaneously from all sources, assigning each vertex
// to the source that reaches it first (ties broken by source order). The
// resulting owner classes are the "cells" used throughout the shortcut
// construction: each class is connected and has radius at most the BFS depth.
func MultiBFS(g *Graph, sources []int) *MultiBFSResult {
	n := g.N()
	store := make([]int, 4*n) // result arrays share one allocation
	r := &MultiBFSResult{
		Sources:    append([]int(nil), sources...),
		Dist:       store[0:n:n],
		Owner:      store[n : 2*n : 2*n],
		Parent:     store[2*n : 3*n : 3*n],
		ParentEdge: store[3*n : 4*n : 4*n],
	}
	for i := range r.Dist {
		r.Dist[i] = -1
		r.Owner[i] = -1
		r.Parent[i] = -1
		r.ParentEdge[i] = -1
	}
	queue := make([]int, 0, g.N())
	for i, s := range sources {
		if r.Dist[s] == -1 {
			r.Dist[s] = 0
			r.Owner[s] = i
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.Adj(v) {
			if r.Dist[a.To] == -1 {
				r.Dist[a.To] = r.Dist[v] + 1
				r.Owner[a.To] = r.Owner[v]
				r.Parent[a.To] = v
				r.ParentEdge[a.To] = a.ID
				queue = append(queue, a.To)
			}
		}
	}
	return r
}

// Components returns the connected components of g as vertex lists, along
// with a vertex->component index map.
func Components(g *Graph) (comps [][]int, of []int) {
	of = make([]int, g.N())
	for i := range of {
		of[i] = -1
	}
	for v := 0; v < g.N(); v++ {
		if of[v] != -1 {
			continue
		}
		idx := len(comps)
		var comp []int
		stack := []int{v}
		of[v] = idx
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, x)
			for _, a := range g.Adj(x) {
				if of[a.To] == -1 {
					of[a.To] = idx
					stack = append(stack, a.To)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps, of
}

// IsConnected reports whether g is connected (the empty graph is connected).
func IsConnected(g *Graph) bool {
	if g.N() == 0 {
		return true
	}
	r := BFS(g, 0)
	return len(r.Order) == g.N()
}

// ConnectedSubset reports whether the vertex subset s induces a connected
// subgraph of g. An empty subset is not connected.
func ConnectedSubset(g *Graph, s []int) bool {
	if len(s) == 0 {
		return false
	}
	in := g.AcquireScratch()
	defer g.ReleaseScratch(in)
	for _, v := range s {
		in.Set(v, 0) // 0 = in subset, unseen
	}
	in.Set(s[0], 1) // 1 = seen
	stack := make([]int, 1, len(s))
	stack[0] = s[0]
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range g.Adj(v) {
			if st, ok := in.Get(a.To); ok && st == 0 {
				in.Set(a.To, 1)
				count++
				stack = append(stack, a.To)
			}
		}
	}
	return count == len(s)
}

// Eccentricity returns the maximum hop distance from v to any reachable
// vertex, and whether all vertices were reachable.
func Eccentricity(g *Graph, v int) (ecc int, connected bool) {
	ecc, _, reached := eccFrom(g, v)
	return ecc, reached == g.N()
}

// eccFrom runs a distance-only BFS from src out of pooled scratch storage:
// no per-call result arrays. Returns the eccentricity over reached
// vertices, the lowest-index farthest reached vertex, and the reached
// count.
func eccFrom(g *Graph, src int) (ecc, far, reached int) {
	dist := g.AcquireScratch()
	defer g.ReleaseScratch(dist)
	queue := make([]int32, 1, g.N())
	queue[0] = int32(src)
	dist.Set(src, 0)
	for head := 0; head < len(queue); head++ {
		v := int(queue[head])
		dv, _ := dist.Get(v)
		if int(dv) > ecc {
			ecc = int(dv)
		}
		for _, a := range g.Adj(v) {
			if !dist.Has(a.To) {
				dist.Set(a.To, dv+1)
				queue = append(queue, int32(a.To))
			}
		}
	}
	far = src
	for v := 0; v < g.N(); v++ {
		if d, ok := dist.Get(v); ok && int(d) == ecc {
			far = v
			break
		}
	}
	return ecc, far, len(queue)
}

// Diameter computes the exact hop diameter by running a BFS from every
// vertex. It is O(n·m); use DiameterApprox for large graphs. It returns -1
// for disconnected graphs.
func Diameter(g *Graph) int {
	if g.N() == 0 {
		return 0
	}
	diam := 0
	for v := 0; v < g.N(); v++ {
		ecc, conn := Eccentricity(g, v)
		if !conn {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// DiameterApprox estimates the diameter with the double-sweep heuristic:
// BFS from v0, then from the farthest vertex found. The result is a lower
// bound on the true diameter and at least half of it; on trees it is exact.
// It returns -1 for disconnected graphs.
func DiameterApprox(g *Graph) int {
	if g.N() == 0 {
		return 0
	}
	_, far, reached := eccFrom(g, 0)
	if reached != g.N() {
		return -1
	}
	ecc, _, _ := eccFrom(g, far)
	return ecc
}

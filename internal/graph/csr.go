package graph

import (
	"fmt"
	"slices"
	"sort"
)

// CSR is an immutable compressed-sparse-row snapshot of an undirected
// multigraph: the million-node substrate. Vertex and edge IDs are int32,
// adjacency lives in two contiguous arc slabs indexed by a prefix-sum
// offset table, and weights sit in one contiguous []float64 — about 28
// bytes per edge plus 4 bytes per vertex, an order of magnitude below the
// pointer-per-vertex [][]Arc layout. Generators emit CSR directly
// (internal/gen), and the traversal/MST kernels below consume it without
// ever materializing per-vertex slices.
//
// The arc order within a vertex is ascending edge ID — exactly the port
// order AddEdge produces — so Graph() round-trips byte-identically for
// append-only graphs and the engine's port numbering is preserved.
type CSR struct {
	Off []int32 // vertex v's arcs are Dst[Off[v]:Off[v+1]]; len N()+1
	Dst []int32 // arc -> neighbor vertex; len 2*M()
	AID []int32 // arc -> edge ID; len 2*M()

	U, V []int32   // edge ID -> endpoints; len M()
	W    []float64 // edge ID -> weight; len M()
}

// N returns the number of vertices.
func (c *CSR) N() int { return len(c.Off) - 1 }

// M returns the number of edges.
func (c *CSR) M() int { return len(c.U) }

// Degree returns the number of incident edge-endpoints at v.
func (c *CSR) Degree(v int32) int32 { return c.Off[v+1] - c.Off[v] }

// Arcs returns vertex v's arc range as parallel neighbor/edge-ID slices.
// The slices alias the CSR slabs and must not be modified.
func (c *CSR) Arcs(v int32) (dst, aid []int32) {
	lo, hi := c.Off[v], c.Off[v+1]
	return c.Dst[lo:hi], c.AID[lo:hi]
}

// Other returns the endpoint of edge id that is not v.
func (c *CSR) Other(id, v int32) int32 {
	if c.U[id] == v {
		return c.V[id]
	}
	if c.V[id] != v {
		panic(fmt.Sprintf("graph.CSR.Other: vertex %d not an endpoint of edge %d {%d,%d}", v, id, c.U[id], c.V[id]))
	}
	return c.U[id]
}

// Bytes returns the total size of the CSR slabs in bytes — the memory
// model the README's scale section budgets against: 4(n+1) + 8·2m for the
// offset+arc slabs plus 16m for endpoints and weights ≈ 4n + 32m.
func (c *CSR) Bytes() int {
	return 4*len(c.Off) + 4*len(c.Dst) + 4*len(c.AID) + 4*len(c.U) + 4*len(c.V) + 8*len(c.W)
}

// NewCSR snapshots g into CSR form. It panics on RemoveEdge tombstones
// (snapshot a Simplify'd copy instead) and on graphs whose vertex or arc
// counts overflow int32 — both are programmer errors at construction
// sites, matching AddEdge's contract.
//
//congest:pure
func NewCSR(g *Graph) *CSR {
	n, m := g.N(), g.M()
	if int64(n) > 1<<31-2 || int64(2*m) > 1<<31-2 {
		panic(fmt.Sprintf("graph.NewCSR: %d vertices / %d edges overflow int32 arc indexing", n, m))
	}
	c := &CSR{
		Off: make([]int32, n+1),
		Dst: make([]int32, 2*m),
		AID: make([]int32, 2*m),
		U:   make([]int32, m),
		V:   make([]int32, m),
		W:   make([]float64, m),
	}
	pos := int32(0)
	for v := 0; v < n; v++ {
		c.Off[v] = pos
		for _, a := range g.adj[v] {
			c.Dst[pos] = int32(a.To)
			c.AID[pos] = int32(a.ID)
			pos++
		}
	}
	c.Off[n] = pos
	for id, e := range g.edges {
		if e.U < 0 {
			panic(fmt.Sprintf("graph.NewCSR: edge %d is a RemoveEdge tombstone; Simplify before snapshotting", id))
		}
		c.U[id], c.V[id], c.W[id] = int32(e.U), int32(e.V), e.W
	}
	return c
}

// Graph materializes the CSR back into a mutable Graph. The adjacency is
// rebuilt directly from the arc slabs (one backing array, no AddEdge
// churn), so the round-trip NewCSR(c.Graph()) reproduces c exactly —
// including port order and edge IDs.
func (c *CSR) Graph() *Graph {
	n, m := c.N(), c.M()
	g := &Graph{adj: make([][]Arc, n), edges: make([]Edge, m)}
	store := make([]Arc, len(c.Dst))
	for v := 0; v < n; v++ {
		lo, hi := c.Off[v], c.Off[v+1]
		as := store[lo:hi:hi]
		for i := range as {
			as[i] = Arc{To: int(c.Dst[lo+int32(i)]), ID: int(c.AID[lo+int32(i)])}
		}
		g.adj[v] = as
	}
	for id := 0; id < m; id++ {
		g.edges[id] = Edge{U: int(c.U[id]), V: int(c.V[id]), W: c.W[id]}
	}
	return g
}

// Validate checks internal consistency: offsets monotone and spanning the
// arc slabs, each arc mirrored by its edge record, each edge appearing on
// exactly two arcs, no self-loops.
func (c *CSR) Validate() error {
	n := c.N()
	if len(c.Dst) != len(c.AID) || len(c.Dst) != 2*c.M() {
		return fmt.Errorf("graph.CSR: %d arcs for %d edges", len(c.Dst), c.M())
	}
	if len(c.U) != len(c.V) || len(c.U) != len(c.W) {
		return fmt.Errorf("graph.CSR: edge slab lengths disagree: %d/%d/%d", len(c.U), len(c.V), len(c.W))
	}
	if c.Off[0] != 0 || c.Off[n] != int32(len(c.Dst)) {
		return fmt.Errorf("graph.CSR: offsets span [%d,%d], arcs %d", c.Off[0], c.Off[n], len(c.Dst))
	}
	seen := make([]int8, c.M())
	for v := int32(0); v < int32(n); v++ {
		if c.Off[v] > c.Off[v+1] {
			return fmt.Errorf("graph.CSR: offsets decrease at vertex %d", v)
		}
		dst, aid := c.Arcs(v)
		for i, to := range dst {
			id := aid[i]
			if id < 0 || int(id) >= c.M() {
				return fmt.Errorf("graph.CSR: vertex %d has arc with bad edge ID %d", v, id)
			}
			if to == v {
				return fmt.Errorf("graph.CSR: self-loop arc at %d (edge %d)", v, id)
			}
			if !((c.U[id] == v && c.V[id] == to) || (c.V[id] == v && c.U[id] == to)) {
				return fmt.Errorf("graph.CSR: vertex %d arc to %d disagrees with edge %d {%d,%d}", v, to, id, c.U[id], c.V[id])
			}
			seen[id]++
		}
	}
	for id, k := range seen {
		if k != 2 {
			return fmt.Errorf("graph.CSR: edge %d appears on %d arcs, want 2", id, k)
		}
	}
	return nil
}

// CSRBFS is the result of a breadth-first search over a CSR: int32 slabs
// carved from one backing array, ~16 bytes per vertex.
type CSRBFS struct {
	Source     int32
	Dist       []int32 // -1 if unreached
	Parent     []int32 // -1 at source / unreached
	ParentEdge []int32 // -1 at source / unreached
	Order      []int32 // visit order (doubles as the BFS queue)
}

// BFS runs breadth-first search from src, exploring arcs in slab (= port)
// order so the tree matches Graph-side BFS exactly.
//
//congest:pure
func (c *CSR) BFS(src int32) *CSRBFS {
	n := c.N()
	store := make([]int32, 3*n)
	r := &CSRBFS{
		Source:     src,
		Dist:       store[:n:n],
		Parent:     store[n : 2*n : 2*n],
		ParentEdge: store[2*n : 3*n : 3*n],
		Order:      make([]int32, 0, n),
	}
	for i := 0; i < n; i++ {
		r.Dist[i], r.Parent[i], r.ParentEdge[i] = -1, -1, -1
	}
	r.Dist[src] = 0
	r.Order = append(r.Order, src)
	for head := 0; head < len(r.Order); head++ {
		v := r.Order[head]
		dv := r.Dist[v]
		dst, aid := c.Arcs(v)
		for i, to := range dst {
			if r.Dist[to] != -1 {
				continue
			}
			r.Dist[to] = dv + 1
			r.Parent[to] = v
			r.ParentEdge[to] = aid[i]
			r.Order = append(r.Order, to)
		}
	}
	return r
}

// IsConnected reports whether the CSR graph is connected.
func (c *CSR) IsConnected() bool {
	n := c.N()
	if n == 0 {
		return true
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	_, _, reached := c.eccFrom(0, dist, queue)
	return reached == n
}

// eccFrom runs a distance-only BFS from src into caller-provided scratch
// (dist len n, queue cap n), returning the eccentricity, the furthest
// vertex reached (ties to the lowest ID, matching graph.eccFrom), and the
// reached count.
func (c *CSR) eccFrom(src int32, dist []int32, queue []int32) (ecc int, far int32, reached int) {
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue = append(queue[:0], src)
	far = src
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		if int(dv) > ecc {
			ecc, far = int(dv), v
		}
		dst, _ := c.Arcs(v)
		for _, to := range dst {
			if dist[to] == -1 {
				dist[to] = dv + 1
				queue = append(queue, to)
			}
		}
	}
	return ecc, far, len(queue)
}

// DiameterApprox estimates the hop diameter with a double BFS sweep, in
// O(n+m) time and two n-int32 scratch arrays: the result is exact on
// trees and at least half the true diameter in general, matching
// graph.DiameterApprox value-for-value. Returns -1 if disconnected.
//
//congest:pure
func (c *CSR) DiameterApprox() int {
	n := c.N()
	if n == 0 {
		return 0
	}
	dist := make([]int32, n)
	queue := make([]int32, 0, n)
	_, far, reached := c.eccFrom(0, dist, queue)
	if reached != n {
		return -1
	}
	ecc, _, _ := c.eccFrom(far, dist, queue)
	return ecc
}

// UnionFind32 is a disjoint-set forest over int32 vertices with path
// halving and union by rank — the CSR-side mirror of UnionFind, ~5 bytes
// per vertex.
type UnionFind32 struct {
	parent []int32
	rank   []int8
	count  int
}

// NewUnionFind32 creates n singleton sets.
func NewUnionFind32(n int) *UnionFind32 {
	u := &UnionFind32{parent: make([]int32, n), rank: make([]int8, n), count: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the representative of x's set.
func (u *UnionFind32) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of x and y, returning false if already joined.
func (u *UnionFind32) Union(x, y int32) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.count--
	return true
}

// Count returns the number of disjoint sets.
func (u *UnionFind32) Count() int { return u.count }

// MST computes the minimum spanning forest by Kruskal under the canonical
// EdgeLess order (weight, ties to the lower edge ID) and returns the
// chosen IDs sorted ascending — byte-identical to graph.Kruskal on the
// materialized graph. The sort runs over an int32 index permutation — the
// only O(m log m) step in the scale pipeline's oracle check.
//
//congest:pure
func (c *CSR) MST() (ids []int32, weight float64) {
	m := c.M()
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if c.W[a] != c.W[b] {
			return c.W[a] < c.W[b]
		}
		return a < b
	})
	uf := NewUnionFind32(c.N())
	ids = make([]int32, 0, c.N()-1)
	for _, id := range order {
		if uf.Union(c.U[id], c.V[id]) {
			ids = append(ids, id)
			weight += c.W[id]
		}
	}
	slices.Sort(ids)
	return ids, weight
}

// FromEdges builds a Graph from a complete edge list with one degree
// prefix pass: the adjacency is carved from a single backing array sized
// by the exact arc count, so construction performs a constant number of
// allocations instead of paying append-doubling on 10⁷ arcs (the
// NewWithEdgeCapacity constructor pre-sizes only the edge list). Port
// order is ascending edge ID — identical to an AddEdge loop over the same
// list.
func FromEdges(n int, edges []Edge) *Graph {
	deg := make([]int32, n)
	for id, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			panic(fmt.Sprintf("graph.FromEdges: edge %d endpoints {%d,%d} out of range with n=%d", id, e.U, e.V, n))
		}
		if e.U == e.V {
			panic(fmt.Sprintf("graph.FromEdges: edge %d is a self-loop at %d", id, e.U))
		}
		deg[e.U]++
		deg[e.V]++
	}
	g := &Graph{adj: make([][]Arc, n), edges: make([]Edge, len(edges))}
	copy(g.edges, edges)
	store := make([]Arc, 2*len(edges))
	pos := int32(0)
	for v, d := range deg {
		g.adj[v] = store[pos : pos : pos+d]
		pos += d
	}
	for id, e := range edges {
		g.adj[e.U] = append(g.adj[e.U], Arc{To: e.V, ID: id})
		g.adj[e.V] = append(g.adj[e.V], Arc{To: e.U, ID: id})
	}
	return g
}

package graph_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// randomConnectedGraph builds an append-only random connected multigraph:
// a random spanning tree plus extra random edges (parallels allowed).
func randomConnectedGraph(n, extra int, rng *rand.Rand) *graph.Graph {
	g := graph.NewWithEdgeCapacity(n, n-1+extra)
	for v := 1; v < n; v++ {
		g.AddEdge(rng.Intn(v), v, 1+rng.Float64())
	}
	for i := 0; i < extra; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n - 1)
		if v >= u {
			v++
		}
		g.AddEdge(u, v, 1+rng.Float64())
	}
	return g
}

// TestCSRRoundTrip checks the exact round-trip contract: Graph → CSR →
// Graph preserves edge IDs, weights, and port order byte-for-byte, and
// CSR → Graph → CSR is the identity.
func TestCSRRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{1, 2, 17, 200} {
		g := randomConnectedGraph(n, n/2, rng)
		c := graph.NewCSR(g)
		if err := c.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		back := c.Graph()
		if err := back.Validate(); err != nil {
			t.Fatalf("n=%d: round-tripped graph invalid: %v", n, err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("n=%d: round-trip size %d/%d, want %d/%d", n, back.N(), back.M(), g.N(), g.M())
		}
		for id := 0; id < g.M(); id++ {
			if g.Edge(id) != back.Edge(id) {
				t.Fatalf("n=%d: edge %d changed: %v -> %v", n, id, g.Edge(id), back.Edge(id))
			}
		}
		for v := 0; v < g.N(); v++ {
			if len(g.Adj(v)) == 0 && len(back.Adj(v)) == 0 {
				continue // nil vs empty backing slice
			}
			if !reflect.DeepEqual(g.Adj(v), back.Adj(v)) {
				t.Fatalf("n=%d: port order at vertex %d changed: %v -> %v", n, v, g.Adj(v), back.Adj(v))
			}
		}
		again := graph.NewCSR(back)
		if !reflect.DeepEqual(c, again) {
			t.Fatalf("n=%d: CSR -> Graph -> CSR not the identity", n)
		}
	}
}

// TestCSRBFSMatchesGraph checks that CSR BFS visits arcs in port order and
// reproduces the Graph-side BFS tree exactly.
func TestCSRBFSMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g := randomConnectedGraph(300, 150, rng)
	c := graph.NewCSR(g)
	for _, src := range []int{0, 7, 299} {
		want := graph.BFS(g, src)
		got := c.BFS(int32(src))
		if len(got.Order) != len(want.Order) {
			t.Fatalf("src %d: reached %d vertices, want %d", src, len(got.Order), len(want.Order))
		}
		for v := 0; v < g.N(); v++ {
			if int(got.Dist[v]) != want.Dist[v] || int(got.Parent[v]) != want.Parent[v] || int(got.ParentEdge[v]) != want.ParentEdge[v] {
				t.Fatalf("src %d: vertex %d: got (%d,%d,%d), want (%d,%d,%d)", src, v,
					got.Dist[v], got.Parent[v], got.ParentEdge[v],
					want.Dist[v], want.Parent[v], want.ParentEdge[v])
			}
		}
		for i, v := range want.Order {
			if int(got.Order[i]) != v {
				t.Fatalf("src %d: visit order diverges at %d: %d vs %d", src, i, got.Order[i], v)
			}
		}
	}
	if !c.IsConnected() {
		t.Fatal("connected graph reported disconnected")
	}
	if got, want := c.DiameterApprox(), graph.DiameterApprox(g); got != want {
		t.Fatalf("DiameterApprox: CSR %d, Graph %d", got, want)
	}
}

// TestCSRMSTMatchesKruskal checks the CSR Kruskal oracle selects the
// byte-identical edge ID set as the Graph-side Kruskal.
func TestCSRMSTMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := randomConnectedGraph(250, 400, rng)
	c := graph.NewCSR(g)
	wantIDs, wantW := graph.Kruskal(g)
	gotIDs, gotW := c.MST()
	if len(gotIDs) != len(wantIDs) || gotW != wantW {
		t.Fatalf("MST: got %d edges weight %v, want %d edges weight %v", len(gotIDs), gotW, len(wantIDs), wantW)
	}
	for i := range wantIDs {
		if int(gotIDs[i]) != wantIDs[i] {
			t.Fatalf("MST edge %d: got ID %d, want %d", i, gotIDs[i], wantIDs[i])
		}
	}
}

// TestFromEdges checks the degree-prefix constructor reproduces an AddEdge
// loop exactly (edges, port order) with pre-sized adjacency.
func TestFromEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	want := randomConnectedGraph(120, 80, rng)
	got := graph.FromEdges(want.N(), want.Edges())
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < want.N(); v++ {
		if !reflect.DeepEqual(want.Adj(v), got.Adj(v)) {
			t.Fatalf("vertex %d: adjacency %v, want %v", v, got.Adj(v), want.Adj(v))
		}
	}
	if !reflect.DeepEqual(graph.NewCSR(want), graph.NewCSR(got)) {
		t.Fatal("FromEdges CSR snapshot differs from AddEdge-built graph")
	}
}

// TestCSRDisconnected checks the disconnected sentinels.
func TestCSRDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	c := graph.NewCSR(g)
	if c.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if d := c.DiameterApprox(); d != -1 {
		t.Fatalf("DiameterApprox on disconnected graph: %d, want -1", d)
	}
	ids, _ := c.MST()
	if len(ids) != 2 {
		t.Fatalf("spanning forest has %d edges, want 2", len(ids))
	}
}

// Package graph provides the core graph substrate used by the entire
// repository: weighted undirected multigraphs with stable edge identifiers,
// traversals, rooted spanning trees, LCA and heavy-light machinery,
// union-find, sequential MST and min-cut reference algorithms, and minor
// operations (contraction, deletion, reductions).
//
// Vertices are dense integers 0..N()-1. Edges carry stable integer IDs in
// insertion order; all higher layers (shortcuts in particular) identify edges
// by ID so that congestion accounting stays exact even in the presence of
// parallel edges created by contractions.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// Edge is an undirected weighted edge between U and V.
type Edge struct {
	U, V int
	W    float64
}

// Arc is one direction of an edge as stored in adjacency lists.
type Arc struct {
	To int // neighbor vertex
	ID int // edge ID, an index into the graph's edge list
}

// Graph is an undirected weighted multigraph. The zero value is an empty
// graph with no vertices; use New to create a graph with n vertices.
//
// Parallel edges are permitted (they arise naturally from contractions);
// self-loops are rejected. Graph is not safe for concurrent mutation but is
// safe for concurrent reads.
type Graph struct {
	adj   [][]Arc
	edges []Edge
}

// New returns an empty graph with n vertices and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph.New: negative vertex count %d", n))
	}
	return &Graph{adj: make([][]Arc, n)}
}

// NewWithEdgeCapacity returns an empty graph with n vertices whose edge list
// is pre-sized for m edges, avoiding append-growth in construction loops.
func NewWithEdgeCapacity(n, m int) *Graph {
	g := New(n)
	if m > 0 {
		g.edges = make([]Edge, 0, m)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddVertex appends a new isolated vertex and returns its index.
func (g *Graph) AddVertex() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddVertices appends k isolated vertices and returns the index of the
// first, growing the adjacency table once.
func (g *Graph) AddVertices(k int) int {
	first := len(g.adj)
	g.adj = append(g.adj, make([][]Arc, k)...)
	return first
}

// ReserveVertices ensures capacity for at least extra more vertices.
func (g *Graph) ReserveVertices(extra int) {
	if cap(g.adj)-len(g.adj) >= extra {
		return
	}
	na := make([][]Arc, len(g.adj), len(g.adj)+extra)
	copy(na, g.adj)
	g.adj = na
}

// AddEdge inserts an undirected edge {u,v} with weight w and returns its ID.
// It panics on out-of-range endpoints or self-loops: both indicate programmer
// error in this codebase, where all construction sites control their inputs.
func (g *Graph) AddEdge(u, v int, w float64) int {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph.AddEdge: endpoint out of range: {%d,%d} with n=%d", u, v, len(g.adj)))
	}
	if u == v {
		panic(fmt.Sprintf("graph.AddEdge: self-loop at %d", u))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	g.adj[u] = appendArc(g.adj[u], Arc{To: v, ID: id})
	g.adj[v] = appendArc(g.adj[v], Arc{To: u, ID: id})
	return id
}

// appendArc appends with a first allocation of capacity 4: most graphs here
// are planar-ish (average degree < 6), so one allocation usually covers the
// vertex's whole adjacency instead of the 1→2→4 growth chain.
func appendArc(as []Arc, a Arc) []Arc {
	if as == nil {
		as = make([]Arc, 0, 4)
	}
	return append(as, a)
}

// RemoveEdge deletes edge id from the graph: both adjacency arcs are
// dropped (preserving the port order of the remaining arcs) and the edge
// slot becomes a tombstone, so every other edge keeps its stable ID — the
// invariant the shortcut layers' congestion accounting depends on. M()
// still counts the slot; iterations over the edge list must skip tombstones
// (EdgeRemoved), as Validate, Simplify, InducedSubgraph, and the weight
// aggregates do. Introduced for the churn-repair path (edge deletions under
// a live maintained shortcut).
func (g *Graph) RemoveEdge(id int) {
	if id < 0 || id >= len(g.edges) {
		panic(fmt.Sprintf("graph.RemoveEdge: edge %d out of range", id))
	}
	e := g.edges[id]
	if e.U < 0 {
		panic(fmt.Sprintf("graph.RemoveEdge: edge %d already removed", id))
	}
	g.adj[e.U] = dropArc(g.adj[e.U], id)
	g.adj[e.V] = dropArc(g.adj[e.V], id)
	g.edges[id] = Edge{U: -1, V: -1}
}

// EdgeRemoved reports whether edge id is a RemoveEdge tombstone.
func (g *Graph) EdgeRemoved(id int) bool { return g.edges[id].U < 0 }

// dropArc removes the arc with the given edge ID, preserving order.
func dropArc(as []Arc, id int) []Arc {
	for i, a := range as {
		if a.ID == id {
			return append(as[:i], as[i+1:]...)
		}
	}
	panic(fmt.Sprintf("graph: adjacency missing arc for edge %d", id))
}

// ReserveAdj ensures the adjacency list of v has capacity for at least
// extra more arcs, so a construction loop that knows its degree contribution
// up front (e.g. merging a piece into a clique-sum) pays one allocation.
// Growth is geometric so repeated reservations stay amortized-linear.
func (g *Graph) ReserveAdj(v, extra int) {
	as := g.adj[v]
	if cap(as)-len(as) >= extra {
		return
	}
	newCap := len(as) + extra
	if 2*cap(as) > newCap {
		newCap = 2 * cap(as)
	}
	ns := make([]Arc, len(as), newCap)
	copy(ns, as)
	g.adj[v] = ns
}

// ReserveAdjBatch pre-sizes the adjacency lists of vertices vs — which must
// currently be empty — to the given capacities, all sliced from one backing
// array.
func (g *Graph) ReserveAdjBatch(vs []int, caps []int32) {
	total := 0
	for _, c := range caps {
		total += int(c)
	}
	store := make([]Arc, 0, total)
	for i, v := range vs {
		if len(g.adj[v]) != 0 {
			panic(fmt.Sprintf("graph.ReserveAdjBatch: vertex %d adjacency not empty", v))
		}
		base := len(store)
		store = store[:base+int(caps[i])]
		g.adj[v] = store[base : base : base+int(caps[i])]
	}
}

// ReserveEdges ensures capacity for at least extra more edges. Growth is
// geometric so repeated reservations stay amortized-linear.
func (g *Graph) ReserveEdges(extra int) {
	if cap(g.edges)-len(g.edges) >= extra {
		return
	}
	newCap := len(g.edges) + extra
	if 2*cap(g.edges) > newCap {
		newCap = 2 * cap(g.edges)
	}
	ns := make([]Edge, len(g.edges), newCap)
	copy(ns, g.edges)
	g.edges = ns
}

// Adj returns the adjacency list of v. The returned slice must not be
// modified by the caller.
func (g *Graph) Adj(v int) []Arc { return g.adj[v] }

// Degree returns the number of incident edge-endpoints at v (parallel edges
// counted with multiplicity).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// SetWeight replaces the weight of edge id.
func (g *Graph) SetWeight(id int, w float64) { g.edges[id].W = w }

// Other returns the endpoint of edge id that is not v. It panics if v is not
// an endpoint of the edge.
func (g *Graph) Other(id, v int) int {
	e := g.edges[id]
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph.Other: vertex %d not an endpoint of edge %d {%d,%d}", v, id, e.U, e.V))
}

// HasEdge reports whether at least one edge connects u and v.
// It scans the shorter adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, a := range g.adj[u] {
		if a.To == v {
			return true
		}
	}
	return false
}

// FindEdge returns the ID of some edge between u and v, or -1 if none exists.
func (g *Graph) FindEdge(u, v int) int {
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, a := range g.adj[u] {
		if a.To == v {
			return a.ID
		}
	}
	return -1
}

// Clone returns a deep copy of g. Edge IDs are preserved.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:   make([][]Arc, len(g.adj)),
		edges: make([]Edge, len(g.edges)),
	}
	copy(c.edges, g.edges)
	for v, as := range g.adj {
		c.adj[v] = append([]Arc(nil), as...)
	}
	return c
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, e := range g.edges {
		if e.U < 0 {
			continue // RemoveEdge tombstone
		}
		s += e.W
	}
	return s
}

// InducedSubgraph returns the subgraph induced by the vertex set keep, along
// with the mapping old->new vertex index (-1 for dropped vertices) and, for
// each new edge, the original edge ID.
func (g *Graph) InducedSubgraph(keep []int) (sub *Graph, oldToNew []int, edgeOrig []int) {
	oldToNew = make([]int, g.N())
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for i, v := range keep {
		if v < 0 || v >= g.N() {
			panic(fmt.Sprintf("graph.InducedSubgraph: vertex %d out of range", v))
		}
		if oldToNew[v] != -1 {
			panic(fmt.Sprintf("graph.InducedSubgraph: duplicate vertex %d", v))
		}
		oldToNew[v] = i
	}
	// Two passes: count surviving edges and their endpoint degrees, then fill
	// pre-sized storage (a single backing array sliced per vertex), so the
	// construction performs a constant number of allocations.
	deg := make([]int32, len(keep))
	surviving := 0
	for _, e := range g.edges {
		if e.U < 0 {
			continue // RemoveEdge tombstone
		}
		nu, nv := oldToNew[e.U], oldToNew[e.V]
		if nu != -1 && nv != -1 {
			surviving++
			deg[nu]++
			deg[nv]++
		}
	}
	sub = &Graph{adj: make([][]Arc, len(keep)), edges: make([]Edge, 0, surviving)}
	store := make([]Arc, 2*surviving)
	pos := 0
	for v, d := range deg {
		sub.adj[v] = store[pos : pos : pos+int(d)]
		pos += int(d)
	}
	edgeOrig = make([]int, 0, surviving)
	for id, e := range g.edges {
		if e.U < 0 {
			continue // RemoveEdge tombstone
		}
		nu, nv := oldToNew[e.U], oldToNew[e.V]
		if nu != -1 && nv != -1 {
			eid := len(sub.edges)
			sub.edges = append(sub.edges, Edge{U: nu, V: nv, W: e.W})
			sub.adj[nu] = append(sub.adj[nu], Arc{To: nv, ID: eid})
			sub.adj[nv] = append(sub.adj[nv], Arc{To: nu, ID: eid})
			edgeOrig = append(edgeOrig, id)
		}
	}
	return sub, oldToNew, edgeOrig
}

// Simplify returns a copy of g with parallel edges merged, keeping the
// lightest edge of each parallel class. The returned slice maps each new edge
// ID to the original ID it was kept from.
func (g *Graph) Simplify() (*Graph, []int) {
	// One pass, one map lookup per edge: slot maps a canonical endpoint pair
	// to its class's index in kept, and kept[slot] is overwritten in place
	// when a lighter representative appears. The resulting order is
	// deterministic: classes appear in order of their first original edge;
	// ties within a class keep the earliest ID.
	slot := make(map[int64]int32, len(g.edges))
	kept := make([]int, 0, len(g.edges))
	n := int64(g.N())
	for id, e := range g.edges {
		if e.U < 0 {
			continue // RemoveEdge tombstone
		}
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		k := int64(u)*n + int64(v)
		if si, ok := slot[k]; ok {
			if e.W < g.edges[kept[si]].W {
				kept[si] = id
			}
		} else {
			slot[k] = int32(len(kept))
			kept = append(kept, id)
		}
	}
	s := NewWithEdgeCapacity(g.N(), len(kept))
	for _, id := range kept {
		e := g.edges[id]
		s.AddEdge(e.U, e.V, e.W)
	}
	return s, kept
}

// ErrDisconnected is returned by operations requiring a connected graph.
var ErrDisconnected = errors.New("graph: not connected")

// Validate performs internal consistency checks (adjacency mirrors edge list,
// no self-loops). It is used by tests and generators.
func (g *Graph) Validate() error {
	deg := make([]int, g.N())
	for id, e := range g.edges {
		if e.U < 0 && e.V < 0 {
			continue // RemoveEdge tombstone
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a self-loop at %d", id, e.U)
		}
		if e.U < 0 || e.U >= g.N() || e.V < 0 || e.V >= g.N() {
			return fmt.Errorf("graph: edge %d endpoints {%d,%d} out of range", id, e.U, e.V)
		}
		deg[e.U]++
		deg[e.V]++
	}
	for v, as := range g.adj {
		if len(as) != deg[v] {
			return fmt.Errorf("graph: vertex %d adjacency length %d != degree %d", v, len(as), deg[v])
		}
		for _, a := range as {
			if a.ID < 0 || a.ID >= g.M() {
				return fmt.Errorf("graph: vertex %d has arc with bad edge ID %d", v, a.ID)
			}
			e := g.edges[a.ID]
			if !((e.U == v && e.V == a.To) || (e.V == v && e.U == a.To)) {
				return fmt.Errorf("graph: vertex %d arc to %d disagrees with edge %d {%d,%d}", v, a.To, a.ID, e.U, e.V)
			}
		}
	}
	return nil
}

// MaxWeight returns the maximum edge weight, or 0 for an edgeless graph.
func (g *Graph) MaxWeight() float64 {
	m := math.Inf(-1)
	any := false
	for _, e := range g.edges {
		if e.U < 0 {
			continue // RemoveEdge tombstone
		}
		any = true
		if e.W > m {
			m = e.W
		}
	}
	if !any {
		return 0
	}
	return m
}

package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustPath(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func mustCycle(t *testing.T, n int) *Graph {
	t.Helper()
	g := mustPath(t, n)
	g.AddEdge(n-1, 0, 1)
	return g
}

func mustGrid(t *testing.T, rows, cols int) *Graph {
	t.Helper()
	g := New(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(at(r, c), at(r, c+1), 1)
			}
			if r+1 < rows {
				g.AddEdge(at(r, c), at(r+1, c), 1)
			}
		}
	}
	return g
}

func randomConnected(rng *rand.Rand, n, extra int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v), 1+rng.Float64())
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 1+rng.Float64())
		}
	}
	return g
}

func TestAddEdgeAndAccessors(t *testing.T) {
	g := New(3)
	id := g.AddEdge(0, 1, 2.5)
	if id != 0 {
		t.Fatalf("first edge ID = %d, want 0", id)
	}
	id2 := g.AddEdge(1, 2, 1.5)
	if id2 != 1 {
		t.Fatalf("second edge ID = %d, want 1", id2)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("N,M = %d,%d want 3,2", g.N(), g.M())
	}
	if e := g.Edge(0); e.U != 0 || e.V != 1 || e.W != 2.5 {
		t.Fatalf("Edge(0) = %+v", e)
	}
	if got := g.Other(0, 0); got != 1 {
		t.Fatalf("Other(0,0) = %d want 1", got)
	}
	if got := g.Other(0, 1); got != 0 {
		t.Fatalf("Other(0,1) = %d want 0", got)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
	if g.FindEdge(1, 2) != 1 || g.FindEdge(0, 2) != -1 {
		t.Fatal("FindEdge wrong")
	}
	if g.Degree(1) != 2 {
		t.Fatalf("Degree(1) = %d want 2", g.Degree(1))
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New(2)
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"self-loop", func() { g.AddEdge(1, 1, 1) }},
		{"out-of-range", func() { g.AddEdge(0, 5, 1) }},
		{"negative", func() { g.AddEdge(-1, 0, 1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc.f()
		})
	}
}

func TestAddVertex(t *testing.T) {
	g := New(1)
	v := g.AddVertex()
	if v != 1 || g.N() != 2 {
		t.Fatalf("AddVertex = %d, N = %d", v, g.N())
	}
	g.AddEdge(0, v, 1)
	if !g.HasEdge(0, 1) {
		t.Fatal("edge to new vertex missing")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := mustCycle(t, 4)
	c := g.Clone()
	c.AddEdge(0, 2, 9)
	if g.M() == c.M() {
		t.Fatal("clone shares edge list with original")
	}
	c.SetWeight(0, 100)
	if g.Edge(0).W == 100 {
		t.Fatal("clone shares edge storage")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := mustGrid(t, 3, 3)
	sub, oldToNew, orig := g.InducedSubgraph([]int{0, 1, 3, 4})
	if sub.N() != 4 {
		t.Fatalf("sub.N = %d", sub.N())
	}
	// Vertices 0,1,3,4 form a 2x2 grid: 4 edges.
	if sub.M() != 4 {
		t.Fatalf("sub.M = %d want 4", sub.M())
	}
	if len(orig) != 4 {
		t.Fatalf("edgeOrig length %d", len(orig))
	}
	for newID, oldID := range orig {
		ne, oe := sub.Edge(newID), g.Edge(oldID)
		if oldToNew[oe.U] != ne.U && oldToNew[oe.U] != ne.V {
			t.Fatalf("edge mapping broken for new edge %d", newID)
		}
	}
	if oldToNew[8] != -1 {
		t.Fatal("dropped vertex should map to -1")
	}
}

func TestSimplify(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 0, 2) // parallel, lighter
	g.AddEdge(1, 2, 1)
	s, kept := g.Simplify()
	if s.M() != 2 {
		t.Fatalf("simplified M = %d want 2", s.M())
	}
	if w := s.Edge(s.FindEdge(0, 1)).W; w != 2 {
		t.Fatalf("kept weight %v want 2 (lightest)", w)
	}
	if len(kept) != 2 {
		t.Fatalf("kept = %v", kept)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := mustPath(t, 3)
	g.adj[0] = append(g.adj[0], Arc{To: 2, ID: 0}) // lie: edge 0 is {0,1}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted corrupted adjacency")
	}
}

func TestBFSOnGrid(t *testing.T) {
	g := mustGrid(t, 4, 5)
	r := BFS(g, 0)
	if r.Dist[19] != 3+4 {
		t.Fatalf("dist to far corner = %d want 7", r.Dist[19])
	}
	if len(r.Order) != 20 {
		t.Fatalf("visited %d", len(r.Order))
	}
	// Parent pointers must decrease distance by exactly 1.
	for v := 0; v < g.N(); v++ {
		if v == 0 {
			continue
		}
		if r.Dist[v] != r.Dist[r.Parent[v]]+1 {
			t.Fatalf("vertex %d: dist %d but parent dist %d", v, r.Dist[v], r.Dist[r.Parent[v]])
		}
		e := g.Edge(r.ParentEdge[v])
		if !((e.U == v && e.V == r.Parent[v]) || (e.V == v && e.U == r.Parent[v])) {
			t.Fatalf("vertex %d: parent edge mismatch", v)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	r := BFS(g, 0)
	if r.Dist[2] != -1 || r.Dist[3] != -1 {
		t.Fatal("unreachable vertices should have dist -1")
	}
	if IsConnected(g) {
		t.Fatal("IsConnected wrong")
	}
	comps, of := Components(g)
	if len(comps) != 2 || of[0] == of[2] {
		t.Fatalf("components = %v of=%v", comps, of)
	}
}

func TestMultiBFSVoronoi(t *testing.T) {
	g := mustPath(t, 10)
	r := MultiBFS(g, []int{0, 9})
	if r.Owner[2] != 0 || r.Owner[7] != 1 {
		t.Fatalf("owners: %v", r.Owner)
	}
	// Each owner class must be connected.
	for i := 0; i < 2; i++ {
		var cell []int
		for v, o := range r.Owner {
			if o == i {
				cell = append(cell, v)
			}
		}
		if !ConnectedSubset(g, cell) {
			t.Fatalf("cell %d not connected: %v", i, cell)
		}
	}
	// Dist must be the min of distances to the two sources.
	for v := 0; v < 10; v++ {
		want := v
		if 9-v < want {
			want = 9 - v
		}
		if r.Dist[v] != want {
			t.Fatalf("dist[%d]=%d want %d", v, r.Dist[v], want)
		}
	}
}

func TestDiameterExactAndApprox(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path10", mustPath(t, 10), 9},
		{"cycle10", mustCycle(t, 10), 5},
		{"grid4x5", mustGrid(t, 4, 5), 7},
		{"single", New(1), 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if d := Diameter(tc.g); d != tc.want {
				t.Fatalf("Diameter = %d want %d", d, tc.want)
			}
			if a := DiameterApprox(tc.g); a > tc.want || a < (tc.want+1)/2 {
				t.Fatalf("DiameterApprox = %d out of [%d,%d]", a, (tc.want+1)/2, tc.want)
			}
		})
	}
	if Diameter(func() *Graph { g := New(2); return g }()) != -1 {
		t.Fatal("disconnected diameter should be -1")
	}
}

func TestConnectedSubset(t *testing.T) {
	g := mustGrid(t, 3, 3)
	if !ConnectedSubset(g, []int{0, 1, 2}) {
		t.Fatal("top row should be connected")
	}
	if ConnectedSubset(g, []int{0, 8}) {
		t.Fatal("opposite corners should not be connected")
	}
	if ConnectedSubset(g, nil) {
		t.Fatal("empty subset should not be connected")
	}
}

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(5)
	if u.Count() != 5 {
		t.Fatalf("count %d", u.Count())
	}
	if !u.Union(0, 1) || !u.Union(1, 2) {
		t.Fatal("unions should succeed")
	}
	if u.Union(0, 2) {
		t.Fatal("redundant union should report false")
	}
	if !u.Same(0, 2) || u.Same(0, 3) {
		t.Fatal("Same wrong")
	}
	if u.Count() != 3 {
		t.Fatalf("count %d want 3", u.Count())
	}
	sets := u.Sets()
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	if total != 5 || len(sets) != 3 {
		t.Fatalf("sets %v", sets)
	}
}

func TestUnionFindQuick(t *testing.T) {
	// Property: after any sequence of unions, Same agrees with naive
	// component labeling.
	f := func(pairs []struct{ A, B uint8 }) bool {
		const n = 40
		u := NewUnionFind(n)
		naive := make([]int, n)
		for i := range naive {
			naive[i] = i
		}
		relabel := func(from, to int) {
			for i := range naive {
				if naive[i] == from {
					naive[i] = to
				}
			}
		}
		for _, p := range pairs {
			a, b := int(p.A)%n, int(p.B)%n
			u.Union(a, b)
			if naive[a] != naive[b] {
				relabel(naive[a], naive[b])
			}
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if u.Same(i, j) != (naive[i] == naive[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

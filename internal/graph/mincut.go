package graph

import (
	"fmt"
	"math"
)

// GlobalMinCut computes the exact weight of a global minimum edge cut of a
// connected weighted graph using the Stoer–Wagner algorithm, along with one
// side of an optimal cut (original vertex indices). It runs in O(n^3) time
// and serves as the correctness reference for the distributed (1+ε)
// approximation. Edge weights must be non-negative.
func GlobalMinCut(g *Graph) (weight float64, side []int, err error) {
	n := g.N()
	if n < 2 {
		return 0, nil, fmt.Errorf("graph.GlobalMinCut: need at least 2 vertices, have %d", n)
	}
	if !IsConnected(g) {
		return 0, nil, fmt.Errorf("graph.GlobalMinCut: %w", ErrDisconnected)
	}
	// Dense weight matrix; parallel edges merge by summing weight.
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	for _, e := range g.Edges() {
		if e.W < 0 {
			return 0, nil, fmt.Errorf("graph.GlobalMinCut: negative weight %v on edge {%d,%d}", e.W, e.U, e.V)
		}
		w[e.U][e.V] += e.W
		w[e.V][e.U] += e.W
	}
	// merged[v] lists the original vertices merged into supernode v.
	merged := make([][]int, n)
	for i := range merged {
		merged[i] = []int{i}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	best := math.Inf(1)
	var bestSide []int
	for len(active) > 1 {
		// Maximum adjacency (minimum cut phase) search.
		inA := make(map[int]bool, len(active))
		conn := make(map[int]float64, len(active))
		var order []int
		for len(order) < len(active) {
			sel, selW := -1, -1.0
			for _, v := range active {
				if !inA[v] && (sel == -1 || conn[v] > selW) {
					sel, selW = v, conn[v]
				}
			}
			inA[sel] = true
			order = append(order, sel)
			for _, v := range active {
				if !inA[v] {
					conn[v] += w[sel][v]
				}
			}
		}
		s, t := order[len(order)-2], order[len(order)-1]
		cutOfPhase := conn[t]
		if cutOfPhase < best {
			best = cutOfPhase
			bestSide = append([]int(nil), merged[t]...)
		}
		// Merge t into s.
		merged[s] = append(merged[s], merged[t]...)
		for _, v := range active {
			if v != s && v != t {
				w[s][v] += w[t][v]
				w[v][s] = w[s][v]
			}
		}
		next := active[:0]
		for _, v := range active {
			if v != t {
				next = append(next, v)
			}
		}
		active = next
	}
	return best, bestSide, nil
}

// CutWeight returns the total weight of edges with exactly one endpoint in
// the given side.
func CutWeight(g *Graph, side []int) float64 {
	in := make(map[int]bool, len(side))
	for _, v := range side {
		in[v] = true
	}
	var w float64
	for _, e := range g.Edges() {
		if in[e.U] != in[e.V] {
			w += e.W
		}
	}
	return w
}

// EdgeConnectivity returns the unweighted global edge connectivity, i.e. the
// minimum number of edges whose removal disconnects g, by running
// Stoer–Wagner with unit weights. Parallel edges count with multiplicity.
func EdgeConnectivity(g *Graph) (int, error) {
	unit := New(g.N())
	for _, e := range g.Edges() {
		unit.AddEdge(e.U, e.V, 1)
	}
	w, _, err := GlobalMinCut(unit)
	if err != nil {
		return 0, err
	}
	return int(math.Round(w)), nil
}

package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestGlobalMinCutBridge(t *testing.T) {
	// Two triangles joined by a single bridge of weight 0.5.
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 0, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 3, 1)
	g.AddEdge(2, 3, 0.5)
	w, side, err := GlobalMinCut(g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0.5 {
		t.Fatalf("min cut %v want 0.5", w)
	}
	if got := CutWeight(g, side); got != w {
		t.Fatalf("CutWeight(side) = %v want %v", got, w)
	}
	if len(side) != 3 {
		t.Fatalf("side %v should be one triangle", side)
	}
}

func TestGlobalMinCutCycle(t *testing.T) {
	g := mustCycle(t, 8)
	w, _, err := GlobalMinCut(g)
	if err != nil {
		t.Fatal(err)
	}
	if w != 2 {
		t.Fatalf("cycle min cut %v want 2", w)
	}
}

func TestGlobalMinCutCompleteGraph(t *testing.T) {
	n := 6
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	w, side, err := GlobalMinCut(g)
	if err != nil {
		t.Fatal(err)
	}
	if w != float64(n-1) {
		t.Fatalf("K%d min cut %v want %d", n, w, n-1)
	}
	if len(side) != 1 && len(side) != n-1 {
		t.Fatalf("optimal side of K%d should isolate one vertex, got %v", n, side)
	}
}

func TestGlobalMinCutErrors(t *testing.T) {
	if _, _, err := GlobalMinCut(New(1)); err == nil {
		t.Fatal("expected error for single vertex")
	}
	d := New(3)
	d.AddEdge(0, 1, 1)
	if _, _, err := GlobalMinCut(d); err == nil {
		t.Fatal("expected disconnected error")
	}
	neg := New(2)
	neg.AddEdge(0, 1, -1)
	if _, _, err := GlobalMinCut(neg); err == nil {
		t.Fatal("expected negative weight error")
	}
}

// bruteMinCut enumerates all 2^(n-1) cuts.
func bruteMinCut(g *Graph) float64 {
	n := g.N()
	best := math.Inf(1)
	for mask := 1; mask < 1<<(n-1); mask++ {
		// Side S = vertices below n-1 with their bit set; vertex n-1 is
		// always on the complement side, so S is a proper non-empty side.
		var w float64
		for _, e := range g.Edges() {
			inU := e.U != n-1 && mask&(1<<e.U) != 0
			inV := e.V != n-1 && mask&(1<<e.V) != 0
			if inU != inV {
				w += e.W
			}
		}
		if w < best {
			best = w
		}
	}
	return best
}

func TestGlobalMinCutAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		g := randomConnected(rng, n, rng.Intn(2*n))
		want := bruteMinCut(g)
		got, side, err := GlobalMinCut(g)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d: stoer-wagner %v brute %v", n, got, want)
		}
		if math.Abs(CutWeight(g, side)-got) > 1e-9 {
			t.Fatalf("returned side has weight %v, reported %v", CutWeight(g, side), got)
		}
	}
}

func TestEdgeConnectivity(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path", mustPath(t, 5), 1},
		{"cycle", mustCycle(t, 5), 2},
		{"grid3x3", mustGrid(t, 3, 3), 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := EdgeConnectivity(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("connectivity %d want %d", got, tc.want)
			}
		})
	}
}

package graph

import (
	"math"
	"math/rand"
	"sort"
)

// ContractEdge returns a new graph with edge id contracted: its endpoints are
// identified, self-loops dropped, and parallel edges kept. The returned slice
// maps new vertex indices to representative old indices, and vertexMap maps
// every old vertex to its new index.
func ContractEdge(g *Graph, id int) (c *Graph, vertexMap []int) {
	e := g.Edge(id)
	keep, drop := e.U, e.V
	if keep > drop {
		keep, drop = drop, keep
	}
	vertexMap = make([]int, g.N())
	next := 0
	for v := 0; v < g.N(); v++ {
		if v == drop {
			continue
		}
		vertexMap[v] = next
		next++
	}
	vertexMap[drop] = vertexMap[keep]
	c = New(g.N() - 1)
	for _, e := range g.Edges() {
		nu, nv := vertexMap[e.U], vertexMap[e.V]
		if nu != nv {
			c.AddEdge(nu, nv, e.W)
		}
	}
	return c, vertexMap
}

// IsForest reports whether g is acyclic, i.e. K3-minor-free.
func IsForest(g *Graph) bool {
	uf := NewUnionFind(g.N())
	for _, e := range g.Edges() {
		if !uf.Union(e.U, e.V) {
			return false
		}
	}
	return true
}

// IsSeriesParallelReducible reports whether g is K4-minor-free, i.e. has
// treewidth at most 2, by exhaustively applying the classical reductions:
// remove isolated and degree-1 vertices, merge parallel edges, and suppress
// degree-2 vertices. A graph reduces to the empty graph if and only if it has
// no K4 minor. This is an exact decision procedure.
func IsSeriesParallelReducible(g *Graph) bool {
	// Work on a mutable adjacency-set representation (simple graph view:
	// parallel edges collapse, which does not affect K4 minors).
	n := g.N()
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int]bool)
	}
	for _, e := range g.Edges() {
		if e.U != e.V {
			adj[e.U][e.V] = true
			adj[e.V][e.U] = true
		}
	}
	alive := n
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		queue = append(queue, v)
	}
	dead := make([]bool, n)
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if dead[v] {
			continue
		}
		switch len(adj[v]) {
		case 0:
			dead[v] = true
			alive--
		case 1:
			var u int
			for w := range adj[v] {
				u = w
			}
			delete(adj[u], v)
			adj[v] = map[int]bool{}
			dead[v] = true
			alive--
			queue = append(queue, u)
		case 2:
			var nb [2]int
			i := 0
			for w := range adj[v] {
				nb[i] = w
				i++
			}
			a, b := nb[0], nb[1]
			delete(adj[a], v)
			delete(adj[b], v)
			adj[v] = map[int]bool{}
			dead[v] = true
			alive--
			// Suppress: connect a-b (parallel edges merge automatically).
			adj[a][b] = true
			adj[b][a] = true
			queue = append(queue, a, b)
		}
	}
	return alive == 0
}

// HasCliqueMinorWitness searches for a K_h minor using randomized contraction:
// it repeatedly contracts random edges down to h supernodes and checks for
// pairwise adjacency. It is one-sided: a true result is a certified witness
// (the returned branch sets are disjoint connected subsets that are pairwise
// adjacent); false means no minor was found within the given tries, not that
// none exists. Intended for tests on small graphs.
func HasCliqueMinorWitness(g *Graph, h, tries int, rng *rand.Rand) (found bool, branchSets [][]int) {
	if g.N() < h {
		return false, nil
	}
	for attempt := 0; attempt < tries; attempt++ {
		sets := tryCliqueMinor(g, h, rng)
		if sets != nil {
			return true, sets
		}
	}
	return false, nil
}

func tryCliqueMinor(g *Graph, h int, rng *rand.Rand) [][]int {
	// Union-find over vertices; contract random edges until h groups remain.
	uf := NewUnionFind(g.N())
	order := rng.Perm(g.M())
	groups := g.N()
	for _, id := range order {
		if groups <= h {
			break
		}
		e := g.Edge(id)
		if uf.Union(e.U, e.V) {
			groups--
		}
	}
	if groups != h {
		return nil
	}
	// Check pairwise adjacency between groups.
	repIdx := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		r := uf.Find(v)
		if _, ok := repIdx[r]; !ok {
			repIdx[r] = len(repIdx)
		}
	}
	seen := make([][]bool, h)
	for i := range seen {
		seen[i] = make([]bool, h)
	}
	pairs := 0
	for _, e := range g.Edges() {
		a, b := repIdx[uf.Find(e.U)], repIdx[uf.Find(e.V)]
		if a != b && !seen[a][b] {
			seen[a][b], seen[b][a] = true, true
			pairs++
		}
	}
	if pairs != h*(h-1)/2 {
		return nil
	}
	sets := make([][]int, h)
	for v := 0; v < g.N(); v++ {
		i := repIdx[uf.Find(v)]
		sets[i] = append(sets[i], v)
	}
	for i := range sets {
		sort.Ints(sets[i])
	}
	return sets
}

// VerifyCliqueMinor checks that branchSets is a valid K_h minor model in g:
// sets are non-empty, disjoint, each induces a connected subgraph, and every
// pair of sets is joined by at least one edge.
func VerifyCliqueMinor(g *Graph, branchSets [][]int) bool {
	seen := make(map[int]bool)
	for _, s := range branchSets {
		if len(s) == 0 {
			return false
		}
		for _, v := range s {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		if !ConnectedSubset(g, s) {
			return false
		}
	}
	idx := make(map[int]int)
	for i, s := range branchSets {
		for _, v := range s {
			idx[v] = i
		}
	}
	h := len(branchSets)
	adj := make([][]bool, h)
	for i := range adj {
		adj[i] = make([]bool, h)
	}
	for _, e := range g.Edges() {
		iu, uok := idx[e.U]
		iv, vok := idx[e.V]
		if uok && vok && iu != iv {
			adj[iu][iv], adj[iv][iu] = true, true
		}
	}
	for i := 0; i < h; i++ {
		for j := i + 1; j < h; j++ {
			if !adj[i][j] {
				return false
			}
		}
	}
	return true
}

// PlanarDensityOK reports whether g satisfies the planar edge bound
// m <= 3n - 6 (for n >= 3) after merging parallel edges. Violation certifies
// non-planarity; satisfaction is necessary but not sufficient.
func PlanarDensityOK(g *Graph) bool {
	s, _ := g.Simplify()
	n, m := s.N(), s.M()
	if n < 3 {
		return m <= n-1 || m <= 1
	}
	return m <= 3*n-6
}

// MinorFreeDensityOK reports whether the simple version of g satisfies the
// generic excluded-minor edge bound m <= c·h·sqrt(log h)·n used as a sanity
// certificate (Kostochka/Thomason: K_h-minor-free graphs have average degree
// O(h√log h)). The constant is taken loosely (c = 4) since this is only a
// smoke check used by tests.
func MinorFreeDensityOK(g *Graph, h int) bool {
	s, _ := g.Simplify()
	if h < 3 {
		return s.M() == 0
	}
	// Loose bound: avg degree <= 2·h·sqrt(log2 h).
	limit := 2 * float64(h) * math.Sqrt(math.Log2(float64(h)))
	return 2*float64(s.M()) <= limit*float64(s.N())
}

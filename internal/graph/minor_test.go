package graph

import (
	"math/rand"
	"testing"
)

func completeGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	return g
}

func TestContractEdge(t *testing.T) {
	g := mustCycle(t, 4) // 0-1-2-3-0
	c, vm := ContractEdge(g, 0)
	if c.N() != 3 {
		t.Fatalf("n = %d", c.N())
	}
	if vm[0] != vm[1] {
		t.Fatal("endpoints not identified")
	}
	// Cycle C4 contracts to a triangle: 3 edges, no self-loops.
	if c.M() != 3 {
		t.Fatalf("m = %d want 3", c.M())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestContractEdgeKeepsParallel(t *testing.T) {
	// Triangle: contracting one edge makes a parallel pair.
	g := completeGraph(3)
	c, _ := ContractEdge(g, 0)
	if c.N() != 2 || c.M() != 2 {
		t.Fatalf("n=%d m=%d want 2,2", c.N(), c.M())
	}
}

func TestIsForest(t *testing.T) {
	if !IsForest(mustPath(t, 6)) {
		t.Fatal("path is a forest")
	}
	if IsForest(mustCycle(t, 3)) {
		t.Fatal("cycle is not a forest")
	}
	empty := New(4)
	if !IsForest(empty) {
		t.Fatal("edgeless graph is a forest")
	}
}

func TestSeriesParallelReducible(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"path", mustPath(t, 8), true},
		{"cycle", mustCycle(t, 8), true},
		{"K4", completeGraph(4), false},
		{"K5", completeGraph(5), false},
		{"theta", func() *Graph { // two vertices joined by three paths: SP
			g := New(5)
			g.AddEdge(0, 1, 1)
			g.AddEdge(1, 4, 1)
			g.AddEdge(0, 2, 1)
			g.AddEdge(2, 4, 1)
			g.AddEdge(0, 3, 1)
			g.AddEdge(3, 4, 1)
			return g
		}(), true},
		{"grid3x3", mustGrid(t, 3, 3), false}, // 3x3 grid has a K4 minor
		{"grid2xN", mustGrid(t, 2, 7), true},  // ladders are series-parallel
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsSeriesParallelReducible(tc.g); got != tc.want {
				t.Fatalf("got %v want %v", got, tc.want)
			}
		})
	}
}

func TestCliqueMinorWitnessOnCompleteGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for h := 3; h <= 6; h++ {
		g := completeGraph(h + 2)
		found, sets := HasCliqueMinorWitness(g, h, 50, rng)
		if !found {
			t.Fatalf("K%d minor not found in K%d", h, h+2)
		}
		if !VerifyCliqueMinor(g, sets) {
			t.Fatalf("witness for K%d does not verify", h)
		}
	}
}

func TestCliqueMinorAbsentInTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := mustPath(t, 20)
	if found, _ := HasCliqueMinorWitness(g, 3, 200, rng); found {
		t.Fatal("found K3 minor in a path")
	}
}

func TestGridHasK4Minor(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := mustGrid(t, 4, 4)
	found, sets := HasCliqueMinorWitness(g, 4, 2000, rng)
	if !found {
		t.Skip("randomized search did not find K4 in 4x4 grid (one-sided test)")
	}
	if !VerifyCliqueMinor(g, sets) {
		t.Fatal("witness does not verify")
	}
}

func TestVerifyCliqueMinorRejectsBadWitnesses(t *testing.T) {
	g := completeGraph(5)
	// Overlapping sets.
	if VerifyCliqueMinor(g, [][]int{{0, 1}, {1, 2}}) {
		t.Fatal("accepted overlapping branch sets")
	}
	// Disconnected set.
	p := mustPath(t, 5)
	if VerifyCliqueMinor(p, [][]int{{0, 4}, {2}}) {
		t.Fatal("accepted disconnected branch set")
	}
	// Missing pair adjacency.
	if VerifyCliqueMinor(p, [][]int{{0}, {2}, {4}}) {
		t.Fatal("accepted non-adjacent branch sets")
	}
	// Empty set.
	if VerifyCliqueMinor(g, [][]int{{}, {1}}) {
		t.Fatal("accepted empty branch set")
	}
}

func TestPlanarDensity(t *testing.T) {
	if !PlanarDensityOK(mustGrid(t, 5, 5)) {
		t.Fatal("grid should pass planar density")
	}
	if PlanarDensityOK(completeGraph(6)) {
		t.Fatal("K6 should fail planar density")
	}
	if !PlanarDensityOK(New(2)) {
		t.Fatal("tiny graph should pass")
	}
}

func TestMinorFreeDensity(t *testing.T) {
	if !MinorFreeDensityOK(mustGrid(t, 6, 6), 5) {
		t.Fatal("grid should pass K5-free density")
	}
	if MinorFreeDensityOK(completeGraph(40), 5) {
		t.Fatal("K40 should fail K5-free density")
	}
}

package graph

import (
	"fmt"
	"sort"
)

// EdgeLess is the canonical total order on edges used across the repository:
// by weight, ties broken by edge ID. Using a total order makes the minimum
// spanning tree unique, which lets distributed implementations be checked
// edge-for-edge against the sequential reference.
func EdgeLess(g *Graph, a, b int) bool {
	ea, eb := g.Edge(a), g.Edge(b)
	if ea.W != eb.W {
		return ea.W < eb.W
	}
	return a < b
}

// Kruskal computes the minimum spanning tree (forest, if disconnected) of g
// under the canonical edge order and returns the chosen edge IDs sorted
// ascending, together with the total weight.
func Kruskal(g *Graph) (ids []int, weight float64) {
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return EdgeLess(g, order[i], order[j]) })
	uf := NewUnionFind(g.N())
	for _, id := range order {
		e := g.Edge(id)
		if uf.Union(e.U, e.V) {
			ids = append(ids, id)
			weight += e.W
		}
	}
	sort.Ints(ids)
	return ids, weight
}

// Prim computes the MST edge IDs of a connected graph under the canonical
// order using a lazy binary heap. It returns an error if g is disconnected.
func Prim(g *Graph) (ids []int, weight float64, err error) {
	if g.N() == 0 {
		return nil, 0, nil
	}
	in := make([]bool, g.N())
	h := &edgeHeap{g: g}
	visit := func(v int) {
		in[v] = true
		for _, a := range g.Adj(v) {
			if !in[a.To] {
				h.push(a.ID)
			}
		}
	}
	visit(0)
	for h.len() > 0 {
		id := h.pop()
		e := g.Edge(id)
		var nv int
		switch {
		case in[e.U] && in[e.V]:
			continue
		case in[e.U]:
			nv = e.V
		default:
			nv = e.U
		}
		ids = append(ids, id)
		weight += e.W
		visit(nv)
	}
	for v := 0; v < g.N(); v++ {
		if !in[v] {
			return nil, 0, fmt.Errorf("graph.Prim: %w", ErrDisconnected)
		}
	}
	sort.Ints(ids)
	return ids, weight, nil
}

// edgeHeap is a binary min-heap of edge IDs ordered by EdgeLess.
type edgeHeap struct {
	g   *Graph
	ids []int
}

func (h *edgeHeap) len() int { return len(h.ids) }

func (h *edgeHeap) push(id int) {
	h.ids = append(h.ids, id)
	i := len(h.ids) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !EdgeLess(h.g, h.ids[i], h.ids[p]) {
			break
		}
		h.ids[i], h.ids[p] = h.ids[p], h.ids[i]
		i = p
	}
}

func (h *edgeHeap) pop() int {
	top := h.ids[0]
	last := len(h.ids) - 1
	h.ids[0] = h.ids[last]
	h.ids = h.ids[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.ids) && EdgeLess(h.g, h.ids[l], h.ids[small]) {
			small = l
		}
		if r < len(h.ids) && EdgeLess(h.g, h.ids[r], h.ids[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.ids[i], h.ids[small] = h.ids[small], h.ids[i]
		i = small
	}
	return top
}

// BoruvkaPhases runs sequential Borůvka's algorithm and returns the MST edge
// IDs (sorted), the total weight, and the number of phases taken. It is the
// sequential reference for the distributed Borůvka in internal/mst; the phase
// count is the quantity multiplied by shortcut quality in Theorem 1's round
// bound.
func BoruvkaPhases(g *Graph) (ids []int, weight float64, phases int) {
	uf := NewUnionFind(g.N())
	chosen := make([]bool, g.M())
	best := make([]int, g.N()) // component rep -> best outgoing edge ID, -1 if none
	for uf.Count() > 1 {
		for i := range best {
			best[i] = -1
		}
		found := false
		for id := 0; id < g.M(); id++ {
			e := g.Edge(id)
			ru, rv := uf.Find(e.U), uf.Find(e.V)
			if ru == rv {
				continue
			}
			found = true
			for _, r := range [2]int{ru, rv} {
				if b := best[r]; b == -1 || EdgeLess(g, id, b) {
					best[r] = id
				}
			}
		}
		if !found {
			break // disconnected: remaining components have no outgoing edges
		}
		merged := false
		for _, id := range best {
			if id == -1 {
				continue
			}
			e := g.Edge(id)
			if uf.Union(e.U, e.V) {
				merged = true
			}
			if !chosen[id] {
				chosen[id] = true
				weight += e.W
			}
		}
		phases++
		if !merged {
			break
		}
	}
	ids = make([]int, 0, g.N()-1)
	for id, c := range chosen {
		if c {
			ids = append(ids, id)
		}
	}
	return ids, weight, phases
}

// TreeFromEdgeIDs builds a rooted Tree from a set of edge IDs that must form
// a spanning tree of g.
func TreeFromEdgeIDs(g *Graph, ids []int, root int) (*Tree, error) {
	if len(ids) != g.N()-1 {
		return nil, fmt.Errorf("graph.TreeFromEdgeIDs: %d edges cannot span %d vertices", len(ids), g.N())
	}
	adj := make([][]Arc, g.N())
	for _, id := range ids {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], Arc{To: e.V, ID: id})
		adj[e.V] = append(adj[e.V], Arc{To: e.U, ID: id})
	}
	parent := make([]int, g.N())
	parentEdge := make([]int, g.N())
	for i := range parent {
		parent[i] = -2 // unvisited marker
		parentEdge[i] = -1
	}
	parent[root] = -1
	queue := []int{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range adj[v] {
			if parent[a.To] == -2 {
				parent[a.To] = v
				parentEdge[a.To] = a.ID
				queue = append(queue, a.To)
			}
		}
	}
	for v, p := range parent {
		if p == -2 {
			return nil, fmt.Errorf("graph.TreeFromEdgeIDs: vertex %d unreachable: %w", v, ErrDisconnected)
		}
	}
	return TreeFromParents(g, root, parent, parentEdge)
}

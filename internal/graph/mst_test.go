package graph

import (
	"math/rand"
	"testing"
)

func TestKruskalSimple(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1) // 0
	g.AddEdge(1, 2, 2) // 1
	g.AddEdge(2, 3, 3) // 2
	g.AddEdge(3, 0, 4) // 3
	g.AddEdge(0, 2, 5) // 4
	ids, w := Kruskal(g)
	if w != 6 {
		t.Fatalf("weight %v want 6", w)
	}
	want := []int{0, 1, 2}
	if len(ids) != 3 {
		t.Fatalf("ids %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids %v want %v", ids, want)
		}
	}
}

func TestKruskalTieBreakByID(t *testing.T) {
	// Two parallel weight-1 edges: the lower ID must win.
	g := New(2)
	g.AddEdge(0, 1, 1) // 0
	g.AddEdge(0, 1, 1) // 1
	ids, _ := Kruskal(g)
	if len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("ids %v want [0]", ids)
	}
}

func TestPrimMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(80)
		g := randomConnected(rng, n, rng.Intn(3*n))
		kIDs, kW := Kruskal(g)
		pIDs, pW, err := Prim(g)
		if err != nil {
			t.Fatal(err)
		}
		if diff := kW - pW; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("weights differ: kruskal %v prim %v", kW, pW)
		}
		if len(kIDs) != len(pIDs) {
			t.Fatalf("edge counts differ")
		}
		for i := range kIDs {
			if kIDs[i] != pIDs[i] {
				t.Fatalf("trees differ at %d: %v vs %v", i, kIDs, pIDs)
			}
		}
	}
}

func TestPrimDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if _, _, err := Prim(g); err == nil {
		t.Fatal("expected disconnected error")
	}
}

func TestBoruvkaMatchesKruskal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(80)
		g := randomConnected(rng, n, rng.Intn(3*n))
		kIDs, kW := Kruskal(g)
		bIDs, bW, phases := BoruvkaPhases(g)
		if diff := kW - bW; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("weights differ: kruskal %v boruvka %v", kW, bW)
		}
		if len(kIDs) != len(bIDs) {
			t.Fatalf("edge counts differ: %d vs %d", len(kIDs), len(bIDs))
		}
		for i := range kIDs {
			if kIDs[i] != bIDs[i] {
				t.Fatalf("trees differ")
			}
		}
		// Borůvka halves the number of components per phase.
		lg := 0
		for 1<<lg < n {
			lg++
		}
		if phases > lg+1 {
			t.Fatalf("n=%d: %d phases exceeds log bound %d", n, phases, lg+1)
		}
	}
}

func TestBoruvkaDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 2)
	ids, w, _ := BoruvkaPhases(g)
	if len(ids) != 2 || w != 3 {
		t.Fatalf("forest ids=%v w=%v", ids, w)
	}
}

func TestTreeFromEdgeIDs(t *testing.T) {
	g := mustGrid(t, 3, 3)
	ids, _ := Kruskal(g)
	tr, err := TreeFromEdgeIDs(g, ids, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root != 4 || tr.N() != 9 {
		t.Fatalf("root %d n %d", tr.Root, tr.N())
	}
	// Wrong edge count rejected.
	if _, err := TreeFromEdgeIDs(g, ids[:5], 0); err == nil {
		t.Fatal("expected error for too few edges")
	}
	// Non-spanning edge set rejected.
	bad := append([]int(nil), ids...)
	bad[0] = bad[1] // duplicate edge: can't span
	if _, err := TreeFromEdgeIDs(g, bad, 0); err == nil {
		t.Fatal("expected error for non-spanning set")
	}
}

func TestMSTWeightInvariantUnderPermutation(t *testing.T) {
	// Property: relabeling weights by a positive monotone map preserves the
	// MST edge set (with distinct weights).
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(40)
		g := randomConnected(rng, n, 2*n)
		// Make weights distinct.
		for id := 0; id < g.M(); id++ {
			g.SetWeight(id, float64(id)+rng.Float64()*0.5)
		}
		ids1, _ := Kruskal(g)
		h := g.Clone()
		for id := 0; id < h.M(); id++ {
			w := h.Edge(id).W
			h.SetWeight(id, w*w+3) // strictly monotone for w >= 0
		}
		ids2, _ := Kruskal(h)
		if len(ids1) != len(ids2) {
			t.Fatal("MST size changed under monotone reweighting")
		}
		for i := range ids1 {
			if ids1[i] != ids2[i] {
				t.Fatal("MST edges changed under monotone reweighting")
			}
		}
	}
}

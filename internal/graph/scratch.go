package graph

import "sync"

// Scratch is a reusable arena of epoch-stamped dense arrays used by the hot
// accounting paths (shortcut measurement, partition clipping, induced
// subgraphs) in place of throwaway map[int]bool / map[int]int values. A slot
// is "set" only if its stamp equals the current epoch, so Reset is O(1): it
// bumps the epoch. The value array is only written for slots that are
// stamped, so stale values are never observed.
//
// A Scratch indexes both vertices and edge IDs of the graph it was sized
// for (capacity is max(N, M)). It is not safe for concurrent use; acquire
// one per goroutine via (*Graph).AcquireScratch.
type Scratch struct {
	stamp []uint32
	val   []int32
	epoch uint32
}

// NewScratch returns a scratch arena with n slots.
func NewScratch(n int) *Scratch {
	return &Scratch{stamp: make([]uint32, n), val: make([]int32, n), epoch: 1}
}

// Len returns the slot count.
func (s *Scratch) Len() int { return len(s.stamp) }

// Grow ensures at least n slots, preserving the current epoch's contents.
func (s *Scratch) Grow(n int) {
	if n <= len(s.stamp) {
		return
	}
	ns := make([]uint32, n)
	copy(ns, s.stamp)
	nv := make([]int32, n)
	copy(nv, s.val)
	s.stamp, s.val = ns, nv
}

// Reset clears all slots in O(1) by advancing the epoch. On the (rare)
// epoch wraparound it zeroes the stamp array so stale stamps cannot alias.
func (s *Scratch) Reset() {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
}

// Has reports whether slot i was set since the last Reset.
func (s *Scratch) Has(i int) bool { return s.stamp[i] == s.epoch }

// Visit marks slot i and reports whether it was unset before (a "first
// visit"). The slot's value is set to 0 on first visit.
func (s *Scratch) Visit(i int) bool {
	if s.stamp[i] == s.epoch {
		return false
	}
	s.stamp[i] = s.epoch
	s.val[i] = 0
	return true
}

// Set stores v in slot i, marking it.
func (s *Scratch) Set(i int, v int32) {
	s.stamp[i] = s.epoch
	s.val[i] = v
}

// Get returns the value of slot i and whether it is set.
func (s *Scratch) Get(i int) (int32, bool) {
	if s.stamp[i] != s.epoch {
		return 0, false
	}
	return s.val[i], true
}

// GetOr returns the value of slot i, or def if unset.
func (s *Scratch) GetOr(i int, def int32) int32 {
	if s.stamp[i] != s.epoch {
		return def
	}
	return s.val[i]
}

// Add increments slot i by delta (from 0 if unset) and returns the new value.
func (s *Scratch) Add(i int, delta int32) int32 {
	if s.stamp[i] != s.epoch {
		s.stamp[i] = s.epoch
		s.val[i] = delta
		return delta
	}
	s.val[i] += delta
	return s.val[i]
}

// scratchPool shares arenas process-wide: arenas only ever grow, resets are
// O(1), and pooling globally (rather than per graph) means the many small
// short-lived graphs built by generators hit a warm pool instead of each
// paying a cold allocation.
var scratchPool = sync.Pool{New: func() any { return NewScratch(0) }}

// AcquireScratch returns a scratch arena with at least max(N, M) slots,
// reset and ready to use. Callers must return it with ReleaseScratch. Safe
// for concurrent use (the pool is thread-safe; the returned arena is not).
func (g *Graph) AcquireScratch() *Scratch {
	need := g.N()
	if g.M() > need {
		need = g.M()
	}
	s := scratchPool.Get().(*Scratch)
	s.Grow(need)
	s.Reset()
	return s
}

// ReleaseScratch returns a scratch arena to the shared pool for reuse.
func (g *Graph) ReleaseScratch(s *Scratch) { scratchPool.Put(s) }

package graph

import (
	"math/rand"
	"testing"
)

// TestSimplifyParallelClasses is the regression test for the single-lookup
// Simplify rewrite: explicit parallel-edge classes with known winners.
func TestSimplifyParallelClasses(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 5) // id 0: class {0,1}, loses
	g.AddEdge(2, 3, 7) // id 1: class {2,3}, loses
	g.AddEdge(1, 0, 2) // id 2: class {0,1} reversed orientation, wins
	g.AddEdge(3, 2, 9) // id 3: class {2,3}, loses
	g.AddEdge(2, 3, 1) // id 4: class {2,3}, wins
	g.AddEdge(0, 4, 3) // id 5: singleton class
	g.AddEdge(0, 1, 2) // id 6: ties id 2; earliest ID must win

	s, kept := g.Simplify()
	if s.M() != 3 {
		t.Fatalf("simplified M = %d, want 3", s.M())
	}
	// kept is deterministic: classes in first-occurrence order, each class
	// keeping its lightest (earliest on ties) edge.
	want := []int{2, 4, 5}
	if len(kept) != len(want) {
		t.Fatalf("kept = %v, want %v", kept, want)
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Fatalf("kept = %v, want %v", kept, want)
		}
	}
	if w := s.Edge(s.FindEdge(0, 1)).W; w != 2 {
		t.Fatalf("class {0,1} kept weight %v, want 2", w)
	}
	if w := s.Edge(s.FindEdge(2, 3)).W; w != 1 {
		t.Fatalf("class {2,3} kept weight %v, want 1", w)
	}
	if w := s.Edge(s.FindEdge(0, 4)).W; w != 3 {
		t.Fatalf("class {0,4} kept weight %v, want 3", w)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSimplifyMatchesMapReference cross-checks Simplify against a map-based
// oracle on random multigraphs.
func TestSimplifyMatchesMapReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(10)
		g := New(n)
		m := rng.Intn(40)
		for i := 0; i < m; i++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			g.AddEdge(u, v, float64(rng.Intn(8)))
		}
		s, kept := g.Simplify()
		// Oracle: lightest edge (earliest on ties) per unordered pair.
		type key struct{ a, b int }
		best := map[key]int{}
		for id := 0; id < g.M(); id++ {
			e := g.Edge(id)
			a, b := e.U, e.V
			if a > b {
				a, b = b, a
			}
			k := key{a, b}
			if prev, ok := best[k]; !ok || e.W < g.Edge(prev).W {
				best[k] = id
			}
		}
		if len(kept) != len(best) || s.M() != len(best) {
			t.Fatalf("trial %d: kept %d classes, want %d", trial, len(kept), len(best))
		}
		seen := map[int]bool{}
		for _, id := range kept {
			seen[id] = true
		}
		for k, id := range best {
			if !seen[id] {
				t.Fatalf("trial %d: class %v winner %d missing from kept %v", trial, k, id, kept)
			}
		}
	}
}

// TestSimplifyPresized ensures the output graph carries no growth slack in
// its edge list (the pre-sizing contract).
func TestSimplifyPresized(t *testing.T) {
	g := New(4)
	for i := 0; i < 6; i++ {
		g.AddEdge(0, 1, float64(i))
		g.AddEdge(2, 3, float64(i))
	}
	s, _ := g.Simplify()
	if got := cap(s.edges); got > 2 {
		t.Fatalf("simplified edge capacity %d for 2 edges; output not pre-sized", got)
	}
}

package graph

import (
	"fmt"
	"math"
)

// SPResult holds single-source shortest-path distances over edge weights.
type SPResult struct {
	Source     int
	Dist       []float64 // weighted distance from source; +Inf if unreachable
	Hops       []int     // fewest edges among minimum-weight paths; -1 if unreachable
	Parent     []int     // shortest-path-tree parent; -1 for source/unreachable
	ParentEdge []int     // edge ID to parent; -1 for source/unreachable
}

// Dijkstra computes exact single-source shortest paths with a binary heap:
// the sequential oracle the distributed (1+ε)-approximate SSSP is validated
// against. All edge weights must be non-negative. Hops records, per vertex,
// the fewest edges over all minimum-weight paths — exactly the number of
// synchronous rounds distributed Bellman–Ford needs to settle that vertex,
// which is what the naive-baseline round accounting in internal/sssp
// charges.
func Dijkstra(g *Graph, src int) (*SPResult, error) {
	if src < 0 || src >= g.N() {
		return nil, fmt.Errorf("graph.Dijkstra: source %d out of range for n=%d", src, g.N())
	}
	for id := 0; id < g.M(); id++ {
		if w := g.Edge(id).W; w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("graph.Dijkstra: edge %d has weight %v", id, w)
		}
	}
	n := g.N()
	r := &SPResult{
		Source:     src,
		Dist:       make([]float64, n),
		Hops:       make([]int, n),
		Parent:     make([]int, n),
		ParentEdge: make([]int, n),
	}
	for v := 0; v < n; v++ {
		r.Dist[v] = math.Inf(1)
		r.Hops[v] = -1
		r.Parent[v] = -1
		r.ParentEdge[v] = -1
	}
	r.Dist[src] = 0
	r.Hops[src] = 0
	h := &spHeap{dist: r.Dist, hops: r.Hops}
	h.push(src)
	done := make([]bool, n)
	for h.len() > 0 {
		v := h.pop()
		if done[v] {
			continue
		}
		done[v] = true
		for _, a := range g.Adj(v) {
			cand := r.Dist[v] + g.Edge(a.ID).W
			candHops := r.Hops[v] + 1
			if cand < r.Dist[a.To] || (cand == r.Dist[a.To] && candHops < r.Hops[a.To]) {
				r.Dist[a.To] = cand
				r.Hops[a.To] = candHops
				r.Parent[a.To] = v
				r.ParentEdge[a.To] = a.ID
				h.push(a.To)
			}
		}
	}
	return r, nil
}

// MinDistHeap is a binary min-heap of vertex IDs keyed by an external
// distance slice, with lazy deletion (callers skip stale pops via a done
// set). It is the shared substrate of the relaxation fixed-point oracles
// in congest and sssp, which must stay algorithmically in lock-step for
// their bit-identical-distances guarantee.
//
// Each entry snapshots its key at Push time. Keying entries by the live
// distance slice instead would silently break the heap invariant whenever
// a distance decreases after insertion — a stale entry's key shrinks in
// place, Pop can then surface a non-minimal vertex, and a done-marking
// Dijkstra discards the improvement that arrives after the premature pop.
// That corruption needs many initially-finite entries to bite, which is
// exactly the all-finite init of a mid-pipeline relaxation phase.
type MinDistHeap struct {
	dist []float64
	vs   []int32
	keys []float64
}

// Reset points the heap at a distance slice and empties it, keeping the
// backing storage (so a warm reuse allocates nothing).
func (h *MinDistHeap) Reset(dist []float64) {
	h.dist = dist
	h.vs = h.vs[:0]
	h.keys = h.keys[:0]
}

// Len returns the number of (possibly stale) entries.
func (h *MinDistHeap) Len() int { return len(h.vs) }

// Push inserts vertex v keyed by its distance at insertion time.
func (h *MinDistHeap) Push(v int) {
	h.vs = append(h.vs, int32(v))
	h.keys = append(h.keys, h.dist[v])
	i := len(h.vs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.keys[i] >= h.keys[p] {
			break
		}
		h.vs[i], h.vs[p] = h.vs[p], h.vs[i]
		h.keys[i], h.keys[p] = h.keys[p], h.keys[i]
		i = p
	}
}

// Pop removes and returns a vertex of minimum key.
func (h *MinDistHeap) Pop() int {
	top := h.vs[0]
	last := len(h.vs) - 1
	h.vs[0] = h.vs[last]
	h.keys[0] = h.keys[last]
	h.vs = h.vs[:last]
	h.keys = h.keys[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.keys[l] < h.keys[small] {
			small = l
		}
		if r < last && h.keys[r] < h.keys[small] {
			small = r
		}
		if small == i {
			break
		}
		h.vs[i], h.vs[small] = h.vs[small], h.vs[i]
		h.keys[i], h.keys[small] = h.keys[small], h.keys[i]
		i = small
	}
	return int(top)
}

// spHeap is a binary min-heap of vertices keyed lexicographically by
// (dist, hops). Stale entries are skipped at pop (lazy deletion), matching
// the textbook decrease-key-free Dijkstra.
type spHeap struct {
	dist []float64
	hops []int
	vs   []int32
}

func (h *spHeap) len() int { return len(h.vs) }

func (h *spHeap) less(a, b int32) bool {
	if h.dist[a] != h.dist[b] {
		return h.dist[a] < h.dist[b]
	}
	return h.hops[a] < h.hops[b]
}

func (h *spHeap) push(v int) {
	h.vs = append(h.vs, int32(v))
	i := len(h.vs) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.vs[i], h.vs[p]) {
			break
		}
		h.vs[i], h.vs[p] = h.vs[p], h.vs[i]
		i = p
	}
}

func (h *spHeap) pop() int {
	top := h.vs[0]
	last := len(h.vs) - 1
	h.vs[0] = h.vs[last]
	h.vs = h.vs[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.less(h.vs[l], h.vs[small]) {
			small = l
		}
		if r < last && h.less(h.vs[r], h.vs[small]) {
			small = r
		}
		if small == i {
			break
		}
		h.vs[i], h.vs[small] = h.vs[small], h.vs[i]
		i = small
	}
	return int(top)
}

package graph

import (
	"math"
	"math/rand"
	"testing"
)

// refBellmanFord runs synchronous (Jacobi) Bellman–Ford and records, per
// vertex, the first round at which it reached its final distance.
func refBellmanFord(g *Graph, src int) (dist []float64, settled []int) {
	n := g.N()
	dist = make([]float64, n)
	for v := range dist {
		dist[v] = math.Inf(1)
	}
	dist[src] = 0
	next := make([]float64, n)
	settled = make([]int, n)
	for round := 1; round <= n; round++ {
		copy(next, dist)
		for id := 0; id < g.M(); id++ {
			e := g.Edge(id)
			if c := dist[e.U] + e.W; c < next[e.V] {
				next[e.V] = c
			}
			if c := dist[e.V] + e.W; c < next[e.U] {
				next[e.U] = c
			}
		}
		changed := false
		for v := range dist {
			if next[v] < dist[v] {
				dist[v] = next[v]
				settled[v] = round
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return dist, settled
}

func randomWeighted(n, m int, rng *rand.Rand) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(rng.Intn(i), i, 0.25+rng.Float64())
	}
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.AddEdge(u, v, 0.25+rng.Float64()*4)
		}
	}
	return g
}

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := randomWeighted(30+rng.Intn(20), 90, rng)
		src := rng.Intn(g.N())
		r, err := Dijkstra(g, src)
		if err != nil {
			t.Fatal(err)
		}
		want, settled := refBellmanFord(g, src)
		for v := 0; v < g.N(); v++ {
			if math.Abs(r.Dist[v]-want[v]) > 1e-9 {
				t.Fatalf("vertex %d: dijkstra %v vs bellman-ford %v", v, r.Dist[v], want[v])
			}
			// Hops is the settle round of synchronous Bellman–Ford. Float
			// addition order can differ between the two algorithms, so only
			// check when the distances agree bit-exactly (the common case).
			if r.Dist[v] == want[v] && r.Hops[v] != settled[v] {
				t.Fatalf("vertex %d: hops %d vs settle round %d", v, r.Hops[v], settled[v])
			}
			if v != src && r.Parent[v] != -1 {
				e := g.Edge(r.ParentEdge[v])
				if math.Abs(r.Dist[v]-(r.Dist[r.Parent[v]]+e.W)) > 1e-9 {
					t.Fatalf("vertex %d: parent edge does not close the distance", v)
				}
			}
		}
	}
}

func TestDijkstraErrors(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, -1)
	if _, err := Dijkstra(g, 0); err == nil {
		t.Fatal("accepted negative weight")
	}
	if _, err := Dijkstra(New(2), 5); err == nil {
		t.Fatal("accepted out-of-range source")
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 2)
	r, err := Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.Dist[2], 1) || r.Hops[2] != -1 || r.Parent[2] != -1 {
		t.Fatalf("unreachable vertex misreported: %+v", r)
	}
	if r.Dist[1] != 2 || r.Hops[1] != 1 {
		t.Fatalf("direct neighbor misreported")
	}
}

// The fixed-point oracles (congest's channelFixedPoint, sssp's intra-phase
// Dijkstra) run done-marking Dijkstra over MinDistHeap starting from an
// all-finite distance vector. That is only correct if heap order survives
// key decreases after insertion — i.e., if entries snapshot their key at
// Push time. A heap keyed by the live distance slice corrupts silently on
// exactly this access pattern: a stale entry's key shrinks in place, Pop
// surfaces a non-minimal vertex, it is marked done, and the improvement
// that arrives afterwards is discarded. This regression pins the scenario:
// a cycle with a heavy apex (long rim-routed shortest paths) relaxed from
// an apex-routed all-finite init, checked bit-exactly against the
// exhaustive Bellman-Ford fixed point.
func TestMinDistHeapAllFiniteInitDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		const n = 96
		g := New(n + 1)
		apex := n
		for v := 0; v < n; v++ {
			g.AddEdge(v, (v+1)%n, 1+rng.Float64())
			g.AddEdge(v, apex, float64(n)*(1+rng.Float64()))
		}
		// All-finite init mimicking a mid-pipeline phase: every vertex
		// already holds its apex-routed estimate.
		init := make([]float64, g.N())
		for v := 0; v < n; v++ {
			init[v] = g.Edge(2*v + 1).W
		}
		init[apex] = 0
		// Done-marking Dijkstra over MinDistHeap — the oracles' pattern.
		dist := append([]float64(nil), init...)
		var h MinDistHeap
		h.Reset(dist)
		for v := range dist {
			h.Push(v)
		}
		done := make([]bool, g.N())
		for h.Len() > 0 {
			v := h.Pop()
			if done[v] {
				continue
			}
			done[v] = true
			for _, a := range g.Adj(v) {
				if cand := dist[v] + g.Edge(a.ID).W; cand < dist[a.To] {
					dist[a.To] = cand
					h.Push(a.To)
				}
			}
		}
		// Exhaustive Bellman-Ford fixed point: same left-folded path sums,
		// so the comparison is bit-exact.
		want := append([]float64(nil), init...)
		for changed := true; changed; {
			changed = false
			for v := 0; v < g.N(); v++ {
				for _, a := range g.Adj(v) {
					if cand := want[v] + g.Edge(a.ID).W; cand < want[a.To] {
						want[a.To] = cand
						changed = true
					}
				}
			}
		}
		for v := 0; v < g.N(); v++ {
			if dist[v] != want[v] {
				t.Fatalf("trial %d vertex %d: heap Dijkstra %v, Bellman-Ford fixed point %v", trial, v, dist[v], want[v])
			}
		}
	}
}

package graph

import "fmt"

// Tree is a rooted spanning tree (or forest overlay) of an underlying graph.
// Parent pointers are expressed as vertex indices plus the graph edge ID used
// to reach the parent, so tree edges remain identified with graph edges.
type Tree struct {
	G          *Graph
	Root       int
	Parent     []int // -1 at root
	ParentEdge []int // graph edge ID; -1 at root
	Depth      []int
	Order      []int   // vertices in top-down (BFS) order; Order[0] == Root
	Children   [][]int // child lists
	height     int
}

// BFSTree builds the BFS spanning tree of g rooted at root. g must be
// connected.
func BFSTree(g *Graph, root int) (*Tree, error) {
	r := BFS(g, root)
	if len(r.Order) != g.N() {
		return nil, fmt.Errorf("graph.BFSTree: %w", ErrDisconnected)
	}
	t := &Tree{
		G:          g,
		Root:       root,
		Parent:     r.Parent,
		ParentEdge: r.ParentEdge,
		Depth:      r.Dist,
		Order:      r.Order,
		Children:   childLists(r.Parent, r.Order),
	}
	for _, v := range t.Order {
		if t.Depth[v] > t.height {
			t.height = t.Depth[v]
		}
	}
	return t, nil
}

// childLists builds per-vertex child lists from parent pointers as slices of
// one backing array, filled in the order vertices appear in order (nil means
// ascending vertex index).
func childLists(parent, order []int) [][]int {
	n := len(parent)
	deg := make([]int32, n)
	for _, p := range parent {
		if p >= 0 {
			deg[p]++
		}
	}
	children := make([][]int, n)
	store := make([]int, 0, n)
	for v := 0; v < n; v++ {
		base := len(store)
		store = store[:base+int(deg[v])]
		children[v] = store[base : base : base+int(deg[v])]
	}
	if order == nil {
		for v := 0; v < n; v++ {
			if p := parent[v]; p >= 0 {
				children[p] = append(children[p], v)
			}
		}
	} else {
		for _, v := range order {
			if p := parent[v]; p >= 0 {
				children[p] = append(children[p], v)
			}
		}
	}
	return children
}

// TreeFromParents constructs a Tree from explicit parent and parent-edge
// arrays. It validates that the arrays describe a spanning tree of g rooted
// at root.
func TreeFromParents(g *Graph, root int, parent, parentEdge []int) (*Tree, error) {
	n := g.N()
	if len(parent) != n || len(parentEdge) != n {
		return nil, fmt.Errorf("graph.TreeFromParents: array length mismatch (n=%d)", n)
	}
	if parent[root] != -1 {
		return nil, fmt.Errorf("graph.TreeFromParents: root %d has parent %d", root, parent[root])
	}
	store := make([]int, 3*n) // Parent, ParentEdge, Depth share one allocation
	t := &Tree{
		G:          g,
		Root:       root,
		Parent:     store[0:n:n],
		ParentEdge: store[n : 2*n : 2*n],
		Depth:      store[2*n : 3*n : 3*n],
	}
	copy(t.Parent, parent)
	copy(t.ParentEdge, parentEdge)
	for v := 0; v < n; v++ {
		if v == root {
			continue
		}
		p := parent[v]
		if p < 0 || p >= n {
			return nil, fmt.Errorf("graph.TreeFromParents: vertex %d has invalid parent %d", v, p)
		}
		id := parentEdge[v]
		if id < 0 || id >= g.M() {
			return nil, fmt.Errorf("graph.TreeFromParents: vertex %d has invalid parent edge %d", v, id)
		}
		e := g.Edge(id)
		if !((e.U == v && e.V == p) || (e.V == v && e.U == p)) {
			return nil, fmt.Errorf("graph.TreeFromParents: edge %d does not join %d and parent %d", id, v, p)
		}
	}
	t.Children = childLists(t.Parent, nil)
	// Topological order from root; also detects cycles/disconnection.
	t.Order = make([]int, 0, n)
	t.Order = append(t.Order, root)
	for head := 0; head < len(t.Order); head++ {
		v := t.Order[head]
		if v != root {
			t.Depth[v] = t.Depth[parent[v]] + 1
			if t.Depth[v] > t.height {
				t.height = t.Depth[v]
			}
		}
		t.Order = append(t.Order, t.Children[v]...)
	}
	if len(t.Order) != n {
		return nil, fmt.Errorf("graph.TreeFromParents: parent pointers do not span the graph (reached %d of %d)", len(t.Order), n)
	}
	return t, nil
}

// Height returns the maximum depth of any vertex (the tree's radius from the
// root). The tree's diameter is at most twice this value.
func (t *Tree) Height() int { return t.height }

// N returns the number of vertices in the tree.
func (t *Tree) N() int { return len(t.Parent) }

// IsTreeEdge reports whether graph edge id is used by the tree.
func (t *Tree) IsTreeEdge(id int) bool {
	e := t.G.Edge(id)
	return t.ParentEdge[e.U] == id || t.ParentEdge[e.V] == id
}

// TreeEdgeIDs returns the IDs of all tree edges, one per non-root vertex.
func (t *Tree) TreeEdgeIDs() []int {
	out := make([]int, 0, t.N()-1)
	for v := 0; v < t.N(); v++ {
		if t.ParentEdge[v] != -1 {
			out = append(out, t.ParentEdge[v])
		}
	}
	return out
}

// PathToRoot returns the vertices from v up to the root, inclusive.
func (t *Tree) PathToRoot(v int) []int {
	var path []int
	for v != -1 {
		path = append(path, v)
		v = t.Parent[v]
	}
	return path
}

// EdgePathToRoot returns the edge IDs on the path from v up to the root.
func (t *Tree) EdgePathToRoot(v int) []int {
	var ids []int
	for t.Parent[v] != -1 {
		ids = append(ids, t.ParentEdge[v])
		v = t.Parent[v]
	}
	return ids
}

// SubtreeSizes returns the size of each vertex's subtree.
func (t *Tree) SubtreeSizes() []int {
	size := make([]int, t.N())
	for i := len(t.Order) - 1; i >= 0; i-- {
		v := t.Order[i]
		size[v]++
		if p := t.Parent[v]; p != -1 {
			size[p] += size[v]
		}
	}
	return size
}

// LCA answers lowest-common-ancestor queries on a Tree in O(log n) time after
// O(n log n) preprocessing (binary lifting).
type LCA struct {
	t      *Tree
	up     [][]int // up[k][v] = 2^k-th ancestor of v, or -1
	levels int
}

// NewLCA preprocesses t for LCA queries.
func NewLCA(t *Tree) *LCA {
	n := t.N()
	levels := 1
	for (1 << levels) < n {
		levels++
	}
	l := &LCA{t: t, levels: levels}
	l.up = make([][]int, levels)
	l.up[0] = append([]int(nil), t.Parent...)
	for k := 1; k < levels; k++ {
		l.up[k] = make([]int, n)
		for v := 0; v < n; v++ {
			mid := l.up[k-1][v]
			if mid == -1 {
				l.up[k][v] = -1
			} else {
				l.up[k][v] = l.up[k-1][mid]
			}
		}
	}
	return l
}

// Ancestor returns the d-th ancestor of v, or -1 if d exceeds v's depth.
func (l *LCA) Ancestor(v, d int) int {
	if d > l.t.Depth[v] {
		return -1
	}
	for k := 0; k < l.levels && v != -1; k++ {
		if d&(1<<k) != 0 {
			v = l.up[k][v]
		}
	}
	return v
}

// Query returns the lowest common ancestor of u and v.
func (l *LCA) Query(u, v int) int {
	t := l.t
	if t.Depth[u] < t.Depth[v] {
		u, v = v, u
	}
	u = l.Ancestor(u, t.Depth[u]-t.Depth[v])
	if u == v {
		return u
	}
	for k := l.levels - 1; k >= 0; k-- {
		if l.up[k][u] != l.up[k][v] {
			u = l.up[k][u]
			v = l.up[k][v]
		}
	}
	return t.Parent[u]
}

// Dist returns the hop distance between u and v along the tree.
func (l *LCA) Dist(u, v int) int {
	a := l.Query(u, v)
	return l.t.Depth[u] + l.t.Depth[v] - 2*l.t.Depth[a]
}

// HLD is a heavy-light decomposition of a rooted tree: a partition of the
// vertices into vertex-disjoint downward chains such that every root-leaf
// path meets O(log n) chains. Used both for decomposition-tree folding
// (paper, proof of Theorem 7) and as a general tree utility.
type HLD struct {
	t     *Tree
	Head  []int // chain head (topmost vertex) of each vertex's chain
	Heavy []int // heavy child of each vertex, or -1
	Pos   []int // position in a global segment ordering (chains contiguous)
}

// NewHLD computes the heavy-light decomposition of t. The heavy child of a
// vertex is its child with the largest subtree.
func NewHLD(t *Tree) *HLD {
	n := t.N()
	h := &HLD{
		t:     t,
		Head:  make([]int, n),
		Heavy: make([]int, n),
		Pos:   make([]int, n),
	}
	size := t.SubtreeSizes()
	for v := 0; v < n; v++ {
		h.Heavy[v] = -1
		best := -1
		for _, c := range t.Children[v] {
			if size[c] > best {
				best = size[c]
				h.Heavy[v] = c
			}
		}
	}
	pos := 0
	// Iterative DFS that walks heavy paths first so chains are contiguous.
	type frame struct{ v, head int }
	stack := []frame{{t.Root, t.Root}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// Walk down the heavy chain starting at f.v.
		for v := f.v; v != -1; v = h.Heavy[v] {
			h.Head[v] = f.head
			h.Pos[v] = pos
			pos++
			for _, c := range t.Children[v] {
				if c != h.Heavy[v] {
					stack = append(stack, frame{c, c})
				}
			}
			if h.Heavy[v] != -1 {
				f.head = h.Head[v] // same chain continues
			}
		}
	}
	return h
}

// ChainChanges returns the number of distinct chains met on the path from v
// to the root. The heavy-light guarantee is that this is O(log n).
func (h *HLD) ChainChanges(v int) int {
	count := 0
	for v != -1 {
		count++
		v = h.t.Parent[h.Head[v]]
	}
	return count
}

// Chains returns all chains as top-down vertex lists.
func (h *HLD) Chains() [][]int {
	byHead := make(map[int][]int)
	for _, v := range h.t.Order { // top-down order keeps chains sorted
		byHead[h.Head[v]] = append(byHead[h.Head[v]], v)
	}
	var heads []int
	for _, v := range h.t.Order {
		if h.Head[v] == v {
			heads = append(heads, v)
		}
	}
	out := make([][]int, 0, len(heads))
	for _, hd := range heads {
		out = append(out, byHead[hd])
	}
	return out
}

package graph

import (
	"math/rand"
	"testing"
)

func TestBFSTreeProperties(t *testing.T) {
	g := mustGrid(t, 5, 6)
	tr, err := BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root != 0 || tr.N() != 30 {
		t.Fatalf("root=%d n=%d", tr.Root, tr.N())
	}
	if tr.Height() != 4+5 {
		t.Fatalf("height %d want 9", tr.Height())
	}
	if len(tr.TreeEdgeIDs()) != 29 {
		t.Fatalf("tree edges %d", len(tr.TreeEdgeIDs()))
	}
	// Every tree edge must be a real graph edge joining child and parent.
	for v := 0; v < tr.N(); v++ {
		if v == tr.Root {
			continue
		}
		if !tr.IsTreeEdge(tr.ParentEdge[v]) {
			t.Fatalf("parent edge of %d not recognized", v)
		}
	}
	// Non-tree edge is not a tree edge.
	for id := 0; id < g.M(); id++ {
		used := false
		for v := 0; v < g.N(); v++ {
			if tr.ParentEdge[v] == id {
				used = true
			}
		}
		if tr.IsTreeEdge(id) != used {
			t.Fatalf("IsTreeEdge(%d) = %v, want %v", id, tr.IsTreeEdge(id), used)
		}
	}
}

func TestBFSTreeDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if _, err := BFSTree(g, 0); err == nil {
		t.Fatal("expected error on disconnected graph")
	}
}

func TestTreeFromParentsValidation(t *testing.T) {
	g := mustPath(t, 4)
	// Correct construction.
	parent := []int{-1, 0, 1, 2}
	parentEdge := []int{-1, 0, 1, 2}
	tr, err := TreeFromParents(g, 0, parent, parentEdge)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Depth[3] != 3 {
		t.Fatalf("depth[3] = %d", tr.Depth[3])
	}
	// Wrong edge ID.
	bad := []int{-1, 0, 1, 1}
	if _, err := TreeFromParents(g, 0, parent, bad); err == nil {
		t.Fatal("expected edge mismatch error")
	}
	// Cycle in parents.
	cyc := []int{-1, 3, 1, 2}
	if _, err := TreeFromParents(g, 0, cyc, parentEdge); err == nil {
		t.Fatal("expected cycle detection")
	}
}

func TestPathToRoot(t *testing.T) {
	g := mustPath(t, 5)
	tr, _ := BFSTree(g, 0)
	p := tr.PathToRoot(4)
	want := []int{4, 3, 2, 1, 0}
	if len(p) != len(want) {
		t.Fatalf("path %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path %v want %v", p, want)
		}
	}
	ids := tr.EdgePathToRoot(4)
	if len(ids) != 4 {
		t.Fatalf("edge path %v", ids)
	}
}

func TestSubtreeSizes(t *testing.T) {
	g := mustPath(t, 6)
	tr, _ := BFSTree(g, 0)
	size := tr.SubtreeSizes()
	for v := 0; v < 6; v++ {
		if size[v] != 6-v {
			t.Fatalf("size[%d] = %d want %d", v, size[v], 6-v)
		}
	}
}

func TestLCAOnRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		g := randomConnected(rng, n, 0) // a random tree
		tr, err := BFSTree(g, rng.Intn(n))
		if err != nil {
			t.Fatal(err)
		}
		l := NewLCA(tr)
		// Check against naive ancestor-set intersection.
		for q := 0; q < 30; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			anc := map[int]bool{}
			for _, x := range tr.PathToRoot(u) {
				anc[x] = true
			}
			naive := -1
			for _, x := range tr.PathToRoot(v) {
				if anc[x] {
					naive = x
					break
				}
			}
			if got := l.Query(u, v); got != naive {
				t.Fatalf("LCA(%d,%d) = %d want %d (n=%d)", u, v, got, naive, n)
			}
			wantDist := tr.Depth[u] + tr.Depth[v] - 2*tr.Depth[naive]
			if got := l.Dist(u, v); got != wantDist {
				t.Fatalf("Dist(%d,%d) = %d want %d", u, v, got, wantDist)
			}
		}
	}
}

func TestLCAAncestor(t *testing.T) {
	g := mustPath(t, 8)
	tr, _ := BFSTree(g, 0)
	l := NewLCA(tr)
	if got := l.Ancestor(7, 3); got != 4 {
		t.Fatalf("Ancestor(7,3) = %d want 4", got)
	}
	if got := l.Ancestor(7, 7); got != 0 {
		t.Fatalf("Ancestor(7,7) = %d want 0", got)
	}
	if got := l.Ancestor(3, 10); got != -1 {
		t.Fatalf("Ancestor beyond root = %d want -1", got)
	}
}

func TestHLDChainBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(500)
		g := randomConnected(rng, n, 0)
		tr, err := BFSTree(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		h := NewHLD(tr)
		// log2(n) bound on chain changes along any root path.
		lg := 1
		for 1<<lg < n {
			lg++
		}
		for v := 0; v < n; v++ {
			if c := h.ChainChanges(v); c > lg+1 {
				t.Fatalf("n=%d vertex %d crosses %d chains > log bound %d", n, v, c, lg+1)
			}
		}
		// Chains partition the vertices and are downward paths.
		chains := h.Chains()
		seen := make([]bool, n)
		total := 0
		for _, ch := range chains {
			for i, v := range ch {
				if seen[v] {
					t.Fatalf("vertex %d in two chains", v)
				}
				seen[v] = true
				total++
				if i > 0 && tr.Parent[v] != ch[i-1] {
					t.Fatalf("chain not a downward path at %d", v)
				}
			}
		}
		if total != n {
			t.Fatalf("chains cover %d of %d", total, n)
		}
	}
}

func TestHLDHeavyChildIsLargest(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(2, 4, 1)
	tr, _ := BFSTree(g, 0)
	h := NewHLD(tr)
	if h.Heavy[0] != 2 {
		t.Fatalf("heavy child of root = %d want 2 (subtree size 3)", h.Heavy[0])
	}
}

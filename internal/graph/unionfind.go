package graph

// UnionFind is a disjoint-set forest with union by rank and path compression.
// The zero value is unusable; create with NewUnionFind.
type UnionFind struct {
	parent []int
	rank   []int8
	count  int // number of disjoint sets
}

// NewUnionFind returns a union-find structure over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Reset reinitializes u to n singleton sets in place, reusing the existing
// storage when large enough. Hot loops (shortcut block counting) call this
// instead of allocating a fresh forest per part.
func (u *UnionFind) Reset(n int) {
	if cap(u.parent) < n {
		u.parent = make([]int, n)
		u.rank = make([]int8, n)
	}
	u.parent = u.parent[:n]
	u.rank = u.rank[:n]
	for i := range u.parent {
		u.parent[i] = i
		u.rank[i] = 0
	}
	u.count = n
}

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already in the same set).
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.count--
	return true
}

// Same reports whether x and y belong to the same set.
func (u *UnionFind) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// Count returns the current number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }

// Sets returns the current partition as member lists, sets ordered by their
// smallest vertex and members ordered by vertex index.
func (u *UnionFind) Sets() [][]int {
	n := len(u.parent)
	// Pass 1: canonical root per vertex, set index per root in first-seen
	// (= smallest member) order, and set sizes.
	root := make([]int32, n)
	setOf := make([]int32, n) // root vertex -> set index + 1
	numSets := 0
	for v := 0; v < n; v++ {
		r := u.Find(v)
		root[v] = int32(r)
		if setOf[r] == 0 {
			numSets++
			setOf[r] = int32(numSets)
		}
	}
	size := make([]int32, numSets)
	for v := 0; v < n; v++ {
		size[setOf[root[v]]-1]++
	}
	// Pass 2: slice one backing array per set and fill in vertex order.
	out := make([][]int, numSets)
	store := make([]int, n)
	pos := 0
	for si := 0; si < numSets; si++ {
		out[si] = store[pos : pos : pos+int(size[si])]
		pos += int(size[si])
	}
	for v := 0; v < n; v++ {
		si := setOf[root[v]] - 1
		out[si] = append(out[si], v)
	}
	return out
}

package graph

// UnionFind is a disjoint-set forest with union by rank and path compression.
// The zero value is unusable; create with NewUnionFind.
type UnionFind struct {
	parent []int
	rank   []int8
	count  int // number of disjoint sets
}

// NewUnionFind returns a union-find structure over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]] // path halving
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already in the same set).
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.count--
	return true
}

// Same reports whether x and y belong to the same set.
func (u *UnionFind) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// Count returns the current number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }

// Sets returns the current partition as a map from representative to members,
// flattened into slices ordered by vertex index.
func (u *UnionFind) Sets() [][]int {
	byRep := make(map[int][]int)
	var reps []int
	for v := range u.parent {
		r := u.Find(v)
		if _, ok := byRep[r]; !ok {
			reps = append(reps, r)
		}
		byRep[r] = append(byRep[r], v)
	}
	out := make([][]int, 0, len(reps))
	for _, r := range reps {
		out = append(out, byRep[r])
	}
	return out
}

// Package mincut implements the distributed (1+ε)-approximate minimum cut
// of the shortcut framework (paper Corollary 1), in the tree-packing style
// of Karger/Thorup as used by [GH16, NS14]:
//
//  1. greedily pack spanning trees, each packing iteration being an MST
//     computation over the current edge loads — run through the distributed
//     ShortcutBoruvka so every round is accounted;
//  2. for each packed tree, evaluate all cuts that 1-respect the tree via
//     subtree-sum convergecasts (O(depth) rounds each, charged), and
//     optionally all 2-respecting cuts (evaluated centrally; see DESIGN.md
//     substitutions);
//  3. return the lightest cut seen.
//
// With enough trees some packed tree 2-respects a (1+ε)-minimum cut w.h.p.;
// tests validate achieved ratios against exact Stoer-Wagner.
package mincut

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/pipeline"
)

// Options configures the approximation.
type Options struct {
	// Trees to pack; 0 derives ceil(6·ln(m+1)/eps²) capped at 48.
	Trees int
	// Eps is the target approximation slack (default 0.1); only used to
	// derive Trees when Trees == 0.
	Eps float64
	// TwoRespecting enables exact 2-respecting evaluation per tree
	// (centrally computed; O(n²·depth²+m·depth²) time — keep n modest).
	TwoRespecting bool
	// SimulateMST runs each packing iteration on the CONGEST simulator;
	// false computes trees sequentially and charges rounds analytically
	// (tree height based), for large benches.
	SimulateMST bool
	// ProviderFor supplies the shortcut provider for a packing iteration's
	// reweighted graph copy (same topology and edge IDs as the input
	// graph). Nil keeps the oblivious default. When set, every packing
	// iteration runs the real distributed Borůvka under that provider —
	// the provider's own mode decides which ledger its construction rounds
	// land in — so the zero-witness pipeline (pipeline.Setup.Provider over
	// a transferred tree) plugs in directly.
	ProviderFor func(h *graph.Graph) (pipeline.Provider, error)
}

// Result reports the approximation outcome.
type Result struct {
	Value         float64
	Side          []int // one side of the best cut found
	Trees         int
	CommRounds    int
	ChargedRounds int
}

// Approx finds a light global cut by greedy tree packing.
func Approx(g *graph.Graph, opts Options) (*Result, error) {
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("mincut: need >= 2 vertices")
	}
	if !graph.IsConnected(g) {
		return nil, fmt.Errorf("mincut: %w", graph.ErrDisconnected)
	}
	if opts.Eps == 0 {
		opts.Eps = 0.1
	}
	trees := opts.Trees
	if trees == 0 {
		trees = int(math.Ceil(6 * math.Log(float64(g.M()+1)) / (opts.Eps * opts.Eps)))
		if trees > 48 {
			trees = 48
		}
	}
	res := &Result{Trees: trees, Value: math.Inf(1)}
	// Trivial candidates: singleton cuts.
	for v := 0; v < n; v++ {
		var w float64
		for _, a := range g.Adj(v) {
			w += g.Edge(a.ID).W
		}
		res.consider(w, []int{v})
	}
	loads := make([]float64, g.M())
	for t := 0; t < trees; t++ {
		treeIDs, stats, err := packOneTree(g, loads, opts)
		if err != nil {
			return nil, fmt.Errorf("mincut: packing tree %d: %w", t, err)
		}
		res.CommRounds += stats.CommRounds
		res.ChargedRounds += stats.ChargedRounds
		for _, id := range treeIDs {
			loads[id] += 1 / g.Edge(id).W
		}
		tree, err := graph.TreeFromEdgeIDs(g, treeIDs, 0)
		if err != nil {
			return nil, err
		}
		evalTreeCuts(g, tree, opts, res)
		// Subtree-sum convergecast + broadcast per tree (the distributed
		// 1-respecting evaluation): O(height) rounds, pipelined. On the
		// analytic path nothing is simulated, so the charge belongs in the
		// same ledger as the packing rounds; mixing it into CommRounds used
		// to overstate the simulated-round count in analytic runs.
		if opts.SimulateMST {
			res.CommRounds += 2*tree.Height() + 2
		} else {
			res.ChargedRounds += 2*tree.Height() + 2
		}
	}
	sort.Ints(res.Side)
	return res, nil
}

func (r *Result) consider(w float64, side []int) {
	if w < r.Value {
		r.Value = w
		r.Side = append(r.Side[:0], side...)
	}
}

// packOneTree computes the minimum spanning tree with respect to current
// loads (ties by original weight, then ID).
func packOneTree(g *graph.Graph, loads []float64, opts Options) (ids []int, stats *mst.RunStats, err error) {
	// Reweighted copy: key = load, tie-broken by (weight, id) via tiny
	// epsilons that preserve the lexicographic order.
	h := g.Clone()
	maxW := g.MaxWeight() + 1
	for id := 0; id < g.M(); id++ {
		h.SetWeight(id, loads[id]*maxW*float64(g.M()+1)+g.Edge(id).W)
	}
	if opts.SimulateMST || opts.ProviderFor != nil {
		var prov pipeline.Provider
		if opts.ProviderFor != nil {
			p, err := opts.ProviderFor(h)
			if err != nil {
				return nil, nil, err
			}
			prov = p
		} else {
			t, err := graph.BFSTree(h, 0)
			if err != nil {
				return nil, nil, err
			}
			prov = mst.ObliviousProvider(h, t)
		}
		rs, err := mst.ShortcutBoruvka(h, prov)
		if err != nil {
			return nil, nil, err
		}
		return rs.EdgeIDs, rs, nil
	}
	ids, _ = graph.Kruskal(h)
	t, err := graph.BFSTree(g, 0)
	if err != nil {
		return nil, nil, err
	}
	// Analytic charge: O(log n) Borůvka phases, each Õ(height) with good
	// shortcuts.
	lg := 1
	for 1<<lg < g.N() {
		lg++
	}
	return ids, &mst.RunStats{ChargedRounds: lg * (2*t.Height() + 2)}, nil
}

// evalTreeCuts scans all 1-respecting cuts (and optionally 2-respecting
// ones) of the packed tree.
func evalTreeCuts(g *graph.Graph, t *graph.Tree, opts Options, res *Result) {
	n := g.N()
	// Euler intervals for subtree membership.
	tin := make([]int, n)
	tout := make([]int, n)
	timer := 0
	type frame struct {
		v    int
		exit bool
	}
	stack := []frame{{t.Root, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.exit {
			tout[f.v] = timer
			timer++
			continue
		}
		tin[f.v] = timer
		timer++
		stack = append(stack, frame{f.v, true})
		for _, c := range t.Children[f.v] {
			stack = append(stack, frame{c, false})
		}
	}
	inSub := func(root, x int) bool { return tin[root] <= tin[x] && tout[x] <= tout[root] }
	// 1-respecting values via the LCA difference trick.
	l := graph.NewLCA(t)
	diff := make([]float64, n)
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		if t.IsTreeEdge(id) {
			continue
		}
		a := l.Query(e.U, e.V)
		diff[e.U] += e.W
		diff[e.V] += e.W
		diff[a] -= 2 * e.W
	}
	cut1 := make([]float64, n) // indexed by subtree root v (v != Root)
	// Bottom-up accumulation of diff.
	for i := len(t.Order) - 1; i >= 0; i-- {
		v := t.Order[i]
		cut1[v] += diff[v]
		if p := t.Parent[v]; p != -1 {
			cut1[p] += cut1[v]
		}
	}
	subtreeVerts := func(v int) []int {
		var out []int
		stack := []int{v}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			out = append(out, x)
			stack = append(stack, t.Children[x]...)
		}
		return out
	}
	for v := 0; v < n; v++ {
		if v == t.Root {
			continue
		}
		w := cut1[v] + g.Edge(t.ParentEdge[v]).W
		res.consider(w, subtreeVerts(v))
		cut1[v] = w // reuse as δ(S_v) for the 2-respecting pass
	}
	if !opts.TwoRespecting {
		return
	}
	// 2-respecting: for every pair of subtrees, disjoint or nested.
	for u := 0; u < n; u++ {
		if u == t.Root {
			continue
		}
		for v := u + 1; v < n; v++ {
			if v == t.Root {
				continue
			}
			var w float64
			switch {
			case inSub(u, v): // v nested in u
				w = nestedCut(g, cut1, u, v, inSub)
			case inSub(v, u):
				w = nestedCut(g, cut1, v, u, inSub)
			default: // disjoint: δ(A)+δ(B)-2w(A,B)
				w = cut1[u] + cut1[v] - 2*crossWeight(g, u, v, inSub)
			}
			if w < res.Value && w >= 0 {
				side := subtreeVerts(u)
				if inSub(u, v) {
					// A \ B
					keep := side[:0]
					for _, x := range side {
						if !inSub(v, x) {
							keep = append(keep, x)
						}
					}
					side = keep
				} else if inSub(v, u) {
					side = subtreeVerts(v)
					keep := side[:0]
					for _, x := range side {
						if !inSub(u, x) {
							keep = append(keep, x)
						}
					}
					side = keep
				} else {
					side = append(side, subtreeVerts(v)...)
				}
				if len(side) > 0 && len(side) < n {
					res.consider(w, side)
				}
			}
		}
	}
}

// crossWeight sums edges with one endpoint in S_u and the other in S_v
// (disjoint subtrees).
func crossWeight(g *graph.Graph, u, v int, inSub func(int, int) bool) float64 {
	var w float64
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		au, bu := inSub(u, e.U), inSub(u, e.V)
		av, bv := inSub(v, e.U), inSub(v, e.V)
		if (au && bv) || (av && bu) {
			w += e.W
		}
	}
	return w
}

// nestedCut computes δ(S_u \ S_v) = δ(S_u) − δ(S_v) + 2·w(S_v, S_u∖S_v)
// for S_v nested inside S_u.
func nestedCut(g *graph.Graph, cut1 []float64, u, v int, inSub func(int, int) bool) float64 {
	var wBA float64
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		inVU := inSub(v, e.U)
		inVV := inSub(v, e.V)
		if inVU == inVV {
			continue
		}
		// One endpoint in S_v; the other must be in S_u ∖ S_v.
		other := e.U
		if inVU {
			other = e.V
		}
		if inSub(u, other) {
			wBA += e.W
		}
	}
	return cut1[u] - cut1[v] + 2*wBA
}

package mincut_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
)

func assertValidCut(t *testing.T, g *graph.Graph, r *mincut.Result) {
	t.Helper()
	if len(r.Side) == 0 || len(r.Side) >= g.N() {
		t.Fatalf("degenerate side of size %d", len(r.Side))
	}
	if w := graph.CutWeight(g, r.Side); math.Abs(w-r.Value) > 1e-6 {
		t.Fatalf("reported %v but side cuts %v", r.Value, w)
	}
}

func TestApproxOnBridge(t *testing.T) {
	// Two cliques joined by one light edge: the bridge is the min cut and
	// 1-respects every spanning tree.
	g := graph.New(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(i, j, 1)
			g.AddEdge(i+4, j+4, 1)
		}
	}
	g.AddEdge(0, 4, 0.25)
	r, err := mincut.Approx(g, mincut.Options{Trees: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertValidCut(t, g, r)
	if r.Value != 0.25 {
		t.Fatalf("found %v want 0.25", r.Value)
	}
}

func TestApproxMatchesExactOnSmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		g := gen.ErdosRenyiConnected(14+rng.Intn(10), 40+rng.Intn(30), rng)
		gen.UniformWeights(g, rng)
		exact, _, err := graph.GlobalMinCut(g)
		if err != nil {
			t.Fatal(err)
		}
		r, err := mincut.Approx(g, mincut.Options{Trees: 24, TwoRespecting: true})
		if err != nil {
			t.Fatal(err)
		}
		assertValidCut(t, g, r)
		if r.Value < exact-1e-9 {
			t.Fatalf("found cut %v below exact minimum %v", r.Value, exact)
		}
		if r.Value > exact*(1+0.34)+1e-9 {
			t.Fatalf("trial %d: found %v, exact %v: ratio %.3f too large",
				trial, r.Value, exact, r.Value/exact)
		}
	}
}

func TestApproxOneRespectingOnlyStillValid(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.DistinctWeights(gen.UniformWeights(gen.Grid(5, 5).G, rng))
	exact, _, err := graph.GlobalMinCut(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mincut.Approx(g, mincut.Options{Trees: 16})
	if err != nil {
		t.Fatal(err)
	}
	assertValidCut(t, g, r)
	if r.Value < exact-1e-9 {
		t.Fatal("cut below minimum is impossible")
	}
	// 1-respecting alone guarantees a 2-approximation shape in practice on
	// grids; assert a loose factor.
	if r.Value > 3*exact {
		t.Fatalf("1-respecting cut %v vs exact %v", r.Value, exact)
	}
}

func TestApproxWithSimulatedMST(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.DistinctWeights(gen.UniformWeights(gen.Wheel(24).G, rng))
	exact, _, err := graph.GlobalMinCut(g)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mincut.Approx(g, mincut.Options{Trees: 8, TwoRespecting: true, SimulateMST: true})
	if err != nil {
		t.Fatal(err)
	}
	assertValidCut(t, g, r)
	if r.CommRounds <= 0 {
		t.Fatal("simulated run recorded no rounds")
	}
	if r.Value > 2*exact {
		t.Fatalf("cut %v vs exact %v", r.Value, exact)
	}
}

func TestApproxErrors(t *testing.T) {
	if _, err := mincut.Approx(graph.New(1), mincut.Options{}); err == nil {
		t.Fatal("accepted single vertex")
	}
	d := graph.New(4)
	d.AddEdge(0, 1, 1)
	if _, err := mincut.Approx(d, mincut.Options{}); err == nil {
		t.Fatal("accepted disconnected graph")
	}
}

func TestApproxCycleExact(t *testing.T) {
	// Any two tree-edge cuts of a cycle's spanning path give the exact
	// min cut 2; TwoRespecting must find it.
	g := gen.Cycle(12)
	r, err := mincut.Approx(g, mincut.Options{Trees: 3, TwoRespecting: true})
	if err != nil {
		t.Fatal(err)
	}
	assertValidCut(t, g, r)
	if r.Value != 2 {
		t.Fatalf("cycle min cut %v want 2", r.Value)
	}
}

// Regression: the per-tree 1-respecting convergecast charge (2·height+2)
// was added to CommRounds even in analytic mode (SimulateMST=false), where
// every other round went to ChargedRounds — mixing the two ledgers. Each
// mode must report its rounds in exactly one ledger.
func TestRoundLedgersStayInTheirMode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.DistinctWeights(gen.UniformWeights(gen.Wheel(20).G, rng))

	analytic, err := mincut.Approx(g, mincut.Options{Trees: 4})
	if err != nil {
		t.Fatal(err)
	}
	if analytic.CommRounds != 0 {
		t.Fatalf("analytic run leaked %d rounds into CommRounds", analytic.CommRounds)
	}
	if analytic.ChargedRounds <= 0 {
		t.Fatal("analytic run recorded no charged rounds")
	}

	simulated, err := mincut.Approx(g, mincut.Options{Trees: 4, SimulateMST: true})
	if err != nil {
		t.Fatal(err)
	}
	if simulated.CommRounds <= 0 {
		t.Fatal("simulated run recorded no simulated rounds")
	}
	// The simulated convergecast charge must land in CommRounds: with equal
	// tree counts it makes the simulated CommRounds strictly dominate the
	// analytic run's (which must stay zero).
	if simulated.CommRounds <= analytic.CommRounds {
		t.Fatalf("simulated CommRounds %d vs analytic %d", simulated.CommRounds, analytic.CommRounds)
	}
}

package mst_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/congest"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/shortcut"
)

// TestFloodProviderLedgerConsistency pins the provider layer against the
// PR 2 min-cut ledger-mixing bug class: a provider's construction rounds
// must land exclusively in the ledger matching its mode — Rounds.Simulated
// (measured on the engine) for simulate runs, Rounds.Charged (framework
// budget) for analytic runs — both at the provider itself and after the
// Borůvka loop books them.
func TestFloodProviderLedgerConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.DistinctWeights(gen.UniformWeights(gen.Grid(6, 6).G, rng))
	tr, err := graph.BFSTree(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.Voronoi(g, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, simulate := range []bool{false, true} {
		s, cost, err := mst.FloodProvider(g, tr, 2, simulate)(p)
		if err != nil {
			t.Fatalf("simulate=%v: %v", simulate, err)
		}
		if s == nil {
			t.Fatalf("simulate=%v: no shortcut", simulate)
		}
		if simulate {
			if cost.Simulated <= 0 || cost.Charged != 0 {
				t.Fatalf("simulate=true: cost %+v not exclusively in the simulated ledger", cost)
			}
		} else {
			if cost.Charged != congest.ConstructBudget(tr, 2) || cost.Simulated != 0 {
				t.Fatalf("simulate=false: cost %+v, want charged=%d simulated=0", cost, congest.ConstructBudget(tr, 2))
			}
		}
		rs, err := mst.ShortcutBoruvka(g, mst.FloodProvider(g, tr, 2, simulate))
		if err != nil {
			t.Fatalf("simulate=%v: %v", simulate, err)
		}
		if simulate && rs.ChargedRounds != 0 {
			t.Fatalf("simulate=true run leaked %d rounds into ChargedRounds", rs.ChargedRounds)
		}
		if !simulate && rs.ChargedRounds <= 0 {
			t.Fatal("simulate=false run booked no construction charge")
		}
		if rs.CommRounds <= 0 {
			t.Fatalf("simulate=%v: no communication rounds", simulate)
		}
	}
}

// TestFloodProviderExactMST: Borůvka over in-network flooding-constructed
// shortcuts still produces the exact MST, in both construction ledgers.
func TestFloodProviderExactMST(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", gen.DistinctWeights(gen.UniformWeights(gen.Grid(6, 6).G, rng))},
		{"wheel", gen.DistinctWeights(gen.UniformWeights(gen.Wheel(33).G, rng))},
		{"random", gen.DistinctWeights(gen.UniformWeights(gen.ErdosRenyiConnected(60, 150, rng), rng))},
	}
	for _, tc := range cases {
		for _, simulate := range []bool{false, true} {
			tr, err := graph.BFSTree(tc.g, 0)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := mst.ShortcutBoruvka(tc.g, mst.FloodProvider(tc.g, tr, 3, simulate))
			if err != nil {
				t.Fatalf("%s simulate=%v: %v", tc.name, simulate, err)
			}
			assertExactMST(t, tc.g, rs)
			if simulate && rs.ChargedRounds != 0 {
				t.Fatalf("%s simulate=true: measured construction leaked %d rounds into the charged ledger", tc.name, rs.ChargedRounds)
			}
			if !simulate && rs.ChargedRounds <= 0 {
				t.Fatalf("%s simulate=false: no construction charge recorded", tc.name)
			}
		}
	}
}

// TestSimulatedProviderBudgetExhaustion pins the degradation contract of
// the budget-exhaustion path: congestion budgets 0 and 1 both degrade to
// the minimum lawful budget-1 construction — identical shortcuts, identical
// charges — and the MST stays exact rather than a phase truncating
// mid-merge.
func TestSimulatedProviderBudgetExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := gen.DistinctWeights(gen.UniformWeights(gen.Grid(6, 6).G, rng))
	w := gen.Wheel(41).G
	hub := w.N() - 1
	for id := 0; id < w.M(); id++ {
		e := w.Edge(id)
		if e.U == hub || e.V == hub {
			w.SetWeight(id, 100+rng.Float64())
		} else {
			w.SetWeight(id, 1+rng.Float64())
		}
	}
	gen.DistinctWeights(w)
	for _, tc := range []struct {
		name string
		g    *graph.Graph
		root int
	}{{"grid", g, 0}, {"wheel-adversarial", w, hub}} {
		tr, err := graph.BFSTree(tc.g, tc.root)
		if err != nil {
			t.Fatal(err)
		}
		var runs []*mst.RunStats
		for _, budget := range []int{0, 1} {
			rs, err := mst.ShortcutBoruvka(tc.g, mst.SimulatedProvider(tc.g, tr, budget))
			if err != nil {
				t.Fatalf("%s budget %d: %v", tc.name, budget, err)
			}
			assertExactMST(t, tc.g, rs)
			if rs.CommRounds <= 0 {
				t.Fatalf("%s budget %d: exhausted construction reported no rounds", tc.name, budget)
			}
			runs = append(runs, rs)
		}
		if runs[0].CommRounds != runs[1].CommRounds || runs[0].Phases != runs[1].Phases {
			t.Fatalf("%s: budget 0 did not degrade to the budget-1 construction: %+v vs %+v",
				tc.name, runs[0], runs[1])
		}
	}
}

// TestShortcutBoruvkaIncompleteSurfaces: a run that halts with multiple
// fragments left (here: a disconnected graph under a hand-built provider)
// must report ErrIncomplete instead of silently returning the partial
// forest as if it were the MST.
func TestShortcutBoruvkaIncompleteSurfaces(t *testing.T) {
	// Two disjoint triangles.
	g := graph.New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 2)
	g.AddEdge(3, 5, 3)
	// BFSTree refuses disconnected graphs, so hand-build the spanning-forest
	// overlay a careless caller would: parents within each triangle.
	tree := &graph.Tree{
		G:          g,
		Root:       0,
		Parent:     []int{-1, 0, 0, -1, 3, 3},
		ParentEdge: []int{-1, 0, 2, -1, 3, 5},
		Depth:      []int{0, 1, 1, 0, 1, 1},
		Order:      []int{0, 1, 2, 3, 4, 5},
		Children:   [][]int{{1, 2}, {}, {}, {4, 5}, {}, {}},
	}
	provider := func(p *partition.Parts) (*shortcut.Shortcut, pipeline.Rounds, error) {
		return &shortcut.Shortcut{G: g, T: tree, P: p, Edges: make([][]int, p.NumParts())}, pipeline.Rounds{}, nil
	}
	_, err := mst.ShortcutBoruvka(g, provider)
	if err == nil {
		t.Fatal("disconnected run returned a partial forest as a completed MST")
	}
	if !errors.Is(err, congest.ErrIncomplete) {
		t.Fatalf("error %v does not wrap congest.ErrIncomplete", err)
	}
}

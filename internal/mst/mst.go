// Package mst implements distributed minimum-spanning-tree algorithms on
// the CONGEST simulator:
//
//   - ShortcutBoruvka: the framework algorithm behind Theorem 1 — Borůvka
//     phases whose fragment-wise min-edge aggregation and merge
//     dissemination run over tree-restricted shortcuts;
//   - baselines: the same algorithm with empty shortcuts (naive part-
//     internal flooding) and a Garay-Kutten-Peleg-flavored O(D+√n) two-phase
//     algorithm (fragment growth, then pipelined convergecast to a root).
//
// All variants produce the exact MST under the canonical edge order and are
// verified against sequential Kruskal.
package mst

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/shortcut"
)

// RunStats reports a distributed MST run.
type RunStats struct {
	EdgeIDs []int   // MST edges, sorted
	Weight  float64 // total weight
	Phases  int

	// CommRounds counts simulated communication rounds: aggregation
	// quiet-points, per-phase constant overheads, and any provider rounds
	// that were measured on the engine (Rounds.Simulated).
	CommRounds int
	// ChargedRounds books the providers' analytic construction charges
	// (Rounds.Charged) — e.g. the Õ(q) bound for the [HIZ16a]-style
	// construction, or the flooding construction's framework budget.
	ChargedRounds int
	Messages      int
}

// Provider is the unified shortcut-provider type of the pipeline layer
// (see package pipeline): it yields a shortcut for the current fragment
// family plus the two-ledger round cost of obtaining it, which the Borůvka
// loop books into CommRounds/ChargedRounds respectively.
type Provider = pipeline.Provider

// Provider constructors, re-exported from the pipeline layer for the many
// callers that reach them through this package.
var (
	ObliviousProvider = pipeline.Oblivious
	EmptyProvider     = pipeline.Empty
	SimulatedProvider = pipeline.SimulatedOblivious
	FloodProvider     = pipeline.Flood
	AutoFloodProvider = pipeline.AutoFlood
)

// provide invokes the provider for a fragment family and books its
// two-ledger cost into the run's matching fields.
func provide(provider Provider, p *partition.Parts, stats *RunStats) (*shortcut.Shortcut, pipeline.Rounds, error) {
	s, cost, err := provider(p)
	if err != nil {
		return nil, cost, fmt.Errorf("mst: shortcut provider: %w", err)
	}
	stats.CommRounds += cost.Simulated
	stats.ChargedRounds += cost.Charged
	return s, cost, nil
}

// edgeRanks maps each edge to its rank in the canonical order, so min-edge
// aggregation can run over single-word keys (an O(log n)-bit edge name).
func edgeRanks(g *graph.Graph) []uint64 {
	order := make([]int, g.M())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return graph.EdgeLess(g, order[a], order[b]) })
	rank := make([]uint64, g.M())
	for r, id := range order {
		rank[id] = uint64(r)
	}
	return rank
}

// Options configures how ShortcutBoruvka realizes its fragment-wise
// aggregations.
type Options struct {
	// Simulate runs every aggregation message-level on the CONGEST engine
	// (the default everywhere the tables measure rounds). When false, the
	// aggregation fixed points are computed sequentially — the identical
	// per-fragment minima every member would learn — and each aggregation
	// is booked into ChargedRounds at the shortcut's measured quality
	// (the framework's O(b·d_T + c) budget for one part-wise aggregation).
	// The two-ledger convention holds in both modes: nothing
	// engine-measured lands in ChargedRounds and vice versa. The analytic
	// mode is what lets the zero-witness pipeline finish an MST on a
	// 10⁶-node grid, where simulating Θ(diameter) rounds across every
	// phase is days of wall-clock.
	Simulate bool
}

// aggregateMinSeq computes AggregateMin's fixed point sequentially: the
// per-part minimum key over members. It is the oracle AggregateMin itself
// validates against, so both modes converge to identical Mins.
func aggregateMinSeq(parts *partition.Parts, keys []uint64) []uint64 {
	mins := make([]uint64, parts.NumParts())
	for i, set := range parts.Sets {
		m := uint64(math.MaxUint64)
		for _, v := range set {
			if keys[v] < m {
				m = keys[v]
			}
		}
		mins[i] = m
	}
	return mins
}

// ShortcutBoruvka runs Borůvka's algorithm with fragment-wise aggregation
// over shortcuts from the provider, simulating every aggregation on the
// engine. See ShortcutBoruvkaOpts for the analytic-aggregation variant.
func ShortcutBoruvka(g *graph.Graph, provider Provider) (*RunStats, error) {
	return ShortcutBoruvkaOpts(g, provider, Options{Simulate: true})
}

// ShortcutBoruvkaOpts runs Borůvka's algorithm with fragment-wise
// aggregation over shortcuts from the provider. The environment (this
// function) maintains fragment bookkeeping exactly as a union-find; every
// information flow between nodes is either simulated message passing
// (aggregations, counted in CommRounds) or charged per the framework's
// proven bounds (ChargedRounds), per opts.
func ShortcutBoruvkaOpts(g *graph.Graph, provider Provider, opts Options) (*RunStats, error) {
	n := g.N()
	if n == 0 {
		return &RunStats{}, nil
	}
	rank := edgeRanks(g)
	rankToEdge := make([]int, g.M())
	for id, r := range rank {
		rankToEdge[r] = id
	}
	uf := graph.NewUnionFind(n)
	chosen := make([]bool, g.M())
	stats := &RunStats{}
	const maxPhases = 2 * 64
	// The dissemination step at the end of a phase constructs a shortcut for
	// the *merged* fragments — exactly the family the next phase aggregates
	// over. The network keeps it, so the provider runs once per fragment
	// family, not twice (a second invocation would both recompute and
	// double-charge the construction).
	var carriedParts *partition.Parts
	var carriedShortcut *shortcut.Shortcut
	for phase := 0; uf.Count() > 1 && phase < maxPhases; phase++ {
		parts, s := carriedParts, carriedShortcut
		carriedParts, carriedShortcut = nil, nil
		if parts == nil {
			var err error
			parts, err = partition.New(g, uf.Sets())
			if err != nil {
				return nil, fmt.Errorf("mst: fragments invalid: %w", err)
			}
			if parts.NumParts() == 1 {
				break
			}
			s, _, err = provide(provider, parts, stats)
			if err != nil {
				return nil, err
			}
		}
		// One round: neighbors exchange fragment IDs (a constant round in
		// whichever ledger the mode books; contents are determined by the
		// parts).
		if opts.Simulate {
			stats.CommRounds++
		} else {
			stats.ChargedRounds++
		}
		// Keys: each node's minimum incident outgoing edge, by rank.
		keys := make([]uint64, n)
		for v := 0; v < n; v++ {
			keys[v] = math.MaxUint64
			for _, a := range g.Adj(v) {
				if uf.Find(a.To) != uf.Find(v) && rank[a.ID] < keys[v] {
					keys[v] = rank[a.ID]
				}
			}
		}
		var mins []uint64
		if opts.Simulate {
			res, err := congest.AggregateMin(g, parts, s, keys)
			if err != nil {
				return nil, fmt.Errorf("mst: phase %d aggregation: %w", phase, err)
			}
			stats.CommRounds += res.EffectiveRounds
			stats.Messages += res.Stats.Messages
			mins = res.Mins
		} else {
			mins = aggregateMinSeq(parts, keys)
			stats.ChargedRounds += s.Measure().Quality
		}
		// Merge along each fragment's minimum outgoing edge.
		merged := false
		for i := 0; i < parts.NumParts(); i++ {
			r := mins[i]
			if r == math.MaxUint64 {
				continue
			}
			id := rankToEdge[r]
			e := g.Edge(id)
			if uf.Union(e.U, e.V) {
				merged = true
			}
			if !chosen[id] {
				chosen[id] = true
				stats.Weight += e.W
			}
		}
		stats.Phases++
		if !merged {
			break
		}
		// Disseminate merged fragment identities: an aggregation of the
		// minimum member ID over the *new* fragments (every node must learn
		// its new fragment). Charged with the same shortcut provider.
		newParts, err := partition.New(g, uf.Sets())
		if err != nil {
			return nil, fmt.Errorf("mst: merged fragments invalid: %w", err)
		}
		if newParts.NumParts() > 1 {
			ns, _, err := provide(provider, newParts, stats)
			if err != nil {
				return nil, err
			}
			if opts.Simulate {
				ids := make([]uint64, n)
				for v := 0; v < n; v++ {
					ids[v] = uint64(v)
				}
				res2, err := congest.AggregateMin(g, newParts, ns, ids)
				if err != nil {
					return nil, fmt.Errorf("mst: phase %d dissemination: %w", phase, err)
				}
				stats.CommRounds += res2.EffectiveRounds
				stats.Messages += res2.Stats.Messages
			} else {
				// The fixed point (each member learns its fragment's
				// minimum member ID) is determined by the partition the
				// environment already holds; charge one aggregation at the
				// new shortcut's quality.
				stats.ChargedRounds += ns.Measure().Quality
			}
			carriedParts, carriedShortcut = newParts, ns
		}
	}
	// Completeness: the loop exits early when no fragment can merge (the
	// graph is disconnected) or the phase budget runs out. Either way the
	// chosen edges are a partial forest, not the MST — surface that instead
	// of returning it as if the run finished (the same zero-masquerade class
	// DistributedBFS fixed).
	if uf.Count() > 1 {
		return nil, &congest.IncompleteError{Protocol: "MST", Rounds: stats.CommRounds, Budget: stats.Phases,
			Detail: fmt.Sprintf("halted with %d fragments after %d phases (disconnected graph or phase budget exhausted)",
				uf.Count(), stats.Phases)}
	}
	stats.EdgeIDs = make([]int, 0, n-1)
	for id, c := range chosen {
		if c {
			stats.EdgeIDs = append(stats.EdgeIDs, id)
		}
	}
	return stats, nil
}

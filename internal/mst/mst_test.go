package mst_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/shortcut"
)

func assertExactMST(t *testing.T, g *graph.Graph, rs *mst.RunStats) {
	t.Helper()
	kIDs, kW := graph.Kruskal(g)
	if len(rs.EdgeIDs) != len(kIDs) {
		t.Fatalf("MST has %d edges, want %d", len(rs.EdgeIDs), len(kIDs))
	}
	for i := range kIDs {
		if rs.EdgeIDs[i] != kIDs[i] {
			t.Fatalf("MST edge mismatch at %d: %d vs %d", i, rs.EdgeIDs[i], kIDs[i])
		}
	}
	if diff := rs.Weight - kW; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("weight %v want %v", rs.Weight, kW)
	}
}

func TestShortcutBoruvkaOblivious(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", gen.DistinctWeights(gen.UniformWeights(gen.Grid(6, 6).G, rng))},
		{"wheel", gen.DistinctWeights(gen.UniformWeights(gen.Wheel(40).G, rng))},
		{"ktree", gen.DistinctWeights(gen.UniformWeights(gen.KTree(80, 3, rng).G, rng))},
		{"random", gen.DistinctWeights(gen.UniformWeights(gen.ErdosRenyiConnected(60, 150, rng), rng))},
		{"path", gen.DistinctWeights(gen.Path(30))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := graph.BFSTree(tc.g, 0)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := mst.ShortcutBoruvka(tc.g, mst.ObliviousProvider(tc.g, tr))
			if err != nil {
				t.Fatal(err)
			}
			assertExactMST(t, tc.g, rs)
			if rs.Phases < 1 || rs.CommRounds < 1 {
				t.Fatalf("degenerate stats %+v", rs)
			}
		})
	}
}

func TestShortcutBoruvkaWithOracle(t *testing.T) {
	// Oracle provider: the structure-aware almost-embeddable construction
	// on the wheel scenario.
	rng := rand.New(rand.NewSource(2))
	a := gen.CycleWithApex(48, rng)
	gen.DistinctWeights(gen.UniformWeights(a.G, rng))
	tr, err := graph.BFSTree(a.G, a.Apices[0])
	if err != nil {
		t.Fatal(err)
	}
	provider := func(p *partition.Parts) (*shortcut.Shortcut, pipeline.Rounds, error) {
		res, err := core.AlmostEmbeddableShortcut(a.G, tr, p, a)
		if err != nil {
			return nil, pipeline.Rounds{}, err
		}
		return res.S, pipeline.Rounds{Charged: res.M.Quality}, nil
	}
	rs, err := mst.ShortcutBoruvka(a.G, provider)
	if err != nil {
		t.Fatal(err)
	}
	assertExactMST(t, a.G, rs)
}

func TestEmptyProviderBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.DistinctWeights(gen.UniformWeights(gen.Grid(5, 8).G, rng))
	tr, _ := graph.BFSTree(g, 0)
	rs, err := mst.ShortcutBoruvka(g, mst.EmptyProvider(g, tr))
	if err != nil {
		t.Fatal(err)
	}
	assertExactMST(t, g, rs)
	if rs.ChargedRounds != 0 {
		t.Fatalf("empty provider charged %d rounds", rs.ChargedRounds)
	}
}

func TestShortcutsBeatNoShortcutsOnWheel(t *testing.T) {
	// Adversarial weights: cheap rim, expensive spokes, so Borůvka grows
	// long rim-arc fragments whose diameter dwarfs the wheel's diameter.
	rng := rand.New(rand.NewSource(4))
	g := gen.Wheel(161).G
	hub := g.N() - 1
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		if e.U == hub || e.V == hub {
			g.SetWeight(id, 100+rng.Float64())
		} else {
			g.SetWeight(id, 1+rng.Float64())
		}
	}
	gen.DistinctWeights(g)
	tr, _ := graph.BFSTree(g, hub) // root at hub
	withSc, err := mst.ShortcutBoruvka(g, mst.ObliviousProvider(g, tr))
	if err != nil {
		t.Fatal(err)
	}
	without, err := mst.ShortcutBoruvka(g, mst.EmptyProvider(g, tr))
	if err != nil {
		t.Fatal(err)
	}
	assertExactMST(t, g, withSc)
	assertExactMST(t, g, without)
	if withSc.CommRounds >= without.CommRounds {
		t.Fatalf("shortcuts did not reduce rounds: %d vs %d", withSc.CommRounds, without.CommRounds)
	}
}

func TestPipelinedMST(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", gen.DistinctWeights(gen.UniformWeights(gen.Grid(7, 7).G, rng))},
		{"random", gen.DistinctWeights(gen.UniformWeights(gen.ErdosRenyiConnected(80, 200, rng), rng))},
		{"apollonian", gen.DistinctWeights(gen.UniformWeights(gen.NewApollonian(60, rng).G, rng))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rs, err := mst.PipelinedMST(tc.g)
			if err != nil {
				t.Fatal(err)
			}
			assertExactMST(t, tc.g, rs)
		})
	}
}

func TestPipelinedMSTRoundScaling(t *testing.T) {
	// The pipelined baseline should scale roughly with D + sqrt(n), i.e.
	// far below n on a low-diameter graph.
	rng := rand.New(rand.NewSource(6))
	g := gen.DistinctWeights(gen.UniformWeights(gen.ErdosRenyiConnected(400, 1600, rng), rng))
	rs, err := mst.PipelinedMST(g)
	if err != nil {
		t.Fatal(err)
	}
	assertExactMST(t, g, rs)
	if rs.CommRounds > g.N() {
		t.Fatalf("pipelined MST took %d rounds on n=%d", rs.CommRounds, g.N())
	}
}

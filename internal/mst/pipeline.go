package mst

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// PipelinedMST is the O(D + √n)-flavored baseline in the style of
// Garay-Kutten-Peleg [GKP98]: Phase A grows Borůvka fragments by
// part-internal flooding (no shortcuts) until roughly √n fragments remain;
// Phase B pipelines every remaining inter-fragment candidate edge up a BFS
// tree to a root, which finishes the MST centrally and broadcasts it.
// Simplification vs the original: fragment growth is phase-capped rather
// than diameter-capped, so Phase A can exceed O(√n) rounds on adversarial
// fragment shapes (see DESIGN.md substitutions); on the evaluation
// workloads it exhibits the intended O(D+√n) scaling.
func PipelinedMST(g *graph.Graph) (*RunStats, error) {
	n := g.N()
	if n == 0 {
		return &RunStats{}, nil
	}
	rank := edgeRanks(g)
	rankToEdge := make([]int, g.M())
	for id, r := range rank {
		rankToEdge[r] = id
	}
	root := 0
	t, err := graph.BFSTree(g, root)
	if err != nil {
		return nil, fmt.Errorf("mst: %w", err)
	}
	stats := &RunStats{}
	stats.CommRounds += t.Height() + 1 // building the BFS tree

	// Phase A: Borůvka halvings until <= sqrt(n) fragments.
	target := 1
	for target*target < n {
		target++
	}
	uf := graph.NewUnionFind(n)
	chosen := make([]bool, g.M())
	for phase := 0; uf.Count() > target && phase < 64; phase++ {
		parts, err := partition.New(g, uf.Sets())
		if err != nil {
			return nil, err
		}
		s := shortcut.Empty(g, t, parts)
		keys := make([]uint64, n)
		for v := 0; v < n; v++ {
			keys[v] = math.MaxUint64
			for _, a := range g.Adj(v) {
				if uf.Find(a.To) != uf.Find(v) && rank[a.ID] < keys[v] {
					keys[v] = rank[a.ID]
				}
			}
		}
		res, err := congest.AggregateMin(g, parts, s, keys)
		if err != nil {
			return nil, fmt.Errorf("mst: pipelined phase A: %w", err)
		}
		stats.CommRounds += res.EffectiveRounds + 1
		stats.Messages += res.Stats.Messages
		merged := false
		for i := 0; i < parts.NumParts(); i++ {
			r := res.Mins[i]
			if r == math.MaxUint64 {
				continue
			}
			id := rankToEdge[r]
			e := g.Edge(id)
			if uf.Union(e.U, e.V) {
				merged = true
			}
			if !chosen[id] {
				chosen[id] = true
				stats.Weight += e.W
			}
		}
		stats.Phases++
		if !merged {
			break
		}
	}

	// Phase B: candidate edges = per fragment-pair minimum inter-fragment
	// edge. Pipeline them to the root over the BFS tree: each token climbs
	// one hop per round, one token per tree edge per round.
	type pairKey struct{ a, b int }
	bestPair := make(map[pairKey]int)
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		ra, rb := uf.Find(e.U), uf.Find(e.V)
		if ra == rb {
			continue
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		k := pairKey{ra, rb}
		if prev, ok := bestPair[k]; !ok || graph.EdgeLess(g, id, prev) {
			bestPair[k] = id
		}
	}
	// Pipelined convergecast simulation: queue tokens at an endpoint's
	// vertex; per round each vertex forwards one token to its parent.
	queues := make([][]int, n)
	var keys []pairKey
	for k := range bestPair {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	rounds := 0
	remaining := len(bestPair)
	arrivedAtRoot := 0
	for _, k := range keys {
		id := bestPair[k]
		u := g.Edge(id).U
		if u == root {
			arrivedAtRoot++ // already at the root
			continue
		}
		queues[u] = append(queues[u], id)
	}
	staged := make([][]int, n) // tokens that moved this round, landing next round
	for arrivedAtRoot < remaining {
		moved := false
		for v := 0; v < n; v++ {
			if v == root || len(queues[v]) == 0 {
				continue
			}
			id := queues[v][0]
			queues[v] = queues[v][1:]
			if p := t.Parent[v]; p == root {
				arrivedAtRoot++
			} else {
				staged[p] = append(staged[p], id)
			}
			stats.Messages++
			moved = true
		}
		for v := range staged {
			if len(staged[v]) > 0 {
				queues[v] = append(queues[v], staged[v]...)
				staged[v] = staged[v][:0]
			}
		}
		rounds++
		if !moved && arrivedAtRoot < remaining {
			return nil, fmt.Errorf("mst: pipeline stalled with %d tokens left", remaining-arrivedAtRoot)
		}
	}
	stats.CommRounds += rounds
	// Root computes the fragment MST centrally (free local computation) and
	// broadcasts (D rounds): Kruskal over the candidates respecting uf.
	fragEdgeOrig := make([]int, 0, len(bestPair))
	for _, k := range keys {
		fragEdgeOrig = append(fragEdgeOrig, bestPair[k])
	}
	order2 := make([]int, len(fragEdgeOrig))
	for i := range order2 {
		order2[i] = i
	}
	sort.Slice(order2, func(a, b int) bool {
		return graph.EdgeLess(g, fragEdgeOrig[order2[a]], fragEdgeOrig[order2[b]])
	})
	for _, fi := range order2 {
		id := fragEdgeOrig[fi]
		e := g.Edge(id)
		if uf.Union(e.U, e.V) {
			chosen[id] = true
			stats.Weight += e.W
		}
	}
	stats.CommRounds += t.Height() + 1 // broadcast of the result
	stats.EdgeIDs = make([]int, 0, n-1)
	for id, c := range chosen {
		if c {
			stats.EdgeIDs = append(stats.EdgeIDs, id)
		}
	}
	return stats, nil
}

package mst_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mst"
)

// TestSimulatedProviderExactMST: end-to-end fully simulated pipeline —
// distributed shortcut construction feeding distributed Borůvka — still
// produces the exact MST.
func TestSimulatedProviderExactMST(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"wheel", gen.DistinctWeights(gen.UniformWeights(gen.Wheel(33).G, rng))},
		{"grid", gen.DistinctWeights(gen.UniformWeights(gen.Grid(5, 5).G, rng))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := graph.BFSTree(tc.g, 0)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := mst.ShortcutBoruvka(tc.g, mst.SimulatedProvider(tc.g, tr, 4))
			if err != nil {
				t.Fatal(err)
			}
			assertExactMST(t, tc.g, rs)
			// The simulated construction's measured rounds belong in the
			// simulated ledger; the analytic one must stay empty.
			if rs.CommRounds <= 0 {
				t.Fatal("simulated construction reported no rounds")
			}
			if rs.ChargedRounds != 0 {
				t.Fatalf("simulated construction leaked %d rounds into ChargedRounds", rs.ChargedRounds)
			}
		})
	}
}

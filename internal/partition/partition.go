// Package partition implements the "parts" of the shortcut framework
// (paper Definition 9): pairwise disjoint, individually connected vertex
// subsets of a network graph, plus generators for the part families used in
// experiments (Voronoi parts, Borůvka fragments, adversarial skinny parts).
package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Parts is a family of disjoint connected vertex subsets. Not every vertex
// needs to belong to a part.
type Parts struct {
	G    *graph.Graph
	Sets [][]int // part index -> sorted vertex list
	Of   []int   // vertex -> part index, or -1
}

// New builds and validates a Parts family.
func New(g *graph.Graph, sets [][]int) (*Parts, error) {
	return build(g, sets, true)
}

// NewUnchecked builds a Parts family skipping the per-part connectivity
// BFS. For part families that are connected by construction (Voronoi cells,
// Borůvka fragments, connected-component splits) the check is pure
// overhead; disjointness, vertex ranges, and non-emptiness are still
// enforced.
func NewUnchecked(g *graph.Graph, sets [][]int) (*Parts, error) {
	return build(g, sets, false)
}

func build(g *graph.Graph, sets [][]int, checkConnected bool) (*Parts, error) {
	p := &Parts{G: g, Sets: make([][]int, len(sets)), Of: make([]int, g.N())}
	for i := range p.Of {
		p.Of[i] = -1
	}
	total := 0
	for _, s := range sets {
		total += len(s)
	}
	store := make([]int, 0, total) // all set copies share one backing array
	for i, s := range sets {
		base := len(store)
		store = append(store, s...)
		p.Sets[i] = store[base:len(store):len(store)]
		sort.Ints(p.Sets[i])
		for _, v := range p.Sets[i] {
			if v < 0 || v >= g.N() {
				return nil, fmt.Errorf("partition: part %d has invalid vertex %d", i, v)
			}
			if p.Of[v] != -1 {
				return nil, fmt.Errorf("partition: vertex %d in parts %d and %d", v, p.Of[v], i)
			}
			p.Of[v] = i
		}
	}
	for i, s := range p.Sets {
		if len(s) == 0 {
			return nil, fmt.Errorf("partition: part %d empty", i)
		}
		if checkConnected && !graph.ConnectedSubset(g, s) {
			return nil, fmt.Errorf("partition: part %d not connected", i)
		}
	}
	return p, nil
}

// Validate re-checks disjointness (via Of) and per-part connectivity.
func (p *Parts) Validate() error {
	for i, s := range p.Sets {
		if len(s) == 0 {
			return fmt.Errorf("partition: part %d empty", i)
		}
		if !graph.ConnectedSubset(p.G, s) {
			return fmt.Errorf("partition: part %d not connected", i)
		}
		for _, v := range s {
			if p.Of[v] != i {
				return fmt.Errorf("partition: Of[%d]=%d, expected %d", v, p.Of[v], i)
			}
		}
	}
	return nil
}

// NumParts returns the number of parts.
func (p *Parts) NumParts() int { return len(p.Sets) }

// Voronoi partitions all vertices of a connected graph into numSeeds
// connected cells by multi-source BFS from random distinct seeds.
func Voronoi(g *graph.Graph, numSeeds int, rng *rand.Rand) (*Parts, error) {
	if numSeeds < 1 || numSeeds > g.N() {
		return nil, fmt.Errorf("partition: %d seeds for %d vertices", numSeeds, g.N())
	}
	seeds := rng.Perm(g.N())[:numSeeds]
	r := graph.MultiBFS(g, seeds)
	// CSR fill: count cell sizes, slice one backing array, fill in vertex
	// order (so each cell comes out sorted).
	size := make([]int32, numSeeds)
	for _, o := range r.Owner {
		if o == -1 {
			return nil, fmt.Errorf("partition: %w", graph.ErrDisconnected)
		}
		size[o]++
	}
	sets := make([][]int, numSeeds)
	store := make([]int, 0, g.N())
	for i := 0; i < numSeeds; i++ {
		base := len(store)
		store = store[:base+int(size[i])]
		sets[i] = store[base : base : base+int(size[i])]
	}
	for v, o := range r.Owner {
		sets[o] = append(sets[o], v)
	}
	return NewUnchecked(g, sets) // BFS cells are connected by construction
}

// BoruvkaFragments returns the parts after `phases` rounds of sequential
// Borůvka on g: each fragment (a partial MST component) is one part. This is
// exactly the part family the distributed MST algorithm feeds to the
// shortcut framework.
func BoruvkaFragments(g *graph.Graph, phases int) (*Parts, error) {
	_, p, err := BoruvkaTrace(g, phases)
	return p, err
}

// BoruvkaPhase records one phase of the sequential Borůvka run in the
// dense fragment-label space a distributed replay needs: labels are
// assigned in smallest-member order (the same order UnionFind.Sets uses,
// so the final phase's Next labels coincide with the resulting part
// indices).
type BoruvkaPhase struct {
	// Frag is each vertex's fragment label at the start of the phase.
	Frag []int32
	// NumFrags is the number of fragments at the start of the phase.
	NumFrags int
	// Best is, per fragment, the lightest outgoing edge chosen this phase
	// (graph.EdgeLess order), or -1 for a fragment with no outgoing edge.
	Best []int32
	// Next maps this phase's fragment labels to the labels after the
	// phase's merges (the next phase's Frag, or the final part indices).
	Next []int32
}

// BoruvkaTrace runs sequential Borůvka for up to `phases` phases and
// returns, besides the resulting fragment parts, the per-phase merge trace
// — fragment labels, chosen lightest outgoing edges, and the post-merge
// relabeling. The trace is the ground truth the in-network decomposition
// (congest.BoruvkaDecompose) replays with pipelined convergecasts: each
// phase's Best is one min-convergecast of locally known outgoing edges and
// each Next one pipelined broadcast. A phase in which no fragment has an
// outgoing edge ends the run early (exactly as BoruvkaFragments stopped),
// so the trace can be shorter than `phases`.
func BoruvkaTrace(g *graph.Graph, phases int) ([]BoruvkaPhase, *Parts, error) {
	n := g.N()
	uf := graph.NewUnionFind(n)
	best := g.AcquireScratch() // fragment root -> lightest outgoing edge ID
	defer g.ReleaseScratch(best)
	label := g.AcquireScratch() // fragment root -> dense label + 1
	defer g.ReleaseScratch(label)
	roots := make([]int, 0, n)
	var trace []BoruvkaPhase
	for ph := 0; ph < phases; ph++ {
		best.Reset()
		roots = roots[:0]
		for id := 0; id < g.M(); id++ {
			e := g.Edge(id)
			ru, rv := uf.Find(e.U), uf.Find(e.V)
			if ru == rv {
				continue
			}
			for _, r := range [2]int{ru, rv} {
				if b, ok := best.Get(r); !ok {
					best.Set(r, int32(id))
					roots = append(roots, r)
				} else if graph.EdgeLess(g, id, int(b)) {
					best.Set(r, int32(id))
				}
			}
		}
		if len(roots) == 0 {
			break
		}
		rec := BoruvkaPhase{Frag: denseLabels(g, uf, label)}
		rec.NumFrags = numLabels(rec.Frag)
		rec.Best = make([]int32, rec.NumFrags)
		for i := range rec.Best {
			rec.Best[i] = -1
		}
		for _, r := range roots {
			id, _ := best.Get(r)
			rec.Best[rec.Frag[r]] = id
		}
		for _, r := range roots {
			id, _ := best.Get(r)
			e := g.Edge(int(id))
			uf.Union(e.U, e.V)
		}
		// Next labels: the post-merge labeling, read off any member.
		next := denseLabels(g, uf, label)
		rec.Next = make([]int32, rec.NumFrags)
		for v := 0; v < n; v++ {
			rec.Next[rec.Frag[v]] = next[v]
		}
		trace = append(trace, rec)
	}
	// Fragments grow along edges, so each is connected by construction.
	p, err := NewUnchecked(g, uf.Sets())
	if err != nil {
		return nil, nil, err
	}
	return trace, p, nil
}

// denseLabels assigns each union-find fragment a dense label in
// smallest-member order and returns the per-vertex labeling. The label
// scratch is reset here; callers just lend it.
func denseLabels(g *graph.Graph, uf *graph.UnionFind, label *graph.Scratch) []int32 {
	label.Reset()
	out := make([]int32, g.N())
	num := int32(0)
	for v := 0; v < g.N(); v++ {
		r := uf.Find(v)
		l, ok := label.Get(r)
		if !ok {
			l = num
			label.Set(r, l)
			num++
		}
		out[v] = l
	}
	return out
}

// numLabels returns 1 + the maximum label (labels are dense from 0).
func numLabels(frag []int32) int {
	num := int32(0)
	for _, l := range frag {
		if l+1 > num {
			num = l + 1
		}
	}
	return int(num)
}

// GridRows returns the rows of a rows x cols grid as parts: long skinny
// parts, the adversarial family for planar shortcut quality.
func GridRows(g *graph.Graph, rows, cols int) (*Parts, error) {
	if rows*cols != g.N() {
		return nil, fmt.Errorf("partition: grid dims %dx%d do not match n=%d", rows, cols, g.N())
	}
	sets := make([][]int, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			sets[r] = append(sets[r], r*cols+c)
		}
	}
	return New(g, sets)
}

// PathsAsParts wraps explicit vertex lists (e.g. the paths of the
// lower-bound family) as parts.
func PathsAsParts(g *graph.Graph, paths [][]int) (*Parts, error) {
	return New(g, paths)
}

// RimArcs splits the rim of a wheel graph (hub = vertex n-1) into numArcs
// contiguous arcs, the paper's §2.3.2 cycle-vs-wheel scenario.
func RimArcs(g *graph.Graph, numArcs int) (*Parts, error) {
	rim := g.N() - 1
	if numArcs < 1 || numArcs > rim {
		return nil, fmt.Errorf("partition: %d arcs for rim of %d", numArcs, rim)
	}
	sets := make([][]int, numArcs)
	for i := 0; i < rim; i++ {
		a := i * numArcs / rim
		sets[a] = append(sets[a], i)
	}
	return New(g, sets)
}

// SingletonParts makes each listed vertex its own part.
func SingletonParts(g *graph.Graph, vs []int) (*Parts, error) {
	sets := make([][]int, len(vs))
	for i, v := range vs {
		sets[i] = []int{v}
	}
	return New(g, sets)
}

// Restrict returns the sub-family of parts intersecting keep, with parts
// clipped to keep ∩ part and split into connected components. Used when
// projecting parts into a cell or bag.
func Restrict(g *graph.Graph, p *Parts, keep []int) (clipped [][]int, origin []int) {
	in := g.AcquireScratch()
	defer g.ReleaseScratch(in)
	for _, v := range keep {
		in.Visit(v)
	}
	var inter []int
	for i, s := range p.Sets {
		inter = inter[:0]
		for _, v := range s {
			if in.Has(v) {
				inter = append(inter, v)
			}
		}
		if len(inter) == 0 {
			continue
		}
		for _, comp := range connectedPieces(g, inter) {
			clipped = append(clipped, comp)
			origin = append(origin, i)
		}
	}
	return clipped, origin
}

// connectedPieces splits a vertex set into connected components of the
// induced subgraph. Membership and visit state live in one scratch slot per
// vertex: 0 = in set, unseen; 1 = seen.
func connectedPieces(g *graph.Graph, s []int) [][]int {
	in := g.AcquireScratch()
	defer g.ReleaseScratch(in)
	for _, v := range s {
		in.Set(v, 0)
	}
	var out [][]int
	var stack []int
	store := make([]int, 0, len(s)) // all components share one backing array
	for _, v := range s {
		if st, _ := in.Get(v); st == 1 {
			continue
		}
		base := len(store)
		stack = append(stack[:0], v)
		in.Set(v, 1)
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			store = append(store, x)
			for _, a := range g.Adj(x) {
				if st, ok := in.Get(a.To); ok && st == 0 {
					in.Set(a.To, 1)
					stack = append(stack, a.To)
				}
			}
		}
		comp := store[base:len(store):len(store)]
		sort.Ints(comp)
		out = append(out, comp)
	}
	return out
}

// Package partition implements the "parts" of the shortcut framework
// (paper Definition 9): pairwise disjoint, individually connected vertex
// subsets of a network graph, plus generators for the part families used in
// experiments (Voronoi parts, Borůvka fragments, adversarial skinny parts).
package partition

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Parts is a family of disjoint connected vertex subsets. Not every vertex
// needs to belong to a part.
type Parts struct {
	G    *graph.Graph
	Sets [][]int // part index -> sorted vertex list
	Of   []int   // vertex -> part index, or -1
}

// New builds and validates a Parts family.
func New(g *graph.Graph, sets [][]int) (*Parts, error) {
	p := &Parts{G: g, Sets: make([][]int, len(sets)), Of: make([]int, g.N())}
	for i := range p.Of {
		p.Of[i] = -1
	}
	for i, s := range sets {
		p.Sets[i] = append([]int(nil), s...)
		sort.Ints(p.Sets[i])
		for _, v := range p.Sets[i] {
			if v < 0 || v >= g.N() {
				return nil, fmt.Errorf("partition: part %d has invalid vertex %d", i, v)
			}
			if p.Of[v] != -1 {
				return nil, fmt.Errorf("partition: vertex %d in parts %d and %d", v, p.Of[v], i)
			}
			p.Of[v] = i
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate re-checks disjointness (via Of) and per-part connectivity.
func (p *Parts) Validate() error {
	for i, s := range p.Sets {
		if len(s) == 0 {
			return fmt.Errorf("partition: part %d empty", i)
		}
		if !graph.ConnectedSubset(p.G, s) {
			return fmt.Errorf("partition: part %d not connected", i)
		}
		for _, v := range s {
			if p.Of[v] != i {
				return fmt.Errorf("partition: Of[%d]=%d, expected %d", v, p.Of[v], i)
			}
		}
	}
	return nil
}

// NumParts returns the number of parts.
func (p *Parts) NumParts() int { return len(p.Sets) }

// Voronoi partitions all vertices of a connected graph into numSeeds
// connected cells by multi-source BFS from random distinct seeds.
func Voronoi(g *graph.Graph, numSeeds int, rng *rand.Rand) (*Parts, error) {
	if numSeeds < 1 || numSeeds > g.N() {
		return nil, fmt.Errorf("partition: %d seeds for %d vertices", numSeeds, g.N())
	}
	seeds := rng.Perm(g.N())[:numSeeds]
	r := graph.MultiBFS(g, seeds)
	sets := make([][]int, numSeeds)
	for v, o := range r.Owner {
		if o == -1 {
			return nil, fmt.Errorf("partition: %w", graph.ErrDisconnected)
		}
		sets[o] = append(sets[o], v)
	}
	return New(g, sets)
}

// BoruvkaFragments returns the parts after `phases` rounds of sequential
// Borůvka on g: each fragment (a partial MST component) is one part. This is
// exactly the part family the distributed MST algorithm feeds to the
// shortcut framework.
func BoruvkaFragments(g *graph.Graph, phases int) (*Parts, error) {
	uf := graph.NewUnionFind(g.N())
	for ph := 0; ph < phases; ph++ {
		best := make(map[int]int)
		for id := 0; id < g.M(); id++ {
			e := g.Edge(id)
			ru, rv := uf.Find(e.U), uf.Find(e.V)
			if ru == rv {
				continue
			}
			for _, r := range [2]int{ru, rv} {
				if b, ok := best[r]; !ok || graph.EdgeLess(g, id, b) {
					best[r] = id
				}
			}
		}
		if len(best) == 0 {
			break
		}
		for _, id := range best {
			e := g.Edge(id)
			uf.Union(e.U, e.V)
		}
	}
	return New(g, uf.Sets())
}

// GridRows returns the rows of a rows x cols grid as parts: long skinny
// parts, the adversarial family for planar shortcut quality.
func GridRows(g *graph.Graph, rows, cols int) (*Parts, error) {
	if rows*cols != g.N() {
		return nil, fmt.Errorf("partition: grid dims %dx%d do not match n=%d", rows, cols, g.N())
	}
	sets := make([][]int, rows)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			sets[r] = append(sets[r], r*cols+c)
		}
	}
	return New(g, sets)
}

// PathsAsParts wraps explicit vertex lists (e.g. the paths of the
// lower-bound family) as parts.
func PathsAsParts(g *graph.Graph, paths [][]int) (*Parts, error) {
	return New(g, paths)
}

// RimArcs splits the rim of a wheel graph (hub = vertex n-1) into numArcs
// contiguous arcs, the paper's §2.3.2 cycle-vs-wheel scenario.
func RimArcs(g *graph.Graph, numArcs int) (*Parts, error) {
	rim := g.N() - 1
	if numArcs < 1 || numArcs > rim {
		return nil, fmt.Errorf("partition: %d arcs for rim of %d", numArcs, rim)
	}
	sets := make([][]int, numArcs)
	for i := 0; i < rim; i++ {
		a := i * numArcs / rim
		sets[a] = append(sets[a], i)
	}
	return New(g, sets)
}

// SingletonParts makes each listed vertex its own part.
func SingletonParts(g *graph.Graph, vs []int) (*Parts, error) {
	sets := make([][]int, len(vs))
	for i, v := range vs {
		sets[i] = []int{v}
	}
	return New(g, sets)
}

// Restrict returns the sub-family of parts intersecting keep, with parts
// clipped to keep ∩ part and split into connected components. Used when
// projecting parts into a cell or bag.
func Restrict(g *graph.Graph, p *Parts, keep []int) (clipped [][]int, origin []int) {
	in := make(map[int]bool, len(keep))
	for _, v := range keep {
		in[v] = true
	}
	for i, s := range p.Sets {
		var inter []int
		for _, v := range s {
			if in[v] {
				inter = append(inter, v)
			}
		}
		if len(inter) == 0 {
			continue
		}
		for _, comp := range connectedPieces(g, inter) {
			clipped = append(clipped, comp)
			origin = append(origin, i)
		}
	}
	return clipped, origin
}

// connectedPieces splits a vertex set into connected components of the
// induced subgraph.
func connectedPieces(g *graph.Graph, s []int) [][]int {
	in := make(map[int]bool, len(s))
	for _, v := range s {
		in[v] = true
	}
	seen := make(map[int]bool, len(s))
	var out [][]int
	for _, v := range s {
		if seen[v] {
			continue
		}
		var comp []int
		stack := []int{v}
		seen[v] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, x)
			for _, a := range g.Adj(x) {
				if in[a.To] && !seen[a.To] {
					seen[a.To] = true
					stack = append(stack, a.To)
				}
			}
		}
		sort.Ints(comp)
		out = append(out, comp)
	}
	return out
}

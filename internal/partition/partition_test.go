package partition_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestNewValidation(t *testing.T) {
	g := gen.Path(6)
	// Valid.
	p, err := partition.New(g, [][]int{{0, 1}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 2 || p.Of[2] != -1 || p.Of[4] != 1 {
		t.Fatalf("parts wrong: %+v", p)
	}
	// Overlap rejected.
	if _, err := partition.New(g, [][]int{{0, 1}, {1, 2}}); err == nil {
		t.Fatal("accepted overlapping parts")
	}
	// Disconnected part rejected.
	if _, err := partition.New(g, [][]int{{0, 2}}); err == nil {
		t.Fatal("accepted disconnected part")
	}
	// Empty part rejected.
	if _, err := partition.New(g, [][]int{{}}); err == nil {
		t.Fatal("accepted empty part")
	}
	// Out of range rejected.
	if _, err := partition.New(g, [][]int{{99}}); err == nil {
		t.Fatal("accepted invalid vertex")
	}
}

func TestVoronoiCoversAndConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := gen.ErdosRenyiConnected(50, 120, rng)
		k := 1 + rng.Intn(10)
		p, err := partition.Voronoi(g, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumParts() != k {
			t.Fatalf("parts %d want %d", p.NumParts(), k)
		}
		covered := 0
		for _, s := range p.Sets {
			covered += len(s)
		}
		if covered != g.N() {
			t.Fatalf("covered %d of %d", covered, g.N())
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVoronoiErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.Path(5)
	if _, err := partition.Voronoi(g, 0, rng); err == nil {
		t.Fatal("accepted 0 seeds")
	}
	if _, err := partition.Voronoi(g, 9, rng); err == nil {
		t.Fatal("accepted more seeds than vertices")
	}
	d := graph.New(4)
	d.AddEdge(0, 1, 1)
	if _, err := partition.Voronoi(d, 1, rng); err == nil {
		t.Fatal("accepted disconnected graph")
	}
}

func TestBoruvkaFragmentsShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.DistinctWeights(gen.UniformWeights(gen.Grid(8, 8).G, rng))
	prev := g.N() + 1
	for phases := 0; phases <= 4; phases++ {
		p, err := partition.BoruvkaFragments(g, phases)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumParts() >= prev && p.NumParts() != 1 {
			t.Fatalf("fragments did not shrink: %d -> %d", prev, p.NumParts())
		}
		prev = p.NumParts()
	}
	if prev != 1 {
		t.Fatalf("expected full merge, have %d fragments", prev)
	}
}

func TestGridRowsAndRimArcs(t *testing.T) {
	e := gen.Grid(4, 6)
	p, err := partition.GridRows(e.G, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 4 || len(p.Sets[0]) != 6 {
		t.Fatalf("rows wrong")
	}
	if _, err := partition.GridRows(e.G, 3, 6); err == nil {
		t.Fatal("accepted wrong dims")
	}
	w := gen.Wheel(17)
	arcs, err := partition.RimArcs(w.G, 4)
	if err != nil {
		t.Fatal(err)
	}
	if arcs.NumParts() != 4 {
		t.Fatalf("arcs %d", arcs.NumParts())
	}
	total := 0
	for _, s := range arcs.Sets {
		total += len(s)
	}
	if total != 16 {
		t.Fatalf("rim coverage %d want 16 (hub excluded)", total)
	}
	if arcs.Of[16] != -1 {
		t.Fatal("hub should be unassigned")
	}
}

func TestSingletonParts(t *testing.T) {
	g := gen.Path(5)
	p, err := partition.SingletonParts(g, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 2 || len(p.Sets[0]) != 1 {
		t.Fatal("singletons wrong")
	}
}

func TestRestrictSplitsComponents(t *testing.T) {
	g := gen.Path(7)
	p, err := partition.New(g, [][]int{{0, 1, 2, 3, 4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	// Keep {0,1, 3, 5,6}: part splits into 3 components.
	clipped, origin := partition.Restrict(g, p, []int{0, 1, 3, 5, 6})
	if len(clipped) != 3 {
		t.Fatalf("components %d want 3: %v", len(clipped), clipped)
	}
	for _, o := range origin {
		if o != 0 {
			t.Fatalf("origin %v", origin)
		}
	}
}

func TestPathsAsParts(t *testing.T) {
	lb := gen.LowerBound(3, 5)
	p, err := partition.PathsAsParts(lb.G, lb.Paths)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 3 {
		t.Fatalf("parts %d", p.NumParts())
	}
}

package partition_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func TestNewValidation(t *testing.T) {
	g := gen.Path(6)
	// Valid.
	p, err := partition.New(g, [][]int{{0, 1}, {3, 4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 2 || p.Of[2] != -1 || p.Of[4] != 1 {
		t.Fatalf("parts wrong: %+v", p)
	}
	// Overlap rejected.
	if _, err := partition.New(g, [][]int{{0, 1}, {1, 2}}); err == nil {
		t.Fatal("accepted overlapping parts")
	}
	// Disconnected part rejected.
	if _, err := partition.New(g, [][]int{{0, 2}}); err == nil {
		t.Fatal("accepted disconnected part")
	}
	// Empty part rejected.
	if _, err := partition.New(g, [][]int{{}}); err == nil {
		t.Fatal("accepted empty part")
	}
	// Out of range rejected.
	if _, err := partition.New(g, [][]int{{99}}); err == nil {
		t.Fatal("accepted invalid vertex")
	}
}

func TestVoronoiCoversAndConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := gen.ErdosRenyiConnected(50, 120, rng)
		k := 1 + rng.Intn(10)
		p, err := partition.Voronoi(g, k, rng)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumParts() != k {
			t.Fatalf("parts %d want %d", p.NumParts(), k)
		}
		covered := 0
		for _, s := range p.Sets {
			covered += len(s)
		}
		if covered != g.N() {
			t.Fatalf("covered %d of %d", covered, g.N())
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestVoronoiErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.Path(5)
	if _, err := partition.Voronoi(g, 0, rng); err == nil {
		t.Fatal("accepted 0 seeds")
	}
	if _, err := partition.Voronoi(g, 9, rng); err == nil {
		t.Fatal("accepted more seeds than vertices")
	}
	d := graph.New(4)
	d.AddEdge(0, 1, 1)
	if _, err := partition.Voronoi(d, 1, rng); err == nil {
		t.Fatal("accepted disconnected graph")
	}
}

func TestBoruvkaFragmentsShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gen.DistinctWeights(gen.UniformWeights(gen.Grid(8, 8).G, rng))
	prev := g.N() + 1
	for phases := 0; phases <= 4; phases++ {
		p, err := partition.BoruvkaFragments(g, phases)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumParts() >= prev && p.NumParts() != 1 {
			t.Fatalf("fragments did not shrink: %d -> %d", prev, p.NumParts())
		}
		prev = p.NumParts()
	}
	if prev != 1 {
		t.Fatalf("expected full merge, have %d fragments", prev)
	}
}

func TestGridRowsAndRimArcs(t *testing.T) {
	e := gen.Grid(4, 6)
	p, err := partition.GridRows(e.G, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 4 || len(p.Sets[0]) != 6 {
		t.Fatalf("rows wrong")
	}
	if _, err := partition.GridRows(e.G, 3, 6); err == nil {
		t.Fatal("accepted wrong dims")
	}
	w := gen.Wheel(17)
	arcs, err := partition.RimArcs(w.G, 4)
	if err != nil {
		t.Fatal(err)
	}
	if arcs.NumParts() != 4 {
		t.Fatalf("arcs %d", arcs.NumParts())
	}
	total := 0
	for _, s := range arcs.Sets {
		total += len(s)
	}
	if total != 16 {
		t.Fatalf("rim coverage %d want 16 (hub excluded)", total)
	}
	if arcs.Of[16] != -1 {
		t.Fatal("hub should be unassigned")
	}
}

func TestSingletonParts(t *testing.T) {
	g := gen.Path(5)
	p, err := partition.SingletonParts(g, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 2 || len(p.Sets[0]) != 1 {
		t.Fatal("singletons wrong")
	}
}

func TestRestrictSplitsComponents(t *testing.T) {
	g := gen.Path(7)
	p, err := partition.New(g, [][]int{{0, 1, 2, 3, 4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	// Keep {0,1, 3, 5,6}: part splits into 3 components.
	clipped, origin := partition.Restrict(g, p, []int{0, 1, 3, 5, 6})
	if len(clipped) != 3 {
		t.Fatalf("components %d want 3: %v", len(clipped), clipped)
	}
	for _, o := range origin {
		if o != 0 {
			t.Fatalf("origin %v", origin)
		}
	}
}

func TestPathsAsParts(t *testing.T) {
	lb := gen.LowerBound(3, 5)
	p, err := partition.PathsAsParts(lb.G, lb.Paths)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 3 {
		t.Fatalf("parts %d", p.NumParts())
	}
}

// TestBoruvkaTraceConsistency: the trace's per-phase record is internally
// consistent and its endpoint matches BoruvkaFragments — dense labels in
// smallest-member order, Next mappings that compose to the final part
// indices, and Best edges that actually leave their fragment and are
// lightest among the fragment's incident outgoing edges.
func TestBoruvkaTraceConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := gen.DistinctWeights(gen.UniformWeights(gen.Grid(7, 9).G, rng))
	const phases = 3
	trace, p, err := partition.BoruvkaTrace(g, phases)
	if err != nil {
		t.Fatal(err)
	}
	want, err := partition.BoruvkaFragments(g, phases)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != want.NumParts() {
		t.Fatalf("trace parts %d, fragments %d", p.NumParts(), want.NumParts())
	}
	for v := range p.Of {
		if p.Of[v] != want.Of[v] {
			t.Fatalf("vertex %d: trace part %d, fragments part %d", v, p.Of[v], want.Of[v])
		}
	}
	for phi, ph := range trace {
		if len(ph.Frag) != g.N() || len(ph.Best) != ph.NumFrags || len(ph.Next) != ph.NumFrags {
			t.Fatalf("phase %d: inconsistent record shapes", phi)
		}
		// Labels dense in smallest-member order: the first occurrence of
		// label l scanning v ascending must be preceded by labels 0..l-1.
		seen := int32(0)
		for v := 0; v < g.N(); v++ {
			if ph.Frag[v] == seen {
				seen++
			} else if ph.Frag[v] > seen {
				t.Fatalf("phase %d: label %d appears before %d", phi, ph.Frag[v], seen)
			}
		}
		if int(seen) != ph.NumFrags {
			t.Fatalf("phase %d: %d labels for NumFrags %d", phi, seen, ph.NumFrags)
		}
		for f := 0; f < ph.NumFrags; f++ {
			id := ph.Best[f]
			if id == -1 {
				continue
			}
			e := g.Edge(int(id))
			fu, fv := ph.Frag[e.U], ph.Frag[e.V]
			if fu != int32(f) && fv != int32(f) {
				t.Fatalf("phase %d fragment %d: best edge %d not incident", phi, f, id)
			}
			if fu == fv {
				t.Fatalf("phase %d fragment %d: best edge %d does not leave the fragment", phi, f, id)
			}
			// Lightest among the fragment's outgoing edges.
			for id2 := 0; id2 < g.M(); id2++ {
				e2 := g.Edge(id2)
				f2u, f2v := ph.Frag[e2.U], ph.Frag[e2.V]
				if f2u == f2v || (f2u != int32(f) && f2v != int32(f)) {
					continue
				}
				if graph.EdgeLess(g, id2, int(id)) {
					t.Fatalf("phase %d fragment %d: edge %d lighter than chosen %d", phi, f, id2, id)
				}
			}
		}
		// Next composes with the following phase's labels (or the final
		// part indices).
		for v := 0; v < g.N(); v++ {
			next := ph.Next[ph.Frag[v]]
			if phi+1 < len(trace) {
				if next != trace[phi+1].Frag[v] {
					t.Fatalf("phase %d vertex %d: Next %d != next phase label %d", phi, v, next, trace[phi+1].Frag[v])
				}
			} else if int(next) != p.Of[v] {
				t.Fatalf("final phase vertex %d: Next %d != part index %d", v, next, p.Of[v])
			}
		}
	}
}

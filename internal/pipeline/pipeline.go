// Package pipeline is the shared provider layer of the shortcut framework:
// every distributed algorithm in the repo (MST, approximate min-cut,
// approximate SSSP) consumes its shortcuts through one Provider type, and
// every construction route — witness-derived, oblivious, in-network
// flooding, fully self-sufficient — is a Provider. The package also hosts
// the zero-witness bootstrap (SelfSetup): leader election plus distributed
// BFS, so a deployed network can run the whole pipeline with no
// generator-supplied structure at all.
//
// Round accounting is explicit: a Provider returns a two-ledger Rounds
// cost, so consumers book simulated (measured) rounds and analytic
// (charged) rounds into their matching result fields — the structural fix
// for the ledger-mixing bug class PR 2 found in min-cut.
package pipeline

import (
	"fmt"

	"repro/internal/congest"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/shortcut"
)

// Rounds is a two-ledger round cost. Simulated rounds were measured on the
// CONGEST engine (the EffectiveRounds/CommRounds class); Charged rounds are
// analytic framework budgets (the ChargedRounds class). A cost may populate
// both (a hybrid pipeline), but most providers fill exactly one per mode.
type Rounds struct {
	Simulated int
	Charged   int
}

// Plus returns the ledger-wise sum.
func (r Rounds) Plus(o Rounds) Rounds {
	return Rounds{Simulated: r.Simulated + o.Simulated, Charged: r.Charged + o.Charged}
}

// Total collapses both ledgers — only for display; never book a Total back
// into a single ledger.
func (r Rounds) Total() int { return r.Simulated + r.Charged }

// Provider yields a shortcut for the given part family plus the two-ledger
// round cost of obtaining it. The MST Borůvka calls it once per phase with
// the current fragments; min-cut calls it through each packing iteration;
// SSSP calls it once for its fixed decomposition.
type Provider func(p *partition.Parts) (*shortcut.Shortcut, Rounds, error)

// Oblivious builds shortcuts with the structure-blind claiming constructor;
// the analytic ledger is charged the measured quality (the Õ(q)
// construction bound the framework proves).
func Oblivious(g *graph.Graph, t *graph.Tree) Provider {
	return func(p *partition.Parts) (*shortcut.Shortcut, Rounds, error) {
		s, m := shortcut.ObliviousAuto(g, t, p)
		return s, Rounds{Charged: m.Quality}, nil
	}
}

// Empty gives no shortcuts: aggregation floods inside fragments, at no
// construction cost.
func Empty(g *graph.Graph, t *graph.Tree) Provider {
	return func(p *partition.Parts) (*shortcut.Shortcut, Rounds, error) {
		return shortcut.Empty(g, t, p), Rounds{}, nil
	}
}

// SimulatedOblivious constructs shortcuts with the fully simulated
// distributed claiming protocol (congest.BuildObliviousShortcut): the
// construction cost is the protocol's own measured effective rounds.
// Budgets below 1 degrade to the minimum lawful congestion budget of 1 (a
// correct, if block-heavy, construction) rather than failing.
func SimulatedOblivious(g *graph.Graph, t *graph.Tree, budget int) Provider {
	return func(p *partition.Parts) (*shortcut.Shortcut, Rounds, error) {
		res, err := congest.BuildObliviousShortcut(g, t, p, budget)
		if err != nil {
			return nil, Rounds{}, err
		}
		return res.S, Rounds{Simulated: res.EffectiveRounds}, nil
	}
}

// Flood constructs shortcuts in-network with the flooding construction
// (congest.ConstructShortcut) at a fixed congestion cap: simulate runs the
// actual protocol and returns its measured effective rounds; otherwise the
// fixed point is computed sequentially and the framework's construction
// budget is charged.
func Flood(g *graph.Graph, t *graph.Tree, cap int, simulate bool) Provider {
	return func(p *partition.Parts) (*shortcut.Shortcut, Rounds, error) {
		res, err := congest.ConstructShortcut(g, t, p, congest.ConstructOptions{Cap: cap, Simulate: simulate})
		if err != nil {
			return nil, Rounds{}, err
		}
		return res.S, Rounds{Simulated: res.EffectiveRounds, Charged: res.ChargedRounds}, nil
	}
}

// AutoFlood constructs shortcuts in-network with no cap input either: every
// invocation runs the O(log n) doubling cap search (congest.SearchCap) —
// block-priority bootstrap, one flooding construction plus convergecast
// quality estimate per guess, winner broadcast — and returns the winning
// shortcut with the search's full cost in the mode's ledger.
func AutoFlood(g *graph.Graph, t *graph.Tree, simulate bool) Provider {
	return AutoFloodUnder(g, t, simulate, nil)
}

// AutoFloodUnder is AutoFlood on a degraded network: every protocol of the
// cap search runs against the adversary's fault plan, retrying with
// doubled budgets on non-convergence. Because every sub-protocol
// self-checks against the sequential fixed points, a successful faulted
// search yields the identical shortcut and cap as the fault-free search —
// only the measured rounds differ. A nil adversary is AutoFlood.
func AutoFloodUnder(g *graph.Graph, t *graph.Tree, simulate bool, adv *congest.Adversary) Provider {
	return func(p *partition.Parts) (*shortcut.Shortcut, Rounds, error) {
		res, err := congest.SearchCap(g, t, p, congest.SearchOptions{Simulate: simulate, Adversary: adv})
		if err != nil {
			return nil, Rounds{}, err
		}
		return res.S, Rounds{Simulated: res.EffectiveRounds, Charged: res.ChargedRounds}, nil
	}
}

// Setup is the zero-witness bootstrap: the network elects a leader and
// builds its own BFS spanning tree, so no generator-supplied tree (or root)
// is needed anywhere downstream.
type Setup struct {
	G      *graph.Graph
	Leader int
	Tree   *graph.Tree
	// Cost is the bootstrap's round cost in the ledger matching the mode.
	Cost Rounds
	// Stats accumulates the bootstrap protocols' engine counters in
	// simulate mode (rounds, messages, and — under an adversary — the
	// dropped/down/crash tallies), so degraded runs are observable.
	Stats congest.Stats
	// ChargedEquivalent is the analytic-ledger bootstrap charge regardless
	// of mode (a closed form of the diameter bound), so a simulate run can
	// report both ledgers without re-running the setup. Equals Cost.Charged
	// in analytic mode.
	ChargedEquivalent int
	Simulate          bool
}

// SelfSetup elects the minimum vertex ID by flooding and builds the BFS
// tree rooted there. In simulate mode both protocols (congest.LeaderElect,
// congest.DistributedBFS) actually run on the engine — their measured
// rounds are the cost — and the tree is assembled from the protocol's own
// parent/edge announcements. In analytic mode the same leader and a BFS
// tree are computed sequentially and the two floods' round budgets are
// charged. The diameter bound the protocols need is the doubled double-
// sweep estimate (2·ecc ≥ D for any vertex), matching the CONGEST
// convention that nodes know an upper bound on D (§1.3.1).
func SelfSetup(g *graph.Graph, simulate bool) (*Setup, error) {
	return SelfSetupUnder(g, simulate, nil)
}

// SelfSetupUnder is the zero-witness bootstrap on a degraded network: with
// a non-nil adversary (simulate mode only), election and BFS run as the
// resilient re-broadcasting protocols — every round re-offers the node's
// current knowledge, so lost messages cost rounds, not correctness — with
// per-protocol retry under doubled budgets. Their converged states are
// checked against the same sequential fixed points the fault-free
// protocols use, so a successful degraded setup elects the identical
// leader and tree. A nil adversary is SelfSetup.
func SelfSetupUnder(g *graph.Graph, simulate bool, adv *congest.Adversary) (*Setup, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("pipeline: self-setup over an empty network")
	}
	if adv != nil && !simulate {
		return nil, fmt.Errorf("pipeline: self-setup adversary requires simulate mode")
	}
	diamBound := 2*graph.DiameterApprox(g) + 2
	s := &Setup{G: g, Simulate: simulate, ChargedEquivalent: 2 * (diamBound + 2)}
	if !simulate {
		s.Leader = 0 // LeaderElect elects the minimum vertex ID
		t, err := electedTree(g, s.Leader)
		if err != nil {
			return nil, fmt.Errorf("pipeline: self-setup BFS: %w", err)
		}
		s.Tree = t
		s.Cost = Rounds{Charged: 2 * (diamBound + 2)}
		return s, nil
	}
	var (
		leader         int
		parent         []int
		parentEdge     []int
		estats, bstats congest.Stats
		err            error
	)
	if adv != nil {
		leader, estats, err = adv.LeaderElect(g, diamBound)
	} else {
		leader, estats, err = congest.LeaderElect(g, diamBound)
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: leader election: %w", err)
	}
	if adv != nil {
		parent, parentEdge, bstats, err = adv.BFS(g, leader, diamBound)
	} else {
		parent, parentEdge, bstats, err = congest.DistributedBFS(g, leader, diamBound)
	}
	if err != nil {
		return nil, fmt.Errorf("pipeline: distributed BFS: %w", err)
	}
	t, err := graph.TreeFromParents(g, leader, parent, parentEdge)
	if err != nil {
		return nil, fmt.Errorf("pipeline: assembling elected tree: %w", err)
	}
	s.Leader = leader
	s.Tree = t
	s.Cost = Rounds{Simulated: estats.Rounds + bstats.Rounds}
	s.Stats = estats
	s.Stats.Add(bstats)
	return s, nil
}

// electedTree builds, sequentially, exactly the BFS tree the distributed
// flood elects — congest.CanonicalBFSParents' lowest-port rule, assembled
// into a Tree. Keeping the analytic path byte-identical to the protocol's
// fixed point means the two modes of the whole downstream pipeline
// construct the same shortcuts (the repo's sequential-oracle convention).
func electedTree(g *graph.Graph, root int) (*graph.Tree, error) {
	parent, parentEdge, err := congest.CanonicalBFSParents(g, root)
	if err != nil {
		return nil, err
	}
	return graph.TreeFromParents(g, root, parent, parentEdge)
}

// TreeFor transfers the elected tree onto a clone of the setup's graph
// (same vertices, same edge IDs — e.g. min-cut's reweighted packing
// copies), revalidating it against the clone. No new rounds are needed:
// the tree is a property of the topology, which the clone shares.
func (s *Setup) TreeFor(h *graph.Graph) (*graph.Tree, error) {
	if h == s.G {
		return s.Tree, nil
	}
	t, err := graph.TreeFromParents(h, s.Leader, s.Tree.Parent, s.Tree.ParentEdge)
	if err != nil {
		return nil, fmt.Errorf("pipeline: elected tree does not fit graph clone: %w", err)
	}
	return t, nil
}

// Provider returns the fully self-sufficient provider over the elected
// tree: the in-network cap search per part family (AutoFlood). Together
// with the Setup cost this prices the complete zero-witness pipeline.
func (s *Setup) Provider() Provider {
	return AutoFlood(s.G, s.Tree, s.Simulate)
}

// Decompose runs the Borůvka fragment decomposition in-network over the
// elected tree (congest.BoruvkaDecompose): per phase, one pipelined
// min-convergecast of the fragments' lightest outgoing edges up the tree
// and one pipelined relabeling broadcast back down — the decomposition the
// self-sufficient SSSP pipeline feeds to the shortcut framework, priced in
// the setup's mode. In simulate mode the protocols run on the engine and
// the measured rounds land in the simulated ledger; analytic mode charges
// congest.DecomposePhaseBudget per phase. (Before this existed, the
// decomposition was partition.BoruvkaFragments plus a flat modeled
// aggregation charge per phase.)
func (s *Setup) Decompose(phases int) (*partition.Parts, Rounds, error) {
	res, err := congest.BoruvkaDecompose(s.G, s.Tree, phases, s.Simulate)
	if err != nil {
		return nil, Rounds{}, fmt.Errorf("pipeline: fragment decomposition: %w", err)
	}
	return res.Parts, Rounds{Simulated: res.EffectiveRounds, Charged: res.ChargedRounds}, nil
}

package pipeline_test

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pipeline"
)

// TestSelfSetupModes: both modes elect the same leader (the minimum vertex
// ID), return a valid BFS tree of the graph, and book their cost in
// exactly one ledger.
func TestSelfSetupModes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", gen.Grid(6, 7).G},
		{"wheel", gen.Wheel(33).G},
		{"er", gen.ErdosRenyiConnected(50, 120, rng)},
	} {
		var trees []*graph.Tree
		for _, simulate := range []bool{false, true} {
			s, err := pipeline.SelfSetup(tc.g, simulate)
			if err != nil {
				t.Fatalf("%s simulate=%v: %v", tc.name, simulate, err)
			}
			trees = append(trees, s.Tree)
			if s.Leader != 0 {
				t.Fatalf("%s simulate=%v: leader %d, want the minimum ID 0", tc.name, simulate, s.Leader)
			}
			if s.Tree.Root != 0 || s.Tree.N() != tc.g.N() {
				t.Fatalf("%s simulate=%v: tree root %d over %d vertices", tc.name, simulate, s.Tree.Root, s.Tree.N())
			}
			// BFS optimality: the self-built tree's depths must equal the
			// graph's true hop distances from the leader.
			ref := graph.BFS(tc.g, 0)
			for v := 0; v < tc.g.N(); v++ {
				if s.Tree.Depth[v] != ref.Dist[v] {
					t.Fatalf("%s simulate=%v: vertex %d at depth %d, BFS distance %d",
						tc.name, simulate, v, s.Tree.Depth[v], ref.Dist[v])
				}
			}
			if simulate && (s.Cost.Simulated <= 0 || s.Cost.Charged != 0) {
				t.Fatalf("%s simulate=true: cost %+v not exclusively simulated", tc.name, s.Cost)
			}
			if !simulate && (s.Cost.Charged <= 0 || s.Cost.Simulated != 0) {
				t.Fatalf("%s simulate=false: cost %+v not exclusively charged", tc.name, s.Cost)
			}
		}
		// The analytic path is the oracle of the protocol: both modes must
		// elect byte-identical trees (same lowest-port tie-breaks).
		for v := 0; v < tc.g.N(); v++ {
			if trees[0].Parent[v] != trees[1].Parent[v] || trees[0].ParentEdge[v] != trees[1].ParentEdge[v] {
				t.Fatalf("%s: modes elected different trees at vertex %d: parent %d/%d edge %d/%d",
					tc.name, v, trees[0].Parent[v], trees[1].Parent[v], trees[0].ParentEdge[v], trees[1].ParentEdge[v])
			}
		}
	}
}

// TestSetupTreeFor: the elected tree transfers onto a clone (min-cut's
// reweighted packing copies) and is rejected by an unrelated graph.
func TestSetupTreeFor(t *testing.T) {
	g := gen.Grid(5, 5).G
	s, err := pipeline.SelfSetup(g, false)
	if err != nil {
		t.Fatal(err)
	}
	h := g.Clone()
	ht, err := s.TreeFor(h)
	if err != nil {
		t.Fatal(err)
	}
	if ht.G != h {
		t.Fatal("transferred tree does not belong to the clone")
	}
	if ht.Height() != s.Tree.Height() {
		t.Fatalf("transferred height %d != original %d", ht.Height(), s.Tree.Height())
	}
	if same, err := s.TreeFor(g); err != nil || same != s.Tree {
		t.Fatalf("TreeFor on the original graph should return the elected tree itself (%v)", err)
	}
	other := gen.Path(7)
	if _, err := s.TreeFor(other); err == nil {
		t.Fatal("accepted a structurally different graph")
	}
}

// TestAutoFloodProviderLedgers: the self-sufficient provider yields a
// usable shortcut for a part family with its cost exclusively in the
// mode's ledger, and both modes hand back the identical shortcut.
func TestAutoFloodProviderLedgers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gen.ErdosRenyiConnected(60, 140, rng)
	p, err := partition.Voronoi(g, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	var edges [][][]int
	for _, simulate := range []bool{false, true} {
		setup, err := pipeline.SelfSetup(g, simulate)
		if err != nil {
			t.Fatal(err)
		}
		s, cost, err := setup.Provider()(p)
		if err != nil {
			t.Fatalf("simulate=%v: %v", simulate, err)
		}
		if s == nil || s.G != g {
			t.Fatalf("simulate=%v: bad shortcut", simulate)
		}
		if simulate && (cost.Simulated <= 0 || cost.Charged != 0) {
			t.Fatalf("simulate=true: cost %+v", cost)
		}
		if !simulate && (cost.Charged <= 0 || cost.Simulated != 0) {
			t.Fatalf("simulate=false: cost %+v", cost)
		}
		edges = append(edges, s.Edges)
	}
	// The elected tree and the cap search are mode-independent, so the
	// constructed assignment must be too.
	for i := range edges[0] {
		if len(edges[0][i]) != len(edges[1][i]) {
			t.Fatalf("part %d: modes disagree on edge sets", i)
		}
		for j := range edges[0][i] {
			if edges[0][i][j] != edges[1][i][j] {
				t.Fatalf("part %d: modes disagree on edge sets", i)
			}
		}
	}
}

package query

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/xrand"
)

// TraceOptions configures a synthetic query-trace replay.
type TraceOptions struct {
	// Queries is the trace length (required, > 0).
	Queries int
	// Window is the batching granularity: each window's distinct missing
	// sources are computed in one batched k-source run before the
	// window's queries are served concurrently. Zero selects 1024.
	Window int
	// Workers is the serving concurrency (zero selects GOMAXPROCS). The
	// report's deterministic fields are identical for every worker count:
	// warming is sequential and the checksum folds per-query hashes with
	// XOR, which is order-independent.
	Workers int
	// ZipfS is the source skew exponent (zero selects 1.2; must be > 1).
	// Sources are drawn Zipf-distributed over a seeded permutation of the
	// vertices, destinations uniformly.
	ZipfS float64
	// Seed drives the whole trace; equal seeds replay byte-identical
	// traces.
	Seed int64
}

// Report summarizes a replay. All fields except WallNS and QPS are
// byte-deterministic in (oracle state, TraceOptions) — independent of
// Workers and GOMAXPROCS.
type Report struct {
	Queries int
	// Hits counts queries served from a cached vector — including the
	// window-mates of a miss, which ride the batched computation the first
	// query of their source triggered. Misses counts the remainder: one
	// per distinct uncached source per window.
	Hits   int
	Misses int
	// Computed is the number of source vectors actually computed (the sum
	// of batch sizes = Misses).
	Computed int
	Windows  int
	Workers  int
	// Rounds is the two-ledger communication cost of the whole replay:
	// every batched miss computation, with hits contributing zero.
	Rounds pipeline.Rounds
	// Checksum XOR-folds a hash of every (query index, answer) pair: the
	// determinism witness compared across worker counts and replays.
	Checksum uint64
	// WallNS/QPS report wall-clock serving throughput (not deterministic).
	WallNS int64
	QPS    float64
	// HitRate is Hits/Queries; RoundsPerQuery amortizes Rounds.Total()
	// over the trace.
	HitRate        float64
	RoundsPerQuery float64
}

// mixQuery hashes one served query into its checksum contribution:
// SplitMix64-style finalization over the query's global index and the
// answer's bits, so the XOR fold is order-independent but still position-
// and value-sensitive.
//
//congest:pure
func mixQuery(idx, bits uint64) uint64 {
	x := idx*0x9E3779B97F4A7C15 ^ bits
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	return x
}

// Replay drives a seeded Zipf-skewed synthetic trace against the oracle:
// per window it classifies hits sequentially, warms the distinct missing
// sources in one batched k-source computation, then serves the window's
// queries concurrently over Workers goroutines from the cache (read-only:
// the concurrent phase installs nothing, so the cache contents stay
// exactly what the deterministic warming installed).
func Replay(o *Oracle, t TraceOptions) (*Report, error) {
	n := o.N()
	if n < 2 {
		return nil, fmt.Errorf("query: replay needs at least 2 vertices, have %d", n)
	}
	if t.Queries <= 0 {
		return nil, fmt.Errorf("query: replay needs a positive query count, got %d", t.Queries)
	}
	if t.Window == 0 {
		t.Window = 1024
	}
	if t.Window < 0 {
		return nil, fmt.Errorf("query: negative window %d", t.Window)
	}
	if t.Workers == 0 {
		t.Workers = runtime.GOMAXPROCS(0)
	}
	if t.Workers < 0 {
		return nil, fmt.Errorf("query: negative worker count %d", t.Workers)
	}
	if t.ZipfS == 0 {
		t.ZipfS = 1.2
	}
	if t.ZipfS <= 1 {
		return nil, fmt.Errorf("query: Zipf exponent must exceed 1, got %v", t.ZipfS)
	}
	rng := xrand.New(t.Seed)
	perm := rng.Perm(n)
	zipf := rand.NewZipf(rng, t.ZipfS, 1, uint64(n-1))
	rep := &Report{Queries: t.Queries, Workers: t.Workers}
	winSrc := make([]int, t.Window)
	winDst := make([]int, t.Window)
	seenWin := make(map[int]bool, t.Window)
	winVec := make(map[int][]float64, t.Window)
	distinct := make([]int, 0, t.Window)
	partial := make([]uint64, t.Workers)
	start := time.Now() //lint:allow seededrand wall-clock serving throughput is the replay's reported metric; no algorithmic decision depends on it
	for done := 0; done < t.Queries; {
		count := t.Window
		if left := t.Queries - done; left < count {
			count = left
		}
		// Generate and classify sequentially: the first query of an
		// uncached source is the window's miss for it; everything else —
		// cached sources and repeat window-mates — is a hit.
		distinct = distinct[:0]
		clear(seenWin)
		for i := 0; i < count; i++ {
			src := perm[int(zipf.Uint64())]
			winSrc[i] = src
			winDst[i] = rng.Intn(n)
			if !seenWin[src] {
				seenWin[src] = true
				distinct = append(distinct, src)
				if !o.Cached(src) {
					rep.Misses++
					continue
				}
			}
			rep.Hits++
		}
		// One batched computation covers every missing source of the
		// window; already-cached vectors come back alongside.
		vecs, computed, cost, err := o.Warm(distinct)
		if err != nil {
			return nil, err
		}
		rep.Computed += computed
		rep.Rounds = rep.Rounds.Plus(cost)
		clear(winVec)
		for j, src := range distinct {
			winVec[src] = vecs[j]
		}
		// Serve concurrently, read-only: workers fold their chunk's
		// (index, answer) hashes with XOR, so the merged checksum is
		// independent of the chunk partition and of scheduling.
		var wg sync.WaitGroup
		chunk := (count + t.Workers - 1) / t.Workers
		for w := 0; w < t.Workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > count {
				hi = count
			}
			if lo >= hi {
				partial[w] = 0
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				var acc uint64
				for i := lo; i < hi; i++ {
					d, ok := o.DistCached(winSrc[i], winDst[i])
					if !ok {
						// Evicted between warm and serve (tiny caches):
						// the window-local vector still answers it.
						d = winVec[winSrc[i]][winDst[i]]
					}
					acc ^= mixQuery(uint64(done+i), math.Float64bits(d))
				}
				partial[w] = acc
			}(w, lo, hi)
		}
		wg.Wait()
		for _, p := range partial {
			rep.Checksum ^= p
		}
		rep.Windows++
		done += count
	}
	rep.WallNS = time.Since(start).Nanoseconds() //lint:allow seededrand wall-clock serving throughput is the replay's reported metric; no algorithmic decision depends on it
	if rep.WallNS > 0 {
		rep.QPS = float64(rep.Queries) / (float64(rep.WallNS) / 1e9)
	}
	rep.HitRate = float64(rep.Hits) / float64(rep.Queries)
	rep.RoundsPerQuery = float64(rep.Rounds.Total()) / float64(rep.Queries)
	return rep, nil
}

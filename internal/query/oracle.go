// Package query is the serving layer over one constructed shortcut
// network: build the tree + parts + shortcut once (they are reusable
// network infrastructure — the paper's framing, and the production one),
// then answer heavy distance-query traffic against it.
//
// The Oracle serves (1+ε)-approximate distances keyed by source. A cache
// hit costs zero communication rounds (the source's distance vector is
// already materialized at the querying node); a miss triggers a batched
// k-source SSSP run (sssp.ApproxBatch) that computes every missing source
// of the batch in O(h+k) rounds per phase instead of k sequential
// pipelines — the same multi-token pipelining win Pipecast (E15) proved
// for convergecasts, applied to Bellman–Ford relaxation. Cached vectors
// are invalidated through shortcut.Maintained's repair hook: any churn
// event may move distances, so the cache flushes and the next queries
// recompute over the repaired network.
package query

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/pipeline"
	"repro/internal/shortcut"
	"repro/internal/sssp"
)

// DefaultCacheCap is the default bound on cached source vectors. At 10⁴
// nodes a vector is 80 KB, so the default caps cache memory at ~330 MB
// worst case; real traces are Zipf-skewed and sit far below it.
const DefaultCacheCap = 4096

// Options configures an Oracle.
type Options struct {
	// Eps is the approximation slack handed to the batched SSSP engine
	// (default 0.1; validated as in sssp.Options).
	Eps float64
	// Simulate runs miss computations message-level on the CONGEST engine;
	// false charges the framework budgets analytically. Either way the
	// answers are byte-identical (both converge to the exact fixed point
	// under rounded weights); only the ledger differs.
	Simulate bool
	// CacheCap bounds the number of cached source vectors (FIFO eviction,
	// deterministic in install order). Zero selects DefaultCacheCap.
	CacheCap int
}

// Stats is a snapshot of an Oracle's cumulative serving counters.
type Stats struct {
	Hits          int64
	Misses        int64 // distinct sources computed (batched misses count once each)
	Invalidations int64
	CachedSources int
	// ComputeRounds is the cumulative two-ledger cost of every miss
	// computation; hits add zero to either ledger.
	ComputeRounds pipeline.Rounds
}

// Oracle serves distance queries over one constructed network. All
// methods are safe for concurrent use; the hit path is lock-shared and
// allocation-free.
type Oracle struct {
	g     *graph.Graph
	p     *partition.Parts
	maint *shortcut.Maintained // nil when the shortcut was supplied directly
	opts  Options

	mu      sync.RWMutex
	s       *shortcut.Shortcut
	cache   map[int]int // source -> slot
	slots   [][]float64 // slot -> distance vector
	slotSrc []int       // slot -> cached source
	next    int         // FIFO eviction hand

	hits          atomic.Int64
	misses        int64 // write-path counters, guarded by mu
	invalidations int64
	rounds        pipeline.Rounds
}

// New builds an Oracle over a directly supplied construction. The caller
// owns g/p/s; if the network churns underneath them, use FromMaintained
// so invalidation is wired up.
func New(g *graph.Graph, p *partition.Parts, s *shortcut.Shortcut, opts Options) (*Oracle, error) {
	if opts.Eps == 0 {
		opts.Eps = 0.1
	}
	if math.IsNaN(opts.Eps) || math.IsInf(opts.Eps, 0) || opts.Eps < 0 {
		return nil, fmt.Errorf("query: %w: eps %v (want finite eps > 0)", sssp.ErrInvalidOptions, opts.Eps)
	}
	if opts.CacheCap < 0 {
		return nil, fmt.Errorf("query: %w: negative CacheCap %d", sssp.ErrInvalidOptions, opts.CacheCap)
	}
	if opts.CacheCap == 0 {
		opts.CacheCap = DefaultCacheCap
	}
	return &Oracle{
		g:     g,
		p:     p,
		s:     s,
		opts:  opts,
		cache: make(map[int]int),
	}, nil
}

// FromMaintained builds an Oracle over a churn-maintained shortcut and
// subscribes to its repair events: every successful Repair (and every
// Reseat rebuild) flushes the cache and re-points the oracle at the
// maintained shortcut, so post-churn queries recompute against the
// repaired network.
func FromMaintained(m *shortcut.Maintained, opts Options) (*Oracle, error) {
	o, err := New(m.G, m.P, m.Shortcut(), opts)
	if err != nil {
		return nil, err
	}
	o.maint = m
	m.OnRepair(func(*shortcut.RepairReport) { o.Invalidate() })
	return o, nil
}

// N returns the number of vertices served.
func (o *Oracle) N() int { return o.g.N() }

// lookup probes the cache for src's distance vector (nil on miss). It is
// the serving hot path — one map probe, no allocation, no mutation —
// called with at least a read lock held.
//
//congest:hotpath
//congest:pure
func (o *Oracle) lookup(src int) []float64 {
	if si, ok := o.cache[src]; ok {
		return o.slots[si]
	}
	return nil
}

// Cached reports whether src's distance vector is currently cached,
// without touching any counter.
func (o *Oracle) Cached(src int) bool {
	o.mu.RLock()
	d := o.lookup(src)
	o.mu.RUnlock()
	return d != nil
}

// Dist returns the (1+ε)-approximate distance from src to dst. A hit
// costs zero rounds and zero allocations; a miss runs one batched SSSP
// computation and installs the vector.
func (o *Oracle) Dist(src, dst int) (float64, error) {
	if dst < 0 || dst >= o.g.N() {
		return 0, fmt.Errorf("query: destination %d out of range for n=%d", dst, o.g.N())
	}
	o.mu.RLock()
	d := o.lookup(src)
	o.mu.RUnlock()
	if d != nil {
		o.hits.Add(1)
		return d[dst], nil
	}
	d, err := o.Distances(src)
	if err != nil {
		return 0, err
	}
	return d[dst], nil
}

// DistCached is the read-only serving path: the distance if src is
// cached, with ok=false (and no computation, no counter) otherwise.
// Concurrent replay workers use it so the cache state stays exactly what
// the deterministic warming phase installed.
func (o *Oracle) DistCached(src, dst int) (float64, bool) {
	o.mu.RLock()
	d := o.lookup(src)
	o.mu.RUnlock()
	if d == nil {
		return 0, false
	}
	o.hits.Add(1)
	return d[dst], true
}

// Distances returns src's full distance vector (shared, read-only),
// computing and caching it on a miss.
func (o *Oracle) Distances(src int) ([]float64, error) {
	o.mu.RLock()
	d := o.lookup(src)
	o.mu.RUnlock()
	if d != nil {
		o.hits.Add(1)
		return d, nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if d := o.lookup(src); d != nil { // raced install
		o.hits.Add(1)
		return d, nil
	}
	vecs, _, err := o.computeLocked([]int{src})
	if err != nil {
		return nil, err
	}
	o.install(src, vecs[0])
	return vecs[0], nil
}

// Warm ensures every source in srcs is cached, computing all missing ones
// in a single batched k-source run. It returns the number of sources
// computed (the batch's misses; duplicates and already-cached sources
// are served from the existing vectors) and the two-ledger cost of the
// batch, along with the distance vectors of srcs in order.
func (o *Oracle) Warm(srcs []int) (vecs [][]float64, computed int, cost pipeline.Rounds, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	var missing []int
	seen := make(map[int]bool, len(srcs))
	for _, src := range srcs {
		if !seen[src] && o.lookup(src) == nil {
			missing = append(missing, src)
		}
		seen[src] = true
	}
	var fresh map[int][]float64
	if len(missing) > 0 {
		mv, mcost, err := o.computeLocked(missing)
		if err != nil {
			return nil, 0, pipeline.Rounds{}, err
		}
		cost = mcost
		fresh = make(map[int][]float64, len(missing))
		for i, src := range missing {
			o.install(src, mv[i])
			fresh[src] = mv[i]
		}
	}
	// Serve the requested vectors: from the cache when still resident,
	// else from the batch result (a small cache can evict a vector it
	// installed moments ago — the answer is still this window's).
	vecs = make([][]float64, len(srcs))
	for i, src := range srcs {
		if d := o.lookup(src); d != nil {
			vecs[i] = d
		} else {
			vecs[i] = fresh[src]
		}
		if vecs[i] == nil {
			// A previously cached source evicted by this very warm call:
			// recompute it statelessly so the caller always gets vectors.
			mv, mcost, err := o.computeLocked([]int{src})
			if err != nil {
				return nil, 0, pipeline.Rounds{}, err
			}
			cost = cost.Plus(mcost)
			vecs[i] = mv[0]
		}
	}
	return vecs, len(missing), cost, nil
}

// computeLocked runs the batched k-source SSSP for the given sources over
// the current shortcut. Callers hold the write lock (or have exclusive
// access); the per-source vectors of the result are freshly allocated and
// safe to hand out read-only.
func (o *Oracle) computeLocked(srcs []int) ([][]float64, pipeline.Rounds, error) {
	r, err := sssp.ApproxBatch(o.g, srcs, o.p, o.s, sssp.Options{Eps: o.opts.Eps, Simulate: o.opts.Simulate})
	if err != nil {
		return nil, pipeline.Rounds{}, fmt.Errorf("query: batched sssp: %w", err)
	}
	cost := pipeline.Rounds{Simulated: r.CommRounds, Charged: r.ChargedRounds}
	o.misses += int64(len(srcs))
	o.rounds = o.rounds.Plus(cost)
	return r.Dist, cost, nil
}

// install caches src's vector under the FIFO bound. Caller holds the
// write lock.
func (o *Oracle) install(src int, d []float64) {
	if si, ok := o.cache[src]; ok {
		o.slots[si] = d
		return
	}
	if len(o.slots) < o.opts.CacheCap {
		o.cache[src] = len(o.slots)
		o.slots = append(o.slots, d)
		o.slotSrc = append(o.slotSrc, src)
		return
	}
	si := o.next
	o.next = (o.next + 1) % o.opts.CacheCap
	delete(o.cache, o.slotSrc[si])
	o.cache[src] = si
	o.slots[si] = d
	o.slotSrc[si] = src
}

// Invalidate flushes every cached vector and re-points the oracle at the
// maintained shortcut's current state. Wired to shortcut.Maintained's
// repair hook by FromMaintained; callers mutating a directly supplied
// network invoke it by hand.
func (o *Oracle) Invalidate() {
	o.mu.Lock()
	defer o.mu.Unlock()
	clear(o.cache)
	o.slots = o.slots[:0]
	o.slotSrc = o.slotSrc[:0]
	o.next = 0
	o.invalidations++
	if o.maint != nil {
		o.s = o.maint.Shortcut()
	}
}

// Stats snapshots the cumulative serving counters.
func (o *Oracle) Stats() Stats {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return Stats{
		Hits:          o.hits.Load(),
		Misses:        o.misses,
		Invalidations: o.invalidations,
		CachedSources: len(o.cache),
		ComputeRounds: o.rounds,
	}
}

package query_test

import (
	"errors"
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/query"
	"repro/internal/shortcut"
	"repro/internal/sssp"

	"repro/internal/gen"
	"repro/internal/xrand"
)

// wheelNet builds the standard wheel test network: rim-arc parts, a
// hub-rooted BFS tree, and an oblivious shortcut.
func wheelNet(t *testing.T, rim int, seed int64) (*graph.Graph, *graph.Tree, *partition.Parts, *shortcut.Shortcut) {
	t.Helper()
	rng := xrand.New(seed)
	g := gen.UniformWeights(gen.Wheel(rim).G, rng)
	p, err := partition.RimArcs(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := graph.BFSTree(g, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := shortcut.ObliviousAuto(g, tr, p)
	return g, tr, p, s
}

func TestOracleHitMissAndStretch(t *testing.T) {
	g, _, p, s := wheelNet(t, 65, 3)
	const eps = 0.15
	o, err := query.New(g, p, s, query.Options{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	src := 7
	exact, err := graph.Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ { // first pass misses, second hits
		for dst := 0; dst < g.N(); dst += 9 {
			d, err := o.Dist(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			want := exact.Dist[dst]
			if d < want-1e-12 || d > want*(1+eps)+1e-12 {
				t.Fatalf("dist(%d,%d) = %v outside [%v, %v]", src, dst, d, want, want*(1+eps))
			}
		}
	}
	st := o.Stats()
	if st.Misses != 1 {
		t.Errorf("one source queried repeatedly: %d misses, want 1", st.Misses)
	}
	if st.Hits == 0 {
		t.Error("repeat queries never hit the cache")
	}
	if st.ComputeRounds.Total() == 0 {
		t.Error("miss computation booked zero rounds in both ledgers")
	}
	if !o.Cached(src) || o.Cached(src+1) {
		t.Error("cache membership wrong after single-source traffic")
	}
}

// A hit must cost zero rounds: Stats' compute ledger may not move on
// cached traffic.
func TestOracleHitsCostZeroRounds(t *testing.T) {
	g, _, p, s := wheelNet(t, 33, 5)
	o, err := query.New(g, p, s, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Distances(4); err != nil {
		t.Fatal(err)
	}
	before := o.Stats().ComputeRounds
	for i := 0; i < 50; i++ {
		if _, err := o.Dist(4, i%g.N()); err != nil {
			t.Fatal(err)
		}
	}
	if after := o.Stats().ComputeRounds; after != before {
		t.Fatalf("cached traffic moved the compute ledgers: %+v -> %+v", before, after)
	}
}

// Warm computes each distinct missing source once, batched, and returns
// vectors byte-equal to sequential single-source runs.
func TestWarmBatchesMisses(t *testing.T) {
	g, _, p, s := wheelNet(t, 65, 11)
	const eps = 0.125
	o, err := query.New(g, p, s, query.Options{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	srcs := []int{3, 9, 3, 27, 9, 41}
	vecs, computed, cost, err := o.Warm(srcs)
	if err != nil {
		t.Fatal(err)
	}
	if computed != 4 {
		t.Errorf("computed %d sources, want 4 distinct", computed)
	}
	if cost.Total() == 0 {
		t.Error("batched warm booked zero rounds")
	}
	for i, src := range srcs {
		seq, err := sssp.Approx(g, src, p, s, sssp.Options{Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if vecs[i][v] != seq.Dist[v] {
				t.Fatalf("warm src %d vertex %d: %v vs sequential %v", src, v, vecs[i][v], seq.Dist[v])
			}
		}
	}
	if _, computed, cost, err = o.Warm(srcs); err != nil || computed != 0 || cost.Total() != 0 {
		t.Errorf("re-warm of cached sources: computed=%d cost=%v err=%v, want 0/zero/nil", computed, cost, err)
	}
}

// The FIFO cache bound holds and eviction is by install order.
func TestCacheCapEvictsFIFO(t *testing.T) {
	g, _, p, s := wheelNet(t, 33, 13)
	o, err := query.New(g, p, s, query.Options{CacheCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []int{1, 2, 3} {
		if _, err := o.Distances(src); err != nil {
			t.Fatal(err)
		}
	}
	if o.Cached(1) {
		t.Error("oldest source survived a full cache")
	}
	if !o.Cached(2) || !o.Cached(3) {
		t.Error("younger sources evicted out of FIFO order")
	}
	if st := o.Stats(); st.CachedSources != 2 {
		t.Errorf("cache holds %d sources, cap is 2", st.CachedSources)
	}
}

// Churn events on the maintained shortcut must flush the cache through
// the repair hook, and post-churn answers must track the mutated network.
func TestOracleChurnInvalidation(t *testing.T) {
	g, tr, p, _ := wheelNet(t, 65, 17)
	m, err := shortcut.Maintain(g, tr, p, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 0.15
	o, err := query.FromMaintained(m, query.Options{Eps: eps})
	if err != nil {
		t.Fatal(err)
	}
	src := 5
	before, err := o.Distances(src)
	if err != nil {
		t.Fatal(err)
	}
	_ = before
	if !o.Cached(src) {
		t.Fatal("source not cached after query")
	}
	// A weight update through Repair: the hook must flush the cache.
	var target int = -1
	for id := 0; id < g.M(); id++ {
		if !g.EdgeRemoved(id) && !tr.IsTreeEdge(id) {
			target = id
			break
		}
	}
	if target < 0 {
		t.Fatal("no non-tree edge to churn")
	}
	if _, err := m.Repair(shortcut.Event{Kind: shortcut.WeightUpdate, Edge: target, W: g.Edge(target).W * 3}); err != nil {
		t.Fatal(err)
	}
	if o.Cached(src) {
		t.Fatal("cache survived a churn event")
	}
	if st := o.Stats(); st.Invalidations != 1 {
		t.Errorf("%d invalidations, want 1", st.Invalidations)
	}
	// A delete too, including the re-query correctness against the exact
	// oracle on the churned graph.
	if _, err := m.Repair(shortcut.Event{Kind: shortcut.EdgeDelete, Edge: target}); err != nil {
		t.Fatal(err)
	}
	exact, err := graph.Dijkstra(g, src)
	if err != nil {
		t.Fatal(err)
	}
	for dst := 0; dst < g.N(); dst += 7 {
		d, err := o.Dist(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		want := exact.Dist[dst]
		if d < want-1e-12 || d > want*(1+eps)+1e-12 {
			t.Fatalf("post-churn dist(%d,%d) = %v outside [%v, %v]", src, dst, d, want, want*(1+eps))
		}
	}
}

func TestOracleRejectsInvalidOptions(t *testing.T) {
	g, _, p, s := wheelNet(t, 33, 19)
	for _, opts := range []query.Options{{Eps: math.NaN()}, {Eps: -1}, {Eps: math.Inf(1)}, {CacheCap: -1}} {
		if _, err := query.New(g, p, s, opts); !errors.Is(err, sssp.ErrInvalidOptions) {
			t.Errorf("New(%+v): got %v, want ErrInvalidOptions", opts, err)
		}
	}
}

// The replay report's deterministic fields must be byte-identical across
// worker counts (and hence GOMAXPROCS): warming is sequential, serving is
// read-only, and the checksum folds with XOR.
func TestReplayDeterministicAcrossWorkers(t *testing.T) {
	var reports []*query.Report
	for _, workers := range []int{1, 3, 8} {
		g, _, p, s := wheelNet(t, 129, 23)
		o, err := query.New(g, p, s, query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := query.Replay(o, query.TraceOptions{Queries: 4000, Window: 256, Workers: workers, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
	}
	base := reports[0]
	for _, rep := range reports[1:] {
		if rep.Hits != base.Hits || rep.Misses != base.Misses || rep.Computed != base.Computed ||
			rep.Windows != base.Windows || rep.Checksum != base.Checksum || rep.Rounds != base.Rounds {
			t.Fatalf("replay diverges across worker counts:\n%+v\nvs\n%+v", base, rep)
		}
	}
	if base.Hits+base.Misses != base.Queries {
		t.Errorf("hit/miss classification loses queries: %d+%d != %d", base.Hits, base.Misses, base.Queries)
	}
	if base.Misses == 0 {
		t.Error("cold replay reported no misses")
	}
}

// A second replay of the same trace against the warmed oracle is all
// hits at zero compute rounds.
func TestReplayWarmedAllHits(t *testing.T) {
	g, _, p, s := wheelNet(t, 129, 29)
	o, err := query.New(g, p, s, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := query.TraceOptions{Queries: 3000, Window: 512, Seed: 7}
	cold, err := query.Replay(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := query.Replay(o, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Misses != 0 || warm.HitRate != 1 || warm.Rounds.Total() != 0 {
		t.Fatalf("warmed replay not free: %+v", warm)
	}
	if warm.Checksum != cold.Checksum {
		t.Error("same trace, same network: checksums differ between cold and warmed replay")
	}
}

// The steady-state serving hot path — a cache hit — must not allocate.
func TestServeHotPathAllocs(t *testing.T) {
	g, _, p, s := wheelNet(t, 129, 31)
	o, err := query.New(g, p, s, query.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Distances(3); err != nil {
		t.Fatal(err)
	}
	var sink float64
	allocs := testing.AllocsPerRun(200, func() {
		d, err := o.Dist(3, 40)
		if err != nil {
			t.Fatal(err)
		}
		sink = d
	})
	if allocs != 0 {
		t.Fatalf("warmed query serving allocates %v objects per query", allocs)
	}
	_ = sink
}

package shortcut

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Construct computes the part-wise flooding construction: every part floods
// its ID up the spanning tree from each of its vertices, a subtree adopts
// the parent edge of every part whose flood reaches it, and each tree edge
// admits at most cap parts — an overloaded vertex evicts the lowest-priority
// parts (operationally: the highest part IDs; the cap is the paper's
// block/congestion trade-off made explicit, with part ID as the
// deterministic priority). The result is the unique bottom-up fixed point
//
//	admitted(v) = the (up to) cap smallest part IDs of
//	              {part of v} ∪ ⋃_{c child of v} admitted(c),
//
// and part i's shortcut is Hᵢ = { ParentEdge[v] : i ∈ admitted(v) }.
// Congestion is at most cap by construction; the block parameter is
// whatever the eviction pattern forces.
//
// This is the sequential evaluation of the fixed point — the analytic-mode
// constructor and the convergence oracle for the distributed realization
// (congest.ConstructShortcut), which computes the identical assignment by
// actual message passing.
func Construct(g *graph.Graph, t *graph.Tree, p *partition.Parts, cap int) *Shortcut {
	s, err := FromFloodState(g, t, p, FloodFixedPoint(g, t, p, cap))
	if err != nil {
		panic(fmt.Sprintf("shortcut.Construct: internal error: %v", err))
	}
	return s
}

// FromFloodState assembles the Shortcut described by a flooding-construction
// state: admitted[v] lists the part IDs admitted over v's parent edge. Both
// the sequential constructor and the distributed protocol's converged state
// assemble through here, so the two paths cannot diverge.
func FromFloodState(g *graph.Graph, t *graph.Tree, p *partition.Parts, admitted [][]int32) (*Shortcut, error) {
	edges := make([][]int, p.NumParts())
	for v := 0; v < g.N(); v++ {
		id := t.ParentEdge[v]
		if id == -1 {
			continue
		}
		for _, i := range admitted[v] {
			edges[i] = append(edges[i], id)
		}
	}
	return New(g, t, p, edges)
}

// FloodFixedPoint returns, per vertex, the sorted part IDs admitted over the
// vertex's parent edge at the flooding construction's fixed point (nil at
// the root and at vertices no flood reaches). Exposed so the distributed
// construction can validate its converged state against the ground truth.
func FloodFixedPoint(g *graph.Graph, t *graph.Tree, p *partition.Parts, cap int) [][]int32 {
	if cap < 1 {
		cap = 1
	}
	n := g.N()
	admitted := make([][]int32, n)
	seen := g.AcquireScratch()
	defer g.ReleaseScratch(seen)
	var present []int32
	// Children precede parents in reverse BFS order, so admitted(c) is final
	// when v merges it.
	for oi := n - 1; oi >= 0; oi-- {
		v := t.Order[oi]
		if t.ParentEdge[v] == -1 {
			continue // root: no parent edge to admit onto
		}
		present = present[:0]
		seen.Reset()
		if pi := p.Of[v]; pi != -1 {
			seen.Visit(pi)
			present = append(present, int32(pi))
		}
		for _, c := range t.Children[v] {
			for _, i := range admitted[c] {
				if seen.Visit(int(i)) {
					present = append(present, i)
				}
			}
		}
		if len(present) == 0 {
			continue
		}
		sort.Slice(present, func(a, b int) bool { return present[a] < present[b] })
		if len(present) > cap {
			present = present[:cap]
		}
		admitted[v] = append([]int32(nil), present...)
	}
	return admitted
}

// ConstructAuto searches over geometric congestion caps and returns the
// flooding construction with the best measured quality, plus the winning
// cap — the same O(log n)-guess search ObliviousAuto runs for the claiming
// construction.
func ConstructAuto(g *graph.Graph, t *graph.Tree, p *partition.Parts) (*Shortcut, Measurement, int) {
	var best *Shortcut
	var bestM Measurement
	bestCap := 1
	for cap := 1; cap <= 2*g.N(); cap *= 2 {
		s := Construct(g, t, p, cap)
		m := s.Measure()
		if best == nil || m.Quality < bestM.Quality {
			best, bestM, bestCap = s, m, cap
		}
		if cap > p.NumParts() {
			break // more cap than parts cannot admit anything new
		}
	}
	return best, bestM, bestCap
}

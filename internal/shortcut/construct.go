package shortcut

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
)

// TreeBlockCounts returns, per part, the number of blocks the part forms in
// the spanning tree: connected components of T restricted to the part's
// vertices. A part's block count equals the number of its members whose
// tree parent lies outside the part (or that are the root) — each block has
// exactly one topmost vertex — so every node can decide locally whether it
// tops a block, and the per-part counts are one convergecast-sum away in a
// real deployment.
//
// This is the pre-construction notion of "blocks" that drives part
// priorities: a part fragmented into many tree blocks needs more tree edges
// to stitch itself together, so it should win contested edge slots. (It is
// distinct from Measurement.Blocks, which counts the blocks left *after* a
// shortcut assignment.)
func TreeBlockCounts(t *graph.Tree, p *partition.Parts) []int {
	out := make([]int, p.NumParts())
	for i, set := range p.Sets {
		for _, v := range set {
			if par := t.Parent[v]; par == -1 || p.Of[par] != i {
				out[i]++
			}
		}
	}
	return out
}

// TreeBlockPriorities ranks the parts for the flooding construction's
// eviction rule: prio[i] is part i's rank, and rank 0 is the highest
// priority. Parts with more tree blocks rank higher (they have the most to
// gain from tree edges — the paper's block/congestion trade-off), ties
// break toward the lower part ID (the deterministic static order the
// construction used before priorities existed).
//
// The distributed realization (congest.BootstrapPriorities) computes the
// same ranking in-network: the block counts pipeline up the tree as tagged
// tokens, the root ranks them with RankBlockCounts, and the ranking
// streams back down — its fixed point is validated against this function.
func TreeBlockPriorities(t *graph.Tree, p *partition.Parts) []int32 {
	return RankBlockCounts(TreeBlockCounts(t, p))
}

// RankBlockCounts turns per-part block counts into the eviction ranking
// (rank 0 = highest priority): more blocks rank higher, ties break toward
// the lower part ID. Exposed separately so the in-network bootstrap can
// rank the counts its convergecast produced exactly the way the
// sequential path does. The purity analyzer proves it deterministic: the
// fixed-point validation compares its output byte-for-byte.
//
//congest:pure
func RankBlockCounts(blocks []int) []int32 {
	order := make([]int, len(blocks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if blocks[ia] != blocks[ib] {
			return blocks[ia] > blocks[ib]
		}
		return ia < ib
	})
	prio := make([]int32, len(blocks))
	for rank, part := range order {
		prio[part] = int32(rank)
	}
	return prio
}

// Construct computes the part-wise flooding construction: every part floods
// its ID up the spanning tree from each of its vertices, a subtree adopts
// the parent edge of every part whose flood reaches it, and each tree edge
// admits at most cap parts — an overloaded vertex evicts the lowest-priority
// parts. Priorities are the block-count-driven ranks of TreeBlockPriorities
// (parts spanning more tree blocks win contested slots; ties by lower part
// ID), so the cap is the paper's block/congestion trade-off made explicit.
// The result is the unique bottom-up fixed point
//
//	admitted(v) = the (up to) cap highest-priority parts of
//	              {part of v} ∪ ⋃_{c child of v} admitted(c),
//
// and part i's shortcut is Hᵢ = { ParentEdge[v] : i ∈ admitted(v) }.
// Congestion is at most cap by construction; the block parameter is
// whatever the eviction pattern forces.
//
// This is the sequential evaluation of the fixed point — the analytic-mode
// constructor and the convergence oracle for the distributed realization
// (congest.ConstructShortcut), which computes the identical assignment by
// actual message passing.
func Construct(g *graph.Graph, t *graph.Tree, p *partition.Parts, cap int) *Shortcut {
	return ConstructPrio(g, t, p, cap, TreeBlockPriorities(t, p))
}

// ConstructPrio is Construct under an explicit priority ranking (prio[i] =
// rank of part i, rank 0 highest; nil selects the static by-ID order).
// Exposed so the cap search can compute the ranking once per part family
// and reuse it across all cap guesses. The ranking must be a permutation
// of 0..NumParts-1 (ValidPriorities).
func ConstructPrio(g *graph.Graph, t *graph.Tree, p *partition.Parts, cap int, prio []int32) *Shortcut {
	if err := ValidPriorities(prio, p.NumParts()); err != nil {
		panic(fmt.Sprintf("shortcut.ConstructPrio: %v", err))
	}
	s, err := FromFloodState(g, t, p, FloodFixedPoint(g, t, p, cap, prio), prio)
	if err != nil {
		panic(fmt.Sprintf("shortcut.Construct: internal error: %v", err))
	}
	return s
}

// ValidPriorities checks that prio is a permutation of 0..numParts-1 (nil
// is the identity and always valid): a rank out of range would index past
// the inverse mapping when the shortcut is assembled, and a duplicate rank
// would silently merge two parts' floods — one part losing every edge.
func ValidPriorities(prio []int32, numParts int) error {
	if prio == nil {
		return nil
	}
	if len(prio) != numParts {
		return fmt.Errorf("shortcut: %d priorities for %d parts", len(prio), numParts)
	}
	seen := make([]bool, numParts)
	for part, rank := range prio {
		if rank < 0 || int(rank) >= numParts {
			return fmt.Errorf("shortcut: part %d has rank %d outside [0, %d)", part, rank, numParts)
		}
		if seen[rank] {
			return fmt.Errorf("shortcut: rank %d assigned to more than one part", rank)
		}
		seen[rank] = true
	}
	return nil
}

// FromFloodState assembles the Shortcut described by a flooding-construction
// state: admitted[v] lists, in rank space (see FloodFixedPoint), the parts
// admitted over v's parent edge; prio maps part to rank (nil = identity)
// and must be a permutation of 0..NumParts-1. Both the sequential
// constructor and the distributed protocol's converged state assemble
// through here, so the two paths cannot diverge.
func FromFloodState(g *graph.Graph, t *graph.Tree, p *partition.Parts, admitted [][]int32, prio []int32) (*Shortcut, error) {
	if err := ValidPriorities(prio, p.NumParts()); err != nil {
		return nil, err
	}
	if t.G != g {
		return nil, fmt.Errorf("shortcut: tree belongs to a different graph")
	}
	if p.G != g {
		return nil, fmt.Errorf("shortcut: parts belong to a different graph")
	}
	for i, set := range p.Sets {
		if len(set) == 0 {
			return nil, fmt.Errorf("shortcut: part %d is empty", i)
		}
	}
	inv := invertPriorities(p.NumParts(), prio)
	np := p.NumParts()
	// The total assignment size Σᵥ|admitted(v)| reaches Θ(n·cap) at scale, so
	// the per-part lists are carved out of one counted slab instead of grown
	// with append — a counting pass, a prefix sum, and a fill pass, the same
	// shape as the CSR arc assembly. The lists are duplicate-free by
	// construction (admitted ranks are distinct per vertex, and distinct
	// vertices have distinct parent edges) and every ID is a tree edge by
	// definition, so New's sortedDedup copy and tree-membership sweep are
	// redundant here; each region is sorted in place and the Shortcut built
	// directly.
	off := make([]int, np+1)
	for v := 0; v < g.N(); v++ {
		if t.ParentEdge[v] == -1 {
			continue
		}
		for _, r := range admitted[v] {
			off[inv[r]+1]++
		}
	}
	for i := 0; i < np; i++ {
		off[i+1] += off[i]
	}
	slab := make([]int, off[np])
	cur := make([]int, np)
	copy(cur, off[:np])
	for v := 0; v < g.N(); v++ {
		id := t.ParentEdge[v]
		if id == -1 {
			continue
		}
		for _, r := range admitted[v] {
			i := inv[r]
			slab[cur[i]] = id
			cur[i]++
		}
	}
	s := &Shortcut{G: g, T: t, P: p, Edges: make([][]int, np)}
	for i := 0; i < np; i++ {
		region := slab[off[i]:off[i+1]:off[i+1]]
		sort.Ints(region)
		s.Edges[i] = region
	}
	return s, nil
}

// invertPriorities returns the rank -> part mapping (identity for nil prio).
func invertPriorities(numParts int, prio []int32) []int32 {
	inv := make([]int32, numParts)
	if prio == nil {
		for i := range inv {
			inv[i] = int32(i)
		}
		return inv
	}
	for part, rank := range prio {
		inv[rank] = int32(part)
	}
	return inv
}

// FloodFixedPoint returns, per vertex, the sorted priority ranks admitted
// over the vertex's parent edge at the flooding construction's fixed point
// (nil at the root and at vertices no flood reaches). The state lives in
// rank space — ascending rank = descending priority — so "keep the cap
// best" is a prefix truncation; map ranks back to parts with the inverse of
// prio (nil prio = identity, i.e. the static by-ID order). Exposed so the
// distributed construction can validate its converged state against the
// ground truth.
func FloodFixedPoint(g *graph.Graph, t *graph.Tree, p *partition.Parts, cap int, prio []int32) [][]int32 {
	if cap < 1 {
		cap = 1
	}
	n := g.N()
	admitted := make([][]int32, n)
	seen := g.AcquireScratch()
	defer g.ReleaseScratch(seen)
	var present []int32
	// Per-vertex lists are carved from chunked arenas rather than allocated
	// individually: at scale the fixed point holds Θ(n·cap) ranks, and n
	// separate allocations (plus their zeroing) dominate the flood's cost.
	// Headroom is tracked by hand because the cap parameter shadows the
	// builtin.
	var arena []int32
	arenaFree := 0
	// Children precede parents in reverse BFS order, so admitted(c) is final
	// when v merges it.
	for oi := n - 1; oi >= 0; oi-- {
		v := t.Order[oi]
		if t.ParentEdge[v] == -1 {
			continue // root: no parent edge to admit onto
		}
		present = present[:0]
		seen.Reset()
		if pi := p.Of[v]; pi != -1 {
			r := int32(pi)
			if prio != nil {
				r = prio[pi]
			}
			seen.Visit(int(r))
			present = append(present, r)
		}
		for _, c := range t.Children[v] {
			for _, r := range admitted[c] {
				if seen.Visit(int(r)) {
					present = append(present, r)
				}
			}
		}
		if len(present) == 0 {
			continue
		}
		slices.Sort(present)
		if len(present) > cap {
			present = present[:cap]
		}
		if len(present) > arenaFree {
			size := 1 << 15
			if len(present) > size {
				size = len(present)
			}
			arena = make([]int32, 0, size)
			arenaFree = size
		}
		start := len(arena)
		arena = append(arena, present...)
		arenaFree -= len(present)
		admitted[v] = arena[start:len(arena):len(arena)]
	}
	return admitted
}

// AutoResult reports a congestion-cap auto-search.
type AutoResult struct {
	S       *Shortcut
	M       Measurement
	Cap     int // winning cap
	Guesses int // constructions evaluated by the sweep
}

// ConstructAuto searches over geometric congestion caps and returns the
// flooding construction with the best measured quality. This is the central
// reference sweep — every guess is measured exactly with Measure() — kept
// as the oracle for the in-network doubling search (congest.SearchCap),
// which estimates per-guess quality by convergecast instead.
//
// Guesses are 1, 2, 4, ... clamped to the part count: a cap of NumParts
// already admits every part everywhere, so larger caps construct the
// identical shortcut and are not evaluated. An empty part family is an
// explicit error (there is nothing to construct a shortcut for).
func ConstructAuto(g *graph.Graph, t *graph.Tree, p *partition.Parts) (*AutoResult, error) {
	np := p.NumParts()
	if np == 0 {
		return nil, fmt.Errorf("shortcut: auto cap search over an empty part family")
	}
	prio := TreeBlockPriorities(t, p)
	res := &AutoResult{}
	for cap := 1; ; cap *= 2 {
		c := cap
		if c > np {
			c = np
		}
		s := ConstructPrio(g, t, p, c, prio)
		m := s.Measure()
		res.Guesses++
		if res.S == nil || m.Quality < res.M.Quality {
			res.S, res.M, res.Cap = s, m, c
		}
		if c >= np {
			return res, nil // larger caps cannot admit anything new
		}
	}
}
